// Quickstart: train an ordinal-regression autotuner and tune a stencil.
//
// This is the smallest end-to-end use of the library: build a training set
// on the deterministic machine model, fit the ranking SVM, and ask it for
// the best tuning vector of an unseen stencil instance — no execution of the
// tuned stencil happens until the final verification line.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	stenciltune "repro"
)

func main() {
	// 1. Train. 3840 points ≈ the paper's mid-size training set; takes a
	// few seconds. Training data is generated per Section V-B of the
	// paper: 60 synthetic stencil codes × input sizes × random tunings.
	fmt.Println("training ranking model (3840 points)...")
	model, report, err := stenciltune.Train(stenciltune.TrainOptions{TrainingPoints: 3840})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d preference pairs fitted in %v\n", report.Pairs, report.TrainTime.Round(1e6))

	// 2. Tune an unseen stencil: the 7-point laplacian on a 128³ grid.
	// TunePredefined ranks the paper's 8640-configuration power-of-two set
	// without running any of them.
	tuner := model.Tuner()
	q := stenciltune.Instance{
		Kernel: stenciltune.Laplacian(),
		Size:   stenciltune.Size3D(128, 128, 128),
	}
	best, elapsed, err := tuner.TunePredefined(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tuned %s in %v: %v\n", q.ID(), elapsed.Round(1000), best)

	// 3. Verify against the evaluation substrate: compare the model's pick
	// with an untuned default and a deliberately bad configuration.
	eval := stenciltune.Simulator()
	defaults := stenciltune.TuningVector{Bx: 1024, By: 1024, Bz: 1024, U: 0, C: 1} // no blocking
	bad := stenciltune.TuningVector{Bx: 2, By: 2, Bz: 2, U: 8, C: 16}

	fmt.Printf("\nruntime on the Xeon E5-2680 v3 model:\n")
	fmt.Printf("  tuned:     %.4f s\n", eval.Runtime(q, best))
	fmt.Printf("  unblocked: %.4f s\n", eval.Runtime(q, defaults))
	fmt.Printf("  worst-ish: %.4f s\n", eval.Runtime(q, bad))
	fmt.Printf("speedup over unblocked: %.2fx\n",
		eval.Runtime(q, defaults)/eval.Runtime(q, best))
}
