// Wave simulation: a tuned 3-D PDE time-stepping loop.
//
// This example exercises the PDE motivation of the paper: the 4th-order
// wave-equation stencil (Table III's wave-1) integrated over many time steps
// on a 96³ grid with double buffering. The autotuner picks the blocking,
// unroll and chunking once; the executor then applies the same variant every
// step — exactly how a tuned stencil is deployed in an HPC code.
//
//	go run ./examples/wavesim
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	stenciltune "repro"
	"repro/internal/exec"
	"repro/internal/grid"
	"repro/internal/shape"
)

const (
	n     = 96 // grid extent per dimension
	steps = 50
)

func main() {
	fmt.Println("training model...")
	model, _, err := stenciltune.Train(stenciltune.TrainOptions{TrainingPoints: 1920})
	if err != nil {
		log.Fatal(err)
	}
	q := stenciltune.Instance{Kernel: stenciltune.Wave(), Size: stenciltune.Size3D(n, n, n)}
	tv, _, err := model.Tuner().TunePredefined(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wave stencil tuned for %s: %v\n", q.Size, tv)

	// Leapfrog wave update needs u(t) and u(t-1): build a two-buffer
	// kernel u(t+1) = 2u(t) - u(t-1) + c²dt²·∇⁴u(t).
	k := waveTwoBuffer()

	halo := k.MaxOffset()
	curr := grid.New(n, n, n, halo, halo)
	prev := grid.New(n, n, n, halo, halo)
	next := grid.New(n, n, n, halo, halo)

	// Initial condition: a Gaussian pulse in the centre, at rest.
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				dx, dy, dz := float64(x-n/2), float64(y-n/2), float64(z-n/2)
				v := math.Exp(-(dx*dx + dy*dy + dz*dz) / 64)
				curr.Set(x, y, z, v)
				prev.Set(x, y, z, v)
			}
		}
	}

	runner := exec.NewRunner()
	start := time.Now()
	for s := 0; s < steps; s++ {
		if err := runner.Run(k, next, []*grid.Grid[float64]{curr, prev}, tv); err != nil {
			log.Fatal(err)
		}
		prev, curr, next = curr, next, prev
	}
	elapsed := time.Since(start)

	// Report: amplitude decays as the pulse disperses; energy proxy stays
	// bounded for a stable CFL constant.
	var sumSq, maxAbs float64
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				v := curr.At(x, y, z)
				sumSq += v * v
				if a := math.Abs(v); a > maxAbs {
					maxAbs = a
				}
			}
		}
	}
	pointsPerSec := float64(n*n*n*steps) / elapsed.Seconds()
	fmt.Printf("%d steps of %d³ in %v (%.1f Mpoint/s)\n", steps, n, elapsed.Round(1e6), pointsPerSec/1e6)
	fmt.Printf("final max |u| = %.4f, ∑u² = %.2f (bounded ⇒ stable)\n", maxAbs, sumSq)
	if math.IsNaN(sumSq) || maxAbs > 10 {
		log.Fatal("simulation went unstable — CFL violated")
	}
}

// waveTwoBuffer builds the leapfrog wave kernel over two buffers:
// buffer 0 = u(t), buffer 1 = u(t-1).
func waveTwoBuffer() *exec.LinearKernel {
	const c2dt2 = 0.25
	k := &exec.LinearKernel{Name: "wave-leapfrog", Buffers: 2}
	// 2u(t) at the centre and -u(t-1) from the previous step.
	k.Terms = append(k.Terms,
		exec.Term{Buffer: 0, Offset: shape.Point{}, Weight: 2 - c2dt2*7.5},
		exec.Term{Buffer: 1, Offset: shape.Point{}, Weight: -1},
	)
	// 4th-order laplacian star on u(t).
	for _, axis := range [][3]int{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}} {
		for _, d := range []struct {
			r int
			w float64
		}{{1, 4.0 / 3}, {2, -1.0 / 12}} {
			for _, sgn := range []int{1, -1} {
				k.Terms = append(k.Terms, exec.Term{
					Buffer: 0,
					Offset: shape.Point{X: axis[0] * d.r * sgn, Y: axis[1] * d.r * sgn, Z: axis[2] * d.r * sgn},
					Weight: c2dt2 * d.w,
				})
			}
		}
	}
	return k
}
