// Custom stencil: define your own kernel in the DSL, tune it, run it.
//
// This example shows the full external-user workflow the paper's Sec. V
// describes around PATUS: write a stencil in a DSL, let the autotuner pick
// the code transformations, then execute the tuned variant. The kernel here
// is a 3-D anisotropic diffusion operator the library has never seen — no
// benchmark kernel or training shape matches it exactly.
//
//	go run ./examples/customstencil
package main

import (
	"fmt"
	"log"

	stenciltune "repro"
	"repro/internal/driver"
	"repro/internal/dsl"
)

// Anisotropic diffusion: stronger coupling along x than y/z, plus corner
// terms — a shape outside the four training families.
const source = `
# anisotropic 3-D diffusion with diagonal coupling
stencil anisodiffusion {
    dims    3
    type    double
    buffers 1
    point   ( 0, 0, 0)  0.52
    point   ( 1, 0, 0)  0.12
    point   (-1, 0, 0)  0.12
    point   ( 0, 1, 0)  0.05
    point   ( 0,-1, 0)  0.05
    point   ( 0, 0, 1)  0.05
    point   ( 0, 0,-1)  0.05
    point   ( 1, 1, 0)  0.01
    point   (-1,-1, 0)  0.01
    point   ( 1, 0, 1)  0.01
    point   (-1, 0,-1)  0.01
}
`

func main() {
	defs, err := dsl.ParseString(source)
	if err != nil {
		log.Fatal(err)
	}
	def := defs[0]
	fmt.Printf("parsed stencil %q: %d points, offset %d\n",
		def.Name, len(def.Points), def.Kernel().Shape.MaxOffset())

	// Train and tune. The model has never seen this shape: the ranking
	// generalizes from the Fig. 1 training families.
	fmt.Println("training model (1920 points)...")
	model, _, err := stenciltune.Train(stenciltune.TrainOptions{TrainingPoints: 1920})
	if err != nil {
		log.Fatal(err)
	}
	q := stenciltune.Instance{Kernel: def.Kernel(), Size: stenciltune.Size3D(96, 96, 96)}
	tv, elapsed, err := model.Tuner().TunePredefined(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tuned in %v: %v\n", elapsed.Round(1000), tv)

	// Deploy: run 25 diffusion steps with periodic boundaries through the
	// time-stepping driver.
	sim, err := driver.New(def.Executable(), 96, 96, 96, tv, driver.Periodic)
	if err != nil {
		log.Fatal(err)
	}
	g := sim.Level(0)
	g.Set(48, 48, 48, 1000) // a point source
	before := g.InteriorSum()
	if err := sim.Run(25); err != nil {
		log.Fatal(err)
	}
	after := sim.Level(0).InteriorSum()
	fmt.Printf("25 diffusion steps: mass %.1f -> %.1f (conserved: weights sum to 1)\n", before, after)
	fmt.Printf("peak diffused from 1000.0 to %.2f\n", sim.Level(0).At(48, 48, 48))
}
