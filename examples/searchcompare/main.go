// Search comparison: iterative compilation vs ordinal regression on one
// stencil — a miniature of the paper's Fig. 5.
//
// Four search baselines (generational GA, differential evolution, evolution
// strategy, steady-state GA) tune the gradient stencil for 1024 evaluations
// each, while the trained ranking model picks its configuration without any
// evaluation. The printout shows best runtime, the cost each method spent,
// and the hybrid mode that measures just the model's top-8.
//
//	go run ./examples/searchcompare
package main

import (
	"fmt"
	"log"

	stenciltune "repro"
)

func main() {
	// Fan the simulator out to all cores, then memoize on top, so
	// configurations proposed by several engines are costed once and each
	// generation's cache misses evaluate concurrently. Neither wrapper
	// changes any result — only how fast it arrives.
	eval := stenciltune.MemoizedEvaluator(stenciltune.BatchedEvaluator(stenciltune.Simulator(), -1))
	q := stenciltune.Instance{
		Kernel: stenciltune.Gradient(),
		Size:   stenciltune.Size3D(256, 256, 256),
	}
	fmt.Printf("tuning %s\n\n", q.ID())

	fmt.Println("training ranking model (3840 points)...")
	model, report, err := stenciltune.Train(stenciltune.TrainOptions{TrainingPoints: 3840})
	if err != nil {
		log.Fatal(err)
	}
	tuner := model.Tuner()

	fmt.Printf("%-26s %14s %16s\n", "method", "best runtime", "evaluations spent")

	// Iterative search baselines, 1024 evaluations each, batched through
	// the evaluator stack above.
	for _, engine := range stenciltune.SearchEngines() {
		res, err := stenciltune.RunSearchBatched(engine, q, eval, 1024, 7, -1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s %12.5f s %16d\n", engine.Name(), res.BestValue, res.Evaluations)
	}

	// Standalone ordinal regression: zero evaluations.
	best, elapsed, err := tuner.TunePredefined(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-26s %12.5f s %16d   (ranked 8640 configs in %v)\n",
		"ord. regression", eval.Runtime(q, best), 0, elapsed.Round(1000))

	// Hybrid: measure only the model's top-8.
	hbest, hval, err := tuner.HybridTune(q, 8, eval)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-26s %12.5f s %16d   (%v)\n", "ord. regression + top-8", hval, 8, hbest)

	fmt.Printf("\nmodel training amortizes across stencils: %v once, <ms per stencil after\n",
		report.TrainTime.Round(1e6))
}
