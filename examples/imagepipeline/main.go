// Image pipeline: tune and run a blur → edge-detection pipeline for real.
//
// This example exercises the image-processing motivation of the paper's
// introduction (blur and edge are two of the Table III benchmarks): a
// trained model picks tuning vectors for both stages, and the built-in
// blocked multithreaded executor then runs the full pipeline on a synthetic
// image, comparing wall-clock time against an untuned sweep.
//
//	go run ./examples/imagepipeline
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	stenciltune "repro"
	"repro/internal/exec"
	"repro/internal/grid"
)

const (
	width  = 1024
	height = 768
)

func main() {
	// Train a compact model; for production use, train once with
	// stencil-train and load the saved model here.
	fmt.Println("training model...")
	model, _, err := stenciltune.Train(stenciltune.TrainOptions{TrainingPoints: 1920})
	if err != nil {
		log.Fatal(err)
	}
	tuner := model.Tuner()

	// Tune both pipeline stages.
	blurQ := stenciltune.Instance{Kernel: stenciltune.Blur(), Size: stenciltune.Size2D(width, height)}
	edgeQ := stenciltune.Instance{Kernel: stenciltune.Edge(), Size: stenciltune.Size2D(width, height)}
	blurT, _, err := tuner.TunePredefined(blurQ)
	if err != nil {
		log.Fatal(err)
	}
	edgeT, _, err := tuner.TunePredefined(edgeQ)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("blur tuned: %v\nedge tuned: %v\n", blurT, edgeT)

	// Build the image: a synthetic pattern with sharp structure so the
	// edge detector has something to find. Halo 2 covers both kernels.
	img := grid.New2D(width, height, 2)
	for y := -2; y < height+2; y++ {
		for x := -2; x < width+2; x++ {
			v := 0.0
			if (x/64+y/64)%2 == 0 { // checkerboard
				v = 1.0
			}
			v += 0.25 * math.Sin(float64(x)*0.08)
			img.Set(x, y, 0, v)
		}
	}
	blurred := grid.New2D(width, height, 2)
	edges := grid.New2D(width, height, 2)

	runner := exec.NewRunner()
	blurK := exec.BlurExec()
	edgeK := exec.EdgeExec()

	pipeline := func(bt, et stenciltune.TuningVector) time.Duration {
		start := time.Now()
		if err := runner.Run(blurK, blurred, []*grid.Grid[float64]{img}, bt); err != nil {
			log.Fatal(err)
		}
		// The blur output needs its halo refreshed before edge reads it;
		// for this demo the interior suffices since edge only reaches 1.
		if err := runner.Run(edgeK, edges, []*grid.Grid[float64]{blurred}, et); err != nil {
			log.Fatal(err)
		}
		return time.Since(start)
	}

	// Warm up, then time tuned vs untuned.
	untuned := stenciltune.TuningVector{Bx: 1024, By: 1024, Bz: 1, U: 0, C: 1}
	pipeline(blurT, edgeT)
	tuned := pipeline(blurT, edgeT)
	pipeline(untuned, untuned)
	plain := pipeline(untuned, untuned)

	fmt.Printf("\npipeline wall-clock on this machine (%dx%d):\n", width, height)
	fmt.Printf("  tuned:   %v\n", tuned)
	fmt.Printf("  untuned: %v\n", plain)
	fmt.Printf("  ratio:   %.2fx\n", float64(plain)/float64(tuned))

	// Sanity: edge response should be strongest at the checkerboard seams.
	var maxEdge float64
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			if v := math.Abs(edges.At(x, y, 0)); v > maxEdge {
				maxEdge = v
			}
		}
	}
	fmt.Printf("max |edge response| = %.3f (expect > 1 at seams)\n", maxEdge)
}
