package stenciltune

// Benchmark harness: one testing.B entry per table and figure of the paper,
// plus the ablation benches DESIGN.md §4 calls out. Run with
//
//	go test -bench=. -benchmem
//
// Benchmarks report domain metrics via b.ReportMetric:
//
//	tau        — mean Kendall τ of the model over the predefined sets
//	quality    — mean fraction of the predefined-set oracle achieved by top-1
//	ns/rank    — latency of ranking one candidate set
//
// The full experiment outputs (the rendered tables/series) come from
// cmd/stencil-bench; these benches regenerate the same computations and time
// them.

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/exec"
	"repro/internal/feature"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/perfmodel"
	"repro/internal/ranking"
	"repro/internal/search"
	"repro/internal/shape"
	"repro/internal/stencil"
	"repro/internal/svmrank"
	"repro/internal/trainer"
	"repro/internal/tunespace"
)

var (
	benchOnce    sync.Once
	benchHarness *bench.Harness
)

// harness returns the shared experiment harness (models are cached across
// benchmarks, mirroring how the paper trains once and evaluates many times).
func harness() *bench.Harness {
	benchOnce.Do(func() {
		benchHarness = bench.New(perfmodel.New(machine.XeonE52680v3()), 1)
	})
	return benchHarness
}

// ---------------------------------------------------------------------------
// Tables and figures

// BenchmarkTable2 regenerates Table II: per-phase costs across the twelve
// training-set sizes (960 … 32000).
func BenchmarkTable2(b *testing.B) {
	h := harness()
	for i := 0; i < b.N; i++ {
		rows, err := h.Table2(trainer.Table2Sizes())
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 12 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkFig4 regenerates the Fig. 4 speedup comparison over all 17
// benchmarks: four search engines at 1024 evaluations vs ordinal regression
// at four training sizes.
func BenchmarkFig4(b *testing.B) {
	h := harness()
	for i := 0; i < b.N; i++ {
		rows, err := h.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		// Report the mean ordinal-regression speedup at the largest size.
		big := h.Fig4Sizes[len(h.Fig4Sizes)-1]
		var sum float64
		for _, r := range rows {
			sum += r.Regression[big]
		}
		b.ReportMetric(sum/float64(len(rows)), "speedup")
	}
}

// BenchmarkFig5 regenerates the four convergence panels of Fig. 5.
func BenchmarkFig5(b *testing.B) {
	h := harness()
	for i := 0; i < b.N; i++ {
		series, err := h.Fig5(nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(series) != 4 {
			b.Fatalf("series = %d", len(series))
		}
	}
}

// BenchmarkFig6 regenerates the per-instance Kendall τ comparison of Fig. 6
// (training sizes 960 and 6720).
func BenchmarkFig6(b *testing.B) {
	h := harness()
	for i := 0; i < b.N; i++ {
		res, err := h.Fig6(nil)
		if err != nil {
			b.Fatal(err)
		}
		med := ranking.Summarize(trainer.TauValues(res.Taus[6720])).Median
		b.ReportMetric(med, "tau-median")
	}
}

// BenchmarkFig7 regenerates the τ distribution across the twelve training
// sizes of Fig. 7.
func BenchmarkFig7(b *testing.B) {
	h := harness()
	for i := 0; i < b.N; i++ {
		rows, err := h.Fig7(nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[len(rows)-1].Summary.Median, "tau-median")
		b.ReportMetric(rows[len(rows)-1].Summary.IQR, "tau-iqr")
	}
}

// ---------------------------------------------------------------------------
// Component micro-benchmarks

// BenchmarkRegressionLatency measures the paper's "<1 ms" claim: ranking the
// full 8640-configuration 3-D predefined set with a trained model.
func BenchmarkRegressionLatency(b *testing.B) {
	model, _, err := Train(TrainOptions{TrainingPoints: 960})
	if err != nil {
		b.Fatal(err)
	}
	tuner := model.Tuner()
	q := Instance{Kernel: Laplacian(), Size: Size3D(128, 128, 128)}
	cands := PredefinedCandidates(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tuner.Rank(q, cands); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraining measures SVM fitting alone at the paper's headline size.
func BenchmarkTraining(b *testing.B) {
	eval := perfmodel.New(machine.XeonE52680v3())
	set, err := dataset.Generate(eval, dataset.Options{TargetPoints: 3840, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	cfg := trainer.DefaultConfig(3840, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := svmrank.Train(set.Data, cfg.SVM); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPerfModel measures simulator evaluation throughput (it bounds how
// fast every search baseline can run).
func BenchmarkPerfModel(b *testing.B) {
	m := perfmodel.New(machine.XeonE52680v3())
	q := stencil.Instance{Kernel: stencil.Laplacian(), Size: stencil.Size3D(256, 256, 256)}
	tv := tunespace.Vector{Bx: 64, By: 16, Bz: 4, U: 2, C: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Runtime(q, tv)
	}
}

// BenchmarkFeatureEncode measures encoder throughput.
func BenchmarkFeatureEncode(b *testing.B) {
	enc := feature.NewEncoder()
	q := stencil.Instance{Kernel: stencil.Tricubic(), Size: stencil.Size3D(256, 256, 256)}
	tv := tunespace.Vector{Bx: 64, By: 16, Bz: 4, U: 2, C: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.Encode(q, tv)
	}
}

// BenchmarkRealExecutor measures the actual Go stencil executor on the
// 7-point laplacian (the Measure evaluation mode's cost).
func BenchmarkRealExecutor(b *testing.B) {
	eval := Measured()
	q := Instance{Kernel: Laplacian(), Size: Size3D(64, 64, 64)}
	tv := TuningVector{Bx: 32, By: 16, Bz: 8, U: 4, C: 2}
	b.SetBytes(int64(q.Size.Points() * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := eval.Runtime(q, tv); r <= 0 {
			b.Fatal("non-positive runtime")
		}
	}
}

// execBenchWorkspace allocates an output grid and filled input buffers of
// element type T for the executor benchmarks (nz = 1 for planar kernels).
func execBenchWorkspace[T grid.Float](k *exec.LinearKernel, n, nz int) (*grid.Grid[T], []*grid.Grid[T]) {
	halo := k.MaxOffset()
	haloZ := halo
	if nz == 1 {
		haloZ = 0
	}
	out := grid.NewOf[T](n, n, nz, halo, haloZ)
	var ins []*grid.Grid[T]
	for b := 0; b < k.Buffers; b++ {
		g := grid.NewOf[T](n, n, nz, halo, haloZ)
		g.FillPattern()
		ins = append(ins, g)
	}
	return out, ins
}

// asym2DExec is an asymmetric 6-term 2-D kernel (an upwind-biased first
// derivative plus transverse coupling). Its offset set matches none of the
// structural fast-path shapes, so it always exercises the generic term-plan
// executor — the path most generated training kernels take.
func asym2DExec() *exec.LinearKernel {
	return &exec.LinearKernel{Name: "asym2d", Buffers: 1, Terms: []exec.Term{
		{Offset: shape.Point{}, Weight: 0.42},
		{Offset: shape.Point{X: 1}, Weight: -0.21},
		{Offset: shape.Point{X: 2}, Weight: 0.04},
		{Offset: shape.Point{X: -1}, Weight: 0.31},
		{Offset: shape.Point{Y: 1}, Weight: 0.17},
		{Offset: shape.Point{Y: -2}, Weight: 0.27},
	}}
}

// execBenchCase is one (kernel, geometry, precision) point of the executor
// benchmarks.
type execBenchCase struct {
	name string
	k    *exec.LinearKernel
	n    int // grid extent per dimension
	nz   int // 1 for 2-D kernels
	tv   tunespace.Vector
	f32  bool // execute through the float32 engine
}

// execBenchCases covers the small grids where fixed per-call overhead
// dominates (the regime that pollutes Measure-mode training signals), a
// medium grid where compute dominates, and — via asym2d and gradient — the
// generic term-plan path that kernels without a structural fast path take.
// The "-f32" variants run the identical kernel+geometry through the float32
// engine; on the bandwidth-bound cases the halved element size should show
// up as throughput (CI renders the f32-vs-f64 delta). Run with -benchmem:
// the compiled path must report 0 allocs/op in steady state for both types.
func execBenchCases() []execBenchCase {
	tv3 := tunespace.Vector{Bx: 32, By: 16, Bz: 8, U: 4, C: 2}
	tv2 := tunespace.Vector{Bx: 64, By: 16, Bz: 1, U: 4, C: 2}
	var cases []execBenchCase
	for _, n := range []int{8, 16, 64} {
		cases = append(cases, execBenchCase{fmt.Sprintf("n=%d", n), exec.LaplacianExec(), n, n, tv3, false})
	}
	for _, n := range []int{64, 512} {
		cases = append(cases, execBenchCase{fmt.Sprintf("asym2d-n=%d", n), asym2DExec(), n, 1, tv2, false})
	}
	cases = append(cases, execBenchCase{"gradient-n=64", exec.GradientExec(), 64, 64, tv3, false})
	// DRAM-resident laplacian (192³ ≈ 113 MB of float64 across the two
	// grids): the canonical bandwidth-bound case where halving the element
	// size must show up as throughput.
	cases = append(cases, execBenchCase{"n=192", exec.LaplacianExec(), 192, 192, tv3, false})
	// Single-precision variants of the bandwidth-bound cases.
	cases = append(cases,
		execBenchCase{"n=64-f32", exec.LaplacianExec(), 64, 64, tv3, true},
		execBenchCase{"n=192-f32", exec.LaplacianExec(), 192, 192, tv3, true},
		execBenchCase{"asym2d-n=512-f32", asym2DExec(), 512, 1, tv2, true},
		execBenchCase{"gradient-n=64-f32", exec.GradientExec(), 64, 64, tv3, true},
	)
	return cases
}

// benchRunCompiled is the BenchmarkRunCompiled body for one element type.
func benchRunCompiled[T grid.Float](b *testing.B, tc execBenchCase) {
	r := exec.NewRunnerOf[T]()
	defer r.Close()
	out, ins := execBenchWorkspace[T](tc.k, tc.n, tc.nz)
	if err := r.Run(tc.k, out, ins, tc.tv); err != nil { // compile + warm pool
		b.Fatal(err)
	}
	b.SetBytes(int64(tc.n * tc.n * tc.nz * out.ElemBytes()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Run(tc.k, out, ins, tc.tv); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunCompiled measures steady-state execution through the cached
// compiled program and the persistent worker pool, in both precisions.
func BenchmarkRunCompiled(b *testing.B) {
	for _, tc := range execBenchCases() {
		b.Run(tc.name, func(b *testing.B) {
			if tc.f32 {
				benchRunCompiled[float32](b, tc)
			} else {
				benchRunCompiled[float64](b, tc)
			}
		})
	}
}

// fusedBenchCases sweeps the temporal fusion depth on the DRAM-resident
// laplacian (the case fusion exists for): one fused sweep advances K steps
// while streaming the input through cache once, so per-step cost should drop
// roughly with the depth until the wavefront working set spills.
func fusedBenchCases() []execBenchCase {
	tv3 := tunespace.Vector{Bx: 32, By: 16, Bz: 8, U: 4, C: 2}
	var cases []execBenchCase
	for _, k := range []int{1, 2, 3, 4} {
		tv := tv3
		tv.K = k
		cases = append(cases,
			execBenchCase{fmt.Sprintf("n=192-k=%d", k), exec.LaplacianExec(), 192, 192, tv, false},
			execBenchCase{fmt.Sprintf("n=192-k=%d-f32", k), exec.LaplacianExec(), 192, 192, tv, true},
		)
	}
	return cases
}

// benchRunFused is the BenchmarkRunFused body for one element type. It
// reports per-STEP ns/op — a sweep of the fused program counts as K
// operations — so every row is directly comparable with the unfused
// BenchmarkRunCompiled/n=192 baseline.
func benchRunFused[T grid.Float](b *testing.B, tc execBenchCase) {
	r := exec.NewRunnerOf[T]()
	defer r.Close()
	out, ins := execBenchWorkspace[T](tc.k, tc.n, tc.nz)
	fp, err := r.CompileFused(tc.k, out, ins[0], tc.tv)
	if err != nil {
		b.Fatal(err)
	}
	if err := fp.Run(out, ins[0]); err != nil { // warm pool + scratch
		b.Fatal(err)
	}
	steps := fp.Steps()
	b.SetBytes(int64(tc.n * tc.n * tc.nz * out.ElemBytes()))
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; done += steps {
		if err := fp.Run(out, ins[0]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunFused measures the fused multi-timestep wavefront engine at
// depths 1..4 in both precisions. Depth 1 runs the degenerate one-level
// schedule and quantifies the engine's overhead against the plain compiled
// path; depths ≥2 are where the DRAM-traffic savings must show up (CI fails
// if they don't).
func BenchmarkRunFused(b *testing.B) {
	for _, tc := range fusedBenchCases() {
		b.Run(tc.name, func(b *testing.B) {
			if tc.f32 {
				benchRunFused[float32](b, tc)
			} else {
				benchRunFused[float64](b, tc)
			}
		})
	}
}

// benchRunLegacy is the BenchmarkRunLegacyPath body for one element type.
func benchRunLegacy[T grid.Float](b *testing.B, tc execBenchCase) {
	r := exec.NewRunnerOf[T]()
	defer r.Close()
	out, ins := execBenchWorkspace[T](tc.k, tc.n, tc.nz)
	if err := r.RunLegacy(tc.k, out, ins, tc.tv); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(tc.n * tc.n * tc.nz * out.ElemBytes()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.RunLegacy(tc.k, out, ins, tc.tv); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunLegacyPath measures the pre-compile baseline: tile list, term
// plan and fast-path detection rebuilt and goroutines spawned on every call.
func BenchmarkRunLegacyPath(b *testing.B) {
	for _, tc := range execBenchCases() {
		b.Run(tc.name, func(b *testing.B) {
			if tc.f32 {
				benchRunLegacy[float32](b, tc)
			} else {
				benchRunLegacy[float64](b, tc)
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §4)

// meanQualityAndTau scores a model across all Table III benchmarks: the mean
// fraction of the predefined-set oracle achieved by the top-1 pick, and the
// mean Kendall τ over the predefined sets.
func meanQualityAndTau(b *testing.B, eval dataset.Evaluator, model *svmrank.Model) (float64, float64) {
	b.Helper()
	tuner := core.New(model)
	var sumQ, sumTau float64
	n := 0
	for _, q := range stencil.Benchmarks() {
		cands := tunespace.NewSpace(q.Kernel.Dims()).Predefined()
		quality, err := core.RankQuality(eval, tuner, q, cands)
		if err != nil {
			b.Fatal(err)
		}
		order, err := tuner.Rank(q, cands)
		if err != nil {
			b.Fatal(err)
		}
		rts := make([]float64, len(cands))
		predRank := make([]float64, len(cands))
		for i, v := range cands {
			rts[i] = eval.Runtime(q, v)
		}
		for pos, o := range order {
			predRank[o] = float64(pos)
		}
		sumQ += quality
		sumTau += ranking.KendallTau(rts, predRank)
		n++
	}
	return sumQ / float64(n), sumTau / float64(n)
}

// ablationTrain trains one model with a modified config.
func ablationTrain(b *testing.B, mutate func(*trainer.Config)) (dataset.Evaluator, *svmrank.Model) {
	b.Helper()
	eval := perfmodel.New(machine.XeonE52680v3())
	cfg := trainer.DefaultConfig(3840, 1)
	if mutate != nil {
		mutate(&cfg)
	}
	res, err := trainer.Train(eval, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return eval, res.Model
}

// BenchmarkAblationPairStrategy compares the three pair-generation
// strategies of svmrank at a fixed training size.
func BenchmarkAblationPairStrategy(b *testing.B) {
	for _, strat := range []svmrank.PairStrategy{svmrank.FullPairs, svmrank.AdjacentPairs, svmrank.CappedPairs} {
		b.Run(strat.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eval, model := ablationTrain(b, func(c *trainer.Config) {
					c.SVM.Pairs.Strategy = strat
				})
				q, tau := meanQualityAndTau(b, eval, model)
				b.ReportMetric(q, "quality")
				b.ReportMetric(tau, "tau")
			}
		})
	}
}

// BenchmarkAblationSolver compares dual coordinate descent with averaged SGD.
func BenchmarkAblationSolver(b *testing.B) {
	for _, solver := range []svmrank.Solver{svmrank.DualCoordinateDescent, svmrank.SGD} {
		b.Run(solver.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eval, model := ablationTrain(b, func(c *trainer.Config) {
					c.SVM.Solver = solver
					if solver == svmrank.SGD {
						c.SVM.Epochs = 15
					}
				})
				q, tau := meanQualityAndTau(b, eval, model)
				b.ReportMetric(q, "quality")
				b.ReportMetric(tau, "tau")
			}
		})
	}
}

// BenchmarkAblationC sweeps the regularization parameter (the paper's
// "parameter sensitivity" analysis around its C=0.01 operating point).
func BenchmarkAblationC(b *testing.B) {
	for _, c := range []float64{0.01, 0.1, 1, 3, 10, 100} {
		name := "C=" + trimFloat(c)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eval, model := ablationTrain(b, func(cfg *trainer.Config) {
					cfg.SVM.C = c
				})
				q, tau := meanQualityAndTau(b, eval, model)
				b.ReportMetric(q, "quality")
				b.ReportMetric(tau, "tau")
			}
		})
	}
}

func trimFloat(v float64) string {
	switch {
	case v == float64(int(v)):
		return itoa(int(v))
	case v >= 0.1:
		return "0." + itoa(int(v*10)%10)
	default:
		return "0.0" + itoa(int(v*100)%100)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var d []byte
	for v > 0 {
		d = append([]byte{byte('0' + v%10)}, d...)
		v /= 10
	}
	return string(d)
}

// BenchmarkAblationFeatures drops feature blocks one at a time to measure
// each block's contribution to ranking quality.
func BenchmarkAblationFeatures(b *testing.B) {
	cases := []struct {
		name   string
		blocks feature.Blocks
	}{
		{"all", feature.AllBlocks()},
		{"no-pattern", feature.Blocks{Size: true, Tuning: true, Interactions: true}},
		{"no-size", feature.Blocks{Pattern: true, Tuning: true, Interactions: true}},
		{"no-interactions", feature.Blocks{Pattern: true, Size: true, Tuning: true}},
		{"tuning-only", feature.Blocks{Tuning: true}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eval := perfmodel.New(machine.XeonE52680v3())
				enc := feature.NewEncoderWithBlocks(tc.blocks)
				cfg := trainer.DefaultConfig(3840, 1)
				cfg.Dataset.Encoder = enc
				res, err := trainer.Train(eval, cfg)
				if err != nil {
					b.Fatal(err)
				}
				// Score with the same restricted encoder.
				tuner := &core.Tuner{Model: res.Model, Encoder: enc}
				var sumQ float64
				n := 0
				for _, q := range stencil.Benchmarks() {
					cands := tunespace.NewSpace(q.Kernel.Dims()).Predefined()
					quality, err := core.RankQuality(eval, tuner, q, cands)
					if err != nil {
						b.Fatal(err)
					}
					sumQ += quality
					n++
				}
				b.ReportMetric(sumQ/float64(n), "quality")
			}
		})
	}
}

// BenchmarkSearchEngines times each iterative baseline for a 1024-evaluation
// tuning run on the simulator (the cost the paper's Fig. 5 bars report in
// wall-clock hours on real hardware).
func BenchmarkSearchEngines(b *testing.B) {
	eval := perfmodel.New(machine.XeonE52680v3())
	q := stencil.Instance{Kernel: stencil.Gradient(), Size: stencil.Size3D(256, 256, 256)}
	obj := core.ObjectiveFor(eval, q)
	space := tunespace.NewSpace(3)
	for _, e := range append(search.Engines(), search.NewRandomSearch()) {
		b.Run(e.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := e.Search(space, obj, 1024, int64(i))
				if r.BestValue <= 0 {
					b.Fatal("no solution")
				}
			}
		})
	}
}

// searchBenchCase is the shared workload of the batched-vs-sequential
// search benchmarks: the paper's base engine plus random search on a
// Simulate-backed objective (Gradient 256³, the heaviest Fig. 5 panel).
func searchBenchEngines() []search.Engine {
	return []search.Engine{search.NewGenerationalGA(), search.NewRandomSearch()}
}

const searchBenchBudget = 2048

// searchBenchWorkers is ≥4 on every machine; real overlap obviously needs
// the cores to exist.
func searchBenchWorkers() int { return max(4, runtime.GOMAXPROCS(0)) }

// BenchmarkSearchSequential is the baseline: every candidate evaluated one
// at a time on the calling goroutine (Engine.Search).
func BenchmarkSearchSequential(b *testing.B) {
	eval := perfmodel.New(machine.XeonE52680v3())
	q := stencil.Instance{Kernel: stencil.Gradient(), Size: stencil.Size3D(256, 256, 256)}
	space := tunespace.NewSpace(3)
	for _, e := range searchBenchEngines() {
		b.Run(e.Name(), func(b *testing.B) {
			obj := core.ObjectiveFor(eval, q)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r := e.Search(space, obj, searchBenchBudget, 1)
				if r.BestValue <= 0 {
					b.Fatal("no solution")
				}
			}
		})
	}
}

// BenchmarkSearchBatched runs the same engines through SearchBatch with a
// concurrent batch evaluator; per-generation candidate sets evaluate in
// parallel. The Result is bit-identical to the sequential run (asserted by
// TestBatchedMatchesSequential); only the wall clock differs.
func BenchmarkSearchBatched(b *testing.B) {
	eval := perfmodel.New(machine.XeonE52680v3())
	q := stencil.Instance{Kernel: stencil.Gradient(), Size: stencil.Size3D(256, 256, 256)}
	space := tunespace.NewSpace(3)
	workers := searchBenchWorkers()
	for _, e := range searchBenchEngines() {
		b.Run(e.Name(), func(b *testing.B) {
			obj := core.BatchObjectiveFor(dataset.Batched(eval, workers), q)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r := e.SearchBatch(space, obj, searchBenchBudget, 1)
				if r.BestValue <= 0 {
					b.Fatal("no solution")
				}
			}
		})
	}
}

// BenchmarkDatasetGenerate measures training-set generation at the paper's
// headline size, sequentially and with all cores (per-instance RNG streams
// make both produce the identical Set).
func BenchmarkDatasetGenerate(b *testing.B) {
	for _, workers := range []int{1, searchBenchWorkers()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			eval := perfmodel.New(machine.XeonE52680v3())
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				set, err := dataset.Generate(eval, dataset.Options{TargetPoints: 3840, Seed: 1, Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if set.Len() != 3840 {
					b.Fatalf("set size %d", set.Len())
				}
			}
		})
	}
}

// BenchmarkHybridTopK measures the future-work coupling: rank the predefined
// set, then evaluate only the top-k.
func BenchmarkHybridTopK(b *testing.B) {
	model, _, err := Train(TrainOptions{TrainingPoints: 3840})
	if err != nil {
		b.Fatal(err)
	}
	tuner := model.Tuner()
	eval := Simulator()
	q := Instance{Kernel: Gradient(), Size: Size3D(256, 256, 256)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tuner.HybridTune(q, 16, eval); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSampling compares the paper's uniform-random training-set
// generation with the heuristic mixed sampler (the conclusion's future-work
// direction).
func BenchmarkAblationSampling(b *testing.B) {
	for _, s := range []dataset.Sampling{dataset.UniformRandom, dataset.HeuristicMixed} {
		b.Run(s.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eval, model := ablationTrain(b, func(c *trainer.Config) {
					c.Dataset.Sampling = s
				})
				q, tau := meanQualityAndTau(b, eval, model)
				b.ReportMetric(q, "quality")
				b.ReportMetric(tau, "tau")
			}
		})
	}
}

// BenchmarkPortability quantifies the paper's portability motivation: a
// model trained against one machine's behaviour and deployed on another
// loses ranking quality, which retraining on the new machine recovers.
func BenchmarkPortability(b *testing.B) {
	xeon := perfmodel.New(machine.XeonE52680v3())
	desktop := perfmodel.New(machine.DesktopQuad())

	trainOn := func(eval dataset.Evaluator) *svmrank.Model {
		res, err := trainer.Train(eval, trainer.DefaultConfig(3840, 1))
		if err != nil {
			b.Fatal(err)
		}
		return res.Model
	}
	cases := []struct {
		name        string
		train, test dataset.Evaluator
	}{
		{"native-xeon", xeon, xeon},
		{"cross-desktop-to-xeon", desktop, xeon},
		{"native-desktop", desktop, desktop},
		{"cross-xeon-to-desktop", xeon, desktop},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				model := trainOn(tc.train)
				q, tau := meanQualityAndTau(b, tc.test, model)
				b.ReportMetric(q, "quality")
				b.ReportMetric(tau, "tau")
			}
		})
	}
}
