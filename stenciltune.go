// Package stenciltune is a Go reproduction of "Autotuning Stencil
// Computations with Structural Ordinal Regression Learning" (Cosenza,
// Durillo, Ermon, Juurlink — IPDPS 2017).
//
// It provides an autotuner for stencil computations that learns to *rank*
// code variants instead of classifying them or regressing their runtime:
// training data is organized into partial rankings (one per stencil instance)
// and fitted with a pairwise ranking SVM. The trained model orders candidate
// tuning vectors — loop-blocking sizes, unroll factor and multithreading
// chunk size — for unseen stencils without executing them.
//
// # Quick start
//
//	model, _, err := stenciltune.Train(stenciltune.TrainOptions{TrainingPoints: 3840})
//	if err != nil { ... }
//	tuner := model.Tuner()
//	q := stenciltune.Instance{Kernel: stenciltune.Laplacian(), Size: stenciltune.Size3D(128, 128, 128)}
//	best, _, err := tuner.TunePredefined(q)
//
// Evaluation runs against either the deterministic performance simulator of
// the paper's Xeon E5-2680 v3 testbed (Simulate, the default — reproducible
// and fast) or real timed execution of the stencils by the built-in blocked
// multithreaded Go executor (Measure).
//
// # Batch evaluation and parallelism
//
// Every bulk consumer — search engines, training-set generation, hybrid
// tuning, model scoring — works through batch interfaces. BatchedEvaluator
// fans independent evaluations out to a bounded worker pool,
// MemoizedEvaluator caches (instance, tuning vector) runtimes across
// consumers, TrainOptions.Workers parallelizes training-set generation, and
// RunSearchBatched runs a search engine with per-generation batched
// evaluation. All of it is deterministic: results are committed in proposal
// order and RNG streams are derived per instance, so the same seed produces
// bit-identical results at any worker count.
package stenciltune

import (
	"context"
	"fmt"
	"math"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/exec"
	"repro/internal/feature"
	"repro/internal/machine"
	"repro/internal/perfmodel"
	"repro/internal/search"
	"repro/internal/stencil"
	"repro/internal/store"
	"repro/internal/svmrank"
	"repro/internal/trainer"
	"repro/internal/tunespace"
)

// Re-exported model types. The aliases give external users names for the
// values the API exchanges.
type (
	// Kernel is the static stencil description k = (shape, buffers, dtype).
	Kernel = stencil.Kernel
	// DataType is the element type of a stencil's buffers. It is not just a
	// feature-vector bit: Measure-mode evaluation, benchmarking and the
	// serving measure path execute Float32 stencils in genuine single
	// precision (float32 workspaces and arithmetic).
	DataType = stencil.DataType
	// Size is a grid extent; use Size2D/Size3D to build one.
	Size = stencil.Size
	// Instance is a kernel paired with an input size — the unit the tuner
	// optimizes.
	Instance = stencil.Instance
	// TuningVector is t = (bx, by, bz, u, c, k); k is the temporal fusion
	// depth (0 or 1 = unfused).
	TuningVector = tunespace.Vector
	// Evaluator maps an execution to a runtime in seconds.
	Evaluator = dataset.Evaluator
	// BatchEvaluator additionally costs many tuning vectors of one instance
	// per call (possibly concurrently), in input order.
	BatchEvaluator = dataset.BatchEvaluator
	// SearchResult is the outcome of an iterative search baseline.
	SearchResult = search.Result
	// SearchEngine is an iterative-compilation search method.
	SearchEngine = search.Engine
	// BatchObjective is the batched evaluation hook of SearchEngine.SearchBatch.
	BatchObjective = search.BatchObjective
)

// Supported buffer element types (the two values of DataType).
const (
	Float32 = stencil.Float32
	Float64 = stencil.Float64
)

// Size constructors and benchmark kernels re-exported from the model layer.
var (
	Size2D = stencil.Size2D
	Size3D = stencil.Size3D

	Blur       = stencil.Blur
	Edge       = stencil.Edge
	GameOfLife = stencil.GameOfLife
	Wave       = stencil.Wave
	Tricubic   = stencil.Tricubic
	Divergence = stencil.Divergence
	Gradient   = stencil.Gradient
	Laplacian  = stencil.Laplacian
	Laplacian6 = stencil.Laplacian6

	// Benchmarks returns the 17 test benchmarks of Table III.
	Benchmarks = stencil.Benchmarks
	// KernelByName resolves a Table III kernel name.
	KernelByName = stencil.KernelByName
)

// EvaluateMode selects how stencil executions are costed.
type EvaluateMode int

const (
	// Simulate evaluates on the deterministic analytic model of the
	// paper's Xeon E5-2680 v3 (fast, reproducible; the default).
	Simulate EvaluateMode = iota
	// Measure executes the stencil for real with the built-in blocked
	// multithreaded executor and reports wall-clock time.
	Measure
)

// Simulator returns the deterministic Xeon E5-2680 v3 evaluator.
func Simulator() Evaluator { return perfmodel.New(machine.XeonE52680v3()) }

// measuredEvaluator adapts the real executor to the BatchEvaluator
// interface.
type measuredEvaluator struct {
	m *exec.Measurer
}

// Runtime implements Evaluator. Invalid configurations (which the tuner
// never generates) surface as +Inf rather than an error, so searches simply
// avoid them.
func (e measuredEvaluator) Runtime(q stencil.Instance, t tunespace.Vector) float64 {
	secs, err := e.m.Measure(q, t)
	if err != nil {
		return inf()
	}
	return secs
}

// RuntimeBatch implements BatchEvaluator. The batch serializes onto the
// measuring runner under one lock acquisition — interleaved wall-clock
// timings would corrupt each other, so timing fidelity wins over overlap.
// Invalid configurations report +Inf at their slot like Runtime does.
func (e measuredEvaluator) RuntimeBatch(q stencil.Instance, ts []tunespace.Vector) []float64 {
	out, _ := e.m.MeasureBatch(q, ts)
	return out
}

func inf() float64 { return math.Inf(1) }

// Close stops the persistent worker pool of the underlying executor. The
// evaluator may be reused afterwards.
func (e measuredEvaluator) Close() { e.m.Close() }

// Measured returns an evaluator that runs stencils for real and reports
// wall-clock seconds. Evaluations are orders of magnitude slower than
// Simulate; prefer it for final validation runs. Execution is precision-true:
// a kernel declaring Float32 is run on float32 buffers with float32
// arithmetic, so single-precision stencils observe their real (roughly
// doubled) effective memory bandwidth.
//
// The executor keeps a persistent worker pool and a cache of compiled
// execution plans, so repeated measurements of the same instance are
// allocation-free. Pass the evaluator to CloseEvaluator when discarding it
// before process exit.
func Measured() Evaluator { return measuredEvaluator{m: exec.NewMeasurer()} }

// CloseEvaluator releases resources held by evaluators that own persistent
// worker pools (those from Measured, including ones wrapped by
// BatchedEvaluator or MemoizedEvaluator); it is a no-op for any other
// evaluator.
func CloseEvaluator(e Evaluator) {
	if c, ok := e.(interface{ Close() }); ok {
		c.Close()
	}
}

// BatchedEvaluator wraps an evaluator so batches evaluate on up to workers
// goroutines. Workers follows the same convention as every workers knob in
// this API: 0 or 1 is sequential, negative selects GOMAXPROCS. The wrapped
// evaluator must be safe for concurrent use when more than one worker runs
// — Simulator and Measured both are (the measurer serializes internally to
// protect its timings). Results are always in input order. An evaluator
// that already batches (Measured, MemoizedEvaluator) is returned unchanged
// with its own scheduling policy, so to cache *and* fan out, wrap in this
// order: MemoizedEvaluator(BatchedEvaluator(Simulator(), -1)).
func BatchedEvaluator(e Evaluator, workers int) BatchEvaluator {
	return dataset.Batched(e, workers)
}

// MemoizedEvaluator wraps an evaluator with a concurrency-safe cache keyed
// by (instance, tuning vector), so repeated vectors — across search
// generations, engines sharing the evaluator, or ranking/validation passes
// — are never re-simulated or re-measured.
func MemoizedEvaluator(e Evaluator) BatchEvaluator {
	return dataset.Memoized(e)
}

// EvaluatorFor returns the evaluator for a mode.
func EvaluatorFor(mode EvaluateMode) Evaluator {
	if mode == Measure {
		return Measured()
	}
	return Simulator()
}

// TrainOptions configures Train.
type TrainOptions struct {
	// TrainingPoints is the training-set size (Table II uses 960…32000).
	// Default 3840.
	TrainingPoints int
	// Seed makes training reproducible. Default 1.
	Seed int64
	// Mode selects the evaluation substrate. Default Simulate.
	Mode EvaluateMode
	// C overrides the ranking-SVM regularization (default 3, the
	// calibrated equivalent of the paper's SVM-Rank -c 0.01; see
	// EXPERIMENTS.md).
	C float64
	// Evaluator overrides Mode with a custom evaluator when non-nil.
	Evaluator Evaluator
	// Workers bounds concurrent training-set generation: 0 or 1 generates
	// sequentially, negative selects GOMAXPROCS. Any worker count produces
	// the identical training set (and therefore the identical model) for a
	// given seed; the evaluator must be safe for concurrent use when more
	// than one worker runs, which the built-in Simulate/Measure evaluators
	// are.
	Workers int
}

// TrainReport summarizes what training did.
type TrainReport struct {
	TrainingPoints int
	Pairs          int
	TrainTime      time.Duration
	// SimulatedCompileTime and SimulatedExecTime are the accounted costs a
	// real PATUS+gcc testbed would have spent preparing the training set
	// (the "TS Comp." and "TS Generation" columns of Table II).
	SimulatedCompileTime time.Duration
	SimulatedExecTime    time.Duration
}

// Model is a trained ordinal-regression ranking model, together with the
// training provenance the persistent store records (feature encoding,
// training options, dataset fingerprint, simulated machine).
type Model struct {
	inner *svmrank.Model
	meta  store.Meta
	mach  *machine.Machine
}

// Train builds a training set per Section V-B of the paper (60 generated
// stencil codes, 200 instances, random tuning vectors) and fits the ranking
// model.
func Train(opt TrainOptions) (*Model, TrainReport, error) {
	if opt.TrainingPoints == 0 {
		opt.TrainingPoints = 3840
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	eval := opt.Evaluator
	if eval == nil {
		eval = EvaluatorFor(opt.Mode)
		// This evaluator is ours: release its worker pool (Measure mode)
		// once the training set is built. Caller-supplied evaluators stay
		// untouched.
		defer CloseEvaluator(eval)
	}
	cfg := trainer.DefaultConfig(opt.TrainingPoints, opt.Seed)
	cfg.Dataset.Workers = opt.Workers
	if opt.C != 0 {
		cfg.SVM.C = opt.C
	}
	res, err := trainer.Train(eval, cfg)
	if err != nil {
		return nil, TrainReport{}, err
	}
	report := TrainReport{
		TrainingPoints:       res.Set.Len(),
		Pairs:                res.SVMStats.Pairs,
		TrainTime:            res.SVMStats.TrainTime,
		SimulatedCompileTime: res.Set.SimulatedCompileTime,
		SimulatedExecTime:    res.Set.SimulatedExecTime,
	}
	modeStr := "sim"
	var mach *machine.Machine
	switch {
	case opt.Evaluator != nil:
		modeStr = "custom"
	case opt.Mode == Measure:
		modeStr = "measure"
	default:
		mach = machine.XeonE52680v3()
	}
	meta := store.Meta{
		FeatureDim:         feature.Dim,
		FeatureNames:       feature.Names(),
		Normalization:      "real-valued components normalized to [0,1] (Sec. III-A); sizes and blocking log2-scaled over their parameter ranges",
		TrainingPoints:     res.Set.Len(),
		Seed:               opt.Seed,
		Mode:               modeStr,
		Sampling:           cfg.Dataset.Sampling.String(),
		C:                  cfg.SVM.C,
		Epochs:             cfg.SVM.Epochs,
		PairStrategy:       cfg.SVM.Pairs.Strategy.String(),
		PairWindow:         cfg.SVM.Pairs.Window,
		Pairs:              res.SVMStats.Pairs,
		DatasetFingerprint: res.Set.Fingerprint(),
	}
	return &Model{inner: res.Model, meta: meta, mach: mach}, report, nil
}

// Save persists the bare model weights to a single gob file (the legacy
// format). Prefer SaveModel, which writes the versioned store format with
// full training provenance — the format the serving subsystem loads.
func (m *Model) Save(path string) error { return m.inner.SaveFile(path) }

// SaveModel persists the model into the store directory dir under the given
// artifact name ("default" when empty): a content-hashed, atomically written
// set of JSON documents holding the weights, the trainer provenance and the
// simulated machine description. The resulting directory is what
// stencil-serve serves and what LoadModel / stencil-tune -model load back.
func SaveModel(dir, name string, m *Model) error {
	if name == "" {
		name = "default"
	}
	st, err := store.Open(dir)
	if err != nil {
		return err
	}
	return st.Save(&store.Artifact{Name: name, Model: m.inner, Meta: m.meta, Machine: m.mach})
}

// LoadModel reads a persisted model from either a store directory written by
// SaveModel (an artifact directory, or a store root holding a "default" or
// single artifact) or a legacy gob file written by Model.Save.
func LoadModel(path string) (*Model, error) {
	if isDir(path) {
		a, err := store.LoadPath(path)
		if err != nil {
			return nil, err
		}
		return &Model{inner: a.Model, meta: a.Meta, mach: a.Machine}, nil
	}
	inner, err := svmrank.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return &Model{inner: inner}, nil
}

// Tuner returns the autotuner around this model.
func (m *Model) Tuner() *Tuner {
	return &Tuner{inner: core.New(m.inner)}
}

// Tuner ranks tuning vectors for stencil instances. Ranking never executes
// the stencil; only the optional hybrid mode spends measurements.
type Tuner struct {
	inner *core.Tuner
}

// Rank orders the candidate vectors best-first and returns the permutation.
func (t *Tuner) Rank(q Instance, cands []TuningVector) ([]int, error) {
	return t.inner.Rank(q, cands)
}

// Best returns the top-ranked candidate.
func (t *Tuner) Best(q Instance, cands []TuningVector) (TuningVector, error) {
	return t.inner.Best(q, cands)
}

// TunePredefined ranks the paper's predefined power-of-two configuration set
// (1600 configurations for 2-D stencils, 8640 for 3-D) and returns the
// top-ranked vector and the ranking time.
func (t *Tuner) TunePredefined(q Instance) (TuningVector, time.Duration, error) {
	return t.inner.TunePredefined(q)
}

// HybridTune implements the paper's future-work coupling: rank the
// predefined set for free, then measure only the top-k candidates with the
// given evaluator and return the measured best. The k measurements are
// submitted as one batch: pass a BatchedEvaluator (or any BatchEvaluator)
// to overlap them; plain evaluators run sequentially.
func (t *Tuner) HybridTune(q Instance, k int, eval Evaluator) (TuningVector, float64, error) {
	if eval == nil {
		eval = Simulator()
	}
	cands := tunespace.NewSpace(q.Kernel.Dims()).Predefined()
	res, err := t.inner.HybridTopK(q, cands, k, core.BatchObjectiveFor(dataset.Batched(eval, 1), q))
	if err != nil {
		return TuningVector{}, 0, err
	}
	return res.Best, res.BestValue, nil
}

// PredefinedCandidates returns the paper's predefined configuration set for
// a stencil dimensionality (2 or 3).
func PredefinedCandidates(dims int) []TuningVector {
	return tunespace.NewSpace(dims).Predefined()
}

// SearchEngines returns the four iterative-compilation baselines of the
// paper's evaluation (generational GA, differential evolution, evolution
// strategy, steady-state GA).
func SearchEngines() []SearchEngine { return search.Engines() }

// SearchEngineByName resolves "ga", "de", "es", "sga" or "random".
func SearchEngineByName(name string) (SearchEngine, error) { return search.EngineByName(name) }

// RunSearch tunes an instance with an iterative search baseline under an
// evaluation budget, mirroring the paper's 1024-evaluation runs.
// Evaluations run one at a time on the calling goroutine; RunSearchBatched
// produces the identical result while overlapping them.
func RunSearch(engine SearchEngine, q Instance, eval Evaluator, budget int, seed int64) (SearchResult, error) {
	if err := validateSearch(q, budget); err != nil {
		return SearchResult{}, err
	}
	if eval == nil {
		eval = Simulator()
	}
	space := tunespace.NewSpace(q.Kernel.Dims())
	return engine.Search(space, core.ObjectiveFor(eval, q), budget, seed), nil
}

// RunSearchBatched is RunSearch with concurrent candidate evaluation: each
// generation (or sampling chunk) of the engine is costed as one batch on up
// to workers goroutines (0 or 1 = sequential, negative = GOMAXPROCS; when
// eval already implements BatchEvaluator its own scheduling policy wins and
// workers is ignored — see BatchedEvaluator for how to compose wrappers).
// Results are committed in proposal order, so for the deterministic
// simulator the SearchResult — Best, BestValue and the full History — is
// bit-identical to RunSearch under the same seed. The evaluator must be
// safe for concurrent use when more than one worker runs; Measure-mode
// evaluators serialize internally, so they gain timing fidelity but no
// overlap.
func RunSearchBatched(engine SearchEngine, q Instance, eval Evaluator, budget int, seed int64, workers int) (SearchResult, error) {
	return RunSearchBatchedContext(context.Background(), engine, q, eval, budget, seed, workers)
}

// RunSearchBatchedContext is RunSearchBatched with cooperative cancellation:
// when ctx is cancelled mid-search the evaluation fan-out stops doing work
// (remaining evaluations report +Inf and return immediately), so a serving
// request timeout bounds the search's cost. The engine still winds down its
// remaining budget over the now-free objective, and the returned result is
// only meaningful when ctx.Err() == nil — callers that time out should
// discard it. With context.Background() the result is bit-identical to
// RunSearchBatched.
func RunSearchBatchedContext(ctx context.Context, engine SearchEngine, q Instance, eval Evaluator, budget int, seed int64, workers int) (SearchResult, error) {
	if err := validateSearch(q, budget); err != nil {
		return SearchResult{}, err
	}
	if eval == nil {
		eval = Simulator()
	}
	space := tunespace.NewSpace(q.Kernel.Dims())
	obj := core.BatchObjectiveFor(dataset.BatchedContext(ctx, eval, workers), q)
	return engine.SearchBatch(space, obj, budget, seed), nil
}

func validateSearch(q Instance, budget int) error {
	if err := q.Validate(); err != nil {
		return err
	}
	if budget <= 0 {
		return fmt.Errorf("stenciltune: budget %d must be positive", budget)
	}
	return nil
}

// isDir reports whether path names an existing directory.
func isDir(path string) bool {
	fi, err := os.Stat(path)
	return err == nil && fi.IsDir()
}
