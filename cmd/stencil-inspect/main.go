// Command stencil-inspect explains what the system is doing: it dumps the
// performance model's cost breakdown for one execution, and the top learned
// weights of a trained ranking model with human-readable feature names.
//
// Usage:
//
//	stencil-inspect -kernel laplacian -size 128x128x128 -tuning 32,16,4,4,2
//	stencil-inspect -model model.gob -top 20
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"strconv"
	"strings"

	"repro/internal/buildinfo"
	"repro/internal/feature"
	"repro/internal/machine"
	"repro/internal/perfmodel"
	"repro/internal/stencil"
	"repro/internal/svmrank"
	"repro/internal/tunespace"
)

func parseSize(s string) (stencil.Size, error) {
	parts := strings.Split(s, "x")
	vals := make([]int, 0, 3)
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v <= 0 {
			return stencil.Size{}, fmt.Errorf("bad size component %q", p)
		}
		vals = append(vals, v)
	}
	switch len(vals) {
	case 2:
		return stencil.Size2D(vals[0], vals[1]), nil
	case 3:
		return stencil.Size3D(vals[0], vals[1], vals[2]), nil
	}
	return stencil.Size{}, fmt.Errorf("size %q must be NxM or NxMxK", s)
}

func parseTuning(s string) (tunespace.Vector, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 5 && len(parts) != 6 {
		return tunespace.Vector{}, fmt.Errorf("tuning %q must be bx,by,bz,u,c or bx,by,bz,u,c,k", s)
	}
	vals := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return tunespace.Vector{}, fmt.Errorf("bad tuning component %q", p)
		}
		vals[i] = v
	}
	tv := tunespace.Vector{Bx: vals[0], By: vals[1], Bz: vals[2], U: vals[3], C: vals[4], K: 1}
	if len(vals) == 6 {
		tv.K = vals[5]
	}
	return tv, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("stencil-inspect: ")

	kernelName := flag.String("kernel", "", "benchmark kernel to cost-model (with -size and -tuning)")
	sizeStr := flag.String("size", "128x128x128", "grid size")
	tuningStr := flag.String("tuning", "32,16,4,4,2", "tuning vector bx,by,bz,u,c[,k]")
	modelPath := flag.String("model", "", "trained model to explain")
	top := flag.Int("top", 16, "how many weights to show per sign")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Read())
		return
	}

	if *kernelName == "" && *modelPath == "" {
		log.Fatal("pass -kernel (cost breakdown) and/or -model (weight inspection)")
	}

	if *kernelName != "" {
		if err := breakdown(*kernelName, *sizeStr, *tuningStr); err != nil {
			log.Fatal(err)
		}
	}
	if *modelPath != "" {
		if err := explain(*modelPath, *top); err != nil {
			log.Fatal(err)
		}
	}
}

// breakdown prints the performance-model cost decomposition.
func breakdown(kernelName, sizeStr, tuningStr string) error {
	k, err := stencil.KernelByName(kernelName)
	if err != nil {
		return err
	}
	size, err := parseSize(sizeStr)
	if err != nil {
		return err
	}
	tv, err := parseTuning(tuningStr)
	if err != nil {
		return err
	}
	q := stencil.Instance{Kernel: k, Size: size}
	if err := q.Validate(); err != nil {
		return err
	}
	if err := tv.Validate(k.Dims()); err != nil {
		return err
	}

	m := perfmodel.New(machine.XeonE52680v3())
	b := m.Evaluate(q, tv)
	fmt.Printf("%s with %v on %s\n\n", q.ID(), tv, m.M.Name)
	fmt.Printf("  tile points          %12.0f\n", b.TilePoints)
	fmt.Printf("  reuse factor         %12.2f   (input bytes re-read per sweep)\n", b.ReuseFactor)
	fmt.Printf("  halo ratio           %12.3f   (inter-tile footprint overhead)\n", b.HaloRatio)
	fmt.Printf("  traffic/point        %12.2f B\n", b.TrafficPerPoint)
	fmt.Printf("  bandwidth            %12.2f GB/s per core\n", b.BandwidthGBs)
	fmt.Printf("  memory time          %12.3f ns/point\n", b.MemNsPerPoint)
	fmt.Printf("  compute time         %12.3f ns/point (SIMD eff %.2f, unroll ×%.2f)\n",
		b.CompNsPerPoint, b.SIMDEfficiency, b.UnrollFactor)
	fmt.Printf("  loop overhead        %12.3f ns/point\n", b.OverheadNs)
	fmt.Printf("  TLB penalty          %12.2f\n", b.TLBPenalty)
	fmt.Printf("  tiles / groups       %8d / %d (chunk %d)\n", b.Tiles, b.Groups, tv.C)
	fmt.Printf("  parallelism          %12.2f of %d cores\n", b.Parallelism, m.M.Cores)
	fmt.Printf("  dispatch cost        %12.3f ms\n", b.DispatchNs/1e6)
	fmt.Printf("\n  runtime              %12.6f s\n", b.Seconds)
	fmt.Printf("  throughput           %12.2f GFlop/s\n", b.GFlops)
	return nil
}

// explain prints the strongest learned weights with feature names.
func explain(path string, top int) error {
	model, err := svmrank.LoadFile(path)
	if err != nil {
		return err
	}
	type wf struct {
		idx int
		w   float64
	}
	var weights []wf
	for i, w := range model.W {
		if w != 0 {
			weights = append(weights, wf{i, w})
		}
	}
	sort.Slice(weights, func(a, b int) bool { return weights[a].w > weights[b].w })

	fmt.Printf("\nmodel %s: %d non-zero weights (C=%g); higher score = better predicted rank\n",
		path, len(weights), model.C)
	fmt.Printf("\nstrongest positive weights (configurations the model favours):\n")
	for i := 0; i < top && i < len(weights); i++ {
		fmt.Printf("  %-22s %+.4f\n", feature.Name(weights[i].idx), weights[i].w)
	}
	fmt.Printf("\nstrongest negative weights (configurations the model avoids):\n")
	for i := 0; i < top && i < len(weights); i++ {
		j := len(weights) - 1 - i
		if weights[j].w >= 0 {
			break
		}
		fmt.Printf("  %-22s %+.4f\n", feature.Name(weights[j].idx), weights[j].w)
	}
	return nil
}
