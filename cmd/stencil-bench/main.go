// Command stencil-bench regenerates the tables and figures of the paper's
// evaluation section (the per-experiment index is in DESIGN.md §3):
//
//	stencil-bench -exp table2   # Table II: training-phase costs
//	stencil-bench -exp table3   # Table III: benchmark inventory
//	stencil-bench -exp fig4     # Fig. 4: speedup vs GA-1024 base
//	stencil-bench -exp fig5     # Fig. 5: GFlop/s vs evaluations + time-to-solution
//	stencil-bench -exp fig6     # Fig. 6: per-instance Kendall tau
//	stencil-bench -exp fig7     # Fig. 7: tau distribution across TS sizes
//	stencil-bench -exp all
//
// Pass -csv DIR to additionally dump machine-readable results. Pass
// -cpuprofile / -memprofile to capture pprof profiles of a run (the
// intended way to inspect executor hot paths without editing code):
//
//	stencil-bench -exp table2 -cpuprofile cpu.out -memprofile mem.out
//	go tool pprof cpu.out
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/buildinfo"
	"repro/internal/machine"
	"repro/internal/perfmodel"
	"repro/internal/report"
	"repro/internal/trainer"
)

// profiles owns the -cpuprofile/-memprofile lifecycle. Both files are
// created up front so a bad path fails before the (potentially long)
// experiment run, not after it. finish must run on every exit path —
// including log.Fatal, which skips defers — so fatalf routes through it.
type profiles struct {
	once    sync.Once
	cpuFile *os.File
	memFile *os.File
}

func (p *profiles) start(cpuPath, memPath string) {
	if memPath != "" {
		f, err := os.Create(memPath)
		if err != nil {
			log.Fatal(err)
		}
		p.memFile = f
	}
	if cpuPath == "" {
		return
	}
	f, err := os.Create(cpuPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		log.Fatal(err)
	}
	p.cpuFile = f
}

func (p *profiles) finish() {
	p.once.Do(func() {
		if p.cpuFile != nil {
			pprof.StopCPUProfile()
			p.cpuFile.Close()
			fmt.Printf("wrote %s\n", p.cpuFile.Name())
		}
		if p.memFile != nil {
			defer p.memFile.Close()
			runtime.GC() // flush recently freed objects out of the profile
			if err := pprof.WriteHeapProfile(p.memFile); err != nil {
				log.Print(err)
				return
			}
			fmt.Printf("wrote %s\n", p.memFile.Name())
		}
	})
}

func (p *profiles) fatalf(format string, args ...any) {
	p.finish()
	log.Fatalf(format, args...)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("stencil-bench: ")

	exp := flag.String("exp", "all", "experiment: table1, table2, table3, fig4, fig5, fig6, fig7 or all")
	seed := flag.Int64("seed", 1, "random seed (same seed reproduces the report)")
	budget := flag.Int("budget", 1024, "search evaluation budget (the paper uses 1024)")
	workers := flag.Int("workers", -1, "concurrent training-set generation workers (-1 = all cores, 1 = sequential); the report is identical for any value")
	csvDir := flag.String("csv", "", "directory to write CSV result files (empty = none)")
	htmlPath := flag.String("html", "", "write a standalone HTML report with SVG charts (requires -exp all)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile (post-GC, at exit) to this file")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Read())
		return
	}

	var prof profiles
	prof.start(*cpuProfile, *memProfile)
	defer prof.finish()

	var htmlData report.Data

	h := bench.New(perfmodel.New(machine.XeonE52680v3()), *seed)
	defer h.Close()
	h.Budget = *budget
	h.Workers = *workers
	// Final configurations are re-measured with an independent noise
	// stream, as the paper's reported speedups are fresh measurements.
	validator := perfmodel.New(machine.XeonE52680v3())
	validator.Seed = 7777
	h.Validator = validator

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			prof.fatalf("%v", err)
		}
	}

	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := f(); err != nil {
			prof.fatalf("%s: %v", name, err)
		}
	}

	run("table1", func() error {
		fmt.Println(bench.RenderTable1(h.Table1()))
		return nil
	})

	run("table3", func() error {
		fmt.Println(bench.RenderTable3())
		return nil
	})

	run("table2", func() error {
		rows, err := h.Table2(trainer.Table2Sizes())
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderTable2(rows))
		htmlData.Table2 = rows
		return writeCSV(*csvDir, "table2.csv", func(f *os.File) error {
			return bench.WriteTable2CSV(f, rows)
		})
	})

	run("fig4", func() error {
		rows, err := h.Fig4()
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderFig4(rows, h.Fig4Sizes))
		htmlData.Fig4 = rows
		return writeCSV(*csvDir, "fig4.csv", func(f *os.File) error {
			return bench.WriteFig4CSV(f, rows, h.Fig4Sizes)
		})
	})

	run("fig5", func() error {
		series, err := h.Fig5(nil)
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderFig5(series, h.Fig4Sizes))
		htmlData.Fig5 = series
		return writeCSV(*csvDir, "fig5.csv", func(f *os.File) error {
			return bench.WriteFig5CSV(f, series)
		})
	})

	run("fig6", func() error {
		res, err := h.Fig6(nil)
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderFig6(res))
		htmlData.Fig6 = &res
		return writeCSV(*csvDir, "fig6.csv", func(f *os.File) error {
			return bench.WriteFig6CSV(f, res)
		})
	})

	run("fig7", func() error {
		rows, err := h.Fig7(nil)
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderFig7(rows))
		htmlData.Fig7 = rows
		return writeCSV(*csvDir, "fig7.csv", func(f *os.File) error {
			return bench.WriteFig7CSV(f, rows)
		})
	})

	switch *exp {
	case "all", "table1", "table2", "table3", "fig4", "fig5", "fig6", "fig7":
	default:
		prof.fatalf("unknown experiment %q", *exp)
	}

	if *htmlPath != "" {
		htmlData.Fig4Sizes = h.Fig4Sizes
		htmlData.Generated = time.Now()
		htmlData.MachineTag = "simulated " + machine.XeonE52680v3().Name
		f, err := os.Create(*htmlPath)
		if err != nil {
			prof.fatalf("%v", err)
		}
		defer f.Close()
		if err := report.Write(f, htmlData); err != nil {
			prof.fatalf("%v", err)
		}
		if err := f.Close(); err != nil {
			prof.fatalf("%v", err)
		}
		fmt.Printf("wrote %s\n", *htmlPath)
	}
}

// writeCSV writes one CSV file into dir (no-op when dir is empty).
func writeCSV(dir, name string, write func(*os.File) error) error {
	if dir == "" {
		return nil
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := write(f); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
