// Command stencil-bench regenerates the tables and figures of the paper's
// evaluation section (the per-experiment index is in DESIGN.md §3):
//
//	stencil-bench -exp table2   # Table II: training-phase costs
//	stencil-bench -exp table3   # Table III: benchmark inventory
//	stencil-bench -exp fig4     # Fig. 4: speedup vs GA-1024 base
//	stencil-bench -exp fig5     # Fig. 5: GFlop/s vs evaluations + time-to-solution
//	stencil-bench -exp fig6     # Fig. 6: per-instance Kendall tau
//	stencil-bench -exp fig7     # Fig. 7: tau distribution across TS sizes
//	stencil-bench -exp all
//
// Pass -csv DIR to additionally dump machine-readable results.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/bench"
	"repro/internal/machine"
	"repro/internal/perfmodel"
	"repro/internal/report"
	"repro/internal/trainer"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("stencil-bench: ")

	exp := flag.String("exp", "all", "experiment: table1, table2, table3, fig4, fig5, fig6, fig7 or all")
	seed := flag.Int64("seed", 1, "random seed (same seed reproduces the report)")
	budget := flag.Int("budget", 1024, "search evaluation budget (the paper uses 1024)")
	workers := flag.Int("workers", -1, "concurrent training-set generation workers (-1 = all cores, 1 = sequential); the report is identical for any value")
	csvDir := flag.String("csv", "", "directory to write CSV result files (empty = none)")
	htmlPath := flag.String("html", "", "write a standalone HTML report with SVG charts (requires -exp all)")
	flag.Parse()

	var htmlData report.Data

	h := bench.New(perfmodel.New(machine.XeonE52680v3()), *seed)
	defer h.Close()
	h.Budget = *budget
	h.Workers = *workers
	// Final configurations are re-measured with an independent noise
	// stream, as the paper's reported speedups are fresh measurements.
	validator := perfmodel.New(machine.XeonE52680v3())
	validator.Seed = 7777
	h.Validator = validator

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := f(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
	}

	run("table1", func() error {
		fmt.Println(bench.RenderTable1(h.Table1()))
		return nil
	})

	run("table3", func() error {
		fmt.Println(bench.RenderTable3())
		return nil
	})

	run("table2", func() error {
		rows, err := h.Table2(trainer.Table2Sizes())
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderTable2(rows))
		htmlData.Table2 = rows
		return writeCSV(*csvDir, "table2.csv", func(f *os.File) error {
			return bench.WriteTable2CSV(f, rows)
		})
	})

	run("fig4", func() error {
		rows, err := h.Fig4()
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderFig4(rows, h.Fig4Sizes))
		htmlData.Fig4 = rows
		return writeCSV(*csvDir, "fig4.csv", func(f *os.File) error {
			return bench.WriteFig4CSV(f, rows, h.Fig4Sizes)
		})
	})

	run("fig5", func() error {
		series, err := h.Fig5(nil)
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderFig5(series, h.Fig4Sizes))
		htmlData.Fig5 = series
		return writeCSV(*csvDir, "fig5.csv", func(f *os.File) error {
			return bench.WriteFig5CSV(f, series)
		})
	})

	run("fig6", func() error {
		res, err := h.Fig6(nil)
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderFig6(res))
		htmlData.Fig6 = &res
		return writeCSV(*csvDir, "fig6.csv", func(f *os.File) error {
			return bench.WriteFig6CSV(f, res)
		})
	})

	run("fig7", func() error {
		rows, err := h.Fig7(nil)
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderFig7(rows))
		htmlData.Fig7 = rows
		return writeCSV(*csvDir, "fig7.csv", func(f *os.File) error {
			return bench.WriteFig7CSV(f, rows)
		})
	})

	switch *exp {
	case "all", "table1", "table2", "table3", "fig4", "fig5", "fig6", "fig7":
	default:
		log.Fatalf("unknown experiment %q", *exp)
	}

	if *htmlPath != "" {
		htmlData.Fig4Sizes = h.Fig4Sizes
		htmlData.Generated = time.Now()
		htmlData.MachineTag = "simulated " + machine.XeonE52680v3().Name
		f, err := os.Create(*htmlPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := report.Write(f, htmlData); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *htmlPath)
	}
}

// writeCSV writes one CSV file into dir (no-op when dir is empty).
func writeCSV(dir, name string, write func(*os.File) error) error {
	if dir == "" {
		return nil
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := write(f); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
