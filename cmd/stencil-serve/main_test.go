package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"repro/internal/obs"
)

const fixtureModelDir = "../../internal/store/testdata"

// startRun launches run() with test hooks and returns the bound address,
// the signal injector, the Close-audit counter and the run result channel.
func startRun(t *testing.T, opts options) (net.Addr, chan<- os.Signal, *atomic.Int64, <-chan error) {
	t.Helper()
	ready := make(chan net.Addr, 1)
	signals := make(chan os.Signal, 1)
	var closed atomic.Int64
	opts.ready = ready
	opts.signals = signals
	opts.logger = obs.NewLogger(io.Discard, "text")
	opts.onClosed = func() { closed.Add(1) }
	done := make(chan error, 1)
	go func() { done <- run(opts) }()
	select {
	case addr := <-ready:
		return addr, signals, &closed, done
	case err := <-done:
		t.Fatalf("run exited before serving: %v", err)
		return nil, nil, nil, nil
	}
}

func serveOpts() options {
	return options{
		models:       fixtureModelDir,
		addr:         "127.0.0.1:0",
		cacheSize:    64,
		workers:      1,
		timeout:      10 * time.Second,
		drain:        10 * time.Second,
		maxBody:      1 << 20,
		measureQueue: 2,
	}
}

// TestGracefulShutdown exercises the full SIGTERM choreography with a
// deterministically in-flight request: a tune whose body arrives in two
// halves, the second only after the shutdown signal. The request must
// complete with a 200 during the drain window, new connections must be
// refused once draining starts, and the Close audit chain must run exactly
// once.
func TestGracefulShutdown(t *testing.T) {
	addr, signals, closed, done := startRun(t, serveOpts())
	base := "http://" + addr.String()

	// Sanity: the stack serves normal traffic before shutdown.
	resp, err := http.Post(base+"/v1/tune", "application/json",
		strings.NewReader(`{"model":"tiny","kernel":"laplacian","size":"96x96x96"}`))
	if err != nil {
		t.Fatalf("tune before shutdown: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tune before shutdown: status %d", resp.StatusCode)
	}

	// Park a request in-flight: send the headers and half the body over a
	// raw connection, so the handler is blocked reading the rest.
	body := `{"model":"tiny","kernel":"laplacian","size":"97x97x97"}`
	half := len(body) / 2
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "POST /v1/tune HTTP/1.1\r\nHost: %s\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n%s",
		addr.String(), len(body), body[:half])
	time.Sleep(50 * time.Millisecond) // let the server accept and start reading

	signals <- syscall.SIGTERM

	// New connections are refused once the listener closes. (Shutdown
	// closes listeners first, then waits out in-flight requests.)
	refused := false
	for deadline := time.Now().Add(3 * time.Second); time.Now().Before(deadline); {
		c, err := net.DialTimeout("tcp", addr.String(), 200*time.Millisecond)
		if err != nil {
			refused = true
			break
		}
		c.Close()
		time.Sleep(10 * time.Millisecond)
	}
	if !refused {
		t.Error("new connections still accepted 3s after SIGTERM")
	}
	select {
	case err := <-done:
		t.Fatalf("run returned %v with a request still in flight — drain did not wait", err)
	default:
	}

	// Complete the parked request; it must finish with a real 200 inside
	// the drain window.
	if _, err := io.WriteString(conn, body[half:]); err != nil {
		t.Fatalf("completing in-flight body: %v", err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	reply, err := io.ReadAll(conn)
	if err != nil && len(reply) == 0 {
		t.Fatalf("reading in-flight response: %v", err)
	}
	if !strings.HasPrefix(string(reply), "HTTP/1.1 200") {
		t.Fatalf("in-flight request during drain got %.80q, want HTTP/1.1 200", reply)
	}
	if !strings.Contains(string(reply), `"best"`) {
		t.Errorf("in-flight response lacks a tuning result: %.200q", reply)
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after graceful shutdown, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not return after the drained request completed")
	}
	if got := closed.Load(); got != 1 {
		t.Errorf("Close audit chain ran %d times, want exactly 1", got)
	}
}

// TestShutdownIdleFast: with no traffic in flight, SIGTERM must land a
// clean exit well inside the drain budget, and still run Close once.
func TestShutdownIdleFast(t *testing.T) {
	_, signals, closed, done := startRun(t, serveOpts())
	start := time.Now()
	signals <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("idle shutdown took longer than 5s")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("idle shutdown took %v, want well under the 10s drain budget", elapsed)
	}
	if got := closed.Load(); got != 1 {
		t.Errorf("Close audit chain ran %d times, want exactly 1", got)
	}
}

// TestRunRejectsMissingModelDir: startup failures surface as errors, not
// a half-started server.
func TestRunRejectsMissingModelDir(t *testing.T) {
	opts := serveOpts()
	opts.models = "no-such-dir"
	opts.logger = obs.NewLogger(io.Discard, "text")
	if err := run(opts); err == nil {
		t.Fatal("run with a missing model dir returned nil")
	}
}

// modelsDoc is the slice of GET /v1/models this file asserts on.
type modelsDoc struct {
	Default         string `json:"default"`
	RegistryVersion int64  `json:"registry_version"`
}

func getModels(t *testing.T, base string) modelsDoc {
	t.Helper()
	resp, err := http.Get(base + "/v1/models")
	if err != nil {
		t.Fatalf("GET /v1/models: %v", err)
	}
	defer resp.Body.Close()
	var doc modelsDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("decoding /v1/models: %v", err)
	}
	return doc
}

// TestSIGHUPReloadsRegistry: HUP must hot-swap the model registry in place —
// the generation counter advances and the server keeps answering — without
// any drain or restart.
func TestSIGHUPReloadsRegistry(t *testing.T) {
	addr, signals, closed, done := startRun(t, serveOpts())
	base := "http://" + addr.String()
	if doc := getModels(t, base); doc.RegistryVersion != 1 {
		t.Fatalf("fresh server serves registry generation %d, want 1", doc.RegistryVersion)
	}

	signals <- syscall.SIGHUP
	deadline := time.Now().Add(5 * time.Second)
	for getModels(t, base).RegistryVersion < 2 {
		if time.Now().After(deadline) {
			t.Fatal("registry generation never advanced after SIGHUP")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := closed.Load(); got != 0 {
		t.Fatalf("SIGHUP ran the Close chain %d times — it must not shut anything down", got)
	}

	// The swapped registry answers real requests.
	resp, err := http.Post(base+"/v1/tune", "application/json",
		strings.NewReader(`{"model":"tiny","kernel":"laplacian","size":"96x96x96"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tune after SIGHUP reload: status %d", resp.StatusCode)
	}

	signals <- syscall.SIGTERM
	if err := <-done; err != nil {
		t.Fatalf("run returned %v after SIGHUP + SIGTERM, want nil", err)
	}
}

// TestPprofOnPrivateListenerOnly: -pprof-addr serves the profiling UI on its
// own listener, and the public API port must NOT route /debug/pprof.
func TestPprofOnPrivateListenerOnly(t *testing.T) {
	opts := serveOpts()
	opts.pprofAddr = "127.0.0.1:0"
	pready := make(chan net.Addr, 1)
	opts.pprofReady = pready
	addr, signals, _, done := startRun(t, opts)
	defer func() { signals <- syscall.SIGTERM; <-done }()

	paddr := <-pready
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/goroutine?debug=1"} {
		resp, err := http.Get("http://" + paddr.String() + path)
		if err != nil {
			t.Fatalf("GET %s on pprof listener: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s on pprof listener: status %d, want 200", path, resp.StatusCode)
		}
	}

	resp, err := http.Get("http://" + addr.String() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("public port served /debug/pprof with status %d, want 404", resp.StatusCode)
	}
}

// TestObserveRetrainPromoteLifecycle drives the whole learning loop through
// the real binary wiring: client observations land in the WAL via
// /v1/observe, the count trigger retrains, the canary promotes, and the
// serving registry hot-swaps to the new model — all without a restart.
func TestObserveRetrainPromoteLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model; skipped in -short")
	}
	models := t.TempDir()
	// The fixture store is read-only testdata; the retrain worker writes
	// candidates next to the incumbent, so run against a writable clone.
	if err := os.CopyFS(models, os.DirFS(fixtureModelDir)); err != nil {
		t.Fatal(err)
	}
	opts := serveOpts()
	opts.models = models
	opts.wal = t.TempDir()
	opts.retrainMin = 4
	opts.retrainPoints = 192
	opts.retrainPoll = 50 * time.Millisecond
	addr, signals, _, done := startRun(t, opts)
	defer func() { signals <- syscall.SIGTERM; <-done }()
	base := "http://" + addr.String()

	resp, err := http.Post(base+"/v1/observe", "application/json", strings.NewReader(
		`{"kernel":"laplacian","size":"64x64x64","machine":"e2e-client","observations":[
			{"vector":{"bx":32,"by":8,"bz":4,"u":2,"c":1},"runtime_seconds":0.010},
			{"vector":{"bx":16,"by":16,"bz":2,"u":1,"c":1},"runtime_seconds":0.014},
			{"vector":{"bx":8,"by":4,"bz":2,"u":1,"c":1},"runtime_seconds":0.019},
			{"vector":{"bx":4,"by":4,"bz":4,"u":1,"c":1},"runtime_seconds":0.023}]}`))
	if err != nil {
		t.Fatal(err)
	}
	var ack struct {
		Accepted int `json:"accepted"`
		Dropped  int `json:"dropped"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || ack.Accepted != 4 || ack.Dropped != 0 {
		t.Fatalf("observe: status %d accepted %d dropped %d, want 202/4/0", resp.StatusCode, ack.Accepted, ack.Dropped)
	}

	// The count trigger fires, the candidate passes the canary (no loadable
	// incumbent named by the pointer -> first promotion), and OnPromote
	// hot-swaps the registry.
	deadline := time.Now().Add(2 * time.Minute)
	var doc modelsDoc
	for {
		doc = getModels(t, base)
		if doc.Default == "retrained-v1" && doc.RegistryVersion >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no promotion observed: /v1/models = %+v", doc)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// The promoted model actually serves.
	resp, err = http.Post(base+"/v1/tune", "application/json",
		strings.NewReader(`{"model":"retrained-v1","kernel":"laplacian","size":"64x64x64"}`))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(b), `"best"`) {
		t.Fatalf("tune on promoted model: status %d body %.200q", resp.StatusCode, b)
	}
}

// TestTimeoutBodyIsJSONOverRealBinaryStack verifies satellite (b) in the
// deployed wiring, not just the middleware unit test: a request that
// outlives -timeout gets a 503 with Content-Type application/json and a
// parseable body.
func TestTimeoutBodyIsJSONOverRealBinaryStack(t *testing.T) {
	opts := serveOpts()
	opts.timeout = 100 * time.Millisecond
	addr, signals, _, done := startRun(t, opts)
	defer func() { signals <- syscall.SIGTERM; <-done }()

	// A measure-mode predict on a large grid comfortably outlives 100ms.
	resp, err := http.Post("http://"+addr.String()+"/v1/predict", "application/json",
		strings.NewReader(`{"model":"tiny","kernel":"laplacian","size":"192x192x192","mode":"measure","vectors":[{"bx":32,"by":4,"bz":4,"u":1,"c":2},{"bx":16,"by":8,"bz":4,"u":2,"c":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Skipf("request finished with %d before the timeout fired on this machine", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("timeout response Content-Type = %q, want application/json", ct)
	}
	if !strings.Contains(string(b), `"error"`) {
		t.Errorf("timeout body %q is not the JSON error payload", b)
	}
}
