package main

import (
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

const fixtureModelDir = "../../internal/store/testdata"

// startRun launches run() with test hooks and returns the bound address,
// the signal injector, the Close-audit counter and the run result channel.
func startRun(t *testing.T, opts options) (net.Addr, chan<- os.Signal, *atomic.Int64, <-chan error) {
	t.Helper()
	ready := make(chan net.Addr, 1)
	signals := make(chan os.Signal, 1)
	var closed atomic.Int64
	opts.ready = ready
	opts.signals = signals
	opts.logger = log.New(io.Discard, "", 0)
	opts.onClosed = func() { closed.Add(1) }
	done := make(chan error, 1)
	go func() { done <- run(opts) }()
	select {
	case addr := <-ready:
		return addr, signals, &closed, done
	case err := <-done:
		t.Fatalf("run exited before serving: %v", err)
		return nil, nil, nil, nil
	}
}

func serveOpts() options {
	return options{
		models:       fixtureModelDir,
		addr:         "127.0.0.1:0",
		cacheSize:    64,
		workers:      1,
		timeout:      10 * time.Second,
		drain:        10 * time.Second,
		maxBody:      1 << 20,
		measureQueue: 2,
	}
}

// TestGracefulShutdown exercises the full SIGTERM choreography with a
// deterministically in-flight request: a tune whose body arrives in two
// halves, the second only after the shutdown signal. The request must
// complete with a 200 during the drain window, new connections must be
// refused once draining starts, and the Close audit chain must run exactly
// once.
func TestGracefulShutdown(t *testing.T) {
	addr, signals, closed, done := startRun(t, serveOpts())
	base := "http://" + addr.String()

	// Sanity: the stack serves normal traffic before shutdown.
	resp, err := http.Post(base+"/v1/tune", "application/json",
		strings.NewReader(`{"model":"tiny","kernel":"laplacian","size":"96x96x96"}`))
	if err != nil {
		t.Fatalf("tune before shutdown: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tune before shutdown: status %d", resp.StatusCode)
	}

	// Park a request in-flight: send the headers and half the body over a
	// raw connection, so the handler is blocked reading the rest.
	body := `{"model":"tiny","kernel":"laplacian","size":"97x97x97"}`
	half := len(body) / 2
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "POST /v1/tune HTTP/1.1\r\nHost: %s\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n%s",
		addr.String(), len(body), body[:half])
	time.Sleep(50 * time.Millisecond) // let the server accept and start reading

	signals <- syscall.SIGTERM

	// New connections are refused once the listener closes. (Shutdown
	// closes listeners first, then waits out in-flight requests.)
	refused := false
	for deadline := time.Now().Add(3 * time.Second); time.Now().Before(deadline); {
		c, err := net.DialTimeout("tcp", addr.String(), 200*time.Millisecond)
		if err != nil {
			refused = true
			break
		}
		c.Close()
		time.Sleep(10 * time.Millisecond)
	}
	if !refused {
		t.Error("new connections still accepted 3s after SIGTERM")
	}
	select {
	case err := <-done:
		t.Fatalf("run returned %v with a request still in flight — drain did not wait", err)
	default:
	}

	// Complete the parked request; it must finish with a real 200 inside
	// the drain window.
	if _, err := io.WriteString(conn, body[half:]); err != nil {
		t.Fatalf("completing in-flight body: %v", err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	reply, err := io.ReadAll(conn)
	if err != nil && len(reply) == 0 {
		t.Fatalf("reading in-flight response: %v", err)
	}
	if !strings.HasPrefix(string(reply), "HTTP/1.1 200") {
		t.Fatalf("in-flight request during drain got %.80q, want HTTP/1.1 200", reply)
	}
	if !strings.Contains(string(reply), `"best"`) {
		t.Errorf("in-flight response lacks a tuning result: %.200q", reply)
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after graceful shutdown, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not return after the drained request completed")
	}
	if got := closed.Load(); got != 1 {
		t.Errorf("Close audit chain ran %d times, want exactly 1", got)
	}
}

// TestShutdownIdleFast: with no traffic in flight, SIGTERM must land a
// clean exit well inside the drain budget, and still run Close once.
func TestShutdownIdleFast(t *testing.T) {
	_, signals, closed, done := startRun(t, serveOpts())
	start := time.Now()
	signals <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("idle shutdown took longer than 5s")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("idle shutdown took %v, want well under the 10s drain budget", elapsed)
	}
	if got := closed.Load(); got != 1 {
		t.Errorf("Close audit chain ran %d times, want exactly 1", got)
	}
}

// TestRunRejectsMissingModelDir: startup failures surface as errors, not
// a half-started server.
func TestRunRejectsMissingModelDir(t *testing.T) {
	opts := serveOpts()
	opts.models = "no-such-dir"
	opts.logger = log.New(io.Discard, "", 0)
	if err := run(opts); err == nil {
		t.Fatal("run with a missing model dir returned nil")
	}
}

// TestTimeoutBodyIsJSONOverRealBinaryStack verifies satellite (b) in the
// deployed wiring, not just the middleware unit test: a request that
// outlives -timeout gets a 503 with Content-Type application/json and a
// parseable body.
func TestTimeoutBodyIsJSONOverRealBinaryStack(t *testing.T) {
	opts := serveOpts()
	opts.timeout = 100 * time.Millisecond
	addr, signals, _, done := startRun(t, opts)
	defer func() { signals <- syscall.SIGTERM; <-done }()

	// A measure-mode predict on a large grid comfortably outlives 100ms.
	resp, err := http.Post("http://"+addr.String()+"/v1/predict", "application/json",
		strings.NewReader(`{"model":"tiny","kernel":"laplacian","size":"192x192x192","mode":"measure","vectors":[{"bx":32,"by":4,"bz":4,"u":1,"c":2},{"bx":16,"by":8,"bz":4,"u":2,"c":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Skipf("request finished with %d before the timeout fired on this machine", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("timeout response Content-Type = %q, want application/json", ct)
	}
	if !strings.Contains(string(b), `"error"`) {
		t.Errorf("timeout body %q is not the JSON error payload", b)
	}
}
