// Command stencil-serve is the tuning-as-a-service daemon: it loads trained
// ranking models from a persistent store directory (written by
// stencil-train -save) and serves tuning, ranking and prediction over an
// HTTP JSON API with response caching and request coalescing.
//
// Usage:
//
//	stencil-train -points 3840 -save models
//	stencil-serve -models models -addr :8080
//	curl -X POST -d '{"kernel":"laplacian","size":"128x128x128"}' localhost:8080/v1/tune
//
// Endpoints: POST /v1/tune, /v1/rank, /v1/predict; GET /v1/models, /healthz,
// /metrics. See the README's "Serving tuned models" section for the schema.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("stencil-serve: ")

	models := flag.String("models", "models", "model store directory (written by stencil-train -save)")
	addr := flag.String("addr", ":8080", "listen address")
	cacheSize := flag.Int("cache", 4096, "response cache capacity in entries (sharded LRU)")
	workers := flag.Int("workers", -1, "evaluation workers per request for hybrid/predict (-1 = all cores, 1 = sequential)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request timeout; expiry cancels the request context and stops evaluation work")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown budget for draining in-flight requests")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Read())
		return
	}

	s, err := server.New(server.Config{ModelDir: *models, CacheSize: *cacheSize, Workers: *workers})
	if err != nil {
		log.Fatal(err)
	}
	names, def := s.Models()
	log.Printf("loaded %d model(s) from %s: %v (default %q)", len(names), *models, names, def)

	handler := http.Handler(s.Handler())
	if *timeout > 0 {
		handler = http.TimeoutHandler(handler, *timeout, `{"error":"request timed out"}`)
	}
	srv := &http.Server{Addr: *addr, Handler: handler}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("%s listening on %s", buildinfo.Read(), *addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatal(err)
	case sig := <-sigc:
		log.Printf("received %v, draining in-flight requests (up to %v)", sig, *drain)
	}

	// Drain in-flight tunes, then release the Close audit chain (the
	// measuring executor's worker pool, when it ever started).
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	s.Close()
	log.Printf("drained; bye")
}
