// Command stencil-serve is the tuning-as-a-service daemon: it loads trained
// ranking models from a persistent store directory (written by
// stencil-train -save) and serves tuning, ranking and prediction over an
// HTTP JSON API with response caching, request coalescing and a production
// hardening chain — panic isolation, per-client rate limiting, request-size
// caps, measure-mode admission control and liveness/readiness probes.
//
// Usage:
//
//	stencil-train -points 3840 -save models
//	stencil-serve -models models -addr :8080
//	curl -X POST -d '{"kernel":"laplacian","size":"128x128x128"}' localhost:8080/v1/tune
//
// Endpoints: POST /v1/tune, /v1/rank, /v1/predict, /v1/observe; GET
// /v1/models, /healthz, /readyz, /metrics (Prometheus text format; the
// legacy flat-JSON counters live on at /debug/vars). See the README's
// "Serving tuned models", "Operating under load", "Online learning & model
// lifecycle" and "Observability" sections for the schema, the overload
// semantics, the retrain loop and the metric catalog.
//
// With -wal the daemon keeps a durable observation log and serves
// /v1/observe; adding -retrain-every or -retrain-min starts a background
// worker that refits the model on logged observations and hot-swaps the
// registry when the canary gate passes. SIGHUP reloads the model registry
// in place (picking up externally promoted or newly saved artifacts), and
// -pprof-addr exposes /debug/pprof on its own private listener.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/middleware"
	"repro/internal/obs"
	"repro/internal/retrain"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/wal"
)

// options carries the parsed flags plus the hooks the graceful-shutdown
// test injects (ready reports the bound address, signals replaces the OS
// signal feed, onClosed observes the Close audit chain).
type options struct {
	models        string
	addr          string
	cacheSize     int
	workers       int
	timeout       time.Duration
	drain         time.Duration
	maxBody       int64
	measureQueue  int
	rateLimit     float64
	rateBurst     int
	wal           string
	retrainEvery  time.Duration
	retrainMin    int
	retrainPoints int
	canaryHoldout float64
	pprofAddr     string
	logFormat     string

	logger      *obs.Logger
	ready       chan<- net.Addr
	pprofReady  chan<- net.Addr
	signals     <-chan os.Signal
	onClosed    func()
	retrainPoll time.Duration // test hook: WAL count-trigger poll cadence
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("stencil-serve: ")

	var opts options
	flag.StringVar(&opts.models, "models", "models", "model store directory (written by stencil-train -save)")
	flag.StringVar(&opts.addr, "addr", ":8080", "listen address")
	flag.IntVar(&opts.cacheSize, "cache", 4096, "response cache capacity in entries (sharded LRU)")
	flag.IntVar(&opts.workers, "workers", -1, "evaluation workers per request for hybrid/predict (-1 = all cores, 1 = sequential)")
	flag.DurationVar(&opts.timeout, "timeout", 30*time.Second, "per-request timeout; expiry cancels the request context and stops evaluation work")
	flag.DurationVar(&opts.drain, "drain", 10*time.Second, "graceful-shutdown budget for draining in-flight requests")
	flag.Int64Var(&opts.maxBody, "max-body", 16<<20, "request body size cap in bytes; over-limit requests get 413")
	flag.IntVar(&opts.measureQueue, "measure-queue", 8, "bounded queue depth for measure-mode requests; arrivals past it are shed with 503")
	flag.Float64Var(&opts.rateLimit, "rate-limit", 0, "per-client request rate limit in req/s (keyed by X-Client-ID or remote host; 0 = unlimited)")
	flag.IntVar(&opts.rateBurst, "rate-burst", 10, "token-bucket burst capacity per client when -rate-limit is set")
	flag.StringVar(&opts.wal, "wal", "", "observation WAL directory; enables /v1/observe and durable measure-mode logging (empty = disabled)")
	flag.DurationVar(&opts.retrainEvery, "retrain-every", 0, "schedule trigger: background-retrain from the WAL at most this often (0 = no timer; requires -wal)")
	flag.IntVar(&opts.retrainMin, "retrain-min", 0, "count trigger: retrain as soon as this many new observations accumulate (0 = no count trigger; requires -wal)")
	flag.IntVar(&opts.retrainPoints, "retrain-points", 0, "synthetic base-set size mixed into each retrain (0 = default 384)")
	flag.Float64Var(&opts.canaryHoldout, "canary-holdout", 0.2, "fraction of the synthetic base held out for the promotion canary gate")
	flag.StringVar(&opts.pprofAddr, "pprof-addr", "", "separate listen address for /debug/pprof (empty = disabled; never served on -addr)")
	flag.StringVar(&opts.logFormat, "log-format", "text", "log output format: text or json (structured; one object per line)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Read())
		return
	}
	if opts.logFormat != "text" && opts.logFormat != "json" {
		log.Fatalf("-log-format %q: want text or json", opts.logFormat)
	}
	if err := run(opts); err != nil {
		log.Fatal(err)
	}
}

// run builds the hardened handler stack, serves until a shutdown signal or
// listener error, then drains and releases the Close audit chain. It is
// main minus flag parsing, so the shutdown tests drive it directly.
func run(opts options) error {
	logger := opts.logger
	if logger == nil {
		logger = obs.NewLogger(os.Stderr, opts.logFormat)
	}

	// One registry backs everything: the server's counters and histograms,
	// the middleware chain's guards, the retrain worker and the Go runtime
	// gauges all scrape out through the server's /metrics.
	reg := obs.NewRegistry()
	obs.RegisterRuntimeMetrics(reg)

	// The WAL opens before the server so startup fails loudly on an
	// unrecoverable log, and closes after it (deferred) so the server's
	// observation sink can flush during Close.
	var walLog *wal.Log
	if opts.wal != "" {
		l, rep, err := wal.Open(opts.wal, wal.Options{})
		if err != nil {
			return fmt.Errorf("opening WAL %s: %w", opts.wal, err)
		}
		defer l.Close()
		if rep.Clean() {
			logger.Printf("wal: %s holds %d observation(s)", opts.wal, rep.Records)
		} else {
			logger.Printf("wal: recovered %s with %d observation(s): %d corrupt frame(s) skipped, %d segment(s) abandoned, %d torn byte(s) dropped",
				opts.wal, rep.Records, rep.CorruptFrames, rep.SkippedSegments, rep.TornBytes)
		}
		walLog = l
	}

	s, err := server.New(server.Config{
		ModelDir:          opts.models,
		CacheSize:         opts.cacheSize,
		Workers:           opts.workers,
		MaxBodyBytes:      opts.maxBody,
		MeasureQueueDepth: opts.measureQueue,
		WAL:               walLog,
		Registry:          reg,
		AccessLog:         logger.With(obs.F("component", "http")),
	})
	if err != nil {
		return err
	}
	names, def := s.Models()
	logger.Printf("loaded %d model(s) from %s: %v (default %q)", len(names), opts.models, names, def)

	// Background retrain loop: tails the WAL, refits on the configured
	// trigger, and hot-swaps the registry when the canary gate promotes.
	if walLog != nil && (opts.retrainEvery > 0 || opts.retrainMin > 0) {
		st, err := store.Open(opts.models)
		if err != nil {
			return err
		}
		worker, err := retrain.New(retrain.Config{
			WALDir:          opts.wal,
			Store:           st,
			Interval:        opts.retrainEvery,
			MinRecords:      opts.retrainMin,
			PollInterval:    opts.retrainPoll,
			HoldoutFraction: opts.canaryHoldout,
			BasePoints:      opts.retrainPoints,
			Logger:          logger.With(obs.F("component", "retrain")),
			Registry:        reg,
			OnPromote: func(name string) {
				if v, err := s.ReloadModels(); err != nil {
					logger.Printf("retrain: promoted %s but registry reload failed: %v", name, err)
				} else {
					logger.Printf("retrain: promoted %s, registry now generation %d", name, v)
				}
			},
		})
		if err != nil {
			return err
		}
		go worker.Run()
		defer worker.Stop()
		logger.Printf("retrain worker: every=%v min-records=%d holdout=%.2f", opts.retrainEvery, opts.retrainMin, opts.canaryHoldout)
	}

	// Diagnostics on a private listener: the public mux never routes
	// /debug/pprof, so profiling cannot leak through -addr.
	if opts.pprofAddr != "" {
		pln, err := net.Listen("tcp", opts.pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		psrv := &http.Server{Handler: pmux}
		go psrv.Serve(pln)
		defer psrv.Close()
		logger.Printf("pprof listening on %s (diagnostics only; keep private)", pln.Addr())
		if opts.pprofReady != nil {
			opts.pprofReady <- pln.Addr()
		}
	}

	// Innermost: the API mux under the request timeout, with the JSON
	// content-type defaulter repairing TimeoutHandler's bare error body.
	handler := http.Handler(s.Handler())
	if opts.timeout > 0 {
		handler = middleware.JSONContentType()(
			http.TimeoutHandler(handler, opts.timeout, `{"error":"request timed out"}`))
	}
	// Outermost to innermost: correlation IDs on everything (panic logs
	// included), panic isolation above all request logic, rate limiting
	// before any body handling, then the size cap.
	limiter := middleware.NewRateLimiter(opts.rateLimit, opts.rateBurst, reg)
	handler = middleware.Chain(handler,
		middleware.RequestID(),
		middleware.Recover(logger, reg),
		limiter.Middleware(),
		middleware.MaxBytes(opts.maxBody, reg),
	)

	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	logger.Printf("%s listening on %s", buildinfo.Read(), ln.Addr())
	if opts.ready != nil {
		opts.ready <- ln.Addr()
	}

	sigc := opts.signals
	if sigc == nil {
		c := make(chan os.Signal, 1)
		signal.Notify(c, os.Interrupt, syscall.SIGTERM, syscall.SIGHUP)
		sigc = c
	}
	// SIGHUP hot-swaps the model registry and keeps serving; anything else
	// starts the drain. A failed reload leaves the running generation
	// untouched, so HUP is always safe to send.
	for draining := false; !draining; {
		select {
		case err := <-errc:
			return err
		case sig := <-sigc:
			if sig == syscall.SIGHUP {
				if v, err := s.ReloadModels(); err != nil {
					logger.Printf("SIGHUP: reload failed, generation %d keeps serving: %v", s.RegistryVersion(), err)
				} else {
					names, def := s.Models()
					logger.Printf("SIGHUP: registry generation %d serves %d model(s) (default %q): %v", v, len(names), def, names)
				}
				continue
			}
			logger.Printf("received %v, draining in-flight requests (up to %v)", sig, opts.drain)
			draining = true
		}
	}

	// Drain: flip /readyz so balancers stop routing here, stop accepting,
	// finish in-flight tunes, then release the Close audit chain (the
	// measuring executor's worker pool, when it ever started) exactly once.
	s.StartDraining()
	ctx, cancel := context.WithTimeout(context.Background(), opts.drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Printf("shutdown: %v", err)
	}
	s.Close()
	if opts.onClosed != nil {
		opts.onClosed()
	}
	logger.Printf("drained; bye")
	return nil
}
