// Command stencil-serve is the tuning-as-a-service daemon: it loads trained
// ranking models from a persistent store directory (written by
// stencil-train -save) and serves tuning, ranking and prediction over an
// HTTP JSON API with response caching, request coalescing and a production
// hardening chain — panic isolation, per-client rate limiting, request-size
// caps, measure-mode admission control and liveness/readiness probes.
//
// Usage:
//
//	stencil-train -points 3840 -save models
//	stencil-serve -models models -addr :8080
//	curl -X POST -d '{"kernel":"laplacian","size":"128x128x128"}' localhost:8080/v1/tune
//
// Endpoints: POST /v1/tune, /v1/rank, /v1/predict; GET /v1/models, /healthz,
// /readyz, /metrics. See the README's "Serving tuned models" and "Operating
// under load" sections for the schema and the overload semantics.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/middleware"
	"repro/internal/server"
)

// options carries the parsed flags plus the hooks the graceful-shutdown
// test injects (ready reports the bound address, signals replaces the OS
// signal feed, onClosed observes the Close audit chain).
type options struct {
	models       string
	addr         string
	cacheSize    int
	workers      int
	timeout      time.Duration
	drain        time.Duration
	maxBody      int64
	measureQueue int
	rateLimit    float64
	rateBurst    int

	logger   *log.Logger
	ready    chan<- net.Addr
	signals  <-chan os.Signal
	onClosed func()
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("stencil-serve: ")

	var opts options
	flag.StringVar(&opts.models, "models", "models", "model store directory (written by stencil-train -save)")
	flag.StringVar(&opts.addr, "addr", ":8080", "listen address")
	flag.IntVar(&opts.cacheSize, "cache", 4096, "response cache capacity in entries (sharded LRU)")
	flag.IntVar(&opts.workers, "workers", -1, "evaluation workers per request for hybrid/predict (-1 = all cores, 1 = sequential)")
	flag.DurationVar(&opts.timeout, "timeout", 30*time.Second, "per-request timeout; expiry cancels the request context and stops evaluation work")
	flag.DurationVar(&opts.drain, "drain", 10*time.Second, "graceful-shutdown budget for draining in-flight requests")
	flag.Int64Var(&opts.maxBody, "max-body", 16<<20, "request body size cap in bytes; over-limit requests get 413")
	flag.IntVar(&opts.measureQueue, "measure-queue", 8, "bounded queue depth for measure-mode requests; arrivals past it are shed with 503")
	flag.Float64Var(&opts.rateLimit, "rate-limit", 0, "per-client request rate limit in req/s (keyed by X-Client-ID or remote host; 0 = unlimited)")
	flag.IntVar(&opts.rateBurst, "rate-burst", 10, "token-bucket burst capacity per client when -rate-limit is set")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Read())
		return
	}
	if err := run(opts); err != nil {
		log.Fatal(err)
	}
}

// run builds the hardened handler stack, serves until a shutdown signal or
// listener error, then drains and releases the Close audit chain. It is
// main minus flag parsing, so the shutdown tests drive it directly.
func run(opts options) error {
	logger := opts.logger
	if logger == nil {
		logger = log.Default()
	}

	s, err := server.New(server.Config{
		ModelDir:          opts.models,
		CacheSize:         opts.cacheSize,
		Workers:           opts.workers,
		MaxBodyBytes:      opts.maxBody,
		MeasureQueueDepth: opts.measureQueue,
	})
	if err != nil {
		return err
	}
	names, def := s.Models()
	logger.Printf("loaded %d model(s) from %s: %v (default %q)", len(names), opts.models, names, def)

	// Innermost: the API mux under the request timeout, with the JSON
	// content-type defaulter repairing TimeoutHandler's bare error body.
	handler := http.Handler(s.Handler())
	if opts.timeout > 0 {
		handler = middleware.JSONContentType()(
			http.TimeoutHandler(handler, opts.timeout, `{"error":"request timed out"}`))
	}
	// Outermost to innermost: correlation IDs on everything (panic logs
	// included), panic isolation above all request logic, rate limiting
	// before any body handling, then the size cap.
	limiter := middleware.NewRateLimiter(opts.rateLimit, opts.rateBurst, s.Metrics())
	handler = middleware.Chain(handler,
		middleware.RequestID(),
		middleware.Recover(logger, s.Metrics()),
		limiter.Middleware(),
		middleware.MaxBytes(opts.maxBody, s.Metrics()),
	)

	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	logger.Printf("%s listening on %s", buildinfo.Read(), ln.Addr())
	if opts.ready != nil {
		opts.ready <- ln.Addr()
	}

	sigc := opts.signals
	if sigc == nil {
		c := make(chan os.Signal, 1)
		signal.Notify(c, os.Interrupt, syscall.SIGTERM)
		sigc = c
	}
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		logger.Printf("received %v, draining in-flight requests (up to %v)", sig, opts.drain)
	}

	// Drain: flip /readyz so balancers stop routing here, stop accepting,
	// finish in-flight tunes, then release the Close audit chain (the
	// measuring executor's worker pool, when it ever started) exactly once.
	s.StartDraining()
	ctx, cancel := context.WithTimeout(context.Background(), opts.drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Printf("shutdown: %v", err)
	}
	s.Close()
	if opts.onClosed != nil {
		opts.onClosed()
	}
	logger.Printf("drained; bye")
	return nil
}
