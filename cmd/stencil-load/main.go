// Command stencil-load is the closed-form load generator for the serving
// stack: it drives a stencil-serve instance (or a stencil-lb fleet — the
// wire schema is identical) with a Zipf-skewed stream of tuning requests
// and reports sustained throughput and coordinated-omission-aware latency
// percentiles.
//
// The request stream models real autotuning traffic: a catalog of distinct
// kernel structures whose popularity follows a Zipf law (a hot head of
// structures dominates, a long tail stays cold — the regime the response
// cache and the consistent-hash split are built for), a configurable
// tune/rank/predict mix, and open-loop arrivals at a target rate with
// bounded worker concurrency. Latency is measured from each request's
// *scheduled* arrival, not its send time, so queueing delay when the
// service falls behind is charged to the service, not hidden by the
// generator slowing down.
//
// Usage:
//
//	stencil-load -target http://127.0.0.1:8080 -rate 500 -duration 30s
//	stencil-load -target http://127.0.0.1:8080 -label lb-4 -out BENCH_load.json
//
// With -out the run is merged under its -label into a BENCH_load.json
// (existing labels for other runs are preserved), which is how the repo's
// single-backend vs. balanced-fleet comparison is produced.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/client"
)

type options struct {
	target      string
	label       string
	out         string
	rate        float64
	duration    time.Duration
	warmup      time.Duration
	concurrency int
	catalog     int
	zipfS       float64
	mix         string
	seed        int64
	maxAttempts int
	timeout     time.Duration
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("stencil-load: ")

	var opts options
	flag.StringVar(&opts.target, "target", "http://127.0.0.1:8080", "base URL of the service under load (stencil-serve or stencil-lb)")
	flag.StringVar(&opts.label, "label", "run", "name for this run in the -out report, e.g. direct-1 or lb-4")
	flag.StringVar(&opts.out, "out", "", "merge results under -label into this JSON report (empty = stdout only)")
	flag.Float64Var(&opts.rate, "rate", 500, "open-loop arrival rate in requests/second")
	flag.DurationVar(&opts.duration, "duration", 10*time.Second, "measured load duration (after -warmup)")
	flag.DurationVar(&opts.warmup, "warmup", time.Second, "initial traffic excluded from the statistics")
	flag.IntVar(&opts.concurrency, "concurrency", 64, "bounded worker pool; arrivals past it are counted as overload drops, not delayed")
	flag.IntVar(&opts.catalog, "catalog", 64, "distinct kernel-structure/size pairs in the request population")
	flag.Float64Var(&opts.zipfS, "zipf-s", 1.1, "Zipf popularity exponent over the catalog (must be >1; ~1 gives the classic 80/20 hot-key skew)")
	flag.StringVar(&opts.mix, "mix", "tune=0.7,rank=0.2,predict=0.1", "request mix as op=weight pairs over tune, rank, predict")
	flag.Int64Var(&opts.seed, "seed", 1, "PRNG seed; identical seeds replay identical request streams")
	flag.IntVar(&opts.maxAttempts, "max-attempts", 4, "client retry budget per logical request")
	flag.DurationVar(&opts.timeout, "timeout", 10*time.Second, "per-attempt client timeout")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Read())
		return
	}
	if opts.zipfS <= 1 {
		log.Fatalf("-zipf-s %v: Zipf exponent must be > 1", opts.zipfS)
	}
	if opts.rate <= 0 || opts.catalog <= 0 || opts.concurrency <= 0 {
		log.Fatal("-rate, -catalog and -concurrency must be positive")
	}
	if err := run(opts); err != nil {
		log.Fatal(err)
	}
}

// ---------------------------------------------------------------------------
// Request population

// catalogEntry is one distinct kernel structure + problem size; the Zipf
// draw selects entries, so entry 0 is the hottest key in the stream.
type catalogEntry struct {
	kernel client.Kernel
	size   string
	dims   int
}

// kernelNames3 and kernelNames2 are the Table III benchmark kernels by
// dimensionality; the catalog cycles through them at a spread of sizes so
// every entry is a distinct cache key on the server.
var (
	kernelNames3 = []string{"wave-1", "tricubic", "divergence", "gradient", "laplacian", "laplacian6"}
	kernelNames2 = []string{"blur", "edge", "game-of-life"}
)

func buildCatalog(n int) []catalogEntry {
	out := make([]catalogEntry, n)
	for i := range out {
		// Two 3-D entries for each 2-D one, roughly the Table III balance.
		if i%3 == 2 {
			name := kernelNames2[(i/3)%len(kernelNames2)]
			side := 256 + 32*(i%24)
			out[i] = catalogEntry{kernel: client.NamedKernel(name), size: fmt.Sprintf("%dx%d", side, side), dims: 2}
		} else {
			name := kernelNames3[(i/3*2+i%3)%len(kernelNames3)]
			side := 48 + 8*(i%24)
			out[i] = catalogEntry{kernel: client.NamedKernel(name), size: fmt.Sprintf("%dx%dx%d", side, side, side), dims: 3}
		}
	}
	return out
}

const (
	opTune = iota
	opRank
	opPredict
	numOps
)

var opNames = [numOps]string{"tune", "rank", "predict"}

// parseMix turns "tune=0.7,rank=0.2,predict=0.1" into cumulative
// thresholds for a uniform draw.
func parseMix(s string) ([numOps]float64, error) {
	var weights [numOps]float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return weights, fmt.Errorf("mix entry %q: want op=weight", part)
		}
		w, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil || w < 0 {
			return weights, fmt.Errorf("mix entry %q: bad weight", part)
		}
		idx := -1
		for i, n := range opNames {
			if n == strings.TrimSpace(name) {
				idx = i
			}
		}
		if idx < 0 {
			return weights, fmt.Errorf("mix entry %q: unknown op (want tune, rank or predict)", part)
		}
		weights[idx] = w
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return weights, fmt.Errorf("mix %q has no positive weight", s)
	}
	cum := 0.0
	for i := range weights {
		cum += weights[i] / total
		weights[i] = cum
	}
	return weights, nil
}

// ---------------------------------------------------------------------------
// Load loop

// arrival is one scheduled request: when it was due, what to send.
type arrival struct {
	sched time.Time
	entry int
	op    int
	warm  bool
}

// tally accumulates worker outcomes; one mutex is plenty at generator rates.
type tally struct {
	mu        sync.Mutex
	latencies []time.Duration // successful post-warmup requests only
	completed int
	errs      int
	shed      int
	hits      int
	coalesced int
	errSample string
}

func run(opts options) error {
	mix, err := parseMix(opts.mix)
	if err != nil {
		return err
	}
	catalog := buildCatalog(opts.catalog)
	cl, err := client.New(client.Config{
		BaseURL:           opts.target,
		ClientID:          "stencil-load",
		MaxAttempts:       opts.maxAttempts,
		PerAttemptTimeout: opts.timeout,
		Seed:              opts.seed,
	})
	if err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(opts.seed))
	zipf := rand.NewZipf(rng, opts.zipfS, 1, uint64(opts.catalog-1))

	work := make(chan arrival, opts.concurrency)
	var t tally
	var wg sync.WaitGroup
	ctx := context.Background()
	for w := 0; w < opts.concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for a := range work {
				doOne(ctx, cl, catalog[a.entry], a, &t)
			}
		}()
	}

	// Open-loop dispatcher: arrivals fire on their schedule regardless of
	// how the service is doing. A full worker pool means the fleet cannot
	// absorb the offered rate — that is an overload drop to report, never
	// a reason to slow the schedule down.
	interval := time.Duration(float64(time.Second) / opts.rate)
	start := time.Now()
	warmupEnd := start.Add(opts.warmup)
	end := warmupEnd.Add(opts.duration)
	dropped := 0
	scheduled := 0
	for next := start; next.Before(end); next = next.Add(interval) {
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		a := arrival{
			sched: next,
			entry: int(zipf.Uint64()),
			op:    pickOp(mix, rng.Float64()),
			warm:  next.Before(warmupEnd),
		}
		scheduled++
		select {
		case work <- a:
		default:
			if !a.warm {
				dropped++
			}
		}
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(warmupEnd)
	if elapsed > opts.duration {
		elapsed = opts.duration // tail requests finish after the window
	}

	rep := buildReport(opts, &t, dropped, scheduled, elapsed, cl.Retries())
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(rep)
	if t.errSample != "" {
		log.Printf("sample error: %s", t.errSample)
	}
	if opts.out != "" {
		if err := mergeReport(opts.out, opts.label, rep); err != nil {
			return err
		}
		log.Printf("merged %q into %s", opts.label, opts.out)
	}
	return nil
}

func pickOp(mix [numOps]float64, u float64) int {
	for i, threshold := range mix {
		if u < threshold {
			return i
		}
	}
	return opTune
}

// doOne issues one request and charges its latency from the scheduled
// arrival — the coordinated-omission-aware clock.
func doOne(ctx context.Context, cl *client.Client, e catalogEntry, a arrival, t *tally) {
	var cache string
	var err error
	switch a.op {
	case opTune:
		var resp *client.TuneResponse
		resp, err = cl.Tune(ctx, client.TuneRequest{Kernel: e.kernel, Size: e.size})
		if resp != nil {
			cache = resp.Cache
		}
	case opRank:
		var resp *client.RankResponse
		resp, err = cl.Rank(ctx, client.RankRequest{Kernel: e.kernel, Size: e.size})
		if resp != nil {
			cache = resp.Cache
		}
	case opPredict:
		vectors := []client.Vector{
			{Bx: 16, By: 16, Bz: 4, U: 1, C: 1},
			{Bx: 32, By: 8, Bz: 2, U: 2, C: 2},
		}
		if e.dims == 2 {
			for i := range vectors {
				vectors[i].Bz = 0 // normalized to the required bz=1 server-side
			}
		}
		var resp *client.PredictResponse
		resp, err = cl.Predict(ctx, client.PredictRequest{Kernel: e.kernel, Size: e.size, Vectors: vectors})
		if resp != nil {
			cache = resp.Cache
		}
	}
	lat := time.Since(a.sched)
	t.mu.Lock()
	defer t.mu.Unlock()
	if a.warm {
		return
	}
	if err != nil {
		var apiErr *client.APIError
		if errors.As(err, &apiErr) && apiErr.Retryable() {
			// Retries exhausted against deliberate backpressure: a shed,
			// not a failure — the admission control worked as designed.
			t.shed++
		} else {
			t.errs++
			if t.errSample == "" {
				t.errSample = err.Error()
			}
		}
		return
	}
	t.completed++
	t.latencies = append(t.latencies, lat)
	switch cache {
	case "hit":
		t.hits++
	case "coalesced":
		t.coalesced++
	}
}

// ---------------------------------------------------------------------------
// Reporting

// report is one run's entry in BENCH_load.json.
type report struct {
	Target        string  `json:"target"`
	TargetRateQPS float64 `json:"target_rate_qps"`
	Duration      string  `json:"duration"`
	Concurrency   int     `json:"concurrency"`
	Catalog       int     `json:"catalog"`
	ZipfS         float64 `json:"zipf_s"`
	Mix           string  `json:"mix"`

	Scheduled       int     `json:"scheduled"`
	Completed       int     `json:"completed"`
	Errors          int     `json:"errors"`
	Shed            int     `json:"shed"`
	DroppedOverload int     `json:"dropped_overload"`
	ClientRetries   int64   `json:"client_retries"`
	CacheHits       int     `json:"cache_hits"`
	Coalesced       int     `json:"coalesced"`
	SustainedQPS    float64 `json:"sustained_qps"`

	P50Micros  int64 `json:"p50_us"`
	P95Micros  int64 `json:"p95_us"`
	P99Micros  int64 `json:"p99_us"`
	P999Micros int64 `json:"p999_us"`
	MaxMicros  int64 `json:"max_us"`

	GoVersion     string `json:"go"`
	CPUs          int    `json:"cpus"`
	GeneratedUnix int64  `json:"generated_unix"`
}

func buildReport(opts options, t *tally, dropped, scheduled int, elapsed time.Duration, retries int64) report {
	rep := report{
		Target:          opts.target,
		TargetRateQPS:   opts.rate,
		Duration:        opts.duration.String(),
		Concurrency:     opts.concurrency,
		Catalog:         opts.catalog,
		ZipfS:           opts.zipfS,
		Mix:             opts.mix,
		Scheduled:       scheduled,
		Completed:       t.completed,
		Errors:          t.errs,
		Shed:            t.shed,
		DroppedOverload: dropped,
		ClientRetries:   retries,
		CacheHits:       t.hits,
		Coalesced:       t.coalesced,
		GoVersion:       runtime.Version(),
		CPUs:            runtime.NumCPU(),
		GeneratedUnix:   time.Now().Unix(),
	}
	if elapsed > 0 {
		rep.SustainedQPS = float64(t.completed) / elapsed.Seconds()
	}
	ls := append([]time.Duration(nil), t.latencies...)
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	if len(ls) > 0 {
		pct := func(p float64) int64 {
			idx := int(p * float64(len(ls)-1))
			return ls[idx].Microseconds()
		}
		rep.P50Micros = pct(0.50)
		rep.P95Micros = pct(0.95)
		rep.P99Micros = pct(0.99)
		rep.P999Micros = pct(0.999)
		rep.MaxMicros = ls[len(ls)-1].Microseconds()
	}
	return rep
}

// loadReport is the BENCH_load.json envelope: one entry per -label, merged
// across runs so the single-backend and fleet rows accumulate in one file.
type loadReport struct {
	Schema string `json:"schema"`
	// Note is free-form context about the generating environment (e.g. "1
	// shared CPU; see CI for the multi-core comparison"); merges keep it.
	Note    string            `json:"note,omitempty"`
	Entries map[string]report `json:"entries"`
}

func mergeReport(path, label string, rep report) error {
	doc := loadReport{Schema: "stencil-load/v1", Entries: map[string]report{}}
	if b, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(b, &doc); err != nil {
			return fmt.Errorf("existing %s is not a load report: %v", path, err)
		}
		if doc.Entries == nil {
			doc.Entries = map[string]report{}
		}
	}
	doc.Schema = "stencil-load/v1"
	doc.Entries[label] = rep
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
