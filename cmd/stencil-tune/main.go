// Command stencil-tune is the standalone autotuner of Section V-C: it loads
// (or trains) a ranking model, ranks the predefined configuration set for a
// named benchmark stencil and input size, and reports the chosen tuning
// vector. With -topk it additionally measures the top-k candidates and picks
// the best (the paper's future-work hybrid mode).
//
// With -server it skips all local model work and asks a running
// stencil-serve instance instead, through the retrying client (per-attempt
// timeouts, capped backoff with jitter, Retry-After honored), so a fleet of
// tuners can share one trained model and its response cache.
//
// Usage:
//
//	stencil-tune -kernel laplacian -size 128x128x128 [-model model.gob] [-topk 8]
//	stencil-tune -kernel laplacian -size 128x128x128 -server http://127.0.0.1:8080
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	stenciltune "repro"
	"repro/internal/buildinfo"
	"repro/internal/client"
	"repro/internal/dsl"
)

// kernelFromDSL parses a DSL file and returns the named definition (or the
// only/first one when name doesn't match a definition).
func kernelFromDSL(path, name string) (*stenciltune.Kernel, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	defs, err := dsl.Parse(f)
	if err != nil {
		return nil, err
	}
	for _, d := range defs {
		if d.Name == name {
			return d.Kernel(), nil
		}
	}
	return defs[0].Kernel(), nil
}

// tuneViaServer routes the tune through a stencil-serve instance via the
// retrying client. A DSL file is shipped inline so the server parses it
// with the same parser the local path uses; -kernel still selects the
// definition by name inside it.
func tuneViaServer(baseURL, clientID string, timeout time.Duration, kernelName, dslPath, size, model string, topk int, mode string) error {
	spec := client.NamedKernel(kernelName)
	if dslPath != "" {
		src, err := os.ReadFile(dslPath)
		if err != nil {
			return err
		}
		spec.DSL = string(src)
	}
	c, err := client.New(client.Config{BaseURL: baseURL, ClientID: clientID})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	resp, err := c.Tune(ctx, client.TuneRequest{
		Model: model, Kernel: spec, Size: size, TopK: topk, Mode: mode,
	})
	if err != nil {
		return err
	}
	fmt.Printf("%s: tuned by %s with model %q (cache %s, %d attempts)\n",
		resp.Instance, baseURL, resp.Model, resp.Cache, c.Attempts())
	fmt.Printf("ranked %d configurations in %v\n",
		resp.RankedCandidates, time.Duration(resp.RankMicros)*time.Microsecond)
	fmt.Printf("top-ranked tuning: {bx:%d by:%d bz:%d u:%d c:%d k:%d}\n",
		resp.Best.Bx, resp.Best.By, resp.Best.Bz, resp.Best.U, resp.Best.C, effFuse(resp.Best.K))
	if h := resp.Hybrid; h != nil {
		fmt.Printf("hybrid top-%d tuning (%s): {bx:%d by:%d bz:%d u:%d c:%d k:%d} (%.6f s)\n",
			h.TopK, h.Mode, h.Best.Bx, h.Best.By, h.Best.Bz, h.Best.U, h.Best.C, effFuse(h.Best.K), h.BestValue)
	}
	return nil
}

func parseSize(s string) (stenciltune.Size, error) {
	parts := strings.Split(s, "x")
	dims := make([]int, 0, 3)
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v <= 0 {
			return stenciltune.Size{}, fmt.Errorf("bad size component %q", p)
		}
		dims = append(dims, v)
	}
	switch len(dims) {
	case 2:
		return stenciltune.Size2D(dims[0], dims[1]), nil
	case 3:
		return stenciltune.Size3D(dims[0], dims[1], dims[2]), nil
	default:
		return stenciltune.Size{}, fmt.Errorf("size %q must be NxM or NxMxK", s)
	}
}

// effFuse normalizes a wire-format fusion depth: older servers omit the
// field, and 0 means unfused (depth 1).
func effFuse(k int) int {
	if k < 1 {
		return 1
	}
	return k
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("stencil-tune: ")

	kernelName := flag.String("kernel", "laplacian", "benchmark kernel name (Table III): blur, edge, game-of-life, wave-1, tricubic, divergence, gradient, laplacian, laplacian6")
	dslPath := flag.String("dsl", "", "tune a custom stencil from a DSL file instead of a named benchmark (first definition, or select with -kernel)")
	sizeStr := flag.String("size", "128x128x128", "grid size, e.g. 1024x1024 or 128x128x128")
	modelPath := flag.String("model", "", "trained model: a gob file or a store directory written by stencil-train -save (empty = train a fresh 3840-point model)")
	points := flag.Int("points", 3840, "training points when training fresh")
	seed := flag.Int64("seed", 1, "seed for fresh training")
	topk := flag.Int("topk", 0, "hybrid mode: additionally evaluate the top-k ranked candidates and pick the measured best")
	mode := flag.String("mode", "sim", "evaluation substrate for -topk and reporting: sim or measure")
	workers := flag.Int("workers", -1, "concurrent evaluations for fresh training and -topk (-1 = all cores, 1 = sequential); results are identical for any value")
	serverURL := flag.String("server", "", "tune through a running stencil-serve instance at this base URL instead of locally; -model then names a server-side model (empty = server default), and -points/-seed/-workers are ignored")
	clientID := flag.String("client-id", "", "stable identity sent as X-Client-ID for the server's per-client rate limiter (default: the remote address)")
	serverTimeout := flag.Duration("server-timeout", 2*time.Minute, "overall deadline for the -server call, retries included")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Read())
		return
	}

	if *serverURL != "" {
		if err := tuneViaServer(*serverURL, *clientID, *serverTimeout,
			*kernelName, *dslPath, *sizeStr, *modelPath, *topk, *mode); err != nil {
			log.Fatal(err)
		}
		return
	}

	var kernel *stenciltune.Kernel
	var err error
	if *dslPath != "" {
		kernel, err = kernelFromDSL(*dslPath, *kernelName)
	} else {
		kernel, err = stenciltune.KernelByName(*kernelName)
	}
	if err != nil {
		log.Fatal(err)
	}
	size, err := parseSize(*sizeStr)
	if err != nil {
		log.Fatal(err)
	}
	q := stenciltune.Instance{Kernel: kernel, Size: size}
	if err := q.Validate(); err != nil {
		log.Fatal(err)
	}

	var model *stenciltune.Model
	if *modelPath != "" {
		model, err = stenciltune.LoadModel(*modelPath)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded model from %s\n", *modelPath)
	} else {
		fmt.Printf("training fresh model (%d points)...\n", *points)
		model, _, err = stenciltune.Train(stenciltune.TrainOptions{
			TrainingPoints: *points, Seed: *seed, Workers: *workers,
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	var eval stenciltune.BatchEvaluator
	switch *mode {
	case "sim":
		eval = stenciltune.BatchedEvaluator(stenciltune.Simulator(), *workers)
	case "measure":
		// Measured evaluators batch natively (serialized for timing
		// fidelity) and own a worker pool that must be released on exit.
		eval = stenciltune.BatchedEvaluator(stenciltune.Measured(), *workers)
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
	defer stenciltune.CloseEvaluator(eval)

	tuner := model.Tuner()
	best, elapsed, err := tuner.TunePredefined(q)
	if err != nil {
		log.Fatal(err)
	}
	nCands := len(stenciltune.PredefinedCandidates(kernel.Dims()))
	fmt.Printf("%s: ranked %d configurations in %v\n", q.ID(), nCands, elapsed.Round(1000))
	fmt.Printf("top-ranked tuning: %v\n", best)
	fmt.Printf("evaluated runtime (%s): %.6f s\n", *mode, eval.Runtime(q, best))

	if *topk > 0 {
		hbest, hval, err := tuner.HybridTune(q, *topk, eval)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("hybrid top-%d tuning: %v (%.6f s, %d measurements)\n",
			*topk, hbest, hval, *topk)
	}
}
