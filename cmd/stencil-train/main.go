// Command stencil-train builds a training set per Section V-B of the paper
// (60 generated stencil codes, 200 instances, random tuning vectors), trains
// the ordinal-regression ranking model and saves it to disk.
//
// Usage:
//
//	stencil-train -points 3840 -seed 1 -out model.gob [-mode sim|measure]
//	stencil-train -points 3840 -save models [-name default]   # store format, for stencil-serve
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	stenciltune "repro"
	"repro/internal/buildinfo"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("stencil-train: ")

	points := flag.Int("points", 3840, "training-set size (Table II uses 960..32000)")
	seed := flag.Int64("seed", 1, "random seed for reproducible training")
	out := flag.String("out", "model.gob", "output path for the trained model (legacy gob format)")
	saveDir := flag.String("save", "", "also save into this model store directory (versioned format with provenance; what stencil-serve -models and stencil-tune -model load)")
	name := flag.String("name", "default", "artifact name within the -save store")
	mode := flag.String("mode", "sim", "evaluation substrate: sim (deterministic Xeon model) or measure (real timed execution)")
	cParam := flag.Float64("c", 0, "override the ranking-SVM regularization C (0 = default)")
	workers := flag.Int("workers", -1, "concurrent training-set generation workers (-1 = all cores, 1 = sequential); the trained model is identical for any value")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Read())
		return
	}

	opt := stenciltune.TrainOptions{
		TrainingPoints: *points,
		Seed:           *seed,
		C:              *cParam,
		Workers:        *workers,
	}
	switch *mode {
	case "sim":
		opt.Mode = stenciltune.Simulate
	case "measure":
		opt.Mode = stenciltune.Measure
	default:
		log.Fatalf("unknown mode %q (want sim or measure)", *mode)
	}

	fmt.Printf("generating %d training points (mode=%s, seed=%d)...\n", *points, *mode, *seed)
	model, report, err := stenciltune.Train(opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %d points, %d preference pairs in %v\n",
		report.TrainingPoints, report.Pairs, report.TrainTime.Round(1e6))
	fmt.Printf("accounted testbed cost: compile %v, execution %v\n",
		report.SimulatedCompileTime.Round(1e9), report.SimulatedExecTime.Round(1e9))

	if err := model.Save(*out); err != nil {
		log.Fatal(err)
	}
	info, err := os.Stat(*out)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model saved to %s (%d bytes)\n", *out, info.Size())

	if *saveDir != "" {
		if err := stenciltune.SaveModel(*saveDir, *name, model); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("model artifact %q saved to store %s (serve with: stencil-serve -models %s)\n",
			*name, *saveDir, *saveDir)
	}
}
