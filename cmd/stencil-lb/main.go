// Command stencil-lb is the horizontal-scale front for a stencil-serve
// fleet: a consistent-hash load balancer that fans /v1/tune, /v1/rank,
// /v1/predict and /v1/observe over N backend replicas. Routing is keyed on
// the kernel-structure cache key, so requests that could share a cache
// entry or coalesce in a singleflight always land on the same replica and
// each replica's LRU holds a disjoint slice of the hot set — fleet cache
// capacity adds up instead of being replicated.
//
// Usage:
//
//	stencil-serve -models models -addr :8081 &
//	stencil-serve -models models -addr :8082 &
//	stencil-lb -addr :8080 -backends 127.0.0.1:8081,127.0.0.1:8082
//	curl -X POST -d '{"kernel":"laplacian","size":"128x128x128"}' localhost:8080/v1/tune
//
// Backends are health-checked via their /readyz probes and ejected from the
// ring after consecutive failures, then readmitted when they recover.
// Clients see the backends' wire schema unchanged, with Retry-After and
// X-Request-ID passed through both ways.
//
// POST /v1/models on the balancer — or SIGHUP to the process, or the
// one-shot -broadcast-reload mode — fans the SIGHUP-equivalent registry
// reload across every replica and verifies the fleet converges on one
// content-derived registry_generation. GET /lb/status shows the fleet as
// the balancer sees it; /metrics serves the stencillb_* series.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/lb"
	"repro/internal/middleware"
	"repro/internal/obs"
)

type options struct {
	addr            string
	backends        string
	vnodes          int
	healthInterval  time.Duration
	healthTimeout   time.Duration
	ejectAfter      int
	readmitAfter    int
	maxBody         int64
	drain           time.Duration
	logFormat       string
	broadcastReload bool

	logger  *obs.Logger
	ready   chan<- net.Addr
	signals <-chan os.Signal
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("stencil-lb: ")

	var opts options
	flag.StringVar(&opts.addr, "addr", ":8080", "listen address")
	flag.StringVar(&opts.backends, "backends", "", "comma-separated backend base URLs or host:port pairs (required)")
	flag.IntVar(&opts.vnodes, "vnodes", 128, "virtual ring points per backend; more points smooth the keyspace split")
	flag.DurationVar(&opts.healthInterval, "health-interval", 500*time.Millisecond, "backend /readyz probe period")
	flag.DurationVar(&opts.healthTimeout, "health-timeout", 2*time.Second, "per-probe timeout")
	flag.IntVar(&opts.ejectAfter, "eject-after", 2, "consecutive probe failures before a backend leaves the rotation")
	flag.IntVar(&opts.readmitAfter, "readmit-after", 2, "consecutive probe successes before an ejected backend returns")
	flag.Int64Var(&opts.maxBody, "max-body", 1<<20, "request body size cap in bytes; over-limit requests get 413")
	flag.DurationVar(&opts.drain, "drain", 10*time.Second, "graceful-shutdown budget for draining in-flight requests")
	flag.StringVar(&opts.logFormat, "log-format", "text", "log output format: text or json")
	flag.BoolVar(&opts.broadcastReload, "broadcast-reload", false,
		"one-shot mode: fan a registry reload (POST /v1/models) across -backends, print per-replica results, exit 0 only if the fleet converges on one registry_generation")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Read())
		return
	}
	if opts.logFormat != "text" && opts.logFormat != "json" {
		log.Fatalf("-log-format %q: want text or json", opts.logFormat)
	}
	if opts.backends == "" {
		log.Fatal("-backends is required (comma-separated replica URLs)")
	}
	if err := run(opts); err != nil {
		log.Fatal(err)
	}
}

func splitBackends(s string) []string {
	var out []string
	for _, b := range strings.Split(s, ",") {
		if b = strings.TrimSpace(b); b != "" {
			out = append(out, b)
		}
	}
	return out
}

// run wires the balancer and serves until a shutdown signal; main minus
// flag parsing so tests can drive it directly.
func run(opts options) error {
	logger := opts.logger
	if logger == nil {
		logger = obs.NewLogger(os.Stderr, opts.logFormat)
	}
	reg := obs.NewRegistry()
	obs.RegisterRuntimeMetrics(reg)

	balancer, err := lb.New(lb.Config{
		Backends:       splitBackends(opts.backends),
		VirtualNodes:   opts.vnodes,
		HealthInterval: opts.healthInterval,
		HealthTimeout:  opts.healthTimeout,
		EjectAfter:     opts.ejectAfter,
		ReadmitAfter:   opts.readmitAfter,
		MaxBodyBytes:   opts.maxBody,
		Logger:         logger.With(obs.F("component", "lb")),
		Registry:       reg,
	})
	if err != nil {
		return err
	}
	defer balancer.Close()

	if opts.broadcastReload {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		out := balancer.BroadcastReload(ctx)
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(out)
		if !out.InLockstep {
			return fmt.Errorf("fleet did not converge on one registry_generation")
		}
		logger.Printf("fleet in lockstep on registry_generation %s", out.Generation)
		return nil
	}

	// The balancer reuses the serving hardening chain: correlation IDs on
	// everything, panic isolation above the proxy logic. Body caps live in
	// the proxy itself (it must read the body to route).
	handler := middleware.Chain(balancer.Handler(),
		middleware.RequestID(),
		middleware.Recover(logger, reg),
	)

	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	logger.Printf("%s balancing %d backend(s) on %s", buildinfo.Read(), len(splitBackends(opts.backends)), ln.Addr())
	if opts.ready != nil {
		opts.ready <- ln.Addr()
	}

	sigc := opts.signals
	if sigc == nil {
		c := make(chan os.Signal, 1)
		signal.Notify(c, os.Interrupt, syscall.SIGTERM, syscall.SIGHUP)
		sigc = c
	}
	// SIGHUP fans the reload across the fleet and keeps serving; anything
	// else starts the drain.
	for draining := false; !draining; {
		select {
		case err := <-errc:
			return err
		case sig := <-sigc:
			if sig == syscall.SIGHUP {
				out := balancer.BroadcastReload(context.Background())
				if out.InLockstep {
					logger.Printf("SIGHUP: fleet reloaded, in lockstep on registry_generation %s", out.Generation)
				} else {
					b, _ := json.Marshal(out.Results)
					logger.Printf("SIGHUP: fleet reload did NOT converge: %s", b)
				}
				continue
			}
			logger.Printf("received %v, draining in-flight requests (up to %v)", sig, opts.drain)
			draining = true
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), opts.drain)
	defer cancel()
	srv.Shutdown(ctx)
	logger.Printf("drained; bye")
	return nil
}
