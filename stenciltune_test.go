package stenciltune

import (
	"math"
	"testing"
)

func TestTrainAndTuneEndToEnd(t *testing.T) {
	model, report, err := Train(TrainOptions{TrainingPoints: 960, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if report.TrainingPoints != 960 || report.Pairs == 0 {
		t.Errorf("report incomplete: %+v", report)
	}
	if report.SimulatedCompileTime <= 0 || report.SimulatedExecTime <= 0 {
		t.Errorf("simulated costs missing: %+v", report)
	}
	tuner := model.Tuner()
	q := Instance{Kernel: Laplacian(), Size: Size3D(128, 128, 128)}
	best, elapsed, err := tuner.TunePredefined(q)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed <= 0 {
		t.Error("no ranking time")
	}
	if err := best.Validate(3); err != nil {
		t.Errorf("best invalid: %v", err)
	}
}

func TestTrainDefaults(t *testing.T) {
	model, report, err := Train(TrainOptions{TrainingPoints: 480})
	if err != nil {
		t.Fatal(err)
	}
	if model == nil || report.TrainingPoints != 480 {
		t.Fatalf("defaults broken: %+v", report)
	}
}

func TestSaveLoadModel(t *testing.T) {
	model, _, err := Train(TrainOptions{TrainingPoints: 480, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/m.gob"
	if err := model.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	q := Instance{Kernel: Blur(), Size: Size2D(1024, 768)}
	cands := PredefinedCandidates(2)
	a, err := model.Tuner().Best(q, cands)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Tuner().Best(q, cands)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("loaded model ranks differently")
	}
}

func TestSimulatorDeterministic(t *testing.T) {
	q := Instance{Kernel: Gradient(), Size: Size3D(128, 128, 128)}
	tv := TuningVector{Bx: 64, By: 16, Bz: 4, U: 2, C: 2}
	if Simulator().Runtime(q, tv) != Simulator().Runtime(q, tv) {
		t.Error("simulator not deterministic")
	}
}

func TestMeasuredEvaluatorRuns(t *testing.T) {
	eval := Measured()
	q := Instance{Kernel: Laplacian(), Size: Size3D(32, 32, 32)}
	r := eval.Runtime(q, TuningVector{Bx: 16, By: 16, Bz: 8, U: 2, C: 2})
	if r <= 0 || math.IsInf(r, 0) {
		t.Errorf("measured runtime %v", r)
	}
	// Invalid tuning folds to +Inf instead of erroring.
	bad := eval.Runtime(q, TuningVector{Bx: -3})
	if bad < 1e300 {
		t.Errorf("invalid tuning should evaluate to +Inf-like, got %v", bad)
	}
}

func TestEvaluatorFor(t *testing.T) {
	if EvaluatorFor(Simulate) == nil || EvaluatorFor(Measure) == nil {
		t.Error("nil evaluator")
	}
}

func TestPredefinedCandidatesSizes(t *testing.T) {
	if got := len(PredefinedCandidates(2)); got != 1600 {
		t.Errorf("2-D candidates = %d, want 1600", got)
	}
	if got := len(PredefinedCandidates(3)); got != 8640 {
		t.Errorf("3-D candidates = %d, want 8640", got)
	}
}

func TestSearchEnginesExposed(t *testing.T) {
	if len(SearchEngines()) != 4 {
		t.Errorf("engines = %d, want 4", len(SearchEngines()))
	}
	e, err := SearchEngineByName("ga")
	if err != nil || e == nil {
		t.Fatalf("ga lookup: %v", err)
	}
}

func TestRunSearch(t *testing.T) {
	e, err := SearchEngineByName("random")
	if err != nil {
		t.Fatal(err)
	}
	q := Instance{Kernel: Laplacian(), Size: Size3D(128, 128, 128)}
	res, err := RunSearch(e, q, nil, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != 64 || res.BestValue <= 0 {
		t.Errorf("search result: %+v", res)
	}
	if _, err := RunSearch(e, q, nil, 0, 1); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := RunSearch(e, Instance{}, nil, 10, 1); err == nil {
		t.Error("invalid instance accepted")
	}
}

func TestHybridTune(t *testing.T) {
	model, _, err := Train(TrainOptions{TrainingPoints: 960, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	tuner := model.Tuner()
	q := Instance{Kernel: Gradient(), Size: Size3D(128, 128, 128)}
	best, val, err := tuner.HybridTune(q, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if val <= 0 {
		t.Errorf("hybrid value %v", val)
	}
	if err := best.Validate(3); err != nil {
		t.Errorf("hybrid best invalid: %v", err)
	}
	// Hybrid must be at least as good as the pure top-1.
	top1, _, err := tuner.TunePredefined(q)
	if err != nil {
		t.Fatal(err)
	}
	if val > Simulator().Runtime(q, top1)+1e-12 {
		t.Error("hybrid worse than pure top-1")
	}
}

func TestCustomEvaluatorOption(t *testing.T) {
	calls := 0
	eval := evalFunc(func(q Instance, tv TuningVector) float64 {
		calls++
		return Simulator().Runtime(q, tv)
	})
	_, _, err := Train(TrainOptions{TrainingPoints: 480, Evaluator: eval})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 480 {
		t.Errorf("custom evaluator called %d times, want 480", calls)
	}
}

type evalFunc func(Instance, TuningVector) float64

func (f evalFunc) Runtime(q Instance, t TuningVector) float64 { return f(q, t) }

func TestBenchmarksReExported(t *testing.T) {
	if len(Benchmarks()) != 17 {
		t.Error("benchmark re-export broken")
	}
	k, err := KernelByName("blur")
	if err != nil || k.Name != "blur" {
		t.Error("kernel lookup re-export broken")
	}
}
