// Package grid provides the field substrate stencils operate on: flat-array
// 2-D/3-D grids with halo (ghost-cell) regions sized to a stencil's maximum
// offset, deterministic initialization patterns, and tolerant comparison used
// by the executor's correctness tests.
//
// Grid is generic over its element type: Grid[float32] and Grid[float64]
// store exactly the stencil.DataType the kernel declares, so the executor
// times and validates single-precision stencils in single precision. The
// float64-typed helpers (New, New2D, Acquire, Release) remain as shims for
// the double-precision default; NewOf/AcquireOf are the typed constructors.
package grid

import (
	"fmt"
	"math"
)

// Float constrains a grid's element type to the two stencil data types.
// Deliberately no ~: defined types would defeat the elemBytes type switch
// (mis-sizing WorkspaceBytes and colliding pool classes across element
// types), and the execution engine only ever instantiates the two exact
// types stencil.DataType can declare.
type Float interface {
	float32 | float64
}

// Grid is a dense 3-D field with a halo of width Halo on every side. 2-D
// grids are represented with NZ = 1 (and a halo in x/y only if HaloZ is 0).
// Data is laid out x-fastest: index = ((z * strideY) + y) * strideX + x,
// with coordinates including the halo.
type Grid[T Float] struct {
	NX, NY, NZ int // interior extent
	Halo       int // halo width in x and y
	HaloZ      int // halo width in z (0 for 2-D grids)

	strideX, strideY int
	data             []T
}

// NewOf allocates a grid of element type T with the given interior size and
// halo widths. For 2-D fields pass nz = 1 and haloZ = 0.
func NewOf[T Float](nx, ny, nz, halo, haloZ int) *Grid[T] {
	if nx <= 0 || ny <= 0 || nz <= 0 {
		panic(fmt.Sprintf("grid: non-positive extent %dx%dx%d", nx, ny, nz))
	}
	if halo < 0 || haloZ < 0 {
		panic("grid: negative halo")
	}
	g := &Grid[T]{NX: nx, NY: ny, NZ: nz, Halo: halo, HaloZ: haloZ}
	g.strideX = nx + 2*halo
	g.strideY = ny + 2*halo
	g.data = make([]T, g.strideX*g.strideY*(nz+2*haloZ))
	return g
}

// New allocates a float64 grid (the double-precision shim of NewOf).
func New(nx, ny, nz, halo, haloZ int) *Grid[float64] {
	return NewOf[float64](nx, ny, nz, halo, haloZ)
}

// New2DOf allocates a planar grid of element type T with the given halo.
func New2DOf[T Float](nx, ny, halo int) *Grid[T] { return NewOf[T](nx, ny, 1, halo, 0) }

// New2D allocates a planar float64 grid with the given halo.
func New2D(nx, ny, halo int) *Grid[float64] { return New(nx, ny, 1, halo, 0) }

// Len returns the total allocated element count including halos.
func (g *Grid[T]) Len() int { return len(g.data) }

// ElemBytes returns the size in bytes of one element of this grid.
func (g *Grid[T]) ElemBytes() int {
	var zero T
	return elemBytes(zero)
}

func elemBytes[T Float](zero T) int {
	if _, ok := any(zero).(float32); ok {
		return 4
	}
	return 8
}

// InteriorPoints returns the number of interior (non-halo) cells.
func (g *Grid[T]) InteriorPoints() int { return g.NX * g.NY * g.NZ }

// Index returns the flat index of interior coordinate (x, y, z); the
// coordinate (0,0,0) is the first interior cell. Offsets may reach into the
// halo: x ∈ [-Halo, NX+Halo).
func (g *Grid[T]) Index(x, y, z int) int {
	return ((z+g.HaloZ)*g.strideY+(y+g.Halo))*g.strideX + (x + g.Halo)
}

// At returns the value at interior coordinate (x, y, z).
func (g *Grid[T]) At(x, y, z int) T { return g.data[g.Index(x, y, z)] }

// Set stores v at interior coordinate (x, y, z).
func (g *Grid[T]) Set(x, y, z int, v T) { g.data[g.Index(x, y, z)] = v }

// Data exposes the raw backing slice for kernel inner loops.
func (g *Grid[T]) Data() []T { return g.data }

// StrideX returns the x-stride (allocated row length).
func (g *Grid[T]) StrideX() int { return g.strideX }

// StrideY returns the number of allocated rows per plane.
func (g *Grid[T]) StrideY() int { return g.strideY }

// OffsetIndex converts a relative stencil offset to a flat-index delta, so
// kernels can precompute neighbour displacements once.
func (g *Grid[T]) OffsetIndex(dx, dy, dz int) int {
	return (dz*g.strideY+dy)*g.strideX + dx
}

// Fill sets every cell (halo included) to v.
func (g *Grid[T]) Fill(v T) {
	for i := range g.data {
		g.data[i] = v
	}
}

// FillPattern initializes every cell (halo included) with a smooth
// deterministic function of its coordinates, so different tunings of the same
// kernel can be checked for bitwise-comparable results.
//
// The sweep walks whole allocated rows by stride bumps — the x extent of the
// fill is exactly strideX, so rows tile the backing array contiguously — and
// hoists the y/z transcendentals out of the row loop. The per-cell value
// (sin(0.37x) + cos(0.21y)) + 0.5·sin(0.11z) is computed in float64 and then
// converted to T, so the float64 instantiation stays bit-identical to the
// original per-point sweep and the float32 one is its correct rounding.
func (g *Grid[T]) FillPattern() {
	base := 0
	for z := -g.HaloZ; z < g.NZ+g.HaloZ; z++ {
		halfSinZ := 0.5 * math.Sin(float64(z)*0.11)
		for y := -g.Halo; y < g.NY+g.Halo; y++ {
			cosY := math.Cos(float64(y) * 0.21)
			row := g.data[base : base+g.strideX]
			x := float64(-g.Halo)
			for i := range row {
				row[i] = T((math.Sin(x*0.37) + cosY) + halfSinZ)
				x++
			}
			base += g.strideX
		}
	}
}

// Clone returns a deep copy.
func (g *Grid[T]) Clone() *Grid[T] {
	c := *g
	c.data = make([]T, len(g.data))
	copy(c.data, g.data)
	return &c
}

// MaxAbsDiff returns the maximum absolute interior difference between two
// grids of identical geometry and element type, as a float64. It panics if
// the geometries differ.
func MaxAbsDiff[T Float](a, b *Grid[T]) float64 {
	if a.NX != b.NX || a.NY != b.NY || a.NZ != b.NZ {
		panic("grid: geometry mismatch")
	}
	var m float64
	for z := 0; z < a.NZ; z++ {
		for y := 0; y < a.NY; y++ {
			for x := 0; x < a.NX; x++ {
				d := math.Abs(float64(a.At(x, y, z)) - float64(b.At(x, y, z)))
				if d > m {
					m = d
				}
			}
		}
	}
	return m
}

// InteriorSum returns the sum of all interior cells (a cheap checksum for
// tests), accumulated in the grid's own element type. Interior rows are
// walked as reslices advanced by stride bumps from a single Index call; the
// accumulation order (x, then y, then z ascending) matches the original
// per-point sweep bit-for-bit.
func (g *Grid[T]) InteriorSum() T {
	var s T
	planeBase := g.Index(0, 0, 0)
	planeStride := g.strideX * g.strideY
	for z := 0; z < g.NZ; z++ {
		base := planeBase
		for y := 0; y < g.NY; y++ {
			for _, v := range g.data[base : base+g.NX] {
				s += v
			}
			base += g.strideX
		}
		planeBase += planeStride
	}
	return s
}
