// Package grid provides the field substrate stencils operate on: flat-array
// 2-D/3-D grids with halo (ghost-cell) regions sized to a stencil's maximum
// offset, deterministic initialization patterns, and tolerant comparison used
// by the executor's correctness tests.
//
// Grids store float64 throughout; the stencil DataType only affects the
// performance model and the feature encoding. Using one element type keeps
// the executor simple without changing any learning-relevant behaviour.
package grid

import (
	"fmt"
	"math"
)

// Grid is a dense 3-D field with a halo of width Halo on every side. 2-D
// grids are represented with NZ = 1 (and a halo in x/y only if HaloZ is 0).
// Data is laid out x-fastest: index = ((z * strideY) + y) * strideX + x,
// with coordinates including the halo.
type Grid struct {
	NX, NY, NZ int // interior extent
	Halo       int // halo width in x and y
	HaloZ      int // halo width in z (0 for 2-D grids)

	strideX, strideY int
	data             []float64
}

// New allocates a grid with the given interior size and halo widths.
// For 2-D fields pass nz = 1 and haloZ = 0.
func New(nx, ny, nz, halo, haloZ int) *Grid {
	if nx <= 0 || ny <= 0 || nz <= 0 {
		panic(fmt.Sprintf("grid: non-positive extent %dx%dx%d", nx, ny, nz))
	}
	if halo < 0 || haloZ < 0 {
		panic("grid: negative halo")
	}
	g := &Grid{NX: nx, NY: ny, NZ: nz, Halo: halo, HaloZ: haloZ}
	g.strideX = nx + 2*halo
	g.strideY = ny + 2*halo
	g.data = make([]float64, g.strideX*g.strideY*(nz+2*haloZ))
	return g
}

// New2D allocates a planar grid with the given halo.
func New2D(nx, ny, halo int) *Grid { return New(nx, ny, 1, halo, 0) }

// Len returns the total allocated element count including halos.
func (g *Grid) Len() int { return len(g.data) }

// InteriorPoints returns the number of interior (non-halo) cells.
func (g *Grid) InteriorPoints() int { return g.NX * g.NY * g.NZ }

// Index returns the flat index of interior coordinate (x, y, z); the
// coordinate (0,0,0) is the first interior cell. Offsets may reach into the
// halo: x ∈ [-Halo, NX+Halo).
func (g *Grid) Index(x, y, z int) int {
	return ((z+g.HaloZ)*g.strideY+(y+g.Halo))*g.strideX + (x + g.Halo)
}

// At returns the value at interior coordinate (x, y, z).
func (g *Grid) At(x, y, z int) float64 { return g.data[g.Index(x, y, z)] }

// Set stores v at interior coordinate (x, y, z).
func (g *Grid) Set(x, y, z int, v float64) { g.data[g.Index(x, y, z)] = v }

// Data exposes the raw backing slice for kernel inner loops.
func (g *Grid) Data() []float64 { return g.data }

// StrideX returns the x-stride (allocated row length).
func (g *Grid) StrideX() int { return g.strideX }

// StrideY returns the number of allocated rows per plane.
func (g *Grid) StrideY() int { return g.strideY }

// OffsetIndex converts a relative stencil offset to a flat-index delta, so
// kernels can precompute neighbour displacements once.
func (g *Grid) OffsetIndex(dx, dy, dz int) int {
	return (dz*g.strideY+dy)*g.strideX + dx
}

// Fill sets every cell (halo included) to v.
func (g *Grid) Fill(v float64) {
	for i := range g.data {
		g.data[i] = v
	}
}

// FillPattern initializes every cell (halo included) with a smooth
// deterministic function of its coordinates, so different tunings of the same
// kernel can be checked for bitwise-comparable results.
//
// The sweep walks whole allocated rows by stride bumps — the x extent of the
// fill is exactly strideX, so rows tile the backing array contiguously — and
// hoists the y/z transcendentals out of the row loop. The per-cell value
// (sin(0.37x) + cos(0.21y)) + 0.5·sin(0.11z), in that association order, is
// bit-identical to what the original per-point sweep produced.
func (g *Grid) FillPattern() {
	base := 0
	for z := -g.HaloZ; z < g.NZ+g.HaloZ; z++ {
		halfSinZ := 0.5 * math.Sin(float64(z)*0.11)
		for y := -g.Halo; y < g.NY+g.Halo; y++ {
			cosY := math.Cos(float64(y) * 0.21)
			row := g.data[base : base+g.strideX]
			x := float64(-g.Halo)
			for i := range row {
				row[i] = (math.Sin(x*0.37) + cosY) + halfSinZ
				x++
			}
			base += g.strideX
		}
	}
}

// Clone returns a deep copy.
func (g *Grid) Clone() *Grid {
	c := *g
	c.data = make([]float64, len(g.data))
	copy(c.data, g.data)
	return &c
}

// MaxAbsDiff returns the maximum absolute interior difference between two
// grids of identical geometry. It panics if the geometries differ.
func MaxAbsDiff(a, b *Grid) float64 {
	if a.NX != b.NX || a.NY != b.NY || a.NZ != b.NZ {
		panic("grid: geometry mismatch")
	}
	var m float64
	for z := 0; z < a.NZ; z++ {
		for y := 0; y < a.NY; y++ {
			for x := 0; x < a.NX; x++ {
				d := math.Abs(a.At(x, y, z) - b.At(x, y, z))
				if d > m {
					m = d
				}
			}
		}
	}
	return m
}

// InteriorSum returns the sum of all interior cells (a cheap checksum for
// tests). Interior rows are walked as reslices advanced by stride bumps from
// a single Index call; the accumulation order (x, then y, then z ascending)
// matches the original per-point sweep bit-for-bit.
func (g *Grid) InteriorSum() float64 {
	var s float64
	planeBase := g.Index(0, 0, 0)
	planeStride := g.strideX * g.strideY
	for z := 0; z < g.NZ; z++ {
		base := planeBase
		for y := 0; y < g.NY; y++ {
			for _, v := range g.data[base : base+g.NX] {
				s += v
			}
			base += g.strideX
		}
		planeBase += planeStride
	}
	return s
}
