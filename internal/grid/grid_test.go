package grid

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestNewGeometry(t *testing.T) {
	g := New(8, 6, 4, 2, 1)
	if g.StrideX() != 12 || g.StrideY() != 10 {
		t.Errorf("strides = %d,%d, want 12,10", g.StrideX(), g.StrideY())
	}
	if g.Len() != 12*10*6 {
		t.Errorf("Len = %d, want %d", g.Len(), 12*10*6)
	}
	if g.InteriorPoints() != 8*6*4 {
		t.Errorf("InteriorPoints = %d", g.InteriorPoints())
	}
}

func TestNew2D(t *testing.T) {
	g := New2D(10, 5, 1)
	if g.NZ != 1 || g.HaloZ != 0 {
		t.Errorf("2-D grid geometry wrong: nz=%d haloZ=%d", g.NZ, g.HaloZ)
	}
	if g.Len() != 12*7*1 {
		t.Errorf("Len = %d, want 84", g.Len())
	}
}

func TestNewPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero-extent":   func() { New(0, 1, 1, 0, 0) },
		"negative-halo": func() { New(4, 4, 4, -1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSetAtRoundTrip(t *testing.T) {
	g := New(4, 4, 4, 1, 1)
	g.Set(2, 3, 1, 42)
	if got := g.At(2, 3, 1); got != 42 {
		t.Errorf("At = %v, want 42", got)
	}
	// Halo coordinates are addressable.
	g.Set(-1, -1, -1, 7)
	if got := g.At(-1, -1, -1); got != 7 {
		t.Errorf("halo At = %v, want 7", got)
	}
}

func TestIndexBijective(t *testing.T) {
	g := New(5, 4, 3, 2, 1)
	seen := map[int]bool{}
	for z := -g.HaloZ; z < g.NZ+g.HaloZ; z++ {
		for y := -g.Halo; y < g.NY+g.Halo; y++ {
			for x := -g.Halo; x < g.NX+g.Halo; x++ {
				idx := g.Index(x, y, z)
				if idx < 0 || idx >= g.Len() {
					t.Fatalf("index (%d,%d,%d) = %d out of range", x, y, z, idx)
				}
				if seen[idx] {
					t.Fatalf("index collision at (%d,%d,%d)", x, y, z)
				}
				seen[idx] = true
			}
		}
	}
	if len(seen) != g.Len() {
		t.Fatalf("covered %d cells of %d", len(seen), g.Len())
	}
}

func TestOffsetIndexConsistent(t *testing.T) {
	g := New(8, 8, 8, 2, 2)
	base := g.Index(3, 3, 3)
	for _, d := range [][3]int{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}, {-2, 1, -1}, {2, -2, 2}} {
		want := g.Index(3+d[0], 3+d[1], 3+d[2])
		if got := base + g.OffsetIndex(d[0], d[1], d[2]); got != want {
			t.Errorf("OffsetIndex%v: %d, want %d", d, got, want)
		}
	}
}

func TestFill(t *testing.T) {
	g := New(3, 3, 3, 1, 1)
	g.Fill(2.5)
	for i, v := range g.Data() {
		if v != 2.5 {
			t.Fatalf("cell %d = %v after Fill", i, v)
		}
	}
}

func TestFillPatternDeterministicAndNonConstant(t *testing.T) {
	a := New(8, 8, 4, 1, 1)
	b := New(8, 8, 4, 1, 1)
	a.FillPattern()
	b.FillPattern()
	if MaxAbsDiff(a, b) != 0 {
		t.Error("FillPattern not deterministic")
	}
	if a.At(0, 0, 0) == a.At(1, 2, 3) && a.At(1, 0, 0) == a.At(2, 0, 0) {
		t.Error("FillPattern looks constant")
	}
	// Halo cells must be initialized too (stencils read them).
	if a.At(-1, -1, -1) == 0 && a.At(8, 8, 4) == 0 {
		t.Error("halo not initialized by FillPattern")
	}
}

func TestClone(t *testing.T) {
	g := New(4, 4, 1, 1, 0)
	g.FillPattern()
	c := g.Clone()
	if MaxAbsDiff(g, c) != 0 {
		t.Fatal("clone differs")
	}
	c.Set(0, 0, 0, 999)
	if g.At(0, 0, 0) == 999 {
		t.Fatal("clone shares storage")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := New(4, 4, 1, 0, 0)
	b := New(4, 4, 1, 0, 0)
	b.Set(2, 1, 0, -3)
	if got := MaxAbsDiff(a, b); got != 3 {
		t.Errorf("MaxAbsDiff = %v, want 3", got)
	}
}

func TestMaxAbsDiffPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on geometry mismatch")
		}
	}()
	MaxAbsDiff(New(4, 4, 1, 0, 0), New(5, 4, 1, 0, 0))
}

func TestInteriorSumIgnoresHalo(t *testing.T) {
	g := New(2, 2, 1, 1, 0)
	g.Fill(100) // halo gets 100 too
	for y := 0; y < 2; y++ {
		for x := 0; x < 2; x++ {
			g.Set(x, y, 0, 1)
		}
	}
	if got := g.InteriorSum(); got != 4 {
		t.Errorf("InteriorSum = %v, want 4 (halo must not count)", got)
	}
}

func TestFillPatternMatchesPerPointDefinition(t *testing.T) {
	// The row-walk sweep must reproduce the original per-point formula
	// sin(0.37x) + cos(0.21y) + 0.5·sin(0.11z) bit-for-bit, halo included.
	g := New(9, 7, 5, 2, 1)
	g.FillPattern()
	for z := -g.HaloZ; z < g.NZ+g.HaloZ; z++ {
		for y := -g.Halo; y < g.NY+g.Halo; y++ {
			for x := -g.Halo; x < g.NX+g.Halo; x++ {
				want := math.Sin(float64(x)*0.37) + math.Cos(float64(y)*0.21) +
					0.5*math.Sin(float64(z)*0.11)
				if got := g.At(x, y, z); got != want {
					t.Fatalf("FillPattern(%d,%d,%d) = %v, want %v", x, y, z, got, want)
				}
			}
		}
	}
}

func TestInteriorSumMatchesPerPointSweep(t *testing.T) {
	g := New(13, 9, 6, 2, 1)
	g.FillPattern()
	var want float64
	for z := 0; z < g.NZ; z++ {
		for y := 0; y < g.NY; y++ {
			for x := 0; x < g.NX; x++ {
				want += g.At(x, y, z)
			}
		}
	}
	if got := g.InteriorSum(); got != want {
		t.Errorf("InteriorSum = %v, want %v (bit-for-bit)", got, want)
	}
}

func TestAcquireReleaseZeroedAndInterchangeable(t *testing.T) {
	g := Acquire(8, 6, 4, 2, 1)
	if g.NX != 8 || g.NY != 6 || g.NZ != 4 || g.Halo != 2 || g.HaloZ != 1 {
		t.Fatalf("Acquire geometry %dx%dx%d halo %d/%d", g.NX, g.NY, g.NZ, g.Halo, g.HaloZ)
	}
	g.Fill(3.5)
	Release(g)
	// Whether or not the pool hands the same grid back, contents must be
	// indistinguishable from a fresh New.
	h := Acquire(8, 6, 4, 2, 1)
	for i, v := range h.Data() {
		if v != 0 {
			t.Fatalf("re-acquired grid cell %d = %v, want 0", i, v)
		}
	}
	Release(h)
	Release(nil) // no-op
	// A different geometry never yields the released grid's shape.
	other := Acquire(4, 4, 1, 1, 0)
	if other.NX != 4 || other.NZ != 1 {
		t.Fatalf("cross-geometry Acquire returned %dx%dx%d", other.NX, other.NY, other.NZ)
	}
	Release(other)
}

func TestAcquireConcurrent(t *testing.T) {
	// Hammer one pool class from many goroutines; the race detector guards
	// the pool map, and every grid must come back zeroed.
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				g := Acquire(16, 16, 1, 1, 0)
				if g.Data()[0] != 0 {
					t.Error("acquired grid not zeroed")
				}
				g.Fill(1)
				Release(g)
			}
		}()
	}
	wg.Wait()
}

func TestPropertySetAtConsistent(t *testing.T) {
	g := New(16, 16, 8, 2, 2)
	f := func(x, y, z uint8, v float64) bool {
		if math.IsNaN(v) {
			return true
		}
		xi, yi, zi := int(x)%16, int(y)%16, int(z)%8
		g.Set(xi, yi, zi, v)
		return g.At(xi, yi, zi) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
