package grid

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewGeometry(t *testing.T) {
	g := New(8, 6, 4, 2, 1)
	if g.StrideX() != 12 || g.StrideY() != 10 {
		t.Errorf("strides = %d,%d, want 12,10", g.StrideX(), g.StrideY())
	}
	if g.Len() != 12*10*6 {
		t.Errorf("Len = %d, want %d", g.Len(), 12*10*6)
	}
	if g.InteriorPoints() != 8*6*4 {
		t.Errorf("InteriorPoints = %d", g.InteriorPoints())
	}
}

func TestNew2D(t *testing.T) {
	g := New2D(10, 5, 1)
	if g.NZ != 1 || g.HaloZ != 0 {
		t.Errorf("2-D grid geometry wrong: nz=%d haloZ=%d", g.NZ, g.HaloZ)
	}
	if g.Len() != 12*7*1 {
		t.Errorf("Len = %d, want 84", g.Len())
	}
}

func TestNewPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero-extent":   func() { New(0, 1, 1, 0, 0) },
		"negative-halo": func() { New(4, 4, 4, -1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSetAtRoundTrip(t *testing.T) {
	g := New(4, 4, 4, 1, 1)
	g.Set(2, 3, 1, 42)
	if got := g.At(2, 3, 1); got != 42 {
		t.Errorf("At = %v, want 42", got)
	}
	// Halo coordinates are addressable.
	g.Set(-1, -1, -1, 7)
	if got := g.At(-1, -1, -1); got != 7 {
		t.Errorf("halo At = %v, want 7", got)
	}
}

func TestIndexBijective(t *testing.T) {
	g := New(5, 4, 3, 2, 1)
	seen := map[int]bool{}
	for z := -g.HaloZ; z < g.NZ+g.HaloZ; z++ {
		for y := -g.Halo; y < g.NY+g.Halo; y++ {
			for x := -g.Halo; x < g.NX+g.Halo; x++ {
				idx := g.Index(x, y, z)
				if idx < 0 || idx >= g.Len() {
					t.Fatalf("index (%d,%d,%d) = %d out of range", x, y, z, idx)
				}
				if seen[idx] {
					t.Fatalf("index collision at (%d,%d,%d)", x, y, z)
				}
				seen[idx] = true
			}
		}
	}
	if len(seen) != g.Len() {
		t.Fatalf("covered %d cells of %d", len(seen), g.Len())
	}
}

func TestOffsetIndexConsistent(t *testing.T) {
	g := New(8, 8, 8, 2, 2)
	base := g.Index(3, 3, 3)
	for _, d := range [][3]int{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}, {-2, 1, -1}, {2, -2, 2}} {
		want := g.Index(3+d[0], 3+d[1], 3+d[2])
		if got := base + g.OffsetIndex(d[0], d[1], d[2]); got != want {
			t.Errorf("OffsetIndex%v: %d, want %d", d, got, want)
		}
	}
}

func TestFill(t *testing.T) {
	g := New(3, 3, 3, 1, 1)
	g.Fill(2.5)
	for i, v := range g.Data() {
		if v != 2.5 {
			t.Fatalf("cell %d = %v after Fill", i, v)
		}
	}
}

func TestFillPatternDeterministicAndNonConstant(t *testing.T) {
	a := New(8, 8, 4, 1, 1)
	b := New(8, 8, 4, 1, 1)
	a.FillPattern()
	b.FillPattern()
	if MaxAbsDiff(a, b) != 0 {
		t.Error("FillPattern not deterministic")
	}
	if a.At(0, 0, 0) == a.At(1, 2, 3) && a.At(1, 0, 0) == a.At(2, 0, 0) {
		t.Error("FillPattern looks constant")
	}
	// Halo cells must be initialized too (stencils read them).
	if a.At(-1, -1, -1) == 0 && a.At(8, 8, 4) == 0 {
		t.Error("halo not initialized by FillPattern")
	}
}

func TestClone(t *testing.T) {
	g := New(4, 4, 1, 1, 0)
	g.FillPattern()
	c := g.Clone()
	if MaxAbsDiff(g, c) != 0 {
		t.Fatal("clone differs")
	}
	c.Set(0, 0, 0, 999)
	if g.At(0, 0, 0) == 999 {
		t.Fatal("clone shares storage")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := New(4, 4, 1, 0, 0)
	b := New(4, 4, 1, 0, 0)
	b.Set(2, 1, 0, -3)
	if got := MaxAbsDiff(a, b); got != 3 {
		t.Errorf("MaxAbsDiff = %v, want 3", got)
	}
}

func TestMaxAbsDiffPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on geometry mismatch")
		}
	}()
	MaxAbsDiff(New(4, 4, 1, 0, 0), New(5, 4, 1, 0, 0))
}

func TestInteriorSumIgnoresHalo(t *testing.T) {
	g := New(2, 2, 1, 1, 0)
	g.Fill(100) // halo gets 100 too
	for y := 0; y < 2; y++ {
		for x := 0; x < 2; x++ {
			g.Set(x, y, 0, 1)
		}
	}
	if got := g.InteriorSum(); got != 4 {
		t.Errorf("InteriorSum = %v, want 4 (halo must not count)", got)
	}
}

func TestPropertySetAtConsistent(t *testing.T) {
	g := New(16, 16, 8, 2, 2)
	f := func(x, y, z uint8, v float64) bool {
		if math.IsNaN(v) {
			return true
		}
		xi, yi, zi := int(x)%16, int(y)%16, int(z)%8
		g.Set(xi, yi, zi, v)
		return g.At(xi, yi, zi) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
