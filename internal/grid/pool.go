package grid

import "sync"

// Grid pooling. Dataset generation and autotuning allocate the same few grid
// geometries over and over — multi-MB buffers whose churn dominates GC work
// in steady state. Acquire/Release recycle grids through per-geometry
// sync.Pools: grids with equal geometry have identical strides and layout,
// so a released grid is a perfect substitute for a fresh allocation of the
// same shape. Under memory pressure the runtime empties the pools, so idle
// geometries cost nothing permanently.

// poolKey identifies a pool class: grids with equal geometry are
// interchangeable.
type poolKey struct {
	nx, ny, nz, halo, haloZ int
}

var (
	poolMu sync.Mutex
	pools  = map[poolKey]*sync.Pool{}
)

func poolFor(key poolKey) *sync.Pool {
	poolMu.Lock()
	p := pools[key]
	if p == nil {
		p = &sync.Pool{}
		pools[key] = p
	}
	poolMu.Unlock()
	return p
}

// Acquire returns a zeroed grid of the given geometry, reusing a previously
// Released grid when one is available. It is the pooled drop-in for New:
// contents are indistinguishable from a fresh allocation. Safe for
// concurrent use.
func Acquire(nx, ny, nz, halo, haloZ int) *Grid {
	p := poolFor(poolKey{nx, ny, nz, halo, haloZ})
	if g, ok := p.Get().(*Grid); ok {
		clear(g.data)
		return g
	}
	return New(nx, ny, nz, halo, haloZ)
}

// Release returns g to the pool serving its geometry for a later Acquire.
// The caller must not retain any reference to g (including its Data slice)
// afterwards. Release of nil is a no-op. Safe for concurrent use.
func Release(g *Grid) {
	if g == nil {
		return
	}
	poolFor(poolKey{g.NX, g.NY, g.NZ, g.Halo, g.HaloZ}).Put(g)
}
