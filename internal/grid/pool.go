package grid

import "sync"

// Grid pooling. Dataset generation and autotuning allocate the same few grid
// geometries over and over — multi-MB buffers whose churn dominates GC work
// in steady state. Acquire/Release recycle grids through per-geometry,
// per-element-type sync.Pools: grids with equal geometry and type have
// identical strides and layout, so a released grid is a perfect substitute
// for a fresh allocation of the same shape. Under memory pressure the runtime
// empties the pools, so idle geometries cost nothing permanently.

// poolKey identifies a pool class: grids with equal geometry and element size
// are interchangeable. elemBytes keeps Grid[float32] and Grid[float64] of the
// same geometry in disjoint classes.
type poolKey struct {
	nx, ny, nz, halo, haloZ int
	elemBytes               int
}

var (
	poolMu sync.Mutex
	pools  = map[poolKey]*sync.Pool{}
)

func poolFor(key poolKey) *sync.Pool {
	poolMu.Lock()
	p := pools[key]
	if p == nil {
		p = &sync.Pool{}
		pools[key] = p
	}
	poolMu.Unlock()
	return p
}

// AcquireOf returns a zeroed grid of element type T and the given geometry,
// reusing a previously Released grid when one is available. It is the pooled
// drop-in for NewOf: contents are indistinguishable from a fresh allocation.
// Safe for concurrent use.
func AcquireOf[T Float](nx, ny, nz, halo, haloZ int) *Grid[T] {
	var zero T
	p := poolFor(poolKey{nx, ny, nz, halo, haloZ, elemBytes(zero)})
	if g, ok := p.Get().(*Grid[T]); ok {
		clear(g.data)
		return g
	}
	return NewOf[T](nx, ny, nz, halo, haloZ)
}

// Acquire returns a zeroed float64 grid (the double-precision shim of
// AcquireOf).
func Acquire(nx, ny, nz, halo, haloZ int) *Grid[float64] {
	return AcquireOf[float64](nx, ny, nz, halo, haloZ)
}

// ReleaseOf returns g to the pool serving its geometry and element type for a
// later AcquireOf. The caller must not retain any reference to g (including
// its Data slice) afterwards. Release of nil is a no-op. Safe for concurrent
// use.
func ReleaseOf[T Float](g *Grid[T]) {
	if g == nil {
		return
	}
	poolFor(poolKey{g.NX, g.NY, g.NZ, g.Halo, g.HaloZ, g.ElemBytes()}).Put(g)
}

// Release returns a float64 grid to the pool (the shim of ReleaseOf).
func Release(g *Grid[float64]) { ReleaseOf(g) }
