// Package wal is the durable observation log of the online-learning loop: an
// append-only, segmented, CRC-framed record of every measured stencil
// execution the serving stack sees. The server appends each measure-mode
// result (and client-reported runtimes) off the request path; the background
// retrainer tails the log and folds the observations into new model versions.
// Durability is the whole point — a crash may cost at most the last unsynced
// batch, and can never corrupt what was already synced.
//
// # On-disk format
//
// A log is a directory of segment files named seg-00000001.wal,
// seg-00000002.wal, ... Each segment starts with an 8-byte magic header and
// holds a run of frames:
//
//	[4B little-endian payload length][4B CRC32-C of payload][payload]
//
// The payload is one JSON-encoded Record — self-describing and greppable,
// with the frame layer supplying integrity and boundaries. Segments are
// created via tmp+rename (header written and synced before the rename), so a
// half-created segment is never visible under its final name; appends go to
// the highest-numbered segment, and rotation seals it by simply starting the
// next one.
//
// # Crash recovery
//
// Open never fails the process over corruption. It scans every segment,
// verifies each frame's CRC, and classifies damage:
//
//   - a torn tail (truncated frame, zeroed length, or an implausible length
//     at end of segment) is cut off — on the active segment the file is
//     physically truncated so appends resume at a clean boundary;
//   - a corrupt frame with a plausible length (payload bit-flip) is skipped
//     and scanning continues at the next frame boundary;
//   - a segment whose header is damaged is skipped whole.
//
// Everything it did is returned in a Report, so operators see exactly what a
// crash cost. ReadAll applies the same scan read-only (no truncation), which
// lets the in-process retrainer tail a log that is concurrently appended.
package wal

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// magic identifies a segment file; the trailing byte versions the framing.
var magic = [8]byte{'S', 'T', 'W', 'A', 'L', '0', '1', '\n'}

const (
	frameHeaderBytes = 8
	segPrefix        = "seg-"
	segSuffix        = ".wal"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options sizes a log.
type Options struct {
	// SegmentBytes is the rotation threshold: an append that would grow the
	// active segment past it starts a new segment first (default 4 MiB).
	SegmentBytes int64
	// MaxRecordBytes bounds one encoded record; larger appends are rejected
	// and, during recovery, a length prefix above it marks a torn tail
	// (default 1 MiB).
	MaxRecordBytes int
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.MaxRecordBytes <= 0 {
		o.MaxRecordBytes = 1 << 20
	}
	return o
}

// Report is what recovery found and did. It is informational: corruption
// never fails Open.
type Report struct {
	// Segments is how many segment files were scanned.
	Segments int
	// Records is how many intact records the log holds.
	Records int64
	// CorruptFrames counts CRC-failed frames that were skipped in place.
	CorruptFrames int
	// TornBytes counts tail bytes cut off as unparseable (truncated on the
	// active segment, ignored on sealed ones).
	TornBytes int64
	// SkippedSegments counts segments abandoned whole (bad header).
	SkippedSegments int
	// Truncated reports whether Open physically truncated the active
	// segment to repair a torn tail.
	Truncated bool
}

func (r Report) String() string {
	return fmt.Sprintf("wal: %d record(s) in %d segment(s); recovery skipped %d corrupt frame(s), %d torn byte(s), %d unreadable segment(s)",
		r.Records, r.Segments, r.CorruptFrames, r.TornBytes, r.SkippedSegments)
}

// Clean reports whether recovery found no damage at all.
func (r Report) Clean() bool {
	return r.CorruptFrames == 0 && r.TornBytes == 0 && r.SkippedSegments == 0
}

// Log is an open observation log. Append buffers in process memory until
// Sync, which flushes and fsyncs — the caller (the server's batching sink)
// decides the durability cadence. All methods are safe for concurrent use.
type Log struct {
	mu   sync.Mutex
	dir  string
	opt  Options
	f    *os.File
	w    *bufio.Writer
	seq  uint64
	size int64 // bytes in the active segment including buffered writes

	records int64 // intact records: recovered + appended
	closed  bool
}

// Open recovers the log at dir (creating it when missing) and readies the
// highest-numbered segment for appending. Corruption is repaired and
// reported, never returned as an error; the error path is real I/O failure.
func Open(dir string, opt Options) (*Log, Report, error) {
	opt = opt.withDefaults()
	var rep Report
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, rep, fmt.Errorf("wal: %w", err)
	}
	seqs, err := listSegments(dir)
	if err != nil {
		return nil, rep, err
	}
	l := &Log{dir: dir, opt: opt}
	for _, seq := range seqs {
		path := segPath(dir, seq)
		s, err := scanSegment(path, opt.MaxRecordBytes)
		if err != nil {
			return nil, rep, err
		}
		rep.Segments++
		rep.Records += int64(len(s.frames))
		rep.CorruptFrames += s.corrupt
		rep.TornBytes += s.tornBytes
		if s.headerBad {
			rep.SkippedSegments++
		}
	}
	l.records = rep.Records

	// Ready the active segment: the highest-numbered one, truncated to its
	// last parseable boundary; a damaged header or a full segment forces a
	// fresh segment instead.
	if len(seqs) > 0 {
		seq := seqs[len(seqs)-1]
		path := segPath(dir, seq)
		s, err := scanSegment(path, opt.MaxRecordBytes)
		if err != nil {
			return nil, rep, err
		}
		if !s.headerBad {
			if s.tornBytes > 0 {
				if err := os.Truncate(path, s.goodEnd); err != nil {
					return nil, rep, fmt.Errorf("wal: truncating torn tail of %s: %w", path, err)
				}
				rep.Truncated = true
			}
			if s.goodEnd < opt.SegmentBytes {
				f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
				if err != nil {
					return nil, rep, fmt.Errorf("wal: %w", err)
				}
				if _, err := f.Seek(s.goodEnd, 0); err != nil {
					f.Close()
					return nil, rep, fmt.Errorf("wal: %w", err)
				}
				l.f, l.w, l.seq, l.size = f, bufio.NewWriter(f), seq, s.goodEnd
			}
		}
		if l.f == nil {
			if err := l.startSegment(seq + 1); err != nil {
				return nil, rep, err
			}
		}
	} else if err := l.startSegment(1); err != nil {
		return nil, rep, err
	}
	return l, rep, nil
}

// Append encodes and buffers one record, rotating the active segment first
// when it is full. The record is durable only after the next Sync.
func (l *Log) Append(r Record) error {
	payload, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("wal: encoding record: %w", err)
	}
	if len(payload) > l.opt.MaxRecordBytes {
		return fmt.Errorf("wal: record encodes to %d bytes, cap is %d", len(payload), l.opt.MaxRecordBytes)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log is closed")
	}
	need := int64(frameHeaderBytes + len(payload))
	if l.size+need > l.opt.SegmentBytes && l.size > int64(len(magic)) {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	var hdr [frameHeaderBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	if _, err := l.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := l.w.Write(payload); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.size += need
	l.records++
	return nil
}

// Sync flushes buffered appends and fsyncs the active segment: everything
// appended before the call is durable when it returns.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log is closed")
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// Rotate seals the active segment and starts the next one, regardless of
// fill level.
func (l *Log) Rotate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log is closed")
	}
	return l.rotateLocked()
}

func (l *Log) rotateLocked() error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return l.startSegment(l.seq + 1)
}

// startSegment creates segment seq via tmp+rename: the header is written and
// synced before the file becomes visible under its segment name, so recovery
// never sees a headerless segment (crash leftovers keep the .tmp suffix and
// are ignored by the segment listing, then swept here).
func (l *Log) startSegment(seq uint64) error {
	final := segPath(l.dir, seq)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Write(magic[:]); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	syncDir(l.dir)
	w, err := os.OpenFile(final, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.f, l.w, l.seq, l.size = w, bufio.NewWriter(w), seq, int64(len(magic))
	// Sweep any tmp leftovers from a crash mid-creation.
	if ents, err := os.ReadDir(l.dir); err == nil {
		for _, e := range ents {
			name := e.Name()
			if name != filepath.Base(tmp) && strings.HasPrefix(name, segPrefix) && strings.HasSuffix(name, segSuffix+".tmp") {
				os.Remove(filepath.Join(l.dir, name))
			}
		}
	}
	return nil
}

// Count returns the number of intact records the log holds (recovered at
// Open plus appended since, including not-yet-synced ones).
func (l *Log) Count() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.records
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// Close flushes, fsyncs and closes the active segment.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.w.Flush(); err != nil {
		l.f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	return l.f.Close()
}

// ---------------------------------------------------------------------------
// Reading

// ReadAll scans the log at dir read-only with full recovery semantics —
// corrupt frames skipped, torn tails ignored — and returns every intact
// record in append order. A missing directory is an empty log. It is safe to
// call while another handle is appending: at worst the final unsynced frame
// parses as torn and is left for the next read.
func ReadAll(dir string) ([]Record, Report, error) {
	var recs []Record
	rep, err := scanDir(dir, func(payload []byte) {
		var r Record
		if err := json.Unmarshal(payload, &r); err == nil {
			recs = append(recs, r)
		}
	})
	return recs, rep, err
}

// CountRecords counts intact records without decoding payloads — the cheap
// poll the retrainer's record-count trigger uses.
func CountRecords(dir string) (int64, error) {
	rep, err := scanDir(dir, nil)
	return rep.Records, err
}

func scanDir(dir string, visit func(payload []byte)) (Report, error) {
	var rep Report
	seqs, err := listSegments(dir)
	if os.IsNotExist(err) {
		return rep, nil
	}
	if err != nil {
		return rep, err
	}
	for _, seq := range seqs {
		s, err := scanSegment(segPath(dir, seq), Options{}.withDefaults().MaxRecordBytes)
		if err != nil {
			return rep, err
		}
		rep.Segments++
		rep.Records += int64(len(s.frames))
		rep.CorruptFrames += s.corrupt
		rep.TornBytes += s.tornBytes
		if s.headerBad {
			rep.SkippedSegments++
		}
		if visit != nil {
			for _, f := range s.frames {
				visit(f)
			}
		}
	}
	return rep, nil
}

// segScan is one segment's recovery result.
type segScan struct {
	frames    [][]byte // intact payloads in order
	goodEnd   int64    // offset after the last parseable frame
	corrupt   int      // CRC-failed frames skipped in place
	tornBytes int64    // unparseable tail bytes
	headerBad bool     // magic damaged: segment abandoned whole
}

// scanSegment classifies every byte of one segment. A frame whose length
// field is plausible but whose CRC fails is skipped in place (payload
// bit-flip); an implausible length or a frame extending past EOF ends the
// parse as a torn tail. Both cases leave every intact prefix record
// recovered.
func scanSegment(path string, maxRecord int) (segScan, error) {
	var s segScan
	data, err := os.ReadFile(path)
	if err != nil {
		return s, fmt.Errorf("wal: %w", err)
	}
	if len(data) < len(magic) || [8]byte(data[:8]) != magic {
		s.headerBad = true
		s.tornBytes = int64(len(data))
		return s, nil
	}
	off := int64(len(magic))
	s.goodEnd = off
	for {
		rest := int64(len(data)) - off
		if rest == 0 {
			break
		}
		if rest < frameHeaderBytes {
			s.tornBytes += rest
			break
		}
		length := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		if length == 0 || length > int64(maxRecord) || off+frameHeaderBytes+length > int64(len(data)) {
			s.tornBytes += rest
			break
		}
		payload := data[off+frameHeaderBytes : off+frameHeaderBytes+length]
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(data[off+4:off+8]) {
			s.corrupt++
		} else {
			s.frames = append(s.frames, payload)
		}
		off += frameHeaderBytes + length
		s.goodEnd = off
	}
	return s, nil
}

// ---------------------------------------------------------------------------
// Segment naming

func segPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%08d%s", segPrefix, seq, segSuffix))
}

// listSegments returns the segment sequence numbers in dir, ascending.
func listSegments(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []uint64
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		var seq uint64
		if _, err := fmt.Sscanf(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), "%d", &seq); err != nil || seq == 0 {
			continue
		}
		out = append(out, seq)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// syncDir fsyncs a directory so a just-renamed segment survives power loss;
// best effort — some filesystems reject directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
