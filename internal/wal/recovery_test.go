package wal

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"testing"
)

// The recovery contract under arbitrary damage: however a segment file is
// truncated or bit-flipped, Open (a) never returns an error, (b) recovers at
// least every record that precedes the first damaged byte ("every intact
// prefix record"), (c) reports the damage, and (d) leaves the log appendable
// — a subsequent append+reopen round-trips.
//
// The property test drives hundreds of seeded damage scenarios; FuzzRecovery
// lets the fuzzer hunt for adversarial (offset, flip) combinations beyond
// the seeded ones.

// buildDamagedLog writes n records across small segments, then applies one
// damage action chosen by (mode, offset, bite) to the byte stream of a
// chosen segment. It returns the number of records that are guaranteed
// intact: those whose frames lie entirely before the damaged byte in their
// segment, plus every record of undamaged segments before/after it.
func buildDamagedLog(t testing.TB, dir string, n int, mode, segPick int, offFrac float64, bite byte) (guaranteed int) {
	t.Helper()
	l, _, err := Open(dir, Options{SegmentBytes: 1536})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := l.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seqs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	seg := seqs[segPick%len(seqs)]
	path := segPath(dir, seg)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		return n
	}
	off := int(offFrac * float64(len(data)))
	off = min(max(off, 0), len(data)-1)

	switch mode % 2 {
	case 0: // truncate at off
		data = data[:off]
	default: // flip bits at off
		if bite == 0 {
			bite = 0x01
		}
		data[off] ^= bite
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// Count the records guaranteed intact: frames of the damaged segment
	// wholly before off, plus all records in other segments.
	for _, s := range seqs {
		if s == seg {
			continue
		}
		sc, err := scanSegment(segPath(dir, s), Options{}.withDefaults().MaxRecordBytes)
		if err != nil {
			t.Fatal(err)
		}
		guaranteed += len(sc.frames)
	}
	// Frames of the damaged segment that end before off are untouched by the
	// damage; scanning the damaged file still parses them (the walk only
	// depends on bytes before off until it reaches the damage).
	sc, err := scanSegment(path, Options{}.withDefaults().MaxRecordBytes)
	if err != nil {
		t.Fatal(err)
	}
	pos := int64(len(magic))
	for _, f := range sc.frames {
		end := pos + frameHeaderBytes + int64(len(f))
		if end <= int64(off) {
			guaranteed++
		}
		pos = end
	}
	return guaranteed
}

// checkRecovery asserts the recovery contract. silentOK relaxes the
// damage-must-be-reported check: a truncation landing exactly on a frame
// boundary is indistinguishable from a shorter log, so silence is correct
// there.
func checkRecovery(t testing.TB, dir string, guaranteed, total int, silentOK bool) {
	t.Helper()
	l, rep, err := Open(dir, Options{SegmentBytes: 1536})
	if err != nil {
		t.Fatalf("Open after damage failed: %v", err)
	}
	recs, rrep, err := ReadAll(dir)
	if err != nil {
		t.Fatalf("ReadAll after damage failed: %v", err)
	}
	if len(recs) < guaranteed {
		t.Fatalf("recovered %d records, %d guaranteed intact (report %+v, read %+v)",
			len(recs), guaranteed, rep, rrep)
	}
	if len(recs) > total {
		t.Fatalf("recovered %d records from a %d-record log: recovery invented data", len(recs), total)
	}
	// Damage is reported, not silently absorbed, whenever records went
	// missing.
	if !silentOK && len(recs) < total && rep.Clean() && rrep.Clean() {
		t.Fatalf("lost %d records but both reports are clean", total-len(recs))
	}
	// Every surviving record decodes to a structurally valid observation in
	// strictly increasing sequence order (order preserved, nothing invented).
	last := -1
	for _, r := range recs {
		if err := r.Validate(); err != nil {
			t.Fatalf("recovered record fails validation: %v", err)
		}
		s := seqOf2(t, r)
		if s <= last {
			t.Fatalf("recovered sequence out of order: %d after %d", s, last)
		}
		last = s
	}
	// The repaired log accepts appends and they survive a reopen.
	if err := l.Append(testRecord(total)); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs2, _, err := ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs2) != len(recs)+1 {
		t.Fatalf("append after recovery lost records: %d -> %d", len(recs), len(recs2))
	}
}

func seqOf2(t testing.TB, r Record) int {
	var n int
	if _, err := fmt.Sscanf(r.Machine, "seq-%d", &n); err != nil {
		t.Fatalf("record machine %q is not a sequence tag", r.Machine)
	}
	return n
}

func TestRecoveryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const total = 40
	for i := 0; i < 150; i++ {
		mode := rng.Intn(2)
		segPick := rng.Intn(8)
		offFrac := rng.Float64()
		bite := byte(rng.Intn(256))
		dir := t.TempDir()
		guaranteed := buildDamagedLog(t, dir, total, mode, segPick, offFrac, bite)
		checkRecovery(t, dir, guaranteed, total, mode%2 == 0)
	}
}

func FuzzRecovery(f *testing.F) {
	f.Add(0, 0, 0.5, byte(0xFF))
	f.Add(1, 1, 0.01, byte(0x80))
	f.Add(0, 3, 0.99, byte(0x01))
	f.Fuzz(func(t *testing.T, mode, segPick int, offFrac float64, bite byte) {
		if offFrac < 0 || offFrac > 1 || segPick < 0 {
			t.Skip()
		}
		dir := t.TempDir()
		guaranteed := buildDamagedLog(t, dir, 25, mode, segPick, offFrac, bite)
		checkRecovery(t, dir, guaranteed, 25, mode%2 == 0)
	})
}

// TestZeroFilledTail covers the filesystem failure mode where a crash leaves
// allocated-but-unwritten (zero) blocks at the segment tail: a zero length
// prefix must read as torn, never as an infinite loop or a record.
func TestZeroFilledTail(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := l.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := segPath(dir, 1)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(make([]byte, 4096))
	f.Close()

	l2, rep, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rep.Records != 8 || rep.TornBytes != 4096 || !rep.Truncated {
		t.Fatalf("zero-tail recovery report %+v, want 8 records and 4096 torn truncated bytes", rep)
	}
}

// TestLengthFieldCorruption flips bytes in a frame's length prefix: recovery
// may lose the desynchronized tail of that segment but must keep the prefix,
// stay error-free and keep other segments intact.
func TestLengthFieldCorruption(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	const n = 12
	for i := 0; i < n; i++ {
		if err := l.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := segPath(dir, 1)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Frame 4's length field gets a high-byte flip -> implausible length.
	off := int64(len(magic))
	for i := 0; i < 4; i++ {
		off += frameHeaderBytes + int64(binary.LittleEndian.Uint32(data[off:off+4]))
	}
	data[off+3] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	recs, rep, err := ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 4 {
		t.Fatalf("recovered %d records, the 4 before the damaged length are guaranteed", len(recs))
	}
	assertPrefix(t, recs[:4], 4)
	if rep.Clean() {
		t.Fatalf("length corruption went unreported: %+v", rep)
	}
}
