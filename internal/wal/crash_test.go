package wal

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"
	"time"
)

// Crash injection with a real process kill: the test re-executes its own
// binary as a writer child (TestCrashHelper), SIGKILLs it at a random point
// while it appends — mid-append and, with tiny segments, mid-rotation — then
// reopens the log and asserts the durability contract:
//
//   - every record the child synced before dying is recovered (the child
//     persists its synced high-water mark to a progress file, atomically,
//     only after Sync returns);
//   - the recovered log is a gapless, in-order prefix of what was written —
//     a kill may cost the unsynced tail, never punch holes;
//   - recovery reports no corruption beyond the torn tail, and the log is
//     immediately appendable for the next cycle.
//
// Each mode runs several kill-reopen-continue cycles over one directory, so
// recovery-after-recovery and append-after-recovery are exercised too.

const (
	crashHelperEnv = "WAL_CRASH_HELPER"
	crashDirEnv    = "WAL_CRASH_DIR"
	crashSegEnv    = "WAL_CRASH_SEGBYTES"
	progressFile   = "progress"
)

// TestCrashHelper is the writer child. It is a no-op unless spawned by
// runCrashCycle with the helper environment set.
func TestCrashHelper(t *testing.T) {
	if os.Getenv(crashHelperEnv) != "1" {
		t.Skip("crash helper: only runs as a spawned child")
	}
	dir := os.Getenv(crashDirEnv)
	segBytes, _ := strconv.Atoi(os.Getenv(crashSegEnv))
	l, _, err := Open(dir, Options{SegmentBytes: int64(segBytes)})
	if err != nil {
		fmt.Fprintf(os.Stderr, "helper open: %v\n", err)
		os.Exit(2)
	}
	// Resume numbering after what recovery kept: the recovered log is a
	// gapless prefix, so this keeps sequence numbers gapless across cycles.
	start := int(l.Count())
	for i := start; ; i++ {
		if err := l.Append(testRecord(i)); err != nil {
			fmt.Fprintf(os.Stderr, "helper append: %v\n", err)
			os.Exit(2)
		}
		if (i-start)%5 == 4 {
			if err := l.Sync(); err != nil {
				fmt.Fprintf(os.Stderr, "helper sync: %v\n", err)
				os.Exit(2)
			}
			writeProgress(dir, i+1)
		}
	}
}

// writeProgress durably records the synced high-water mark via
// write+sync+rename, so the parent can never read a count that was not
// actually synced.
func writeProgress(dir string, n int) {
	tmp := filepath.Join(dir, progressFile+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return
	}
	fmt.Fprintf(f, "%d", n)
	f.Sync()
	f.Close()
	os.Rename(tmp, filepath.Join(dir, progressFile))
}

func readProgress(dir string) int {
	b, err := os.ReadFile(filepath.Join(dir, progressFile))
	if err != nil {
		return 0
	}
	n, _ := strconv.Atoi(string(b))
	return n
}

// runCrashCycle spawns the writer child, lets it run for killAfter, SIGKILLs
// it, and returns the synced high-water mark it had durably reported.
func runCrashCycle(t *testing.T, dir string, segBytes int, killAfter time.Duration) int {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestCrashHelper$")
	cmd.Env = append(os.Environ(),
		crashHelperEnv+"=1",
		crashDirEnv+"="+dir,
		crashSegEnv+"="+strconv.Itoa(segBytes),
	)
	if err := cmd.Start(); err != nil {
		t.Fatalf("spawning crash helper: %v", err)
	}
	time.Sleep(killAfter)
	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("killing crash helper: %v", err)
	}
	cmd.Wait() // reap; a killed child reports an error by design
	return readProgress(dir)
}

func runCrashSuite(t *testing.T, segBytes int) {
	dir := t.TempDir()
	delays := []time.Duration{
		15 * time.Millisecond, 40 * time.Millisecond, 25 * time.Millisecond,
	}
	for cycle, delay := range delays {
		synced := runCrashCycle(t, dir, segBytes, delay)

		l, rep, err := Open(dir, Options{SegmentBytes: int64(segBytes)})
		if err != nil {
			t.Fatalf("cycle %d: reopen after kill: %v", cycle, err)
		}
		recs, _, err := ReadAll(dir)
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		// No loss beyond the unsynced batch: everything synced survives.
		if len(recs) < synced {
			t.Fatalf("cycle %d: recovered %d records but %d were synced before the kill (report %+v)",
				cycle, len(recs), synced, rep)
		}
		// A kill tears the tail; it must never flip bits or eat segments.
		if rep.CorruptFrames != 0 || rep.SkippedSegments != 0 {
			t.Fatalf("cycle %d: kill produced corruption beyond a torn tail: %+v", cycle, rep)
		}
		// Gapless in-order prefix.
		assertPrefix(t, recs, synced)
		if int64(len(recs)) != l.Count() {
			t.Fatalf("cycle %d: Count %d != recovered %d", cycle, l.Count(), len(recs))
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		if synced == 0 && cycle == len(delays)-1 {
			t.Log("note: no cycle reached a sync before the kill; assertions were vacuous")
		}
	}
}

// TestCrashMidAppend kills the writer while it streams into one large
// segment: the torn frame at the tail is the only permissible damage.
func TestCrashMidAppend(t *testing.T) {
	if testing.Short() {
		t.Skip("process-kill crash suite skipped in -short")
	}
	runCrashSuite(t, 64<<20)
}

// TestCrashMidRotation kills the writer under constant segment rotation
// (tiny segments), so kills land inside startSegment's tmp+rename dance as
// well as mid-frame.
func TestCrashMidRotation(t *testing.T) {
	if testing.Short() {
		t.Skip("process-kill crash suite skipped in -short")
	}
	runCrashSuite(t, 2048)
}
