package wal

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/stencil"
	"repro/internal/tunespace"
)

// testRecord builds a valid record whose Machine field carries a sequence
// number, so recovered logs can be checked for order and gaplessness.
func testRecord(i int) Record {
	k := stencil.Laplacian()
	q := stencil.Instance{Kernel: k, Size: stencil.Size3D(64, 64, 64)}
	t := tunespace.Vector{Bx: 32, By: 8, Bz: 4, U: 2, C: 1, K: 1}
	r := NewRecord(q, t, 0.001+float64(i)*1e-6)
	r.Machine = fmt.Sprintf("seq-%06d", i)
	r.Source = "measure"
	return r
}

func seqOf(t *testing.T, r Record) int {
	t.Helper()
	var n int
	if _, err := fmt.Sscanf(r.Machine, "seq-%d", &n); err != nil {
		t.Fatalf("record machine %q is not a sequence tag", r.Machine)
	}
	return n
}

// assertPrefix checks recs are exactly records 0..len-1 in append order and
// that at least want of them survived.
func assertPrefix(t *testing.T, recs []Record, want int) {
	t.Helper()
	if len(recs) < want {
		t.Fatalf("recovered %d records, want at least %d", len(recs), want)
	}
	for i, r := range recs {
		if got := seqOf(t, r); got != i {
			t.Fatalf("record %d has sequence %d: recovered log is not a gapless prefix", i, got)
		}
	}
}

func TestAppendReopenRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l, rep, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || rep.Records != 0 {
		t.Fatalf("fresh log report %+v, want clean and empty", rep)
	}
	const n = 50
	for i := 0; i < n; i++ {
		if err := l.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := l.Count(); got != n {
		t.Fatalf("Count = %d, want %d", got, n)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	recs, rep, err := ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("clean log read back dirty: %+v", rep)
	}
	assertPrefix(t, recs, n)
	if len(recs) != n {
		t.Fatalf("read %d records, want %d", len(recs), n)
	}
	// The payload round-trips structurally: rebuild the instance.
	q, err := recs[7].Instance()
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if q.Kernel.Dims() != 3 || q.Size.X != 64 {
		t.Fatalf("rebuilt instance %v lost structure", q)
	}
	if err := recs[7].Validate(); err != nil {
		t.Fatal(err)
	}

	// Reopen for append: recovery counts the existing records and new
	// appends extend the same log.
	l2, rep2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Records != n || !rep2.Clean() {
		t.Fatalf("reopen report %+v, want %d clean records", rep2, n)
	}
	for i := n; i < n+10; i++ {
		if err := l2.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _, err = ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	assertPrefix(t, recs, n+10)
}

func TestRotationSealsSegments(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force constant rotation.
	l, _, err := Open(dir, Options{SegmentBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		if err := l.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seqs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) < 3 {
		t.Fatalf("expected several segments at 2KiB rotation, got %d", len(seqs))
	}
	// No tmp leftovers after clean operation.
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if filepath.Ext(e.Name()) == ".tmp" {
			t.Fatalf("clean rotation left tmp file %s", e.Name())
		}
	}
	recs, rep, err := ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("rotated log read back dirty: %+v", rep)
	}
	assertPrefix(t, recs, n)

	// Explicit Rotate starts a fresh segment and appends keep working.
	l2, _, err := Open(dir, Options{SegmentBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := l2.Append(testRecord(n)); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _, err = ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	assertPrefix(t, recs, n+1)
}

func TestTornTailIsTruncatedAndAppendable(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		if err := l.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: append a partial frame (header promising more payload
	// than exists), as a crash mid-append would leave.
	path := segPath(dir, 1)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [frameHeaderBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:4], 500)
	f.Write(hdr[:])
	f.Write([]byte("only a fragment of the promised payload"))
	f.Close()
	before, _ := os.Stat(path)

	l2, rep, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records != n {
		t.Fatalf("recovered %d records, want %d", rep.Records, n)
	}
	if !rep.Truncated || rep.TornBytes == 0 {
		t.Fatalf("report %+v: torn tail was not truncated", rep)
	}
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Fatalf("segment not shrunk: %d -> %d bytes", before.Size(), after.Size())
	}
	// Appends resume at the clean boundary.
	for i := n; i < n+5; i++ {
		if err := l2.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	recs, rep2, err := ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Clean() {
		t.Fatalf("repaired log reads dirty: %+v", rep2)
	}
	assertPrefix(t, recs, n+5)
}

func TestCorruptFrameIsSkippedInPlace(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	for i := 0; i < n; i++ {
		if err := l.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside the payload of a middle frame: the length stays
	// plausible, so recovery skips exactly that frame and keeps the rest.
	path := segPath(dir, 1)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Locate frame 5's payload by walking the framing.
	off := int64(len(magic))
	for i := 0; i < 5; i++ {
		off += frameHeaderBytes + int64(binary.LittleEndian.Uint32(data[off:off+4]))
	}
	data[off+frameHeaderBytes+10] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	recs, rep, err := ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CorruptFrames != 1 {
		t.Fatalf("report %+v, want exactly 1 corrupt frame", rep)
	}
	if len(recs) != n-1 {
		t.Fatalf("recovered %d records, want %d", len(recs), n-1)
	}
	seen := map[int]bool{}
	for _, r := range recs {
		seen[seqOf(t, r)] = true
	}
	if seen[5] {
		t.Fatal("the corrupted record survived recovery")
	}
	for i := 0; i < n; i++ {
		if i != 5 && !seen[i] {
			t.Fatalf("intact record %d was lost", i)
		}
	}
}

func TestOpenIgnoresTmpLeftovers(t *testing.T) {
	dir := t.TempDir()
	// A crash mid-segment-creation leaves a .tmp file; Open must neither
	// parse it nor fail over it.
	if err := os.WriteFile(filepath.Join(dir, "seg-00000007.wal.tmp"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, rep, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records != 0 || !rep.Clean() {
		t.Fatalf("report %+v, want clean empty", rep)
	}
	if err := l.Append(testRecord(0)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "seg-00000007.wal.tmp")); !os.IsNotExist(err) {
		t.Error("tmp leftover was not swept on segment creation")
	}
}

func TestRecordValidation(t *testing.T) {
	good := testRecord(0)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Record)
	}{
		{"no offsets", func(r *Record) { r.Offsets = nil }},
		{"zero runtime", func(r *Record) { r.RuntimeSeconds = 0 }},
		{"negative runtime", func(r *Record) { r.RuntimeSeconds = -1 }},
		{"absurd runtime", func(r *Record) { r.RuntimeSeconds = 7200 }},
		{"bad dtype", func(r *Record) { r.DType = "quad" }},
		{"bad vector", func(r *Record) { r.Vector = [6]int{0, 0, 0, 0, 0, 0} }},
		{"bad buffers", func(r *Record) { r.Buffers = 0 }},
		{"size too small", func(r *Record) { r.Size = [3]int{2, 2, 2} }},
	}
	for _, tc := range cases {
		r := testRecord(0)
		tc.mutate(&r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a bad record", tc.name)
		}
	}
}

func TestCountRecords(t *testing.T) {
	dir := t.TempDir()
	if n, err := CountRecords(dir); err != nil || n != 0 {
		t.Fatalf("missing dir: count %d err %v, want 0 nil", n, err)
	}
	l, _, err := Open(dir, Options{SegmentBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := l.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	n, err := CountRecords(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 30 {
		t.Fatalf("CountRecords = %d, want 30", n)
	}
	l.Close()
}
