package wal

import (
	"fmt"
	"math"

	"repro/internal/shape"
	"repro/internal/stencil"
	"repro/internal/tunespace"
)

// Record is one observed stencil execution: enough structure to rebuild the
// training example (the kernel's access pattern, not just a name — names are
// informational and never enter feature encoding), the tuning vector that ran
// (including the temporal fusion depth K), and the measured wall-clock cost.
// Machine tags which host produced the timing, so a fleet of servers can
// contribute observations to one log and the trainer can keep per-machine
// rankings apart.
type Record struct {
	// Fingerprint is the structural kernel fingerprint the serving cache
	// keys on; observations of structurally equal kernels share it.
	Fingerprint string `json:"fp,omitempty"`
	// Kernel is the informational kernel name, if any.
	Kernel string `json:"kernel,omitempty"`
	// Offsets is the access pattern: one [x, y, z, multiplicity] row per
	// distinct offset. 2-D kernels carry z = 0 rows.
	Offsets [][4]int `json:"offsets"`
	// Buffers is the number of input buffers the kernel reads.
	Buffers int `json:"buffers"`
	// DType is the element type: "float" or "double".
	DType string `json:"dtype"`
	// Size is the grid extent [x, y, z]; z = 1 for 2-D instances.
	Size [3]int `json:"size"`
	// Vector is the tuning vector [bx, by, bz, u, c, k].
	Vector [6]int `json:"vector"`
	// RuntimeSeconds is the measured wall-clock runtime.
	RuntimeSeconds float64 `json:"runtime_seconds"`
	// Machine identifies the host that measured the runtime.
	Machine string `json:"machine,omitempty"`
	// Source says who measured: "measure" (the server's own executor) or
	// "observe" (a client-reported runtime via /v1/observe).
	Source string `json:"source,omitempty"`
	// UnixNano is the observation wall-clock timestamp, when known.
	UnixNano int64 `json:"unix_nano,omitempty"`
}

// NewRecord builds a Record from an instance, tuning vector and measured
// runtime, capturing the kernel structure so the observation is trainable
// without access to the original kernel registry.
func NewRecord(q stencil.Instance, t tunespace.Vector, runtimeSeconds float64) Record {
	r := Record{
		Kernel:         q.Kernel.Name,
		Buffers:        q.Kernel.Buffers,
		DType:          q.Kernel.Type.String(),
		Size:           [3]int{q.Size.X, q.Size.Y, q.Size.Z},
		Vector:         [6]int{t.Bx, t.By, t.Bz, t.U, t.C, t.EffFuse()},
		RuntimeSeconds: runtimeSeconds,
	}
	for _, p := range q.Kernel.Shape.Points() {
		r.Offsets = append(r.Offsets, [4]int{p.X, p.Y, p.Z, q.Kernel.Shape.Multiplicity(p)})
	}
	return r
}

// Validate checks the record is structurally sound and its measurement is a
// usable training signal (finite, positive runtime).
func (r *Record) Validate() error {
	if len(r.Offsets) == 0 {
		return fmt.Errorf("wal: record has no offsets")
	}
	if r.Buffers < 1 || r.Buffers > 16 {
		return fmt.Errorf("wal: record buffers %d outside [1,16]", r.Buffers)
	}
	if _, err := r.dataType(); err != nil {
		return err
	}
	q, err := r.Instance()
	if err != nil {
		return err
	}
	if err := q.Validate(); err != nil {
		return fmt.Errorf("wal: record instance: %w", err)
	}
	if err := r.Tuning().Validate(q.Kernel.Dims()); err != nil {
		return fmt.Errorf("wal: record vector: %w", err)
	}
	if !(r.RuntimeSeconds > 0) || math.IsInf(r.RuntimeSeconds, 0) || r.RuntimeSeconds > 3600 {
		return fmt.Errorf("wal: record runtime %v not in (0s, 1h]", r.RuntimeSeconds)
	}
	if len(r.Machine) > 128 {
		return fmt.Errorf("wal: record machine id longer than 128 bytes")
	}
	return nil
}

func (r *Record) dataType() (stencil.DataType, error) {
	switch r.DType {
	case "float", "float32":
		return stencil.Float32, nil
	case "double", "float64":
		return stencil.Float64, nil
	}
	return 0, fmt.Errorf("wal: record dtype %q (want float or double)", r.DType)
}

// Instance reconstructs the stencil instance the record observed.
func (r *Record) Instance() (stencil.Instance, error) {
	dt, err := r.dataType()
	if err != nil {
		return stencil.Instance{}, err
	}
	sh := shape.New()
	for _, o := range r.Offsets {
		mult := o[3]
		if mult < 1 {
			mult = 1
		}
		sh.Add(shape.Point{X: o[0], Y: o[1], Z: o[2]}, mult)
	}
	name := r.Kernel
	if name == "" {
		name = "observed"
	}
	k := &stencil.Kernel{Name: name, Shape: sh, Buffers: r.Buffers, Type: dt}
	return stencil.Instance{
		Kernel: k,
		Size:   stencil.Size{X: r.Size[0], Y: r.Size[1], Z: r.Size[2]},
	}, nil
}

// Tuning returns the record's tuning vector.
func (r *Record) Tuning() tunespace.Vector {
	v := r.Vector
	return tunespace.Vector{Bx: v[0], By: v[1], Bz: v[2], U: v[3], C: v[4], K: v[5]}
}
