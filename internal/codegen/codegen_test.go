package codegen

import (
	"testing"
	"time"

	"repro/internal/grid"
	"repro/internal/stencil"
	"repro/internal/tunespace"
)

func TestCompileAndRun(t *testing.T) {
	c := NewCompiler()
	k := stencil.Laplacian()
	v, err := c.Compile(k, tunespace.Vector{Bx: 16, By: 8, Bz: 4, U: 2, C: 2})
	if err != nil {
		t.Fatal(err)
	}
	halo := k.Shape.MaxOffset()
	out := grid.New(32, 32, 32, halo, halo)
	in := grid.New(32, 32, 32, halo, halo)
	in.FillPattern()
	if err := v.Run(out, []*grid.Grid[float64]{in}); err != nil {
		t.Fatal(err)
	}
	if out.InteriorSum() == 0 {
		t.Error("variant produced all-zero output")
	}
}

func TestCompileRejectsInvalid(t *testing.T) {
	c := NewCompiler()
	if _, err := c.Compile(stencil.Laplacian(), tunespace.Vector{Bx: 0, By: 8, Bz: 4, U: 0, C: 1}); err == nil {
		t.Error("invalid tuning accepted")
	}
	bad := &stencil.Kernel{Name: "bad", Buffers: 0}
	if _, err := c.Compile(bad, tunespace.Vector{Bx: 8, By: 8, Bz: 8, U: 0, C: 1}); err == nil {
		t.Error("invalid kernel accepted")
	}
}

func TestCompileCostGrowsWithDensityAndUnroll(t *testing.T) {
	sparse := CompileCost(stencil.Gradient(), tunespace.Vector{Bx: 8, By: 8, Bz: 8, U: 0, C: 1})
	dense := CompileCost(stencil.Tricubic(), tunespace.Vector{Bx: 8, By: 8, Bz: 8, U: 0, C: 1})
	if dense <= sparse {
		t.Errorf("denser stencil should compile slower: %v vs %v", dense, sparse)
	}
	u0 := CompileCost(stencil.Laplacian(), tunespace.Vector{Bx: 8, By: 8, Bz: 8, U: 0, C: 1})
	u8 := CompileCost(stencil.Laplacian(), tunespace.Vector{Bx: 8, By: 8, Bz: 8, U: 8, C: 1})
	if u8 <= u0 {
		t.Errorf("unrolled variant should compile slower: %v vs %v", u8, u0)
	}
}

func TestAccounting(t *testing.T) {
	c := NewCompiler()
	tv := tunespace.Vector{Bx: 8, By: 8, Bz: 8, U: 2, C: 1}
	if _, err := c.Compile(stencil.Laplacian(), tv); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Compile(stencil.Gradient(), tv); err != nil {
		t.Fatal(err)
	}
	if c.Compiled() != 2 {
		t.Errorf("Compiled = %d, want 2", c.Compiled())
	}
	want := CompileCost(stencil.Laplacian(), tv) + CompileCost(stencil.Gradient(), tv)
	if c.AccountedCompileTime() != want {
		t.Errorf("accounted %v, want %v", c.AccountedCompileTime(), want)
	}
}

func TestCompileCostMagnitude(t *testing.T) {
	// A full training set (hundreds of dense variants) should account to
	// hours, matching the paper's 32h narrative; a single cheap variant
	// stays in seconds.
	cheap := CompileCost(stencil.Gradient(), tunespace.Vector{Bx: 8, By: 8, Bz: 8, U: 0, C: 1})
	if cheap > 10*time.Second {
		t.Errorf("single sparse variant costs %v, implausibly high", cheap)
	}
	if cheap < 500*time.Millisecond {
		t.Errorf("single variant costs %v, implausibly low", cheap)
	}
}

func TestCompileCostMonotoneInFusionAndUnroll(t *testing.T) {
	k := stencil.Laplacian()
	// Nondecreasing (strictly increasing) in K for fixed U, and in U for
	// fixed K; K=0 and K=1 both mean "unfused" and must cost the same.
	for _, u := range []int{0, 2, 8} {
		prev := time.Duration(0)
		for kf := 1; kf <= tunespace.MaxFuse; kf++ {
			c := CompileCost(k, tunespace.Vector{Bx: 8, By: 8, Bz: 8, U: u, C: 1, K: kf})
			if c <= prev {
				t.Errorf("u=%d: cost(K=%d)=%v not greater than cost(K=%d)=%v", u, kf, c, kf-1, prev)
			}
			prev = c
		}
	}
	for _, kf := range []int{1, 2, 4} {
		prev := time.Duration(0)
		for _, u := range []int{0, 1, 2, 4, 8} {
			c := CompileCost(k, tunespace.Vector{Bx: 8, By: 8, Bz: 8, U: u, C: 1, K: kf})
			if c <= prev {
				t.Errorf("k=%d: cost(U=%d)=%v not greater than previous %v", kf, u, c, prev)
			}
			prev = c
		}
	}
	k0 := CompileCost(k, tunespace.Vector{Bx: 8, By: 8, Bz: 8, U: 2, C: 1, K: 0})
	k1 := CompileCost(k, tunespace.Vector{Bx: 8, By: 8, Bz: 8, U: 2, C: 1, K: 1})
	if k0 != k1 {
		t.Errorf("K=0 cost %v != K=1 cost %v; both mean unfused", k0, k1)
	}
}

func TestFloat32CompilerProducesSinglePrecisionVariant(t *testing.T) {
	c := NewCompilerOf[float32]()
	defer c.Close()
	k := stencil.Laplacian()
	v, err := c.Compile(k, tunespace.Vector{Bx: 16, By: 8, Bz: 4, U: 2, C: 1})
	if err != nil {
		t.Fatal(err)
	}
	halo := k.Shape.MaxOffset()
	out := grid.NewOf[float32](16, 16, 16, halo, halo)
	in := grid.NewOf[float32](16, 16, 16, halo, halo)
	in.FillPattern()
	if err := v.Run(out, []*grid.Grid[float32]{in}); err != nil {
		t.Fatal(err)
	}
	if out.InteriorSum() == 0 {
		t.Error("float32 variant produced all-zero output")
	}
}

func TestFusedVariantSelectsSpecializedBody(t *testing.T) {
	c := NewCompiler()
	defer c.Close()
	k := stencil.Laplacian()
	v, err := c.Compile(k, tunespace.Vector{Bx: 16, By: 8, Bz: 4, U: 2, C: 1, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if fp := v.Fingerprint(); fp != "star7" {
		t.Errorf("laplacian fingerprint = %q, want star7", fp)
	}
	if !v.Fused() {
		t.Error("K=3 laplacian variant should report Fused")
	}
	halo := k.Shape.MaxOffset()
	out := grid.New(16, 16, 16, halo, halo)
	in := grid.New(16, 16, 16, halo, halo)
	in.FillPattern()
	if err := v.RunFused(out, in); err != nil {
		t.Fatal(err)
	}
	if out.InteriorSum() == 0 {
		t.Error("fused variant produced all-zero output")
	}

	unfused, err := c.Compile(k, tunespace.Vector{Bx: 16, By: 8, Bz: 4, U: 2, C: 1, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if unfused.Fused() {
		t.Error("K=1 variant should not report Fused")
	}
}
