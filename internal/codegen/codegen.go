// Package codegen is the PATUS substitute (DESIGN.md §1): it lowers a
// stencil kernel plus a tuning vector to a specialized executable variant.
// Lowering is real specialization, not interpretation: the kernel's
// structural fingerprint (star5, star7, row3, box9, box27, or generic)
// selects pre-specialized inner-loop bodies in internal/exec, the unroll
// factor selects their pre-unrolled block widths, and a fusion depth K > 1
// selects the temporal-blocking wavefront engine with its fused per-plane
// bodies. Variants are generic over the element type, so a float32 stencil
// compiles to a genuine single-precision variant.
//
// The package also accounts the double-compilation cost the paper reports
// (PATUS source-to-source translation followed by gcc), which dominates the
// 32-hour training-set preparation of Table II. Variant construction itself
// is immediate in Go — the compile-cost model exists purely so the Table II
// reproduction can report the same cost column the paper does.
package codegen

import (
	"fmt"
	"time"

	"repro/internal/exec"
	"repro/internal/grid"
	"repro/internal/stencil"
	"repro/internal/tunespace"
)

// Variant is a compiled stencil code variant: a kernel bound to a tuning
// vector, runnable on concrete grids of element type T.
type Variant[T grid.Float] struct {
	Kernel *exec.LinearKernel
	Tuning tunespace.Vector
	runner *exec.Runner[T]
}

// Run executes one step of the variant over the given output and input
// grids.
func (v *Variant[T]) Run(out *grid.Grid[T], ins []*grid.Grid[T]) error {
	return v.runner.Run(v.Kernel, out, ins, v.Tuning)
}

// Fingerprint names the structural specialization class the backend selects
// inner-loop bodies by.
func (v *Variant[T]) Fingerprint() string { return exec.Fingerprint(v.Kernel) }

// Fused reports whether the variant executes through the temporal-blocking
// engine: a fusion depth above 1 on a fusable (single-buffer) kernel.
func (v *Variant[T]) Fused() bool {
	return v.Tuning.EffFuse() > 1 && exec.CanFuse(v.Kernel)
}

// RunFused advances in by the tuning vector's fusion depth in one fused
// sweep, writing the result to out. The input's halos must already be
// periodic-refreshed; see exec.FusedProgram. Unfusable kernels or geometries
// return the fused engine's compile error — callers fall back to Run.
func (v *Variant[T]) RunFused(out, in *grid.Grid[T]) error {
	fp, err := v.runner.CompileFused(v.Kernel, out, in, v.Tuning)
	if err != nil {
		return err
	}
	return fp.Run(out, in)
}

// Compiler builds variants of one element type and accounts compile cost.
type Compiler[T grid.Float] struct {
	runner *exec.Runner[T]
	// accounted accumulates the simulated double-compilation cost.
	accounted time.Duration
	compiled  int
}

// NewCompilerOf returns a compiler emitting variants of element type T.
func NewCompilerOf[T grid.Float]() *Compiler[T] {
	return &Compiler[T]{runner: exec.NewRunnerOf[T]()}
}

// NewCompiler returns a double-precision compiler (the float64 shim of
// NewCompilerOf).
func NewCompiler() *Compiler[float64] { return NewCompilerOf[float64]() }

// Compile builds the executable variant for (k, t), charging the simulated
// compile-cost account.
func (c *Compiler[T]) Compile(k *stencil.Kernel, t tunespace.Vector) (*Variant[T], error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	if err := t.Validate(k.Dims()); err != nil {
		return nil, fmt.Errorf("codegen: %s: %w", k.Name, err)
	}
	c.accounted += CompileCost(k, t)
	c.compiled++
	return &Variant[T]{Kernel: exec.Executable(k), Tuning: t, runner: c.runner}, nil
}

// Compiled returns how many variants were built.
func (c *Compiler[T]) Compiled() int { return c.compiled }

// Close stops the worker pool shared by this compiler's variants.
func (c *Compiler[T]) Close() { c.runner.Close() }

// AccountedCompileTime returns the simulated wall-clock cost a real
// PATUS+gcc toolchain would have spent on the variants compiled so far.
func (c *Compiler[T]) AccountedCompileTime() time.Duration { return c.accounted }

// CompileCost models the PATUS + gcc double compilation time for one
// variant. The paper reports ~32 hours for the full training set (Table II);
// the dominant term is gcc digesting the fully unrolled vectorized inner
// body, which grows with the stencil density, the unroll factor, and the
// fusion depth — each fused time level replicates the inner body once more.
func CompileCost(k *stencil.Kernel, t tunespace.Vector) time.Duration {
	// Baseline toolchain invocation: PATUS translation + gcc bookkeeping.
	base := 1500 * time.Millisecond
	// Emitted inner-loop statements: one FMA per access per unroll replica,
	// per fused time level.
	statements := float64(k.Shape.TotalAccesses()) * float64(t.U+1) * float64(t.EffFuse())
	body := time.Duration(statements*25) * time.Millisecond
	return base + body
}
