// Package codegen is the PATUS substitute (DESIGN.md §1): it turns a stencil
// kernel plus a tuning vector into an executable code variant, and accounts
// for the double-compilation cost the paper reports (PATUS source-to-source
// translation followed by gcc), which dominates the 32-hour training-set
// preparation of Table II.
//
// Variant construction itself is immediate in Go — the compile-cost model
// exists purely so the Table II reproduction can report the same cost column
// the paper does.
package codegen

import (
	"fmt"
	"time"

	"repro/internal/exec"
	"repro/internal/grid"
	"repro/internal/stencil"
	"repro/internal/tunespace"
)

// Variant is a compiled stencil code variant: a kernel bound to a tuning
// vector, runnable on concrete grids. Variants execute in double precision
// (the substrate the compile-cost model was calibrated on); precision-true
// float32 execution goes through exec.Runner[float32] or exec.Measurer.
type Variant struct {
	Kernel *exec.LinearKernel
	Tuning tunespace.Vector
	runner *exec.Runner[float64]
}

// Run executes the variant over the given output and input grids.
func (v *Variant) Run(out *grid.Grid[float64], ins []*grid.Grid[float64]) error {
	return v.runner.Run(v.Kernel, out, ins, v.Tuning)
}

// Compiler builds variants and accounts compile cost.
type Compiler struct {
	runner *exec.Runner[float64]
	// accounted accumulates the simulated double-compilation cost.
	accounted time.Duration
	compiled  int
}

// NewCompiler returns a compiler with a default runner.
func NewCompiler() *Compiler { return &Compiler{runner: exec.NewRunner()} }

// Compile builds the executable variant for (k, t), charging the simulated
// compile-cost account.
func (c *Compiler) Compile(k *stencil.Kernel, t tunespace.Vector) (*Variant, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	if err := t.Validate(k.Dims()); err != nil {
		return nil, fmt.Errorf("codegen: %s: %w", k.Name, err)
	}
	c.accounted += CompileCost(k, t)
	c.compiled++
	return &Variant{Kernel: exec.Executable(k), Tuning: t, runner: c.runner}, nil
}

// Compiled returns how many variants were built.
func (c *Compiler) Compiled() int { return c.compiled }

// Close stops the worker pool shared by this compiler's variants.
func (c *Compiler) Close() { c.runner.Close() }

// AccountedCompileTime returns the simulated wall-clock cost a real
// PATUS+gcc toolchain would have spent on the variants compiled so far.
func (c *Compiler) AccountedCompileTime() time.Duration { return c.accounted }

// CompileCost models the PATUS + gcc double compilation time for one
// variant. The paper reports ~32 hours for the full training set (Table II);
// the dominant term is gcc digesting the fully unrolled vectorized inner
// body, which grows with the stencil density and the unroll factor.
func CompileCost(k *stencil.Kernel, t tunespace.Vector) time.Duration {
	// Baseline toolchain invocation: PATUS translation + gcc bookkeeping.
	base := 1500 * time.Millisecond
	// Emitted inner-loop statements: one FMA per access per unroll replica.
	statements := float64(k.Shape.TotalAccesses()) * float64(t.U+1)
	body := time.Duration(statements*25) * time.Millisecond
	return base + body
}
