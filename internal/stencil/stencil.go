// Package stencil defines the algebraic stencil model of Section III of the
// paper: a kernel k = (shape, buffers, dtype), an instance q = (k, size), and
// an execution (k, size, tuning). It also provides the nine benchmark kernels
// of Table III and the paper's training/testing input sizes.
package stencil

import (
	"fmt"

	"repro/internal/shape"
)

// DataType is the element type of a stencil's buffers. The paper assumes
// homogeneous buffer types and encodes float32 as 0 and float64 as 1 in the
// feature vector. The type is honored by real execution, not just
// featurized: exec.Measurer allocates workspaces of this type and times the
// matching Runner instantiation, so Float32 stencils are executed, measured
// and benchmarked in genuine single precision.
type DataType int

// Supported buffer element types.
const (
	Float32 DataType = iota
	Float64
)

// Bytes returns the size in bytes of one element.
func (d DataType) Bytes() int {
	if d == Float64 {
		return 8
	}
	return 4
}

func (d DataType) String() string {
	if d == Float64 {
		return "double"
	}
	return "float"
}

// FeatureValue returns the paper's [0,1] encoding of the type (Sec. III-A.2).
func (d DataType) FeatureValue() float64 {
	if d == Float64 {
		return 1
	}
	return 0
}

// Kernel is the static description k = (s, b, d) of a stencil computation:
// its access pattern, the number of input buffers read, and their element
// type. Name is informational only and never enters the feature vector.
type Kernel struct {
	Name    string
	Shape   *shape.Shape
	Buffers int
	Type    DataType
	// FlopsPerPoint is the floating-point work per updated cell, used for
	// GFlop/s reporting (Fig. 5). When zero, it defaults to one multiply-add
	// per access: 2 * Shape.TotalAccesses().
	FlopsPerPoint int
}

// Dims returns 2 or 3 depending on the shape.
func (k *Kernel) Dims() int { return k.Shape.Dims() }

// Flops returns the per-point floating point operation count.
func (k *Kernel) Flops() int {
	if k.FlopsPerPoint > 0 {
		return k.FlopsPerPoint
	}
	return 2 * k.Shape.TotalAccesses()
}

// Validate checks structural invariants of the kernel.
func (k *Kernel) Validate() error {
	if k.Shape == nil || k.Shape.Size() == 0 {
		return fmt.Errorf("stencil: kernel %q has empty shape", k.Name)
	}
	if k.Buffers < 1 {
		return fmt.Errorf("stencil: kernel %q has %d buffers, need >= 1", k.Name, k.Buffers)
	}
	if k.Type != Float32 && k.Type != Float64 {
		return fmt.Errorf("stencil: kernel %q has invalid data type %d", k.Name, k.Type)
	}
	return nil
}

func (k *Kernel) String() string {
	return fmt.Sprintf("%s(%dD, %d pts, %d buf, %s)",
		k.Name, k.Dims(), k.Shape.Size(), k.Buffers, k.Type)
}

// Size is the extent of the field F the stencil updates. 2-D computations
// use Z = 1.
type Size struct {
	X, Y, Z int
}

// Size2D builds a planar size.
func Size2D(x, y int) Size { return Size{x, y, 1} }

// Size3D builds a volumetric size.
func Size3D(x, y, z int) Size { return Size{x, y, z} }

// Points returns the total number of grid points.
func (s Size) Points() int { return s.X * s.Y * s.Z }

// Is2D reports whether the size is planar.
func (s Size) Is2D() bool { return s.Z == 1 }

func (s Size) String() string {
	if s.Is2D() {
		return fmt.Sprintf("%dx%d", s.X, s.Y)
	}
	return fmt.Sprintf("%dx%dx%d", s.X, s.Y, s.Z)
}

// Valid reports whether all extents are positive.
func (s Size) Valid() bool { return s.X > 0 && s.Y > 0 && s.Z > 0 }

// Instance is q = (k, s): a kernel applied to a concrete input size. It is
// the unit over which the paper defines partial rankings — executions of the
// same instance with different tuning vectors are comparable, executions of
// different instances are not.
type Instance struct {
	Kernel *Kernel
	Size   Size
}

// Validate checks the instance is well formed and the size is compatible
// with the kernel's dimensionality and offset.
func (q Instance) Validate() error {
	if q.Kernel == nil {
		return fmt.Errorf("stencil: instance has nil kernel")
	}
	if err := q.Kernel.Validate(); err != nil {
		return err
	}
	if !q.Size.Valid() {
		return fmt.Errorf("stencil: invalid size %v", q.Size)
	}
	if q.Kernel.Dims() == 3 && q.Size.Is2D() {
		return fmt.Errorf("stencil: 3-D kernel %q with 2-D size %v", q.Kernel.Name, q.Size)
	}
	off := q.Kernel.Shape.MaxOffset()
	if q.Size.X <= 2*off || q.Size.Y <= 2*off || (!q.Size.Is2D() && q.Size.Z <= 2*off) {
		return fmt.Errorf("stencil: size %v too small for offset %d", q.Size, off)
	}
	return nil
}

// ID returns a stable human-readable identifier, used as the query id when
// grouping executions into partial rankings.
func (q Instance) ID() string {
	return q.Kernel.Name + "/" + q.Size.String()
}

func (q Instance) String() string { return q.ID() }
