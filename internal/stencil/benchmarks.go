package stencil

import (
	"fmt"

	"repro/internal/shape"
)

// This file defines the nine benchmark kernels and seventeen test benchmarks
// of Table III in the paper.

// Blur is the 2-D 5×5 box blur (1 float buffer).
func Blur() *Kernel {
	return &Kernel{
		Name:    "blur",
		Shape:   shape.Square(2),
		Buffers: 1,
		Type:    Float32,
		// 25 loads, 25 multiply-adds.
		FlopsPerPoint: 50,
	}
}

// Edge is the 2-D 3×3 edge-detection kernel (1 float buffer).
func Edge() *Kernel {
	return &Kernel{
		Name:          "edge",
		Shape:         shape.Square(1),
		Buffers:       1,
		Type:          Float32,
		FlopsPerPoint: 18,
	}
}

// GameOfLife is the 2-D 3×3 Conway's life smoothing kernel (1 float buffer).
func GameOfLife() *Kernel {
	return &Kernel{
		Name:          "game-of-life",
		Shape:         shape.Square(1),
		Buffers:       1,
		Type:          Float32,
		FlopsPerPoint: 12,
	}
}

// Wave is the 3-D 4th-order wave-equation kernel: a 13-point laplacian star
// plus one extra read of the previous time step ("13 laplacian + 1", 1 float
// buffer in Table III's "buffer read" accounting plus the t-1 field).
func Wave() *Kernel {
	s := shape.Laplacian3D(2)
	// The "+1" read: the previous-timestep value at the centre, modeled as a
	// second access to the origin per Sec. III-A's sum-of-accesses rule.
	s.Add(shape.Point{X: 0, Y: 0, Z: 0}, 1)
	return &Kernel{
		Name:          "wave-1",
		Shape:         s,
		Buffers:       1,
		Type:          Float32,
		FlopsPerPoint: 30,
	}
}

// Tricubic is the 3-D 4×4×4 tricubic-interpolation kernel (3 float buffers).
// Its 64-point cube is expressed as offsets in {-1..2}³, which we centre as
// a radius-2 cube restricted to the 4³ corner — the feature encoding only
// needs the enclosing offset, so we use the dense 4×4×4 sub-cube.
func Tricubic() *Kernel {
	s := shape.New()
	for z := -1; z <= 2; z++ {
		for y := -1; y <= 2; y++ {
			for x := -1; x <= 2; x++ {
				s.Add(shape.Point{X: x, Y: y, Z: z}, 1)
			}
		}
	}
	return &Kernel{
		Name:          "tricubic",
		Shape:         s,
		Buffers:       3,
		Type:          Float32,
		FlopsPerPoint: 192, // 64 points × 3 ops (weight eval + multiply-add)
	}
}

// Divergence is the 3-D 6-point star without the centre, reading 3 double
// buffers in different line orientations (x, y and z lines respectively) —
// the non-homogeneous access case discussed in Sec. VI-A.
func Divergence() *Kernel {
	x := shape.New(shape.Point{X: 1}, shape.Point{X: -1})
	y := shape.New(shape.Point{Y: 1}, shape.Point{Y: -1})
	z := shape.New(shape.Point{Z: 1}, shape.Point{Z: -1})
	return &Kernel{
		Name:          "divergence",
		Shape:         x.Union(y).Union(z),
		Buffers:       3,
		Type:          Float64,
		FlopsPerPoint: 9,
	}
}

// Gradient is the 3-D 6-point star without the centre (1 double buffer).
func Gradient() *Kernel {
	return &Kernel{
		Name:          "gradient",
		Shape:         shape.Star3DNoCentre(1),
		Buffers:       1,
		Type:          Float64,
		FlopsPerPoint: 9,
	}
}

// Laplacian is the classic 3-D 7-point laplacian (1 double buffer).
func Laplacian() *Kernel {
	return &Kernel{
		Name:          "laplacian",
		Shape:         shape.Laplacian3D(1),
		Buffers:       1,
		Type:          Float64,
		FlopsPerPoint: 14,
	}
}

// Laplacian6 is the 6th-order 3-D 19-point laplacian (1 double buffer).
func Laplacian6() *Kernel {
	return &Kernel{
		Name:          "laplacian6",
		Shape:         shape.Laplacian3D(3),
		Buffers:       1,
		Type:          Float64,
		FlopsPerPoint: 38,
	}
}

// BenchmarkKernels returns the nine kernels of Table III in table order.
func BenchmarkKernels() []*Kernel {
	return []*Kernel{
		Blur(), Edge(), GameOfLife(), Wave(), Tricubic(),
		Divergence(), Gradient(), Laplacian(), Laplacian6(),
	}
}

// KernelByName looks up one of the Table III kernels by its name.
func KernelByName(name string) (*Kernel, error) {
	for _, k := range BenchmarkKernels() {
		if k.Name == name {
			return k, nil
		}
	}
	return nil, fmt.Errorf("stencil: unknown benchmark kernel %q", name)
}

// Benchmarks returns the seventeen test benchmarks of Table III: each kernel
// paired with its evaluation sizes.
func Benchmarks() []Instance {
	return []Instance{
		{Blur(), Size2D(1024, 1024)},
		{Blur(), Size2D(1024, 768)},
		{Edge(), Size2D(512, 512)},
		{Edge(), Size2D(1024, 1024)},
		{GameOfLife(), Size2D(512, 512)},
		{GameOfLife(), Size2D(1024, 1024)},
		{Wave(), Size3D(128, 128, 128)},
		{Wave(), Size3D(256, 256, 256)},
		{Tricubic(), Size3D(128, 128, 128)},
		{Tricubic(), Size3D(256, 256, 256)},
		{Divergence(), Size3D(128, 128, 128)},
		{Gradient(), Size3D(128, 128, 128)},
		{Gradient(), Size3D(256, 256, 256)},
		{Laplacian(), Size3D(128, 128, 128)},
		{Laplacian(), Size3D(256, 256, 256)},
		{Laplacian6(), Size3D(128, 128, 128)},
		{Laplacian6(), Size3D(256, 256, 256)},
	}
}

// TrainingSizes2D returns the 2-D training input sizes of Sec. V-B.
func TrainingSizes2D() []Size {
	return []Size{Size2D(256, 256), Size2D(512, 512), Size2D(1024, 1024), Size2D(2048, 2048)}
}

// TrainingSizes3D returns the 3-D training input sizes of Sec. V-B.
func TrainingSizes3D() []Size {
	return []Size{Size3D(64, 64, 64), Size3D(128, 128, 128), Size3D(256, 256, 256)}
}
