package stencil

import (
	"strings"
	"testing"

	"repro/internal/shape"
)

func TestDataType(t *testing.T) {
	if Float32.Bytes() != 4 || Float64.Bytes() != 8 {
		t.Error("byte sizes wrong")
	}
	if Float32.String() != "float" || Float64.String() != "double" {
		t.Error("names wrong")
	}
	if Float32.FeatureValue() != 0 || Float64.FeatureValue() != 1 {
		t.Error("feature encoding wrong (paper Sec. III-A.2)")
	}
}

func TestKernelValidate(t *testing.T) {
	valid := &Kernel{Name: "k", Shape: shape.Laplacian3D(1), Buffers: 1, Type: Float64}
	if err := valid.Validate(); err != nil {
		t.Errorf("valid kernel rejected: %v", err)
	}
	cases := []*Kernel{
		{Name: "nilshape", Shape: nil, Buffers: 1},
		{Name: "empty", Shape: shape.New(), Buffers: 1},
		{Name: "nobuf", Shape: shape.Laplacian3D(1), Buffers: 0},
		{Name: "badtype", Shape: shape.Laplacian3D(1), Buffers: 1, Type: DataType(7)},
	}
	for _, k := range cases {
		if err := k.Validate(); err == nil {
			t.Errorf("kernel %q should be invalid", k.Name)
		}
	}
}

func TestKernelFlopsDefault(t *testing.T) {
	k := &Kernel{Name: "k", Shape: shape.Laplacian3D(1), Buffers: 1, Type: Float64}
	if got := k.Flops(); got != 14 { // 2 × 7 accesses
		t.Errorf("default Flops = %d, want 14", got)
	}
	k.FlopsPerPoint = 99
	if got := k.Flops(); got != 99 {
		t.Errorf("explicit Flops = %d, want 99", got)
	}
}

func TestSize(t *testing.T) {
	s2 := Size2D(1024, 768)
	if !s2.Is2D() || s2.Points() != 1024*768 || s2.String() != "1024x768" {
		t.Errorf("2-D size misbehaves: %v", s2)
	}
	s3 := Size3D(128, 128, 128)
	if s3.Is2D() || s3.Points() != 128*128*128 || s3.String() != "128x128x128" {
		t.Errorf("3-D size misbehaves: %v", s3)
	}
	if (Size{0, 1, 1}).Valid() || !s3.Valid() {
		t.Error("Valid() wrong")
	}
}

func TestInstanceValidate(t *testing.T) {
	ok := Instance{Laplacian(), Size3D(128, 128, 128)}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid instance rejected: %v", err)
	}
	if err := (Instance{nil, Size3D(8, 8, 8)}).Validate(); err == nil {
		t.Error("nil kernel accepted")
	}
	if err := (Instance{Laplacian(), Size2D(128, 128)}).Validate(); err == nil {
		t.Error("3-D kernel with 2-D size accepted")
	}
	if err := (Instance{Laplacian6(), Size3D(6, 6, 6)}).Validate(); err == nil {
		t.Error("size smaller than twice the offset accepted")
	}
	if err := (Instance{Blur(), Size2D(1024, 0)}).Validate(); err == nil {
		t.Error("zero extent accepted")
	}
}

func TestInstanceID(t *testing.T) {
	q := Instance{Blur(), Size2D(1024, 768)}
	if q.ID() != "blur/1024x768" {
		t.Errorf("ID = %q", q.ID())
	}
	if q.String() != q.ID() {
		t.Error("String should equal ID")
	}
}

func TestTable3KernelProperties(t *testing.T) {
	// Exact Table III shape sizes, buffer counts and types.
	cases := []struct {
		k       *Kernel
		points  int
		buffers int
		dtype   DataType
		dims    int
	}{
		{Blur(), 25, 1, Float32, 2},
		{Edge(), 9, 1, Float32, 2},
		{GameOfLife(), 9, 1, Float32, 2},
		{Wave(), 13, 1, Float32, 3}, // 13 distinct points ("13 laplacian + 1" re-reads centre)
		{Tricubic(), 64, 3, Float32, 3},
		{Divergence(), 6, 3, Float64, 3},
		{Gradient(), 6, 1, Float64, 3},
		{Laplacian(), 7, 1, Float64, 3},
		{Laplacian6(), 19, 1, Float64, 3},
	}
	for _, c := range cases {
		if got := c.k.Shape.Size(); got != c.points {
			t.Errorf("%s: %d points, want %d", c.k.Name, got, c.points)
		}
		if c.k.Buffers != c.buffers {
			t.Errorf("%s: %d buffers, want %d", c.k.Name, c.k.Buffers, c.buffers)
		}
		if c.k.Type != c.dtype {
			t.Errorf("%s: type %v, want %v", c.k.Name, c.k.Type, c.dtype)
		}
		if got := c.k.Dims(); got != c.dims {
			t.Errorf("%s: dims %d, want %d", c.k.Name, got, c.dims)
		}
		if err := c.k.Validate(); err != nil {
			t.Errorf("%s: invalid: %v", c.k.Name, err)
		}
	}
}

func TestWaveReadsCentreTwice(t *testing.T) {
	w := Wave()
	if m := w.Shape.Multiplicity(shape.Point{}); m != 2 {
		t.Errorf("wave centre multiplicity = %d, want 2 (the '+1' read)", m)
	}
	if w.Shape.TotalAccesses() != 14 {
		t.Errorf("wave total accesses = %d, want 14", w.Shape.TotalAccesses())
	}
}

func TestGradientDivergenceDoNotReadCentre(t *testing.T) {
	for _, k := range []*Kernel{Gradient(), Divergence()} {
		if k.Shape.Contains(shape.Point{}) {
			t.Errorf("%s should not read the centre (Table III)", k.Name)
		}
	}
}

func TestBenchmarksCount(t *testing.T) {
	b := Benchmarks()
	if len(b) != 17 {
		t.Fatalf("got %d benchmarks, want 17 (Table III)", len(b))
	}
	for _, q := range b {
		if err := q.Validate(); err != nil {
			t.Errorf("%s: %v", q.ID(), err)
		}
	}
	// 9 distinct kernels.
	names := map[string]bool{}
	for _, q := range b {
		names[q.Kernel.Name] = true
	}
	if len(names) != 9 {
		t.Errorf("got %d distinct kernels, want 9", len(names))
	}
}

func TestKernelByName(t *testing.T) {
	k, err := KernelByName("tricubic")
	if err != nil || k.Name != "tricubic" {
		t.Errorf("lookup failed: %v", err)
	}
	if _, err := KernelByName("nope"); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Errorf("expected unknown-kernel error, got %v", err)
	}
}

func TestBenchmarkKernelNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, k := range BenchmarkKernels() {
		if seen[k.Name] {
			t.Errorf("duplicate kernel name %q", k.Name)
		}
		seen[k.Name] = true
	}
}

func TestTrainingSizes(t *testing.T) {
	if got := len(TrainingSizes2D()); got != 4 {
		t.Errorf("2-D training sizes = %d, want 4 (Sec. V-B)", got)
	}
	if got := len(TrainingSizes3D()); got != 3 {
		t.Errorf("3-D training sizes = %d, want 3 (Sec. V-B)", got)
	}
	for _, s := range TrainingSizes2D() {
		if !s.Is2D() {
			t.Errorf("%v should be 2-D", s)
		}
	}
	for _, s := range TrainingSizes3D() {
		if s.Is2D() {
			t.Errorf("%v should be 3-D", s)
		}
	}
}

func TestKernelString(t *testing.T) {
	s := Laplacian().String()
	for _, want := range []string{"laplacian", "3D", "7 pts", "double"} {
		if !strings.Contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
}
