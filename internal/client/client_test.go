package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/middleware"
	"repro/internal/server"
)

func fastCfg(url string) Config {
	return Config{
		BaseURL:           url,
		MaxAttempts:       4,
		PerAttemptTimeout: 2 * time.Second,
		BaseBackoff:       time.Millisecond,
		MaxBackoff:        5 * time.Millisecond,
		Seed:              1,
	}
}

func mustClient(t *testing.T, cfg Config) *Client {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRetriesTransientThenSucceeds(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			http.Error(w, `{"error":"queue full"}`, http.StatusServiceUnavailable)
		case 2:
			panic(http.ErrAbortHandler) // dropped connection
		default:
			w.Write([]byte(`{"model":"m","instance":"i","best":{"bx":32,"by":4,"bz":4,"u":1,"c":2}}`))
		}
	}))
	defer ts.Close()

	c := mustClient(t, fastCfg(ts.URL))
	resp, err := c.Tune(context.Background(), TuneRequest{Kernel: NamedKernel("laplacian"), Size: "64x64x64"})
	if err != nil {
		t.Fatalf("Tune through transient faults: %v", err)
	}
	if resp.Best != (Vector{Bx: 32, By: 4, Bz: 4, U: 1, C: 2}) {
		t.Errorf("decoded best = %+v", resp.Best)
	}
	if got := c.Attempts(); got != 3 {
		t.Errorf("attempts = %d, want 3 (503, drop, success)", got)
	}
}

func TestNeverRetriesDefinitive4xx(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"kernel needs a name, dsl or offsets"}`, http.StatusBadRequest)
	}))
	defer ts.Close()

	c := mustClient(t, fastCfg(ts.URL))
	_, err := c.Tune(context.Background(), TuneRequest{Size: "64x64x64"})
	apiErr, ok := err.(*APIError)
	if !ok {
		t.Fatalf("error = %v (%T), want *APIError", err, err)
	}
	if apiErr.StatusCode != http.StatusBadRequest || apiErr.Retryable() {
		t.Errorf("APIError = %+v, want non-retryable 400", apiErr)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d calls for a 400, want exactly 1 (no retries)", got)
	}
}

func TestBoundedRetriesOnPersistentFault(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
	}))
	defer ts.Close()

	c := mustClient(t, fastCfg(ts.URL))
	_, err := c.Tune(context.Background(), TuneRequest{Kernel: NamedKernel("blur"), Size: "64x64"})
	if err == nil {
		t.Fatal("persistent 500 produced no error")
	}
	if got := calls.Load(); got != 4 {
		t.Errorf("server saw %d calls, want exactly MaxAttempts=4", got)
	}
	if got := c.Retries(); got != 3 {
		t.Errorf("retries = %d, want 3", got)
	}
}

func TestHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"rate limit exceeded"}`, http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{"model":"m","instance":"i","best":{"bx":1,"by":1,"u":0,"c":1}}`))
	}))
	defer ts.Close()

	c := mustClient(t, fastCfg(ts.URL)) // jitter cap 5ms << the 1s hint
	start := time.Now()
	if _, err := c.Tune(context.Background(), TuneRequest{Kernel: NamedKernel("blur"), Size: "64x64"}); err != nil {
		t.Fatalf("Tune after 429: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Errorf("retried after %v, want >= ~1s per Retry-After", elapsed)
	}
}

func TestPerAttemptTimeoutRecovers(t *testing.T) {
	var calls atomic.Int64
	hang := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			select { // hang well past the per-attempt timeout
			case <-r.Context().Done():
			case <-hang:
			}
			return
		}
		w.Write([]byte(`{"model":"m","instance":"i","best":{"bx":1,"by":1,"u":0,"c":1}}`))
	}))
	defer ts.Close()
	// LIFO: the stuck handler must unblock before ts.Close drains it.
	defer close(hang)

	cfg := fastCfg(ts.URL)
	cfg.PerAttemptTimeout = 50 * time.Millisecond
	c := mustClient(t, cfg)
	if _, err := c.Tune(context.Background(), TuneRequest{Kernel: NamedKernel("blur"), Size: "64x64"}); err != nil {
		t.Fatalf("Tune through a hung first attempt: %v", err)
	}
	if got := c.Attempts(); got != 2 {
		t.Errorf("attempts = %d, want 2 (timeout, success)", got)
	}
}

func TestCallerContextCancelStopsRetrying(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"down"}`, http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	cfg := fastCfg(ts.URL)
	cfg.MaxAttempts = 1000
	cfg.BaseBackoff = 20 * time.Millisecond
	cfg.MaxBackoff = 50 * time.Millisecond
	c := mustClient(t, cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Tune(ctx, TuneRequest{Kernel: NamedKernel("blur"), Size: "64x64"})
	if err == nil || ctx.Err() == nil {
		t.Fatalf("err = %v, want failure once the caller context expired", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("retry loop ran %v past a 100ms caller deadline", elapsed)
	}
	if got := c.Attempts(); got >= 1000 {
		t.Errorf("attempts = %d, retry loop ignored the caller context", got)
	}
}

// TestAgainstRealServer is the wire-compatibility test: the typed request
// and response structs must round-trip against the actual server handler,
// not a scripted double.
func TestAgainstRealServer(t *testing.T) {
	s, err := server.New(server.Config{ModelDir: "../store/testdata"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	c := mustClient(t, fastCfg(ts.URL))
	ctx := context.Background()

	tune, err := c.Tune(ctx, TuneRequest{Model: "tiny", Kernel: NamedKernel("laplacian"), Size: "100x100x100"})
	if err != nil {
		t.Fatalf("Tune: %v", err)
	}
	if tune.Best.Bx <= 0 || tune.RankedCandidates <= 0 || tune.Instance == "" {
		t.Errorf("tune response incompletely decoded: %+v", tune)
	}
	if tune.Cache != "miss" {
		t.Errorf("first tune X-Cache = %q, want miss", tune.Cache)
	}
	if again, _ := c.Tune(ctx, TuneRequest{Model: "tiny", Kernel: NamedKernel("laplacian"), Size: "100x100x100"}); again.Cache != "hit" {
		t.Errorf("repeat tune X-Cache = %q, want hit", again.Cache)
	}

	cands := []Vector{{Bx: 32, By: 32, Bz: 4, U: 2, C: 2}, {Bx: 8, By: 512, Bz: 2, U: 0, C: 1}}
	rank, err := c.Rank(ctx, RankRequest{Model: "tiny", Kernel: NamedKernel("laplacian"), Size: "128x128x128", Candidates: cands, ReturnScores: true})
	if err != nil {
		t.Fatalf("Rank: %v", err)
	}
	if len(rank.Order) != 2 || len(rank.Scores) != 2 {
		t.Errorf("rank response incompletely decoded: %+v", rank)
	}

	pred, err := c.Predict(ctx, PredictRequest{Model: "tiny", Kernel: NamedKernel("laplacian"), Size: "128x128x128", Vectors: cands, Mode: "score"})
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	if len(pred.Values) != 2 || pred.Unit != "score" {
		t.Errorf("predict response incompletely decoded: %+v", pred)
	}
	for i, s := range rank.Scores {
		if pred.Values[i] != s {
			t.Errorf("score[%d]: rank %v != predict %v", i, s, pred.Values[i])
		}
	}

	models, err := c.Models(ctx)
	if err != nil {
		t.Fatalf("Models: %v", err)
	}
	if models.Default != "tiny" || len(models.Models) != 1 || models.Models[0].ContentHash == "" {
		t.Errorf("models response incompletely decoded: %+v", models)
	}

	// A malformed request is rejected definitively — no retry storm.
	before := c.Attempts()
	if _, err := c.Tune(ctx, TuneRequest{Kernel: NamedKernel("no-such-kernel"), Size: "64x64"}); err == nil {
		t.Error("unknown kernel tuned successfully?")
	} else if apiErr, ok := err.(*APIError); !ok || apiErr.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown kernel error = %v, want APIError 400", err)
	}
	if got := c.Attempts() - before; got != 1 {
		t.Errorf("bad request cost %d attempts, want 1", got)
	}
}

// TestRequestIDStableAcrossRetries pins the correlation contract: one
// X-Request-ID per logical call, identical on every retry attempt, distinct
// across logical calls, and surfaced on the response struct.
func TestRequestIDStableAcrossRetries(t *testing.T) {
	var mu sync.Mutex
	var seen []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		seen = append(seen, r.Header.Get("X-Request-ID"))
		n := len(seen)
		mu.Unlock()
		if n < 3 {
			http.Error(w, `{"error":"queue full"}`, http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"model":"m","instance":"i","best":{"bx":1,"by":1,"u":0,"c":1}}`))
	}))
	defer ts.Close()

	c := mustClient(t, fastCfg(ts.URL))
	resp, err := c.Tune(context.Background(), TuneRequest{Kernel: NamedKernel("blur"), Size: "64x64"})
	if err != nil {
		t.Fatalf("Tune through sheds: %v", err)
	}
	mu.Lock()
	attempts := append([]string(nil), seen...)
	mu.Unlock()
	if len(attempts) != 3 {
		t.Fatalf("server saw %d attempts, want 3", len(attempts))
	}
	if attempts[0] == "" || len(attempts[0]) != 16 {
		t.Errorf("attempt X-Request-ID = %q, want 16 hex digits", attempts[0])
	}
	if attempts[1] != attempts[0] || attempts[2] != attempts[0] {
		t.Errorf("retries changed the request ID: %v", attempts)
	}
	if resp.RequestID != attempts[0] {
		t.Errorf("response RequestID = %q, want the wire ID %q", resp.RequestID, attempts[0])
	}

	again, err := c.Tune(context.Background(), TuneRequest{Kernel: NamedKernel("blur"), Size: "64x64"})
	if err != nil {
		t.Fatalf("second Tune: %v", err)
	}
	if again.RequestID == resp.RequestID {
		t.Errorf("two logical calls shared request ID %q", again.RequestID)
	}
}

// TestServerEchoesRequestID runs the client against the real middleware
// chain and checks the generated ID comes back on the response header — the
// round trip the README documents.
func TestServerEchoesRequestID(t *testing.T) {
	s, err := server.New(server.Config{ModelDir: "../store/testdata"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var echoed atomic.Value
	inspect := func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			next.ServeHTTP(w, r)
			echoed.Store(w.Header().Get(middleware.RequestIDHeader))
		})
	}
	ts := httptest.NewServer(middleware.Chain(s.Handler(), inspect, middleware.RequestID()))
	defer ts.Close()

	c := mustClient(t, fastCfg(ts.URL))
	resp, err := c.Models(context.Background())
	if err != nil {
		t.Fatalf("Models: %v", err)
	}
	if got, _ := echoed.Load().(string); got != resp.RequestID || got == "" {
		t.Errorf("server echoed %q, client generated %q", got, resp.RequestID)
	}
}

func TestBackoffCappedWithFullJitter(t *testing.T) {
	c := mustClient(t, Config{BaseURL: "http://unused", BaseBackoff: 100 * time.Millisecond, MaxBackoff: time.Second, Seed: 42})
	for attempt := 1; attempt <= 20; attempt++ {
		for i := 0; i < 50; i++ {
			d := c.backoff(attempt, fmt.Errorf("transient"))
			ceil := c.cfg.BaseBackoff << (attempt - 1)
			if ceil > c.cfg.MaxBackoff || ceil <= 0 {
				ceil = c.cfg.MaxBackoff
			}
			if d < 0 || d > ceil {
				t.Fatalf("backoff(attempt=%d) = %v outside [0, %v]", attempt, d, ceil)
			}
		}
	}
	// Retry-After floors the jitter.
	rae := &retryAfterError{APIError: &APIError{StatusCode: 429}, after: 3 * time.Second}
	if d := c.backoff(1, rae); d < 3*time.Second {
		t.Errorf("backoff with Retry-After 3s = %v, want >= 3s", d)
	}
}

// TestTruncatedResponseIsDefinitive: a 200 body at the response-size cap is
// a truncation — the decoded JSON is garbage on this attempt and every
// retry, so the client must fail once with an error naming the limit
// instead of burning MaxAttempts on full backoff.
func TestTruncatedResponseIsDefinitive(t *testing.T) {
	var calls atomic.Int64
	big := strings.Repeat("x", 4096) // longer than the 1 KiB cap below
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		fmt.Fprintf(w, `{"model":"m","instance":"%s"`, big) // valid prefix, huge body
	}))
	defer ts.Close()

	cfg := fastCfg(ts.URL)
	cfg.MaxResponseBytes = 1024
	c := mustClient(t, cfg)
	_, err := c.Tune(context.Background(), TuneRequest{Kernel: NamedKernel("blur"), Size: "64x64"})
	if err == nil {
		t.Fatal("over-limit response produced no error")
	}
	if !strings.Contains(err.Error(), "1024-byte") {
		t.Errorf("error %q does not name the size limit", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d calls for a deterministic truncation, want exactly 1 (no retries)", got)
	}
}

// TestAtLimitResponseStillDecodes: a body exactly at the cap is not treated
// as truncated — the limit check reads one byte past the cap to tell the
// two apart.
func TestAtLimitResponseStillDecodes(t *testing.T) {
	payload := []byte(`{"model":"m","instance":"i","best":{"bx":8,"by":8,"u":0,"c":1}}`)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(payload)
	}))
	defer ts.Close()

	cfg := fastCfg(ts.URL)
	cfg.MaxResponseBytes = int64(len(payload)) // exactly at the limit
	c := mustClient(t, cfg)
	resp, err := c.Tune(context.Background(), TuneRequest{Kernel: NamedKernel("blur"), Size: "64x64"})
	if err != nil {
		t.Fatalf("at-limit response: %v", err)
	}
	if resp.Best != (Vector{Bx: 8, By: 8, U: 0, C: 1}) {
		t.Errorf("decoded best = %+v", resp.Best)
	}
}

// TestHonorsRetryAfterHTTPDate: RFC 9110 allows Retry-After as an HTTP-date
// as well as delay-seconds; the date form must floor the backoff too (it
// used to fall back silently to the millisecond jitter schedule).
func TestHonorsRetryAfterHTTPDate(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", time.Now().Add(1200*time.Millisecond).UTC().Format(http.TimeFormat))
			http.Error(w, `{"error":"maintenance"}`, http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"model":"m","instance":"i","best":{"bx":1,"by":1,"u":0,"c":1}}`))
	}))
	defer ts.Close()

	c := mustClient(t, fastCfg(ts.URL)) // jitter cap 5ms << the ~1.2s hint
	start := time.Now()
	if _, err := c.Tune(context.Background(), TuneRequest{Kernel: NamedKernel("blur"), Size: "64x64"}); err != nil {
		t.Fatalf("Tune after dated 503: %v", err)
	}
	// HTTP-dates have whole-second resolution, so the observed floor can be
	// up to a second under the nominal 1.2s; it must still clearly beat the
	// 5ms jitter cap.
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond {
		t.Errorf("retried after %v, want a wait honoring the HTTP-date Retry-After", elapsed)
	}
}

// TestRetryAfterDateInPastFloorsToZero: a date at or before now yields no
// floor at all — the jittered schedule applies unchanged, and the wait
// never goes negative.
func TestRetryAfterDateInPastFloorsToZero(t *testing.T) {
	c := mustClient(t, fastCfg("http://unused"))
	mkResp := func(ra string) *http.Response {
		h := http.Header{}
		h.Set("Retry-After", ra)
		return &http.Response{Header: h}
	}
	apiErr := &APIError{StatusCode: http.StatusServiceUnavailable}

	past := c.rememberRetryAfter(apiErr, mkResp(time.Now().Add(-time.Hour).UTC().Format(http.TimeFormat)))
	var rae *retryAfterError
	if errors.As(past, &rae) {
		t.Errorf("past HTTP-date produced a floor of %v, want none", rae.after)
	}
	for i := 0; i < 100; i++ {
		if d := c.backoff(1, past); d < 0 || d > c.cfg.MaxBackoff {
			t.Fatalf("backoff after past-dated Retry-After = %v, want within the plain jitter schedule", d)
		}
	}

	future := c.rememberRetryAfter(apiErr, mkResp(time.Now().Add(30*time.Second).UTC().Format(http.TimeFormat)))
	if !errors.As(future, &rae) || rae.after <= 0 || rae.after > 30*time.Second {
		t.Errorf("future HTTP-date floor = %v, want within (0s, 30s]", future)
	}

	if secs := c.rememberRetryAfter(apiErr, mkResp("7")); !errors.As(secs, &rae) || rae.after != 7*time.Second {
		t.Errorf("delay-seconds floor = %v, want 7s", secs)
	}
	if junk := c.rememberRetryAfter(apiErr, mkResp("soon-ish")); errors.As(junk, &rae) {
		t.Errorf("unparseable Retry-After produced a floor, want none")
	}
}
