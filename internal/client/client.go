// Package client is the typed Go client for the stencil-serve tuning API
// (/v1/tune, /v1/rank, /v1/predict, /v1/models) with the retry discipline a
// production caller needs: per-attempt timeouts, capped exponential backoff
// with full jitter, honoring the server's Retry-After hints, and retrying
// only failures that are safe and useful to retry — 429 rate sheds, 503
// queue sheds, other 5xx, and transport errors (connection reset, refused,
// EOF). Every tuning endpoint is idempotent (same request, same answer, no
// server-side state mutated), so retrying a request whose response was lost
// is always safe; a definitive 4xx is the caller's bug and is returned
// immediately, never retried.
//
// The zero backoff policy (100ms base doubling to a 5s cap, full jitter)
// keeps a retrying fleet from synchronizing into thundering herds: each
// client waits a uniformly random fraction of the current cap, which is the
// textbook full-jitter scheme, and a server-provided Retry-After raises the
// floor so shed traffic really does come back later, not sooner.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Config shapes a Client; the zero value plus BaseURL is production-ready.
type Config struct {
	// BaseURL locates the server, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// ClientID is sent as X-Client-ID so the server's per-client rate
	// limiter keys on a stable identity instead of an ephemeral address.
	ClientID string
	// HTTPClient overrides the transport (default http.DefaultClient; the
	// per-attempt timeout is applied via context either way).
	HTTPClient *http.Client
	// MaxAttempts bounds total tries per call, first attempt included
	// (default 5). The bound is what keeps retries from being unbounded
	// under a persistent fault.
	MaxAttempts int
	// PerAttemptTimeout bounds each individual attempt (default 30s) so a
	// hung connection costs one backoff step, not the whole call.
	PerAttemptTimeout time.Duration
	// BaseBackoff and MaxBackoff shape the exponential schedule (defaults
	// 100ms and 5s). Attempt n waits uniform(0, min(MaxBackoff,
	// BaseBackoff*2^n)), raised to any server Retry-After.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Seed, when non-zero, makes the jitter deterministic — the resilience
	// tests replay exact retry schedules.
	Seed int64
	// MaxResponseBytes caps how much of a response body the client reads
	// (default 64 MiB). A body at or over the cap is a definitive error —
	// truncated JSON would decode as garbage on every retry, so the client
	// fails fast instead of burning MaxAttempts on a deterministic outcome.
	MaxResponseBytes int64
}

// Client calls the tuning service. Safe for concurrent use.
type Client struct {
	cfg Config

	rngMu sync.Mutex
	rng   *rand.Rand

	attempts atomic.Int64
	retries  atomic.Int64
}

// New validates cfg, fills defaults and returns a ready client.
func New(cfg Config) (*Client, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("client: BaseURL is required")
	}
	cfg.BaseURL = strings.TrimRight(cfg.BaseURL, "/")
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = http.DefaultClient
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 5
	}
	if cfg.PerAttemptTimeout <= 0 {
		cfg.PerAttemptTimeout = 30 * time.Second
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 100 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	if cfg.MaxResponseBytes <= 0 {
		cfg.MaxResponseBytes = 64 << 20
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &Client{cfg: cfg, rng: rand.New(rand.NewSource(seed))}, nil
}

// Attempts reports total HTTP attempts issued; Retries reports how many of
// them were re-tries. The resilience suite asserts retries stay bounded.
func (c *Client) Attempts() int64 { return c.attempts.Load() }
func (c *Client) Retries() int64  { return c.retries.Load() }

// ---------------------------------------------------------------------------
// Wire types (mirrors of the server's JSON schema)

// Vector is a tuning vector on the wire; Bz may stay 0 for 2-D stencils and
// K (temporal fusion depth) may stay 0 for unfused vectors.
type Vector struct {
	Bx int `json:"bx"`
	By int `json:"by"`
	Bz int `json:"bz,omitempty"`
	U  int `json:"u"`
	C  int `json:"c"`
	K  int `json:"k,omitempty"`
}

// Kernel selects the stencil: a Table III benchmark name, an inline DSL
// source, or an explicit offset list with buffer count and dtype.
type Kernel struct {
	Name    string  `json:"name,omitempty"`
	DSL     string  `json:"dsl,omitempty"`
	Offsets [][]int `json:"offsets,omitempty"`
	Buffers int     `json:"buffers,omitempty"`
	DType   string  `json:"dtype,omitempty"`
}

// NamedKernel is shorthand for a benchmark-name kernel spec.
func NamedKernel(name string) Kernel { return Kernel{Name: name} }

type TuneRequest struct {
	Model  string `json:"model,omitempty"`
	Kernel Kernel `json:"kernel"`
	Size   string `json:"size"`
	TopK   int    `json:"topk,omitempty"`
	Mode   string `json:"mode,omitempty"`
}

type HybridResult struct {
	TopK      int     `json:"topk"`
	Mode      string  `json:"mode"`
	Best      Vector  `json:"best"`
	BestValue float64 `json:"best_value_seconds"`
}

type TuneResponse struct {
	Model            string        `json:"model"`
	Instance         string        `json:"instance"`
	Best             Vector        `json:"best"`
	RankedCandidates int           `json:"ranked_candidates"`
	RankMicros       int64         `json:"rank_micros"`
	Hybrid           *HybridResult `json:"hybrid,omitempty"`
	// Cache reports the server's X-Cache verdict: hit, miss or coalesced.
	Cache string `json:"-"`
	// RequestID is the X-Request-ID correlation ID the client generated for
	// this logical call and sent on every retry attempt; grep server logs for
	// it to find the matching request lines.
	RequestID string `json:"-"`
}

type RankRequest struct {
	Model        string   `json:"model,omitempty"`
	Kernel       Kernel   `json:"kernel"`
	Size         string   `json:"size"`
	Candidates   []Vector `json:"candidates,omitempty"`
	ReturnScores bool     `json:"return_scores,omitempty"`
}

type RankResponse struct {
	Model      string    `json:"model"`
	Instance   string    `json:"instance"`
	Candidates int       `json:"candidates"`
	Order      []int     `json:"order"`
	Best       Vector    `json:"best"`
	Scores     []float64 `json:"scores,omitempty"`
	Cache      string    `json:"-"`
	RequestID  string    `json:"-"`
}

type PredictRequest struct {
	Model   string   `json:"model,omitempty"`
	Kernel  Kernel   `json:"kernel"`
	Size    string   `json:"size"`
	Vectors []Vector `json:"vectors"`
	Mode    string   `json:"mode,omitempty"`
}

type PredictResponse struct {
	Model     string    `json:"model"`
	Instance  string    `json:"instance"`
	Mode      string    `json:"mode"`
	Unit      string    `json:"unit"`
	Values    []float64 `json:"values"`
	Cache     string    `json:"-"`
	RequestID string    `json:"-"`
}

type ModelInfo struct {
	Name        string `json:"name"`
	ContentHash string `json:"content_hash"`
	FeatureDim  int    `json:"feature_dim"`
	Machine     string `json:"machine,omitempty"`
}

type ModelsResponse struct {
	Default   string      `json:"default"`
	Models    []ModelInfo `json:"models"`
	RequestID string      `json:"-"`
}

// APIError is a definitive (non-retried or retries-exhausted) server error.
type APIError struct {
	StatusCode int
	Message    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server returned %d: %s", e.StatusCode, e.Message)
}

// Retryable reports whether the status is worth retrying: rate sheds,
// queue sheds and transient server faults — never other 4xx, which mean
// the request itself is wrong and will fail identically forever.
func (e *APIError) Retryable() bool {
	return e.StatusCode == http.StatusTooManyRequests || e.StatusCode >= 500
}

// ---------------------------------------------------------------------------
// Calls

// Tune asks the server for the best tuning vector for a stencil instance.
func (c *Client) Tune(ctx context.Context, req TuneRequest) (*TuneResponse, error) {
	var out TuneResponse
	cache, id, err := c.call(ctx, "/v1/tune", req, &out)
	out.Cache, out.RequestID = cache, id
	return &out, err
}

// Rank orders a candidate set (or the predefined one) best-first.
func (c *Client) Rank(ctx context.Context, req RankRequest) (*RankResponse, error) {
	var out RankResponse
	cache, id, err := c.call(ctx, "/v1/rank", req, &out)
	out.Cache, out.RequestID = cache, id
	return &out, err
}

// Predict returns per-vector runtimes or scores.
func (c *Client) Predict(ctx context.Context, req PredictRequest) (*PredictResponse, error) {
	var out PredictResponse
	cache, id, err := c.call(ctx, "/v1/predict", req, &out)
	out.Cache, out.RequestID = cache, id
	return &out, err
}

// Models lists the models the server loaded.
func (c *Client) Models(ctx context.Context) (*ModelsResponse, error) {
	var out ModelsResponse
	_, id, err := c.call(ctx, "/v1/models", nil, &out)
	out.RequestID = id
	return &out, err
}

// call runs one API call through the retry loop. body == nil issues a GET.
// One X-Request-ID is generated per logical call and reused on every retry
// attempt, so all attempts of the same call correlate to the same server log
// lines; the ID is returned so callers can surface it next to errors.
func (c *Client) call(ctx context.Context, path string, body any, out any) (cache, requestID string, err error) {
	var payload []byte
	if body != nil {
		if payload, err = json.Marshal(body); err != nil {
			return "", "", fmt.Errorf("client: encoding request: %v", err)
		}
	}
	requestID = obs.NewRequestID()

	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
			if err := c.sleep(ctx, c.backoff(attempt, lastErr)); err != nil {
				return "", requestID, err
			}
		}
		cache, retry, err := c.attempt(ctx, path, requestID, payload, out)
		if err == nil {
			return cache, requestID, nil
		}
		if ctx.Err() != nil {
			return "", requestID, ctx.Err()
		}
		if !retry {
			return "", requestID, err
		}
		lastErr = err
	}
	return "", requestID, fmt.Errorf("client: giving up after %d attempts: %w", c.cfg.MaxAttempts, lastErr)
}

// attempt issues a single HTTP exchange under its own timeout and reports
// whether a failure is retryable.
func (c *Client) attempt(ctx context.Context, path, requestID string, payload []byte, out any) (cache string, retry bool, err error) {
	c.attempts.Add(1)
	actx, cancel := context.WithTimeout(ctx, c.cfg.PerAttemptTimeout)
	defer cancel()

	method := http.MethodGet
	var body io.Reader
	if payload != nil {
		method = http.MethodPost
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(actx, method, c.cfg.BaseURL+path, body)
	if err != nil {
		return "", false, fmt.Errorf("client: building request: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", requestID)
	if c.cfg.ClientID != "" {
		req.Header.Set("X-Client-ID", c.cfg.ClientID)
	}

	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		// Transport-level failure: connection refused/reset, injected
		// drop, per-attempt timeout. All retryable — the endpoints are
		// idempotent, so a request whose response was lost can be safely
		// re-issued.
		return "", true, fmt.Errorf("client: %v", err)
	}
	defer resp.Body.Close()
	// Read one byte past the cap: len(b) > max then distinguishes a truly
	// over-limit body from one that is exactly at it. An at-limit truncation
	// used to decode as garbage and get retried MaxAttempts times with full
	// backoff, even though the outcome is deterministic.
	b, err := io.ReadAll(io.LimitReader(resp.Body, c.cfg.MaxResponseBytes+1))
	if err != nil {
		return "", true, fmt.Errorf("client: reading response: %v", err)
	}
	if int64(len(b)) > c.cfg.MaxResponseBytes {
		return "", false, fmt.Errorf("client: response body exceeds the %d-byte client limit; refusing to retry a deterministic failure", c.cfg.MaxResponseBytes)
	}

	if resp.StatusCode != http.StatusOK {
		apiErr := &APIError{StatusCode: resp.StatusCode, Message: strings.TrimSpace(string(b))}
		var decoded struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(b, &decoded) == nil && decoded.Error != "" {
			apiErr.Message = decoded.Error
		}
		return "", apiErr.Retryable(), c.rememberRetryAfter(apiErr, resp)
	}
	if err := json.Unmarshal(b, out); err != nil {
		return "", true, fmt.Errorf("client: undecodable 200 response %q: %v", b, err)
	}
	return resp.Header.Get("X-Cache"), false, nil
}

// retryAfterError wraps an APIError with the server's Retry-After hint so
// the backoff schedule can honor it.
type retryAfterError struct {
	*APIError
	after time.Duration
}

func (e *retryAfterError) Unwrap() error { return e.APIError }

// rememberRetryAfter attaches the server's Retry-After hint to the error.
// RFC 9110 allows both delay-seconds and an HTTP-date; a date in the past
// (or a zero/negative delay) floors to zero, i.e. plain jittered backoff.
func (c *Client) rememberRetryAfter(apiErr *APIError, resp *http.Response) error {
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		return apiErr
	}
	if secs, err := strconv.Atoi(ra); err == nil {
		if secs > 0 {
			return &retryAfterError{APIError: apiErr, after: time.Duration(secs) * time.Second}
		}
		return apiErr
	}
	if when, err := http.ParseTime(ra); err == nil {
		if d := time.Until(when); d > 0 {
			return &retryAfterError{APIError: apiErr, after: d}
		}
	}
	return apiErr
}

// backoff computes the wait before retry number attempt (1-based): full
// jitter over the capped exponential schedule, floored at any Retry-After
// the server sent with the previous failure.
func (c *Client) backoff(attempt int, lastErr error) time.Duration {
	ceil := c.cfg.BaseBackoff << (attempt - 1)
	if ceil > c.cfg.MaxBackoff || ceil <= 0 {
		ceil = c.cfg.MaxBackoff
	}
	c.rngMu.Lock()
	wait := time.Duration(c.rng.Float64() * float64(ceil))
	c.rngMu.Unlock()
	var rae *retryAfterError
	if errors.As(lastErr, &rae) && rae.after > wait {
		wait = rae.after
	}
	return wait
}

// sleep waits d unless ctx ends first.
func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
