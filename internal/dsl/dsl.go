// Package dsl implements a small PATUS-style stencil description language,
// the front end through which external users feed their own stencils to the
// autotuner (the paper's workflow starts from DSL source; Sec. V-A).
//
// The format is line-oriented:
//
//	# 3-D seven-point laplacian
//	stencil laplacian {
//	    dims    3
//	    type    double
//	    buffers 1
//	    point   ( 0, 0, 0) -6.0
//	    point   ( 1, 0, 0)  1.0
//	    point   (-1, 0, 0)  1.0
//	    point   ( 0, 1, 0)  1.0  buffer 0
//	    ...
//	}
//
// A file may contain several stencil blocks. Parsed definitions convert both
// into the learning-side model (stencil.Kernel) and into an executable
// kernel (exec.LinearKernel), and Format round-trips a definition back to
// source.
package dsl

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/exec"
	"repro/internal/shape"
	"repro/internal/stencil"
)

// PointSpec is one weighted access in a definition.
type PointSpec struct {
	Offset shape.Point
	Weight float64
	Buffer int
}

// Definition is one parsed stencil block.
type Definition struct {
	Name    string
	Dims    int
	Type    stencil.DataType
	Buffers int
	Points  []PointSpec
}

// Validate checks structural consistency.
func (d *Definition) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("dsl: stencil without a name")
	}
	if d.Dims != 2 && d.Dims != 3 {
		return fmt.Errorf("dsl: stencil %q: dims %d (want 2 or 3)", d.Name, d.Dims)
	}
	if d.Buffers < 1 {
		return fmt.Errorf("dsl: stencil %q: %d buffers", d.Name, d.Buffers)
	}
	if len(d.Points) == 0 {
		return fmt.Errorf("dsl: stencil %q: no points", d.Name)
	}
	for _, p := range d.Points {
		if d.Dims == 2 && p.Offset.Z != 0 {
			return fmt.Errorf("dsl: stencil %q: 2-D stencil accesses z offset %d", d.Name, p.Offset.Z)
		}
		if p.Buffer < 0 || p.Buffer >= d.Buffers {
			return fmt.Errorf("dsl: stencil %q: point %v references buffer %d of %d",
				d.Name, p.Offset, p.Buffer, d.Buffers)
		}
	}
	return nil
}

// Kernel converts the definition into the learning-side model: the shape is
// the sum of per-buffer access patterns (Sec. III-A).
func (d *Definition) Kernel() *stencil.Kernel {
	s := shape.New()
	for _, p := range d.Points {
		s.Add(p.Offset, 1)
	}
	return &stencil.Kernel{
		Name:    d.Name,
		Shape:   s,
		Buffers: d.Buffers,
		Type:    d.Type,
	}
}

// Executable converts the definition into a runnable linear kernel.
func (d *Definition) Executable() *exec.LinearKernel {
	k := &exec.LinearKernel{Name: d.Name, Buffers: d.Buffers}
	for _, p := range d.Points {
		k.Terms = append(k.Terms, exec.Term{Buffer: p.Buffer, Offset: p.Offset, Weight: p.Weight})
	}
	return k
}

// Format renders the definition back to DSL source.
func (d *Definition) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "stencil %s {\n", d.Name)
	fmt.Fprintf(&b, "    dims    %d\n", d.Dims)
	fmt.Fprintf(&b, "    type    %s\n", d.Type)
	fmt.Fprintf(&b, "    buffers %d\n", d.Buffers)
	pts := append([]PointSpec(nil), d.Points...)
	sort.SliceStable(pts, func(i, j int) bool {
		a, c := pts[i].Offset, pts[j].Offset
		if a.Z != c.Z {
			return a.Z < c.Z
		}
		if a.Y != c.Y {
			return a.Y < c.Y
		}
		return a.X < c.X
	})
	for _, p := range pts {
		fmt.Fprintf(&b, "    point   (%d,%d,%d) %s", p.Offset.X, p.Offset.Y, p.Offset.Z,
			strconv.FormatFloat(p.Weight, 'g', -1, 64))
		if p.Buffer != 0 {
			fmt.Fprintf(&b, " buffer %d", p.Buffer)
		}
		b.WriteByte('\n')
	}
	b.WriteString("}\n")
	return b.String()
}

// ParseError reports a syntax error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string { return fmt.Sprintf("dsl: line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...interface{}) error {
	return &ParseError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// Parse reads every stencil definition in the source.
func Parse(r io.Reader) ([]*Definition, error) {
	sc := bufio.NewScanner(r)
	var defs []*Definition
	var cur *Definition
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := tokenize(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "stencil":
			if cur != nil {
				return nil, errf(lineNo, "nested stencil block")
			}
			if len(fields) != 3 || fields[2] != "{" {
				return nil, errf(lineNo, "want 'stencil <name> {', got %q", line)
			}
			cur = &Definition{Name: fields[1], Buffers: 1, Dims: 3}
		case "}":
			if cur == nil {
				return nil, errf(lineNo, "unmatched '}'")
			}
			if err := cur.Validate(); err != nil {
				return nil, errf(lineNo, "%v", err)
			}
			defs = append(defs, cur)
			cur = nil
		case "dims":
			if cur == nil {
				return nil, errf(lineNo, "'dims' outside stencil block")
			}
			v, err := strconv.Atoi(field(fields, 1))
			if err != nil {
				return nil, errf(lineNo, "bad dims %q", field(fields, 1))
			}
			cur.Dims = v
		case "type":
			if cur == nil {
				return nil, errf(lineNo, "'type' outside stencil block")
			}
			switch field(fields, 1) {
			case "float":
				cur.Type = stencil.Float32
			case "double":
				cur.Type = stencil.Float64
			default:
				return nil, errf(lineNo, "bad type %q (want float or double)", field(fields, 1))
			}
		case "buffers":
			if cur == nil {
				return nil, errf(lineNo, "'buffers' outside stencil block")
			}
			v, err := strconv.Atoi(field(fields, 1))
			if err != nil {
				return nil, errf(lineNo, "bad buffers %q", field(fields, 1))
			}
			cur.Buffers = v
		case "point":
			if cur == nil {
				return nil, errf(lineNo, "'point' outside stencil block")
			}
			p, err := parsePoint(fields[1:], lineNo)
			if err != nil {
				return nil, err
			}
			cur.Points = append(cur.Points, p)
		default:
			return nil, errf(lineNo, "unknown directive %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dsl: reading source: %w", err)
	}
	if cur != nil {
		return nil, errf(lineNo, "unterminated stencil block %q", cur.Name)
	}
	if len(defs) == 0 {
		return nil, fmt.Errorf("dsl: no stencil definitions found")
	}
	return defs, nil
}

// ParseString parses DSL source from a string.
func ParseString(src string) ([]*Definition, error) { return Parse(strings.NewReader(src)) }

// field returns fields[i] or "".
func field(fields []string, i int) string {
	if i < len(fields) {
		return fields[i]
	}
	return ""
}

// tokenize splits a line into tokens, keeping "(x,y,z)" coordinates as a
// single token even when written with inner spaces.
func tokenize(line string) []string {
	var tokens []string
	i := 0
	for i < len(line) {
		switch {
		case line[i] == ' ' || line[i] == '\t':
			i++
		case line[i] == '(':
			j := strings.IndexByte(line[i:], ')')
			if j < 0 {
				// Unterminated paren: emit as-is; parsePoint reports it.
				tokens = append(tokens, line[i:])
				return tokens
			}
			tokens = append(tokens, strings.ReplaceAll(line[i:i+j+1], " ", ""))
			i += j + 1
		default:
			j := i
			for j < len(line) && line[j] != ' ' && line[j] != '\t' && line[j] != '(' {
				j++
			}
			tokens = append(tokens, line[i:j])
			i = j
		}
	}
	return tokens
}

// parsePoint parses: (x,y,z) <weight> [buffer <b>]
func parsePoint(fields []string, lineNo int) (PointSpec, error) {
	var p PointSpec
	if len(fields) < 2 {
		return p, errf(lineNo, "want 'point (x,y,z) weight [buffer b]'")
	}
	coord := fields[0]
	if !strings.HasPrefix(coord, "(") || !strings.HasSuffix(coord, ")") {
		return p, errf(lineNo, "bad coordinate %q", coord)
	}
	parts := strings.Split(coord[1:len(coord)-1], ",")
	if len(parts) != 3 {
		return p, errf(lineNo, "coordinate %q must have three components", coord)
	}
	vals := make([]int, 3)
	for i, s := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return p, errf(lineNo, "bad coordinate component %q", s)
		}
		vals[i] = v
	}
	p.Offset = shape.Point{X: vals[0], Y: vals[1], Z: vals[2]}
	w, err := strconv.ParseFloat(fields[1], 64)
	if err != nil {
		return p, errf(lineNo, "bad weight %q", fields[1])
	}
	p.Weight = w
	if len(fields) >= 3 {
		if fields[2] != "buffer" || len(fields) < 4 {
			return p, errf(lineNo, "trailing tokens %v (want 'buffer <b>')", fields[2:])
		}
		b, err := strconv.Atoi(fields[3])
		if err != nil {
			return p, errf(lineNo, "bad buffer index %q", fields[3])
		}
		p.Buffer = b
	}
	return p, nil
}
