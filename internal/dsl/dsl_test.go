package dsl

import (
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/grid"
	"repro/internal/shape"
	"repro/internal/stencil"
	"repro/internal/tunespace"
)

const laplacianSrc = `
# 3-D seven-point laplacian
stencil laplacian {
    dims    3
    type    double
    buffers 1
    point   ( 0, 0, 0) -6.0
    point   ( 1, 0, 0)  1.0
    point   (-1, 0, 0)  1.0
    point   ( 0, 1, 0)  1.0
    point   ( 0,-1, 0)  1.0
    point   ( 0, 0, 1)  1.0
    point   ( 0, 0,-1)  1.0
}
`

func TestParseLaplacian(t *testing.T) {
	defs, err := ParseString(laplacianSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(defs) != 1 {
		t.Fatalf("defs = %d", len(defs))
	}
	d := defs[0]
	if d.Name != "laplacian" || d.Dims != 3 || d.Type != stencil.Float64 || d.Buffers != 1 {
		t.Errorf("header wrong: %+v", d)
	}
	if len(d.Points) != 7 {
		t.Errorf("points = %d, want 7", len(d.Points))
	}
	k := d.Kernel()
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
	if k.Shape.Size() != 7 || k.Shape.MaxOffset() != 1 {
		t.Errorf("kernel shape wrong: %d points, offset %d", k.Shape.Size(), k.Shape.MaxOffset())
	}
}

func TestParsedExecutableMatchesBuiltin(t *testing.T) {
	// The DSL laplacian must produce the same results as the hand-written one.
	defs, err := ParseString(laplacianSrc)
	if err != nil {
		t.Fatal(err)
	}
	parsed := defs[0].Executable()
	builtin := exec.LaplacianExec()

	r := exec.NewRunner()
	mk := func() (*grid.Grid[float64], []*grid.Grid[float64]) {
		out := grid.New(20, 20, 20, 1, 1)
		in := grid.New(20, 20, 20, 1, 1)
		in.FillPattern()
		return out, []*grid.Grid[float64]{in}
	}
	outA, insA := mk()
	outB, insB := mk()
	tv := tunespace.Vector{Bx: 8, By: 8, Bz: 4, U: 2, C: 2}
	if err := r.Run(parsed, outA, insA, tv); err != nil {
		t.Fatal(err)
	}
	if err := r.Run(builtin, outB, insB, tv); err != nil {
		t.Fatal(err)
	}
	if d := grid.MaxAbsDiff(outA, outB); d > 1e-12 {
		t.Errorf("DSL and builtin laplacian differ by %g", d)
	}
}

func TestParseMultipleBlocksAndBuffers(t *testing.T) {
	src := `
stencil div {
    dims 3
    type double
    buffers 3
    point (1,0,0)  0.5 buffer 0
    point (-1,0,0) -0.5 buffer 0
    point (0,1,0)  0.5 buffer 1
    point (0,-1,0) -0.5 buffer 1
    point (0,0,1)  0.5 buffer 2
    point (0,0,-1) -0.5 buffer 2
}
stencil blur2 {
    dims 2
    type float
    buffers 1
    point (0,0,0) 0.5
    point (1,0,0) 0.25
    point (-1,0,0) 0.25
}
`
	defs, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(defs) != 2 {
		t.Fatalf("defs = %d", len(defs))
	}
	if defs[0].Buffers != 3 || defs[0].Points[2].Buffer != 1 {
		t.Errorf("buffer parsing wrong: %+v", defs[0].Points)
	}
	if defs[1].Dims != 2 || defs[1].Type != stencil.Float32 {
		t.Errorf("second block wrong: %+v", defs[1])
	}
	for _, d := range defs {
		if err := d.Executable().Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"empty":              "",
		"no-blocks":          "# just a comment\n",
		"bad-header":         "stencil foo\ndims 3\n}",
		"nested":             "stencil a {\nstencil b {\n}\n}",
		"unmatched-close":    "}",
		"unterminated":       "stencil a {\ndims 3\n",
		"bad-dims":           "stencil a {\ndims nine\npoint (0,0,0) 1\n}",
		"bad-type":           "stencil a {\ntype quad\npoint (0,0,0) 1\n}",
		"bad-buffers":        "stencil a {\nbuffers x\npoint (0,0,0) 1\n}",
		"bad-coord":          "stencil a {\npoint 0,0,0 1\n}",
		"bad-coord-arity":    "stencil a {\npoint (0,0) 1\n}",
		"bad-coord-val":      "stencil a {\npoint (a,0,0) 1\n}",
		"bad-weight":         "stencil a {\npoint (0,0,0) heavy\n}",
		"missing-weight":     "stencil a {\npoint (0,0,0)\n}",
		"bad-buffer-suffix":  "stencil a {\npoint (0,0,0) 1 buf 2\n}",
		"bad-buffer-index":   "stencil a {\nbuffers 2\npoint (0,0,0) 1 buffer x\n}",
		"unknown-directive":  "stencil a {\ncolour blue\n}",
		"dims4":              "stencil a {\ndims 4\npoint (0,0,0) 1\n}",
		"no-points":          "stencil a {\ndims 3\n}",
		"buffer-oob":         "stencil a {\nbuffers 1\npoint (0,0,0) 1 buffer 3\n}",
		"2d-z-access":        "stencil a {\ndims 2\npoint (0,0,1) 1\n}",
		"unterminated-paren": "stencil a {\npoint (0,0,0 1\n}",
	}
	for name, src := range cases {
		if _, err := ParseString(src); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestParseErrorLineNumbers(t *testing.T) {
	_, err := ParseString("stencil a {\n    dims 3\n    point (0,0,0) bad\n}")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if pe.Line != 3 {
		t.Errorf("line = %d, want 3", pe.Line)
	}
	if !strings.Contains(pe.Error(), "line 3") {
		t.Errorf("message %q missing line", pe.Error())
	}
}

func TestFormatRoundTrip(t *testing.T) {
	defs, err := ParseString(laplacianSrc)
	if err != nil {
		t.Fatal(err)
	}
	src := defs[0].Format()
	again, err := ParseString(src)
	if err != nil {
		t.Fatalf("re-parse failed: %v\nsource:\n%s", err, src)
	}
	a, b := defs[0], again[0]
	if a.Name != b.Name || a.Dims != b.Dims || a.Type != b.Type || a.Buffers != b.Buffers {
		t.Error("header changed in round trip")
	}
	if !a.Kernel().Shape.Equal(b.Kernel().Shape) {
		t.Error("shape changed in round trip")
	}
	for i := range a.Points {
		// Points are sorted canonically by Format, so compare via lookup.
		found := false
		for j := range b.Points {
			if a.Points[i] == b.Points[j] {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("point %+v lost in round trip", a.Points[i])
		}
	}
}

func TestFormatIncludesBufferAnnotations(t *testing.T) {
	d := &Definition{
		Name: "x", Dims: 3, Buffers: 2, Type: stencil.Float32,
		Points: []PointSpec{
			{Offset: shape.Point{X: 1}, Weight: 0.5, Buffer: 1},
			{Offset: shape.Point{}, Weight: 1},
		},
	}
	out := d.Format()
	if !strings.Contains(out, "buffer 1") {
		t.Errorf("Format output missing buffer annotation:\n%s", out)
	}
}

func TestDefaultsAppliedByParser(t *testing.T) {
	// dims defaults to 3, buffers to 1, type to float.
	defs, err := ParseString("stencil d {\npoint (0,0,0) 1\n}")
	if err != nil {
		t.Fatal(err)
	}
	d := defs[0]
	if d.Dims != 3 || d.Buffers != 1 || d.Type != stencil.Float32 {
		t.Errorf("defaults wrong: %+v", d)
	}
}

func TestTokenizeCoordinatesWithSpaces(t *testing.T) {
	toks := tokenize("point ( 1, -2, 0 )  3.5  buffer 1")
	want := []string{"point", "(1,-2,0)", "3.5", "buffer", "1"}
	if len(toks) != len(want) {
		t.Fatalf("tokens = %v", toks)
	}
	for i := range want {
		if toks[i] != want[i] {
			t.Fatalf("token %d = %q, want %q", i, toks[i], want[i])
		}
	}
}
