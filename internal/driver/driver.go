// Package driver runs tuned stencils over many time steps — the deployment
// pattern of every motivating application in the paper (PDE integration,
// iterative smoothing, image pipelines). It owns the ring of time-level
// buffers, refreshes halos between steps according to a boundary condition,
// and applies one tuned code variant per step.
package driver

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/grid"
	"repro/internal/tunespace"
)

// Boundary selects how halos are refilled before every step.
type Boundary int

const (
	// Dirichlet keeps halo values fixed at whatever the initial condition
	// set (constant boundary).
	Dirichlet Boundary = iota
	// Periodic wraps the domain torus-style.
	Periodic
	// Neumann copies the nearest interior cell outward (zero-gradient).
	Neumann
)

func (b Boundary) String() string {
	switch b {
	case Dirichlet:
		return "dirichlet"
	case Periodic:
		return "periodic"
	case Neumann:
		return "neumann"
	default:
		return "?"
	}
}

// Simulation is a time-stepping loop around one stencil kernel, generic
// over the element type so single-precision applications integrate in
// genuine float32. The kernel's Buffers input grids are interpreted as
// consecutive time levels: buffer 0 is u(t), buffer 1 is u(t-1), and so on.
// Each step writes u(t+1) and rotates the ring.
type Simulation[T grid.Float] struct {
	Kernel   *exec.LinearKernel
	Tuning   tunespace.Vector
	Boundary Boundary

	runner *exec.Runner[T]
	// ring[0] is the newest level u(t); ring[len-1] is the write target.
	ring []*grid.Grid[T]
	step int
}

// New builds a double-precision simulation over an nx×ny×nz domain (nz = 1
// for 2-D); it is the float64 shim of NewOf. The tuning vector must be valid
// for the domain's dimensionality.
func New(k *exec.LinearKernel, nx, ny, nz int, tv tunespace.Vector, b Boundary) (*Simulation[float64], error) {
	return NewOf[float64](k, nx, ny, nz, tv, b)
}

// NewOf builds a simulation whose time levels, kernel execution and halo
// refreshes all use element type T.
func NewOf[T grid.Float](k *exec.LinearKernel, nx, ny, nz int, tv tunespace.Vector, b Boundary) (*Simulation[T], error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	dims := 3
	if nz == 1 {
		dims = 2
		tv.Bz = 1
	}
	if err := tv.Validate(dims); err != nil {
		return nil, fmt.Errorf("driver: %w", err)
	}
	halo := k.MaxOffset()
	haloZ := halo
	if nz == 1 {
		haloZ = 0
	}
	s := &Simulation[T]{
		Kernel:   k,
		Tuning:   tv,
		Boundary: b,
		runner:   exec.NewRunnerOf[T](),
	}
	// k.Buffers time levels plus one write target. The ring comes from the
	// grid pool (Acquire returns zeroed grids, matching New); Release hands
	// it back when the simulation is discarded.
	for i := 0; i <= k.Buffers; i++ {
		s.ring = append(s.ring, grid.AcquireOf[T](nx, ny, nz, halo, haloZ))
	}
	return s, nil
}

// Level returns the grid holding time level t-i (0 = newest). The returned
// grid may be written to set initial conditions.
func (s *Simulation[T]) Level(i int) *grid.Grid[T] {
	if i < 0 || i >= len(s.ring)-1 {
		panic(fmt.Sprintf("driver: level %d of %d", i, len(s.ring)-1))
	}
	return s.ring[i]
}

// Steps returns how many steps have run.
func (s *Simulation[T]) Steps() int { return s.step }

// Step advances one time level: refresh halos on every input level, apply
// the kernel, rotate the ring.
func (s *Simulation[T]) Step() error {
	inputs := s.ring[:s.Kernel.Buffers]
	for _, g := range inputs {
		s.refreshHalo(g)
	}
	out := s.ring[len(s.ring)-1]
	if err := s.runner.Run(s.Kernel, out, inputs, s.Tuning); err != nil {
		return err
	}
	// Rotate: the write target becomes the newest level.
	for i := len(s.ring) - 1; i > 0; i-- {
		s.ring[i], s.ring[i-1] = s.ring[i-1], s.ring[i]
	}
	s.step++
	return nil
}

// Close stops the simulation's worker pool and drops its compiled-program
// cache. The simulation may still be stepped afterwards (the pool restarts
// lazily); Close exists so applications that build many short-lived
// simulations do not accumulate idle goroutines.
func (s *Simulation[T]) Close() { s.runner.Close() }

// Release closes the simulation and returns its ring buffers to the grid
// pool. Unlike Close, the simulation must not be used afterwards — its time
// levels are gone. Applications that build many short-lived simulations of
// the same geometry should prefer Release so successive simulations recycle
// their rings. Release is idempotent.
func (s *Simulation[T]) Release() {
	s.runner.Close()
	for _, g := range s.ring {
		grid.ReleaseOf(g)
	}
	s.ring = nil
}

// Run advances n steps. When the tuning vector's fusion depth K exceeds 1
// and the configuration is fusable — periodic boundary, single-buffer kernel,
// domain no narrower than the kernel radius — full K-step chunks execute
// through the fused temporal-blocking engine, which is bit-identical to K
// sequential Steps; the remainder (and any unfusable configuration) falls
// back to sequential stepping, so K is advisory rather than load-bearing.
func (s *Simulation[T]) Run(n int) error {
	if k := s.Tuning.EffFuse(); k > 1 && n >= k && s.Boundary == Periodic && exec.CanFuse(s.Kernel) {
		in, out := s.ring[0], s.ring[1]
		if fp, err := s.runner.CompileFused(s.Kernel, out, in, s.Tuning); err == nil {
			for n >= k {
				in, out = s.ring[0], s.ring[1]
				s.refreshHalo(in)
				if err := fp.Run(out, in); err != nil {
					return fmt.Errorf("driver: step %d (fused ×%d): %w", s.step, k, err)
				}
				s.ring[0], s.ring[1] = out, in
				s.step += k
				n -= k
			}
		}
	}
	for i := 0; i < n; i++ {
		if err := s.Step(); err != nil {
			return fmt.Errorf("driver: step %d: %w", s.step, err)
		}
	}
	return nil
}

// refreshHalo fills the halo cells of g according to the boundary condition.
func (s *Simulation[T]) refreshHalo(g *grid.Grid[T]) {
	if s.Boundary == Dirichlet {
		return // halo untouched: keeps initial values
	}
	halo, haloZ := g.Halo, g.HaloZ
	wrap := func(v, n int) int { return ((v % n) + n) % n }
	clampI := func(v, n int) int {
		if v < 0 {
			return 0
		}
		if v >= n {
			return n - 1
		}
		return v
	}
	src := func(x, y, z int) (int, int, int) {
		if s.Boundary == Periodic {
			return wrap(x, g.NX), wrap(y, g.NY), wrap(z, g.NZ)
		}
		return clampI(x, g.NX), clampI(y, g.NY), clampI(z, g.NZ)
	}
	for z := -haloZ; z < g.NZ+haloZ; z++ {
		for y := -halo; y < g.NY+halo; y++ {
			for x := -halo; x < g.NX+halo; x++ {
				if x >= 0 && x < g.NX && y >= 0 && y < g.NY && z >= 0 && z < g.NZ {
					continue // interior
				}
				sx, sy, sz := src(x, y, z)
				g.Set(x, y, z, g.At(sx, sy, sz))
			}
		}
	}
}
