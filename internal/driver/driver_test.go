package driver

import (
	"math"
	"testing"

	"repro/internal/exec"
	"repro/internal/shape"
	"repro/internal/tunespace"
)

// averaging3 is a 1-buffer 3-point x-axis averaging kernel with weights
// summing to one: under periodic boundaries the interior sum is conserved.
func averaging3() *exec.LinearKernel {
	return &exec.LinearKernel{Name: "avg3", Buffers: 1, Terms: []exec.Term{
		{Offset: shape.Point{X: -1}, Weight: 0.25},
		{Offset: shape.Point{}, Weight: 0.5},
		{Offset: shape.Point{X: 1}, Weight: 0.25},
	}}
}

func tv() tunespace.Vector { return tunespace.Vector{Bx: 8, By: 8, Bz: 4, U: 2, C: 2} }

func TestNewValidation(t *testing.T) {
	if _, err := New(averaging3(), 16, 16, 16, tunespace.Vector{Bx: 0}, Periodic); err == nil {
		t.Error("invalid tuning accepted")
	}
	if _, err := New(&exec.LinearKernel{Name: "e", Buffers: 1}, 8, 8, 8, tv(), Periodic); err == nil {
		t.Error("empty kernel accepted")
	}
	s, err := New(averaging3(), 16, 16, 1, tunespace.Vector{Bx: 8, By: 8, Bz: 64, U: 0, C: 1}, Periodic)
	if err != nil {
		t.Fatalf("2-D grid should force bz=1: %v", err)
	}
	if s.Tuning.Bz != 1 {
		t.Errorf("bz = %d", s.Tuning.Bz)
	}
}

func TestPeriodicConservation(t *testing.T) {
	s, err := New(averaging3(), 32, 8, 8, tv(), Periodic)
	if err != nil {
		t.Fatal(err)
	}
	g := s.Level(0)
	for z := 0; z < 8; z++ {
		for y := 0; y < 8; y++ {
			for x := 0; x < 32; x++ {
				g.Set(x, y, z, math.Sin(float64(x))+2)
			}
		}
	}
	want := g.InteriorSum()
	if err := s.Run(20); err != nil {
		t.Fatal(err)
	}
	got := s.Level(0).InteriorSum()
	if math.Abs(got-want) > 1e-8*math.Abs(want) {
		t.Errorf("periodic averaging lost mass: %v -> %v", want, got)
	}
	if s.Steps() != 20 {
		t.Errorf("steps = %d", s.Steps())
	}
}

func TestPeriodicSmoothingConverges(t *testing.T) {
	// Repeated averaging under periodic boundaries converges to the mean.
	s, err := New(averaging3(), 16, 4, 4, tv(), Periodic)
	if err != nil {
		t.Fatal(err)
	}
	g := s.Level(0)
	for z := 0; z < 4; z++ {
		for y := 0; y < 4; y++ {
			for x := 0; x < 16; x++ {
				v := 0.0
				if x == 0 {
					v = 16
				}
				g.Set(x, y, z, v)
			}
		}
	}
	if err := s.Run(400); err != nil {
		t.Fatal(err)
	}
	// Mean is 1; all cells should be near it.
	cur := s.Level(0)
	for x := 0; x < 16; x++ {
		if d := math.Abs(cur.At(x, 2, 2) - 1); d > 0.01 {
			t.Fatalf("cell %d = %v, want ~1", x, cur.At(x, 2, 2))
		}
	}
}

func TestNeumannKeepsConstantFieldConstant(t *testing.T) {
	s, err := New(averaging3(), 12, 6, 6, tv(), Neumann)
	if err != nil {
		t.Fatal(err)
	}
	s.Level(0).Fill(0) // also fills halo, but halo is refreshed anyway
	for z := 0; z < 6; z++ {
		for y := 0; y < 6; y++ {
			for x := 0; x < 12; x++ {
				s.Level(0).Set(x, y, z, 3.5)
			}
		}
	}
	if err := s.Run(10); err != nil {
		t.Fatal(err)
	}
	for x := 0; x < 12; x++ {
		if got := s.Level(0).At(x, 3, 3); math.Abs(got-3.5) > 1e-12 {
			t.Fatalf("constant field drifted at %d: %v", x, got)
		}
	}
}

func TestDirichletHaloUntouched(t *testing.T) {
	s, err := New(averaging3(), 8, 4, 4, tv(), Dirichlet)
	if err != nil {
		t.Fatal(err)
	}
	// Zero interior, halo boundary value 1 on the -x face only.
	g := s.Level(0)
	for z := 0; z < 4; z++ {
		for y := 0; y < 4; y++ {
			g.Set(-1, y, z, 1)
		}
	}
	if err := s.Step(); err != nil {
		t.Fatal(err)
	}
	// The cell adjacent to the hot boundary picks up 0.25 of it... but
	// note the ring rotation: the new level was a fresh grid whose halo is
	// zero. Dirichlet semantics require the user to maintain halos on all
	// levels; here we simply verify the first step saw the hot halo.
	if got := s.Level(0).At(0, 1, 1); got != 0.25 {
		t.Errorf("boundary influence = %v, want 0.25", got)
	}
}

func TestTwoBufferLeapfrogRing(t *testing.T) {
	// A two-buffer kernel consumes u(t) and u(t-1): u(t+1) = 2u(t)-u(t-1)
	// reproduces linear growth exactly.
	k := &exec.LinearKernel{Name: "extrapolate", Buffers: 2, Terms: []exec.Term{
		{Buffer: 0, Offset: shape.Point{}, Weight: 2},
		{Buffer: 1, Offset: shape.Point{}, Weight: -1},
	}}
	s, err := New(k, 8, 8, 8, tv(), Periodic)
	if err != nil {
		t.Fatal(err)
	}
	// u(t)=2, u(t-1)=1 everywhere -> u(t+n) = 2+n.
	for z := 0; z < 8; z++ {
		for y := 0; y < 8; y++ {
			for x := 0; x < 8; x++ {
				s.Level(0).Set(x, y, z, 2)
				s.Level(1).Set(x, y, z, 1)
			}
		}
	}
	if err := s.Run(5); err != nil {
		t.Fatal(err)
	}
	if got := s.Level(0).At(4, 4, 4); got != 7 {
		t.Errorf("u after 5 steps = %v, want 7", got)
	}
	if got := s.Level(1).At(4, 4, 4); got != 6 {
		t.Errorf("u(t-1) after 5 steps = %v, want 6", got)
	}
}

func TestLevelPanicsOutOfRange(t *testing.T) {
	s, err := New(averaging3(), 8, 8, 8, tv(), Periodic)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Level(1) // averaging3 has 1 buffer: only level 0 is readable
}

func TestBoundaryString(t *testing.T) {
	if Dirichlet.String() != "dirichlet" || Periodic.String() != "periodic" ||
		Neumann.String() != "neumann" || Boundary(9).String() != "?" {
		t.Error("boundary names wrong")
	}
}

func TestPeriodicWrapsCorrectly(t *testing.T) {
	// A right-shift kernel under periodic boundaries rotates the field.
	k := &exec.LinearKernel{Name: "shift", Buffers: 1, Terms: []exec.Term{
		{Offset: shape.Point{X: -1}, Weight: 1},
	}}
	s, err := New(k, 4, 2, 2, tunespace.Vector{Bx: 4, By: 2, Bz: 2, U: 0, C: 1}, Periodic)
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x < 4; x++ {
		for y := 0; y < 2; y++ {
			for z := 0; z < 2; z++ {
				s.Level(0).Set(x, y, z, float64(x))
			}
		}
	}
	if err := s.Run(4); err != nil { // full rotation
		t.Fatal(err)
	}
	for x := 0; x < 4; x++ {
		if got := s.Level(0).At(x, 0, 0); got != float64(x) {
			t.Fatalf("after full rotation cell %d = %v", x, got)
		}
	}
}

func TestSimulationRelease(t *testing.T) {
	// Release returns the ring to the grid pool and is idempotent; the
	// recycled grids must behave like fresh ones for the next simulation.
	s, err := New(averaging3(), 16, 16, 16, tv(), Periodic)
	if err != nil {
		t.Fatal(err)
	}
	s.Level(0).FillPattern()
	if err := s.Run(2); err != nil {
		t.Fatal(err)
	}
	s.Release()
	s.Release() // idempotent

	// A successor simulation of the same geometry (likely reusing the pooled
	// ring) must start from zeroed levels and run correctly.
	s2, err := New(averaging3(), 16, 16, 16, tv(), Periodic)
	if err != nil {
		t.Fatal(err)
	}
	if sum := s2.Level(0).InteriorSum(); sum != 0 {
		t.Fatalf("recycled ring not zeroed: interior sum %v", sum)
	}
	s2.Level(0).FillPattern()
	before := s2.Level(0).InteriorSum()
	if err := s2.Run(3); err != nil {
		t.Fatal(err)
	}
	if math.Abs(s2.Level(0).InteriorSum()-before) > 1e-9 {
		t.Error("periodic averaging on a recycled ring lost the interior sum")
	}
	s2.Release()
}

func TestSimulationCloseAndResume(t *testing.T) {
	// Close stops the worker pool; stepping afterwards restarts it
	// transparently, and ring rotation keeps hitting the same cached
	// execution program throughout.
	s, err := New(averaging3(), 16, 16, 16, tv(), Periodic)
	if err != nil {
		t.Fatal(err)
	}
	s.Level(0).FillPattern()
	if err := s.Run(3); err != nil {
		t.Fatal(err)
	}
	sum := s.Level(0).InteriorSum()
	s.Close()
	s.Close() // idempotent
	if err := s.Run(2); err != nil {
		t.Fatalf("step after close: %v", err)
	}
	if math.Abs(s.Level(0).InteriorSum()-sum) > 1e-9 {
		t.Error("periodic averaging stopped conserving the interior sum after Close")
	}
	if got := s.Steps(); got != 5 {
		t.Errorf("steps = %d, want 5", got)
	}
	s.Close()
}

// star7 is a canonical 3-D 7-point smoothing kernel (weights sum to one).
func star7() *exec.LinearKernel {
	return &exec.LinearKernel{Name: "star7", Buffers: 1, Terms: []exec.Term{
		{Offset: shape.Point{}, Weight: 0.4},
		{Offset: shape.Point{X: 1}, Weight: 0.1},
		{Offset: shape.Point{X: -1}, Weight: 0.1},
		{Offset: shape.Point{Y: 1}, Weight: 0.1},
		{Offset: shape.Point{Y: -1}, Weight: 0.1},
		{Offset: shape.Point{Z: 1}, Weight: 0.1},
		{Offset: shape.Point{Z: -1}, Weight: 0.1},
	}}
}

// TestFusedRunMatchesSequentialSteps pins that Run with a fusion depth K > 1
// under periodic boundaries is bit-identical to the same number of
// sequential Steps, including a non-multiple-of-K remainder, and that the
// step counter stays consistent.
func TestFusedRunMatchesSequentialSteps(t *testing.T) {
	for _, steps := range []int{3, 7, 8} {
		seq, err := New(star7(), 12, 10, 8, tunespace.Vector{Bx: 8, By: 8, Bz: 4, U: 2, C: 1, K: 1}, Periodic)
		if err != nil {
			t.Fatal(err)
		}
		defer seq.Release()
		fused, err := New(star7(), 12, 10, 8, tunespace.Vector{Bx: 8, By: 8, Bz: 4, U: 2, C: 1, K: 3}, Periodic)
		if err != nil {
			t.Fatal(err)
		}
		defer fused.Release()
		seq.Level(0).FillPattern()
		fused.Level(0).FillPattern()
		if err := seq.Run(steps); err != nil {
			t.Fatal(err)
		}
		if err := fused.Run(steps); err != nil {
			t.Fatal(err)
		}
		if seq.Steps() != steps || fused.Steps() != steps {
			t.Fatalf("step counters %d/%d, want %d", seq.Steps(), fused.Steps(), steps)
		}
		a, b := seq.Level(0), fused.Level(0)
		for z := 0; z < 8; z++ {
			for y := 0; y < 10; y++ {
				for x := 0; x < 12; x++ {
					va, vb := a.At(x, y, z), b.At(x, y, z)
					if math.Float64bits(va) != math.Float64bits(vb) {
						t.Fatalf("steps=%d: (%d,%d,%d) fused %v != sequential %v", steps, x, y, z, vb, va)
					}
				}
			}
		}
	}
}

// TestFusedRunFallsBackOnUnfusable pins that K > 1 with a non-periodic
// boundary still runs (sequentially) and advances the step counter.
func TestFusedRunFallsBackOnUnfusable(t *testing.T) {
	s, err := New(star7(), 8, 8, 8, tunespace.Vector{Bx: 8, By: 8, Bz: 4, U: 0, C: 1, K: 4}, Neumann)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Release()
	s.Level(0).FillPattern()
	if err := s.Run(5); err != nil {
		t.Fatal(err)
	}
	if s.Steps() != 5 {
		t.Fatalf("steps = %d, want 5", s.Steps())
	}
}
