// Package store is the persistent model store of the serving subsystem: it
// saves trained tuning artifacts — the ranking-SVM weights, the trainer
// provenance (feature encoding, normalization, training options, dataset
// fingerprint) and the machine description the simulator evaluated on — to a
// versioned on-disk format, and loads them back for the HTTP tuning server
// and the cmd binaries. Train once, serve many.
//
// # Format
//
// A store is a directory; each artifact is a subdirectory holding small JSON
// documents plus a manifest:
//
//	<store>/<name>/model.json     weights (exact float64 round-trip), C
//	<store>/<name>/meta.json      trainer provenance (Meta)
//	<store>/<name>/machine.json   simulator machine description (optional)
//	<store>/<name>/manifest.json  format version + sha256 of every file
//
// The encoding is deterministic: the same artifact always serializes to the
// same bytes (Go's JSON encoder emits struct fields in declaration order and
// shortest-round-trip floats, and Save injects no timestamps), so saved
// artifacts can be content-addressed, diffed and committed as golden test
// fixtures. Writes land atomically per file (tmp+rename, manifest last; see
// Save for the exact crash-consistency contract), and Load verifies every
// content hash before returning, so a torn, mixed or hand-edited artifact
// fails loudly instead of serving skewed predictions.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/feature"
	"repro/internal/machine"
	"repro/internal/svmrank"
)

// FormatVersion tags the on-disk layout. Bump it when the file set or any
// document schema changes incompatibly; Load rejects unknown versions.
const FormatVersion = 1

// File names of an artifact directory.
const (
	manifestFile = "manifest.json"
	modelFile    = "model.json"
	metaFile     = "meta.json"
	machineFile  = "machine.json"
)

// currentFile is the store-level promotion pointer: which artifact the
// serving layer should treat as current, plus the promotion history that put
// it there. It is written atomically, so a crash mid-promotion leaves either
// the old pointer or the new one — never a torn document.
const currentFile = "current.json"

// tmpSweepAge is how old an orphaned .tmp-* file must be before Open removes
// it. The grace window keeps a concurrent Save's in-flight tmp file safe; a
// crash's leftovers are, by definition, older than any live write by the time
// the process restarts and reopens the store.
const tmpSweepAge = time.Hour

// Meta is the trainer provenance persisted with a model: everything needed
// to audit what a serving model was fitted on, and to refuse loading it into
// an incompatible build.
type Meta struct {
	// FeatureDim is the feature-space dimensionality the weights index;
	// loading into a build whose encoder disagrees is refused.
	FeatureDim int `json:"feature_dim"`
	// FeatureNames labels every weight component (feature.Names order), so
	// a stored model is self-describing for inspection tooling.
	FeatureNames []string `json:"feature_names,omitempty"`
	// Normalization documents the feature scaling the encoder applied.
	Normalization string `json:"normalization,omitempty"`

	// Training provenance.
	TrainingPoints int     `json:"training_points,omitempty"`
	Seed           int64   `json:"seed,omitempty"`
	Mode           string  `json:"mode,omitempty"` // "sim", "measure" or "custom"
	Sampling       string  `json:"sampling,omitempty"`
	C              float64 `json:"c,omitempty"`
	Epochs         int     `json:"epochs,omitempty"`
	PairStrategy   string  `json:"pair_strategy,omitempty"`
	PairWindow     int     `json:"pair_window,omitempty"`
	Pairs          int     `json:"pairs,omitempty"`

	// DatasetFingerprint is dataset.Set.Fingerprint() of the training set:
	// two models sharing it were fitted on byte-identical data.
	DatasetFingerprint string `json:"dataset_fingerprint,omitempty"`
}

// Artifact is one stored model with its provenance.
type Artifact struct {
	// Name is the artifact's directory name within the store; it must be a
	// single non-hidden path element.
	Name    string
	Model   *svmrank.Model
	Meta    Meta
	Machine *machine.Machine // nil when the training substrate had none (measure mode)
}

// manifest is the integrity document written last.
type manifest struct {
	FormatVersion int             `json:"format_version"`
	Name          string          `json:"name"`
	Files         []manifestEntry `json:"files"`
}

type manifestEntry struct {
	Path   string `json:"path"`
	SHA256 string `json:"sha256"`
	Bytes  int    `json:"bytes"`
}

// persistedModel is the model.json schema.
type persistedModel struct {
	FeatureDim int       `json:"feature_dim"`
	W          []float64 `json:"w"`
	C          float64   `json:"c"`
}

// Store is a directory of named artifacts.
type Store struct {
	dir string
}

// Open returns a store rooted at dir, creating the directory when missing.
// It also sweeps orphaned .tmp-* files — the debris a crash between
// writeAtomic's tmp write and its rename leaves behind — from the store root
// and every artifact directory, with an age grace so a Save racing in another
// process is never robbed of its in-flight file.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	sweepOrphans(dir)
	return &Store{dir: dir}, nil
}

// sweepOrphans removes stale .tmp-* files under dir and its immediate
// subdirectories. Sweeping is best-effort housekeeping: any error (a racing
// unlink, a permission oddity) is ignored rather than failing Open.
func sweepOrphans(root string) {
	cutoff := time.Now().Add(-tmpSweepAge)
	sweepDir := func(dir string) {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasPrefix(e.Name(), ".tmp-") {
				continue
			}
			info, err := e.Info()
			if err != nil || info.ModTime().After(cutoff) {
				continue
			}
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
	sweepDir(root)
	entries, err := os.ReadDir(root)
	if err != nil {
		return
	}
	for _, e := range entries {
		if e.IsDir() {
			sweepDir(filepath.Join(root, e.Name()))
		}
	}
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func validName(name string) error {
	if name == "" || name == "." || name == ".." ||
		strings.ContainsAny(name, "/\\") || strings.HasPrefix(name, ".") {
		return fmt.Errorf("store: invalid artifact name %q", name)
	}
	return nil
}

// encode renders a document deterministically: two-space indentation and a
// trailing newline, the exact bytes the golden fixtures commit.
func encode(v any) ([]byte, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// testHookBeforeRename, when non-nil, runs after the tmp file is fully
// written and before the rename that publishes it. Crash-consistency tests
// panic here to simulate a kill at the torn-write point.
var testHookBeforeRename func(tmp, path string)

// writeAtomic lands content at path via tmp+rename so readers never observe
// a partially written file.
func writeAtomic(path string, content []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	// Cleanup is explicit per error path, not deferred: the crash hook
	// simulates a kill by panicking, and a kill would not run defers — the
	// orphaned tmp it leaves is exactly what Open's sweep exists for.
	if _, err := tmp.Write(content); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	// CreateTemp opens 0600; artifacts are world-readable like any build
	// output.
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if testHookBeforeRename != nil {
		testHookBeforeRename(tmp.Name(), path)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

func hashOf(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Save persists the artifact under its name, overwriting any previous
// version. Every file lands via tmp+rename (readers never observe a torn
// file) and the manifest is written last. Saving a *new* artifact is
// all-or-nothing: without a manifest the directory is not an artifact.
// Re-saving over an existing artifact is not atomic as a whole — a crash
// between the first document rename and the manifest rename can leave the
// old manifest describing new file contents — but the hash verification in
// Load turns that into a loud, fail-stop load error rather than silently
// serving a mixed artifact; re-run Save to repair.
func (s *Store) Save(a *Artifact) error {
	if err := validName(a.Name); err != nil {
		return err
	}
	if a.Model == nil || len(a.Model.W) == 0 {
		return fmt.Errorf("store: artifact %q has no model weights", a.Name)
	}
	meta := a.Meta
	if meta.FeatureDim == 0 {
		meta.FeatureDim = len(a.Model.W)
	}
	if meta.FeatureDim != len(a.Model.W) {
		return fmt.Errorf("store: artifact %q: meta feature dim %d, model has %d weights",
			a.Name, meta.FeatureDim, len(a.Model.W))
	}

	docs := []struct {
		path string
		v    any
	}{
		{modelFile, persistedModel{FeatureDim: len(a.Model.W), W: a.Model.W, C: a.Model.C}},
		{metaFile, meta},
	}
	if a.Machine != nil {
		docs = append(docs, struct {
			path string
			v    any
		}{machineFile, a.Machine})
	}

	dir := filepath.Join(s.dir, a.Name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	m := manifest{FormatVersion: FormatVersion, Name: a.Name}
	for _, d := range docs {
		b, err := encode(d.v)
		if err != nil {
			return fmt.Errorf("store: encoding %s: %w", d.path, err)
		}
		if err := writeAtomic(filepath.Join(dir, d.path), b); err != nil {
			return fmt.Errorf("store: writing %s: %w", d.path, err)
		}
		m.Files = append(m.Files, manifestEntry{Path: d.path, SHA256: hashOf(b), Bytes: len(b)})
	}
	sort.Slice(m.Files, func(i, j int) bool { return m.Files[i].Path < m.Files[j].Path })
	mb, err := encode(m)
	if err != nil {
		return fmt.Errorf("store: encoding manifest: %w", err)
	}
	if err := writeAtomic(filepath.Join(dir, manifestFile), mb); err != nil {
		return fmt.Errorf("store: writing manifest: %w", err)
	}
	// A previous save may have written machine.json this one doesn't carry;
	// remove it only after the new manifest landed, so a crash anywhere
	// above leaves the old manifest with every file it references intact.
	if a.Machine == nil {
		os.Remove(filepath.Join(dir, machineFile))
	}
	return nil
}

// Load reads, hash-verifies and decodes the named artifact.
func (s *Store) Load(name string) (*Artifact, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	return LoadDir(filepath.Join(s.dir, name))
}

// LoadDir loads an artifact directly from its directory (one containing
// manifest.json). The artifact's name is taken from the manifest.
func LoadDir(dir string) (*Artifact, error) {
	mb, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(mb, &m); err != nil {
		return nil, fmt.Errorf("store: decoding manifest in %s: %w", dir, err)
	}
	if m.FormatVersion != FormatVersion {
		return nil, fmt.Errorf("store: artifact %s has format version %d, this build reads %d",
			dir, m.FormatVersion, FormatVersion)
	}
	files := make(map[string][]byte, len(m.Files))
	for _, f := range m.Files {
		if filepath.Base(f.Path) != f.Path {
			return nil, fmt.Errorf("store: manifest in %s references non-local path %q", dir, f.Path)
		}
		b, err := os.ReadFile(filepath.Join(dir, f.Path))
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		if got := hashOf(b); got != f.SHA256 {
			return nil, fmt.Errorf("store: %s/%s content hash %s does not match manifest %s (corrupt or hand-edited artifact)",
				dir, f.Path, got[:12], f.SHA256[:min(12, len(f.SHA256))])
		}
		files[f.Path] = b
	}

	pmb, ok := files[modelFile]
	if !ok {
		return nil, fmt.Errorf("store: artifact %s has no %s", dir, modelFile)
	}
	var pm persistedModel
	if err := json.Unmarshal(pmb, &pm); err != nil {
		return nil, fmt.Errorf("store: decoding %s: %w", modelFile, err)
	}
	if len(pm.W) != pm.FeatureDim {
		return nil, fmt.Errorf("store: artifact %s: %d weights, declared dim %d", dir, len(pm.W), pm.FeatureDim)
	}
	if pm.FeatureDim > feature.Dim {
		return nil, fmt.Errorf("store: artifact %s was trained with feature dim %d, this build encodes only %d",
			dir, pm.FeatureDim, feature.Dim)
	}
	// A smaller dim means the model predates features appended since (the
	// encoding only ever grows at the tail). The weights load unchanged —
	// feature.Vector.Dot treats indices past len(W) as zero weight — so the
	// artifact keeps scoring exactly as it did when trained.
	a := &Artifact{
		Name:  m.Name,
		Model: &svmrank.Model{W: pm.W, C: pm.C},
	}
	if b, ok := files[metaFile]; ok {
		if err := json.Unmarshal(b, &a.Meta); err != nil {
			return nil, fmt.Errorf("store: decoding %s: %w", metaFile, err)
		}
	}
	if b, ok := files[machineFile]; ok {
		a.Machine = &machine.Machine{}
		if err := json.Unmarshal(b, a.Machine); err != nil {
			return nil, fmt.Errorf("store: decoding %s: %w", machineFile, err)
		}
		if err := a.Machine.Validate(); err != nil {
			return nil, fmt.Errorf("store: artifact %s: %w", dir, err)
		}
	}
	return a, nil
}

// Info summarizes one stored artifact for listings.
type Info struct {
	Name string `json:"name"`
	Meta Meta   `json:"meta"`
	// ContentHash identifies the artifact's exact content: the hash of its
	// manifest, which in turn hashes every file.
	ContentHash string `json:"content_hash"`
}

// List returns the artifacts in the store, sorted by name. Subdirectories
// without a manifest are skipped (not errors), so a store can live alongside
// unrelated files. Listing reads only the manifest and the (hash-verified)
// meta document — not the weights — so it stays cheap for large stores; a
// subsequent Load performs the full verification.
func (s *Store) List() ([]Info, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var out []Info
	for _, e := range entries {
		if !e.IsDir() || validName(e.Name()) != nil {
			continue
		}
		dir := filepath.Join(s.dir, e.Name())
		mb, err := os.ReadFile(filepath.Join(dir, manifestFile))
		if err != nil {
			continue // not an artifact
		}
		var m manifest
		if err := json.Unmarshal(mb, &m); err != nil {
			return nil, fmt.Errorf("store: decoding manifest of %q: %w", e.Name(), err)
		}
		if m.FormatVersion != FormatVersion {
			return nil, fmt.Errorf("store: artifact %q has format version %d, this build reads %d",
				e.Name(), m.FormatVersion, FormatVersion)
		}
		info := Info{Name: e.Name(), ContentHash: hashOf(mb)}
		for _, f := range m.Files {
			if f.Path != metaFile {
				continue
			}
			b, err := os.ReadFile(filepath.Join(dir, metaFile))
			if err != nil {
				return nil, fmt.Errorf("store: artifact %q: %w", e.Name(), err)
			}
			if got := hashOf(b); got != f.SHA256 {
				return nil, fmt.Errorf("store: %s/%s content hash does not match manifest (corrupt artifact)", e.Name(), metaFile)
			}
			if err := json.Unmarshal(b, &info.Meta); err != nil {
				return nil, fmt.Errorf("store: artifact %q: decoding %s: %w", e.Name(), metaFile, err)
			}
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// LoadPath loads an artifact from either an artifact directory (one holding
// a manifest.json) or a store root, where it picks the artifact named
// "default" or, failing that, the store's only artifact.
func LoadPath(path string) (*Artifact, error) {
	if _, err := os.Stat(filepath.Join(path, manifestFile)); err == nil {
		return LoadDir(path)
	}
	st, err := Open(path)
	if err != nil {
		return nil, err
	}
	infos, err := st.List()
	if err != nil {
		return nil, err
	}
	switch {
	case len(infos) == 0:
		return nil, fmt.Errorf("store: no artifacts in %s", path)
	case len(infos) == 1:
		return st.Load(infos[0].Name)
	}
	for _, in := range infos {
		if in.Name == "default" {
			return st.Load("default")
		}
	}
	names := make([]string, len(infos))
	for i, in := range infos {
		names[i] = in.Name
	}
	return nil, fmt.Errorf("store: %s holds %d artifacts (%s) and none is named \"default\"; pass the artifact directory",
		path, len(infos), strings.Join(names, ", "))
}

// Promotion is one entry of the store's promotion history: who became
// current, who it displaced, and the canary evidence that justified the move.
type Promotion struct {
	// Name is the artifact that became current.
	Name string `json:"name"`
	// Prev is the artifact it displaced, if any.
	Prev string `json:"prev,omitempty"`
	// Tau is the candidate's held-out mean Kendall tau at promotion time.
	Tau float64 `json:"tau,omitempty"`
	// IncumbentTau is the displaced model's tau on the same held-out set.
	IncumbentTau float64 `json:"incumbent_tau,omitempty"`
	// Records is how many WAL observations the candidate was trained with.
	Records int `json:"records,omitempty"`
	// Reason is a short human-readable why: "canary-pass", "rollback",
	// "manual", ...
	Reason string `json:"reason,omitempty"`
	// UnixNano is the promotion wall-clock timestamp, when known.
	UnixNano int64 `json:"unix_nano,omitempty"`
}

// maxPromotionHistory bounds the history kept in current.json so a long-lived
// retrain loop cannot grow the pointer document without limit.
const maxPromotionHistory = 50

// currentDoc is the current.json schema.
type currentDoc struct {
	FormatVersion int         `json:"format_version"`
	Name          string      `json:"name"`
	History       []Promotion `json:"history,omitempty"`
}

// SetCurrent atomically repoints the store's current artifact at name and
// appends p to the promotion history. The named artifact must already be
// fully saved: the pointer flip is the commit point of a promotion, so a
// crash on either side of it leaves the store serving a complete model — the
// old one before the flip, the new one after.
func (s *Store) SetCurrent(name string, p Promotion) error {
	if err := validName(name); err != nil {
		return err
	}
	if _, err := os.Stat(filepath.Join(s.dir, name, manifestFile)); err != nil {
		return fmt.Errorf("store: cannot point current at %q: %w", name, err)
	}
	// A corrupt existing pointer is not fatal to repointing: promotion
	// starts a fresh history rather than refusing to repair the store.
	cur, hist, _ := s.Current()
	p.Name = name
	if p.Prev == "" {
		p.Prev = cur
	}
	hist = append(hist, p)
	if len(hist) > maxPromotionHistory {
		hist = hist[len(hist)-maxPromotionHistory:]
	}
	b, err := encode(currentDoc{FormatVersion: FormatVersion, Name: name, History: hist})
	if err != nil {
		return fmt.Errorf("store: encoding %s: %w", currentFile, err)
	}
	if err := writeAtomic(filepath.Join(s.dir, currentFile), b); err != nil {
		return fmt.Errorf("store: writing %s: %w", currentFile, err)
	}
	return nil
}

// Current reads the promotion pointer: the current artifact's name and the
// promotion history that led to it. A store that has never promoted returns
// ("", nil, nil); a corrupt pointer returns an error so callers can fall back
// to their default-selection rules instead of serving a guess.
func (s *Store) Current() (string, []Promotion, error) {
	b, err := os.ReadFile(filepath.Join(s.dir, currentFile))
	if os.IsNotExist(err) {
		return "", nil, nil
	}
	if err != nil {
		return "", nil, fmt.Errorf("store: %w", err)
	}
	var doc currentDoc
	if err := json.Unmarshal(b, &doc); err != nil {
		return "", nil, fmt.Errorf("store: decoding %s: %w", currentFile, err)
	}
	if doc.FormatVersion != FormatVersion {
		return "", nil, fmt.Errorf("store: %s has format version %d, this build reads %d",
			currentFile, doc.FormatVersion, FormatVersion)
	}
	if doc.Name == "" {
		return "", nil, fmt.Errorf("store: %s names no artifact", currentFile)
	}
	if err := validName(doc.Name); err != nil {
		return "", nil, err
	}
	return doc.Name, doc.History, nil
}
