// Package store is the persistent model store of the serving subsystem: it
// saves trained tuning artifacts — the ranking-SVM weights, the trainer
// provenance (feature encoding, normalization, training options, dataset
// fingerprint) and the machine description the simulator evaluated on — to a
// versioned on-disk format, and loads them back for the HTTP tuning server
// and the cmd binaries. Train once, serve many.
//
// # Format
//
// A store is a directory; each artifact is a subdirectory holding small JSON
// documents plus a manifest:
//
//	<store>/<name>/model.json     weights (exact float64 round-trip), C
//	<store>/<name>/meta.json      trainer provenance (Meta)
//	<store>/<name>/machine.json   simulator machine description (optional)
//	<store>/<name>/manifest.json  format version + sha256 of every file
//
// The encoding is deterministic: the same artifact always serializes to the
// same bytes (Go's JSON encoder emits struct fields in declaration order and
// shortest-round-trip floats, and Save injects no timestamps), so saved
// artifacts can be content-addressed, diffed and committed as golden test
// fixtures. Writes land atomically per file (tmp+rename, manifest last; see
// Save for the exact crash-consistency contract), and Load verifies every
// content hash before returning, so a torn, mixed or hand-edited artifact
// fails loudly instead of serving skewed predictions.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/feature"
	"repro/internal/machine"
	"repro/internal/svmrank"
)

// FormatVersion tags the on-disk layout. Bump it when the file set or any
// document schema changes incompatibly; Load rejects unknown versions.
const FormatVersion = 1

// File names of an artifact directory.
const (
	manifestFile = "manifest.json"
	modelFile    = "model.json"
	metaFile     = "meta.json"
	machineFile  = "machine.json"
)

// Meta is the trainer provenance persisted with a model: everything needed
// to audit what a serving model was fitted on, and to refuse loading it into
// an incompatible build.
type Meta struct {
	// FeatureDim is the feature-space dimensionality the weights index;
	// loading into a build whose encoder disagrees is refused.
	FeatureDim int `json:"feature_dim"`
	// FeatureNames labels every weight component (feature.Names order), so
	// a stored model is self-describing for inspection tooling.
	FeatureNames []string `json:"feature_names,omitempty"`
	// Normalization documents the feature scaling the encoder applied.
	Normalization string `json:"normalization,omitempty"`

	// Training provenance.
	TrainingPoints int     `json:"training_points,omitempty"`
	Seed           int64   `json:"seed,omitempty"`
	Mode           string  `json:"mode,omitempty"` // "sim", "measure" or "custom"
	Sampling       string  `json:"sampling,omitempty"`
	C              float64 `json:"c,omitempty"`
	Epochs         int     `json:"epochs,omitempty"`
	PairStrategy   string  `json:"pair_strategy,omitempty"`
	PairWindow     int     `json:"pair_window,omitempty"`
	Pairs          int     `json:"pairs,omitempty"`

	// DatasetFingerprint is dataset.Set.Fingerprint() of the training set:
	// two models sharing it were fitted on byte-identical data.
	DatasetFingerprint string `json:"dataset_fingerprint,omitempty"`
}

// Artifact is one stored model with its provenance.
type Artifact struct {
	// Name is the artifact's directory name within the store; it must be a
	// single non-hidden path element.
	Name    string
	Model   *svmrank.Model
	Meta    Meta
	Machine *machine.Machine // nil when the training substrate had none (measure mode)
}

// manifest is the integrity document written last.
type manifest struct {
	FormatVersion int             `json:"format_version"`
	Name          string          `json:"name"`
	Files         []manifestEntry `json:"files"`
}

type manifestEntry struct {
	Path   string `json:"path"`
	SHA256 string `json:"sha256"`
	Bytes  int    `json:"bytes"`
}

// persistedModel is the model.json schema.
type persistedModel struct {
	FeatureDim int       `json:"feature_dim"`
	W          []float64 `json:"w"`
	C          float64   `json:"c"`
}

// Store is a directory of named artifacts.
type Store struct {
	dir string
}

// Open returns a store rooted at dir, creating the directory when missing.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func validName(name string) error {
	if name == "" || name == "." || name == ".." ||
		strings.ContainsAny(name, "/\\") || strings.HasPrefix(name, ".") {
		return fmt.Errorf("store: invalid artifact name %q", name)
	}
	return nil
}

// encode renders a document deterministically: two-space indentation and a
// trailing newline, the exact bytes the golden fixtures commit.
func encode(v any) ([]byte, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// writeAtomic lands content at path via tmp+rename so readers never observe
// a partially written file.
func writeAtomic(path string, content []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	if _, err := tmp.Write(content); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	// CreateTemp opens 0600; artifacts are world-readable like any build
	// output.
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func hashOf(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Save persists the artifact under its name, overwriting any previous
// version. Every file lands via tmp+rename (readers never observe a torn
// file) and the manifest is written last. Saving a *new* artifact is
// all-or-nothing: without a manifest the directory is not an artifact.
// Re-saving over an existing artifact is not atomic as a whole — a crash
// between the first document rename and the manifest rename can leave the
// old manifest describing new file contents — but the hash verification in
// Load turns that into a loud, fail-stop load error rather than silently
// serving a mixed artifact; re-run Save to repair.
func (s *Store) Save(a *Artifact) error {
	if err := validName(a.Name); err != nil {
		return err
	}
	if a.Model == nil || len(a.Model.W) == 0 {
		return fmt.Errorf("store: artifact %q has no model weights", a.Name)
	}
	meta := a.Meta
	if meta.FeatureDim == 0 {
		meta.FeatureDim = len(a.Model.W)
	}
	if meta.FeatureDim != len(a.Model.W) {
		return fmt.Errorf("store: artifact %q: meta feature dim %d, model has %d weights",
			a.Name, meta.FeatureDim, len(a.Model.W))
	}

	docs := []struct {
		path string
		v    any
	}{
		{modelFile, persistedModel{FeatureDim: len(a.Model.W), W: a.Model.W, C: a.Model.C}},
		{metaFile, meta},
	}
	if a.Machine != nil {
		docs = append(docs, struct {
			path string
			v    any
		}{machineFile, a.Machine})
	}

	dir := filepath.Join(s.dir, a.Name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	m := manifest{FormatVersion: FormatVersion, Name: a.Name}
	for _, d := range docs {
		b, err := encode(d.v)
		if err != nil {
			return fmt.Errorf("store: encoding %s: %w", d.path, err)
		}
		if err := writeAtomic(filepath.Join(dir, d.path), b); err != nil {
			return fmt.Errorf("store: writing %s: %w", d.path, err)
		}
		m.Files = append(m.Files, manifestEntry{Path: d.path, SHA256: hashOf(b), Bytes: len(b)})
	}
	sort.Slice(m.Files, func(i, j int) bool { return m.Files[i].Path < m.Files[j].Path })
	mb, err := encode(m)
	if err != nil {
		return fmt.Errorf("store: encoding manifest: %w", err)
	}
	if err := writeAtomic(filepath.Join(dir, manifestFile), mb); err != nil {
		return fmt.Errorf("store: writing manifest: %w", err)
	}
	// A previous save may have written machine.json this one doesn't carry;
	// remove it only after the new manifest landed, so a crash anywhere
	// above leaves the old manifest with every file it references intact.
	if a.Machine == nil {
		os.Remove(filepath.Join(dir, machineFile))
	}
	return nil
}

// Load reads, hash-verifies and decodes the named artifact.
func (s *Store) Load(name string) (*Artifact, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	return LoadDir(filepath.Join(s.dir, name))
}

// LoadDir loads an artifact directly from its directory (one containing
// manifest.json). The artifact's name is taken from the manifest.
func LoadDir(dir string) (*Artifact, error) {
	mb, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(mb, &m); err != nil {
		return nil, fmt.Errorf("store: decoding manifest in %s: %w", dir, err)
	}
	if m.FormatVersion != FormatVersion {
		return nil, fmt.Errorf("store: artifact %s has format version %d, this build reads %d",
			dir, m.FormatVersion, FormatVersion)
	}
	files := make(map[string][]byte, len(m.Files))
	for _, f := range m.Files {
		if filepath.Base(f.Path) != f.Path {
			return nil, fmt.Errorf("store: manifest in %s references non-local path %q", dir, f.Path)
		}
		b, err := os.ReadFile(filepath.Join(dir, f.Path))
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		if got := hashOf(b); got != f.SHA256 {
			return nil, fmt.Errorf("store: %s/%s content hash %s does not match manifest %s (corrupt or hand-edited artifact)",
				dir, f.Path, got[:12], f.SHA256[:min(12, len(f.SHA256))])
		}
		files[f.Path] = b
	}

	pmb, ok := files[modelFile]
	if !ok {
		return nil, fmt.Errorf("store: artifact %s has no %s", dir, modelFile)
	}
	var pm persistedModel
	if err := json.Unmarshal(pmb, &pm); err != nil {
		return nil, fmt.Errorf("store: decoding %s: %w", modelFile, err)
	}
	if len(pm.W) != pm.FeatureDim {
		return nil, fmt.Errorf("store: artifact %s: %d weights, declared dim %d", dir, len(pm.W), pm.FeatureDim)
	}
	if pm.FeatureDim > feature.Dim {
		return nil, fmt.Errorf("store: artifact %s was trained with feature dim %d, this build encodes only %d",
			dir, pm.FeatureDim, feature.Dim)
	}
	// A smaller dim means the model predates features appended since (the
	// encoding only ever grows at the tail). The weights load unchanged —
	// feature.Vector.Dot treats indices past len(W) as zero weight — so the
	// artifact keeps scoring exactly as it did when trained.
	a := &Artifact{
		Name:  m.Name,
		Model: &svmrank.Model{W: pm.W, C: pm.C},
	}
	if b, ok := files[metaFile]; ok {
		if err := json.Unmarshal(b, &a.Meta); err != nil {
			return nil, fmt.Errorf("store: decoding %s: %w", metaFile, err)
		}
	}
	if b, ok := files[machineFile]; ok {
		a.Machine = &machine.Machine{}
		if err := json.Unmarshal(b, a.Machine); err != nil {
			return nil, fmt.Errorf("store: decoding %s: %w", machineFile, err)
		}
		if err := a.Machine.Validate(); err != nil {
			return nil, fmt.Errorf("store: artifact %s: %w", dir, err)
		}
	}
	return a, nil
}

// Info summarizes one stored artifact for listings.
type Info struct {
	Name string `json:"name"`
	Meta Meta   `json:"meta"`
	// ContentHash identifies the artifact's exact content: the hash of its
	// manifest, which in turn hashes every file.
	ContentHash string `json:"content_hash"`
}

// List returns the artifacts in the store, sorted by name. Subdirectories
// without a manifest are skipped (not errors), so a store can live alongside
// unrelated files. Listing reads only the manifest and the (hash-verified)
// meta document — not the weights — so it stays cheap for large stores; a
// subsequent Load performs the full verification.
func (s *Store) List() ([]Info, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var out []Info
	for _, e := range entries {
		if !e.IsDir() || validName(e.Name()) != nil {
			continue
		}
		dir := filepath.Join(s.dir, e.Name())
		mb, err := os.ReadFile(filepath.Join(dir, manifestFile))
		if err != nil {
			continue // not an artifact
		}
		var m manifest
		if err := json.Unmarshal(mb, &m); err != nil {
			return nil, fmt.Errorf("store: decoding manifest of %q: %w", e.Name(), err)
		}
		if m.FormatVersion != FormatVersion {
			return nil, fmt.Errorf("store: artifact %q has format version %d, this build reads %d",
				e.Name(), m.FormatVersion, FormatVersion)
		}
		info := Info{Name: e.Name(), ContentHash: hashOf(mb)}
		for _, f := range m.Files {
			if f.Path != metaFile {
				continue
			}
			b, err := os.ReadFile(filepath.Join(dir, metaFile))
			if err != nil {
				return nil, fmt.Errorf("store: artifact %q: %w", e.Name(), err)
			}
			if got := hashOf(b); got != f.SHA256 {
				return nil, fmt.Errorf("store: %s/%s content hash does not match manifest (corrupt artifact)", e.Name(), metaFile)
			}
			if err := json.Unmarshal(b, &info.Meta); err != nil {
				return nil, fmt.Errorf("store: artifact %q: decoding %s: %w", e.Name(), metaFile, err)
			}
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// LoadPath loads an artifact from either an artifact directory (one holding
// a manifest.json) or a store root, where it picks the artifact named
// "default" or, failing that, the store's only artifact.
func LoadPath(path string) (*Artifact, error) {
	if _, err := os.Stat(filepath.Join(path, manifestFile)); err == nil {
		return LoadDir(path)
	}
	st, err := Open(path)
	if err != nil {
		return nil, err
	}
	infos, err := st.List()
	if err != nil {
		return nil, err
	}
	switch {
	case len(infos) == 0:
		return nil, fmt.Errorf("store: no artifacts in %s", path)
	case len(infos) == 1:
		return st.Load(infos[0].Name)
	}
	for _, in := range infos {
		if in.Name == "default" {
			return st.Load("default")
		}
	}
	names := make([]string, len(infos))
	for i, in := range infos {
		names[i] = in.Name
	}
	return nil, fmt.Errorf("store: %s holds %d artifacts (%s) and none is named \"default\"; pass the artifact directory",
		path, len(infos), strings.Join(names, ", "))
}
