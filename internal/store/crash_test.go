package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/feature"
	"repro/internal/svmrank"
)

// Internal crash-consistency tests: they reach the testHookBeforeRename hook
// to simulate a kill between writeAtomic's tmp write and its rename, and the
// orphan sweep that cleans up afterwards.

func crashArtifact(name string) *Artifact {
	w := make([]float64, feature.Dim)
	for i := range w {
		w[i] = float64(i%7) - 3
	}
	return &Artifact{
		Name:  name,
		Model: &svmrank.Model{W: w, C: 3},
		Meta:  Meta{FeatureDim: feature.Dim},
	}
}

// withCrashOn installs a hook that panics (as a stand-in for SIGKILL) the
// first time a rename would publish a file whose name contains target.
func withCrashOn(t *testing.T, target string) {
	t.Helper()
	fired := false
	testHookBeforeRename = func(tmp, path string) {
		if !fired && strings.Contains(filepath.Base(path), target) {
			fired = true
			panic("injected crash before rename of " + path)
		}
	}
	t.Cleanup(func() { testHookBeforeRename = nil })
}

func expectPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("injected crash did not fire")
		}
	}()
	f()
}

// TestTornWriteNewArtifact kills Save between writing the first document's
// tmp file and renaming it: the directory must not become a half-artifact —
// no manifest means List skips it and Load refuses it — and the orphaned tmp
// is swept by a later Open once past the grace age.
func TestTornWriteNewArtifact(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	withCrashOn(t, modelFile)
	expectPanic(t, func() { st.Save(crashArtifact("m")) })
	testHookBeforeRename = nil

	if _, err := st.Load("m"); err == nil {
		t.Fatal("half-written artifact loaded")
	}
	infos, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 0 {
		t.Fatalf("half-written artifact listed: %+v", infos)
	}
	// The kill left the tmp file behind.
	tmps := findTmp(t, filepath.Join(dir, "m"))
	if len(tmps) != 1 {
		t.Fatalf("want exactly 1 orphaned tmp after the crash, found %v", tmps)
	}
	// Within the grace window, reopening must NOT sweep it (it could be a
	// live writer's file); once aged out, it must.
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if got := findTmp(t, filepath.Join(dir, "m")); len(got) != 1 {
		t.Fatalf("fresh tmp swept inside grace window: %v", got)
	}
	old := time.Now().Add(-2 * tmpSweepAge)
	if err := os.Chtimes(tmps[0], old, old); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if got := findTmp(t, filepath.Join(dir, "m")); len(got) != 0 {
		t.Fatalf("aged orphan tmp survived Open: %v", got)
	}
	// The store is not wedged: re-running Save completes the artifact.
	if err := st.Save(crashArtifact("m")); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load("m"); err != nil {
		t.Fatalf("Save after crash did not repair the artifact: %v", err)
	}
}

func findTmp(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	return out
}

// TestTornWriteResave kills a re-Save before the manifest rename, after the
// document renames: the documented contract is fail-stop — Load must reject
// the mixed directory loudly (old manifest, new documents), never return a
// silently mixed artifact — and a re-run of Save repairs it.
func TestTornWriteResave(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(crashArtifact("m")); err != nil {
		t.Fatal(err)
	}
	v2 := crashArtifact("m")
	v2.Model.W[0] = 42 // distinguishable new content
	withCrashOn(t, manifestFile)
	expectPanic(t, func() { st.Save(v2) })
	testHookBeforeRename = nil

	if a, err := st.Load("m"); err == nil {
		// Loading may only succeed if it returns a consistent artifact; with
		// model.json already replaced and the old manifest in place, the hash
		// check must have failed — reaching here means mixing went unnoticed.
		t.Fatalf("mixed artifact loaded silently (W[0]=%v)", a.Model.W[0])
	}
	if err := st.Save(v2); err != nil {
		t.Fatal(err)
	}
	a, err := st.Load("m")
	if err != nil {
		t.Fatalf("Save after crash did not repair: %v", err)
	}
	if a.Model.W[0] != 42 {
		t.Fatalf("repair did not land v2: W[0]=%v", a.Model.W[0])
	}
}

// TestTornWriteCurrentPointer kills SetCurrent before current.json's rename:
// the pointer must still read as its previous value — a promotion is atomic
// at the pointer flip.
func TestTornWriteCurrentPointer(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"a", "b"} {
		if err := st.Save(crashArtifact(n)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.SetCurrent("a", Promotion{Reason: "manual"}); err != nil {
		t.Fatal(err)
	}
	withCrashOn(t, currentFile)
	expectPanic(t, func() { st.SetCurrent("b", Promotion{Reason: "canary-pass"}) })
	testHookBeforeRename = nil

	cur, hist, err := st.Current()
	if err != nil {
		t.Fatalf("pointer unreadable after crash: %v", err)
	}
	if cur != "a" {
		t.Fatalf("pointer after mid-promotion crash = %q, want previous %q", cur, "a")
	}
	if len(hist) != 1 || hist[0].Reason != "manual" {
		t.Fatalf("history after crash = %+v, want the pre-crash entry", hist)
	}
	// Retrying the promotion completes it.
	if err := st.SetCurrent("b", Promotion{Reason: "canary-pass"}); err != nil {
		t.Fatal(err)
	}
	cur, hist, err = st.Current()
	if err != nil || cur != "b" {
		t.Fatalf("retried promotion: cur=%q err=%v", cur, err)
	}
	if len(hist) != 2 || hist[1].Prev != "a" {
		t.Fatalf("history after retry = %+v", hist)
	}
}

// TestCurrentPointer covers the pointer API away from crashes: unset stores,
// refusing absent artifacts, corrupt pointers failing loudly but being
// repairable, and the bounded history.
func TestCurrentPointer(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cur, hist, err := st.Current(); err != nil || cur != "" || hist != nil {
		t.Fatalf("fresh store pointer: %q %v %v, want empty", cur, hist, err)
	}
	if err := st.SetCurrent("ghost", Promotion{}); err == nil {
		t.Fatal("SetCurrent accepted an artifact that does not exist")
	}
	if err := st.Save(crashArtifact("m")); err != nil {
		t.Fatal(err)
	}
	if err := st.SetCurrent("m", Promotion{Tau: 0.9, Reason: "canary-pass"}); err != nil {
		t.Fatal(err)
	}
	cur, hist, err := st.Current()
	if err != nil || cur != "m" {
		t.Fatalf("Current = %q, %v", cur, err)
	}
	if len(hist) != 1 || hist[0].Tau != 0.9 || hist[0].Prev != "" {
		t.Fatalf("history = %+v", hist)
	}

	// Corrupt pointer: loud error, no guessing...
	if err := os.WriteFile(filepath.Join(dir, currentFile), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Current(); err == nil {
		t.Fatal("corrupt current.json read back without error")
	}
	// ...and SetCurrent repairs it rather than refusing.
	if err := st.SetCurrent("m", Promotion{Reason: "repair"}); err != nil {
		t.Fatal(err)
	}
	if cur, _, err := st.Current(); err != nil || cur != "m" {
		t.Fatalf("after repair: %q %v", cur, err)
	}

	// History is bounded.
	for i := 0; i < maxPromotionHistory+13; i++ {
		if err := st.SetCurrent("m", Promotion{Reason: "churn"}); err != nil {
			t.Fatal(err)
		}
	}
	if _, hist, _ := st.Current(); len(hist) != maxPromotionHistory {
		t.Fatalf("history length %d, want capped at %d", len(hist), maxPromotionHistory)
	}
}
