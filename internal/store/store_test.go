package store_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	stenciltune "repro"
	"repro/internal/feature"
	"repro/internal/machine"
	"repro/internal/stencil"
	"repro/internal/store"
	"repro/internal/svmrank"
	"repro/internal/tunespace"
)

// update regenerates the committed golden fixture:
//
//	go test ./internal/store -run TestGolden -update
//
// The fixture is a real (tiny) trained model, so the golden files exercise
// the exact bytes a production save emits.
var update = flag.Bool("update", false, "regenerate the golden model fixture under testdata/")

const (
	fixtureStore = "testdata"
	fixtureName  = "tiny"
)

// goldenCase pins the score of one (instance, vector) prediction. Scores are
// stored as JSON float64s, which round-trip exactly, so the comparison below
// is bit-exact.
type goldenCase struct {
	Kernel string           `json:"kernel"`
	Size   []int            `json:"size"`
	Vector tunespace.Vector `json:"vector"`
	Score  float64          `json:"score"`
}

func goldenInstances(t *testing.T) []stencil.Instance {
	t.Helper()
	var out []stencil.Instance
	for _, c := range []struct {
		name string
		size stencil.Size
	}{
		{"laplacian", stencil.Size3D(64, 64, 64)},
		{"blur", stencil.Size2D(256, 256)},
		{"tricubic", stencil.Size3D(96, 96, 96)},
	} {
		k, err := stencil.KernelByName(c.name)
		if err != nil {
			t.Fatalf("KernelByName(%q): %v", c.name, err)
		}
		out = append(out, stencil.Instance{Kernel: k, Size: c.size})
	}
	return out
}

func scoreCases(t *testing.T, m *svmrank.Model) []goldenCase {
	t.Helper()
	enc := feature.NewEncoder()
	var out []goldenCase
	for _, q := range goldenInstances(t) {
		cands := tunespace.NewSpace(q.Kernel.Dims()).Predefined()
		for i := 0; i < 8; i++ {
			tv := cands[i*len(cands)/8]
			out = append(out, goldenCase{
				Kernel: q.Kernel.Name,
				Size:   []int{q.Size.X, q.Size.Y, q.Size.Z},
				Vector: tv,
				Score:  m.Score(enc.Encode(q, tv)),
			})
		}
	}
	return out
}

// TestGoldenFixture pins the on-disk format: the committed fixture must load,
// re-save to byte-identical files, and reproduce the committed prediction
// scores exactly. Any format or scoring change shows up as an explicit diff
// of testdata/ (regenerate deliberately with -update).
func TestGoldenFixture(t *testing.T) {
	if *update {
		model, _, err := stenciltune.Train(stenciltune.TrainOptions{TrainingPoints: 64, Seed: 1})
		if err != nil {
			t.Fatalf("training fixture model: %v", err)
		}
		if err := stenciltune.SaveModel(fixtureStore, fixtureName, model); err != nil {
			t.Fatalf("saving fixture: %v", err)
		}
		a, err := store.LoadPath(filepath.Join(fixtureStore, fixtureName))
		if err != nil {
			t.Fatalf("reloading fixture: %v", err)
		}
		b, err := json.MarshalIndent(scoreCases(t, a.Model), "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(fixtureStore, "golden_scores.json"), append(b, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Log("fixture regenerated")
	}

	a, err := store.LoadPath(filepath.Join(fixtureStore, fixtureName))
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	if a.Name != fixtureName {
		t.Errorf("fixture name = %q, want %q", a.Name, fixtureName)
	}
	if a.Meta.DatasetFingerprint == "" || a.Meta.TrainingPoints == 0 {
		t.Errorf("fixture meta lacks provenance: %+v", a.Meta)
	}
	if a.Machine == nil {
		t.Fatal("fixture has no machine description")
	}

	// Byte-stable: saving the loaded artifact must reproduce the committed
	// files exactly.
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(a); err != nil {
		t.Fatalf("re-saving fixture: %v", err)
	}
	for _, f := range []string{"manifest.json", "model.json", "meta.json", "machine.json"} {
		want, err := os.ReadFile(filepath.Join(fixtureStore, fixtureName, f))
		if err != nil {
			t.Fatalf("fixture file %s: %v", f, err)
		}
		got, err := os.ReadFile(filepath.Join(st.Dir(), fixtureName, f))
		if err != nil {
			t.Fatalf("re-saved file %s: %v", f, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: re-saved bytes differ from committed fixture (format drift — regenerate with -update only if intended)", f)
		}
	}

	// Score-identical predictions.
	gb, err := os.ReadFile(filepath.Join(fixtureStore, "golden_scores.json"))
	if err != nil {
		t.Fatalf("golden scores: %v", err)
	}
	var want []goldenCase
	if err := json.Unmarshal(gb, &want); err != nil {
		t.Fatal(err)
	}
	got := scoreCases(t, a.Model)
	if len(got) != len(want) {
		t.Fatalf("%d golden cases, recomputed %d", len(want), len(got))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("case %d (%s %v %v): score %v, golden %v",
				i, want[i].Kernel, want[i].Size, want[i].Vector, got[i].Score, want[i].Score)
		}
	}
}

func testArtifact(name string) *store.Artifact {
	w := make([]float64, feature.Dim)
	for i := range w {
		// Deterministic, irregular weights exercising exact float round-trip.
		w[i] = float64(i*i%97)/97.0 - 0.5
	}
	return &store.Artifact{
		Name:  name,
		Model: &svmrank.Model{W: w, C: 3},
		Meta: store.Meta{
			FeatureDim:         feature.Dim,
			TrainingPoints:     64,
			Seed:               1,
			Mode:               "sim",
			DatasetFingerprint: "deadbeef",
		},
		Machine: machine.XeonE52680v3(),
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	a := testArtifact("m1")
	if err := st.Save(a); err != nil {
		t.Fatal(err)
	}
	got, err := st.Load("m1")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Model, a.Model) {
		t.Error("model did not round-trip")
	}
	if got.Meta.FeatureDim != feature.Dim || got.Meta.DatasetFingerprint != "deadbeef" {
		t.Errorf("meta did not round-trip: %+v", got.Meta)
	}
	if !reflect.DeepEqual(got.Machine, a.Machine) {
		t.Error("machine did not round-trip")
	}

	// save -> load -> save must be byte-stable.
	st2, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.Save(got); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"manifest.json", "model.json", "meta.json", "machine.json"} {
		b1, err := os.ReadFile(filepath.Join(st.Dir(), "m1", f))
		if err != nil {
			t.Fatal(err)
		}
		b2, err := os.ReadFile(filepath.Join(st2.Dir(), "m1", f))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			t.Errorf("%s: save→load→save not byte-stable", f)
		}
	}
}

func TestCorruptionDetected(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(testArtifact("m")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(st.Dir(), "m", "model.json")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 1
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load("m"); err == nil {
		t.Fatal("loading a corrupted artifact succeeded")
	}
}

func TestListAndLoadPath(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"zeta", "default", "alpha"} {
		if err := st.Save(testArtifact(name)); err != nil {
			t.Fatal(err)
		}
	}
	infos, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 3 || infos[0].Name != "alpha" || infos[1].Name != "default" || infos[2].Name != "zeta" {
		t.Fatalf("List = %+v, want alpha, default, zeta", infos)
	}
	for _, in := range infos {
		if in.ContentHash == "" {
			t.Errorf("artifact %s has empty content hash", in.Name)
		}
	}

	// Store root with several artifacts resolves to "default".
	a, err := store.LoadPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name != "default" {
		t.Errorf("LoadPath(root) = %q, want default", a.Name)
	}
	// Direct artifact directory works too.
	a, err = store.LoadPath(filepath.Join(dir, "zeta"))
	if err != nil {
		t.Fatal(err)
	}
	if a.Name != "zeta" {
		t.Errorf("LoadPath(artifact dir) = %q, want zeta", a.Name)
	}

	// Invalid names are rejected before touching the filesystem.
	if _, err := st.Load("../escape"); err == nil {
		t.Error("Load with path traversal succeeded")
	}
	if err := st.Save(&store.Artifact{Name: ".hidden", Model: testArtifact("x").Model}); err == nil {
		t.Error("Save with hidden name succeeded")
	}
}
