// Package buildinfo exposes the version identity of a stenciltune binary,
// derived from the build metadata the Go toolchain embeds. Every cmd binary
// offers a -version flag backed by it and the serving subsystem reports it
// from /healthz, so a fleet of tuning servers can be audited for build skew.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Info is the resolved build identity.
type Info struct {
	// Version is the main-module version ("(devel)" for plain `go build`
	// from a working tree, a semver tag for `go install module@version`).
	Version string
	// Commit is the VCS revision the binary was built from, when the build
	// had VCS metadata (empty otherwise). Dirty working trees get a
	// "+dirty" suffix.
	Commit string
	// GoVersion is the toolchain that built the binary.
	GoVersion string
}

// Read resolves the build identity of the running binary. It never fails:
// binaries built without module or VCS metadata (e.g. test binaries) degrade
// to "unknown" fields.
func Read() Info {
	info := Info{Version: "unknown", GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	if bi.Main.Version != "" {
		info.Version = bi.Main.Version
	}
	var revision string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			revision = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if revision != "" {
		if len(revision) > 12 {
			revision = revision[:12]
		}
		if dirty {
			revision += "+dirty"
		}
		info.Commit = revision
	}
	return info
}

// String renders the identity as a one-line banner for -version output.
func (i Info) String() string {
	if i.Commit == "" {
		return fmt.Sprintf("stenciltune %s (%s)", i.Version, i.GoVersion)
	}
	return fmt.Sprintf("stenciltune %s (commit %s, %s)", i.Version, i.Commit, i.GoVersion)
}
