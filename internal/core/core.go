// Package core is the autotuner of the paper: given a trained
// ordinal-regression model, it ranks candidate tuning vectors for an unseen
// stencil instance without executing them, and returns the top-ranked one
// (Sec. V-C). It supports the standalone mode evaluated in Sec. VI-A (rank a
// predefined configuration set) and the search-accelerator coupling sketched
// in the paper's future work (rank-filter candidates, then spend a small
// measurement budget on the top of the ranking).
package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/dataset"
	"repro/internal/feature"
	"repro/internal/search"
	"repro/internal/stencil"
	"repro/internal/svmrank"
	"repro/internal/tunespace"
)

// Tuner ranks tuning vectors for stencil instances with a trained model.
type Tuner struct {
	Model   *svmrank.Model
	Encoder *feature.Encoder
}

// New returns a tuner around a trained model with the default encoder.
func New(model *svmrank.Model) *Tuner {
	return &Tuner{Model: model, Encoder: feature.NewEncoder()}
}

// encode validates and feature-encodes a candidate set for an instance.
func (t *Tuner) encode(q stencil.Instance, cands []tunespace.Vector) ([]feature.Vector, error) {
	if t.Model == nil {
		return nil, errors.New("core: tuner has no model")
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if len(cands) == 0 {
		return nil, errors.New("core: empty candidate set")
	}
	xs := make([]feature.Vector, len(cands))
	for i, tv := range cands {
		if err := tv.Validate(q.Kernel.Dims()); err != nil {
			return nil, fmt.Errorf("core: candidate %d: %w", i, err)
		}
		xs[i] = t.Encoder.Encode(q, tv)
	}
	return xs, nil
}

// Rank returns the candidate indices ordered best-first according to the
// model. No execution happens; scoring runs through Model.ScoreBatch.
func (t *Tuner) Rank(q stencil.Instance, cands []tunespace.Vector) ([]int, error) {
	xs, err := t.encode(q, cands)
	if err != nil {
		return nil, err
	}
	return t.Model.Rank(xs), nil
}

// Best returns the top-ranked candidate. Unlike Rank it never sorts — an
// ArgBestBatch scan over the scores suffices (ties resolve to the earliest
// candidate, exactly like Rank's first entry).
func (t *Tuner) Best(q stencil.Instance, cands []tunespace.Vector) (tunespace.Vector, error) {
	xs, err := t.encode(q, cands)
	if err != nil {
		return tunespace.Vector{}, err
	}
	return cands[t.Model.ArgBestBatch(xs)], nil
}

// Scores returns the model score of every candidate (higher ranks better),
// encoded and scored in one ScoreBatch call. The tuning server's scoring
// endpoint is backed by it.
func (t *Tuner) Scores(q stencil.Instance, cands []tunespace.Vector) ([]float64, error) {
	xs, err := t.encode(q, cands)
	if err != nil {
		return nil, err
	}
	return t.Model.ScoreBatch(xs), nil
}

// RankScored returns Rank's permutation together with every candidate's
// score (index-aligned with cands), paying encoding and scoring once.
func (t *Tuner) RankScored(q stencil.Instance, cands []tunespace.Vector) ([]int, []float64, error) {
	xs, err := t.encode(q, cands)
	if err != nil {
		return nil, nil, err
	}
	order, scores := t.Model.RankWithScores(xs)
	return order, scores, nil
}

// TunePredefined runs the standalone mode of Sec. VI-A: rank the
// hierarchically-sampled power-of-two predefined set for the instance's
// dimensionality (1600 configurations for 2-D, 8640 for 3-D) and return the
// top-ranked vector together with the ranking time.
func (t *Tuner) TunePredefined(q stencil.Instance) (tunespace.Vector, time.Duration, error) {
	if err := q.Validate(); err != nil {
		return tunespace.Vector{}, 0, err
	}
	cands := tunespace.NewSpace(q.Kernel.Dims()).Predefined()
	start := time.Now()
	best, err := t.Best(q, cands)
	return best, time.Since(start), err
}

// HybridResult is the outcome of the rank-then-measure coupling.
type HybridResult struct {
	Best        tunespace.Vector
	BestValue   float64
	Evaluations int // objective calls actually spent
	RankedFrom  int // candidate-set size that was ranked for free
}

// HybridTopK implements the paper's future-work coupling of the ranking
// model with iterative compilation: rank the full candidate set without
// executing anything, then spend the measurement budget only on the top-k
// ranked candidates and return the measured best. With k ≪ |cands| this
// turns a 1024-evaluation search into a handful of runs. The k measurements
// are submitted as one batch (a concurrency-capable objective overlaps
// them); the winner is picked in rank order, so results never depend on the
// batch schedule.
func (t *Tuner) HybridTopK(q stencil.Instance, cands []tunespace.Vector, k int, obj search.BatchObjective) (HybridResult, error) {
	if k <= 0 {
		return HybridResult{}, fmt.Errorf("core: k = %d must be positive", k)
	}
	order, err := t.Rank(q, cands)
	if err != nil {
		return HybridResult{}, err
	}
	k = min(k, len(order))
	top := make([]tunespace.Vector, k)
	for i := range top {
		top[i] = cands[order[i]]
	}
	res := HybridResult{RankedFrom: len(cands), Evaluations: k}
	for i, val := range obj(top) {
		if i == 0 || val < res.BestValue {
			res.Best = top[i]
			res.BestValue = val
		}
	}
	return res, nil
}

// SeededSearch runs an iterative search engine whose initial exploration is
// biased by the model: the engine's random objective evaluations are
// intercepted so the first len(seeds) evaluations probe the model's
// top-ranked candidates. This is the "speed up iterative compilation"
// direction of the paper's conclusion. The seeds are ranked over the
// fusion-extended predefined set, so the model can suggest temporally fused
// configurations on the same footing as the engine's random exploration
// (which draws the full space, fusion depth included).
func (t *Tuner) SeededSearch(q stencil.Instance, engine search.Engine, obj search.Objective,
	budget, seedCount int, seed int64) (search.Result, error) {

	space := tunespace.NewSpace(q.Kernel.Dims())
	cands := space.PredefinedFused()
	order, err := t.Rank(q, cands)
	if err != nil {
		return search.Result{}, err
	}
	if seedCount > len(order) {
		seedCount = len(order)
	}
	// Queue of model-suggested vectors, consumed by the first evaluations.
	queue := make([]tunespace.Vector, 0, seedCount)
	for i := 0; i < seedCount; i++ {
		queue = append(queue, cands[order[i]])
	}
	intercepted := func(v tunespace.Vector) float64 {
		if len(queue) > 0 {
			v = queue[0]
			queue = queue[1:]
		}
		return obj(v)
	}
	return engine.Search(space, intercepted, budget, seed), nil
}

// Evaluator adapters -------------------------------------------------------

// ObjectiveFor wraps an Evaluator into a search objective for one instance.
func ObjectiveFor(eval dataset.Evaluator, q stencil.Instance) search.Objective {
	return func(v tunespace.Vector) float64 { return eval.Runtime(q, v) }
}

// BatchObjectiveFor wraps a BatchEvaluator into a search batch objective for
// one instance; engines running SearchBatch through it overlap each
// generation's evaluations as far as the evaluator allows.
func BatchObjectiveFor(eval dataset.BatchEvaluator, q stencil.Instance) search.BatchObjective {
	return func(vs []tunespace.Vector) []float64 { return eval.RuntimeBatch(q, vs) }
}

// TopOfRanking is a convenience for analyses: it returns the candidates
// sorted best-first according to the model (the full permutation applied).
func (t *Tuner) TopOfRanking(q stencil.Instance, cands []tunespace.Vector) ([]tunespace.Vector, error) {
	order, err := t.Rank(q, cands)
	if err != nil {
		return nil, err
	}
	out := make([]tunespace.Vector, len(order))
	for i, o := range order {
		out[i] = cands[o]
	}
	return out, nil
}

// OracleBest returns the truly best candidate under the evaluator — the
// bound the paper notes standalone tuning cannot exceed ("the performance we
// obtain ... is bound by the solution performing the best in the pre-defined
// set"). Used by the experiment harness and tests.
func OracleBest(eval dataset.Evaluator, q stencil.Instance, cands []tunespace.Vector) (tunespace.Vector, float64) {
	type scored struct {
		v tunespace.Vector
		r float64
	}
	best := scored{r: -1}
	for _, v := range cands {
		r := eval.Runtime(q, v)
		if best.r < 0 || r < best.r {
			best = scored{v, r}
		}
	}
	return best.v, best.r
}

// RankQuality computes the fraction of the oracle's performance the model's
// top-1 achieves on a candidate set: oracleRuntime / chosenRuntime in (0,1].
func RankQuality(eval dataset.Evaluator, t *Tuner, q stencil.Instance, cands []tunespace.Vector) (float64, error) {
	chosen, err := t.Best(q, cands)
	if err != nil {
		return 0, err
	}
	_, oracle := OracleBest(eval, q, cands)
	return oracle / eval.Runtime(q, chosen), nil
}

// SortVectorsByRuntime is a test/analysis helper ordering vectors by their
// evaluated runtime ascending.
func SortVectorsByRuntime(eval dataset.Evaluator, q stencil.Instance, vs []tunespace.Vector) []tunespace.Vector {
	out := append([]tunespace.Vector(nil), vs...)
	sort.SliceStable(out, func(a, b int) bool {
		return eval.Runtime(q, out[a]) < eval.Runtime(q, out[b])
	})
	return out
}
