package core

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/machine"
	"repro/internal/perfmodel"
	"repro/internal/search"
	"repro/internal/stencil"
	"repro/internal/svmrank"
	"repro/internal/trainer"
	"repro/internal/tunespace"
)

var (
	sharedEval  dataset.Evaluator
	sharedTuner *Tuner
)

// trainOnce trains a single shared model for all tests in this package.
func trainOnce(t *testing.T) (dataset.Evaluator, *Tuner) {
	t.Helper()
	if sharedTuner != nil {
		return sharedEval, sharedTuner
	}
	eval := perfmodel.New(machine.XeonE52680v3())
	res, err := trainer.Train(eval, trainer.DefaultConfig(3840, 1))
	if err != nil {
		t.Fatal(err)
	}
	sharedEval = eval
	sharedTuner = New(res.Model)
	return sharedEval, sharedTuner
}

func lap128() stencil.Instance {
	return stencil.Instance{Kernel: stencil.Laplacian(), Size: stencil.Size3D(128, 128, 128)}
}

func TestRankErrors(t *testing.T) {
	_, tuner := trainOnce(t)
	q := lap128()
	if _, err := tuner.Rank(q, nil); err == nil {
		t.Error("empty candidates accepted")
	}
	if _, err := tuner.Rank(q, []tunespace.Vector{{Bx: 0}}); err == nil {
		t.Error("invalid candidate accepted")
	}
	bad := stencil.Instance{Kernel: nil}
	if _, err := tuner.Rank(bad, []tunespace.Vector{{Bx: 8, By: 8, Bz: 8, U: 0, C: 1}}); err == nil {
		t.Error("invalid instance accepted")
	}
	empty := &Tuner{}
	if _, err := empty.Rank(q, []tunespace.Vector{{Bx: 8, By: 8, Bz: 8, U: 0, C: 1}}); err == nil {
		t.Error("model-less tuner accepted")
	}
}

func TestRankReturnsPermutation(t *testing.T) {
	_, tuner := trainOnce(t)
	q := lap128()
	cands := tunespace.NewSpace(3).Predefined()[:200]
	order, err := tuner.Rank(q, cands)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != len(cands) {
		t.Fatalf("order length %d != %d", len(order), len(cands))
	}
	seen := make([]bool, len(cands))
	for _, o := range order {
		if o < 0 || o >= len(cands) || seen[o] {
			t.Fatal("not a permutation")
		}
		seen[o] = true
	}
}

func TestBestBeatsMedianOfPredefinedSet(t *testing.T) {
	// The standalone tuner's top-1 must be much better than a random pick:
	// check it beats the median runtime of the candidate set on every
	// Table III benchmark.
	eval, tuner := trainOnce(t)
	for _, q := range stencil.Benchmarks() {
		cands := tunespace.NewSpace(q.Kernel.Dims()).Predefined()
		best, err := tuner.Best(q, cands)
		if err != nil {
			t.Fatalf("%s: %v", q.ID(), err)
		}
		chosen := eval.Runtime(q, best)
		runtimes := make([]float64, 0, len(cands))
		for _, v := range cands {
			runtimes = append(runtimes, eval.Runtime(q, v))
		}
		sorted := SortVectorsByRuntime(eval, q, cands)
		median := eval.Runtime(q, sorted[len(sorted)/2])
		if chosen > median {
			t.Errorf("%s: top-1 runtime %.5f worse than candidate median %.5f", q.ID(), chosen, median)
		}
		_ = runtimes
	}
}

func TestRankQualityDecentAcrossBenchmarks(t *testing.T) {
	// Fig. 4's shape: ordinal regression top-1 lands near the best of the
	// predefined set on most benchmarks. We require ≥50% of oracle on
	// average and ≥25% in the worst case.
	eval, tuner := trainOnce(t)
	var sum float64
	worst := 1.0
	worstID := ""
	for _, q := range stencil.Benchmarks() {
		cands := tunespace.NewSpace(q.Kernel.Dims()).Predefined()
		quality, err := RankQuality(eval, tuner, q, cands)
		if err != nil {
			t.Fatalf("%s: %v", q.ID(), err)
		}
		t.Logf("%-26s quality=%.2f", q.ID(), quality)
		sum += quality
		if quality < worst {
			worst, worstID = quality, q.ID()
		}
	}
	avg := sum / float64(len(stencil.Benchmarks()))
	t.Logf("avg=%.2f worst=%.2f (%s)", avg, worst, worstID)
	if avg < 0.5 {
		t.Errorf("average rank quality %.2f, want ≥ 0.5", avg)
	}
	if worst < 0.25 {
		t.Errorf("worst rank quality %.2f (%s), want ≥ 0.25", worst, worstID)
	}
}

func TestTunePredefined(t *testing.T) {
	_, tuner := trainOnce(t)
	q := lap128()
	best, elapsed, err := tuner.TunePredefined(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := best.Validate(3); err != nil {
		t.Errorf("chosen vector invalid: %v", err)
	}
	if elapsed <= 0 {
		t.Error("elapsed not measured")
	}
	if _, _, err := tuner.TunePredefined(stencil.Instance{}); err == nil {
		t.Error("invalid instance accepted")
	}
}

func TestHybridTopK(t *testing.T) {
	eval, tuner := trainOnce(t)
	q := lap128()
	cands := tunespace.NewSpace(3).Predefined()
	obj := search.SequentialBatch(ObjectiveFor(eval, q))

	res, err := tuner.HybridTopK(q, cands, 16, obj)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != 16 {
		t.Errorf("evaluations = %d, want 16", res.Evaluations)
	}
	if res.RankedFrom != len(cands) {
		t.Errorf("RankedFrom = %d", res.RankedFrom)
	}
	// Hybrid with 16 measurements should beat the pure top-1.
	top1, err := tuner.Best(q, cands)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestValue > eval.Runtime(q, top1) {
		t.Error("hybrid top-16 worse than pure top-1 (it measures a superset)")
	}
	if _, err := tuner.HybridTopK(q, cands, 0, obj); err == nil {
		t.Error("k=0 accepted")
	}
	// k larger than the candidate set clamps.
	small := cands[:3]
	res, err = tuner.HybridTopK(q, small, 10, obj)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != 3 {
		t.Errorf("clamped evaluations = %d, want 3", res.Evaluations)
	}
}

func TestSeededSearchUsesModelSuggestions(t *testing.T) {
	eval, tuner := trainOnce(t)
	q := lap128()
	obj := ObjectiveFor(eval, q)

	res, err := tuner.SeededSearch(q, search.NewRandomSearch(), obj, 64, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations == 0 || res.Evaluations > 64 {
		t.Errorf("evaluations = %d", res.Evaluations)
	}
	// The seeded run's first evaluations probe model picks, so its best
	// after 16 evals should already be strong: compare with unseeded random.
	plain := search.NewRandomSearch().Search(tunespace.NewSpace(3), obj, 64, 1)
	if res.BestAfter(16) > plain.BestAfter(64)*1.5 {
		t.Errorf("seeded search after 16 evals (%.5f) much worse than random after 64 (%.5f)",
			res.BestAfter(16), plain.BestAfter(64))
	}
}

func TestOracleBestIsMinimum(t *testing.T) {
	eval, _ := trainOnce(t)
	q := lap128()
	cands := tunespace.NewSpace(3).Predefined()[:300]
	v, r := OracleBest(eval, q, cands)
	for _, c := range cands {
		if eval.Runtime(q, c) < r {
			t.Fatalf("oracle missed a better candidate")
		}
	}
	if err := v.Validate(3); err != nil {
		t.Errorf("oracle vector invalid: %v", err)
	}
}

func TestTopOfRanking(t *testing.T) {
	_, tuner := trainOnce(t)
	q := lap128()
	cands := tunespace.NewSpace(3).Predefined()[:50]
	sorted, err := tuner.TopOfRanking(q, cands)
	if err != nil {
		t.Fatal(err)
	}
	if len(sorted) != len(cands) {
		t.Fatalf("length %d", len(sorted))
	}
	best, err := tuner.Best(q, cands)
	if err != nil {
		t.Fatal(err)
	}
	if sorted[0] != best {
		t.Error("TopOfRanking[0] != Best")
	}
}

func TestNewUsesDefaultEncoder(t *testing.T) {
	m := &svmrank.Model{W: make([]float64, 1)}
	tuner := New(m)
	if tuner.Encoder == nil {
		t.Fatal("nil encoder")
	}
}

func TestSortVectorsByRuntime(t *testing.T) {
	eval, _ := trainOnce(t)
	q := lap128()
	vs := tunespace.NewSpace(3).Predefined()[:40]
	sorted := SortVectorsByRuntime(eval, q, vs)
	for i := 1; i < len(sorted); i++ {
		if eval.Runtime(q, sorted[i-1]) > eval.Runtime(q, sorted[i]) {
			t.Fatal("not sorted")
		}
	}
	if len(vs) != 40 {
		t.Fatal("input mutated")
	}
}

// TestBestMatchesRankHead guards the argmax fast path against the sorted
// ranking: both must pick the same winner, ties included.
func TestBestMatchesRankHead(t *testing.T) {
	_, tuner := trainOnce(t)
	q := lap128()
	cands := tunespace.NewSpace(3).Predefined()
	order, err := tuner.Rank(q, cands)
	if err != nil {
		t.Fatal(err)
	}
	best, err := tuner.Best(q, cands)
	if err != nil {
		t.Fatal(err)
	}
	if best != cands[order[0]] {
		t.Errorf("Best = %v, Rank head = %v", best, cands[order[0]])
	}
}

// TestHybridTopKBatchedMatchesSequential: the hybrid coupling must pick the
// same winner whether the top-k measurements run one at a time or fan out.
func TestHybridTopKBatchedMatchesSequential(t *testing.T) {
	eval, tuner := trainOnce(t)
	q := lap128()
	cands := tunespace.NewSpace(3).Predefined()

	seq, err := tuner.HybridTopK(q, cands, 16, search.SequentialBatch(ObjectiveFor(eval, q)))
	if err != nil {
		t.Fatal(err)
	}
	bat, err := tuner.HybridTopK(q, cands, 16, BatchObjectiveFor(dataset.Batched(eval, 4), q))
	if err != nil {
		t.Fatal(err)
	}
	if seq.Best != bat.Best || seq.BestValue != bat.BestValue || seq.Evaluations != bat.Evaluations {
		t.Errorf("batched hybrid diverged: %+v vs %+v", seq, bat)
	}
}

// TestBatchObjectiveForOrdering: values must land at their input indices.
func TestBatchObjectiveForOrdering(t *testing.T) {
	eval := perfmodel.New(machine.XeonE52680v3())
	q := lap128()
	obj := BatchObjectiveFor(dataset.Batched(eval, 8), q)
	space := tunespace.NewSpace(3)
	rng := rand.New(rand.NewSource(1))
	vs := space.RandomSet(rng, 50)
	got := obj(vs)
	for i, v := range vs {
		if want := eval.Runtime(q, v); got[i] != want {
			t.Fatalf("slot %d: %v != %v", i, got[i], want)
		}
	}
}
