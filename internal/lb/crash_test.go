package lb

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/server"
)

// Resilience with a real process kill: one replica of a two-backend fleet
// is a spawned child process that gets SIGKILLed mid-run. The contract:
//
//   - every client request converges on an answer throughout — transport
//     failover inside the balancer plus the client's retries mean the kill
//     loses no request;
//   - the balancer ejects the dead replica once the probes notice, and
//     readmits it after a restart on the same address;
//   - after readmission the replica takes traffic again (the ring
//     assignment survives the bounce, so its share of the keyspace comes
//     back to it).

const (
	lbCrashHelperEnv = "LB_CRASH_HELPER"
	lbCrashModelsEnv = "LB_CRASH_MODELS"
	lbCrashAddrEnv   = "LB_CRASH_ADDR"
	lbCrashFileEnv   = "LB_CRASH_ADDRFILE"
)

// TestLBBackendHelper is the replica child: a real stencil server on a real
// socket, serving until killed. A no-op unless spawned with the helper
// environment set.
func TestLBBackendHelper(t *testing.T) {
	if os.Getenv(lbCrashHelperEnv) != "1" {
		t.Skip("lb crash helper: only runs as a spawned child")
	}
	s, err := server.New(server.Config{ModelDir: os.Getenv(lbCrashModelsEnv), CacheSize: 256})
	if err != nil {
		fmt.Fprintf(os.Stderr, "helper server: %v\n", err)
		os.Exit(2)
	}
	addr := os.Getenv(lbCrashAddrEnv)
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "helper listen %s: %v\n", addr, err)
		os.Exit(2)
	}
	// Report the bound address atomically so the parent never reads a torn
	// file.
	file := os.Getenv(lbCrashFileEnv)
	tmp := file + ".tmp"
	if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
		os.Exit(2)
	}
	os.Rename(tmp, file)
	http.Serve(ln, s.Handler())
}

// spawnReplica starts the child replica and returns its base URL and the
// process handle. addr pins the listen address ("" = pick one).
func spawnReplica(t *testing.T, modelsDir, addr, addrFile string) (string, *exec.Cmd) {
	t.Helper()
	os.Remove(addrFile)
	cmd := exec.Command(os.Args[0], "-test.run", "^TestLBBackendHelper$")
	cmd.Env = append(os.Environ(),
		lbCrashHelperEnv+"=1",
		lbCrashModelsEnv+"="+modelsDir,
		lbCrashAddrEnv+"="+addr,
		lbCrashFileEnv+"="+addrFile,
	)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			url := "http://" + string(b)
			// The address file lands before Serve enters its accept loop;
			// wait until the replica actually answers.
			c := &http.Client{Timeout: time.Second}
			for time.Now().Before(deadline) {
				if resp, err := c.Get(url + "/readyz"); err == nil {
					resp.Body.Close()
					return url, cmd
				}
				time.Sleep(10 * time.Millisecond)
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("spawned replica never reported a serving address")
	return "", nil
}

func TestReplicaSIGKILLMidRun(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	dir := newStoreDir(t)
	stable := startBackend(t, dir)
	addrFile := filepath.Join(t.TempDir(), "addr")
	victimURL, victim := spawnReplica(t, dir, "", addrFile)

	b := newBalancer(t, Config{
		Backends:       []string{stable, victimURL},
		HealthInterval: 20 * time.Millisecond,
		EjectAfter:     2,
		ReadmitAfter:   2,
	})
	front := httptest.NewServer(b.Handler())
	t.Cleanup(front.Close)
	cl, err := client.New(client.Config{
		BaseURL:           front.URL,
		MaxAttempts:       8,
		PerAttemptTimeout: 5 * time.Second,
		BaseBackoff:       20 * time.Millisecond,
		Seed:              1,
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	sent := 0
	mustTune := func(phase string, n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			size := fmt.Sprintf("%dx%dx%d", 40+sent%32, 40+sent%32, 40+sent%32)
			sent++
			if _, err := cl.Tune(ctx, client.TuneRequest{Kernel: client.NamedKernel("laplacian"), Size: size}); err != nil {
				t.Fatalf("%s: request %d lost: %v", phase, sent, err)
			}
		}
	}
	healthyCount := func() int {
		n := 0
		for _, be := range b.backends {
			if be.healthy.Load() {
				n++
			}
		}
		return n
	}

	waitFor(t, "both replicas in rotation", func() bool { return healthyCount() == 2 })
	mustTune("healthy fleet", 16)

	// SIGKILL the victim mid-run. Requests keep flowing immediately: the
	// kill window before ejection is covered by per-request transport
	// failover, after it by the ring skipping the dead replica.
	if err := victim.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	victim.Wait()
	mustTune("kill window", 24)
	waitFor(t, "victim ejection", func() bool { return healthyCount() == 1 })
	if got := b.cfg.Registry.Value("stencillb_ejections_total", victimURL); got != 1 {
		t.Fatalf("ejections for killed replica = %v, want 1", got)
	}
	mustTune("degraded fleet", 16)

	// Restart on the same address; the probes must readmit it.
	victimAddr := victimURL[len("http://"):]
	restartedURL, _ := spawnReplica(t, dir, victimAddr, addrFile)
	if restartedURL != victimURL {
		t.Fatalf("restarted replica on %s, want the original %s", restartedURL, victimURL)
	}
	waitFor(t, "victim readmission", func() bool { return healthyCount() == 2 })
	if got := b.cfg.Registry.Value("stencillb_readmissions_total", victimURL); got != 1 {
		t.Fatalf("readmissions for restarted replica = %v, want 1", got)
	}

	// The readmitted replica takes traffic again: its request counter moves
	// while fresh keys spread over the ring.
	before := b.cfg.Registry.Value("stencillb_backend_requests_total", victimURL)
	mustTune("recovered fleet", 32)
	if after := b.cfg.Registry.Value("stencillb_backend_requests_total", victimURL); after <= before {
		t.Fatalf("restarted replica took no traffic after readmission (%v -> %v)", before, after)
	}
	// Zero lost requests across kill, ejection, restart and readmission is
	// the assertion; mustTune already failed the test otherwise.
}
