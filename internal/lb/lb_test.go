package lb

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/store"
)

// newStoreDir seeds a temp store with the committed fixture model under
// "default", so every backend in a test fleet serves the same content.
func newStoreDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	base, err := store.LoadPath("../store/testdata/tiny")
	if err != nil {
		t.Fatal(err)
	}
	a := *base
	a.Name = "default"
	if err := st.Save(&a); err != nil {
		t.Fatal(err)
	}
	return dir
}

// startBackend runs a real stencil server over dir and returns its base URL.
func startBackend(t *testing.T, dir string) string {
	t.Helper()
	s, err := server.New(server.Config{ModelDir: dir, CacheSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

func newBalancer(t *testing.T, cfg Config) *Balancer {
	t.Helper()
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)
	return b
}

func postTune(t *testing.T, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/tune", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestConsistentRoutingSplitsHotSet is the tentpole contract: repeating a
// request must hit the same replica's cache (X-Cache: hit on the second
// send proves the key landed where its entry lives), while distinct keys
// spread over the whole fleet.
func TestConsistentRoutingSplitsHotSet(t *testing.T) {
	dir := newStoreDir(t)
	urls := []string{startBackend(t, dir), startBackend(t, dir), startBackend(t, dir)}
	b := newBalancer(t, Config{Backends: urls, HealthInterval: time.Hour})
	h := b.Handler()

	for n := 40; n < 72; n++ {
		body := fmt.Sprintf(`{"kernel":"laplacian","size":"%dx%dx%d"}`, n, n, n)
		first := postTune(t, h, body)
		if first.Code != http.StatusOK {
			t.Fatalf("first tune(%d): HTTP %d: %s", n, first.Code, first.Body.String())
		}
		if got := first.Header().Get("X-Cache"); got != "miss" {
			t.Fatalf("first tune(%d) X-Cache = %q, want miss", n, got)
		}
		second := postTune(t, h, body)
		if second.Code != http.StatusOK {
			t.Fatalf("second tune(%d): HTTP %d", n, second.Code)
		}
		// The consistent hash must route the repeat to the replica that
		// cached the first answer.
		if got := second.Header().Get("X-Cache"); got != "hit" {
			t.Fatalf("second tune(%d) X-Cache = %q, want hit (routed to %s, first went to %s)",
				n, got, second.Header().Get("X-Backend"), first.Header().Get("X-Backend"))
		}
		if fb, sb := first.Header().Get("X-Backend"), second.Header().Get("X-Backend"); fb != sb {
			t.Fatalf("tune(%d) routed to %s then %s", n, fb, sb)
		}
	}

	// 32 distinct keys over 3 replicas: every backend must own a share.
	for _, u := range urls {
		if got := b.cfg.Registry.Value("stencillb_backend_requests_total", u); got == 0 {
			t.Fatalf("backend %s received no traffic; spread is broken", u)
		}
	}
	if got := b.cfg.Registry.Value("stencillb_routed_total", "hash"); got != 64 {
		t.Fatalf("hash-routed count = %v, want 64", got)
	}
}

// TestEjectAndReadmit drives the full health lifecycle: a replica whose
// /readyz starts failing is ejected after EjectAfter consecutive probe
// misses, traffic keeps flowing to the survivor, and the replica is
// readmitted after it recovers.
func TestEjectAndReadmit(t *testing.T) {
	dir := newStoreDir(t)
	good := startBackend(t, dir)

	s, err := server.New(server.Config{ModelDir: dir, CacheSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	inner := s.Handler()
	var failReadyz atomic.Bool
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failReadyz.Load() && r.URL.Path == "/readyz" {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(flaky.Close)

	b := newBalancer(t, Config{
		Backends:       []string{good, flaky.URL},
		HealthInterval: 10 * time.Millisecond,
		EjectAfter:     2,
		ReadmitAfter:   2,
	})
	h := b.Handler()

	healthyCount := func() int {
		n := 0
		for _, be := range b.backends {
			if be.healthy.Load() {
				n++
			}
		}
		return n
	}
	waitFor(t, "both backends healthy", func() bool { return healthyCount() == 2 })

	failReadyz.Store(true)
	waitFor(t, "flaky backend ejection", func() bool { return healthyCount() == 1 })
	if got := b.cfg.Registry.Value("stencillb_ejections_total", flaky.URL); got != 1 {
		t.Fatalf("ejections for flaky backend = %v, want 1", got)
	}
	if got := b.cfg.Registry.Value("stencillb_backend_up", flaky.URL); got != 0 {
		t.Fatalf("up gauge for ejected backend = %v, want 0", got)
	}

	// Every key routes to the survivor while the fleet is degraded.
	for n := 40; n < 56; n++ {
		w := postTune(t, h, fmt.Sprintf(`{"kernel":"laplacian","size":"%dx%dx%d"}`, n, n, n))
		if w.Code != http.StatusOK {
			t.Fatalf("tune(%d) during ejection: HTTP %d: %s", n, w.Code, w.Body.String())
		}
		if be := w.Header().Get("X-Backend"); be != good {
			t.Fatalf("tune(%d) routed to ejected backend %s", n, be)
		}
	}

	// /lb/status reflects the degraded fleet.
	req := httptest.NewRequest(http.MethodGet, "/lb/status", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var status struct {
		Healthy  int `json:"healthy"`
		Backends []struct {
			URL     string `json:"url"`
			Healthy bool   `json:"healthy"`
		} `json:"backends"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &status); err != nil {
		t.Fatalf("decoding /lb/status: %v: %s", err, rec.Body.String())
	}
	if status.Healthy != 1 || len(status.Backends) != 2 {
		t.Fatalf("/lb/status healthy=%d backends=%d, want 1/2", status.Healthy, len(status.Backends))
	}

	failReadyz.Store(false)
	waitFor(t, "flaky backend readmission", func() bool { return healthyCount() == 2 })
	if got := b.cfg.Registry.Value("stencillb_readmissions_total", flaky.URL); got != 1 {
		t.Fatalf("readmissions for flaky backend = %v, want 1", got)
	}
}

// TestTransportFailover pins the retry policy: a connection-refused backend
// is skipped transparently (the endpoints are idempotent and no response
// was received), so every request still answers 200 from a live replica.
func TestTransportFailover(t *testing.T) {
	dir := newStoreDir(t)
	good := startBackend(t, dir)
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := dead.URL
	dead.Close() // nothing listens here anymore

	// Health probing is parked so the dead backend stays in rotation: this
	// exercises per-request failover, not ejection.
	b := newBalancer(t, Config{Backends: []string{good, deadURL}, HealthInterval: time.Hour})
	h := b.Handler()
	for n := 40; n < 72; n++ {
		w := postTune(t, h, fmt.Sprintf(`{"kernel":"laplacian","size":"%dx%dx%d"}`, n, n, n))
		if w.Code != http.StatusOK {
			t.Fatalf("tune(%d) with a dead backend in rotation: HTTP %d: %s", n, w.Code, w.Body.String())
		}
	}
	if got := b.cfg.Registry.Value("stencillb_backend_errors_total", deadURL); got == 0 {
		t.Fatal("no transport errors recorded for the dead backend; the hash never routed there?")
	}
}

// TestBackpressurePassesThrough pins what failover must NOT do: an
// HTTP-level shed (429 + Retry-After) reaches the client untouched instead
// of being replayed against another replica, and X-Request-ID survives both
// directions.
func TestBackpressurePassesThrough(t *testing.T) {
	var hits atomic.Int32
	shedding := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			w.WriteHeader(http.StatusOK)
			w.Write([]byte(`{"ready":true}`))
			return
		}
		hits.Add(1)
		w.Header().Set("Retry-After", "7")
		w.Header().Set("X-Seen-Request-ID", r.Header.Get("X-Request-ID"))
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":"shedding load"}`))
	}))
	t.Cleanup(shedding.Close)

	b := newBalancer(t, Config{Backends: []string{shedding.URL, shedding.URL}, HealthInterval: time.Hour})
	req := httptest.NewRequest(http.MethodPost, "/v1/tune", strings.NewReader(`{"kernel":"laplacian","size":"64x64x64"}`))
	req.Header.Set("X-Request-ID", "req-abc-123")
	w := httptest.NewRecorder()
	b.Handler().ServeHTTP(w, req)

	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("shed response code = %d, want 429", w.Code)
	}
	if got := w.Header().Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After = %q, want 7 passed through", got)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("backend hit %d times for one shed request; 429 must not be replayed", got)
	}
	if got := w.Header().Get("X-Seen-Request-ID"); got != "req-abc-123" {
		t.Fatalf("backend saw X-Request-ID %q, want req-abc-123 forwarded", got)
	}
	if got := w.Header().Get("X-Request-ID"); got != "req-abc-123" {
		t.Fatalf("response X-Request-ID = %q, want req-abc-123", got)
	}
}

// TestUnroutableBodySpreads checks the fallback path: a body with no
// routing key still gets an answer (the backend's 400) and is counted as
// spread-routed.
func TestUnroutableBodySpreads(t *testing.T) {
	dir := newStoreDir(t)
	b := newBalancer(t, Config{Backends: []string{startBackend(t, dir)}, HealthInterval: time.Hour})
	w := postTune(t, b.Handler(), `{"kernel":"no-such-kernel","size":"64x64x64"}`)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("unroutable body: HTTP %d, want the backend's 400", w.Code)
	}
	if got := b.cfg.Registry.Value("stencillb_routed_total", "spread"); got != 1 {
		t.Fatalf("spread-routed count = %v, want 1", got)
	}
}

// TestBroadcastReload drives the fleet-wide SIGHUP equivalent: POST
// /v1/models on the balancer reloads every replica and reports lockstep on
// the shared content generation.
func TestBroadcastReload(t *testing.T) {
	dir := newStoreDir(t)
	urls := []string{startBackend(t, dir), startBackend(t, dir)}
	b := newBalancer(t, Config{Backends: urls, HealthInterval: time.Hour})

	req := httptest.NewRequest(http.MethodPost, "/v1/models", nil)
	w := httptest.NewRecorder()
	b.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("broadcast reload: HTTP %d: %s", w.Code, w.Body.String())
	}
	var out BroadcastOutcome
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if !out.InLockstep || out.Generation == "" {
		t.Fatalf("fleet not in lockstep after broadcast: %+v", out)
	}
	if len(out.Results) != 2 {
		t.Fatalf("results for %d backends, want 2", len(out.Results))
	}
	for _, res := range out.Results {
		if !res.OK || res.Version != 2 || res.Generation != out.Generation {
			t.Fatalf("backend %s reload result %+v, want ok version=2 generation=%s",
				res.Backend, res, out.Generation)
		}
	}

	// GET /v1/models proxies to a replica and reports the same generation.
	getReq := httptest.NewRequest(http.MethodGet, "/v1/models", nil)
	getRec := httptest.NewRecorder()
	b.Handler().ServeHTTP(getRec, getReq)
	var listing struct {
		Generation string `json:"registry_generation"`
	}
	if err := json.Unmarshal(getRec.Body.Bytes(), &listing); err != nil {
		t.Fatal(err)
	}
	if listing.Generation != out.Generation {
		t.Fatalf("GET /v1/models generation %q != broadcast generation %q", listing.Generation, out.Generation)
	}
}

// TestAllBackendsDown: with nothing reachable the balancer answers 502 with
// a Retry-After, not a hang or a panic.
func TestAllBackendsDown(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := dead.URL
	dead.Close()
	b := newBalancer(t, Config{Backends: []string{deadURL}, HealthInterval: time.Hour})
	w := postTune(t, b.Handler(), `{"kernel":"laplacian","size":"64x64x64"}`)
	if w.Code != http.StatusBadGateway {
		t.Fatalf("all-down: HTTP %d, want 502", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("all-down 502 carries no Retry-After")
	}
	var body map[string]string
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil || body["error"] == "" {
		t.Fatalf("all-down error envelope: %v / %s", err, w.Body.String())
	}
}

// TestRingIsStable pins ring determinism: the same fleet builds the same
// ring in any process, so a balancer restart does not reshuffle the
// keyspace.
func TestRingIsStable(t *testing.T) {
	backends := []*backend{{url: "http://a:1"}, {url: "http://b:2"}, {url: "http://c:3"}}
	r1 := buildRing(backends, 64)
	r2 := buildRing(backends, 64)
	if len(r1) != 3*64 {
		t.Fatalf("ring size %d, want %d", len(r1), 3*64)
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("ring entry %d differs between identical builds: %+v vs %+v", i, r1[i], r2[i])
		}
	}
	// Ownership shares should be roughly balanced with 64 vnodes each.
	counts := map[int]int{}
	for _, e := range r1 {
		counts[e.backend]++
	}
	for i, c := range counts {
		if c != 64 {
			t.Fatalf("backend %d has %d ring points, want 64", i, c)
		}
	}
}

func TestReadAllBodyLimit(t *testing.T) {
	dir := newStoreDir(t)
	b := newBalancer(t, Config{
		Backends:       []string{startBackend(t, dir)},
		HealthInterval: time.Hour,
		MaxBodyBytes:   128,
	})
	big := `{"kernel":"laplacian","size":"64x64x64","pad":"` + strings.Repeat("x", 256) + `"}`
	w := postTune(t, b.Handler(), big)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: HTTP %d, want 413", w.Code)
	}
	if _, err := io.ReadAll(w.Body); err != nil {
		t.Fatal(err)
	}
}
