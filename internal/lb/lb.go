// Package lb is the horizontal-scale front for stencil-serve: a thin HTTP
// balancer that fans the /v1 endpoints over N backend replicas with
// consistent-hash routing on the kernel-structure cache key. Requests that
// could share a cache entry or coalesce in a singleflight always land on the
// same replica, so each replica's LRU and in-flight set hold a disjoint
// slice of the hot keyspace — cache capacity and coalescing scale with the
// fleet instead of being replicated N times. The balancer is transparent to
// clients: same wire schema, same error envelopes, Retry-After and
// X-Request-ID passed through both ways.
package lb

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

// Config wires a Balancer.
type Config struct {
	// Backends are the replica base URLs, e.g. http://127.0.0.1:8081.
	Backends []string
	// VirtualNodes is the number of ring points per backend; more points
	// smooth the keyspace split at the cost of a larger ring. Default 128.
	VirtualNodes int
	// HealthInterval is the /readyz probe period. Default 500ms.
	HealthInterval time.Duration
	// HealthTimeout bounds one probe. Default 2s.
	HealthTimeout time.Duration
	// EjectAfter ejects a backend after this many consecutive probe
	// failures. Default 2.
	EjectAfter int
	// ReadmitAfter readmits an ejected backend after this many consecutive
	// probe successes. Default 2.
	ReadmitAfter int
	// MaxBodyBytes caps an accepted request body. Default 1 MiB, matching
	// the backend's own middleware limit.
	MaxBodyBytes int64
	// Logger receives eject/readmit and proxy-failure events. Nil discards.
	Logger *obs.Logger
	// Registry hosts the stencillb_* metrics. A private one is created when
	// nil.
	Registry *obs.Registry
}

func (c *Config) fillDefaults() {
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = 128
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = 500 * time.Millisecond
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = 2 * time.Second
	}
	if c.EjectAfter <= 0 {
		c.EjectAfter = 2
	}
	if c.ReadmitAfter <= 0 {
		c.ReadmitAfter = 2
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.Logger == nil {
		c.Logger = obs.NewLogger(io.Discard, "text")
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
}

// backend is one replica and its health-tracking state. The probe loop is
// the only writer of the consecutive counters; everything handlers read is
// atomic.
type backend struct {
	url     string
	healthy atomic.Bool
	// generation is the replica's last-reported registry_generation.
	generation atomic.Pointer[string]
	lastErr    atomic.Pointer[string]
	consecFail atomic.Int32
	consecOK   atomic.Int32
}

type ringEntry struct {
	hash    uint32
	backend int
}

// Balancer fans requests over the backend fleet. It is an http.Handler.
type Balancer struct {
	cfg      Config
	backends []*backend
	ring     []ringEntry
	client   *http.Client
	probes   *http.Client
	spread   atomic.Uint64 // round-robin cursor for unroutable bodies
	met      *metrics
	stop     context.CancelFunc
	done     chan struct{}
}

// New builds a Balancer over cfg.Backends and starts its health loop.
// Backends start healthy (optimistic) and the first probe round corrects
// within one HealthInterval.
func New(cfg Config) (*Balancer, error) {
	cfg.fillDefaults()
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("lb: no backends configured")
	}
	b := &Balancer{
		cfg: cfg,
		client: &http.Client{
			// Per-request routing latency budget; tune/measure requests can
			// take seconds cold, so this is generous.
			Timeout: 60 * time.Second,
		},
		probes: &http.Client{Timeout: cfg.HealthTimeout},
		met:    newMetrics(cfg.Registry),
		done:   make(chan struct{}),
	}
	for _, raw := range cfg.Backends {
		u := strings.TrimRight(raw, "/")
		if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
			u = "http://" + u
		}
		be := &backend{url: u}
		be.healthy.Store(true)
		b.backends = append(b.backends, be)
		b.met.up.With(u).Set(1)
	}
	b.ring = buildRing(b.backends, cfg.VirtualNodes)
	ctx, cancel := context.WithCancel(context.Background())
	b.stop = cancel
	go b.healthLoop(ctx)
	return b, nil
}

// Close stops the health loop.
func (b *Balancer) Close() {
	b.stop()
	<-b.done
}

// fnv1a32 is FNV-1a over s — the same hash the backend's cache sharding
// uses, applied here to ring points and routing keys.
func fnv1a32(s string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime32
	}
	return h
}

func buildRing(backends []*backend, vnodes int) []ringEntry {
	ring := make([]ringEntry, 0, len(backends)*vnodes)
	for i, be := range backends {
		for v := 0; v < vnodes; v++ {
			ring = append(ring, ringEntry{
				hash:    fnv1a32(fmt.Sprintf("%s#%d", be.url, v)),
				backend: i,
			})
		}
	}
	sort.Slice(ring, func(i, j int) bool {
		if ring[i].hash != ring[j].hash {
			return ring[i].hash < ring[j].hash
		}
		return ring[i].backend < ring[j].backend
	})
	return ring
}

// route returns backend indexes to try for key, healthy ones first in ring
// order from the key's position. The first entry is the consistent-hash
// owner whenever it is healthy; later entries are the transport-error
// failover order.
func (b *Balancer) route(key string) []int {
	h := fnv1a32(key)
	start := sort.Search(len(b.ring), func(i int) bool { return b.ring[i].hash >= h })
	if start == len(b.ring) {
		start = 0
	}
	seen := make(map[int]bool, len(b.backends))
	var healthy, ejected []int
	for i := 0; i < len(b.ring) && len(seen) < len(b.backends); i++ {
		e := b.ring[(start+i)%len(b.ring)]
		if seen[e.backend] {
			continue
		}
		seen[e.backend] = true
		if b.backends[e.backend].healthy.Load() {
			healthy = append(healthy, e.backend)
		} else {
			ejected = append(ejected, e.backend)
		}
	}
	// A fully ejected fleet still gets the traffic: the probes may simply
	// not have readmitted a recovered backend yet, and a failed proxy
	// attempt costs one connection error.
	return append(healthy, ejected...)
}

// spreadOrder is the fallback for bodies with no routing key: rotate over
// backends, healthy first.
func (b *Balancer) spreadOrder() []int {
	n := len(b.backends)
	first := int(b.spread.Add(1)-1) % n
	var healthy, ejected []int
	for i := 0; i < n; i++ {
		idx := (first + i) % n
		if b.backends[idx].healthy.Load() {
			healthy = append(healthy, idx)
		} else {
			ejected = append(ejected, idx)
		}
	}
	return append(healthy, ejected...)
}

// Handler returns the balancer's HTTP surface: the four /v1 serving
// endpoints proxied by routing key, /v1/models fanned on POST, and the
// balancer's own /lb/status, /healthz and /metrics.
func (b *Balancer) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, ep := range []string{"/v1/tune", "/v1/rank", "/v1/predict", "/v1/observe"} {
		mux.HandleFunc(ep, b.proxyRouted)
	}
	mux.HandleFunc("/v1/models", b.handleModels)
	mux.HandleFunc("/lb/status", b.handleStatus)
	mux.HandleFunc("/healthz", b.handleHealthz)
	mux.HandleFunc("/readyz", b.handleHealthz)
	mux.Handle("/metrics", b.cfg.Registry.Handler())
	return mux
}

// proxyRouted reads the body once, derives the routing key, and forwards to
// the key's owner, failing over in ring order on transport errors only —
// HTTP-level backpressure (429/503 + Retry-After) passes through untouched
// for the client's own retry logic, because re-sending a shed request to a
// second replica would defeat the backends' admission control.
func (b *Balancer) proxyRouted(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, b.cfg.MaxBodyBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("reading request body: %v", err))
		return
	}
	if int64(len(body)) > b.cfg.MaxBodyBytes {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("request body exceeds the %d-byte limit", b.cfg.MaxBodyBytes))
		return
	}
	var order []int
	if key, ok := server.RoutingKey(body); ok {
		order = b.route(key)
		b.met.routed.With("hash").Inc()
	} else {
		// Unroutable bodies would 4xx on any replica; spread them so a
		// malformed-request flood cannot concentrate on one backend.
		order = b.spreadOrder()
		b.met.routed.With("spread").Inc()
	}
	b.forward(w, r, body, order)
	b.met.latency.Observe(time.Since(start).Seconds())
}

// forward tries the backends in order until one yields an HTTP response.
func (b *Balancer) forward(w http.ResponseWriter, r *http.Request, body []byte, order []int) {
	reqID := r.Header.Get("X-Request-ID")
	if reqID == "" {
		reqID = obs.NewRequestID()
	}
	var lastErr error
	for _, idx := range order {
		be := b.backends[idx]
		b.met.requests.With(be.url).Inc()
		req, err := http.NewRequestWithContext(r.Context(), r.Method, be.url+r.URL.Path, bytes.NewReader(body))
		if err != nil {
			lastErr = err
			continue
		}
		copyHeader(req.Header, r.Header)
		req.Header.Set("X-Request-ID", reqID)
		resp, err := b.client.Do(req)
		if err != nil {
			// Transport error: no response was received, so the endpoints'
			// idempotency makes a second send safe. Count it and fail over.
			b.met.errors.With(be.url).Inc()
			lastErr = err
			if r.Context().Err() != nil {
				return // client went away; nothing to answer
			}
			b.cfg.Logger.Warn("backend transport error",
				obs.F("backend", be.url), obs.F("path", r.URL.Path), obs.F("error", err.Error()))
			continue
		}
		defer resp.Body.Close()
		copyHeader(w.Header(), resp.Header)
		w.Header().Set("X-Request-ID", reqID)
		w.Header().Set("X-Backend", be.url)
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
		return
	}
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusBadGateway, fmt.Sprintf("no backend reachable: %v", lastErr))
}

// handleModels fans POST (the SIGHUP-equivalent reload) across every
// backend and reports per-replica outcomes plus whether the fleet converged
// on one registry_generation. GET forwards to one healthy backend, since
// all replicas serve the same store.
func (b *Balancer) handleModels(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost {
		res := b.BroadcastReload(r.Context())
		w.Header().Set("Content-Type", "application/json")
		if !res.InLockstep {
			w.WriteHeader(http.StatusBadGateway)
		}
		json.NewEncoder(w).Encode(res)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, b.cfg.MaxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	b.forward(w, r, body, b.spreadOrder())
}

// ReloadResult is one backend's answer to a broadcast reload.
type ReloadResult struct {
	Backend    string `json:"backend"`
	OK         bool   `json:"ok"`
	Generation string `json:"registry_generation,omitempty"`
	Version    int64  `json:"registry_version,omitempty"`
	Error      string `json:"error,omitempty"`
}

// BroadcastOutcome aggregates a fleet-wide reload.
type BroadcastOutcome struct {
	Results []ReloadResult `json:"results"`
	// InLockstep is true when every backend reloaded successfully and all
	// report the same registry_generation — the fleet serves one model set.
	InLockstep bool   `json:"in_lockstep"`
	Generation string `json:"registry_generation,omitempty"`
}

// BroadcastReload POSTs /v1/models to every configured backend (ejected
// ones included — a recovering replica must not be left on stale models)
// and checks the fleet converged on one content generation.
func (b *Balancer) BroadcastReload(ctx context.Context) BroadcastOutcome {
	out := BroadcastOutcome{InLockstep: true}
	type reply struct {
		idx int
		res ReloadResult
	}
	ch := make(chan reply, len(b.backends))
	for i, be := range b.backends {
		go func(i int, be *backend) {
			res := ReloadResult{Backend: be.url}
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, be.url+"/v1/models", nil)
			if err != nil {
				res.Error = err.Error()
				ch <- reply{i, res}
				return
			}
			resp, err := b.client.Do(req)
			if err != nil {
				res.Error = err.Error()
				ch <- reply{i, res}
				return
			}
			defer resp.Body.Close()
			var decoded struct {
				Generation string `json:"registry_generation"`
				Version    int64  `json:"registry_version"`
				Error      string `json:"error"`
			}
			if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&decoded); err != nil {
				res.Error = fmt.Sprintf("decoding reload reply: %v", err)
				ch <- reply{i, res}
				return
			}
			if resp.StatusCode != http.StatusOK {
				res.Error = fmt.Sprintf("HTTP %d: %s", resp.StatusCode, decoded.Error)
				ch <- reply{i, res}
				return
			}
			res.OK = true
			res.Generation = decoded.Generation
			res.Version = decoded.Version
			be.generation.Store(&decoded.Generation)
			ch <- reply{i, res}
		}(i, be)
	}
	results := make([]ReloadResult, len(b.backends))
	for range b.backends {
		rep := <-ch
		results[rep.idx] = rep.res
	}
	for _, res := range results {
		if !res.OK {
			out.InLockstep = false
			continue
		}
		switch {
		case out.Generation == "":
			out.Generation = res.Generation
		case out.Generation != res.Generation:
			out.InLockstep = false
		}
	}
	if out.Generation == "" {
		out.InLockstep = false
	}
	out.Results = results
	if !out.InLockstep {
		out.Generation = ""
	}
	return out
}

// backendStatus is one row of /lb/status.
type backendStatus struct {
	URL              string `json:"url"`
	Healthy          bool   `json:"healthy"`
	Generation       string `json:"registry_generation,omitempty"`
	ConsecutiveFails int    `json:"consecutive_failures,omitempty"`
	LastError        string `json:"last_error,omitempty"`
}

// handleStatus reports the fleet as the balancer sees it.
func (b *Balancer) handleStatus(w http.ResponseWriter, r *http.Request) {
	var out struct {
		Backends   []backendStatus `json:"backends"`
		Healthy    int             `json:"healthy"`
		InLockstep bool            `json:"in_lockstep"`
		RingSize   int             `json:"ring_size"`
	}
	out.InLockstep = true
	gen := ""
	for _, be := range b.backends {
		st := backendStatus{
			URL:              be.url,
			Healthy:          be.healthy.Load(),
			ConsecutiveFails: int(be.consecFail.Load()),
		}
		if g := be.generation.Load(); g != nil {
			st.Generation = *g
		}
		if e := be.lastErr.Load(); e != nil {
			st.LastError = *e
		}
		if st.Healthy {
			out.Healthy++
			switch {
			case st.Generation == "":
				out.InLockstep = false
			case gen == "":
				gen = st.Generation
			case gen != st.Generation:
				out.InLockstep = false
			}
		}
		out.Backends = append(out.Backends, st)
	}
	if out.Healthy == 0 {
		out.InLockstep = false
	}
	out.RingSize = len(b.ring)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// handleHealthz answers for the balancer itself: healthy while at least one
// backend is serving.
func (b *Balancer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	healthy := 0
	for _, be := range b.backends {
		if be.healthy.Load() {
			healthy++
		}
	}
	code := http.StatusOK
	if healthy == 0 {
		code = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]any{
		"status":   map[bool]string{true: "ok", false: "no backends"}[healthy > 0],
		"backends": len(b.backends),
		"healthy":  healthy,
	})
}

func copyHeader(dst, src http.Header) {
	for k, vs := range src {
		// Hop-by-hop headers stay on their hop.
		switch k {
		case "Connection", "Keep-Alive", "Transfer-Encoding", "Upgrade", "Te", "Trailer":
			continue
		}
		dst[k] = vs
	}
}

func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
