package lb

import "repro/internal/obs"

// metrics is the stencillb_* observability surface. Per-backend request
// counts double as the route-hash spread view: with consistent hashing the
// counts should track each backend's share of the ring.
type metrics struct {
	requests     *obs.CounterVec
	errors       *obs.CounterVec
	ejections    *obs.CounterVec
	readmissions *obs.CounterVec
	up           *obs.GaugeVec
	routed       *obs.CounterVec
	latency      *obs.Histogram
}

func newMetrics(r *obs.Registry) *metrics {
	return &metrics{
		requests: r.CounterVec("stencillb_backend_requests_total",
			"Requests forwarded, by backend; the route-hash spread over the fleet.", "backend"),
		errors: r.CounterVec("stencillb_backend_errors_total",
			"Transport-level proxy failures (no HTTP response received), by backend.", "backend"),
		ejections: r.CounterVec("stencillb_ejections_total",
			"Health-probe ejections, by backend.", "backend"),
		readmissions: r.CounterVec("stencillb_readmissions_total",
			"Health-probe readmissions after an ejection, by backend.", "backend"),
		up: r.GaugeVec("stencillb_backend_up",
			"1 while the backend is in rotation, 0 while ejected.", "backend"),
		routed: r.CounterVec("stencillb_routed_total",
			"Requests by routing mode: hash (kernel-structure key) or spread (unroutable body).", "mode"),
		latency: r.Histogram("stencillb_request_seconds",
			"End-to-end proxied request latency.", obs.LatencyBuckets),
	}
}
