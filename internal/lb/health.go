package lb

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/obs"
)

// healthLoop probes every backend's /readyz on a fixed cadence and is the
// only writer of eject/readmit state. A backend is ejected after
// EjectAfter consecutive probe failures (routing then skips it) and
// readmitted after ReadmitAfter consecutive successes — hysteresis in both
// directions so one slow probe does not flap the ring assignment.
func (b *Balancer) healthLoop(ctx context.Context) {
	defer close(b.done)
	t := time.NewTicker(b.cfg.HealthInterval)
	defer t.Stop()
	b.probeAll(ctx)
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			b.probeAll(ctx)
		}
	}
}

func (b *Balancer) probeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, be := range b.backends {
		wg.Add(1)
		go func(be *backend) {
			defer wg.Done()
			b.probeOne(ctx, be)
		}(be)
	}
	wg.Wait()
}

// probeOne GETs the backend's /readyz. Ready replicas also report their
// registry_generation there, so the fleet-lockstep view in /lb/status rides
// the health checks with no extra round-trips.
func (b *Balancer) probeOne(ctx context.Context, be *backend) {
	err := func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, be.url+"/readyz", nil)
		if err != nil {
			return err
		}
		resp, err := b.probes.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		var decoded struct {
			Generation string `json:"registry_generation"`
		}
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&decoded); err == nil && decoded.Generation != "" {
			be.generation.Store(&decoded.Generation)
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("readyz answered HTTP %d", resp.StatusCode)
		}
		return nil
	}()
	if err != nil {
		if ctx.Err() != nil {
			return // shutting down, not a backend failure
		}
		msg := err.Error()
		be.lastErr.Store(&msg)
		be.consecOK.Store(0)
		fails := be.consecFail.Add(1)
		if int(fails) >= b.cfg.EjectAfter && be.healthy.CompareAndSwap(true, false) {
			b.met.up.With(be.url).Set(0)
			b.met.ejections.With(be.url).Inc()
			b.cfg.Logger.Warn("backend ejected",
				obs.F("backend", be.url), obs.F("consecutive_failures", int(fails)), obs.F("error", msg))
		}
		return
	}
	be.consecFail.Store(0)
	oks := be.consecOK.Add(1)
	if int(oks) >= b.cfg.ReadmitAfter && be.healthy.CompareAndSwap(false, true) {
		b.met.up.With(be.url).Set(1)
		b.met.readmissions.With(be.url).Inc()
		b.cfg.Logger.Info("backend readmitted",
			obs.F("backend", be.url), obs.F("consecutive_successes", int(oks)))
	}
}
