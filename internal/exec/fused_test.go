package exec

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/grid"
	"repro/internal/shape"
	"repro/internal/tunespace"
)

// refreshPeriodic fills every halo cell with its wrapped interior value,
// wrapping all coordinates at once (corners included) — the same rule
// driver.Simulation applies between sequential steps.
func refreshPeriodic[T grid.Float](g *grid.Grid[T]) {
	d := g.Data()
	for z := -g.HaloZ; z < g.NZ+g.HaloZ; z++ {
		for y := -g.Halo; y < g.NY+g.Halo; y++ {
			for x := -g.Halo; x < g.NX+g.Halo; x++ {
				if x >= 0 && x < g.NX && y >= 0 && y < g.NY && z >= 0 && z < g.NZ {
					continue
				}
				d[g.Index(x, y, z)] = d[g.Index(wrapInt(x, g.NX), wrapInt(y, g.NY), wrapInt(z, g.NZ))]
			}
		}
	}
}

func pt(x, y, z int) shape.Point { return shape.Point{X: x, Y: y, Z: z} }

// fusedTestKernels covers every specialized fingerprint plus generic
// fallbacks in both dimensionalities. threeD selects the grid shape.
func fusedTestKernels() []struct {
	k      *LinearKernel
	threeD bool
	want   string
} {
	return []struct {
		k      *LinearKernel
		threeD bool
		want   string
	}{
		{&LinearKernel{Name: "t-star7", Buffers: 1, Terms: []Term{
			{0, pt(0, 0, 0), -6.1}, {0, pt(1, 0, 0), 1.01}, {0, pt(-1, 0, 0), 0.99},
			{0, pt(0, 1, 0), 1.02}, {0, pt(0, -1, 0), 0.98}, {0, pt(0, 0, 1), 1.03}, {0, pt(0, 0, -1), 0.97},
		}}, true, "star7"},
		{&LinearKernel{Name: "t-star5", Buffers: 1, Terms: []Term{
			{0, pt(0, 0, 0), -4.05}, {0, pt(1, 0, 0), 1.01}, {0, pt(-1, 0, 0), 0.99},
			{0, pt(0, 1, 0), 1.02}, {0, pt(0, -1, 0), 0.98},
		}}, false, "star5"},
		{&LinearKernel{Name: "t-row3", Buffers: 1, Terms: []Term{
			{0, pt(0, 0, 0), 0.52}, {0, pt(1, 0, 0), 0.23}, {0, pt(-1, 0, 0), 0.27},
		}}, true, "row3"},
		{&LinearKernel{Name: "t-box9", Buffers: 1, Terms: func() []Term {
			var ts []Term
			for i, o := range boxOffsets(0) {
				ts = append(ts, Term{0, pt(o[0], o[1], o[2]), 0.1 + 0.01*float64(i)})
			}
			return ts
		}()}, false, "box9"},
		{&LinearKernel{Name: "t-box27", Buffers: 1, Terms: func() []Term {
			var ts []Term
			for i, o := range boxOffsets(1) {
				ts = append(ts, Term{0, pt(o[0], o[1], o[2]), 0.03 + 0.002*float64(i)})
			}
			return ts
		}()}, true, "box27"},
		// Radius-2 asymmetric kernels exercise the generic per-level plan
		// path and a stream radius of 2 (ring size 6, skew 5).
		{&LinearKernel{Name: "t-gen3", Buffers: 1, Terms: []Term{
			{0, pt(0, 0, 0), 0.4}, {0, pt(2, 0, 0), 0.13}, {0, pt(0, -2, 0), 0.17},
			{0, pt(-1, 1, 1), 0.11}, {0, pt(0, 0, -2), 0.19},
		}}, true, "generic"},
		{&LinearKernel{Name: "t-gen2", Buffers: 1, Terms: []Term{
			{0, pt(0, 0, 0), 0.4}, {0, pt(-2, 1, 0), 0.21}, {0, pt(1, -2, 0), 0.23}, {0, pt(2, 2, 0), 0.07},
		}}, false, "generic"},
	}
}

// runFusedCase advances in by K steps twice — sequentially through
// Runner.Run with periodic halo refreshes between steps, and in one fused
// sweep — and requires bit-for-bit identical interiors.
func runFusedCase[T grid.Float](t *testing.T, r *Runner[T], k *LinearKernel, nx, ny, nz int, tv tunespace.Vector) {
	t.Helper()
	halo := k.MaxOffset()
	haloZ := halo
	if nz == 1 {
		haloZ = 0
	}
	K := tv.EffFuse()

	cur := grid.NewOf[T](nx, ny, nz, halo, haloZ)
	cur.FillPattern()
	nxt := grid.NewOf[T](nx, ny, nz, halo, haloZ)
	for s := 0; s < K; s++ {
		refreshPeriodic(cur)
		if err := r.Run(k, nxt, []*grid.Grid[T]{cur}, tv); err != nil {
			t.Fatalf("%s: sequential step %d: %v", k.Name, s, err)
		}
		cur, nxt = nxt, cur
	}

	in := grid.NewOf[T](nx, ny, nz, halo, haloZ)
	in.FillPattern()
	refreshPeriodic(in)
	out := grid.NewOf[T](nx, ny, nz, halo, haloZ)
	fp, err := r.CompileFused(k, out, in, tv)
	if err != nil {
		t.Fatalf("%s: CompileFused: %v", k.Name, err)
	}
	if fp.Steps() != K {
		t.Fatalf("%s: Steps() = %d, want %d", k.Name, fp.Steps(), K)
	}
	if err := fp.Run(out, in); err != nil {
		t.Fatalf("%s: fused run: %v", k.Name, err)
	}

	want, got := cur.Data(), out.Data()
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				i := out.Index(x, y, z)
				if math.Float64bits(float64(want[i])) != math.Float64bits(float64(got[i])) {
					t.Fatalf("%s n=%dx%dx%d %v: (%d,%d,%d) fused %v != sequential %v (not bit-identical)",
						k.Name, nx, ny, nz, tv, x, y, z, got[i], want[i])
				}
			}
		}
	}
}

// TestFusedMatchesSequential is the bit-identity property: a fused K-step
// sweep equals K sequential runner steps with periodic halo refreshes, for
// every specialization class, both dimensionalities, K ∈ {1..4}, several
// unroll/chunk settings, and both element types. Stream extents smaller than
// K·radius force multi-wrap extension planes.
func TestFusedMatchesSequential(t *testing.T) {
	r64 := NewRunner()
	defer r64.Close()
	r32 := NewRunnerOf[float32]()
	defer r32.Close()
	for _, tc := range fusedTestKernels() {
		sizes := [][3]int{{12, 7, 9}, {6, 5, 3}}
		if !tc.threeD {
			sizes = [][3]int{{13, 11, 1}, {5, 3, 1}}
		}
		if r := tc.k.MaxOffset(); r > 1 {
			// Keep every axis at least the kernel radius wide.
			sizes = [][3]int{{12, 7, 9}, {7, 5, 2}}
			if !tc.threeD {
				sizes = [][3]int{{13, 11, 1}, {7, 2, 1}}
			}
		}
		for _, sz := range sizes {
			for K := 1; K <= tunespace.MaxFuse; K++ {
				for _, uc := range [][2]int{{0, 1}, {2, 2}, {4, 1}} {
					tv := tunespace.Vector{Bx: 8, By: 4, Bz: 2, U: uc[0], C: uc[1], K: K}
					if sz[2] == 1 {
						tv.Bz = 1
					}
					name := fmt.Sprintf("%s/%dx%dx%d/k%d/u%d", tc.k.Name, sz[0], sz[1], sz[2], K, uc[0])
					t.Run(name+"/f64", func(t *testing.T) {
						runFusedCase(t, r64, tc.k, sz[0], sz[1], sz[2], tv)
					})
					t.Run(name+"/f32", func(t *testing.T) {
						runFusedCase(t, r32, tc.k, sz[0], sz[1], sz[2], tv)
					})
				}
			}
		}
	}
}

// TestFusedSpecializationSelected pins the structural fingerprint and the
// fused body selection for every test kernel.
func TestFusedSpecializationSelected(t *testing.T) {
	r := NewRunner()
	defer r.Close()
	for _, tc := range fusedTestKernels() {
		if got := Fingerprint(tc.k); got != tc.want {
			t.Errorf("Fingerprint(%s) = %q, want %q", tc.k.Name, got, tc.want)
		}
		nz := 1
		if tc.threeD {
			nz = 8
		}
		halo := tc.k.MaxOffset()
		haloZ := halo
		if nz == 1 {
			haloZ = 0
		}
		out := grid.New(8, 8, nz, halo, haloZ)
		in := grid.New(8, 8, nz, halo, haloZ)
		fp, err := r.CompileFused(tc.k, out, in, tunespace.Vector{Bx: 8, By: 8, Bz: 8, U: 2, C: 1, K: 2})
		if err != nil {
			t.Fatalf("%s: %v", tc.k.Name, err)
		}
		if got := fp.Specialization(); got != tc.want {
			t.Errorf("%s: Specialization() = %q, want %q", tc.k.Name, got, tc.want)
		}
	}
}

// TestCompileFusedRejects covers the ineligible configurations: multi-buffer
// kernels and domains narrower than the kernel radius.
func TestCompileFusedRejects(t *testing.T) {
	r := NewRunner()
	defer r.Close()

	wave := &LinearKernel{Name: "t-wave", Buffers: 2, Terms: []Term{
		{0, pt(0, 0, 0), 2}, {1, pt(0, 0, 0), -1}, {0, pt(1, 0, 0), 0.1},
	}}
	if CanFuse(wave) {
		t.Fatal("CanFuse should reject multi-buffer kernels")
	}
	out := grid.New(8, 8, 8, 1, 1)
	in := grid.New(8, 8, 8, 1, 1)
	if _, err := r.CompileFused(wave, out, in, tunespace.Vector{Bx: 8, By: 8, Bz: 8, U: 0, C: 1, K: 2}); err == nil {
		t.Fatal("CompileFused accepted a multi-buffer kernel")
	}

	wide := &LinearKernel{Name: "t-wide", Buffers: 1, Terms: []Term{
		{0, pt(0, 0, 0), 0.5}, {0, pt(3, 0, 0), 0.25}, {0, pt(-3, 0, 0), 0.25},
	}}
	small := grid.New(2, 8, 8, 3, 3)
	small2 := grid.New(2, 8, 8, 3, 3)
	if _, err := r.CompileFused(wide, small, small2, tunespace.Vector{Bx: 8, By: 8, Bz: 8, U: 0, C: 1, K: 2}); err == nil {
		t.Fatal("CompileFused accepted a domain narrower than the kernel radius")
	}

	okOut := grid.New(8, 8, 8, 3, 3)
	okIn := grid.New(8, 8, 8, 3, 3)
	fp, err := r.CompileFused(wide, okOut, okIn, tunespace.Vector{Bx: 8, By: 8, Bz: 8, U: 0, C: 1, K: 2})
	if err != nil {
		t.Fatalf("CompileFused rejected a valid radius-3 kernel: %v", err)
	}
	if err := fp.Run(okOut, okOut); err == nil {
		t.Fatal("fused Run accepted aliased input and output")
	}
}

// TestFusedRunSteadyStateAllocs pins the zero-allocation property of the
// fused hot path: after compilation, repeated Runs allocate nothing.
func TestFusedRunSteadyStateAllocs(t *testing.T) {
	r := NewRunner()
	defer r.Close()
	for _, tc := range fusedTestKernels() {
		nz := 12
		if !tc.threeD {
			nz = 1
		}
		halo := tc.k.MaxOffset()
		haloZ := halo
		if nz == 1 {
			haloZ = 0
		}
		out := grid.New(16, 16, nz, halo, haloZ)
		in := grid.New(16, 16, nz, halo, haloZ)
		in.FillPattern()
		refreshPeriodic(in)
		tv := tunespace.Vector{Bx: 8, By: 8, Bz: 4, U: 2, C: 1, K: 3}
		if nz == 1 {
			tv.Bz = 1
		}
		fp, err := r.CompileFused(tc.k, out, in, tv)
		if err != nil {
			t.Fatalf("%s: %v", tc.k.Name, err)
		}
		if err := fp.Run(out, in); err != nil {
			t.Fatalf("%s: warmup run: %v", tc.k.Name, err)
		}
		allocs := testing.AllocsPerRun(5, func() {
			if err := fp.Run(out, in); err != nil {
				t.Fatalf("%s: %v", tc.k.Name, err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: fused Run allocates %.1f objects per call in steady state, want 0", tc.k.Name, allocs)
		}
	}
}

// TestFusedProgramCacheBounded exercises the fused-cache eviction path.
func TestFusedProgramCacheBounded(t *testing.T) {
	r := NewRunner()
	defer r.Close()
	k := fusedTestKernels()[0].k
	out := grid.New(8, 8, 8, 1, 1)
	in := grid.New(8, 8, 8, 1, 1)
	for i := 0; i < 3*maxCachedFused; i++ {
		tv := tunespace.Vector{Bx: 2 + i%16, By: 2 + i/16, Bz: 2, U: 0, C: 1, K: 1 + i%tunespace.MaxFuse}
		if _, err := r.CompileFused(k, out, in, tv); err != nil {
			t.Fatalf("compile %d: %v", i, err)
		}
	}
	r.mu.Lock()
	n, elems := len(r.fprogs), r.cachedFusedElems
	r.mu.Unlock()
	if n > maxCachedFused {
		t.Errorf("fused cache holds %d entries, bound is %d", n, maxCachedFused)
	}
	if elems > maxCachedFusedElems {
		t.Errorf("fused cache holds %d scratch elems, bound is %d", elems, maxCachedFusedElems)
	}
}
