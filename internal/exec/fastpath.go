package exec

import "repro/internal/grid"

// Fast paths: fully specialized inner loops for the most common stencil
// shapes. The generic runRow* loops iterate over a term table; for hot
// kernels like the 7-point laplacian that indirection dominates, so the
// runner dispatches to a shape-specialized body when one matches. The
// specialization is detected structurally (offsets and weights), never by
// name, so DSL-defined kernels benefit too.
//
// Detection happens at compile time and is data-independent: the fastPlan
// carries only weights and flat-index offsets, and the data slice is bound
// by Program.Run (or RunLegacy) before execution.
//
// Summation order: each specialized body accumulates terms in the canonical
// order of its offset table below. When a kernel lists its terms in that
// same order — which the benchmark constructors and shape.Points-derived
// kernels do — the fast path is bit-for-bit identical to Reference;
// otherwise it differs only by floating-point reassociation (≈1 ulp).
type fastKind int

const (
	fastNone fastKind = iota
	// fastStar7 is the 3-D 7-point star: centre + 6 axis neighbours,
	// arbitrary weights, single buffer.
	fastStar7
	// fastRow3 is the 1-D 3-point row stencil (x-1, x, x+1), single buffer.
	fastRow3
	// fastStar5 is the 2-D 5-point star: centre + 4 in-plane axis
	// neighbours, single buffer.
	fastStar5
	// fastBox9 is the 2-D 9-point box: the full 3×3 neighbourhood with
	// arbitrary weights, single buffer (edge detection, game-of-life).
	fastBox9
	// fastBox27 is the 3-D 27-point box: the full 3×3×3 neighbourhood with
	// arbitrary weights, single buffer.
	fastBox27
)

// Canonical offset tables. Star kernels keep the historical centre-first
// order (matching the hand-written benchmark constructors); box kernels use
// shape.Points' canonical (z, y, x) order, grouped into x-contiguous rows of
// three so the bodies can walk each row with unit stride.
var (
	row3Offsets  = [][3]int{{0, 0, 0}, {1, 0, 0}, {-1, 0, 0}}
	star5Offsets = [][3]int{{0, 0, 0}, {1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}}
	star7Offsets = [][3]int{
		{0, 0, 0}, {1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1},
	}
	box9Offsets  = boxOffsets(0)
	box27Offsets = boxOffsets(1)
)

// boxOffsets enumerates the unit box neighbourhood in canonical (z, y, x)
// order; zr is the z radius (0 for the 2-D box).
func boxOffsets(zr int) [][3]int {
	var out [][3]int
	for z := -zr; z <= zr; z++ {
		for y := -1; y <= 1; y++ {
			for x := -1; x <= 1; x++ {
				out = append(out, [3]int{x, y, z})
			}
		}
	}
	return out
}

// fastPlan holds the precomputed data of a specialized kernel. w and off are
// indexed by the slot order of the kind's canonical offset table; data is
// bound per run.
type fastPlan[T grid.Float] struct {
	kind fastKind
	data []T
	w    [27]T
	off  [27]int
}

// detectFast inspects a kernel's term plan and returns a specialization when
// it matches one of the known shapes exactly. Only weights and index offsets
// are captured; bind data before executing.
func detectFast[T grid.Float](k *LinearKernel, p *plan[T]) *fastPlan[T] {
	if k.Buffers != 1 {
		return nil
	}
	switch len(k.Terms) {
	case 3:
		return matchTerms(k, p, fastRow3, row3Offsets)
	case 5:
		return matchTerms(k, p, fastStar5, star5Offsets)
	case 7:
		return matchTerms(k, p, fastStar7, star7Offsets)
	case 9:
		return matchTerms(k, p, fastBox9, box9Offsets)
	case 27:
		return matchTerms(k, p, fastBox27, box27Offsets)
	}
	return nil
}

// matchTerms fills a fastPlan slot-by-slot from the wanted offset table. It
// requires the kernel's term count to equal the table size and every wanted
// offset to appear among the terms; a kernel with a duplicated offset then
// necessarily misses another wanted one and falls back to the generic path.
func matchTerms[T grid.Float](k *LinearKernel, p *plan[T], kind fastKind, want [][3]int) *fastPlan[T] {
	if len(k.Terms) != len(want) {
		return nil
	}
	fp := &fastPlan[T]{kind: kind}
	for slot, w := range want {
		found := false
		for ti, t := range k.Terms {
			if t.Offset.X == w[0] && t.Offset.Y == w[1] && t.Offset.Z == w[2] {
				fp.w[slot] = p.weight[ti]
				fp.off[slot] = p.idxOff[ti]
				found = true
				break
			}
		}
		if !found {
			return nil
		}
	}
	return fp
}

// runRowStar7 computes one row of the 7-point star without the term table.
// The unroll parameter selects the blocked body width like the generic path.
// Each tap is re-sliced to an exactly-n window so every access inside the
// loop is s[x] with x < len(s): the compiler proves the bounds once per row
// instead of checking seven loads per point, which is worth ~1.6× on the
// compute-bound interior (the same trick the fused bodies use).
func (fp *fastPlan[T]) runRowStar7(dst []T, base, n, unroll int) {
	d := fp.data
	wc, wxp, wxm, wyp, wym, wzp, wzm := fp.w[0], fp.w[1], fp.w[2], fp.w[3], fp.w[4], fp.w[5], fp.w[6]
	oyp, oym, ozp, ozm := fp.off[3], fp.off[4], fp.off[5], fp.off[6]
	dw := dst[base : base+n]
	c := d[base : base+n]
	xp := d[base+1 : base+1+n]
	xm := d[base-1 : base-1+n]
	yp := d[base+oyp : base+oyp+n]
	ym := d[base+oym : base+oym+n]
	zp := d[base+ozp : base+ozp+n]
	zm := d[base+ozm : base+ozm+n]
	x := 0
	if unroll >= 2 {
		for ; x+2 <= n; x += 2 {
			dw[x] = wc*c[x] + wxp*xp[x] + wxm*xm[x] +
				wyp*yp[x] + wym*ym[x] + wzp*zp[x] + wzm*zm[x]
			j := x + 1
			dw[j] = wc*c[j] + wxp*xp[j] + wxm*xm[j] +
				wyp*yp[j] + wym*ym[j] + wzp*zp[j] + wzm*zm[j]
		}
	}
	for ; x < n; x++ {
		dw[x] = wc*c[x] + wxp*xp[x] + wxm*xm[x] +
			wyp*yp[x] + wym*ym[x] + wzp*zp[x] + wzm*zm[x]
	}
}

// runRowStar5 computes one row of the 2-D 5-point star.
func (fp *fastPlan[T]) runRowStar5(dst []T, base, n, unroll int) {
	d := fp.data
	wc, wxp, wxm, wyp, wym := fp.w[0], fp.w[1], fp.w[2], fp.w[3], fp.w[4]
	oyp, oym := fp.off[3], fp.off[4]
	dw := dst[base : base+n]
	c := d[base : base+n]
	xp := d[base+1 : base+1+n]
	xm := d[base-1 : base-1+n]
	yp := d[base+oyp : base+oyp+n]
	ym := d[base+oym : base+oym+n]
	x := 0
	if unroll >= 2 {
		for ; x+2 <= n; x += 2 {
			dw[x] = wc*c[x] + wxp*xp[x] + wxm*xm[x] + wyp*yp[x] + wym*ym[x]
			j := x + 1
			dw[j] = wc*c[j] + wxp*xp[j] + wxm*xm[j] + wyp*yp[j] + wym*ym[j]
		}
	}
	for ; x < n; x++ {
		dw[x] = wc*c[x] + wxp*xp[x] + wxm*xm[x] + wyp*yp[x] + wym*ym[x]
	}
}

// runRowRow3 computes one row of the 3-point x stencil.
func (fp *fastPlan[T]) runRowRow3(dst []T, base, n, unroll int) {
	d := fp.data
	wc, wxp, wxm := fp.w[0], fp.w[1], fp.w[2]
	dw := dst[base : base+n]
	c := d[base : base+n]
	xp := d[base+1 : base+1+n]
	xm := d[base-1 : base-1+n]
	x := 0
	if unroll >= 2 {
		for ; x+2 <= n; x += 2 {
			dw[x] = wc*c[x] + wxp*xp[x] + wxm*xm[x]
			dw[x+1] = wc*c[x+1] + wxp*xp[x+1] + wxm*xm[x+1]
		}
	}
	for ; x < n; x++ {
		dw[x] = wc*c[x] + wxp*xp[x] + wxm*xm[x]
	}
}

// runRowBox computes one row of a box kernel (rows = 3 for the 2-D 3×3 box,
// 9 for the 3-D 3×3×3 box). Slot 3r+1 of the offset table is the centre of
// x-contiguous row r, so each row contributes d[j-1], d[j], d[j+1]. Terms
// accumulate one statement at a time to preserve the canonical summation
// order (bit-compatible with Reference for canonically ordered kernels).
func (fp *fastPlan[T]) runRowBox(dst []T, base, n, rows, unroll int) {
	d := fp.data
	// Hoist each canonical row's window out of the x loop: window r starts at
	// its leftmost tap and spans n+2 elements, so point x's taps are w[x],
	// w[x+1], w[x+2] — provably in-bounds, no per-element checks. The r-inner
	// statement-per-term accumulation order is unchanged.
	var win [9][]T
	for r := 0; r < rows; r++ {
		j := base + fp.off[3*r+1]
		win[r] = d[j-1 : j+n+1]
	}
	dw := dst[base : base+n]
	x := 0
	if unroll >= 2 {
		for ; x+2 <= n; x += 2 {
			var a0, a1 T
			for r := 0; r < rows; r++ {
				w := win[r][: n+2 : n+2]
				wl, wc, wr := fp.w[3*r], fp.w[3*r+1], fp.w[3*r+2]
				a0 += wl * w[x]
				a0 += wc * w[x+1]
				a0 += wr * w[x+2]
				a1 += wl * w[x+1]
				a1 += wc * w[x+2]
				a1 += wr * w[x+3]
			}
			dw[x] = a0
			dw[x+1] = a1
		}
	}
	for ; x < n; x++ {
		var acc T
		for r := 0; r < rows; r++ {
			w := win[r][: n+2 : n+2]
			acc += fp.w[3*r] * w[x]
			acc += fp.w[3*r+1] * w[x+1]
			acc += fp.w[3*r+2] * w[x+2]
		}
		dw[x] = acc
	}
}

// runTileFast sweeps one tile through the specialized body, computing row
// bases on the fly (RunLegacy and the oversize-grid fallback; compiled
// programs walk precomputed spans via runSpansFast).
func runTileFast[T grid.Float](fp *fastPlan[T], out *grid.Grid[T], t tile, unroll int) {
	dst := out.Data()
	for z := t.z0; z < t.z1; z++ {
		for y := t.y0; y < t.y1; y++ {
			base := out.Index(t.x0, y, z)
			n := t.x1 - t.x0
			switch fp.kind {
			case fastStar7:
				fp.runRowStar7(dst, base, n, unroll)
			case fastRow3:
				fp.runRowRow3(dst, base, n, unroll)
			case fastStar5:
				fp.runRowStar5(dst, base, n, unroll)
			case fastBox9:
				fp.runRowBox(dst, base, n, 3, unroll)
			case fastBox27:
				fp.runRowBox(dst, base, n, 9, unroll)
			}
		}
	}
}

// runSpansFast sweeps a run of precompiled (base, n) row-span pairs through
// the specialized body, with the kind dispatch hoisted out of the row loop.
func runSpansFast[T grid.Float](fp *fastPlan[T], dst []T, spans []int32, unroll int) {
	switch fp.kind {
	case fastStar7:
		for i := 0; i+1 < len(spans); i += 2 {
			fp.runRowStar7(dst, int(spans[i]), int(spans[i+1]), unroll)
		}
	case fastRow3:
		for i := 0; i+1 < len(spans); i += 2 {
			fp.runRowRow3(dst, int(spans[i]), int(spans[i+1]), unroll)
		}
	case fastStar5:
		for i := 0; i+1 < len(spans); i += 2 {
			fp.runRowStar5(dst, int(spans[i]), int(spans[i+1]), unroll)
		}
	case fastBox9:
		for i := 0; i+1 < len(spans); i += 2 {
			fp.runRowBox(dst, int(spans[i]), int(spans[i+1]), 3, unroll)
		}
	case fastBox27:
		for i := 0; i+1 < len(spans); i += 2 {
			fp.runRowBox(dst, int(spans[i]), int(spans[i+1]), 9, unroll)
		}
	}
}
