package exec

import "repro/internal/grid"

// Fast paths: fully specialized inner loops for the most common stencil
// shapes. The generic runRow* loops iterate over a term table; for hot
// kernels like the 7-point laplacian that indirection dominates, so the
// runner dispatches to a shape-specialized body when one matches. The
// specialization is detected structurally (offsets and weights), never by
// name, so DSL-defined kernels benefit too.

// fastKind enumerates the specialized bodies.
type fastKind int

const (
	fastNone fastKind = iota
	// fastStar7 is the 3-D 7-point star: centre + 6 axis neighbours,
	// arbitrary weights, single buffer.
	fastStar7
	// fastRow3 is the 1-D 3-point row stencil (x-1, x, x+1), single buffer.
	fastRow3
)

// fastPlan holds the precomputed data of a specialized kernel.
type fastPlan struct {
	kind fastKind
	data []float64
	// star7: weights wC, wXp, wXm, wYp, wYm, wZp, wZm and index offsets.
	w   [7]float64
	off [7]int
}

// detectFast inspects a plan and returns a specialization when the kernel
// matches one of the known shapes exactly.
func detectFast(k *LinearKernel, p *plan) *fastPlan {
	if k.Buffers != 1 {
		return nil
	}
	switch len(k.Terms) {
	case 7:
		return detectStar7(k, p)
	case 3:
		return detectRow3(k, p)
	}
	return nil
}

// detectStar7 matches centre + ±x, ±y, ±z unit offsets.
func detectStar7(k *LinearKernel, p *plan) *fastPlan {
	want := [7][3]int{
		{0, 0, 0}, {1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1},
	}
	fp := &fastPlan{kind: fastStar7, data: p.data[0]}
	matched := 0
	for slot, w := range want {
		found := false
		for ti, t := range k.Terms {
			if t.Offset.X == w[0] && t.Offset.Y == w[1] && t.Offset.Z == w[2] {
				fp.w[slot] = p.weight[ti]
				fp.off[slot] = p.idxOff[ti]
				found = true
				matched++
				break
			}
		}
		if !found {
			return nil
		}
	}
	if matched != 7 {
		return nil
	}
	return fp
}

// detectRow3 matches (x-1, x, x+1) with any weights.
func detectRow3(k *LinearKernel, p *plan) *fastPlan {
	want := [3][3]int{{0, 0, 0}, {1, 0, 0}, {-1, 0, 0}}
	fp := &fastPlan{kind: fastRow3, data: p.data[0]}
	matched := 0
	for slot, w := range want {
		for ti, t := range k.Terms {
			if t.Offset.X == w[0] && t.Offset.Y == w[1] && t.Offset.Z == w[2] {
				fp.w[slot] = p.weight[ti]
				fp.off[slot] = p.idxOff[ti]
				matched++
				break
			}
		}
		_ = slot
	}
	if matched != 3 {
		return nil
	}
	return fp
}

// runRowStar7 computes one row of the 7-point star without the term table.
// The unroll parameter selects the blocked body width like the generic path.
func (fp *fastPlan) runRowStar7(dst []float64, base, n, unroll int) {
	d := fp.data
	wc, wxp, wxm, wyp, wym, wzp, wzm := fp.w[0], fp.w[1], fp.w[2], fp.w[3], fp.w[4], fp.w[5], fp.w[6]
	oyp, oym, ozp, ozm := fp.off[3], fp.off[4], fp.off[5], fp.off[6]
	x := 0
	if unroll >= 2 {
		for ; x+2 <= n; x += 2 {
			i := base + x
			dst[i] = wc*d[i] + wxp*d[i+1] + wxm*d[i-1] +
				wyp*d[i+oyp] + wym*d[i+oym] + wzp*d[i+ozp] + wzm*d[i+ozm]
			j := i + 1
			dst[j] = wc*d[j] + wxp*d[j+1] + wxm*d[j-1] +
				wyp*d[j+oyp] + wym*d[j+oym] + wzp*d[j+ozp] + wzm*d[j+ozm]
		}
	}
	for ; x < n; x++ {
		i := base + x
		dst[i] = wc*d[i] + wxp*d[i+1] + wxm*d[i-1] +
			wyp*d[i+oyp] + wym*d[i+oym] + wzp*d[i+ozp] + wzm*d[i+ozm]
	}
}

// runRowRow3 computes one row of the 3-point x stencil.
func (fp *fastPlan) runRowRow3(dst []float64, base, n, unroll int) {
	d := fp.data
	wc, wxp, wxm := fp.w[0], fp.w[1], fp.w[2]
	x := 0
	if unroll >= 2 {
		for ; x+2 <= n; x += 2 {
			i := base + x
			dst[i] = wc*d[i] + wxp*d[i+1] + wxm*d[i-1]
			dst[i+1] = wc*d[i+1] + wxp*d[i+2] + wxm*d[i]
		}
	}
	for ; x < n; x++ {
		i := base + x
		dst[i] = wc*d[i] + wxp*d[i+1] + wxm*d[i-1]
	}
}

// runTileFast sweeps one tile through the specialized body.
func runTileFast(fp *fastPlan, out *grid.Grid, t tile, unroll int) {
	dst := out.Data()
	for z := t.z0; z < t.z1; z++ {
		for y := t.y0; y < t.y1; y++ {
			base := out.Index(t.x0, y, z)
			n := t.x1 - t.x0
			switch fp.kind {
			case fastStar7:
				fp.runRowStar7(dst, base, n, unroll)
			case fastRow3:
				fp.runRowRow3(dst, base, n, unroll)
			}
		}
	}
}
