package exec

import (
	"sync"
	"sync/atomic"

	"repro/internal/grid"
)

// workerPool is a Runner's persistent execution crew: long-lived goroutines
// that park on a channel between runs instead of being respawned per call.
// One run publishes the job (program, output grid, reset chunk counter),
// wakes up to len(tiles) workers, and waits for the same number of
// completion tokens. Workers claim chunks of tv.C consecutive tiles from the
// shared atomic counter, exactly like the original spawn-per-call scheduler.
//
// Memory ordering: job fields are written before the wake sends and read
// only by woken workers, and every completion token is received before the
// next run's writes, so plain (non-atomic) access to job.prog/job.out is
// race-free; only the chunk counter needs atomics.
type workerPool[T grid.Float] struct {
	workers int
	wake    chan struct{}
	done    chan struct{}
	quit    chan struct{}
	wg      sync.WaitGroup

	job struct {
		prog  *Program[T]
		fused *FusedProgram[T]
		out   *grid.Grid[T]
		next  int64
	}
}

// newWorkerPool starts workers-1 goroutines: the goroutine calling run is
// always the final drain participant, so total parallelism is workers.
func newWorkerPool[T grid.Float](workers int) *workerPool[T] {
	p := &workerPool[T]{
		workers: workers,
		wake:    make(chan struct{}, workers),
		done:    make(chan struct{}, workers),
		quit:    make(chan struct{}),
	}
	p.wg.Add(workers - 1)
	for i := 1; i < workers; i++ {
		go p.worker()
	}
	return p
}

// stop terminates the workers and waits for them to exit. The pool must be
// idle (no run in flight); the Runner guarantees this by serializing runs
// and Close under its mutex.
func (p *workerPool[T]) stop() {
	close(p.quit)
	p.wg.Wait()
}

// run executes one program over the given output grid, blocking until every
// tile has been processed. Only one run may be in flight at a time. The
// calling goroutine participates in the drain, so a single-tile job (the
// small-grid regime where dispatch overhead dominates) involves no channel
// round-trip at all.
func (p *workerPool[T]) run(prog *Program[T], out *grid.Grid[T]) {
	p.job.prog = prog
	p.job.out = out
	atomic.StoreInt64(&p.job.next, 0)
	n := p.workers
	if n > len(prog.tiles) {
		n = len(prog.tiles)
	}
	for i := 1; i < n; i++ {
		p.wake <- struct{}{}
	}
	p.drain()
	for i := 1; i < n; i++ {
		<-p.done
	}
}

// runFused executes one wavefront iteration of a fused program: the active
// plane tasks' rows form a flat index space claimed in chunks, exactly like
// tile claiming. The caller participates in the drain, so a 2-D fused sweep
// with a single active row still involves no channel round-trip.
func (p *workerPool[T]) runFused(fp *FusedProgram[T]) {
	p.job.fused = fp
	atomic.StoreInt64(&p.job.next, 0)
	n := p.workers
	if c := ceilDiv(fp.active*fp.rows, fp.chunk); n > c {
		n = c
	}
	for i := 1; i < n; i++ {
		p.wake <- struct{}{}
	}
	p.drain()
	for i := 1; i < n; i++ {
		<-p.done
	}
	p.job.fused = nil
}

func (p *workerPool[T]) worker() {
	defer p.wg.Done()
	for {
		select {
		case <-p.quit:
			return
		case <-p.wake:
			p.drain()
			p.done <- struct{}{}
		}
	}
}

// drain claims and executes chunks until the tile list is exhausted. Chunks
// are still claimed in units of tv.C tiles (the scheduling semantics of the
// chunk parameter), but each claimed tile range executes through the
// program's precompiled row spans: a linear walk of (base, n) pairs with no
// per-row index arithmetic. Grids too large for the int32 span plan fall
// back to computing row bases on the fly.
func (p *workerPool[T]) drain() {
	if fp := p.job.fused; fp != nil {
		fp.drainRows(&p.job.next)
		return
	}
	prog := p.job.prog
	out := p.job.out
	tiles := prog.tiles
	chunk := prog.tv.C
	dst := out.Data()
	for {
		start := int(atomic.AddInt64(&p.job.next, int64(chunk))) - chunk
		if start >= len(tiles) {
			return
		}
		end := start + chunk
		if end > len(tiles) {
			end = len(tiles)
		}
		if prog.spans == nil {
			for _, t := range tiles[start:end] {
				if prog.fp != nil {
					runTileFast(prog.fp, out, t, prog.tv.U)
				} else {
					runTile(&prog.p, out, t, prog.tv.U)
				}
			}
			continue
		}
		spans := prog.spans[2*int(prog.spanStart[start]) : 2*int(prog.spanStart[end])]
		if prog.fp != nil {
			runSpansFast(prog.fp, dst, spans, prog.tv.U)
		} else {
			runSpans(&prog.p, dst, spans, prog.fuse)
		}
	}
}
