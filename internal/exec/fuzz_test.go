package exec

import (
	"testing"

	"repro/internal/tunespace"
)

// FuzzDecompose locks in the PR 3 invariant TestRowPlanCoversDomainExactly
// pinned for one geometry, under adversarial geometries: for any extents,
// halo widths and tile sizes, the tile decomposition partitions the interior
// exactly (every point covered once, no degenerate tiles, no overlap), and
// the compiled span plan agrees — every tile owns exactly its rows, every
// span stays inside the interior of its row, and spans jointly cover every
// interior flat index exactly once.
//
// Inputs are folded into small ranges so each case stays fast: extents in
// [1, 32], halos in [0, 3], tile sizes in [1, 40], which still exercises
// tiles larger than the domain, unit tiles, flat/linear domains and 2-D
// (nz = 1, haloZ = 0) degenerate geometries.
func FuzzDecompose(f *testing.F) {
	f.Add(uint8(30), uint8(20), uint8(10), uint8(1), uint8(7), uint8(8), uint8(3))
	f.Add(uint8(1), uint8(1), uint8(1), uint8(0), uint8(1), uint8(1), uint8(1))
	f.Add(uint8(32), uint8(32), uint8(1), uint8(3), uint8(40), uint8(40), uint8(40))
	f.Add(uint8(17), uint8(5), uint8(23), uint8(2), uint8(4), uint8(11), uint8(2))
	f.Fuzz(func(t *testing.T, nx, ny, nz, halo, bx, by, bz uint8) {
		g := geom{
			nx:   int(nx)%32 + 1,
			ny:   int(ny)%32 + 1,
			nz:   int(nz)%32 + 1,
			halo: int(halo) % 4,
		}
		if g.nz > 1 {
			g.haloZ = int(halo) % 4
		}
		tv := tunespace.Vector{
			Bx: int(bx)%40 + 1,
			By: int(by)%40 + 1,
			Bz: int(bz)%40 + 1,
			U:  0,
			C:  1,
		}
		if g.nz == 1 {
			tv.Bz = 1
		}

		tiles := decompose(g, tv)

		// Exact partition of the interior: tile volumes sum to the domain
		// volume and every tile is a non-degenerate in-bounds box. Together
		// with per-point coverage (checked below through the span plan) this
		// rules out both gaps and overlap.
		volume := 0
		for _, tl := range tiles {
			if tl.x0 >= tl.x1 || tl.y0 >= tl.y1 || tl.z0 >= tl.z1 {
				t.Fatalf("degenerate tile %+v (geom %+v, tv %+v)", tl, g, tv)
			}
			if tl.x0 < 0 || tl.x1 > g.nx || tl.y0 < 0 || tl.y1 > g.ny || tl.z0 < 0 || tl.z1 > g.nz {
				t.Fatalf("tile %+v exceeds domain %+v", tl, g)
			}
			if tl.x1-tl.x0 > tv.Bx || tl.y1-tl.y0 > tv.By || tl.z1-tl.z0 > tv.Bz {
				t.Fatalf("tile %+v larger than block %+v", tl, tv)
			}
			volume += (tl.x1 - tl.x0) * (tl.y1 - tl.y0) * (tl.z1 - tl.z0)
		}
		if want := g.nx * g.ny * g.nz; volume != want {
			t.Fatalf("tiles cover volume %d, want %d (geom %+v, tv %+v)", volume, want, g, tv)
		}

		spans, spanStart := buildSpans(g, tiles)
		if spans == nil || len(spanStart) != len(tiles)+1 {
			t.Fatalf("span plan missing: spans=%d spanStart=%d tiles=%d", len(spans), len(spanStart), len(tiles))
		}

		// Interior flat indices, each expected exactly once.
		want := make(map[int]bool, g.nx*g.ny*g.nz)
		for z := 0; z < g.nz; z++ {
			for y := 0; y < g.ny; y++ {
				for x := 0; x < g.nx; x++ {
					want[g.index(x, y, z)] = true
				}
			}
		}
		covered := make(map[int]int, len(want))
		for ti := range tiles {
			lo, hi := spanStart[ti], spanStart[ti+1]
			rows := (tiles[ti].y1 - tiles[ti].y0) * (tiles[ti].z1 - tiles[ti].z0)
			if int(hi-lo) != rows {
				t.Fatalf("tile %d owns %d spans, want %d", ti, hi-lo, rows)
			}
			for si := lo; si < hi; si++ {
				base, n := int(spans[2*si]), int(spans[2*si+1])
				if n != tiles[ti].x1-tiles[ti].x0 {
					t.Fatalf("tile %d span %d has length %d, want %d", ti, si, n, tiles[ti].x1-tiles[ti].x0)
				}
				for i := base; i < base+n; i++ {
					if !want[i] {
						t.Fatalf("span [%d,%d) covers non-interior index %d (geom %+v, tv %+v)",
							base, base+n, i, g, tv)
					}
					covered[i]++
				}
			}
		}
		if len(covered) != len(want) {
			t.Fatalf("spans cover %d points, want %d (geom %+v, tv %+v)", len(covered), len(want), g, tv)
		}
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("index %d covered %d times (geom %+v, tv %+v)", i, c, g, tv)
			}
		}
	})
}
