package exec

import (
	"fmt"

	"repro/internal/shape"
	"repro/internal/stencil"
)

// This file provides executable realizations (weights included) of the nine
// Table III benchmark kernels. Weights follow the textbook forms of each
// operator; the learning system never sees them — only the access patterns —
// but the examples and the Measure evaluation mode run them for real.

// BlurExec is the 5×5 box blur.
func BlurExec() *LinearKernel {
	k := &LinearKernel{Name: "blur", Buffers: 1}
	for y := -2; y <= 2; y++ {
		for x := -2; x <= 2; x++ {
			k.Terms = append(k.Terms, Term{Offset: shape.Point{X: x, Y: y}, Weight: 1.0 / 25})
		}
	}
	return k
}

// EdgeExec is the 3×3 edge-detection (discrete laplacian-of-box) kernel.
func EdgeExec() *LinearKernel {
	k := &LinearKernel{Name: "edge", Buffers: 1}
	for y := -1; y <= 1; y++ {
		for x := -1; x <= 1; x++ {
			w := -1.0
			if x == 0 && y == 0 {
				w = 8
			}
			k.Terms = append(k.Terms, Term{Offset: shape.Point{X: x, Y: y}, Weight: w})
		}
	}
	return k
}

// GameOfLifeExec is the smoothed game-of-life neighbourhood rule: the centre
// keeps half its weight, the eight neighbours share the other half.
func GameOfLifeExec() *LinearKernel {
	k := &LinearKernel{Name: "game-of-life", Buffers: 1}
	for y := -1; y <= 1; y++ {
		for x := -1; x <= 1; x++ {
			w := 0.5 / 8
			if x == 0 && y == 0 {
				w = 0.5
			}
			k.Terms = append(k.Terms, Term{Offset: shape.Point{X: x, Y: y}, Weight: w})
		}
	}
	return k
}

// WaveExec is the 4th-order wave-equation update: a radius-2 laplacian star
// with the classic (-1/12, 4/3) coefficients plus the centre terms.
func WaveExec() *LinearKernel {
	const c2dt2 = 0.25 // (c·dt/dx)² CFL-stable constant
	k := &LinearKernel{Name: "wave-1", Buffers: 1}
	centre := 2.0 - c2dt2*7.5 // 2 - c²dt²·(3·5/2)
	k.Terms = append(k.Terms, Term{Offset: shape.Point{}, Weight: centre})
	for _, axis := range [][3]int{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}} {
		for _, d := range []struct {
			r int
			w float64
		}{{1, 4.0 / 3}, {2, -1.0 / 12}} {
			for _, sgn := range []int{1, -1} {
				p := shape.Point{X: axis[0] * d.r * sgn, Y: axis[1] * d.r * sgn, Z: axis[2] * d.r * sgn}
				k.Terms = append(k.Terms, Term{Offset: p, Weight: c2dt2 * d.w})
			}
		}
	}
	// The "+1": the previous time-step value, folded into the same buffer
	// as a second centre read (matching the Table III access accounting).
	k.Terms = append(k.Terms, Term{Offset: shape.Point{}, Weight: -1})
	return k
}

// TricubicExec is the 4×4×4 tricubic interpolation gather over 3 buffers:
// each buffer holds one spatial stage and contributes cubic weights.
func TricubicExec() *LinearKernel {
	// Catmull-Rom cubic weights at parameter 0.5.
	w := []float64{-0.0625, 0.5625, 0.5625, -0.0625}
	k := &LinearKernel{Name: "tricubic", Buffers: 3}
	for z := -1; z <= 2; z++ {
		for y := -1; y <= 2; y++ {
			for x := -1; x <= 2; x++ {
				buf := (x + y + z + 3) % 3
				weight := w[x+1] * w[y+1] * w[z+1]
				k.Terms = append(k.Terms, Term{
					Buffer: buf,
					Offset: shape.Point{X: x, Y: y, Z: z},
					Weight: weight,
				})
			}
		}
	}
	return k
}

// DivergenceExec reads three vector-component buffers with central
// differences along their respective axes.
func DivergenceExec() *LinearKernel {
	const inv2h = 0.5
	return &LinearKernel{Name: "divergence", Buffers: 3, Terms: []Term{
		{Buffer: 0, Offset: shape.Point{X: 1}, Weight: inv2h},
		{Buffer: 0, Offset: shape.Point{X: -1}, Weight: -inv2h},
		{Buffer: 1, Offset: shape.Point{Y: 1}, Weight: inv2h},
		{Buffer: 1, Offset: shape.Point{Y: -1}, Weight: -inv2h},
		{Buffer: 2, Offset: shape.Point{Z: 1}, Weight: inv2h},
		{Buffer: 2, Offset: shape.Point{Z: -1}, Weight: -inv2h},
	}}
}

// GradientExec is the central-difference gradient magnitude proxy (sum of
// the six axis neighbours with alternating signs).
func GradientExec() *LinearKernel {
	const inv2h = 0.5
	return &LinearKernel{Name: "gradient", Buffers: 1, Terms: []Term{
		{Offset: shape.Point{X: 1}, Weight: inv2h},
		{Offset: shape.Point{X: -1}, Weight: -inv2h},
		{Offset: shape.Point{Y: 1}, Weight: inv2h},
		{Offset: shape.Point{Y: -1}, Weight: -inv2h},
		{Offset: shape.Point{Z: 1}, Weight: inv2h},
		{Offset: shape.Point{Z: -1}, Weight: -inv2h},
	}}
}

// LaplacianExec is the 7-point laplacian.
func LaplacianExec() *LinearKernel {
	k := &LinearKernel{Name: "laplacian", Buffers: 1, Terms: []Term{
		{Offset: shape.Point{}, Weight: -6},
	}}
	for _, p := range []shape.Point{{X: 1}, {X: -1}, {Y: 1}, {Y: -1}, {Z: 1}, {Z: -1}} {
		k.Terms = append(k.Terms, Term{Offset: p, Weight: 1})
	}
	return k
}

// Laplacian6Exec is the 6th-order 19-point laplacian with the standard
// (3/2, -3/20, 1/90) coefficients.
func Laplacian6Exec() *LinearKernel {
	k := &LinearKernel{Name: "laplacian6", Buffers: 1, Terms: []Term{
		{Offset: shape.Point{}, Weight: -3 * 49.0 / 18},
	}}
	coeff := []float64{3.0 / 2, -3.0 / 20, 1.0 / 90}
	for _, axis := range [][3]int{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}} {
		for r := 1; r <= 3; r++ {
			for _, sgn := range []int{1, -1} {
				p := shape.Point{X: axis[0] * r * sgn, Y: axis[1] * r * sgn, Z: axis[2] * r * sgn}
				k.Terms = append(k.Terms, Term{Offset: p, Weight: coeff[r-1]})
			}
		}
	}
	return k
}

// ExecutableByName returns the executable realization of a Table III kernel.
func ExecutableByName(name string) (*LinearKernel, error) {
	switch name {
	case "blur":
		return BlurExec(), nil
	case "edge":
		return EdgeExec(), nil
	case "game-of-life":
		return GameOfLifeExec(), nil
	case "wave-1":
		return WaveExec(), nil
	case "tricubic":
		return TricubicExec(), nil
	case "divergence":
		return DivergenceExec(), nil
	case "gradient":
		return GradientExec(), nil
	case "laplacian":
		return LaplacianExec(), nil
	case "laplacian6":
		return Laplacian6Exec(), nil
	default:
		return nil, fmt.Errorf("exec: no executable kernel %q", name)
	}
}

// Executable returns the executable realization of a model kernel: the
// hand-written benchmark version when the name matches Table III, otherwise
// the generic uniform-weight conversion.
func Executable(k *stencil.Kernel) *LinearKernel {
	if lk, err := ExecutableByName(k.Name); err == nil {
		return lk
	}
	return FromStencil(k)
}
