package exec

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/grid"
	"repro/internal/stencil"
	"repro/internal/tunespace"
)

// buildWorkspaceOf is the type-generic twin of buildWorkspace: an output
// grid plus filled, per-buffer-distinguishable input buffers of element
// type T.
func buildWorkspaceOf[T grid.Float](k *LinearKernel, nx, ny, nz int) (*grid.Grid[T], []*grid.Grid[T]) {
	halo := k.MaxOffset()
	haloZ := halo
	if nz == 1 {
		haloZ = 0
	}
	out := grid.NewOf[T](nx, ny, nz, halo, haloZ)
	var ins []*grid.Grid[T]
	for b := 0; b < k.Buffers; b++ {
		g := grid.NewOf[T](nx, ny, nz, halo, haloZ)
		g.FillPattern()
		for i, d := 0, g.Data(); i < len(d); i++ {
			d[i] += T(float64(b) * 0.311)
		}
		ins = append(ins, g)
	}
	return out, ins
}

// TestFloat32RowsMatchReference is the float32 mirror of
// TestGenericRowsMatchReference: random generic-path kernels × halos ×
// 2-D/3-D geometries × tile sizes, asserting the compiled float32 span-walk
// path is bit-for-bit equal to the float32 Reference sweep. Both sides
// accumulate in float32 with plan-order association, so no tolerance is
// needed — this is what "precision-faithful" means for the generic path.
func TestFloat32RowsMatchReference(t *testing.T) {
	r := NewRunnerOf[float32]()
	defer r.Close()
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 30; trial++ {
		dims := 2 + rng.Intn(2)
		halo := 1 + rng.Intn(3)
		k := randomGenericKernel(rng, dims, halo)
		nx, ny := 3+rng.Intn(31), 3+rng.Intn(31)
		nz := 1
		if dims == 3 {
			nz = 3 + rng.Intn(14)
		}
		ref, ins := buildWorkspaceOf[float32](k, nx, ny, nz)
		if err := r.Reference(k, ref, ins); err != nil {
			t.Fatalf("trial %d %s: reference: %v", trial, k.Name, err)
		}
		for probe := 0; probe < 4; probe++ {
			tv := tunespace.Vector{
				Bx: 2 + rng.Intn(40),
				By: 2 + rng.Intn(40),
				Bz: 1,
				U:  rng.Intn(9),
				C:  1 + rng.Intn(8),
			}
			if dims == 3 {
				tv.Bz = 2 + rng.Intn(16)
			}
			got := grid.NewOf[float32](nx, ny, nz, k.MaxOffset(), ref.HaloZ)
			if err := r.Run(k, got, ins, tv); err != nil {
				t.Fatalf("trial %d %s %+v: %v", trial, k.Name, tv, err)
			}
			pr, err := r.Compile(k, got, ins, tv)
			if err != nil {
				t.Fatal(err)
			}
			if pr.fp != nil {
				t.Fatalf("trial %d %s: unexpectedly matched fast path %v", trial, k.Name, pr.fp.kind)
			}
			if d := grid.MaxAbsDiff(ref, got); d != 0 {
				t.Fatalf("trial %d %s %+v: diff %g, want bit-for-bit match", trial, k.Name, tv, d)
			}
		}
	}
}

// TestFloat32FastPathsMatchReference proves the specialized float32 bodies
// agree bit-for-bit with the float32 reference for canonically ordered
// kernels — the fast paths accumulate in the canonical slot order, which for
// these kernels is plan order.
func TestFloat32FastPathsMatchReference(t *testing.T) {
	r := NewRunnerOf[float32]()
	defer r.Close()
	rng := rand.New(rand.NewSource(17))
	cases := []struct {
		name string
		k    *LinearKernel
		nz   int
	}{
		{"laplacian-star7", LaplacianExec(), 11},
		{"star5", star5Kernel(), 1},
		{"box9-edge", EdgeExec(), 1},
		{"box27", box27Kernel(), 9},
	}
	for _, tc := range cases {
		nx, ny := 37, 21
		ref, ins := buildWorkspaceOf[float32](tc.k, nx, ny, tc.nz)
		if err := r.Reference(tc.k, ref, ins); err != nil {
			t.Fatalf("%s: reference: %v", tc.name, err)
		}
		dims := 3
		if tc.nz == 1 {
			dims = 2
		}
		space := tunespace.NewSpace(dims)
		for trial := 0; trial < 8; trial++ {
			tv := space.Random(rng)
			got := grid.NewOf[float32](nx, ny, tc.nz, tc.k.MaxOffset(), ref.HaloZ)
			if err := r.Run(tc.k, got, ins, tv); err != nil {
				t.Fatalf("%s %v: %v", tc.name, tv, err)
			}
			if d := grid.MaxAbsDiff(ref, got); d != 0 {
				t.Fatalf("%s %v: diff %g, want bit-for-bit match", tc.name, tv, d)
			}
		}
	}
}

// maxAbsInterior returns the maximum interior magnitude of a grid as
// float64.
func maxAbsInterior[T grid.Float](g *grid.Grid[T]) float64 {
	var m float64
	for z := 0; z < g.NZ; z++ {
		for y := 0; y < g.NY; y++ {
			for x := 0; x < g.NX; x++ {
				if v := math.Abs(float64(g.At(x, y, z))); v > m {
					m = v
				}
			}
		}
	}
	return m
}

// TestCrossPrecisionAgreement runs every benchmark kernel in both
// precisions and checks the float32 result against the float64 one within
// an analytically justified bound.
//
// Error model: each output point is a left-associated sum of N products
// w_i·x_i. The float32 path converts inputs and weights (one rounding each,
// relative eps32 = 2⁻²⁴) and performs N multiplies and N-1 adds; standard
// forward-error analysis bounds the result by (N+2)·eps32·Σ|w_i x_i| to
// first order. We bound Σ|w_i x_i| by Σ|w_i| · max|x| over the inputs and
// double the whole bound for slack (second-order terms, halo values
// slightly exceeding the interior max used here).
func TestCrossPrecisionAgreement(t *testing.T) {
	r64 := NewRunner()
	r32 := NewRunnerOf[float32]()
	defer r64.Close()
	defer r32.Close()
	const eps32 = 1.0 / (1 << 24)
	for _, name := range []string{
		"blur", "edge", "game-of-life", "wave-1", "tricubic",
		"divergence", "gradient", "laplacian", "laplacian6",
	} {
		k, err := ExecutableByName(name)
		if err != nil {
			t.Fatal(err)
		}
		nx, ny, nz := 36, 28, 12
		if name == "blur" || name == "edge" || name == "game-of-life" {
			nz = 1
		}
		out64, ins64 := buildWorkspace(t, k, nx, ny, nz)
		out32, ins32 := buildWorkspaceOf[float32](k, nx, ny, nz)
		tv := tunespace.Vector{Bx: 16, By: 8, Bz: 4, U: 2, C: 2}
		if nz == 1 {
			tv.Bz = 1
		}
		if err := r64.Run(k, out64, ins64, tv); err != nil {
			t.Fatalf("%s float64: %v", name, err)
		}
		if err := r32.Run(k, out32, ins32, tv); err != nil {
			t.Fatalf("%s float32: %v", name, err)
		}

		var sumW, maxIn float64
		for _, term := range k.Terms {
			sumW += math.Abs(term.Weight)
		}
		for _, g := range ins64 {
			if v := maxAbsInterior(g); v > maxIn {
				maxIn = v
			}
		}
		// Halo cells feed the sums too; FillPattern keeps them within ~30%
		// of the interior max, covered by the ×2 slack below.
		tol := 2 * float64(len(k.Terms)+2) * eps32 * sumW * maxIn

		var worst float64
		for z := 0; z < nz; z++ {
			for y := 0; y < ny; y++ {
				for x := 0; x < nx; x++ {
					d := math.Abs(out64.At(x, y, z) - float64(out32.At(x, y, z)))
					if d > worst {
						worst = d
					}
				}
			}
		}
		if worst > tol {
			t.Errorf("%s: float32 vs float64 diff %g exceeds analytic tolerance %g", name, worst, tol)
		}
		if worst == 0 && name == "blur" {
			// Sanity check on the test itself: a 25-term float32 sum over
			// transcendental inputs rounding identically to float64 at every
			// point would mean we silently ran both sides in one precision.
			t.Errorf("%s: float32 and float64 results are bitwise identical — precision split not exercised", name)
		}
	}
}

// TestMeasurerHonorsDataType asserts the measurer allocates DataType-sized
// workspaces: a Float32 instance populates the float32 workspace cache (and
// its bytes match Len×4 exactly), a Float64 instance of identical geometry
// allocates twice the bytes in the float64 cache, and each engine's program
// cache only sees its own precision.
func TestMeasurerHonorsDataType(t *testing.T) {
	m := NewMeasurer()
	defer m.Close()
	m.Repetitions = 1
	size := stencil.Size3D(16, 16, 16)
	tv := tunespace.Vector{Bx: 8, By: 8, Bz: 8, U: 0, C: 1}

	k32 := &stencil.Kernel{Name: "laplacian", Shape: stencil.Laplacian().Shape, Buffers: 1, Type: stencil.Float32}
	if _, err := m.Measure(stencil.Instance{Kernel: k32, Size: size}, tv); err != nil {
		t.Fatal(err)
	}
	b32, b64 := m.WorkspaceBytes()
	if b64 != 0 {
		t.Fatalf("float32 measurement grew the float64 workspace cache (%d bytes)", b64)
	}
	if len(m.ws32) != 1 || len(m.ws64) != 0 {
		t.Fatalf("workspace maps after float32 measure: ws32=%d ws64=%d, want 1/0", len(m.ws32), len(m.ws64))
	}
	var wantBytes int
	for _, w := range m.ws32 {
		wantBytes = (1 + len(w.ins)) * w.out.Len() * 4
	}
	if b32 != wantBytes {
		t.Fatalf("float32 workspace bytes = %d, want %d (Len × 4 per grid)", b32, wantBytes)
	}
	if len(m.Runner32.progs) != 1 || len(m.Runner.progs) != 0 {
		t.Fatalf("program caches after float32 measure: f32=%d f64=%d, want 1/0",
			len(m.Runner32.progs), len(m.Runner.progs))
	}

	// Same kernel structure and geometry declared as Float64: the double
	// cache grows by exactly 2× the float32 bytes.
	if _, err := m.Measure(stencil.Instance{Kernel: stencil.Laplacian(), Size: size}, tv); err != nil {
		t.Fatal(err)
	}
	nb32, nb64 := m.WorkspaceBytes()
	if nb32 != b32 {
		t.Fatalf("float64 measurement changed the float32 cache: %d → %d bytes", b32, nb32)
	}
	if nb64 != 2*b32 {
		t.Fatalf("float64 workspace bytes = %d, want %d (2× the float32 workspace)", nb64, 2*b32)
	}
}

// TestCrossPrecisionMeasureBatch smoke-tests the batched measure path across
// a mixed-precision pair of instances sharing one measurer.
func TestCrossPrecisionMeasureBatch(t *testing.T) {
	m := NewMeasurer()
	defer m.Close()
	m.Repetitions = 1
	tvs := []tunespace.Vector{
		{Bx: 8, By: 8, Bz: 8, U: 0, C: 1},
		{Bx: 16, By: 4, Bz: 4, U: 2, C: 2},
	}
	for _, k := range []*stencil.Kernel{stencil.Tricubic(), stencil.Laplacian()} {
		q := stencil.Instance{Kernel: k, Size: stencil.Size3D(16, 16, 16)}
		secs, err := m.MeasureBatch(q, tvs)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		for i, s := range secs {
			if s <= 0 {
				t.Errorf("%s vector %d: measured %v seconds", k.Name, i, s)
			}
		}
	}
}

// TestCompiledRunZeroAllocsFloat32 is the float32 twin of
// TestCompiledRunZeroAllocs: steady-state Run through the float32 engine
// must not allocate on the fast path, the generic path, or the multi-buffer
// path.
func TestCompiledRunZeroAllocsFloat32(t *testing.T) {
	r := NewRunnerOf[float32]()
	defer r.Close()
	cases := []struct {
		name string
		k    *LinearKernel
		nz   int
	}{
		{"fastpath-laplacian", LaplacianExec(), 24},
		{"generic-gradient", GradientExec(), 24},
		{"multibuffer-divergence", DivergenceExec(), 24},
		{"generic-blur-2d", BlurExec(), 1},
	}
	for _, tc := range cases {
		out, ins := buildWorkspaceOf[float32](tc.k, 24, 24, tc.nz)
		tv := tunespace.Vector{Bx: 8, By: 8, Bz: 8, U: 2, C: 2}
		if tc.nz == 1 {
			tv.Bz = 1
		}
		if err := r.Run(tc.k, out, ins, tv); err != nil { // warm the cache
			t.Fatalf("%s: %v", tc.name, err)
		}
		allocs := testing.AllocsPerRun(50, func() {
			if err := r.Run(tc.k, out, ins, tv); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: %v allocs per steady-state float32 Run, want 0", tc.name, allocs)
		}
	}
}

// TestFloat32LegacyMatchesCompiled keeps RunLegacy equivalent to the
// compiled path on the float32 instantiation too.
func TestFloat32LegacyMatchesCompiled(t *testing.T) {
	r := NewRunnerOf[float32]()
	defer r.Close()
	rng := rand.New(rand.NewSource(29))
	for _, k := range []*LinearKernel{LaplacianExec(), TricubicExec()} {
		legacy, ins := buildWorkspaceOf[float32](k, 21, 15, 9)
		tv := tunespace.NewSpace(3).Random(rng)
		if err := r.RunLegacy(k, legacy, ins, tv); err != nil {
			t.Fatalf("%s legacy: %v", k.Name, err)
		}
		compiled := grid.NewOf[float32](21, 15, 9, k.MaxOffset(), legacy.HaloZ)
		if err := r.Run(k, compiled, ins, tv); err != nil {
			t.Fatalf("%s compiled: %v", k.Name, err)
		}
		if d := grid.MaxAbsDiff(legacy, compiled); d != 0 {
			t.Errorf("%s: float32 legacy vs compiled diff %g", k.Name, d)
		}
	}
}

// TestPerTypeGridPoolsDisjoint guards the pooling split: a released float64
// grid must never be handed back for a float32 acquire of the same geometry.
func TestPerTypeGridPoolsDisjoint(t *testing.T) {
	g64 := grid.Acquire(8, 8, 8, 1, 1)
	g64.Fill(5)
	grid.Release(g64)
	g32 := grid.AcquireOf[float32](8, 8, 8, 1, 1)
	defer grid.ReleaseOf(g32)
	if g32.ElemBytes() != 4 {
		t.Fatalf("float32 acquire returned %d-byte elements", g32.ElemBytes())
	}
	for i, v := range g32.Data() {
		if v != 0 {
			t.Fatalf("float32 grid cell %d = %v, want 0 (cross-type pool leak?)", i, v)
		}
	}
}
