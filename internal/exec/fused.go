package exec

import (
	"fmt"
	"sync/atomic"

	"repro/internal/grid"
	"repro/internal/tunespace"
)

// Temporal blocking: fused multi-timestep execution. A FusedProgram advances
// the tuning vector's fusion depth K timesteps in a single streaming sweep,
// so each grid plane loaded from DRAM is reused K times while it is still
// cache-resident. On DRAM-bound stencils this trades a little redundant
// recomputation near the periodic seam for a K-fold cut in main-memory
// round-trips per step.
//
// The schedule is a skewed wavefront along the outermost axis (z for 3-D
// grids, y for 2-D). Level s ∈ [1, K] holds the state after s fused steps;
// levels 1..K-1 live in small ring buffers of full planes, level K writes
// the output grid directly. With stream radius rs (the kernel's maximum
// offset along the stream axis), level s is skewed 2·rs+1 planes behind
// level s-1: at iteration i, level s computes its sequence-index
// j = i − (s−1)·(2·rs+1) plane. The extra +1 over the minimal dependency
// distance makes every level's plane of one iteration depend only on planes
// completed in *previous* iterations, so all K plane computations of an
// iteration run concurrently on the worker pool — one dispatch per
// iteration instead of one per level.
//
// Levels s < K compute 2·rs·(K−s) planes beyond the domain on each run
// (sequence length n + 2·rs·(K−s)); those extension planes duplicate the
// wrapped interior planes exactly (same inputs, same operation order), which
// is what makes the periodic seam bit-identical to sequential stepping
// rather than merely close.
//
// Bit-identity. Every intermediate value is materialized from the same
// inputs, with the same per-point accumulation order, as the corresponding
// sequential step: the generic path reuses runRowPlan with per-plane rebound
// term data, and the specialized fused bodies in fusedrows.go mirror the
// canonical accumulation order of their single-step counterparts. Periodic
// halos on intermediate planes are refilled with the same wrap rule the
// driver applies between sequential steps. TestFusedMatchesSequential pins
// this across kernels, dimensionalities, depths and element types.

// maxCachedFused bounds the fused-program cache per Runner. Fused programs
// carry plane-ring scratch (K·(2·rs+2) planes), so both the entry count and
// the total scratch element count are bounded; exceeding either evicts
// arbitrary entries, never the one just inserted.
const (
	maxCachedFused      = 16
	maxCachedFusedElems = 32 << 20
)

// CanFuse reports whether a kernel is eligible for fused multi-timestep
// execution. Fusion interprets the single input grid as the current time
// level, so only single-buffer kernels qualify; multi-level kernels (wave
// equations) fall back to sequential stepping.
func CanFuse(k *LinearKernel) bool { return k.Buffers == 1 }

// fusedTask is one plane computation of the current wavefront iteration:
// destination plane, the 2·rs+1 source planes of the level below (indexed
// dz+rs), and the per-level generic term plan (nil when a specialized body
// runs instead).
type fusedTask[T grid.Float] struct {
	dst  []T
	src  [][]T
	plan *plan[T]
}

// FusedProgram is a compiled fused K-step execution plan for one (kernel,
// geometry, tuning vector) triple. Build it with Runner.CompileFused; run it
// with Run. Like Program, it is bound to concrete grids at each Run and
// performs no steady-state allocations.
type FusedProgram[T grid.Float] struct {
	r      *Runner[T]
	kernel *LinearKernel
	geom   geom
	tv     tunespace.Vector

	k      int  // fusion depth (timesteps per sweep)
	threeD bool // stream along z (else y)
	radius int  // in-plane halo depth the kernel reads
	rs     int  // stream-axis radius
	skew   int  // per-level iteration skew, 2*rs+1
	n      int  // planes along the stream axis
	rows   int  // interior rows per plane (ny for 3-D, 1 for 2-D)
	nx     int  // interior row length
	sx     int  // row stride
	rowB0  int  // in-plane flat index of the first interior point
	pLen   int  // plane length (= plane stride; planes are contiguous)
	pOff   int  // allocated halo planes before plane 0 (haloZ or halo)

	count   []int   // per-level sequence length: n + 2*rs*(K-s)
	ring    int     // scratch ring size per level, 2*rs+2
	scratch [][][]T // [level-1][slot] plane, levels 1..K-1

	termDz []int     // stream-axis offset per term
	plans  []plan[T] // per-level generic plans (shared idxOff/weight, own data)
	fuse   int       // generic-path fuse width, from tv.U
	unroll int       // specialized-path unroll, tv.U
	fp     *fastPlan[T]

	tasks  [tunespace.MaxFuse]fusedTask[T]
	active int // tasks in flight this iteration, read by pool workers
	chunk  int // rows per work claim
}

// Steps reports how many timesteps one Run advances.
func (fp *FusedProgram[T]) Steps() int { return fp.k }

// Specialization names the selected fused inner-loop body: one of "star5",
// "star7", "row3", "box9", "box27", or "generic" for the term-plan path.
func (fp *FusedProgram[T]) Specialization() string {
	if fp.fp == nil {
		return "generic"
	}
	return fastKindName(fp.fp.kind)
}

func fastKindName(k fastKind) string {
	switch k {
	case fastStar7:
		return "star7"
	case fastRow3:
		return "row3"
	case fastStar5:
		return "star5"
	case fastBox9:
		return "box9"
	case fastBox27:
		return "box27"
	default:
		return "generic"
	}
}

// Fingerprint returns the structural specialization class of a kernel — the
// key the codegen backend selects fused bodies by. Detection is structural
// (offsets, buffer count), never by name, so DSL-defined kernels fingerprint
// identically to the built-in benchmarks.
func Fingerprint(k *LinearKernel) string {
	p := plan[float64]{
		idxOff: make([]int, len(k.Terms)),
		weight: make([]float64, len(k.Terms)),
	}
	f := detectFast(k, &p)
	if f == nil {
		return "generic"
	}
	return fastKindName(f.kind)
}

// CompileFused returns the cached fused program for (k, out's geometry, tv),
// building it on first use. The fusion depth is tv.EffFuse(); depth 1 is a
// valid degenerate wavefront (a plain step). Fusion requires a single-buffer
// kernel, periodic boundary semantics (the caller must refresh the input's
// halos periodically before each Run, as driver.Simulation does), and a
// domain at least as wide as the kernel radius along every in-plane axis.
func (r *Runner[T]) CompileFused(k *LinearKernel, out, in *grid.Grid[T], tv tunespace.Vector) (*FusedProgram[T], error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	if !CanFuse(k) {
		return nil, fmt.Errorf("exec: kernel %q has %d input buffers; fused execution requires 1", k.Name, k.Buffers)
	}
	if err := checkGeometry(k, out, []*grid.Grid[T]{in}); err != nil {
		return nil, err
	}
	dims := 3
	if out.NZ == 1 {
		dims = 2
		tv.Bz = 1
	}
	tv.K = tv.EffFuse()
	if err := tv.Validate(dims); err != nil {
		return nil, err
	}
	radius := k.MaxOffset()
	if out.NX < radius || (dims == 3 && out.NY < radius) {
		return nil, fmt.Errorf("exec: domain %dx%dx%d too small to fuse a radius-%d kernel (periodic halo fill assumes a single wrap)",
			out.NX, out.NY, out.NZ, radius)
	}

	key := progKey{kernel: k, geom: geomOf(out), tv: tv}
	r.mu.Lock()
	defer r.mu.Unlock()
	if fp, ok := r.fprogs[key]; ok {
		return fp, nil
	}
	fp := compileFused(r, k, out, tv, radius)
	if r.fprogs == nil {
		r.fprogs = make(map[progKey]*FusedProgram[T])
	}
	r.fprogs[key] = fp
	r.cachedFusedElems += fusedScratchElems(fp)
	r.evictFusedLocked(key)
	return fp, nil
}

func fusedScratchElems[T grid.Float](fp *FusedProgram[T]) int {
	return len(fp.scratch) * fp.ring * fp.pLen
}

// evictFusedLocked enforces the fused-cache bounds. Callers must hold r.mu.
func (r *Runner[T]) evictFusedLocked(keep progKey) {
	for key, fp := range r.fprogs {
		if len(r.fprogs) <= maxCachedFused && r.cachedFusedElems <= maxCachedFusedElems {
			return
		}
		if key == keep {
			continue
		}
		r.cachedFusedElems -= fusedScratchElems(fp)
		delete(r.fprogs, key)
	}
}

func compileFused[T grid.Float](r *Runner[T], k *LinearKernel, out *grid.Grid[T], tv tunespace.Vector, radius int) *FusedProgram[T] {
	g := geomOf(out)
	fp := &FusedProgram[T]{
		r:      r,
		kernel: k,
		geom:   g,
		tv:     tv,
		k:      tv.EffFuse(),
		threeD: g.nz > 1,
		radius: radius,
		nx:     g.nx,
		sx:     g.strideX(),
		fuse:   fuseWidth(tv.U),
		unroll: tv.U,
	}
	if fp.threeD {
		fp.n = g.nz
		fp.rows = g.ny
		fp.pLen = g.strideX() * g.strideY()
		fp.pOff = g.haloZ
		fp.rowB0 = g.halo*fp.sx + g.halo
	} else {
		fp.n = g.ny
		fp.rows = 1
		fp.pLen = g.strideX()
		fp.pOff = g.halo
		fp.rowB0 = g.halo
	}

	// Split each term's flat offset into its stream-axis plane displacement
	// and the in-plane remainder; rs is the stream radius.
	fp.termDz = make([]int, len(k.Terms))
	inOff := make([]int, len(k.Terms))
	weights := make([]T, len(k.Terms))
	for i, t := range k.Terms {
		dz := t.Offset.Z
		if !fp.threeD {
			dz = t.Offset.Y
		}
		fp.termDz[i] = dz
		inOff[i] = out.OffsetIndex(t.Offset.X, t.Offset.Y, t.Offset.Z) - dz*fp.pLen
		weights[i] = T(t.Weight)
		if dz < 0 {
			dz = -dz
		}
		if dz > fp.rs {
			fp.rs = dz
		}
	}
	fp.skew = 2*fp.rs + 1
	fp.ring = 2*fp.rs + 2

	// Specialized fused body, selected structurally like the single-step
	// fast path; the in-plane offsets land in fastPlan.off so the bodies can
	// reuse the canonical slot layout.
	probe := plan[T]{idxOff: inOff, weight: weights}
	fp.fp = detectFast(k, &probe)
	if fp.fp == nil {
		// Per-level generic plans: idxOff and weights are shared read-only
		// slices; each level owns its data bindings because all K levels of
		// one iteration execute concurrently.
		fp.plans = make([]plan[T], fp.k)
		for s := range fp.plans {
			fp.plans[s] = plan[T]{idxOff: inOff, weight: weights, data: make([][]T, len(k.Terms))}
		}
	}

	fp.count = make([]int, fp.k)
	for s := 1; s <= fp.k; s++ {
		fp.count[s-1] = fp.n + 2*fp.rs*(fp.k-s)
	}
	if fp.k > 1 {
		fp.scratch = make([][][]T, fp.k-1)
		for s := range fp.scratch {
			fp.scratch[s] = make([][]T, fp.ring)
			for i := range fp.scratch[s] {
				fp.scratch[s][i] = make([]T, fp.pLen)
			}
		}
	}
	for i := range fp.tasks {
		fp.tasks[i].src = make([][]T, fp.skew)
	}
	return fp
}

func wrapInt(v, n int) int { return ((v % n) + n) % n }

// planeBase returns the flat index of the start of (global) plane p,
// including its leading in-plane halo cells.
func (fp *FusedProgram[T]) planeBase(p int) int { return (p + fp.pOff) * fp.pLen }

// Run advances the input grid k steps into out under periodic boundary
// semantics: out receives the state after Steps() applications of the
// kernel. The caller must have refreshed in's halos with the periodic wrap
// rule; in is read-only and out must not alias it. Both grids must match the
// compiled geometry. Steady-state calls allocate nothing.
func (fp *FusedProgram[T]) Run(out, in *grid.Grid[T]) error {
	if geomOf(out) != fp.geom {
		return fmt.Errorf("exec: output geometry %+v mismatches compiled geometry %+v", geomOf(out), fp.geom)
	}
	if geomOf(in) != fp.geom {
		return fmt.Errorf("exec: input geometry %+v mismatches compiled geometry %+v", geomOf(in), fp.geom)
	}
	inData, outData := in.Data(), out.Data()
	if &inData[0] == &outData[0] {
		return fmt.Errorf("exec: fused execution requires distinct input and output grids")
	}
	r := fp.r
	r.mu.Lock()
	defer r.mu.Unlock()
	pool := r.poolLocked()

	K, rs, skew, n := fp.k, fp.rs, fp.skew, fp.n
	fp.chunk = max(1, min(fp.tv.C, ceilDiv(fp.rows*K, pool.workers)))
	total := n + (K-1)*skew
	for i := 0; i < total; i++ {
		nt := 0
		for s := 1; s <= K; s++ {
			j := i - (s-1)*skew
			if j < 0 || j >= fp.count[s-1] {
				continue
			}
			t := &fp.tasks[nt]
			nt++
			if s == K {
				t.dst = outData[fp.planeBase(j) : fp.planeBase(j)+fp.pLen]
			} else {
				t.dst = fp.scratch[s-1][j%fp.ring]
			}
			if s == 1 {
				// Level 1 reads the input grid at wrapped interior planes;
				// extension planes (outside [0, n)) duplicate their wrapped
				// counterparts exactly, which keeps the periodic seam
				// bit-identical to sequential stepping.
				p := j - (K-1)*rs
				for dz := -rs; dz <= rs; dz++ {
					b := fp.planeBase(wrapInt(p+dz, n))
					t.src[dz+rs] = inData[b : b+fp.pLen]
				}
			} else {
				ringPlanes := fp.scratch[s-2]
				for dz := -rs; dz <= rs; dz++ {
					t.src[dz+rs] = ringPlanes[(j+dz+rs)%fp.ring]
				}
			}
			t.plan = nil
			if fp.fp == nil {
				t.plan = &fp.plans[s-1]
				for ti, dz := range fp.termDz {
					t.plan.data[ti] = t.src[dz+rs]
				}
			}
		}
		if nt == 0 {
			continue
		}
		fp.active = nt
		pool.runFused(fp)
		// Refill the in-plane periodic halos of the intermediate planes just
		// computed, before the next iteration consumes them.
		for s := 1; s < K; s++ {
			j := i - (s-1)*skew
			if j >= 0 && j < fp.count[s-1] {
				fp.fillPlaneHalo(fp.scratch[s-1][j%fp.ring])
			}
		}
	}
	return nil
}

// drainRows is the pool workers' claim loop for one wavefront iteration: row
// indices 0..active*rows are claimed in chunks and mapped (task, row).
func (fp *FusedProgram[T]) drainRows(next *int64) {
	total := fp.active * fp.rows
	chunk := fp.chunk
	for {
		start := int(atomic.AddInt64(next, int64(chunk))) - chunk
		if start >= total {
			return
		}
		end := min(start+chunk, total)
		for idx := start; idx < end; idx++ {
			fp.runRow(&fp.tasks[idx/fp.rows], idx%fp.rows)
		}
	}
}

// runRow computes one interior row of one task's destination plane.
func (fp *FusedProgram[T]) runRow(t *fusedTask[T], y int) {
	base := fp.rowB0 + y*fp.sx
	if f := fp.fp; f != nil {
		rs := fp.rs
		switch f.kind {
		case fastStar7:
			f.fusedRowStar7(t.dst, t.src[0], t.src[1], t.src[2], base, fp.nx, fp.unroll)
		case fastStar5:
			f.fusedRowStar5(t.dst, t.src[0], t.src[1], t.src[2], base, fp.nx, fp.unroll)
		case fastRow3:
			f.fusedRowRow3(t.dst, t.src[rs], base, fp.nx, fp.unroll)
		case fastBox9:
			f.fusedRowBox(t.dst, t.src, 3, 1, base, fp.nx, fp.unroll)
		case fastBox27:
			f.fusedRowBox(t.dst, t.src, 9, 3, base, fp.nx, fp.unroll)
		}
		return
	}
	runRowPlan(t.plan, t.dst, base, fp.nx, fp.fuse)
}

// fillPlaneHalo refills the in-plane periodic halo cells of a scratch plane
// to the kernel's radius: x halos of every interior row first, then (3-D)
// whole-row copies for the y halos so corners inherit the already-wrapped x
// cells — the same values the driver's per-axis-independent wrap produces.
func (fp *FusedProgram[T]) fillPlaneHalo(p []T) {
	R, sx, nx := fp.radius, fp.sx, fp.nx
	halo := fp.geom.halo
	if !fp.threeD {
		b := fp.rowB0
		for h := 1; h <= R; h++ {
			p[b-h] = p[b+nx-h]
			p[b+nx-1+h] = p[b+h-1]
		}
		return
	}
	ny := fp.rows
	for y := 0; y < ny; y++ {
		b := (y+halo)*sx + halo
		for h := 1; h <= R; h++ {
			p[b-h] = p[b+nx-h]
			p[b+nx-1+h] = p[b+h-1]
		}
	}
	for h := 1; h <= R; h++ {
		copy(p[(halo-h)*sx:(halo-h+1)*sx], p[(halo+ny-h)*sx:(halo+ny-h+1)*sx])
		copy(p[(halo+ny-1+h)*sx:(halo+ny+h)*sx], p[(halo+h-1)*sx:(halo+h)*sx])
	}
}
