package exec

import (
	"math"
	"sync"
	"time"

	"repro/internal/grid"
	"repro/internal/stencil"
	"repro/internal/tunespace"
)

// Measurer times real executions of stencil instances. It implements the
// same evaluation contract as the perfmodel simulator, so the autotuner can
// run against either wall-clock measurements or the deterministic model
// (EvaluateMode in the public API).
//
// Measurements are precision-true: a stencil declaring stencil.Float32 is
// executed through the float32 runner on float32 workspaces, so its timing
// reflects genuine single-precision memory traffic; Float64 stencils run in
// double precision as before. Each element type owns its runner (worker pool
// + program cache) and workspace cache — the pools start lazily, so a
// workload of one precision never pays for the other.
//
// Besides the grid workspaces, the Measurer caches the executable kernel per
// model kernel, so the thousands of Measure calls a search issues hit the
// Runner's compiled-program cache instead of rebuilding terms every time.
type Measurer struct {
	// Runner executes Float64 stencils (the name predates the split; kept
	// so existing callers tuning the double-precision engine still work).
	Runner *Runner[float64]
	// Runner32 executes Float32 stencils.
	Runner32 *Runner[float32]
	// Repetitions per measurement; the minimum time is reported, which is
	// the standard noise-rejection practice for microbenchmarks.
	Repetitions int

	// mu serializes measurements: it guards the caches below, and
	// interleaved wall-clock timings of a machine-saturating kernel would
	// corrupt each other anyway.
	mu sync.Mutex
	// cache of prepared workspaces keyed by geometry, one map per element
	// type, to avoid reallocating hundreds of MB per evaluation during a
	// search.
	ws64 map[wsKey]*workspace[float64]
	ws32 map[wsKey]*workspace[float32]
	// cache of executable realizations keyed by model kernel identity, so
	// the Runner's program cache sees a stable kernel pointer.
	kernels map[*stencil.Kernel]*LinearKernel
}

type wsKey struct {
	size stencil.Size
	halo int
}

type workspace[T grid.Float] struct {
	out *grid.Grid[T]
	ins []*grid.Grid[T]
}

// NewMeasurer returns a measurer with 3 repetitions.
func NewMeasurer() *Measurer {
	return &Measurer{
		Runner:      NewRunner(),
		Runner32:    NewRunnerOf[float32](),
		Repetitions: 3,
		ws64:        make(map[wsKey]*workspace[float64]),
		ws32:        make(map[wsKey]*workspace[float32]),
		kernels:     make(map[*stencil.Kernel]*LinearKernel),
	}
}

// Close returns the cached workspace grids to the grid pool and stops the
// underlying runners' worker pools. The measurer may be reused afterwards:
// the next measurement re-acquires workspaces and restarts the pools.
func (m *Measurer) Close() {
	m.mu.Lock()
	releaseWorkspaces(m.ws64)
	releaseWorkspaces(m.ws32)
	m.mu.Unlock()
	m.Runner.Close()
	m.Runner32.Close()
}

func releaseWorkspaces[T grid.Float](ws map[wsKey]*workspace[T]) {
	for key, w := range ws {
		grid.ReleaseOf(w.out)
		for _, g := range w.ins {
			grid.ReleaseOf(g)
		}
		delete(ws, key)
	}
}

// WorkspaceBytes reports the total bytes of grid memory currently held in
// the measurer's cached workspaces, per element type. It exists so tests
// (and capacity planning) can assert the measurer allocates DataType-sized
// buffers — a Float32 instance must grow bytes32, never bytes64.
func (m *Measurer) WorkspaceBytes() (bytes32, bytes64 int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return workspaceBytes(m.ws32), workspaceBytes(m.ws64)
}

func workspaceBytes[T grid.Float](ws map[wsKey]*workspace[T]) int {
	total := 0
	for _, w := range ws {
		total += w.out.Len() * w.out.ElemBytes()
		for _, g := range w.ins {
			total += g.Len() * g.ElemBytes()
		}
	}
	return total
}

// maxCachedKernels bounds the executable-kernel cache; callers that mint a
// fresh *stencil.Kernel per call would otherwise grow it without limit.
const maxCachedKernels = 256

// executableFor returns the cached executable realization of a model kernel.
func (m *Measurer) executableFor(k *stencil.Kernel) *LinearKernel {
	if lk, ok := m.kernels[k]; ok {
		return lk
	}
	// Evict a single arbitrary entry at the bound: wiping the map would
	// orphan every cached Program at once (they are keyed by these
	// pointers) and collapse throughput for working sets near the bound.
	if len(m.kernels) >= maxCachedKernels {
		for old := range m.kernels {
			delete(m.kernels, old)
			break
		}
	}
	lk := Executable(k)
	m.kernels[k] = lk
	return lk
}

// workspaceFor returns the cached workspace for the instance geometry,
// growing an existing workspace's buffer list in place when a later kernel
// needs more input buffers than any previous one did. Workspace grids come
// from the grid pool (Close returns them), so interleaved searches over
// many geometries recycle buffers instead of churning the GC.
func workspaceFor[T grid.Float](ws map[wsKey]*workspace[T], q stencil.Instance, k *LinearKernel) *workspace[T] {
	halo := k.MaxOffset()
	key := wsKey{q.Size, halo}
	w, ok := ws[key]
	if !ok {
		haloZ := halo
		if q.Size.Is2D() {
			haloZ = 0
		}
		w = &workspace[T]{out: grid.AcquireOf[T](q.Size.X, q.Size.Y, q.Size.Z, halo, haloZ)}
		ws[key] = w
	}
	for len(w.ins) < k.Buffers {
		g := grid.AcquireOf[T](q.Size.X, q.Size.Y, q.Size.Z, w.out.Halo, w.out.HaloZ)
		g.FillPattern()
		w.ins = append(w.ins, g)
	}
	return w
}

// Measure reports the wall-clock seconds of one full sweep of the instance
// under the tuning vector, executed in the instance's declared DataType. The
// error is non-nil for invalid configurations.
func (m *Measurer) Measure(q stencil.Instance, t tunespace.Vector) (float64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.measureLocked(q, t)
}

// MeasureBatch measures every tuning vector for one instance and returns
// the wall-clock seconds in input order. The whole batch runs under the
// measurer's lock: concurrent timings of a machine-saturating kernel would
// corrupt each other, so batches *serialize* onto the measuring runner —
// batching buys lock-acquisition amortization and a stable thermal window,
// never parallel timing. A vector that fails to compile reports math.Inf(1)
// at its slot; err is the first such failure (the batch still completes).
func (m *Measurer) MeasureBatch(q stencil.Instance, ts []tunespace.Vector) ([]float64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]float64, len(ts))
	var firstErr error
	for i, tv := range ts {
		secs, err := m.measureLocked(q, tv)
		if err != nil {
			secs = math.Inf(1)
			if firstErr == nil {
				firstErr = err
			}
		}
		out[i] = secs
	}
	return out, firstErr
}

// measureLocked is Measure's body; callers hold m.mu. It dispatches to the
// runner and workspace cache matching the stencil's declared element type.
func (m *Measurer) measureLocked(q stencil.Instance, t tunespace.Vector) (float64, error) {
	k := m.executableFor(q.Kernel)
	if q.Kernel != nil && q.Kernel.Type == stencil.Float32 {
		return measureIn(m.Runner32, m.ws32, m.Repetitions, q, k, t)
	}
	return measureIn(m.Runner, m.ws64, m.Repetitions, q, k, t)
}

// measureIn times one configuration on the given runner, in the runner's
// element type. Configurations with fusion depth above 1 are timed through
// the fused multi-timestep engine and reported as seconds per step, so fused
// and unfused vectors compete on the same per-step axis the tuner ranks by;
// kernels or geometries the fused engine rejects fall back to timing the
// spatial configuration alone.
func measureIn[T grid.Float](r *Runner[T], ws map[wsKey]*workspace[T], reps int, q stencil.Instance, k *LinearKernel, t tunespace.Vector) (float64, error) {
	w := workspaceFor(ws, q, k)
	ins := w.ins[:k.Buffers]

	if depth := t.EffFuse(); depth > 1 && CanFuse(k) {
		if fp, err := r.CompileFused(k, w.out, ins[0], t); err == nil {
			best := 0.0
			for rep := 0; rep < max(1, reps); rep++ {
				start := time.Now()
				if err := fp.Run(w.out, ins[0]); err != nil {
					return 0, err
				}
				elapsed := time.Since(start).Seconds() / float64(depth)
				if rep == 0 || elapsed < best {
					best = elapsed
				}
			}
			return best, nil
		}
	}

	prog, err := r.Compile(k, w.out, ins, t)
	if err != nil {
		return 0, err
	}
	best := 0.0
	for rep := 0; rep < max(1, reps); rep++ {
		start := time.Now()
		if err := prog.Run(w.out, ins); err != nil {
			return 0, err
		}
		elapsed := time.Since(start).Seconds()
		if rep == 0 || elapsed < best {
			best = elapsed
		}
	}
	return best, nil
}
