package exec

import (
	"time"

	"repro/internal/grid"
	"repro/internal/stencil"
	"repro/internal/tunespace"
)

// Measurer times real executions of stencil instances. It implements the
// same evaluation contract as the perfmodel simulator, so the autotuner can
// run against either wall-clock measurements or the deterministic model
// (EvaluateMode in the public API).
type Measurer struct {
	Runner *Runner
	// Repetitions per measurement; the minimum time is reported, which is
	// the standard noise-rejection practice for microbenchmarks.
	Repetitions int

	// cache of prepared workspaces keyed by geometry, to avoid reallocating
	// hundreds of MB per evaluation during a search.
	ws map[wsKey]*workspace
}

type wsKey struct {
	size stencil.Size
	halo int
}

type workspace struct {
	out *grid.Grid
	ins []*grid.Grid
}

// NewMeasurer returns a measurer with 3 repetitions.
func NewMeasurer() *Measurer {
	return &Measurer{Runner: NewRunner(), Repetitions: 3, ws: make(map[wsKey]*workspace)}
}

func (m *Measurer) workspaceFor(q stencil.Instance, k *LinearKernel) *workspace {
	halo := k.MaxOffset()
	key := wsKey{q.Size, halo}
	if w, ok := m.ws[key]; ok && len(w.ins) >= k.Buffers {
		return w
	}
	haloZ := halo
	if q.Size.Is2D() {
		haloZ = 0
	}
	w := &workspace{out: grid.New(q.Size.X, q.Size.Y, q.Size.Z, halo, haloZ)}
	for b := 0; b < k.Buffers; b++ {
		g := grid.New(q.Size.X, q.Size.Y, q.Size.Z, halo, haloZ)
		g.FillPattern()
		w.ins = append(w.ins, g)
	}
	m.ws[key] = w
	return w
}

// Runtime measures the wall-clock seconds of one full sweep of the instance
// under the tuning vector. The error is non-nil for invalid configurations.
func (m *Measurer) Measure(q stencil.Instance, t tunespace.Vector) (float64, error) {
	k := Executable(q.Kernel)
	w := m.workspaceFor(q, k)
	ins := w.ins[:k.Buffers]

	best := 0.0
	for rep := 0; rep < maxInt(1, m.Repetitions); rep++ {
		start := time.Now()
		if err := m.Runner.Run(k, w.out, ins, t); err != nil {
			return 0, err
		}
		elapsed := time.Since(start).Seconds()
		if rep == 0 || elapsed < best {
			best = elapsed
		}
	}
	return best, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
