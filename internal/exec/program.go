package exec

import (
	"fmt"
	"math"

	"repro/internal/grid"
	"repro/internal/tunespace"
)

// geom captures the grid geometry a compiled program is specialized to. Two
// grids with equal geom have identical strides, so a program's flat-index
// displacements and tile list are valid for any of them — of either element
// type; geom is deliberately type-free so the tile decomposition and span
// plan are shared logic across Runner instantiations.
type geom struct {
	nx, ny, nz  int
	halo, haloZ int
}

func geomOf[T grid.Float](g *grid.Grid[T]) geom {
	return geom{nx: g.NX, ny: g.NY, nz: g.NZ, halo: g.Halo, haloZ: g.HaloZ}
}

// strideX returns the allocated row length, matching grid.Grid.StrideX.
func (g geom) strideX() int { return g.nx + 2*g.halo }

// strideY returns the allocated rows per plane, matching grid.Grid.StrideY.
func (g geom) strideY() int { return g.ny + 2*g.halo }

// size returns the total allocated element count, matching grid.Grid.Len.
func (g geom) size() int { return g.strideX() * g.strideY() * (g.nz + 2*g.haloZ) }

// index returns the flat index of interior coordinate (x, y, z), matching
// grid.Grid.Index.
func (g geom) index(x, y, z int) int {
	return ((z+g.haloZ)*g.strideY()+(y+g.halo))*g.strideX() + (x + g.halo)
}

// progKey identifies a compiled program: kernel identity (by pointer — a
// kernel must not be mutated after first use), grid geometry, and the
// normalized tuning vector. The element type needs no key component: each
// Runner instantiation owns its own cache.
type progKey struct {
	kernel *LinearKernel
	geom   geom
	tv     tunespace.Vector
}

// Cache bounds. A program's dominant memory is its tile list and row-span
// plan; small blocking sizes on large grids produce millions of tiles, and
// the span plan holds one (base, n) pair per grid row regardless of tiling,
// so eviction is driven by the total cached tile and span counts as well as
// the program count. Exceeding any bound evicts arbitrary entries (never the
// one just inserted).
const (
	maxCachedPrograms = 512
	maxCachedTiles    = 1 << 20
	maxCachedSpans    = 4 << 20
)

// Program is a compiled execution plan: the exact-size tile decomposition,
// its flattened row-span plan, the flattened term plan and the fast-path
// selection for one (kernel, geometry, tuning vector) triple, precomputed so
// repeated executions only rebind grid data and dispatch to the persistent
// worker pool. Programs are created and cached by Runner.Compile and execute
// via Program.Run against any grids of the compiled geometry and element
// type.
type Program[T grid.Float] struct {
	r      *Runner[T]
	kernel *LinearKernel
	geom   geom
	tv     tunespace.Vector

	tiles []tile
	// spans flattens every tile into (base, n) row-span pairs — base is the
	// flat index of the row's first interior point, n its length — so workers
	// walk rows linearly with no Index() calls or per-row arithmetic beyond a
	// pointer bump. Tile i owns pairs spanStart[i]..spanStart[i+1]. spans is
	// nil only for grids too large for int32 flat indices; those fall back to
	// computing row bases on the fly (runTile).
	spans     []int32
	spanStart []int32
	fuse      int // term-fusion width of the generic passes, from tv.U

	termBuf []int   // source buffer per term, for per-run data rebinding
	p       plan[T] // idxOff/weight fixed at compile; data rebound per run
	fp      *fastPlan[T]
}

// Compile returns the cached program for (k, out's geometry, tv), building
// and caching it on first use. The input grids are only used for validation —
// the program is bound to concrete data at each Run.
func (r *Runner[T]) Compile(k *LinearKernel, out *grid.Grid[T], ins []*grid.Grid[T], tv tunespace.Vector) (*Program[T], error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	if err := checkGeometry(k, out, ins); err != nil {
		return nil, err
	}
	dims := 3
	if out.NZ == 1 {
		dims = 2
		tv.Bz = 1
	}
	if err := tv.Validate(dims); err != nil {
		return nil, err
	}

	key := progKey{kernel: k, geom: geomOf(out), tv: tv}
	r.mu.Lock()
	defer r.mu.Unlock()
	if pr, ok := r.progs[key]; ok {
		return pr, nil
	}
	pr := compileProgram(r, k, out, tv)
	if r.progs == nil {
		r.progs = make(map[progKey]*Program[T])
	}
	r.progs[key] = pr
	r.cachedTiles += len(pr.tiles)
	r.cachedSpans += len(pr.spans) / 2
	r.evictLocked(key)
	return pr, nil
}

// compileProgram does the actual precomputation for one cache entry.
func compileProgram[T grid.Float](r *Runner[T], k *LinearKernel, out *grid.Grid[T], tv tunespace.Vector) *Program[T] {
	pr := &Program[T]{
		r:       r,
		kernel:  k,
		geom:    geomOf(out),
		tv:      tv,
		termBuf: make([]int, len(k.Terms)),
		p: plan[T]{
			idxOff: make([]int, len(k.Terms)),
			weight: make([]T, len(k.Terms)),
			data:   make([][]T, len(k.Terms)),
		},
	}
	for i, t := range k.Terms {
		pr.p.idxOff[i] = out.OffsetIndex(t.Offset.X, t.Offset.Y, t.Offset.Z)
		pr.p.weight[i] = T(t.Weight)
		pr.termBuf[i] = t.Buffer
	}
	pr.fp = detectFast(k, &pr.p)
	pr.tiles = decompose(pr.geom, tv)
	pr.fuse = fuseWidth(tv.U)
	pr.spans, pr.spanStart = buildSpans(pr.geom, pr.tiles)
	return pr
}

// buildSpans flattens the tile list into (base, n) row-span pairs plus the
// per-tile first-pair index (spanStart[len(tiles)] caps the last tile).
// Grids whose flat indices or total row counts overflow int32 — more than
// 16 GB of float64, or billions of rows — get no span plan and execute
// through the on-the-fly fallback.
func buildSpans(g geom, tiles []tile) (spans, spanStart []int32) {
	if g.size() > math.MaxInt32 {
		return nil, nil
	}
	rows := 0
	for _, t := range tiles {
		rows += (t.y1 - t.y0) * (t.z1 - t.z0)
	}
	if rows > math.MaxInt32/2 {
		return nil, nil
	}
	spans = make([]int32, 0, 2*rows)
	spanStart = make([]int32, len(tiles)+1)
	for i, t := range tiles {
		spanStart[i] = int32(len(spans) / 2)
		n := int32(t.x1 - t.x0)
		for z := t.z0; z < t.z1; z++ {
			base := g.index(t.x0, t.y0, z)
			for y := t.y0; y < t.y1; y++ {
				spans = append(spans, int32(base), n)
				base += g.strideX()
			}
		}
	}
	spanStart[len(tiles)] = int32(len(spans) / 2)
	return spans, spanStart
}

// evictLocked enforces the cache bounds, never evicting keep (the entry just
// inserted). Callers must hold r.mu.
func (r *Runner[T]) evictLocked(keep progKey) {
	for key, pr := range r.progs {
		if len(r.progs) <= maxCachedPrograms && r.cachedTiles <= maxCachedTiles &&
			r.cachedSpans <= maxCachedSpans {
			return
		}
		if key == keep {
			continue
		}
		r.cachedTiles -= len(pr.tiles)
		r.cachedSpans -= len(pr.spans) / 2
		delete(r.progs, key)
	}
}

// Run executes the program against concrete grids of the compiled geometry:
// term data slices are rebound (so ring-buffer rotation and workspace reuse
// need no recompilation) and tiles are dispatched to the persistent worker
// pool. It performs no allocations.
func (pr *Program[T]) Run(out *grid.Grid[T], ins []*grid.Grid[T]) error {
	if len(ins) != pr.kernel.Buffers {
		return fmt.Errorf("exec: program for kernel %q wants %d buffers, got %d",
			pr.kernel.Name, pr.kernel.Buffers, len(ins))
	}
	if geomOf(out) != pr.geom {
		return fmt.Errorf("exec: output geometry %+v mismatches compiled geometry %+v", geomOf(out), pr.geom)
	}
	for i, g := range ins {
		if geomOf(g) != pr.geom {
			return fmt.Errorf("exec: buffer %d geometry %+v mismatches compiled geometry %+v", i, geomOf(g), pr.geom)
		}
	}
	r := pr.r
	r.mu.Lock()
	for i, b := range pr.termBuf {
		pr.p.data[i] = ins[b].Data()
	}
	if pr.fp != nil {
		pr.fp.data = ins[0].Data()
	}
	r.poolLocked().run(pr, out)
	r.mu.Unlock()
	return nil
}

// Tiles reports the number of tiles in the compiled decomposition.
func (pr *Program[T]) Tiles() int { return len(pr.tiles) }
