package exec

import (
	"fmt"

	"repro/internal/grid"
	"repro/internal/tunespace"
)

// geom captures the grid geometry a compiled program is specialized to. Two
// grids with equal geom have identical strides, so a program's flat-index
// displacements and tile list are valid for any of them.
type geom struct {
	nx, ny, nz  int
	halo, haloZ int
}

func geomOf(g *grid.Grid) geom {
	return geom{nx: g.NX, ny: g.NY, nz: g.NZ, halo: g.Halo, haloZ: g.HaloZ}
}

// progKey identifies a compiled program: kernel identity (by pointer — a
// kernel must not be mutated after first use), grid geometry, and the
// normalized tuning vector.
type progKey struct {
	kernel *LinearKernel
	geom   geom
	tv     tunespace.Vector
}

// Cache bounds. A program's dominant memory is its tile list; small blocking
// sizes on large grids produce millions of tiles, so eviction is driven by
// the total cached tile count as well as the program count. Exceeding either
// bound evicts arbitrary entries (never the one just inserted).
const (
	maxCachedPrograms = 512
	maxCachedTiles    = 1 << 20
)

// Program is a compiled execution plan: the exact-size tile decomposition,
// the flattened term plan and the fast-path selection for one (kernel,
// geometry, tuning vector) triple, precomputed so repeated executions only
// rebind grid data and dispatch to the persistent worker pool. Programs are
// created and cached by Runner.Compile and execute via Program.Run against
// any grids of the compiled geometry.
type Program struct {
	r      *Runner
	kernel *LinearKernel
	geom   geom
	tv     tunespace.Vector

	tiles   []tile
	termBuf []int // source buffer per term, for per-run data rebinding
	p       plan  // idxOff/weight fixed at compile; data rebound per run
	fp      *fastPlan
}

// Compile returns the cached program for (k, out's geometry, tv), building
// and caching it on first use. The input grids are only used for validation —
// the program is bound to concrete data at each Run.
func (r *Runner) Compile(k *LinearKernel, out *grid.Grid, ins []*grid.Grid, tv tunespace.Vector) (*Program, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	if err := checkGeometry(k, out, ins); err != nil {
		return nil, err
	}
	dims := 3
	if out.NZ == 1 {
		dims = 2
		tv.Bz = 1
	}
	if err := tv.Validate(dims); err != nil {
		return nil, err
	}

	key := progKey{kernel: k, geom: geomOf(out), tv: tv}
	r.mu.Lock()
	defer r.mu.Unlock()
	if pr, ok := r.progs[key]; ok {
		return pr, nil
	}
	pr := compileProgram(r, k, out, tv)
	if r.progs == nil {
		r.progs = make(map[progKey]*Program)
	}
	r.progs[key] = pr
	r.cachedTiles += len(pr.tiles)
	r.evictLocked(key)
	return pr, nil
}

// compileProgram does the actual precomputation for one cache entry.
func compileProgram(r *Runner, k *LinearKernel, out *grid.Grid, tv tunespace.Vector) *Program {
	pr := &Program{
		r:       r,
		kernel:  k,
		geom:    geomOf(out),
		tv:      tv,
		termBuf: make([]int, len(k.Terms)),
		p: plan{
			idxOff: make([]int, len(k.Terms)),
			weight: make([]float64, len(k.Terms)),
			data:   make([][]float64, len(k.Terms)),
		},
	}
	for i, t := range k.Terms {
		pr.p.idxOff[i] = out.OffsetIndex(t.Offset.X, t.Offset.Y, t.Offset.Z)
		pr.p.weight[i] = t.Weight
		pr.termBuf[i] = t.Buffer
	}
	pr.fp = detectFast(k, &pr.p)
	pr.tiles = decomposeExact(out, tv)
	return pr
}

// decomposeExact builds the z-major tile list with an exact-size allocation.
func decomposeExact(out *grid.Grid, tv tunespace.Vector) []tile {
	n := ceilDiv(out.NX, tv.Bx) * ceilDiv(out.NY, tv.By) * ceilDiv(out.NZ, tv.Bz)
	tiles := make([]tile, 0, n)
	for z0 := 0; z0 < out.NZ; z0 += tv.Bz {
		z1 := min(z0+tv.Bz, out.NZ)
		for y0 := 0; y0 < out.NY; y0 += tv.By {
			y1 := min(y0+tv.By, out.NY)
			for x0 := 0; x0 < out.NX; x0 += tv.Bx {
				x1 := min(x0+tv.Bx, out.NX)
				tiles = append(tiles, tile{x0, x1, y0, y1, z0, z1})
			}
		}
	}
	return tiles
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// evictLocked enforces the cache bounds, never evicting keep (the entry just
// inserted). Callers must hold r.mu.
func (r *Runner) evictLocked(keep progKey) {
	for key, pr := range r.progs {
		if len(r.progs) <= maxCachedPrograms && r.cachedTiles <= maxCachedTiles {
			return
		}
		if key == keep {
			continue
		}
		r.cachedTiles -= len(pr.tiles)
		delete(r.progs, key)
	}
}

// Run executes the program against concrete grids of the compiled geometry:
// term data slices are rebound (so ring-buffer rotation and workspace reuse
// need no recompilation) and tiles are dispatched to the persistent worker
// pool. It performs no allocations.
func (pr *Program) Run(out *grid.Grid, ins []*grid.Grid) error {
	if len(ins) != pr.kernel.Buffers {
		return fmt.Errorf("exec: program for kernel %q wants %d buffers, got %d",
			pr.kernel.Name, pr.kernel.Buffers, len(ins))
	}
	if geomOf(out) != pr.geom {
		return fmt.Errorf("exec: output geometry %+v mismatches compiled geometry %+v", geomOf(out), pr.geom)
	}
	for i, g := range ins {
		if geomOf(g) != pr.geom {
			return fmt.Errorf("exec: buffer %d geometry %+v mismatches compiled geometry %+v", i, geomOf(g), pr.geom)
		}
	}
	r := pr.r
	r.mu.Lock()
	for i, b := range pr.termBuf {
		pr.p.data[i] = ins[b].Data()
	}
	if pr.fp != nil {
		pr.fp.data = ins[0].Data()
	}
	r.poolLocked().run(pr, out)
	r.mu.Unlock()
	return nil
}

// Tiles reports the number of tiles in the compiled decomposition.
func (pr *Program) Tiles() int { return len(pr.tiles) }
