package exec

// Specialized row bodies for fused multi-timestep execution. Each mirrors
// its single-step counterpart in fastpath.go — same canonical slot order,
// same statement-level accumulation — but takes the stream-axis neighbours
// as separate plane slices (pm/p0/pp for 3-D, rm/r0/rp for 2-D) instead of
// flat-offset reads, because fused intermediate levels live in plane rings
// rather than a contiguous grid. The in-plane offsets (off[3]/off[4] for the
// 3-D star's y neighbours, off[3r+1] for box row centres) are compiled from
// the same canonical tables, so a kernel's fused sweep is bit-for-bit
// identical to its sequential fast path.

// fusedRowStar7 computes one row of the 7-point star from three stream
// planes: pm (z-1), p0 (centre), pp (z+1). Each of the seven taps is
// re-sliced to an exactly-n window up front: every body access is then s[x]
// with x < len(d) == len(s), which the compiler proves in-bounds once per
// row instead of checking per element — the fused sweep is compute-bound,
// so the checks are the difference between ~8.4 and ~7 cycles per point.
func (fp *fastPlan[T]) fusedRowStar7(dst, pm, p0, pp []T, base, n, unroll int) {
	wc, wxp, wxm, wyp, wym, wzp, wzm := fp.w[0], fp.w[1], fp.w[2], fp.w[3], fp.w[4], fp.w[5], fp.w[6]
	oyp, oym := fp.off[3], fp.off[4]
	d := dst[base : base+n]
	c := p0[base : base+n]
	xp := p0[base+1 : base+1+n]
	xm := p0[base-1 : base-1+n]
	yp := p0[base+oyp : base+oyp+n]
	ym := p0[base+oym : base+oym+n]
	zp := pp[base : base+n]
	zm := pm[base : base+n]
	x := 0
	if unroll >= 2 {
		for ; x+2 <= n; x += 2 {
			d[x] = wc*c[x] + wxp*xp[x] + wxm*xm[x] +
				wyp*yp[x] + wym*ym[x] + wzp*zp[x] + wzm*zm[x]
			j := x + 1
			d[j] = wc*c[j] + wxp*xp[j] + wxm*xm[j] +
				wyp*yp[j] + wym*ym[j] + wzp*zp[j] + wzm*zm[j]
		}
	}
	for ; x < n; x++ {
		d[x] = wc*c[x] + wxp*xp[x] + wxm*xm[x] +
			wyp*yp[x] + wym*ym[x] + wzp*zp[x] + wzm*zm[x]
	}
}

// fusedRowStar5 computes one row of the 2-D 5-point star from three stream
// rows: rm (y-1), r0 (centre), rp (y+1). The canonical slot order places the
// y neighbours after the x pair, matching runRowStar5.
func (fp *fastPlan[T]) fusedRowStar5(dst, rm, r0, rp []T, base, n, unroll int) {
	wc, wxp, wxm, wyp, wym := fp.w[0], fp.w[1], fp.w[2], fp.w[3], fp.w[4]
	d := dst[base : base+n]
	c := r0[base : base+n]
	xp := r0[base+1 : base+1+n]
	xm := r0[base-1 : base-1+n]
	yp := rp[base : base+n]
	ym := rm[base : base+n]
	x := 0
	if unroll >= 2 {
		for ; x+2 <= n; x += 2 {
			d[x] = wc*c[x] + wxp*xp[x] + wxm*xm[x] + wyp*yp[x] + wym*ym[x]
			j := x + 1
			d[j] = wc*c[j] + wxp*xp[j] + wxm*xm[j] + wyp*yp[j] + wym*ym[j]
		}
	}
	for ; x < n; x++ {
		d[x] = wc*c[x] + wxp*xp[x] + wxm*xm[x] + wyp*yp[x] + wym*ym[x]
	}
}

// fusedRowRow3 computes one row of the 3-point x stencil; the stream radius
// is zero, so the single source plane p0 is the level below's same plane.
func (fp *fastPlan[T]) fusedRowRow3(dst, p0 []T, base, n, unroll int) {
	wc, wxp, wxm := fp.w[0], fp.w[1], fp.w[2]
	d := dst[base : base+n]
	c := p0[base : base+n]
	xp := p0[base+1 : base+1+n]
	xm := p0[base-1 : base-1+n]
	x := 0
	if unroll >= 2 {
		for ; x+2 <= n; x += 2 {
			d[x] = wc*c[x] + wxp*xp[x] + wxm*xm[x]
			d[x+1] = wc*c[x+1] + wxp*xp[x+1] + wxm*xm[x+1]
		}
	}
	for ; x < n; x++ {
		d[x] = wc*c[x] + wxp*xp[x] + wxm*xm[x]
	}
}

// fusedRowBox computes one row of a box kernel from stream-plane sources.
// Row r of the canonical table reads plane src[r/perPlane] at in-plane
// centre offset off[3r+1]: box9 has rows=3, perPlane=1 (each x-row is its
// own stream row); box27 has rows=9, perPlane=3 (three x-rows per z plane).
// Terms accumulate one statement at a time, exactly like runRowBox.
func (fp *fastPlan[T]) fusedRowBox(dst []T, src [][]T, rows, perPlane, base, n, unroll int) {
	// Hoist each canonical row's source window out of the x loop: window r
	// starts at its leftmost tap (centre offset −1) and spans n+2 elements,
	// so the three taps of point x are w[x], w[x+1], w[x+2] — in-bounds by
	// construction, letting the compiler drop per-element checks. The r-inner
	// accumulation order (one statement per term) is unchanged from runRowBox.
	var win [9][]T
	for r := 0; r < rows; r++ {
		j := base + fp.off[3*r+1]
		win[r] = src[r/perPlane][j-1 : j+n+1]
	}
	d := dst[base : base+n]
	x := 0
	if unroll >= 2 {
		for ; x+2 <= n; x += 2 {
			var a0, a1 T
			for r := 0; r < rows; r++ {
				w := win[r][: n+2 : n+2]
				wl, wc, wr := fp.w[3*r], fp.w[3*r+1], fp.w[3*r+2]
				a0 += wl * w[x]
				a0 += wc * w[x+1]
				a0 += wr * w[x+2]
				a1 += wl * w[x+1]
				a1 += wc * w[x+2]
				a1 += wr * w[x+3]
			}
			d[x] = a0
			d[x+1] = a1
		}
	}
	for ; x < n; x++ {
		var acc T
		for r := 0; r < rows; r++ {
			w := win[r][: n+2 : n+2]
			acc += fp.w[3*r] * w[x]
			acc += fp.w[3*r+1] * w[x+1]
			acc += fp.w[3*r+2] * w[x+2]
		}
		d[x] = acc
	}
}
