package exec

import "repro/internal/grid"

// This file is the generic-path inner loop of the compiled executor: it
// computes one row span of the output as a sequence of term-major,
// unit-stride passes instead of the historical point-major loop over the
// term table.
//
// Why passes win. The point-major loop performs, per point, one indirect
// load of weight[t], data[t] and idxOff[t] for every term — the term-table
// indirection dominates for every kernel without a structural fast path,
// which is most of what dataset.Generate and the tuner measure. A pass
// touches one term's source with unit stride across the whole row, so the
// per-term bookkeeping is paid once per row instead of once per point, the
// loads prefetch perfectly, and the loop bodies carry no indirection at all.
// The output row round-trips through dst between passes, but a row is at
// most Bx elements and stays in L1.
//
// Bounds-check elimination. Every pass reslices its operands to a common
// length first (dst = out[base : base+n]; src = data[base+off:][:n:n]), then
// walks them with the slice-advance idiom (operate on s[:4], then s = s[4:]),
// which the compiler provably needs no bounds checks for. The halo guarantee
// makes the reslices themselves safe: base is an interior index, so
// base+off ≥ 0 and base+off+n ≤ len(data) for every in-halo term offset.
//
// Summation order. Passes accumulate terms in plan order, and every fused
// variant folds its terms left-to-right, so the result is the value Reference
// computes at every point regardless of the fuse width (the head pass writes
// w·d where Reference computes 0 + w·d, which differs only in the sign of a
// zero). TestGenericRowsMatchReference asserts this across randomized
// kernels, halos, geometries and tile sizes.
//
// The tuning vector's unroll factor u selects the fuse width — how many
// terms a single pass folds (u < 2 → 1, u < 4 → 2, else 4). This preserves u
// as a genuine performance knob on the generic path: wider fusion trades
// register pressure for fewer dst round-trips, the same trade PATUS makes
// when unrolling the term loop.

// fuseWidth maps the tuning vector's unroll factor to the number of terms a
// single pass folds.
func fuseWidth(u int) int {
	switch {
	case u >= 4:
		return 4
	case u >= 2:
		return 2
	default:
		return 1
	}
}

// src returns term t's source row for the span [base, base+n), with the
// capacity clamped so the compiler knows later reslices cannot grow it.
func (p *plan[T]) src(t, base, n int) []T {
	return p.data[t][base+p.idxOff[t]:][:n:n]
}

// runRowPlan computes the row span out[base : base+n] as the in-order
// weighted sum of the plan's terms, as term-major passes of the given fuse
// width.
func runRowPlan[T grid.Float](p *plan[T], out []T, base, n, fuse int) {
	dst := out[base : base+n]
	w := p.weight
	nt := len(w)
	var t int
	switch {
	case fuse >= 4 && nt >= 4:
		rowScale4(dst, p.src(0, base, n), p.src(1, base, n), p.src(2, base, n), p.src(3, base, n),
			w[0], w[1], w[2], w[3])
		t = 4
	case fuse >= 2 && nt >= 2:
		rowScale2(dst, p.src(0, base, n), p.src(1, base, n), w[0], w[1])
		t = 2
	default:
		rowScale1(dst, p.src(0, base, n), w[0])
		t = 1
	}
	if fuse >= 4 {
		for ; nt-t >= 4; t += 4 {
			rowAxpy4(dst, p.src(t, base, n), p.src(t+1, base, n), p.src(t+2, base, n), p.src(t+3, base, n),
				w[t], w[t+1], w[t+2], w[t+3])
		}
	}
	if fuse >= 2 {
		for ; nt-t >= 2; t += 2 {
			rowAxpy2(dst, p.src(t, base, n), p.src(t+1, base, n), w[t], w[t+1])
		}
	}
	for ; t < nt; t++ {
		rowAxpy1(dst, p.src(t, base, n), w[t])
	}
}

// runSpans executes a run of (base, n) row-span pairs through the generic
// term-plan passes.
func runSpans[T grid.Float](p *plan[T], out []T, spans []int32, fuse int) {
	for i := 0; i+1 < len(spans); i += 2 {
		runRowPlan(p, out, int(spans[i]), int(spans[i+1]), fuse)
	}
}

// rowScale1 is the head pass: dst = w·a.
func rowScale1[T grid.Float](dst, a []T, w T) {
	a = a[:len(dst)]
	for len(dst) >= 4 {
		d, x := dst[:4], a[:4]
		d[0] = w * x[0]
		d[1] = w * x[1]
		d[2] = w * x[2]
		d[3] = w * x[3]
		dst, a = dst[4:], a[4:]
	}
	for i := range dst {
		dst[i] = w * a[i]
	}
}

// rowScale2 is the 2-term fused head pass: dst = wa·a + wb·b.
func rowScale2[T grid.Float](dst, a, b []T, wa, wb T) {
	n := len(dst)
	a, b = a[:n], b[:n]
	for len(dst) >= 4 {
		d, x, y := dst[:4], a[:4], b[:4]
		d[0] = wa*x[0] + wb*y[0]
		d[1] = wa*x[1] + wb*y[1]
		d[2] = wa*x[2] + wb*y[2]
		d[3] = wa*x[3] + wb*y[3]
		dst, a, b = dst[4:], a[4:], b[4:]
	}
	for i := range dst {
		dst[i] = wa*a[i] + wb*b[i]
	}
}

// rowScale4 is the 4-term fused head pass: dst = wa·a + wb·b + wc·c + wd·d.
func rowScale4[T grid.Float](dst, a, b, c, e []T, wa, wb, wc, wd T) {
	n := len(dst)
	a, b, c, e = a[:n], b[:n], c[:n], e[:n]
	for len(dst) >= 4 {
		d, x, y, z, u := dst[:4], a[:4], b[:4], c[:4], e[:4]
		d[0] = wa*x[0] + wb*y[0] + wc*z[0] + wd*u[0]
		d[1] = wa*x[1] + wb*y[1] + wc*z[1] + wd*u[1]
		d[2] = wa*x[2] + wb*y[2] + wc*z[2] + wd*u[2]
		d[3] = wa*x[3] + wb*y[3] + wc*z[3] + wd*u[3]
		dst, a, b, c, e = dst[4:], a[4:], b[4:], c[4:], e[4:]
	}
	for i := range dst {
		dst[i] = wa*a[i] + wb*b[i] + wc*c[i] + wd*e[i]
	}
}

// rowAxpy1 accumulates one term: dst += w·a.
func rowAxpy1[T grid.Float](dst, a []T, w T) {
	a = a[:len(dst)]
	for len(dst) >= 4 {
		d, x := dst[:4], a[:4]
		d[0] += w * x[0]
		d[1] += w * x[1]
		d[2] += w * x[2]
		d[3] += w * x[3]
		dst, a = dst[4:], a[4:]
	}
	for i := range dst {
		dst[i] += w * a[i]
	}
}

// rowAxpy2 accumulates two fused terms in plan order. The bodies spell out
// d = d + wa·a + wb·b rather than d += …, because += would evaluate the sum
// of products before folding it into d — a reassociation that breaks
// bit-equality with the sequential Reference accumulation.
func rowAxpy2[T grid.Float](dst, a, b []T, wa, wb T) {
	n := len(dst)
	a, b = a[:n], b[:n]
	for len(dst) >= 4 {
		d, x, y := dst[:4], a[:4], b[:4]
		d[0] = d[0] + wa*x[0] + wb*y[0]
		d[1] = d[1] + wa*x[1] + wb*y[1]
		d[2] = d[2] + wa*x[2] + wb*y[2]
		d[3] = d[3] + wa*x[3] + wb*y[3]
		dst, a, b = dst[4:], a[4:], b[4:]
	}
	for i := range dst {
		dst[i] = dst[i] + wa*a[i] + wb*b[i]
	}
}

// rowAxpy4 accumulates four fused terms in plan order (see rowAxpy2 for why
// the bodies avoid +=).
func rowAxpy4[T grid.Float](dst, a, b, c, e []T, wa, wb, wc, wd T) {
	n := len(dst)
	a, b, c, e = a[:n], b[:n], c[:n], e[:n]
	for len(dst) >= 4 {
		d, x, y, z, u := dst[:4], a[:4], b[:4], c[:4], e[:4]
		d[0] = d[0] + wa*x[0] + wb*y[0] + wc*z[0] + wd*u[0]
		d[1] = d[1] + wa*x[1] + wb*y[1] + wc*z[1] + wd*u[1]
		d[2] = d[2] + wa*x[2] + wb*y[2] + wc*z[2] + wd*u[2]
		d[3] = d[3] + wa*x[3] + wb*y[3] + wc*z[3] + wd*u[3]
		dst, a, b, c, e = dst[4:], a[4:], b[4:], c[4:], e[4:]
	}
	for i := range dst {
		dst[i] = dst[i] + wa*a[i] + wb*b[i] + wc*c[i] + wd*e[i]
	}
}
