package exec

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/grid"
	"repro/internal/shape"
	"repro/internal/stencil"
	"repro/internal/tunespace"
)

// buildWorkspace allocates an output grid and input buffers for a kernel.
func buildWorkspace(t *testing.T, k *LinearKernel, nx, ny, nz int) (*grid.Grid[float64], []*grid.Grid[float64]) {
	t.Helper()
	halo := k.MaxOffset()
	haloZ := halo
	if nz == 1 {
		haloZ = 0
	}
	out := grid.New(nx, ny, nz, halo, haloZ)
	var ins []*grid.Grid[float64]
	for b := 0; b < k.Buffers; b++ {
		g := grid.New(nx, ny, nz, halo, haloZ)
		g.FillPattern()
		// Make buffers distinguishable so buffer mix-ups fail tests.
		for i, d := 0, g.Data(); i < len(d); i++ {
			d[i] += float64(b) * 0.311
		}
		ins = append(ins, g)
	}
	return out, ins
}

func TestAllBenchmarkKernelsMatchReference(t *testing.T) {
	r := NewRunner()
	rng := rand.New(rand.NewSource(1))
	for _, name := range []string{
		"blur", "edge", "game-of-life", "wave-1", "tricubic",
		"divergence", "gradient", "laplacian", "laplacian6",
	} {
		k, err := ExecutableByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := k.Validate(); err != nil {
			t.Fatalf("%s: invalid kernel: %v", name, err)
		}
		nx, ny, nz := 40, 36, 20
		if k.MaxOffset() > 0 && name == "blur" || name == "edge" || name == "game-of-life" {
			nz = 1
		}
		ref, ins := buildWorkspace(t, k, nx, ny, nz)
		if err := r.Reference(k, ref, ins); err != nil {
			t.Fatalf("%s: reference failed: %v", name, err)
		}
		dims := 3
		if nz == 1 {
			dims = 2
		}
		space := tunespace.NewSpace(dims)
		for trial := 0; trial < 10; trial++ {
			tv := space.Random(rng)
			got := grid.New(nx, ny, nz, k.MaxOffset(), ref.HaloZ)
			if err := r.Run(k, got, ins, tv); err != nil {
				t.Fatalf("%s %v: run failed: %v", name, tv, err)
			}
			if d := grid.MaxAbsDiff(ref, got); d > 1e-12 {
				t.Fatalf("%s %v: max diff %g vs reference", name, tv, d)
			}
		}
	}
}

func TestUnrollFactorsAllMatch(t *testing.T) {
	r := NewRunner()
	k := LaplacianExec()
	ref, ins := buildWorkspace(t, k, 33, 17, 9) // odd sizes exercise remainders
	if err := r.Reference(k, ref, ins); err != nil {
		t.Fatal(err)
	}
	for u := 0; u <= 8; u++ {
		got := grid.New(33, 17, 9, k.MaxOffset(), k.MaxOffset())
		tv := tunespace.Vector{Bx: 16, By: 8, Bz: 4, U: u, C: 2}
		if err := r.Run(k, got, ins, tv); err != nil {
			t.Fatalf("u=%d: %v", u, err)
		}
		if d := grid.MaxAbsDiff(ref, got); d > 1e-12 {
			t.Fatalf("u=%d: diff %g", u, d)
		}
	}
}

func TestBlocksLargerThanDomain(t *testing.T) {
	r := NewRunner()
	k := GradientExec()
	ref, ins := buildWorkspace(t, k, 20, 20, 20)
	if err := r.Reference(k, ref, ins); err != nil {
		t.Fatal(err)
	}
	got := grid.New(20, 20, 20, k.MaxOffset(), k.MaxOffset())
	tv := tunespace.Vector{Bx: 1024, By: 1024, Bz: 1024, U: 4, C: 16}
	if err := r.Run(k, got, ins, tv); err != nil {
		t.Fatal(err)
	}
	if d := grid.MaxAbsDiff(ref, got); d > 1e-12 {
		t.Fatalf("diff %g", d)
	}
}

func TestSingleWorker(t *testing.T) {
	r := &Runner[float64]{Workers: 1}
	k := BlurExec()
	ref, ins := buildWorkspace(t, k, 64, 48, 1)
	if err := r.Reference(k, ref, ins); err != nil {
		t.Fatal(err)
	}
	got := grid.New(64, 48, 1, k.MaxOffset(), 0)
	if err := r.Run(k, got, ins, tunespace.Vector{Bx: 16, By: 16, Bz: 1, U: 2, C: 3}); err != nil {
		t.Fatal(err)
	}
	if d := grid.MaxAbsDiff(ref, got); d > 1e-12 {
		t.Fatalf("diff %g", d)
	}
}

func TestValidationErrors(t *testing.T) {
	r := NewRunner()
	k := LaplacianExec()
	out, ins := buildWorkspace(t, k, 16, 16, 16)

	// Wrong buffer count.
	if err := r.Run(k, out, nil, tunespace.Vector{Bx: 8, By: 8, Bz: 8, U: 0, C: 1}); err == nil {
		t.Error("missing buffers accepted")
	}
	// Invalid tuning vector.
	if err := r.Run(k, out, ins, tunespace.Vector{Bx: 0, By: 8, Bz: 8, U: 0, C: 1}); err == nil {
		t.Error("invalid tuning accepted")
	}
	// Geometry mismatch.
	bad := grid.New(8, 16, 16, 1, 1)
	if err := r.Run(k, out, []*grid.Grid[float64]{bad}, tunespace.Vector{Bx: 8, By: 8, Bz: 8, U: 0, C: 1}); err == nil {
		t.Error("geometry mismatch accepted")
	}
	// Insufficient halo.
	thin := grid.New(16, 16, 16, 0, 0)
	if err := r.Run(k, out, []*grid.Grid[float64]{thin}, tunespace.Vector{Bx: 8, By: 8, Bz: 8, U: 0, C: 1}); err == nil {
		t.Error("insufficient halo accepted")
	}
	// Empty kernel.
	empty := &LinearKernel{Name: "empty", Buffers: 1}
	if err := empty.Validate(); err == nil {
		t.Error("empty kernel validated")
	}
	// Out-of-range buffer reference.
	badBuf := &LinearKernel{Name: "bad", Buffers: 1, Terms: []Term{{Buffer: 2, Weight: 1}}}
	if err := badBuf.Validate(); err == nil {
		t.Error("out-of-range buffer reference validated")
	}
}

func TestLinearKernelShapeAndOffset(t *testing.T) {
	k := Laplacian6Exec()
	if got := k.MaxOffset(); got != 3 {
		t.Errorf("MaxOffset = %d, want 3", got)
	}
	s := k.Shape()
	if s.Size() != 19 {
		t.Errorf("shape size = %d, want 19", s.Size())
	}
	if !s.Contains(shape.Point{X: 3}) || s.Contains(shape.Point{X: 1, Y: 1}) {
		t.Error("laplacian6 shape wrong")
	}
}

func TestDivergenceUsesAllThreeBuffers(t *testing.T) {
	// Zeroing one buffer must change the result: proves per-buffer wiring.
	r := NewRunner()
	k := DivergenceExec()
	out, ins := buildWorkspace(t, k, 16, 16, 16)
	if err := r.Reference(k, out, ins); err != nil {
		t.Fatal(err)
	}
	sumFull := out.InteriorSum()
	for b := 0; b < 3; b++ {
		mod := make([]*grid.Grid[float64], 3)
		for i := range ins {
			mod[i] = ins[i].Clone()
		}
		mod[b].Fill(0)
		out2 := grid.New(16, 16, 16, k.MaxOffset(), k.MaxOffset())
		if err := r.Reference(k, out2, mod); err != nil {
			t.Fatal(err)
		}
		if math.Abs(out2.InteriorSum()-sumFull) < 1e-12 {
			t.Errorf("zeroing buffer %d did not change divergence output", b)
		}
	}
}

func TestFromStencilGenericConversion(t *testing.T) {
	sk := &stencil.Kernel{
		Name:    "generic",
		Shape:   shape.Laplacian3D(2),
		Buffers: 2,
		Type:    stencil.Float32,
	}
	lk := FromStencil(sk)
	if err := lk.Validate(); err != nil {
		t.Fatalf("converted kernel invalid: %v", err)
	}
	if len(lk.Terms) != sk.Shape.TotalAccesses() {
		t.Errorf("terms = %d, want %d", len(lk.Terms), sk.Shape.TotalAccesses())
	}
	// Weights sum to 1 (averaging kernel).
	var sum float64
	for _, term := range lk.Terms {
		sum += term.Weight
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("weight sum = %v, want 1", sum)
	}
	// Runs correctly.
	r := NewRunner()
	ref, ins := buildWorkspace(t, lk, 24, 24, 24)
	if err := r.Reference(lk, ref, ins); err != nil {
		t.Fatal(err)
	}
	got := grid.New(24, 24, 24, lk.MaxOffset(), lk.MaxOffset())
	if err := r.Run(lk, got, ins, tunespace.Vector{Bx: 8, By: 8, Bz: 8, U: 4, C: 2}); err != nil {
		t.Fatal(err)
	}
	if d := grid.MaxAbsDiff(ref, got); d > 1e-12 {
		t.Fatalf("diff %g", d)
	}
}

func TestExecutableFallsBackToGeneric(t *testing.T) {
	sk := &stencil.Kernel{Name: "custom-thing", Shape: shape.Square(1), Buffers: 1, Type: stencil.Float32}
	lk := Executable(sk)
	if lk.Name != "custom-thing" {
		t.Errorf("fallback name = %q", lk.Name)
	}
	known := Executable(stencil.Blur())
	if len(known.Terms) != 25 || known.Terms[0].Weight != 1.0/25 {
		t.Error("Executable should use the hand-written blur")
	}
}

func TestExecutableByNameUnknown(t *testing.T) {
	if _, err := ExecutableByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestMeasurerProducesPositiveTimes(t *testing.T) {
	m := NewMeasurer()
	m.Repetitions = 1
	q := stencil.Instance{Kernel: stencil.Laplacian(), Size: stencil.Size3D(32, 32, 32)}
	secs, err := m.Measure(q, tunespace.Vector{Bx: 16, By: 16, Bz: 8, U: 2, C: 2})
	if err != nil {
		t.Fatal(err)
	}
	if secs <= 0 {
		t.Errorf("measured %v seconds", secs)
	}
	// Workspace reuse: a second call must not error and should reuse grids.
	if _, err := m.Measure(q, tunespace.Vector{Bx: 32, By: 8, Bz: 4, U: 0, C: 1}); err != nil {
		t.Fatal(err)
	}
	if len(m.ws64) != 1 {
		t.Errorf("workspace cache size = %d, want 1", len(m.ws64))
	}
}

func TestMeasurerRejectsInvalidTuning(t *testing.T) {
	m := NewMeasurer()
	m.Repetitions = 1
	q := stencil.Instance{Kernel: stencil.Laplacian(), Size: stencil.Size3D(16, 16, 16)}
	if _, err := m.Measure(q, tunespace.Vector{Bx: -1, By: 8, Bz: 8, U: 0, C: 1}); err == nil {
		t.Error("invalid tuning accepted by measurer")
	}
}

func TestDecomposeCoversDomainExactly(t *testing.T) {
	out := grid.New(30, 20, 10, 1, 1)
	tiles := decompose(geomOf(out), tunespace.Vector{Bx: 7, By: 8, Bz: 3, U: 0, C: 1})
	covered := make(map[[3]int]int)
	for _, tl := range tiles {
		if tl.x0 >= tl.x1 || tl.y0 >= tl.y1 || tl.z0 >= tl.z1 {
			t.Fatalf("degenerate tile %+v", tl)
		}
		for z := tl.z0; z < tl.z1; z++ {
			for y := tl.y0; y < tl.y1; y++ {
				for x := tl.x0; x < tl.x1; x++ {
					covered[[3]int{x, y, z}]++
				}
			}
		}
	}
	if len(covered) != 30*20*10 {
		t.Fatalf("covered %d points, want %d", len(covered), 30*20*10)
	}
	for p, n := range covered {
		if n != 1 {
			t.Fatalf("point %v covered %d times", p, n)
		}
	}
}

func TestChunkSchedulingAllChunksMatch(t *testing.T) {
	r := NewRunner()
	k := EdgeExec()
	ref, ins := buildWorkspace(t, k, 50, 50, 1)
	if err := r.Reference(k, ref, ins); err != nil {
		t.Fatal(err)
	}
	for _, c := range []int{1, 2, 5, 16} {
		got := grid.New(50, 50, 1, k.MaxOffset(), 0)
		if err := r.Run(k, got, ins, tunespace.Vector{Bx: 8, By: 8, Bz: 1, U: 2, C: c}); err != nil {
			t.Fatalf("c=%d: %v", c, err)
		}
		if d := grid.MaxAbsDiff(ref, got); d > 1e-12 {
			t.Fatalf("c=%d: diff %g", c, d)
		}
	}
}

func TestFastPathDetection(t *testing.T) {
	mk := func(k *LinearKernel, nx int) *plan[float64] {
		out := grid.New(nx, 8, 8, k.MaxOffset(), k.MaxOffset())
		var ins []*grid.Grid[float64]
		for b := 0; b < k.Buffers; b++ {
			ins = append(ins, grid.New(nx, 8, 8, k.MaxOffset(), k.MaxOffset()))
		}
		return buildPlan(k, out, ins)
	}
	// 7-point laplacian must hit the star7 fast path.
	lap := LaplacianExec()
	if fp := detectFast(lap, mk(lap, 8)); fp == nil || fp.kind != fastStar7 {
		t.Error("laplacian should use the star7 fast path")
	}
	// Gradient (6 points) must not.
	gr := GradientExec()
	if fp := detectFast(gr, mk(gr, 8)); fp != nil {
		t.Error("gradient should not match a fast path")
	}
	// Multi-buffer kernels never specialize.
	dv := DivergenceExec()
	if fp := detectFast(dv, mk(dv, 8)); fp != nil {
		t.Error("divergence should not match a fast path")
	}
	// A 3-point x row stencil matches row3.
	row := &LinearKernel{Name: "r3", Buffers: 1, Terms: []Term{
		{Offset: shape.Point{X: -1}, Weight: 0.25},
		{Offset: shape.Point{}, Weight: 0.5},
		{Offset: shape.Point{X: 1}, Weight: 0.25},
	}}
	if fp := detectFast(row, mk(row, 8)); fp == nil || fp.kind != fastRow3 {
		t.Error("3-point row should use the row3 fast path")
	}
	// A 7-term kernel with a diagonal offset must NOT match star7.
	diag := &LinearKernel{Name: "d7", Buffers: 1}
	pts := []shape.Point{{}, {X: 1}, {X: -1}, {Y: 1}, {Y: -1}, {Z: 1}, {X: 1, Y: 1}}
	for _, p := range pts {
		diag.Terms = append(diag.Terms, Term{Offset: p, Weight: 1})
	}
	if fp := detectFast(diag, mk(diag, 8)); fp != nil {
		t.Error("diagonal 7-term kernel must not match star7")
	}
}

func TestFastPathMatchesGenericResults(t *testing.T) {
	// The specialized bodies must be bit-identical to the generic path.
	r := NewRunner()
	for _, k := range []*LinearKernel{
		LaplacianExec(),
		{Name: "r3", Buffers: 1, Terms: []Term{
			{Offset: shape.Point{X: -1}, Weight: 0.3},
			{Offset: shape.Point{}, Weight: 0.4},
			{Offset: shape.Point{X: 1}, Weight: 0.3},
		}},
	} {
		ref, ins := buildWorkspace(t, k, 37, 19, 11)
		if err := r.Reference(k, ref, ins); err != nil {
			t.Fatal(err)
		}
		for _, u := range []int{0, 2, 4, 8} {
			got := grid.New(37, 19, 11, k.MaxOffset(), k.MaxOffset())
			tv := tunespace.Vector{Bx: 16, By: 8, Bz: 4, U: u, C: 2}
			if err := r.Run(k, got, ins, tv); err != nil {
				t.Fatalf("%s u=%d: %v", k.Name, u, err)
			}
			if d := grid.MaxAbsDiff(ref, got); d > 1e-12 {
				t.Fatalf("%s u=%d: fast path diff %g", k.Name, u, d)
			}
		}
	}
}
