package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/grid"
	"repro/internal/shape"
	"repro/internal/tunespace"
)

// randomGenericKernel draws a kernel guaranteed to take the generic row-plan
// path: its term count never equals a fast-path table size (3, 5, 7, 9, 27),
// so structural detection cannot fire regardless of the drawn offsets. Terms
// are random in-halo offsets (duplicates allowed) with random weights across
// 1–3 buffers.
func randomGenericKernel(rng *rand.Rand, dims, halo int) *LinearKernel {
	counts := []int{1, 2, 4, 6, 8, 11, 14}
	nt := counts[rng.Intn(len(counts))]
	buffers := 1 + rng.Intn(3)
	k := &LinearKernel{Name: fmt.Sprintf("rand-%dd-t%d-b%d", dims, nt, buffers), Buffers: buffers}
	for i := 0; i < nt; i++ {
		p := shape.Point{X: rng.Intn(2*halo+1) - halo, Y: rng.Intn(2*halo+1) - halo}
		if dims == 3 {
			p.Z = rng.Intn(2*halo+1) - halo
		}
		k.Terms = append(k.Terms, Term{
			Buffer: rng.Intn(buffers),
			Offset: p,
			Weight: rng.NormFloat64(),
		})
	}
	// Guarantee the halo width is actually needed so workspaces get the
	// intended halo regardless of the other draws.
	k.Terms[0].Offset = shape.Point{X: halo}
	return k
}

// TestGenericRowsMatchReference is the row-plan correctness sweep: random
// kernel shapes × halos × 2-D/3-D geometries × tile sizes and unroll/chunk
// factors, asserting the compiled span-walk path is bit-for-bit equal to the
// naive Reference sweep (the term-major passes accumulate in plan order, so
// no reassociation tolerance is needed).
func TestGenericRowsMatchReference(t *testing.T) {
	r := NewRunner()
	defer r.Close()
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		dims := 2 + rng.Intn(2)
		halo := 1 + rng.Intn(3)
		k := randomGenericKernel(rng, dims, halo)
		nx, ny := 3+rng.Intn(31), 3+rng.Intn(31)
		nz := 1
		if dims == 3 {
			nz = 3 + rng.Intn(14)
		}
		ref, ins := buildWorkspace(t, k, nx, ny, nz)
		if err := r.Reference(k, ref, ins); err != nil {
			t.Fatalf("trial %d %s: reference: %v", trial, k.Name, err)
		}
		for probe := 0; probe < 4; probe++ {
			tv := tunespace.Vector{
				Bx: 2 + rng.Intn(40),
				By: 2 + rng.Intn(40),
				Bz: 1,
				U:  rng.Intn(9),
				C:  1 + rng.Intn(8),
			}
			if dims == 3 {
				tv.Bz = 2 + rng.Intn(16)
			}
			got := grid.New(nx, ny, nz, k.MaxOffset(), ref.HaloZ)
			if err := r.Run(k, got, ins, tv); err != nil {
				t.Fatalf("trial %d %s %+v: %v", trial, k.Name, tv, err)
			}
			pr, err := r.Compile(k, got, ins, tv)
			if err != nil {
				t.Fatal(err)
			}
			if pr.fp != nil {
				t.Fatalf("trial %d %s: unexpectedly matched fast path %v", trial, k.Name, pr.fp.kind)
			}
			if d := grid.MaxAbsDiff(ref, got); d != 0 {
				t.Fatalf("trial %d %s %+v: diff %g, want bit-for-bit match", trial, k.Name, tv, d)
			}
		}
	}
}

// TestRowPlanCoversDomainExactly checks the compiled span plan: every
// interior point is covered by exactly one (base, n) row span, spans agree
// with the tile ownership recorded in spanStart, and no span strays into the
// halo.
func TestRowPlanCoversDomainExactly(t *testing.T) {
	r := NewRunner()
	defer r.Close()
	k := GradientExec()
	out, ins := buildWorkspace(t, k, 30, 20, 10)
	pr, err := r.Compile(k, out, ins, tunespace.Vector{Bx: 7, By: 8, Bz: 3, U: 2, C: 1})
	if err != nil {
		t.Fatal(err)
	}
	if pr.spans == nil || len(pr.spanStart) != len(pr.tiles)+1 {
		t.Fatalf("span plan missing: spans=%d spanStart=%d tiles=%d",
			len(pr.spans), len(pr.spanStart), len(pr.tiles))
	}
	// Interior flat indices, each expected exactly once.
	want := make(map[int]bool)
	for z := 0; z < out.NZ; z++ {
		for y := 0; y < out.NY; y++ {
			for x := 0; x < out.NX; x++ {
				want[out.Index(x, y, z)] = true
			}
		}
	}
	covered := make(map[int]int)
	for ti := range pr.tiles {
		lo, hi := pr.spanStart[ti], pr.spanStart[ti+1]
		rows := (pr.tiles[ti].y1 - pr.tiles[ti].y0) * (pr.tiles[ti].z1 - pr.tiles[ti].z0)
		if int(hi-lo) != rows {
			t.Fatalf("tile %d owns %d spans, want %d", ti, hi-lo, rows)
		}
		for si := lo; si < hi; si++ {
			base, n := int(pr.spans[2*si]), int(pr.spans[2*si+1])
			if n != pr.tiles[ti].x1-pr.tiles[ti].x0 {
				t.Fatalf("tile %d span %d has length %d, want %d", ti, si, n, pr.tiles[ti].x1-pr.tiles[ti].x0)
			}
			for i := base; i < base+n; i++ {
				if !want[i] {
					t.Fatalf("span [%d,%d) covers non-interior index %d", base, base+n, i)
				}
				covered[i]++
			}
		}
	}
	if len(covered) != len(want) {
		t.Fatalf("spans cover %d points, want %d", len(covered), len(want))
	}
	for i, c := range covered {
		if c != 1 {
			t.Fatalf("index %d covered %d times", i, c)
		}
	}
}

// TestFuseWidths pins the unroll→fuse mapping the compiled generic path and
// runTile both use.
func TestFuseWidths(t *testing.T) {
	for u, want := range map[int]int{0: 1, 1: 1, 2: 2, 3: 2, 4: 4, 8: 4} {
		if got := fuseWidth(u); got != want {
			t.Errorf("fuseWidth(%d) = %d, want %d", u, got, want)
		}
	}
}
