package exec

import (
	"math/rand"
	"testing"

	"repro/internal/grid"
	"repro/internal/shape"
	"repro/internal/stencil"
	"repro/internal/tunespace"
)

// star5Kernel builds a 2-D 5-point star in the canonical fast-path term
// order (centre, +x, -x, +y, -y) with distinct weights.
func star5Kernel() *LinearKernel {
	return &LinearKernel{Name: "star5", Buffers: 1, Terms: []Term{
		{Offset: shape.Point{}, Weight: -4.1},
		{Offset: shape.Point{X: 1}, Weight: 1.01},
		{Offset: shape.Point{X: -1}, Weight: 0.98},
		{Offset: shape.Point{Y: 1}, Weight: 1.03},
		{Offset: shape.Point{Y: -1}, Weight: 0.97},
	}}
}

// box9Kernel builds the full 3×3 box in canonical (y, x) order with distinct
// weights (the order EdgeExec and GameOfLifeExec use).
func box9Kernel() *LinearKernel {
	k := &LinearKernel{Name: "box9", Buffers: 1}
	w := 0.11
	for y := -1; y <= 1; y++ {
		for x := -1; x <= 1; x++ {
			k.Terms = append(k.Terms, Term{Offset: shape.Point{X: x, Y: y}, Weight: w})
			w += 0.07
		}
	}
	return k
}

// box27Kernel builds the full 3×3×3 box in canonical (z, y, x) order with
// distinct weights.
func box27Kernel() *LinearKernel {
	k := &LinearKernel{Name: "box27", Buffers: 1}
	w := 0.05
	for z := -1; z <= 1; z++ {
		for y := -1; y <= 1; y++ {
			for x := -1; x <= 1; x++ {
				k.Terms = append(k.Terms, Term{Offset: shape.Point{X: x, Y: y, Z: z}, Weight: w})
				w += 0.013
			}
		}
	}
	return k
}

// scramble returns a copy of the kernel with its terms in a shuffled order.
func scramble(k *LinearKernel, seed int64) *LinearKernel {
	rng := rand.New(rand.NewSource(seed))
	c := &LinearKernel{Name: k.Name + "-scrambled", Buffers: k.Buffers}
	c.Terms = append(c.Terms, k.Terms...)
	rng.Shuffle(len(c.Terms), func(i, j int) { c.Terms[i], c.Terms[j] = c.Terms[j], c.Terms[i] })
	return c
}

// TestNewFastPathDetection checks the expanded structural matcher.
func TestNewFastPathDetection(t *testing.T) {
	mk := func(k *LinearKernel, nz int) *plan[float64] {
		halo := k.MaxOffset()
		haloZ := halo
		if nz == 1 {
			haloZ = 0
		}
		out := grid.New(8, 8, nz, halo, haloZ)
		var ins []*grid.Grid[float64]
		for b := 0; b < k.Buffers; b++ {
			ins = append(ins, grid.New(8, 8, nz, halo, haloZ))
		}
		return buildPlan(k, out, ins)
	}
	cases := []struct {
		name string
		k    *LinearKernel
		nz   int
		kind fastKind
	}{
		{"star5", star5Kernel(), 1, fastStar5},
		{"star5-scrambled", scramble(star5Kernel(), 3), 1, fastStar5},
		{"box9", box9Kernel(), 1, fastBox9},
		{"box9-edge", EdgeExec(), 1, fastBox9},
		{"box9-game-of-life", GameOfLifeExec(), 1, fastBox9},
		{"box27", box27Kernel(), 8, fastBox27},
		{"box27-scrambled", scramble(box27Kernel(), 5), 8, fastBox27},
	}
	for _, tc := range cases {
		if fp := detectFast(tc.k, mk(tc.k, tc.nz)); fp == nil || fp.kind != tc.kind {
			t.Errorf("%s: kind = %v, want %v", tc.name, fp, tc.kind)
		}
	}

	// Near-misses must fall back to the generic path.
	diag5 := &LinearKernel{Name: "diag5", Buffers: 1}
	for _, p := range []shape.Point{{}, {X: 1}, {X: -1}, {Y: 1}, {X: 1, Y: 1}} {
		diag5.Terms = append(diag5.Terms, Term{Offset: p, Weight: 1})
	}
	if fp := detectFast(diag5, mk(diag5, 1)); fp != nil {
		t.Error("5-term kernel with a diagonal must not match star5")
	}
	hole27 := box27Kernel()
	hole27.Terms[13].Offset = shape.Point{X: 2} // displace the centre
	if fp := detectFast(hole27, mk(hole27, 8)); fp != nil {
		t.Error("27-term kernel missing a box offset must not match box27")
	}
	dup9 := box9Kernel()
	dup9.Terms[8].Offset = shape.Point{} // duplicate centre, missing (1,1)
	if fp := detectFast(dup9, mk(dup9, 1)); fp != nil {
		t.Error("9-term kernel with a duplicated offset must not match box9")
	}
	multi27 := box27Kernel()
	multi27.Buffers = 2
	multi27.Terms[0].Buffer = 1
	if fp := detectFast(multi27, mk(multi27, 8)); fp != nil {
		t.Error("multi-buffer 27-term kernel must not specialize")
	}
}

// TestNewFastPathsMatchReference proves every new specialization agrees with
// the naive reference sweep across random tuning vectors. Canonically
// ordered kernels must match bit-for-bit; scrambled term orders may differ
// only by floating-point reassociation.
func TestNewFastPathsMatchReference(t *testing.T) {
	r := NewRunner()
	defer r.Close()
	rng := rand.New(rand.NewSource(7))
	cases := []struct {
		name  string
		k     *LinearKernel
		nz    int
		exact bool
	}{
		{"star5", star5Kernel(), 1, true},
		{"box9", box9Kernel(), 1, true},
		{"box9-edge", EdgeExec(), 1, true},
		{"box27", box27Kernel(), 13, true},
		{"star5-scrambled", scramble(star5Kernel(), 11), 1, false},
		{"box9-scrambled", scramble(box9Kernel(), 12), 1, false},
		{"box27-scrambled", scramble(box27Kernel(), 13), 13, false},
	}
	for _, tc := range cases {
		nx, ny := 41, 23
		ref, ins := buildWorkspace(t, tc.k, nx, ny, tc.nz)
		if err := r.Reference(tc.k, ref, ins); err != nil {
			t.Fatalf("%s: reference: %v", tc.name, err)
		}
		dims := 3
		if tc.nz == 1 {
			dims = 2
		}
		space := tunespace.NewSpace(dims)
		for trial := 0; trial < 12; trial++ {
			tv := space.Random(rng)
			got := grid.New(nx, ny, tc.nz, tc.k.MaxOffset(), ref.HaloZ)
			if err := r.Run(tc.k, got, ins, tv); err != nil {
				t.Fatalf("%s %v: %v", tc.name, tv, err)
			}
			d := grid.MaxAbsDiff(ref, got)
			if tc.exact && d != 0 {
				t.Fatalf("%s %v: diff %g, want bit-for-bit match", tc.name, tv, d)
			}
			if d > 1e-12 {
				t.Fatalf("%s %v: diff %g", tc.name, tv, d)
			}
		}
	}
}

// TestCompiledRunZeroAllocs is the steady-state allocation regression test:
// once a program is cached, Run must not allocate — on the specialized fast
// path, the generic term-table path, and the multi-buffer path alike.
func TestCompiledRunZeroAllocs(t *testing.T) {
	r := NewRunner()
	defer r.Close()
	cases := []struct {
		name string
		k    *LinearKernel
		nz   int
	}{
		{"fastpath-laplacian", LaplacianExec(), 24},
		{"generic-gradient", GradientExec(), 24},
		{"multibuffer-divergence", DivergenceExec(), 24},
		{"generic-blur-2d", BlurExec(), 1},
	}
	for _, tc := range cases {
		out, ins := buildWorkspace(t, tc.k, 24, 24, tc.nz)
		tv := tunespace.Vector{Bx: 8, By: 8, Bz: 8, U: 2, C: 2}
		if tc.nz == 1 {
			tv.Bz = 1
		}
		if err := r.Run(tc.k, out, ins, tv); err != nil { // warm the cache
			t.Fatalf("%s: %v", tc.name, err)
		}
		allocs := testing.AllocsPerRun(50, func() {
			if err := r.Run(tc.k, out, ins, tv); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: %v allocs per steady-state Run, want 0", tc.name, allocs)
		}
	}
}

// TestCompileCachesPrograms checks cache identity and key sensitivity.
func TestCompileCachesPrograms(t *testing.T) {
	r := NewRunner()
	defer r.Close()
	k := LaplacianExec()
	out, ins := buildWorkspace(t, k, 16, 16, 16)
	tv := tunespace.Vector{Bx: 8, By: 8, Bz: 8, U: 2, C: 2}
	p1, err := r.Compile(k, out, ins, tv)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := r.Compile(k, out, ins, tv)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("identical (kernel, geometry, vector) did not reuse the cached program")
	}
	tv2 := tv
	tv2.U = 4
	p3, err := r.Compile(k, out, ins, tv2)
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Error("different tuning vector reused the same program")
	}
	if want := 2 * 2 * 2; p1.Tiles() != want {
		t.Errorf("tiles = %d, want %d", p1.Tiles(), want)
	}
	// A fresh grid of the same geometry runs through the same program.
	if err := p1.Run(out, ins); err != nil {
		t.Fatal(err)
	}
	out2 := grid.New(16, 16, 16, k.MaxOffset(), k.MaxOffset())
	if err := p1.Run(out2, ins); err != nil {
		t.Fatal(err)
	}
	if d := grid.MaxAbsDiff(out, out2); d != 0 {
		t.Errorf("rebound run differs by %g", d)
	}
}

// TestProgramRejectsForeignGeometry checks the per-run geometry guard.
func TestProgramRejectsForeignGeometry(t *testing.T) {
	r := NewRunner()
	defer r.Close()
	k := LaplacianExec()
	out, ins := buildWorkspace(t, k, 16, 16, 16)
	p, err := r.Compile(k, out, ins, tunespace.Vector{Bx: 8, By: 8, Bz: 8, U: 0, C: 1})
	if err != nil {
		t.Fatal(err)
	}
	other := grid.New(16, 16, 8, k.MaxOffset(), k.MaxOffset())
	if err := p.Run(other, ins); err == nil {
		t.Error("foreign output geometry accepted")
	}
	wideHalo := grid.New(16, 16, 16, 3, 3)
	if err := p.Run(out, []*grid.Grid[float64]{wideHalo}); err == nil {
		t.Error("foreign input halo accepted")
	}
	if err := p.Run(out, nil); err == nil {
		t.Error("missing buffers accepted")
	}
}

// TestRunLegacyMatchesCompiled keeps the baseline path equivalent to the
// compiled path.
func TestRunLegacyMatchesCompiled(t *testing.T) {
	r := NewRunner()
	defer r.Close()
	rng := rand.New(rand.NewSource(9))
	for _, k := range []*LinearKernel{LaplacianExec(), BlurExec(), TricubicExec()} {
		nz := 9
		if k.Name == "blur" {
			nz = 1
		}
		legacy, ins := buildWorkspace(t, k, 25, 17, nz)
		dims := 3
		if nz == 1 {
			dims = 2
		}
		tv := tunespace.NewSpace(dims).Random(rng)
		if err := r.RunLegacy(k, legacy, ins, tv); err != nil {
			t.Fatalf("%s legacy: %v", k.Name, err)
		}
		compiled := grid.New(25, 17, nz, k.MaxOffset(), legacy.HaloZ)
		if err := r.Run(k, compiled, ins, tv); err != nil {
			t.Fatalf("%s compiled: %v", k.Name, err)
		}
		if d := grid.MaxAbsDiff(legacy, compiled); d != 0 {
			t.Errorf("%s: legacy vs compiled diff %g", k.Name, d)
		}
	}
}

// TestRunnerCloseAndReuse checks Close is safe to call repeatedly and the
// runner restarts its pool transparently.
func TestRunnerCloseAndReuse(t *testing.T) {
	r := NewRunner()
	k := LaplacianExec()
	out, ins := buildWorkspace(t, k, 12, 12, 12)
	tv := tunespace.Vector{Bx: 4, By: 4, Bz: 4, U: 0, C: 1}
	if err := r.Run(k, out, ins, tv); err != nil {
		t.Fatal(err)
	}
	r.Close()
	r.Close() // idempotent
	if err := r.Run(k, out, ins, tv); err != nil {
		t.Fatalf("run after close: %v", err)
	}
	r.Close()
}

// TestProgramCacheEviction fills the cache past its program-count bound and
// checks it stays bounded while results remain correct.
func TestProgramCacheEviction(t *testing.T) {
	r := &Runner[float64]{Workers: 2}
	defer r.Close()
	k := LaplacianExec()
	out, ins := buildWorkspace(t, k, 12, 12, 12)
	ref, _ := buildWorkspace(t, k, 12, 12, 12)
	if err := r.Reference(k, ref, ins); err != nil {
		t.Fatal(err)
	}
	unrolls := []int{0, 1, 2, 3, 4, 5, 6, 7, 8}
	chunks := []int{1, 2, 3, 4, 5, 6, 7, 8}
	blocks := []int{2, 3, 4, 6, 8, 12}
	n := 0
	for _, u := range unrolls {
		for _, c := range chunks {
			for _, b := range blocks {
				tv := tunespace.Vector{Bx: b, By: b, Bz: b, U: u, C: c}
				if err := r.Run(k, out, ins, tv); err != nil {
					t.Fatal(err)
				}
				n++
			}
		}
	}
	if n <= maxCachedPrograms/2 && len(r.progs) > n {
		t.Errorf("cache grew beyond inserted programs: %d > %d", len(r.progs), n)
	}
	if len(r.progs) > maxCachedPrograms {
		t.Errorf("cache holds %d programs, bound is %d", len(r.progs), maxCachedPrograms)
	}
	if r.cachedTiles > maxCachedTiles {
		t.Errorf("cache holds %d tiles, bound is %d", r.cachedTiles, maxCachedTiles)
	}
	if d := grid.MaxAbsDiff(ref, out); d > 1e-12 {
		t.Errorf("post-eviction result diff %g", d)
	}
}

// TestMeasurerGrowsWorkspaceInPlace checks that a later kernel needing more
// buffers extends the cached workspace instead of discarding it.
func TestMeasurerGrowsWorkspaceInPlace(t *testing.T) {
	m := NewMeasurer()
	defer m.Close()
	m.Repetitions = 1
	size := stencil.Size3D(16, 16, 16)
	tv := tunespace.Vector{Bx: 8, By: 8, Bz: 8, U: 0, C: 1}
	// laplacian: 1 buffer, halo 1.
	if _, err := m.Measure(stencil.Instance{Kernel: stencil.Laplacian(), Size: size}, tv); err != nil {
		t.Fatal(err)
	}
	if len(m.ws64) != 1 {
		t.Fatalf("workspaces = %d, want 1", len(m.ws64))
	}
	var w *workspace[float64]
	for _, v := range m.ws64 {
		w = v
	}
	out, ins := w.out, len(w.ins)
	if ins != 1 {
		t.Fatalf("buffers = %d, want 1", ins)
	}
	// divergence: 3 buffers, same halo and size → same workspace, grown.
	if _, err := m.Measure(stencil.Instance{Kernel: stencil.Divergence(), Size: size}, tv); err != nil {
		t.Fatal(err)
	}
	if len(m.ws64) != 1 {
		t.Fatalf("workspaces after growth = %d, want 1", len(m.ws64))
	}
	for _, v := range m.ws64 {
		if v.out != out {
			t.Error("workspace output grid was reallocated instead of reused")
		}
		if len(v.ins) != 3 {
			t.Errorf("buffers after growth = %d, want 3", len(v.ins))
		}
	}
}

// TestMeasurerCachesExecutableKernels checks the stable-kernel-pointer cache
// that makes Measure hit the runner's program cache.
func TestMeasurerCachesExecutableKernels(t *testing.T) {
	m := NewMeasurer()
	defer m.Close()
	m.Repetitions = 1
	q := stencil.Instance{Kernel: stencil.Laplacian(), Size: stencil.Size3D(16, 16, 16)}
	tv := tunespace.Vector{Bx: 8, By: 8, Bz: 8, U: 0, C: 1}
	if _, err := m.Measure(q, tv); err != nil {
		t.Fatal(err)
	}
	k1 := m.executableFor(q.Kernel)
	if _, err := m.Measure(q, tv); err != nil {
		t.Fatal(err)
	}
	if k2 := m.executableFor(q.Kernel); k2 != k1 {
		t.Error("executable kernel rebuilt between measurements")
	}
	if len(m.Runner.progs) != 1 {
		t.Errorf("program cache holds %d entries after repeated measurement, want 1", len(m.Runner.progs))
	}
}
