// Package exec is the real stencil execution engine: it applies linear
// stencil kernels over grids with the same code transformations PATUS
// exposes — loop blocking (bx, by, bz), innermost-loop unrolling (u) and
// chunked multithreaded tile scheduling (c) — implemented with goroutine
// workers instead of OpenMP threads.
//
// The engine is generic over the element type: Runner[float32] executes and
// times single-precision stencils in genuine float32 arithmetic and memory
// traffic, Runner[float64] in double precision. Kernel descriptions
// (LinearKernel) stay type-neutral — weights are declared in float64 and
// converted to the execution type when a plan is built — so one kernel
// definition serves both precisions. NewRunner returns the double-precision
// runner (the historical default); NewRunnerOf selects the type explicitly,
// and Measurer picks the runner matching each stencil's declared DataType.
//
// Execution is split into a compile step and an execute step. Compile takes
// a kernel, a grid geometry and a tuning vector and produces a *Program: the
// exact-size tile decomposition, its flattened (base, n) row-span plan, the
// flattened term plan, and the structural fast-path selection are all
// precomputed once, so execution walks rows linearly with no index
// arithmetic. Kernels without a structural fast path run through term-major
// unit-stride passes with bounds checks compiled away (see rows.go).
// Programs are cached inside the Runner (keyed by kernel identity, geometry
// and tuning vector), and the Runner owns a persistent pool of worker
// goroutines fed by an atomic chunk counter, so steady-state Run calls are
// allocation-free and spawn nothing. This matters because the Measure
// evaluation mode calls Run thousands of times per search: fixed per-call
// overhead both pollutes small-grid timings (the training signal) and caps
// autotuning throughput.
//
// Runner.Run is the convenience wrapper (compile-or-lookup, then execute);
// Runner.RunLegacy preserves the original rebuild-everything, spawn-per-call
// path as a benchmark baseline. Call Runner.Close when discarding a Runner
// before process exit to stop its worker pool; the pool is tiny and idle
// workers cost nothing, so long-lived Runners may simply be kept.
//
// The package serves two roles: the "Measure" evaluation mode (wall-clock
// timing of actual Go execution, for users who want real measurements
// instead of the simulator) and the correctness substrate proving that every
// tuning vector computes the same result as the naive reference sweep.
package exec

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/grid"
	"repro/internal/shape"
	"repro/internal/stencil"
	"repro/internal/tunespace"
)

// Term is one weighted access of a linear stencil: out += Weight * in[buffer][p + Offset].
// Weights are declared in float64 regardless of the execution type; plans
// convert them once at compile time.
type Term struct {
	Buffer int
	Offset shape.Point
	Weight float64
}

// LinearKernel is an executable stencil: the updated value is the weighted
// sum of the terms. Every Table III benchmark is expressible in this form.
// The description is element-type-neutral; the Runner executing it fixes the
// precision.
type LinearKernel struct {
	Name    string
	Buffers int
	Terms   []Term
}

// Validate checks the kernel references only existing buffers.
func (k *LinearKernel) Validate() error {
	if len(k.Terms) == 0 {
		return fmt.Errorf("exec: kernel %q has no terms", k.Name)
	}
	if k.Buffers < 1 {
		return fmt.Errorf("exec: kernel %q has %d buffers", k.Name, k.Buffers)
	}
	for _, t := range k.Terms {
		if t.Buffer < 0 || t.Buffer >= k.Buffers {
			return fmt.Errorf("exec: kernel %q references buffer %d of %d", k.Name, t.Buffer, k.Buffers)
		}
	}
	return nil
}

// MaxOffset returns the halo width the kernel needs.
func (k *LinearKernel) MaxOffset() int {
	r := 0
	for _, t := range k.Terms {
		if n := t.Offset.ChebyshevNorm(); n > r {
			r = n
		}
	}
	return r
}

// Shape returns the access pattern of the kernel in the Sec. III-A model
// (per-buffer patterns summed).
func (k *LinearKernel) Shape() *shape.Shape {
	s := shape.New()
	for _, t := range k.Terms {
		s.Add(t.Offset, 1)
	}
	return s
}

// plan holds the flattened per-term data precomputed for one grid geometry,
// with weights converted to the execution type.
type plan[T grid.Float] struct {
	idxOff []int // flat-index displacement per term
	weight []T   // weight per term
	data   [][]T // backing slice per buffer, indexed by term
}

func buildPlan[T grid.Float](k *LinearKernel, out *grid.Grid[T], ins []*grid.Grid[T]) *plan[T] {
	p := &plan[T]{
		idxOff: make([]int, len(k.Terms)),
		weight: make([]T, len(k.Terms)),
		data:   make([][]T, len(k.Terms)),
	}
	for i, t := range k.Terms {
		g := ins[t.Buffer]
		p.idxOff[i] = g.OffsetIndex(t.Offset.X, t.Offset.Y, t.Offset.Z)
		p.weight[i] = T(t.Weight)
		p.data[i] = g.Data()
	}
	_ = out
	return p
}

// Runner executes kernels of one element type with a fixed worker count
// (defaults to GOMAXPROCS). It owns a persistent worker pool (started lazily
// on first execution) and a cache of compiled Programs; both are released by
// Close. Setting Workers has no effect once the pool has started. Executions
// through one Runner are serialized — the pool already saturates the machine
// for a single run.
type Runner[T grid.Float] struct {
	Workers int

	mu               sync.Mutex
	pool             *workerPool[T]
	progs            map[progKey]*Program[T]
	cachedTiles      int
	cachedSpans      int
	fprogs           map[progKey]*FusedProgram[T]
	cachedFusedElems int
}

// NewRunnerOf returns a runner of element type T using all available CPUs.
func NewRunnerOf[T grid.Float]() *Runner[T] { return &Runner[T]{Workers: runtime.GOMAXPROCS(0)} }

// NewRunner returns a double-precision runner using all available CPUs (the
// float64 shim of NewRunnerOf).
func NewRunner() *Runner[float64] { return NewRunnerOf[float64]() }

// poolLocked returns the persistent worker pool, starting it on first use.
// Callers must hold r.mu.
func (r *Runner[T]) poolLocked() *workerPool[T] {
	if r.pool == nil {
		w := r.Workers
		if w < 1 {
			w = 1
		}
		r.pool = newWorkerPool[T](w)
	}
	return r.pool
}

// Close stops the persistent worker pool and drops the program cache. The
// Runner may be reused afterwards: the next execution restarts the pool.
func (r *Runner[T]) Close() {
	r.mu.Lock()
	pool := r.pool
	r.pool = nil
	r.progs = nil
	r.cachedTiles = 0
	r.cachedSpans = 0
	r.fprogs = nil
	r.cachedFusedElems = 0
	r.mu.Unlock()
	if pool != nil {
		pool.stop()
	}
}

// checkGeometry validates that every buffer matches the output geometry
// exactly — extent and halo widths, hence strides, since the term plan's flat
// index displacements are shared between the output and every input — and
// carries a sufficient halo for the kernel's maximum offset.
func checkGeometry[T grid.Float](k *LinearKernel, out *grid.Grid[T], ins []*grid.Grid[T]) error {
	if len(ins) != k.Buffers {
		return fmt.Errorf("exec: kernel %q wants %d buffers, got %d", k.Name, k.Buffers, len(ins))
	}
	need := k.MaxOffset()
	for i, g := range ins {
		if g.NX != out.NX || g.NY != out.NY || g.NZ != out.NZ {
			return fmt.Errorf("exec: buffer %d geometry %dx%dx%d mismatches output %dx%dx%d",
				i, g.NX, g.NY, g.NZ, out.NX, out.NY, out.NZ)
		}
		if g.Halo != out.Halo || g.HaloZ != out.HaloZ {
			return fmt.Errorf("exec: buffer %d halo %d/%d mismatches output halo %d/%d (plans share flat indices)",
				i, g.Halo, g.HaloZ, out.Halo, out.HaloZ)
		}
		if g.Halo < need || (g.NZ > 1 && g.HaloZ < need) {
			return fmt.Errorf("exec: buffer %d halo %d/%d insufficient for offset %d",
				i, g.Halo, g.HaloZ, need)
		}
	}
	return nil
}

// Reference computes the kernel with a naive, unblocked, single-threaded
// sweep, accumulating in the runner's element type. It is the correctness
// oracle for Run: the compiled path of the same Runner instantiation must
// match it bit-for-bit for canonically ordered kernels.
func (r *Runner[T]) Reference(k *LinearKernel, out *grid.Grid[T], ins []*grid.Grid[T]) error {
	if err := k.Validate(); err != nil {
		return err
	}
	if err := checkGeometry(k, out, ins); err != nil {
		return err
	}
	p := buildPlan(k, out, ins)
	dst := out.Data()
	for z := 0; z < out.NZ; z++ {
		for y := 0; y < out.NY; y++ {
			base := out.Index(0, y, z)
			for x := 0; x < out.NX; x++ {
				var acc T
				i := base + x
				for t := range p.idxOff {
					acc += p.weight[t] * p.data[t][i+p.idxOff[t]]
				}
				dst[i] = acc
			}
		}
	}
	return nil
}

// tile is one blocked sub-domain.
type tile struct {
	x0, x1, y0, y1, z0, z1 int
}

// Run executes the kernel over the full interior with the given tuning
// vector: the domain is decomposed into bx×by×bz tiles, consecutive runs of
// c tiles form dispatch chunks, and the persistent workers claim chunks from
// a shared counter. The unroll factor u selects the point unroll of the
// specialized fast paths and the term-fusion width of the generic passes.
//
// Run compiles (or looks up) the cached Program for (kernel, geometry,
// vector) and executes it; in steady state it performs no allocations and
// spawns no goroutines.
func (r *Runner[T]) Run(k *LinearKernel, out *grid.Grid[T], ins []*grid.Grid[T], tv tunespace.Vector) error {
	// Fast path: a cache hit proves (kernel, geometry, vector) were already
	// validated at compile time, so only the per-call grid binding (checked
	// by Program.Run) remains.
	if out.NZ == 1 {
		tv.Bz = 1
	}
	key := progKey{kernel: k, geom: geomOf(out), tv: tv}
	r.mu.Lock()
	pr, ok := r.progs[key]
	r.mu.Unlock()
	if !ok {
		var err error
		pr, err = r.Compile(k, out, ins, tv)
		if err != nil {
			return err
		}
	}
	return pr.Run(out, ins)
}

// RunLegacy executes without the program cache or the persistent pool: the
// tile list, term plan and fast-path detection are rebuilt and a fresh set
// of goroutines is spawned on every call, and row bases are computed on the
// fly instead of walking a precompiled span plan. It shares the rows.go
// inner loops with the compiled path, so BenchmarkRunLegacyPath isolates
// the per-call setup and dispatch overhead Compile amortizes — not the
// inner-loop rewrite, whose effect shows up in the BenchmarkRunCompiled
// trajectory across PRs.
func (r *Runner[T]) RunLegacy(k *LinearKernel, out *grid.Grid[T], ins []*grid.Grid[T], tv tunespace.Vector) error {
	if err := k.Validate(); err != nil {
		return err
	}
	if err := checkGeometry(k, out, ins); err != nil {
		return err
	}
	dims := 3
	if out.NZ == 1 {
		dims = 2
		tv.Bz = 1
	}
	if err := tv.Validate(dims); err != nil {
		return err
	}

	tiles := decompose(geomOf(out), tv)
	p := buildPlan(k, out, ins)
	fp := detectFast(k, p)
	if fp != nil {
		fp.data = p.data[0]
	}

	workers := r.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(tiles) {
		workers = len(tiles)
	}

	var next int64
	chunk := tv.C
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				start := int(atomic.AddInt64(&next, int64(chunk))) - chunk
				if start >= len(tiles) {
					return
				}
				end := start + chunk
				if end > len(tiles) {
					end = len(tiles)
				}
				for _, t := range tiles[start:end] {
					if fp != nil {
						runTileFast(fp, out, t, tv.U)
					} else {
						runTile(p, out, t, tv.U)
					}
				}
			}
		}()
	}
	wg.Wait()
	return nil
}

// decompose splits the interior into tiles in z-major order with an
// exact-size allocation. It is the single tile decomposition shared by
// Compile and RunLegacy; operating on the element-type-free geom keeps it
// (and its fuzz target) independent of the grid instantiation.
func decompose(g geom, tv tunespace.Vector) []tile {
	n := ceilDiv(g.nx, tv.Bx) * ceilDiv(g.ny, tv.By) * ceilDiv(g.nz, tv.Bz)
	tiles := make([]tile, 0, n)
	for z0 := 0; z0 < g.nz; z0 += tv.Bz {
		z1 := min(z0+tv.Bz, g.nz)
		for y0 := 0; y0 < g.ny; y0 += tv.By {
			y1 := min(y0+tv.By, g.ny)
			for x0 := 0; x0 < g.nx; x0 += tv.Bx {
				x1 := min(x0+tv.Bx, g.nx)
				tiles = append(tiles, tile{x0, x1, y0, y1, z0, z1})
			}
		}
	}
	return tiles
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// runTile sweeps one tile through the term-plan passes, computing row bases
// on the fly. It serves RunLegacy and the oversize-grid fallback of the
// compiled path; compiled programs normally execute precomputed row spans
// instead (see pool.drain).
func runTile[T grid.Float](p *plan[T], out *grid.Grid[T], t tile, unroll int) {
	dst := out.Data()
	fuse := fuseWidth(unroll)
	n := t.x1 - t.x0
	for z := t.z0; z < t.z1; z++ {
		for y := t.y0; y < t.y1; y++ {
			runRowPlan(p, dst, out.Index(t.x0, y, z), n, fuse)
		}
	}
}

// FromStencil converts a model kernel (internal/stencil) into an executable
// linear kernel with uniform averaging weights per buffer. The benchmark
// constructors in kernels.go provide physically meaningful weights; this
// generic conversion backs the training-set generator, which only needs
// *some* executable realization of each generated shape.
func FromStencil(k *stencil.Kernel) *LinearKernel {
	pts := k.Shape.Points()
	lk := &LinearKernel{Name: k.Name, Buffers: k.Buffers}
	total := float64(k.Shape.TotalAccesses())
	for _, p := range pts {
		m := k.Shape.Multiplicity(p)
		for c := 0; c < m; c++ {
			buf := c % k.Buffers
			lk.Terms = append(lk.Terms, Term{Buffer: buf, Offset: p, Weight: 1 / total})
		}
	}
	return lk
}
