package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// This file is the server half of the resilience suite (see also
// internal/faultinject): admission control under measure floods, shed and
// recovery semantics, readiness reporting, and teardown idempotence. All
// of it runs under -race in CI.

// measureBody returns a measure-mode predict request with a distinct small
// size (grids stay under ~150x150 so each measurement is quick) so flood
// requests don't share cache keys or coalesce for i < 97*97.
func measureBody(i int) string {
	return fmt.Sprintf(`{"model":"tiny","kernel":"blur","size":"%dx%d","vectors":[{"bx":16,"by":16,"u":0,"c":1}],"mode":"measure"}`,
		48+i%97, 48+(i/97)%97)
}

// TestMeasureQueueShedsAndRecovers drives the admission gate
// deterministically: with depth 2 and both slots held open by gated
// evaluations, a third measure request must shed 503 with Retry-After and
// /readyz must report saturation; after release the shed traffic succeeds
// again. No timing is involved — the hook holds slots, the test observes.
func TestMeasureQueueShedsAndRecovers(t *testing.T) {
	s, err := New(Config{ModelDir: fixtureModelDir, MeasureQueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	h := s.Handler()

	const depth = 2
	admitted := make(chan struct{}, depth)
	release := make(chan struct{})
	s.testHookMeasure = func() {
		admitted <- struct{}{}
		<-release
	}

	var wg sync.WaitGroup
	codes := make([]int, depth)
	for i := 0; i < depth; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := httptest.NewRecorder()
			h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(measureBody(i))))
			codes[i] = w.Code
		}(i)
	}
	for i := 0; i < depth; i++ {
		select {
		case <-admitted:
		case <-time.After(10 * time.Second):
			t.Fatalf("only %d of %d measure requests were admitted", i, depth)
		}
	}
	if got := s.MeasureQueueDepth(); got != depth {
		t.Fatalf("queue depth with both slots held = %d, want %d", got, depth)
	}

	// Saturated: the next measure request is shed immediately, with an
	// honest Retry-After, and without waiting on the busy slots.
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(measureBody(100))))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("request past queue depth: status %d, want 503", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("shed response lacks Retry-After")
	}
	if n := s.MetricValue("measure_shed"); n != 1 {
		t.Errorf("measure_shed = %d, want 1", n)
	}

	// Cheap traffic is untouched by the saturated measure queue.
	cheap := httptest.NewRecorder()
	h.ServeHTTP(cheap, httptest.NewRequest(http.MethodPost, "/v1/tune", strings.NewReader(
		`{"model":"tiny","kernel":"laplacian","size":"100x100x100"}`)))
	if cheap.Code != http.StatusOK {
		t.Fatalf("cheap tune during measure saturation: status %d, want 200", cheap.Code)
	}

	// Readiness reflects saturation; liveness does not.
	ready := httptest.NewRecorder()
	h.ServeHTTP(ready, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if ready.Code != http.StatusServiceUnavailable {
		t.Errorf("/readyz with saturated queue: status %d, want 503", ready.Code)
	}
	live := httptest.NewRecorder()
	h.ServeHTTP(live, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if live.Code != http.StatusOK {
		t.Errorf("/healthz with saturated queue: status %d, want 200 (alive)", live.Code)
	}

	// Load subsides: the held measurements finish, and shed traffic now
	// succeeds — the 503 was honest back-pressure, not a dead server.
	close(release)
	s.testHookMeasure = nil
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Errorf("admitted measure request %d: status %d, want 200", i, code)
		}
	}
	again := httptest.NewRecorder()
	h.ServeHTTP(again, httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(measureBody(100))))
	if again.Code != http.StatusOK {
		t.Fatalf("shed request retried after load subsided: status %d, want 200", again.Code)
	}
	if got := s.MeasureQueueDepth(); got != 0 {
		t.Errorf("queue depth after drain = %d, want 0", got)
	}
	ready2 := httptest.NewRecorder()
	h.ServeHTTP(ready2, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if ready2.Code != http.StatusOK {
		t.Errorf("/readyz after drain: status %d, want 200", ready2.Code)
	}
}

// TestCachedTuneLatencyUnderMeasureFlood is the starvation bound of the
// acceptance criteria: a flood of real measure-mode requests (which
// serialize on the shared measurer) must not push the cached /v1/tune p99
// past 10x its unloaded value. The comparison uses an in-process handler,
// so it measures the server's own queuing behavior, not kernel TCP noise.
func TestCachedTuneLatencyUnderMeasureFlood(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real measurements under load")
	}
	s, err := New(Config{ModelDir: fixtureModelDir, MeasureQueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	h := s.Handler()

	cached := `{"model":"tiny","kernel":"laplacian","size":"100x100x100"}`
	prime := httptest.NewRecorder()
	h.ServeHTTP(prime, httptest.NewRequest(http.MethodPost, "/v1/tune", strings.NewReader(cached)))
	if prime.Code != http.StatusOK {
		t.Fatalf("priming tune: status %d", prime.Code)
	}

	const samples = 400
	sample := func() time.Duration {
		start := time.Now()
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/tune", strings.NewReader(cached)))
		d := time.Since(start)
		if w.Code != http.StatusOK {
			t.Fatalf("cached tune: status %d", w.Code)
		}
		if got := w.Header().Get("X-Cache"); got != "hit" {
			t.Fatalf("cached tune X-Cache = %q, want hit", got)
		}
		return d
	}
	p99 := func(ds []time.Duration) time.Duration {
		sorted := append([]time.Duration(nil), ds...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		return sorted[len(sorted)*99/100]
	}

	unloaded := make([]time.Duration, samples)
	for i := range unloaded {
		unloaded[i] = sample()
	}

	// Flood: 8 clients hammer measure-mode predicts with distinct keys
	// (no cache hits, no coalescing) until told to stop. The admission
	// gate sheds what the queue can't hold; a shed client backs off 1ms
	// (a polite retry, far below the advertised Retry-After) so the flood
	// keeps the queue saturated without degenerating into a busy-spin.
	stop := make(chan struct{})
	var floodWG sync.WaitGroup
	var floodIdx, floodSent, floodShed atomic.Int64
	for c := 0; c < 8; c++ {
		floodWG.Add(1)
		go func() {
			defer floodWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				w := httptest.NewRecorder()
				h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/predict",
					strings.NewReader(measureBody(int(floodIdx.Add(1))))))
				floodSent.Add(1)
				if w.Code == http.StatusServiceUnavailable {
					floodShed.Add(1)
					time.Sleep(time.Millisecond)
				}
			}
		}()
	}

	loaded := make([]time.Duration, samples)
	for i := range loaded {
		loaded[i] = sample()
		time.Sleep(200 * time.Microsecond) // spread samples across the flood
	}
	close(stop)
	floodWG.Wait()

	up99, lp99 := p99(unloaded), p99(loaded)
	t.Logf("cached tune p99: unloaded %v, under measure flood %v (flood sent %d, shed %d)",
		up99, lp99, floodSent.Load(), floodShed.Load())
	// The 1ms floor absorbs scheduler noise when the unloaded p99 is a
	// handful of microseconds; the acceptance bound is the 10x ratio.
	bound := 10 * up99
	if bound < time.Millisecond {
		bound = time.Millisecond
	}
	if lp99 > bound {
		t.Errorf("cached tune p99 under measure flood = %v, exceeds bound %v (10x unloaded %v)", lp99, bound, up99)
	}
	if floodSent.Load() > 50 && floodShed.Load() == 0 {
		t.Logf("note: flood of %d requests saw no sheds (queue drained fast); shedding asserted deterministically elsewhere", floodSent.Load())
	}
}

// TestCloseAuditChainIdempotent: Close after a real measurement releases
// the measurer exactly once, tolerates double Close, and refuses to
// resurrect the pool afterwards.
func TestCloseAuditChainIdempotent(t *testing.T) {
	s, err := New(Config{ModelDir: fixtureModelDir})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(measureBody(0))))
	if w.Code != http.StatusOK {
		t.Fatalf("measure predict: status %d: %s", w.Code, w.Body.String())
	}
	if s.measurer == nil {
		t.Fatal("measure request did not start the measurer")
	}
	s.Close()
	if s.measurer != nil {
		t.Error("Close left the measurer alive")
	}
	s.Close() // second Close must be a no-op, not a double release
	if m := s.getMeasurer(); m != nil {
		t.Error("getMeasurer after Close resurrected the pool")
	}

	// A straggler measure request after Close fails cleanly, not fatally.
	w2 := httptest.NewRecorder()
	h.ServeHTTP(w2, httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(measureBody(1))))
	if w2.Code == http.StatusOK {
		t.Errorf("measure predict after Close: status %d, want an error", w2.Code)
	}
}

// TestReadyzDraining: StartDraining flips readiness while liveness and
// serving continue — the graceful-shutdown window a balancer needs.
func TestReadyzDraining(t *testing.T) {
	s := newTestServer(t)
	h := s.Handler()

	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("/readyz before draining: status %d, want 200", w.Code)
	}

	s.StartDraining()
	w2 := httptest.NewRecorder()
	h.ServeHTTP(w2, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if w2.Code != http.StatusServiceUnavailable {
		t.Errorf("/readyz while draining: status %d, want 503", w2.Code)
	}
	live := httptest.NewRecorder()
	h.ServeHTTP(live, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if live.Code != http.StatusOK {
		t.Errorf("/healthz while draining: status %d, want 200", live.Code)
	}
	serve := httptest.NewRecorder()
	h.ServeHTTP(serve, httptest.NewRequest(http.MethodPost, "/v1/tune", strings.NewReader(
		`{"model":"tiny","kernel":"laplacian","size":"96x96x96"}`)))
	if serve.Code != http.StatusOK {
		t.Errorf("tune while draining: status %d, want 200 (drain serves in-flight)", serve.Code)
	}
}

// TestBodyLimit413: the configured cap rejects oversized bodies with an
// explicit 413 JSON error, and the default cap still admits normal
// requests.
func TestBodyLimit413(t *testing.T) {
	s, err := New(Config{ModelDir: fixtureModelDir, MaxBodyBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	h := s.Handler()

	big := fmt.Sprintf(`{"model":"tiny","kernel":"laplacian","size":"64x64x64","junk":%q}`,
		strings.Repeat("x", 1024))
	w, resp := postJSON(t, h, "/v1/tune", big)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413: %v", w.Code, resp)
	}
	if resp["error"] == "" {
		t.Errorf("413 response lacks a JSON error: %v", resp)
	}

	w2, _ := postJSON(t, h, "/v1/tune", `{"model":"tiny","kernel":"laplacian","size":"64x64x64"}`)
	if w2.Code != http.StatusOK {
		t.Errorf("normal body under the cap: status %d, want 200", w2.Code)
	}
}
