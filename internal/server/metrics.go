package server

import (
	"bufio"
	"context"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
)

// serverMetrics holds every handle the server records into, resolved once at
// construction so the request path never touches the registry's maps. All
// names carry the stencilserve_ prefix and land in the obs.Registry the
// server shares with the middleware chain and the retrainer.
type serverMetrics struct {
	reg *obs.Registry

	requests *obs.CounterVec   // stencilserve_requests_total{endpoint}
	duration *obs.HistogramVec // stencilserve_request_duration_seconds{endpoint}
	stages   *obs.HistogramVec // stencilserve_stage_duration_seconds{stage}

	cacheHits     *obs.Counter
	cacheMisses   *obs.Counter
	coalesced     *obs.Counter
	inferences    *obs.Counter
	flightRetries *obs.Counter
	errors        *obs.Counter

	measureRequests *obs.Counter
	measureAdmitted *obs.Counter
	measureShed     *obs.Counter

	walAppended   *obs.Counter
	walDropped    *obs.Counter
	walSyncErrors *obs.Counter
	walFsync      *obs.Histogram
	observations  *obs.Counter

	// stageH pre-resolves the pipeline's known stage histograms so the trace
	// sink on the hot path is a small map lookup, not a registry lookup.
	stageH map[string]*obs.Histogram
}

// pipelineStages are the tune pipeline's span names; see the package comment
// in obs and the README's observability section.
var pipelineStages = []string{"cache_lookup", "flight_wait", "queue_wait", "inference", "measure"}

func newServerMetrics(reg *obs.Registry) *serverMetrics {
	m := &serverMetrics{
		reg: reg,
		requests: reg.CounterVec("stencilserve_requests_total",
			"HTTP requests received, by endpoint.", "endpoint"),
		duration: reg.HistogramVec("stencilserve_request_duration_seconds",
			"End-to-end request latency, by endpoint.", obs.LatencyBuckets, "endpoint"),
		stages: reg.HistogramVec("stencilserve_stage_duration_seconds",
			"Latency of each tune-pipeline stage (cache_lookup, flight_wait, queue_wait, inference, measure).",
			obs.LatencyBuckets, "stage"),
		cacheHits: reg.Counter("stencilserve_cache_hits_total",
			"Responses answered from the LRU cache."),
		cacheMisses: reg.Counter("stencilserve_cache_misses_total",
			"Requests that missed the LRU cache."),
		coalesced: reg.Counter("stencilserve_coalesced_total",
			"Requests answered by another request's in-flight computation."),
		inferences: reg.Counter("stencilserve_inferences_total",
			"Model computations actually executed (cache and coalescing both missed)."),
		flightRetries: reg.Counter("stencilserve_flight_retries_total",
			"Coalesced waiters that retried after their leader's context was cancelled."),
		errors: reg.Counter("stencilserve_errors_total",
			"Requests answered with an error status."),
		measureRequests: reg.Counter("stencilserve_measure_requests_total",
			"Requests that asked for wall-clock measurement (mode=measure)."),
		measureAdmitted: reg.Counter("stencilserve_measure_admitted_total",
			"Measure-mode requests admitted through the bounded queue."),
		measureShed: reg.Counter("stencilserve_measure_shed_total",
			"Measure-mode requests shed with 503 because the queue was full."),
		walAppended: reg.Counter("stencilserve_wal_appended_total",
			"Observation records durably appended to the WAL."),
		walDropped: reg.Counter("stencilserve_wal_dropped_total",
			"Observation records shed (full buffer) or rejected by the WAL."),
		walSyncErrors: reg.Counter("stencilserve_wal_sync_errors_total",
			"WAL fsync failures."),
		walFsync: reg.Histogram("stencilserve_wal_fsync_seconds",
			"Duration of WAL batch fsyncs.", obs.LatencyBuckets),
		observations: reg.Counter("stencilserve_observations_total",
			"Client-reported observations accepted via /v1/observe."),
	}
	m.stageH = make(map[string]*obs.Histogram, len(pipelineStages))
	for _, stage := range pipelineStages {
		m.stageH[stage] = m.stages.With(stage)
	}
	return m
}

// stageSink routes finished trace spans into the per-stage histograms; it is
// the sink obs.WithTrace installs on every instrumented request.
func (m *serverMetrics) stageSink(stage string, seconds float64) {
	h, ok := m.stageH[stage]
	if !ok {
		h = m.stages.With(stage)
	}
	h.Observe(seconds)
}

// recordSpan lands one pipeline-stage timing: on the request's trace when one
// is installed (the trace's sink then feeds the stage histogram, and the span
// shows up in the access-log line), directly into the stage histogram
// otherwise. Traces are only installed when access logging is on, so the
// bare hot path pays one histogram observe and nothing else.
func (s *Server) recordSpan(ctx context.Context, stage string, start time.Time, dur time.Duration) {
	if tr := obs.TraceFrom(ctx); tr != nil {
		tr.Add(stage, start, dur)
		return
	}
	s.m.stageSink(stage, dur.Seconds())
}

// registerGauges wires the scrape-time gauges that read live server state.
// Registered here (not in serverMetrics) because they capture s.
func (s *Server) registerGauges() {
	reg := s.m.reg
	reg.GaugeFunc("stencilserve_cache_entries",
		"Entries currently held by the response LRU cache.",
		func() float64 { return float64(s.cache.Len()) })
	reg.GaugeFunc("stencilserve_flight_waiting",
		"Requests currently parked behind an in-flight identical computation.",
		func() float64 { return float64(s.flight.Waiting()) })
	reg.GaugeFunc("stencilserve_measure_queue_depth",
		"Measure-mode requests currently holding queue slots.",
		func() float64 { return float64(s.MeasureQueueDepth()) })
	reg.GaugeFunc("stencilserve_measure_queue_capacity",
		"Configured bound of the measure queue.",
		func() float64 { return float64(s.MeasureQueueCapacity()) })
	reg.GaugeFunc("stencilserve_registry_generation",
		"Generation number of the currently served model registry.",
		func() float64 { return float64(s.reg.Version()) })
	reg.GaugeVec("stencilserve_build_info",
		"Build identity; the value is always 1.", "version", "commit", "go").
		With(s.build.Version, s.build.Commit, s.build.GoVersion).Set(1)
}

// ---------------------------------------------------------------------------
// Request instrumentation

// statusWriter records the status code a handler wrote (default 200).
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Flush forwards http.Flusher through the wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps one route with the observability envelope: a requests
// counter and duration histogram (handles resolved here, once per route, not
// per request), a trace carried through the request context feeding the
// per-stage histograms, and — when an access logger is configured — one
// structured log line per request carrying the correlation ID and the
// request's spans. It is applied inside Handler, so every mounting of the
// server (production chain, bare test handler) observes identically.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	requests := s.m.requests.With(endpoint)
	duration := s.m.duration.With(endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		requests.Inc()
		if s.accessLog == nil {
			// No access log means no per-request span collection: stage
			// timings go straight into the histograms via recordSpan, and
			// the hot path skips the trace, context and status-writer
			// allocations entirely.
			h(w, r)
			duration.Observe(time.Since(start).Seconds())
			return
		}
		// One allocation covers the whole per-request envelope: the status
		// writer, the trace and the log-field scratch space live in the same
		// struct.
		rt := &reqTrack{statusWriter: statusWriter{ResponseWriter: w}}
		rt.trace.Init(s.m.stageSink)
		ctx := obs.ContextWithTrace(r.Context(), &rt.trace)
		r = r.WithContext(ctx)
		h(&rt.statusWriter, r)
		elapsed := time.Since(start)
		duration.Observe(elapsed.Seconds())
		status := rt.status
		if status == 0 {
			status = http.StatusOK
		}
		// The middleware chain injects the correlation ID into the context;
		// embedders mounting the bare Handler still get correlation when the
		// client sent an X-Request-ID header (as the shipped client always
		// does).
		id := obs.RequestIDFrom(ctx)
		if id == "" {
			id = r.Header.Get("X-Request-ID")
		}
		fields := append(rt.fields[:0],
			obs.F("request_id", id),
			obs.F("method", r.Method),
			obs.F("path", r.URL.Path),
			obs.F("endpoint", endpoint),
			obs.F("status", status),
			obs.F("duration_us", elapsed.Microseconds()),
		)
		if source := rt.Header().Get("X-Cache"); source != "" {
			fields = append(fields, obs.F("cache", source))
		}
		if rt.trace.Len() > 0 {
			fields = append(fields, obs.F("spans", &rt.trace))
		}
		s.accessLog.Info("request", fields...)
	}
}

// reqTrack bundles the per-request instrumentation state so the instrumented
// path pays a single allocation for all of it.
type reqTrack struct {
	statusWriter
	trace  obs.Trace
	fields [9]obs.Field
}

// ---------------------------------------------------------------------------
// Legacy expvar-shaped surface (/debug/vars)

// legacyMetricNames is the flat counter set the pre-observability /metrics
// endpoint exposed, in expvar's sorted-key order. /debug/vars preserves it
// for dashboards and scripts built against the old surface.
var legacyMetricNames = []string{
	"body_too_large_total",
	"cache_entries",
	"cache_hits",
	"cache_misses",
	"coalesced",
	"errors",
	"flight_retries",
	"flight_waiting",
	"inferences",
	"measure_admitted",
	"measure_queue_capacity",
	"measure_queue_depth",
	"measure_requests",
	"measure_shed",
	"observations",
	"panics_total",
	"rate_limited_total",
	"requests",
	"wal_appended",
	"wal_dropped",
	"wal_fsync_seconds",
	"wal_sync_errors",
}

// legacyValue maps one pre-observability counter name to its value in the
// new registry, preserving the old semantics exactly:
//
//   - "requests" counted requests reaching serveCached (i.e. after
//     validation — exactly one cache hit or miss) plus every /v1/models and
//     /v1/observe arrival, NOT probe endpoints or 405s, so it is derived
//     from those series rather than the new per-endpoint counter.
//   - "wal_fsync_seconds" was a cumulative float; the histogram's sum is the
//     same number.
func (s *Server) legacyValue(name string) float64 {
	reg := s.m.reg
	switch name {
	case "requests":
		return s.m.cacheHits.Value() + s.m.cacheMisses.Value() +
			reg.Value("stencilserve_requests_total", "models") +
			reg.Value("stencilserve_requests_total", "observe")
	case "cache_hits":
		return s.m.cacheHits.Value()
	case "cache_misses":
		return s.m.cacheMisses.Value()
	case "coalesced":
		return s.m.coalesced.Value()
	case "inferences":
		return s.m.inferences.Value()
	case "flight_retries":
		return s.m.flightRetries.Value()
	case "errors":
		return s.m.errors.Value()
	case "measure_requests":
		return s.m.measureRequests.Value()
	case "measure_admitted":
		return s.m.measureAdmitted.Value()
	case "measure_shed":
		return s.m.measureShed.Value()
	case "wal_appended":
		return s.m.walAppended.Value()
	case "wal_dropped":
		return s.m.walDropped.Value()
	case "wal_sync_errors":
		return s.m.walSyncErrors.Value()
	case "wal_fsync_seconds":
		return s.m.walFsync.Sum()
	case "observations":
		return s.m.observations.Value()
	case "cache_entries":
		return float64(s.cache.Len())
	case "flight_waiting":
		return float64(s.flight.Waiting())
	case "measure_queue_depth":
		return float64(s.MeasureQueueDepth())
	case "measure_queue_capacity":
		return float64(s.MeasureQueueCapacity())
	case "panics_total":
		return reg.Value("stencilserve_panics_total")
	case "rate_limited_total":
		return reg.Value("stencilserve_rate_limited_total")
	case "body_too_large_total":
		return reg.Value("stencilserve_body_too_large_total")
	}
	return 0
}

// handleDebugVars serves the pre-observability JSON surface — the flat
// {"stencilserve": {...}} object the old /metrics endpoint produced — so
// existing tooling keeps working unchanged at /debug/vars.
func (s *Server) handleDebugVars(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	bw := bufio.NewWriter(w)
	bw.WriteString(`{"stencilserve": {`)
	for i, name := range legacyMetricNames {
		if i > 0 {
			bw.WriteString(", ")
		}
		fmt.Fprintf(bw, "%q: ", name)
		v := s.legacyValue(name)
		if name == "wal_fsync_seconds" {
			bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		} else {
			bw.WriteString(strconv.FormatInt(int64(v), 10))
		}
	}
	bw.WriteString("}}\n")
	bw.Flush()
}
