package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/stencil"
	"repro/internal/tunespace"
	"repro/internal/wal"
)

// obsSink ships observations to the durable WAL off the request path. The
// request side only ever does a non-blocking channel send: when the buffer is
// full the record is shed and counted (wal_dropped), never queued against the
// client's latency. One background goroutine drains the buffer in batches —
// every record of a batch is appended, then a single Sync makes the batch
// durable and its cost lands in the wal_fsync_seconds histogram, so the
// fsync price is amortized across whatever accumulated while the previous
// fsync ran.
type obsSink struct {
	log  *wal.Log
	m    *serverMetrics
	ch   chan wal.Record
	done chan struct{}
	once sync.Once
}

func newObsSink(l *wal.Log, m *serverMetrics, depth int) *obsSink {
	if depth <= 0 {
		depth = 1024
	}
	o := &obsSink{
		log:  l,
		m:    m,
		ch:   make(chan wal.Record, depth),
		done: make(chan struct{}),
	}
	go o.run()
	return o
}

// offer enqueues a record without ever blocking: a full buffer sheds.
func (o *obsSink) offer(r wal.Record) bool {
	select {
	case o.ch <- r:
		return true
	default:
		o.m.walDropped.Inc()
		return false
	}
}

func (o *obsSink) run() {
	defer close(o.done)
	for {
		r, ok := <-o.ch
		if !ok {
			return
		}
		batch := []wal.Record{r}
	drain:
		for {
			select {
			case r2, ok := <-o.ch:
				if !ok {
					o.write(batch)
					return
				}
				batch = append(batch, r2)
			default:
				break drain
			}
		}
		o.write(batch)
	}
}

func (o *obsSink) write(batch []wal.Record) {
	appended := 0
	for _, r := range batch {
		if err := o.log.Append(r); err != nil {
			o.m.walDropped.Inc()
			continue
		}
		appended++
	}
	if appended == 0 {
		return
	}
	start := time.Now()
	if err := o.log.Sync(); err != nil {
		o.m.walSyncErrors.Inc()
	}
	o.m.walFsync.Observe(time.Since(start).Seconds())
	o.m.walAppended.Add(float64(appended))
}

// close flushes whatever is buffered and stops the writer goroutine. It does
// not close the underlying WAL — the sink borrows it, the caller owns it.
func (o *obsSink) close() {
	o.once.Do(func() { close(o.ch) })
	<-o.done
}

// record builds a WAL observation for an evaluated (instance, vector,
// runtime) triple and offers it to the sink; structurally invalid or
// non-finite measurements are rejected before they can pollute training.
func (s *Server) record(q stencil.Instance, source, machine string, nowNano int64, v tunespace.Vector, runtimeSeconds float64) {
	if s.sink == nil {
		return
	}
	rec := wal.NewRecord(q, v, runtimeSeconds)
	rec.Fingerprint = kernelFingerprint(q.Kernel)
	rec.Machine = machine
	rec.Source = source
	rec.UnixNano = nowNano
	if rec.Validate() != nil {
		return
	}
	s.sink.offer(rec)
}

// ---------------------------------------------------------------------------
// /v1/observe

// observation is one client-reported execution of the request's instance.
type observation struct {
	Vector         vectorJSON `json:"vector"`
	RuntimeSeconds float64    `json:"runtime_seconds"`
}

// observeRequest reports real measured runtimes from a client's own machine:
// the instance it ran (kernel + size, same schema as every other endpoint)
// and the (vector, runtime) pairs it observed. Observations feed the retrain
// loop; they are validated strictly and never affect the current request's
// answer.
type observeRequest struct {
	instanceRequest
	Observations []observation `json:"observations"`
	// Machine tags which host measured; defaults to the server's own id.
	Machine string `json:"machine,omitempty"`
}

type observeResponse struct {
	Accepted int `json:"accepted"`
	Dropped  int `json:"dropped"`
}

// maxObservations bounds one report; bulk uploads should batch requests.
const maxObservations = 1024

func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	if s.sink == nil {
		s.fail(w, http.StatusServiceUnavailable,
			fmt.Errorf("observation log not enabled on this server (start with -wal)"))
		return
	}
	var req observeRequest
	if err := s.decode(w, r, &req); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	q, err := req.instance()
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Observations) == 0 {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("missing observations"))
		return
	}
	if len(req.Observations) > maxObservations {
		s.fail(w, http.StatusBadRequest,
			fmt.Errorf("%d observations exceed the per-request limit of %d", len(req.Observations), maxObservations))
		return
	}
	machineID := req.Machine
	if machineID == "" {
		machineID = s.machine
	}
	now := time.Now().UnixNano()
	fp := kernelFingerprint(q.Kernel)
	// Validate everything before accepting anything, so a 400 never
	// half-ingests a report.
	records := make([]wal.Record, 0, len(req.Observations))
	for i, o := range req.Observations {
		rec := wal.NewRecord(q, o.Vector.toVector(q.Kernel.Dims()), o.RuntimeSeconds)
		rec.Fingerprint = fp
		rec.Machine = machineID
		rec.Source = "observe"
		rec.UnixNano = now
		if err := rec.Validate(); err != nil {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("observation %d: %v", i, err))
			return
		}
		records = append(records, rec)
	}
	resp := observeResponse{}
	for _, rec := range records {
		if s.sink.offer(rec) {
			resp.Accepted++
		} else {
			resp.Dropped++
		}
	}
	s.m.observations.Add(float64(resp.Accepted))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(resp)
}
