package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// waitForWaiters polls until n callers are parked behind in-flight calls.
func waitForWaiters(t *testing.T, g *flightGroup, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for g.Waiting() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d waiters parked", g.Waiting(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFlightLeaderPanicUnblocksWaiters is the regression test for the
// singleflight panic-hang: before the fix, a panicking leader skipped both
// the key cleanup and the done-channel close, so every coalesced waiter
// blocked until its context died (forever, absent a deadline) and the key
// stayed poisoned. Now the leader's panic must (a) release all N waiters
// with an error, (b) resume in the leader itself, and (c) leave the key
// clean so the next call executes fresh.
func TestFlightLeaderPanicUnblocksWaiters(t *testing.T) {
	var g flightGroup
	const waiters = 8

	leaderIn := make(chan struct{})
	boom := make(chan struct{})
	leaderPanicked := make(chan any, 1)
	go func() {
		defer func() { leaderPanicked <- recover() }()
		g.Do(context.Background(), "k", func() ([]byte, error) {
			close(leaderIn)
			<-boom
			panic("inference exploded")
		})
	}()
	<-leaderIn

	var wg sync.WaitGroup
	errs := make([]error, waiters)
	shareds := make([]bool, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// No deadline on the waiter contexts: before the fix this test
			// hangs here instead of failing politely.
			_, err, shared := g.Do(context.Background(), "k", func() ([]byte, error) {
				t.Error("waiter executed fn while the leader held the key")
				return nil, nil
			})
			errs[i], shareds[i] = err, shared
		}(i)
	}
	waitForWaiters(t, &g, waiters)
	close(boom)

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("waiters still parked after the leader panicked: key is poisoned")
	}

	select {
	case rec := <-leaderPanicked:
		if rec == nil {
			t.Fatal("leader did not re-panic (Recover middleware would lose its 500)")
		}
		if got := fmt.Sprint(rec); !strings.Contains(got, "inference exploded") {
			t.Fatalf("leader re-panicked with %q, want the original value", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("leader goroutine never finished")
	}

	for i, err := range errs {
		if err == nil {
			t.Fatalf("waiter %d got a nil error from a panicked flight", i)
		}
		if !strings.Contains(err.Error(), "leader panicked") {
			t.Fatalf("waiter %d error = %q, want a leader-panicked error", i, err)
		}
		var he *httpError
		if !errors.As(err, &he) || he.code != http.StatusServiceUnavailable {
			t.Fatalf("waiter %d error %v is not a retryable 503", i, err)
		}
		if !shareds[i] {
			t.Fatalf("waiter %d reported shared=false", i)
		}
	}

	// The key must be forgotten, not poisoned: a fresh call executes fn.
	ran := false
	val, err, shared := g.Do(context.Background(), "k", func() ([]byte, error) {
		ran = true
		return []byte("fresh"), nil
	})
	if !ran || err != nil || shared || string(val) != "fresh" {
		t.Fatalf("post-panic call: ran=%v val=%q err=%v shared=%v, want a fresh execution", ran, val, err, shared)
	}
	if g.Waiting() != 0 {
		t.Fatalf("Waiting() = %d after everything drained", g.Waiting())
	}
}

// TestFlightPanicOverHTTP drives the same defect end to end: N coalesced
// /v1/tune requests behind a leader whose inference panics must all receive
// an HTTP error promptly (the leader's 500 comes from the Recover
// middleware, the waiters' 503s from the flight group) — and the server must
// answer the key normally afterwards.
func TestFlightPanicOverHTTP(t *testing.T) {
	s := newTestServer(t)
	h := s.Handler()

	const waiters = 4
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	first := true
	s.testHookInfer = func() {
		if first {
			first = false
			once.Do(func() { close(entered) })
			<-release
			panic("model blew up")
		}
	}

	body := `{"model":"tiny","kernel":"laplacian","size":"96x96x96"}`
	codes := make(chan int, waiters+1)
	leaderDone := make(chan any, 1)
	go func() {
		defer func() { leaderDone <- recover() }()
		w, _ := postJSON(t, h, "/v1/tune", body)
		codes <- w.Code
	}()
	<-entered
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w, _ := postJSON(t, h, "/v1/tune", body)
			codes <- w.Code
		}()
	}
	waitForWaiters(t, &s.flight, waiters)
	close(release)

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("coalesced requests hung behind the panicked leader")
	}
	for i := 0; i < waiters; i++ {
		if code := <-codes; code != http.StatusServiceUnavailable {
			t.Fatalf("waiter answered %d, want 503", code)
		}
	}
	// The bare Handler has no Recover middleware, so the leader's panic
	// reaches our recover — exactly what lets Recover keep its semantics.
	if rec := <-leaderDone; rec == nil {
		t.Fatal("leader request did not propagate its panic")
	}

	// Key is clean: the same request now computes and caches normally.
	w, _ := postJSON(t, h, "/v1/tune", body)
	if w.Code != http.StatusOK {
		t.Fatalf("post-panic tune answered %d: %s", w.Code, w.Body.String())
	}
}
