package server

import (
	"net/http"
	"testing"
)

// ---------------------------------------------------------------------------
// Content-derived registry generation

// TestGenerationSharedAcrossReplicas is the fleet-lockstep contract: two
// server processes over the same store directory report the same
// registry_generation even though each counts its own registry_version, and
// a local reload against unchanged store content keeps the generation stable.
func TestGenerationSharedAcrossReplicas(t *testing.T) {
	dir, st := swapStore(t, "default", "candidate")
	a, err := New(Config{ModelDir: dir, CacheSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)
	b, err := New(Config{ModelDir: dir, CacheSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)

	genA, genB := a.RegistryGeneration(), b.RegistryGeneration()
	if genA == "" || genA != genB {
		t.Fatalf("replica generations %q vs %q, want equal and non-empty", genA, genB)
	}

	// Reload one replica with nothing changed: version diverges (a local
	// reload counter), generation must not (content is identical).
	if _, err := a.ReloadModels(); err != nil {
		t.Fatal(err)
	}
	if a.RegistryVersion() == b.RegistryVersion() {
		t.Fatalf("versions should diverge after one-sided reload, both %d", a.RegistryVersion())
	}
	if a.RegistryGeneration() != genB {
		t.Fatalf("generation changed on no-op reload: %q -> %q", genB, a.RegistryGeneration())
	}

	// Change store content and reload: the generation must move.
	base, err := st.Load("candidate")
	if err != nil {
		t.Fatal(err)
	}
	saveVariant(t, st, base, "candidate", 9)
	if _, err := a.ReloadModels(); err != nil {
		t.Fatal(err)
	}
	if a.RegistryGeneration() == genA {
		t.Fatalf("generation %q unchanged after store content changed", genA)
	}
}

// TestModelsPostReloads exercises the wire-level SIGHUP equivalent: POST
// /v1/models reloads the registry from the store and answers with the fresh
// listing, which is what stencil-lb -broadcast-reload relies on.
func TestModelsPostReloads(t *testing.T) {
	dir, st := swapStore(t, "default")
	s, err := New(Config{ModelDir: dir, CacheSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	h := s.Handler()

	gen1 := s.RegistryGeneration()
	base, err := st.Load("default")
	if err != nil {
		t.Fatal(err)
	}
	saveVariant(t, st, base, "default", 5)

	w, out := postJSON(t, h, "/v1/models", "")
	if w.Code != http.StatusOK {
		t.Fatalf("POST /v1/models: %d: %s", w.Code, w.Body.String())
	}
	if rv, _ := out["registry_version"].(float64); int64(rv) != 2 {
		t.Fatalf("registry_version after POST = %v, want 2", out["registry_version"])
	}
	gen2, _ := out["registry_generation"].(string)
	if gen2 == "" || gen2 == gen1 {
		t.Fatalf("registry_generation after content change = %q (was %q), want a fresh value", gen2, gen1)
	}
	if s.RegistryVersion() != 2 {
		t.Fatalf("server registry_version = %d, want 2", s.RegistryVersion())
	}

	// GET must stay read-only: no version bump.
	wg, outg := getJSON(t, h, "/v1/models")
	if wg.Code != http.StatusOK {
		t.Fatalf("GET /v1/models: %d", wg.Code)
	}
	if rv, _ := outg["registry_version"].(float64); int64(rv) != 2 {
		t.Fatalf("GET bumped registry_version to %v", outg["registry_version"])
	}
	if g, _ := outg["registry_generation"].(string); g != gen2 {
		t.Fatalf("GET generation %q != POST generation %q", g, gen2)
	}
}

// TestReadyzReportsGeneration checks the probe a load balancer scrapes
// carries the generation, so fleet-lockstep checks ride the health checks
// that already happen.
func TestReadyzReportsGeneration(t *testing.T) {
	s := newTestServer(t)
	w, out := getJSON(t, s.Handler(), "/readyz")
	if w.Code != http.StatusOK {
		t.Fatalf("/readyz: %d", w.Code)
	}
	if g, _ := out["registry_generation"].(string); g == "" || g != s.RegistryGeneration() {
		t.Fatalf("/readyz registry_generation = %v, want %q", out["registry_generation"], s.RegistryGeneration())
	}
}

// ---------------------------------------------------------------------------
// Routing key

// TestRoutingKeyMatchesCacheDomain pins RoutingKey to the structural cache
// key: two bodies that could share a cache entry (same model, structurally
// equal kernel, same size) must route identically, and any dimension that
// splits the cache must split the route.
func TestRoutingKeyMatchesCacheDomain(t *testing.T) {
	k1, ok := RoutingKey([]byte(`{"kernel":"laplacian","size":"64x64x64"}`))
	if !ok || k1 == "" {
		t.Fatalf("RoutingKey on a valid body: %q, %v", k1, ok)
	}
	// Field order and whitespace are wire noise, not structure.
	k2, ok := RoutingKey([]byte(` {"size": "64x64x64", "kernel": "laplacian"} `))
	if !ok || k2 != k1 {
		t.Fatalf("reordered body routed to %q, want %q", k2, k1)
	}
	// Structurally equal offset-list kernels coalesce regardless of the
	// informational name, exactly like the response cache does.
	const offsets = `[[0,0,0],[1,0,0],[-1,0,0],[0,1,0],[0,-1,0],[0,0,1],[0,0,-1]]`
	k3, ok := RoutingKey([]byte(`{"kernel":{"name":"mine","offsets":` + offsets + `},"size":"64x64x64"}`))
	if !ok {
		t.Fatal("structural kernel body did not parse")
	}
	if kOther, _ := RoutingKey([]byte(`{"kernel":{"name":"yours","offsets":` + offsets + `},"size":"64x64x64"}`)); kOther != k3 {
		t.Fatalf("structurally equal kernels under different names routed apart: %q vs %q", kOther, k3)
	}

	if kSize, _ := RoutingKey([]byte(`{"kernel":"laplacian","size":"128x128x128"}`)); kSize == k1 {
		t.Fatal("different sizes must route apart")
	}
	if kModel, _ := RoutingKey([]byte(`{"model":"other","kernel":"laplacian","size":"64x64x64"}`)); kModel == k1 {
		t.Fatal("different models must route apart")
	}

	for _, bad := range []string{``, `{`, `{"kernel":"no-such-kernel","size":"64x64x64"}`, `{"kernel":"laplacian","size":"0x0"}`} {
		if _, ok := RoutingKey([]byte(bad)); ok {
			t.Fatalf("RoutingKey accepted unroutable body %q", bad)
		}
	}
}
