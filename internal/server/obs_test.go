package server

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// driveTraffic sends one deterministic request to every instrumented route:
// a tune miss, the identical tune again (hit), a rank, a sim predict, and
// the three GET surfaces.
func driveTraffic(t *testing.T, h http.Handler) {
	t.Helper()
	tune := `{"model":"tiny","kernel":"laplacian","size":"100x100x100"}`
	postJSON(t, h, "/v1/tune", tune)
	postJSON(t, h, "/v1/tune", tune)
	postJSON(t, h, "/v1/rank", `{"model":"tiny","kernel":"edge","size":"256x256"}`)
	postJSON(t, h, "/v1/predict", `{"model":"tiny","kernel":"laplacian","size":"64x64x64","vectors":[{"bx":8,"by":4,"bz":2,"u":1,"c":1}]}`)
	for _, path := range []string{"/v1/models", "/healthz", "/readyz"} {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
		if w.Code != http.StatusOK && w.Code != http.StatusServiceUnavailable {
			t.Fatalf("GET %s: status %d", path, w.Code)
		}
	}
}

func scrape(t *testing.T, h http.Handler) (*httptest.ResponseRecorder, string) {
	t.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", w.Code)
	}
	return w, w.Body.String()
}

// TestMetricsPrometheusText asserts /metrics serves the Prometheus text
// format with the tentpole series populated: per-endpoint request counters
// and latency histograms, pipeline stage histograms, cache counters, and
// the live gauges.
func TestMetricsPrometheusText(t *testing.T) {
	s := newTestServer(t)
	h := s.Handler()
	driveTraffic(t, h)

	w, body := scrape(t, h)
	if ct := w.Header().Get("Content-Type"); ct != obs.TextContentType {
		t.Errorf("/metrics Content-Type = %q, want %q", ct, obs.TextContentType)
	}
	for _, want := range []string{
		`stencilserve_requests_total{endpoint="tune"} 2`,
		`stencilserve_requests_total{endpoint="rank"} 1`,
		`stencilserve_requests_total{endpoint="healthz"} 1`,
		`stencilserve_request_duration_seconds_count{endpoint="tune"} 2`,
		`stencilserve_request_duration_seconds_bucket{endpoint="tune",le="+Inf"} 2`,
		`stencilserve_stage_duration_seconds_count{stage="cache_lookup"} 4`,
		`stencilserve_cache_hits_total 1`,
		`stencilserve_cache_misses_total 3`,
		`stencilserve_inferences_total 3`,
		"# TYPE stencilserve_request_duration_seconds histogram",
		"# TYPE stencilserve_requests_total counter",
		"stencilserve_cache_entries 3",
		"stencilserve_registry_generation 1",
		`stencilserve_build_info{`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Every serveCached endpoint records a cache_lookup span: tune x2,
	// rank, predict = 4; inference spans only on the 3 misses.
	if got := s.obsReg.HistogramCount("stencilserve_stage_duration_seconds", "cache_lookup"); got != 4 {
		t.Errorf("cache_lookup stage count = %d, want 4", got)
	}
	if got := s.obsReg.HistogramCount("stencilserve_stage_duration_seconds", "inference"); got != 3 {
		t.Errorf("inference stage count = %d, want 3", got)
	}
}

// normalizeExposition reduces a scrape to its schema — family names, types,
// label names and values, bucket boundaries — by dropping HELP lines and
// sample values, which vary run to run. Build-identity labels are collapsed
// (they track the toolchain, not the metric schema).
func normalizeExposition(raw string) string {
	var out []string
	for _, line := range strings.Split(raw, "\n") {
		switch {
		case line == "" || strings.HasPrefix(line, "# HELP"):
			continue
		case strings.HasPrefix(line, "# TYPE"):
			out = append(out, line)
			continue
		}
		if i := strings.LastIndexByte(line, ' '); i >= 0 {
			line = line[:i]
		}
		if strings.HasPrefix(line, "stencilserve_build_info{") {
			line = "stencilserve_build_info{commit,go,version}"
		}
		out = append(out, line)
	}
	return strings.Join(out, "\n") + "\n"
}

// TestMetricsSchemaGolden pins the full exposition schema — every family,
// type, label set and histogram bucket boundary — against a golden file, so
// a metric rename, label change or bucket edit is a reviewed diff, never an
// accident. Regenerate with:
//
//	go test ./internal/server -run MetricsSchemaGolden -update
func TestMetricsSchemaGolden(t *testing.T) {
	s := newTestServer(t)
	h := s.Handler()
	driveTraffic(t, h)

	_, body := scrape(t, h)
	got := normalizeExposition(body)

	golden := filepath.Join("testdata", "metrics_schema.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("metrics schema drifted from golden.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestDebugVarsBackCompat asserts the legacy flat-JSON surface at
// /debug/vars preserves the original counter semantics: "requests" counts
// validated serveCached traffic plus models/observe arrivals — probe
// endpoints do not count, exactly as before the obs migration.
func TestDebugVarsBackCompat(t *testing.T) {
	s := newTestServer(t)
	h := s.Handler()
	driveTraffic(t, h)

	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/debug/vars", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("GET /debug/vars: status %d", w.Code)
	}
	var out map[string]map[string]float64
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatalf("/debug/vars is not flat JSON: %v\n%s", err, w.Body.String())
	}
	mm, ok := out["stencilserve"]
	if !ok {
		t.Fatalf("/debug/vars lacks the stencilserve object: %s", w.Body.String())
	}
	// tune x2 + rank + predict = 4 serveCached calls, + 1 models arrival.
	// healthz/readyz/metrics/debug-vars never counted and must not now.
	if mm["requests"] != 5 {
		t.Errorf("legacy requests = %v, want 5", mm["requests"])
	}
	if mm["cache_hits"] != 1 || mm["cache_misses"] != 3 || mm["inferences"] != 3 {
		t.Errorf("legacy cache counters = hits %v misses %v inferences %v, want 1/3/3",
			mm["cache_hits"], mm["cache_misses"], mm["inferences"])
	}
	if mm["cache_entries"] != 3 {
		t.Errorf("legacy cache_entries = %v, want 3", mm["cache_entries"])
	}
	// The full legacy key set stays present for old dashboards.
	for _, name := range legacyMetricNames {
		if _, ok := mm[name]; !ok {
			t.Errorf("/debug/vars lost legacy key %q", name)
		}
	}
	// MetricValue (the programmatic legacy accessor) agrees.
	if got := s.MetricValue("requests"); got != 5 {
		t.Errorf("MetricValue(requests) = %d, want 5", got)
	}
}

// TestAccessLogCarriesCorrelationIDAndSpans asserts the per-request log
// line: structured JSON with the X-Request-ID correlation ID, endpoint,
// status, latency, cache disposition and the pipeline spans.
func TestAccessLogCarriesCorrelationIDAndSpans(t *testing.T) {
	var buf bytes.Buffer
	s, err := New(Config{
		ModelDir:  fixtureModelDir,
		AccessLog: obs.NewLogger(&buf, "json"),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	h := s.Handler()

	req := httptest.NewRequest(http.MethodPost, "/v1/tune",
		strings.NewReader(`{"model":"tiny","kernel":"laplacian","size":"100x100x100"}`))
	// The RequestID middleware normally injects the ID; stand in for it.
	req = req.WithContext(obs.WithRequestID(req.Context(), "corr-123"))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("tune: status %d", w.Code)
	}

	var line map[string]any
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("access log is not one JSON object: %v\n%s", err, buf.String())
	}
	if line["request_id"] != "corr-123" || line["endpoint"] != "tune" ||
		line["status"] != float64(200) || line["cache"] != "miss" {
		t.Errorf("access log fields = %v", line)
	}
	if _, ok := line["duration_us"].(float64); !ok {
		t.Errorf("access log lacks duration_us: %v", line)
	}
	spans, ok := line["spans"].([]any)
	if !ok || len(spans) < 2 {
		t.Fatalf("access log spans = %v, want cache_lookup + inference", line["spans"])
	}
	stages := make(map[string]bool)
	for _, sp := range spans {
		stages[sp.(map[string]any)["stage"].(string)] = true
	}
	if !stages["cache_lookup"] || !stages["inference"] {
		t.Errorf("miss spans = %v, want cache_lookup and inference", stages)
	}

	// The cached repeat logs a hit with no inference span.
	buf.Reset()
	req = httptest.NewRequest(http.MethodPost, "/v1/tune",
		strings.NewReader(`{"model":"tiny","kernel":"laplacian","size":"100x100x100"}`))
	h.ServeHTTP(httptest.NewRecorder(), req)
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("second access log line: %v", err)
	}
	if line["cache"] != "hit" {
		t.Errorf("cached repeat logged cache=%v, want hit", line["cache"])
	}
	for _, sp := range line["spans"].([]any) {
		if sp.(map[string]any)["stage"] == "inference" {
			t.Errorf("cache hit logged an inference span: %v", line["spans"])
		}
	}
}

// TestConcurrentScrapeWhileServing hammers the cached tune path from many
// goroutines while scraping /metrics concurrently; run under -race it
// proves the registry's lock discipline on the live server.
func TestConcurrentScrapeWhileServing(t *testing.T) {
	s := newTestServer(t)
	h := s.Handler()
	body := `{"model":"tiny","kernel":"laplacian","size":"100x100x100"}`
	postJSON(t, h, "/v1/tune", body) // prime

	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				w := httptest.NewRecorder()
				h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/tune", strings.NewReader(body)))
				if w.Code != http.StatusOK {
					t.Errorf("tune under scrape: status %d", w.Code)
					return
				}
			}
		}()
	}
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				w := httptest.NewRecorder()
				h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/metrics", nil))
				if w.Code != http.StatusOK {
					t.Errorf("scrape under load: status %d", w.Code)
					return
				}
			}
		}()
	}
	wg.Wait()

	if got := s.MetricValue("cache_hits"); got != 4*200 {
		t.Errorf("cache_hits = %d, want %d (lost increments under concurrency)", got, 4*200)
	}
}

// BenchmarkCachedTuneInstrumented measures the cached-tune hot path with
// everything the observability layer adds turned on: the metrics
// BenchmarkServeTuneCached already pays, plus per-request span collection
// and one structured JSON access-log line per request carrying the
// correlation ID (sent as X-Request-ID, exactly as the shipped client does
// on every call). Its delta against BenchmarkServeTuneCached in
// BENCH_serve.json is the full instrumentation overhead. The production
// middleware chain (request-ID injection, timeout handler, recover, rate
// limit, body cap) predates the observability layer and is deliberately
// excluded — its cost is not instrumentation overhead.
func BenchmarkCachedTuneInstrumented(b *testing.B) {
	reg := obs.NewRegistry()
	obs.RegisterRuntimeMetrics(reg)
	logger := obs.NewLogger(discardWriter{}, "json")
	s, err := New(Config{
		ModelDir:  "../store/testdata",
		CacheSize: 4096,
		Registry:  reg,
		AccessLog: logger.With(obs.F("component", "http")),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(s.Close)
	h := s.Handler()

	body := `{"model":"tiny","kernel":"laplacian","size":"128x128x128"}`
	newReq := func() *http.Request {
		req := httptest.NewRequest(http.MethodPost, "/v1/tune", strings.NewReader(body))
		req.Header.Set("X-Request-ID", "9f2c4a81d06b73e5")
		return req
	}
	h.ServeHTTP(httptest.NewRecorder(), newReq())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, newReq())
		if w.Code != http.StatusOK {
			b.Fatalf("status %d", w.Code)
		}
	}
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }
