// Package server is the HTTP tuning service of the serving subsystem:
// tuning-as-a-service around the persistent model store. A trained ranking
// model orders tuning vectors for unseen stencils without executing them, so
// tuning is a cheap inference query — exactly the shape of a high-traffic
// online service. The server loads a registry of stored models and answers:
//
//	POST /v1/tune     rank the predefined configuration set, return the best
//	                  vector (optionally hybrid: measure the top-k and pick)
//	POST /v1/rank     rank an explicit (or the predefined) candidate set
//	POST /v1/predict  per-vector runtimes (simulator or measured) or scores
//	GET  /v1/models   list the loaded models with their provenance
//	GET  /healthz     liveness + build identity
//	GET  /metrics     Prometheus text exposition (counters, gauges, latency
//	                  and pipeline-stage histograms); the pre-observability
//	                  flat JSON surface remains at /debug/vars
//
// Hot-path economics: responses are cached in a sharded LRU keyed by (model,
// kernel structure, size, vector set, mode), and concurrent identical
// requests coalesce through a singleflight group, so a thundering herd of
// equal tune queries costs a single inference. Evaluation reuses the batch
// pipeline — BatchedContext fan-out honoring the request context, Memoized
// de-duplication — and mode=measure requests serialize wall-clock timing
// through exec.Measurer.MeasureBatch for fidelity (the measurer's pooled
// grids and compiled plans make repeats allocation-free).
package server

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dsl"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/shape"
	"repro/internal/stencil"
	"repro/internal/store"
	"repro/internal/tunespace"
	"repro/internal/wal"
)

// Config sizes a server instance.
type Config struct {
	// ModelDir is the store directory holding the artifacts to serve.
	ModelDir string
	// CacheSize bounds the response LRU in entries (default 4096).
	CacheSize int
	// Workers bounds the evaluation fan-out per request for simulated
	// prediction and hybrid tuning (0/1 sequential, negative GOMAXPROCS —
	// the convention of every workers knob in this codebase; default -1).
	Workers int
	// MaxBodyBytes caps request bodies; an over-limit body is rejected
	// with 413 (default 16 MiB, negative unlimited).
	MaxBodyBytes int64
	// MeasureQueueDepth bounds how many measure-mode requests may be
	// queued or running at once; arrivals beyond it are shed with 503
	// (default 8). See admission.go.
	MeasureQueueDepth int
	// WAL, when non-nil, receives every measure-mode result and every
	// /v1/observe report as a durable observation record, appended off the
	// request path by a bounded background writer that sheds under pressure
	// (see obsSink). The server borrows the log; the caller owns and closes
	// it after Server.Close returns.
	WAL *wal.Log
	// Machine tags WAL observations with the host that measured them
	// (default: os.Hostname).
	Machine string
	// ObserveBuffer bounds the in-memory observation queue between the
	// request path and the WAL writer (default 1024); beyond it records are
	// shed, never blocking a request.
	ObserveBuffer int
	// Registry receives every metric the server records. nil creates a
	// private registry, so independent Server instances (tests run many per
	// process) keep independent counters; production passes one registry
	// shared with the middleware chain and the retrainer.
	Registry *obs.Registry
	// AccessLog, when non-nil, receives one structured log line per request
	// carrying the correlation ID, status, latency and pipeline spans.
	AccessLog *obs.Logger
}

// Server is the tuning service. Create with New, mount Handler, Close when
// done (it owns the measuring executor's worker pool).
type Server struct {
	reg    *Registry
	cache  *lruCache
	flight flightGroup

	workers int
	maxBody int64
	start   time.Time
	build   buildinfo.Info

	// measureSlots is the admission gate for measure-mode work: a slot is
	// held from admission until the measurement completes, and a full
	// channel sheds new arrivals with 503 (see admission.go).
	measureSlots chan struct{}

	// draining flips when the process has begun graceful shutdown; /readyz
	// then reports not-ready so load balancers stop sending new traffic
	// while in-flight requests finish.
	draining atomic.Bool

	// m holds every metric handle, resolved once at construction; obsReg is
	// the registry behind them (private unless Config.Registry was set).
	m      *serverMetrics
	obsReg *obs.Registry
	// accessLog, when non-nil, gets one structured line per request.
	accessLog *obs.Logger

	// sink is the non-blocking WAL writer, nil when no WAL is configured.
	sink *obsSink
	// machine tags WAL observations produced by this server's own measurer.
	machine string

	// measureMu guards the lazily created measurer against Close: an http
	// TimeoutHandler can detach a measure request's goroutine from
	// Shutdown's drain, so creation and teardown must synchronize.
	measureMu sync.Mutex
	measurer  *exec.Measurer
	closed    bool

	// testHookInfer, when set, runs at the start of every non-coalesced
	// inference — the coalescing tests gate it to hold a computation open.
	testHookInfer func()
	// testHookMeasure, when set, runs after a measure-mode request is
	// admitted through the queue gate and before it evaluates — the
	// admission tests gate it to hold slots occupied deterministically.
	testHookMeasure func()
}

// New loads every artifact under cfg.ModelDir and returns a ready server.
func New(cfg Config) (*Server, error) {
	reg, err := loadRegistry(cfg.ModelDir)
	if err != nil {
		return nil, err
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 4096
	}
	if cfg.Workers == 0 {
		cfg.Workers = -1
	}
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = 16 << 20
	}
	if cfg.MeasureQueueDepth <= 0 {
		cfg.MeasureQueueDepth = 8
	}
	if cfg.Machine == "" {
		if host, err := os.Hostname(); err == nil {
			cfg.Machine = host
		} else {
			cfg.Machine = "unknown"
		}
	}
	obsReg := cfg.Registry
	if obsReg == nil {
		obsReg = obs.NewRegistry()
	}
	s := &Server{
		reg:          reg,
		cache:        newLRU(cfg.CacheSize),
		workers:      cfg.Workers,
		maxBody:      cfg.MaxBodyBytes,
		start:        time.Now(),
		build:        buildinfo.Read(),
		m:            newServerMetrics(obsReg),
		obsReg:       obsReg,
		accessLog:    cfg.AccessLog,
		measureSlots: make(chan struct{}, cfg.MeasureQueueDepth),
		machine:      cfg.Machine,
	}
	s.registerGauges()
	if cfg.WAL != nil {
		s.sink = newObsSink(cfg.WAL, s.m, cfg.ObserveBuffer)
	}
	return s, nil
}

// Close releases resources owned by the server: the measuring executor's
// persistent worker pool, when mode=measure requests ever started it. The
// server must not serve after Close; a straggler measure request detached by
// a timeout wrapper fails cleanly instead of resurrecting the pool.
func (s *Server) Close() {
	s.measureMu.Lock()
	s.closed = true
	if s.measurer != nil {
		s.measurer.Close()
		s.measurer = nil
	}
	s.measureMu.Unlock()
	// Flush buffered observations to the WAL before the caller closes it.
	if s.sink != nil {
		s.sink.close()
	}
}

// getMeasurer lazily creates the shared measuring executor; nil after Close.
// The measurer honors each request kernel's declared dtype (float requests
// time real float32 execution), and kernelFingerprint keys the response
// cache on the dtype, so the two precisions never share cached timings.
func (s *Server) getMeasurer() *exec.Measurer {
	s.measureMu.Lock()
	defer s.measureMu.Unlock()
	if s.closed {
		return nil
	}
	if s.measurer == nil {
		s.measurer = exec.NewMeasurer()
	}
	return s.measurer
}

// Models returns the loaded model names (sorted) and the default name of the
// currently served registry generation.
func (s *Server) Models() ([]string, string) {
	rs := s.reg.snapshot()
	return rs.names, rs.defaultName
}

// ReloadModels atomically swaps in a freshly loaded registry generation
// (SIGHUP, retrain promotion). On error the running generation is untouched.
func (s *Server) ReloadModels() (int64, error) { return s.reg.Reload() }

// RollbackModel undoes the last promotion: it repoints the store at the
// displaced model and hot-swaps the registry.
func (s *Server) RollbackModel() (string, int64, error) { return s.reg.Rollback() }

// RegistryVersion reports the currently served registry generation.
func (s *Server) RegistryVersion() int64 { return s.reg.Version() }

// RegistryGeneration reports the content-derived fingerprint of the served
// model set. Replicas started from (or reloaded against) the same -models
// store state report the same generation, which is how a load balancer
// verifies a fleet serves one model set.
func (s *Server) RegistryGeneration() string { return s.reg.Generation() }

// MetricValue returns a counter's current value by its pre-observability
// flat name (0 when never touched), preserving the original accessor for
// tests and callers that predate the obs registry.
func (s *Server) MetricValue(name string) int64 {
	return int64(s.legacyValue(name))
}

// FlightWaiting reports how many requests are currently parked behind an
// in-flight identical computation.
func (s *Server) FlightWaiting() int { return s.flight.Waiting() }

// Handler returns the route mux. Every route is wrapped by instrument, so
// per-endpoint request counters, latency histograms, trace spans and access
// logging apply identically however the handler is mounted.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/tune", s.instrument("tune", s.post(s.handleTune)))
	mux.HandleFunc("/v1/rank", s.instrument("rank", s.post(s.handleRank)))
	mux.HandleFunc("/v1/predict", s.instrument("predict", s.post(s.handlePredict)))
	mux.HandleFunc("/v1/observe", s.instrument("observe", s.post(s.handleObserve)))
	mux.HandleFunc("/v1/models", s.instrument("models", s.handleModels))
	mux.HandleFunc("/healthz", s.instrument("healthz", s.handleHealthz))
	mux.HandleFunc("/readyz", s.instrument("readyz", s.handleReadyz))
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/vars", s.handleDebugVars)
	return mux
}

// ObsRegistry exposes the server's metrics registry so operational
// middleware (panic recovery, rate limiting) and the retrainer record into
// the same /metrics surface.
func (s *Server) ObsRegistry() *obs.Registry { return s.obsReg }

// StartDraining marks the server not-ready: /readyz answers 503 so load
// balancers stop routing here, while existing endpoints keep serving until
// the listener finishes draining. Call it when shutdown begins, before
// http.Server.Shutdown.
func (s *Server) StartDraining() { s.draining.Store(true) }

// ---------------------------------------------------------------------------
// Wire types

// vectorJSON is the tuning vector on the wire. A 2-D request may omit bz
// (normalized to the required bz=1); k may be omitted for unfused vectors
// (normalized to the equivalent k=1).
type vectorJSON struct {
	Bx int `json:"bx"`
	By int `json:"by"`
	Bz int `json:"bz,omitempty"`
	U  int `json:"u"`
	C  int `json:"c"`
	K  int `json:"k,omitempty"`
}

func fromVector(v tunespace.Vector) vectorJSON {
	return vectorJSON{Bx: v.Bx, By: v.By, Bz: v.Bz, U: v.U, C: v.C, K: v.EffFuse()}
}

func (v vectorJSON) toVector(dims int) tunespace.Vector {
	out := tunespace.Vector{Bx: v.Bx, By: v.By, Bz: v.Bz, U: v.U, C: v.C, K: v.K}
	if dims == 2 && out.Bz == 0 {
		out.Bz = 1
	}
	if out.K == 0 {
		out.K = 1
	}
	return out
}

// kernelSpec selects the stencil kernel: a Table III benchmark name (the
// JSON may also be a bare string), an inline DSL source, or an explicit
// offset list.
type kernelSpec struct {
	Name    string  `json:"name,omitempty"`
	DSL     string  `json:"dsl,omitempty"`
	Offsets [][]int `json:"offsets,omitempty"`
	Buffers int     `json:"buffers,omitempty"`
	DType   string  `json:"dtype,omitempty"`
}

type instanceRequest struct {
	Model  string          `json:"model,omitempty"`
	Kernel json.RawMessage `json:"kernel"`
	Size   string          `json:"size"`
}

func (r *instanceRequest) instance() (stencil.Instance, error) {
	if len(r.Kernel) == 0 {
		return stencil.Instance{}, fmt.Errorf("missing kernel")
	}
	var spec kernelSpec
	var name string
	if err := json.Unmarshal(r.Kernel, &name); err == nil {
		spec.Name = name
	} else if err := json.Unmarshal(r.Kernel, &spec); err != nil {
		return stencil.Instance{}, fmt.Errorf("kernel must be a name or an object: %v", err)
	}
	k, err := buildKernel(spec)
	if err != nil {
		return stencil.Instance{}, err
	}
	size, err := parseSize(r.Size)
	if err != nil {
		return stencil.Instance{}, err
	}
	q := stencil.Instance{Kernel: k, Size: size}
	if err := q.Validate(); err != nil {
		return stencil.Instance{}, err
	}
	return q, nil
}

func buildKernel(spec kernelSpec) (*stencil.Kernel, error) {
	switch {
	case spec.DSL != "":
		defs, err := dsl.ParseString(spec.DSL)
		if err != nil {
			return nil, fmt.Errorf("parsing kernel DSL: %v", err)
		}
		for _, d := range defs {
			if d.Name == spec.Name {
				return d.Kernel(), nil
			}
		}
		return defs[0].Kernel(), nil
	case len(spec.Offsets) > 0:
		sh := shape.New()
		for _, o := range spec.Offsets {
			p := shape.Point{}
			switch len(o) {
			case 2:
				p = shape.Point{X: o[0], Y: o[1]}
			case 3:
				p = shape.Point{X: o[0], Y: o[1], Z: o[2]}
			default:
				return nil, fmt.Errorf("offset %v must have 2 or 3 components", o)
			}
			sh.Add(p, 1)
		}
		name := spec.Name
		if name == "" {
			name = "custom"
		}
		buffers := max(spec.Buffers, 1)
		dt := stencil.Float32
		switch spec.DType {
		case "", "float", "float32":
		case "double", "float64":
			dt = stencil.Float64
		default:
			return nil, fmt.Errorf("unknown dtype %q (want float or double)", spec.DType)
		}
		return &stencil.Kernel{Name: name, Shape: sh, Buffers: buffers, Type: dt}, nil
	case spec.Name != "":
		return stencil.KernelByName(spec.Name)
	default:
		return nil, fmt.Errorf("kernel needs a name, dsl or offsets")
	}
}

func parseSize(s string) (stencil.Size, error) {
	var x, y, z int
	if n, err := fmt.Sscanf(s, "%dx%dx%d", &x, &y, &z); err == nil && n == 3 {
		return stencil.Size3D(x, y, z), nil
	}
	if n, err := fmt.Sscanf(s, "%dx%d", &x, &y); err == nil && n == 2 {
		return stencil.Size2D(x, y), nil
	}
	return stencil.Size{}, fmt.Errorf("size %q must be NxM or NxMxK", s)
}

// ---------------------------------------------------------------------------
// Cache keys

// hashInts writes ints to a running hash as canonical little-endian int64s.
func hashInts(h io.Writer, vals ...int) {
	var buf [8]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
		h.Write(buf[:])
	}
}

// kernelFingerprint hashes the kernel *structure* — access pattern with
// multiplicities, buffer count, dtype, flop cost — so two requests
// describing the same stencil under different names share cache entries and
// coalesce. The kernel name is informational only (it never enters feature
// encoding or the simulator), so structurally equal kernels are genuinely
// interchangeable; the cached response's instance label reflects the request
// that computed the entry.
func kernelFingerprint(k *stencil.Kernel) string {
	h := sha256.New()
	hashInts(h, k.Dims(), k.Buffers, int(k.Type), k.Flops())
	for _, p := range k.Shape.Points() {
		hashInts(h, p.X, p.Y, p.Z, k.Shape.Multiplicity(p))
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// RoutingKey derives the consistent-hash routing key a load balancer uses to
// pin a request body to one replica. It is the structural prefix of the
// response cache key — requested model, kernel-structure fingerprint, size —
// so all requests that could share a cache entry or coalesce in a
// singleflight land on the same replica, and each replica's LRU sees a
// disjoint slice of the hot set. Bodies that do not parse as an instance
// request (they would 4xx anyway) report ok=false; the balancer falls back
// to spreading them.
func RoutingKey(body []byte) (key string, ok bool) {
	var req instanceRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return "", false
	}
	q, err := req.instance()
	if err != nil {
		return "", false
	}
	return req.Model + "|" + kernelFingerprint(q.Kernel) + "|" + q.Size.String(), true
}

func vectorSetHash(vs []tunespace.Vector) string {
	h := sha256.New()
	var buf []byte
	for _, v := range vs {
		buf = v.AppendFields(buf[:0])
		h.Write(buf)
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// ---------------------------------------------------------------------------
// HTTP plumbing

func (s *Server) post(h func(w http.ResponseWriter, r *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			s.fail(w, http.StatusMethodNotAllowed, fmt.Errorf("%s needs POST", r.URL.Path))
			return
		}
		h(w, r)
	}
}

// httpError carries an explicit status (and optional Retry-After seconds)
// through the compute/decode plumbing to fail; plain errors default to the
// caller's code.
type httpError struct {
	code       int
	msg        string
	retryAfter int
}

func (e *httpError) Error() string { return e.msg }

func (s *Server) fail(w http.ResponseWriter, code int, err error) {
	var he *httpError
	if errors.As(err, &he) {
		code = he.code
		if he.retryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(he.retryAfter))
		}
	}
	s.m.errors.Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// decode reads and unmarshals a request body under the configured size
// cap. The real ResponseWriter goes to MaxBytesReader (it closes the
// connection on overrun so the client stops uploading), and an over-limit
// body maps to an explicit 413 instead of a generic failure.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) error {
	limit := s.maxBody
	if limit < 0 {
		limit = 1 << 40 // "unlimited", still bounded against runaway streams
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, limit))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return &httpError{
				code: http.StatusRequestEntityTooLarge,
				msg:  fmt.Sprintf("request body exceeds the %d-byte limit", mbe.Limit),
			}
		}
		return fmt.Errorf("reading body: %v", err)
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("decoding request: %v", err)
	}
	return nil
}

// serveCached answers from the LRU, or coalesces concurrent identical
// misses into one compute call whose serialized response is cached. Compute
// runs under the flight leader's request context; when the leader's client
// vanishes mid-compute (disconnect, timeout) its cancellation must not
// poison healthy coalesced waiters, so a waiter that receives a context
// error retries the flight under its own context. The X-Cache header
// reports which path answered: hit, miss or coalesced.
func (s *Server) serveCached(w http.ResponseWriter, r *http.Request, key string, compute func(ctx context.Context) (any, error)) {
	// recordSpan rather than StartSpan: the hot path pays a closure
	// allocation per StartSpan call, and cache lookups run on every request.
	lookupStart := time.Now()
	b, ok := s.cache.Get(key)
	s.recordSpan(r.Context(), "cache_lookup", lookupStart, time.Since(lookupStart))
	if ok {
		s.m.cacheHits.Inc()
		s.respond(w, "hit", b)
		return
	}
	s.m.cacheMisses.Inc()
	run := func() ([]byte, error) {
		if s.testHookInfer != nil {
			s.testHookInfer()
		}
		s.m.inferences.Inc()
		// The inference span lands on the flight leader's trace: the leader
		// did the work, waiters record flight_wait instead.
		inferStart := time.Now()
		resp, err := compute(r.Context())
		s.recordSpan(r.Context(), "inference", inferStart, time.Since(inferStart))
		if err != nil {
			return nil, err
		}
		b, err := json.Marshal(resp)
		if err != nil {
			return nil, err
		}
		s.cache.Put(key, b)
		return b, nil
	}
	flightStart := time.Now()
	b, err, shared := s.flight.Do(r.Context(), key, run)
	if err != nil && shared && isCtxErr(err) && r.Context().Err() == nil {
		// The leader was cancelled, we were not: retry as (or behind) a new
		// leader, and report what the retry actually did.
		s.m.flightRetries.Inc()
		b, err, shared = s.flight.Do(r.Context(), key, run)
	}
	if err != nil {
		// fail upgrades typed *httpError codes (e.g. 503 queue shed).
		code := http.StatusBadRequest
		if isCtxErr(err) {
			code = http.StatusServiceUnavailable
		}
		s.fail(w, code, err)
		return
	}
	source := "miss"
	if shared {
		s.m.coalesced.Inc()
		// Only now is this request known to be a waiter, not the leader:
		// record the time it spent parked behind the shared flight.
		s.recordSpan(r.Context(), "flight_wait", flightStart, time.Since(flightStart))
		source = "coalesced"
	}
	s.respond(w, source, b)
}

func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

func (s *Server) respond(w http.ResponseWriter, source string, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", source)
	w.Write(body)
	w.Write([]byte("\n"))
}

// evaluatorFor builds the per-request evaluation stack for a mode:
// request-scoped memoization over a context-honoring fan-out of the model's
// simulator, or the shared wall-clock measurer (which batches natively,
// serialized for timing fidelity). Measure mode passes through the
// admission gate, so the caller must invoke release (always non-nil) once
// the evaluation is done; a full queue fails with a 503 shed error.
func (s *Server) evaluatorFor(ctx context.Context, lm *loadedModel, mode string) (eval dataset.BatchEvaluator, release func(), err error) {
	noop := func() {}
	switch mode {
	case "", "sim":
		return dataset.Memoized(dataset.BatchedContext(ctx, lm.sim, s.workers)), noop, nil
	case "measure":
		s.m.measureRequests.Inc()
		waitStart := time.Now()
		release, err := s.admitMeasure()
		s.recordSpan(ctx, "queue_wait", waitStart, time.Since(waitStart))
		if err != nil {
			return nil, noop, err
		}
		if s.testHookMeasure != nil {
			s.testHookMeasure()
		}
		m := s.getMeasurer()
		if m == nil {
			release()
			return nil, noop, fmt.Errorf("server is shutting down")
		}
		return dataset.Memoized(spanEval{measuredEval{m}, ctx, s}), release, nil
	default:
		return nil, noop, fmt.Errorf("unknown mode %q (want sim or measure)", mode)
	}
}

// measuredEval adapts the shared executor; MeasureBatch serializes the whole
// batch under one lock so interleaved timings cannot corrupt each other.
type measuredEval struct{ m *exec.Measurer }

func (e measuredEval) Runtime(q stencil.Instance, t tunespace.Vector) float64 {
	out, _ := e.m.MeasureBatch(q, []tunespace.Vector{t})
	return out[0]
}

func (e measuredEval) RuntimeBatch(q stencil.Instance, ts []tunespace.Vector) []float64 {
	out, _ := e.m.MeasureBatch(q, ts)
	return out
}

// spanEval records a "measure" span around each real evaluation. It sits
// inside Memoized, so deduplicated repeats never record phantom spans.
type spanEval struct {
	inner dataset.BatchEvaluator
	ctx   context.Context
	s     *Server
}

func (e spanEval) Runtime(q stencil.Instance, t tunespace.Vector) float64 {
	start := time.Now()
	defer func() { e.s.recordSpan(e.ctx, "measure", start, time.Since(start)) }()
	return e.inner.Runtime(q, t)
}

func (e spanEval) RuntimeBatch(q stencil.Instance, ts []tunespace.Vector) []float64 {
	start := time.Now()
	defer func() { e.s.recordSpan(e.ctx, "measure", start, time.Since(start)) }()
	return e.inner.RuntimeBatch(q, ts)
}

// ---------------------------------------------------------------------------
// Endpoints

type tuneRequest struct {
	instanceRequest
	// TopK > 0 switches to hybrid tuning: evaluate the top-k ranked
	// candidates with Mode's evaluator and return the evaluated best.
	TopK int    `json:"topk,omitempty"`
	Mode string `json:"mode,omitempty"`
}

type tuneResponse struct {
	Model            string      `json:"model"`
	Instance         string      `json:"instance"`
	Best             vectorJSON  `json:"best"`
	RankedCandidates int         `json:"ranked_candidates"`
	RankMicros       int64       `json:"rank_micros"`
	Hybrid           *hybridJSON `json:"hybrid,omitempty"`
}

type hybridJSON struct {
	TopK      int        `json:"topk"`
	Mode      string     `json:"mode"`
	Best      vectorJSON `json:"best"`
	BestValue float64    `json:"best_value_seconds"`
}

func (s *Server) handleTune(w http.ResponseWriter, r *http.Request) {
	var req tuneRequest
	if err := s.decode(w, r, &req); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	// Snapshot the registry generation once: this request answers from the
	// model set it started on, even if a retrain promotes mid-request.
	lm, err := s.reg.snapshot().resolve(req.Model)
	if err != nil {
		s.fail(w, http.StatusNotFound, err)
		return
	}
	q, err := req.instance()
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if req.TopK < 0 {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("topk must be >= 0"))
		return
	}
	mode, err := normalizeMode(req.Mode, "sim", "measure")
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	// The model's content hash keys the cache, so a hot-swapped model never
	// answers from its predecessor's cached responses.
	key := fmt.Sprintf("tune|%s@%s|%s|%s|%d|%s",
		lm.info.Name, lm.info.ContentHash, kernelFingerprint(q.Kernel), q.Size, req.TopK, mode)
	s.serveCached(w, r, key, func(ctx context.Context) (any, error) {
		cands := tunespace.NewSpace(q.Kernel.Dims()).Predefined()
		start := time.Now()
		best, err := lm.tuner.Best(q, cands)
		if err != nil {
			return nil, err
		}
		resp := &tuneResponse{
			Model:            lm.info.Name,
			Instance:         q.ID(),
			Best:             fromVector(best),
			RankedCandidates: len(cands),
			RankMicros:       time.Since(start).Microseconds(),
		}
		if req.TopK > 0 {
			eval, release, err := s.evaluatorFor(ctx, lm, mode)
			if err != nil {
				return nil, err
			}
			defer release()
			hres, err := lm.tuner.HybridTopK(q, cands, req.TopK, core.BatchObjectiveFor(eval, q))
			if err != nil {
				return nil, err
			}
			// A cancelled fan-out reports +Inf sentinels; never serve or
			// cache such a poisoned result.
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			resp.Hybrid = &hybridJSON{
				TopK:      hres.Evaluations,
				Mode:      mode,
				Best:      fromVector(hres.Best),
				BestValue: hres.BestValue,
			}
			if mode == "measure" {
				s.record(q, "measure", s.machine, time.Now().UnixNano(), hres.Best, hres.BestValue)
			}
		}
		return resp, nil
	})
}

// normalizeMode canonicalizes a request's evaluation mode before it enters
// a cache key: empty means the first (default) allowed value, anything not
// allowed is rejected up front.
func normalizeMode(mode string, allowed ...string) (string, error) {
	if mode == "" {
		return allowed[0], nil
	}
	for _, a := range allowed {
		if mode == a {
			return mode, nil
		}
	}
	return "", fmt.Errorf("unknown mode %q (want one of %v)", mode, allowed)
}

type rankRequest struct {
	instanceRequest
	// Candidates to rank; empty ranks the predefined set for the kernel's
	// dimensionality.
	Candidates []vectorJSON `json:"candidates,omitempty"`
	// ReturnScores includes the model score of every candidate.
	ReturnScores bool `json:"return_scores,omitempty"`
}

type rankResponse struct {
	Model      string     `json:"model"`
	Instance   string     `json:"instance"`
	Candidates int        `json:"candidates"`
	Order      []int      `json:"order"`
	Best       vectorJSON `json:"best"`
	Scores     []float64  `json:"scores,omitempty"`
}

func (s *Server) handleRank(w http.ResponseWriter, r *http.Request) {
	var req rankRequest
	if err := s.decode(w, r, &req); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	lm, err := s.reg.snapshot().resolve(req.Model)
	if err != nil {
		s.fail(w, http.StatusNotFound, err)
		return
	}
	q, err := req.instance()
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	cands := make([]tunespace.Vector, len(req.Candidates))
	for i, v := range req.Candidates {
		cands[i] = v.toVector(q.Kernel.Dims())
	}
	if len(cands) == 0 {
		cands = tunespace.NewSpace(q.Kernel.Dims()).Predefined()
	}
	key := fmt.Sprintf("rank|%s@%s|%s|%s|%s|%t",
		lm.info.Name, lm.info.ContentHash, kernelFingerprint(q.Kernel), q.Size, vectorSetHash(cands), req.ReturnScores)
	s.serveCached(w, r, key, func(context.Context) (any, error) {
		var order []int
		var scores []float64
		var err error
		if req.ReturnScores {
			order, scores, err = lm.tuner.RankScored(q, cands)
		} else {
			order, err = lm.tuner.Rank(q, cands)
		}
		if err != nil {
			return nil, err
		}
		return &rankResponse{
			Model:      lm.info.Name,
			Instance:   q.ID(),
			Candidates: len(cands),
			Order:      order,
			Best:       fromVector(cands[order[0]]),
			Scores:     scores,
		}, nil
	})
}

type predictRequest struct {
	instanceRequest
	Vectors []vectorJSON `json:"vectors"`
	// Mode selects the predicted quantity: "sim" (default) simulated
	// runtime seconds, "measure" wall-clock seconds, "score" raw model
	// ranking scores (higher ranks better).
	Mode string `json:"mode,omitempty"`
}

type predictResponse struct {
	Model    string    `json:"model"`
	Instance string    `json:"instance"`
	Mode     string    `json:"mode"`
	Unit     string    `json:"unit"`
	Values   []float64 `json:"values"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req predictRequest
	if err := s.decode(w, r, &req); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	lm, err := s.reg.snapshot().resolve(req.Model)
	if err != nil {
		s.fail(w, http.StatusNotFound, err)
		return
	}
	q, err := req.instance()
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Vectors) == 0 {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("missing vectors"))
		return
	}
	vs := make([]tunespace.Vector, len(req.Vectors))
	for i, v := range req.Vectors {
		vs[i] = v.toVector(q.Kernel.Dims())
		if err := vs[i].Validate(q.Kernel.Dims()); err != nil {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("vector %d: %v", i, err))
			return
		}
	}
	mode, err := normalizeMode(req.Mode, "sim", "measure", "score")
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	key := fmt.Sprintf("predict|%s@%s|%s|%s|%s|%s",
		lm.info.Name, lm.info.ContentHash, kernelFingerprint(q.Kernel), q.Size, vectorSetHash(vs), mode)
	s.serveCached(w, r, key, func(ctx context.Context) (any, error) {
		resp := &predictResponse{Model: lm.info.Name, Instance: q.ID(), Mode: mode, Unit: "seconds"}
		if mode == "score" {
			resp.Unit = "score"
			var err error
			if resp.Values, err = lm.tuner.Scores(q, vs); err != nil {
				return nil, err
			}
			return resp, nil
		}
		eval, release, err := s.evaluatorFor(ctx, lm, mode)
		if err != nil {
			return nil, err
		}
		defer release()
		resp.Values = eval.RuntimeBatch(q, vs)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Fresh wall-clock measurements are durable training signal: ship
		// them to the WAL off the request path. Cached and coalesced answers
		// never re-measure, so nothing is double-logged.
		if mode == "measure" {
			now := time.Now().UnixNano()
			for i, v := range vs {
				s.record(q, "measure", s.machine, now, v, resp.Values[i])
			}
		}
		return resp, nil
	})
}

// modelInfo is the /v1/models row: provenance without the bulky per-weight
// feature-name list.
type modelInfo struct {
	Name               string  `json:"name"`
	ContentHash        string  `json:"content_hash"`
	FeatureDim         int     `json:"feature_dim"`
	TrainingPoints     int     `json:"training_points,omitempty"`
	Seed               int64   `json:"seed,omitempty"`
	Mode               string  `json:"mode,omitempty"`
	C                  float64 `json:"c,omitempty"`
	Pairs              int     `json:"pairs,omitempty"`
	DatasetFingerprint string  `json:"dataset_fingerprint,omitempty"`
	Machine            string  `json:"machine,omitempty"`
}

// handleModels lists the served model set on GET. POST is the SIGHUP
// equivalent over the wire: it reloads the registry from the store directory
// and answers with the fresh listing, which is what stencil-lb's
// -broadcast-reload fans across a fleet. A failed reload keeps the running
// generation serving and reports 500 with the load error.
func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost {
		if _, err := s.ReloadModels(); err != nil {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusInternalServerError)
			json.NewEncoder(w).Encode(map[string]any{
				"error": fmt.Sprintf("reload failed, previous generation still serving: %v", err),
			})
			return
		}
	}
	rs := s.reg.snapshot()
	out := struct {
		Default            string            `json:"default"`
		RegistryVersion    int64             `json:"registry_version"`
		RegistryGeneration string            `json:"registry_generation"`
		Models             []modelInfo       `json:"models"`
		Skipped            []string          `json:"skipped,omitempty"`
		Promotions         []store.Promotion `json:"promotions,omitempty"`
	}{
		Default:            rs.defaultName,
		RegistryVersion:    rs.version,
		RegistryGeneration: rs.generation,
		Skipped:            rs.skipped,
		Promotions:         rs.history,
	}
	names := append([]string(nil), rs.names...)
	sort.Strings(names)
	for _, name := range names {
		lm := rs.models[name]
		mi := modelInfo{
			Name:               name,
			ContentHash:        lm.info.ContentHash,
			FeatureDim:         lm.info.Meta.FeatureDim,
			TrainingPoints:     lm.info.Meta.TrainingPoints,
			Seed:               lm.info.Meta.Seed,
			Mode:               lm.info.Meta.Mode,
			C:                  lm.info.Meta.C,
			Pairs:              lm.info.Meta.Pairs,
			DatasetFingerprint: lm.info.Meta.DatasetFingerprint,
		}
		if lm.art.Machine != nil {
			mi.Machine = lm.art.Machine.Name
		}
		out.Models = append(out.Models, mi)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	rs := s.reg.snapshot()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"status":           "ok",
		"version":          s.build.Version,
		"commit":           s.build.Commit,
		"go":               s.build.GoVersion,
		"models":           len(rs.names),
		"default_model":       rs.defaultName,
		"registry_version":    rs.version,
		"registry_generation": rs.generation,
		"uptime_seconds":   int64(time.Since(s.start).Seconds()),
	})
}

// handleReadyz is the readiness probe: distinct from /healthz liveness, it
// answers 503 once draining begins or while the measure queue is saturated,
// so a balancer routes new traffic elsewhere while this instance catches up
// — the process is alive (healthz) but should not receive more load.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	depth, capacity := s.MeasureQueueDepth(), s.MeasureQueueCapacity()
	draining := s.draining.Load()
	rs := s.reg.snapshot()
	ready := !draining && len(rs.names) > 0 && depth < capacity
	code := http.StatusOK
	if !ready {
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]any{
		"ready":                  ready,
		"draining":               draining,
		"models":                 len(rs.names),
		"registry_generation":    rs.generation,
		"measure_queue_depth":    depth,
		"measure_queue_capacity": capacity,
	})
}

// handleMetrics serves the Prometheus text exposition of the full registry:
// the server's own series plus whatever the middleware chain, retrainer and
// runtime gauges registered alongside them.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", obs.TextContentType)
	s.obsReg.WritePrometheus(w)
}
