package server

import (
	"container/list"
	"sync"
)

// lruShards keeps lock contention bounded under concurrent serving: keys
// hash-partition across shards, each with its own mutex and LRU list.
const lruShards = 16

// lruCache is a sharded, capacity-bounded LRU of serialized responses. It is
// the serve-many layer of the tuning service: an inference computed once is
// answered from memory for every later identical request until evicted.
type lruCache struct {
	shards [lruShards]lruShard
}

type lruShard struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recent
	entries  map[string]*list.Element
}

type lruEntry struct {
	key string
	val []byte
}

// newLRU builds a cache holding at most capacity entries in total
// (distributed over the shards; each shard holds at least one).
func newLRU(capacity int) *lruCache {
	per := max(capacity/lruShards, 1)
	c := &lruCache{}
	for i := range c.shards {
		c.shards[i] = lruShard{
			capacity: per,
			order:    list.New(),
			entries:  make(map[string]*list.Element, per),
		}
	}
	return c
}

// fnv1a32 is FNV-1a over the string's bytes, inlined so the hot cached path
// pays no hasher allocation and no []byte(key) copy. It produces exactly the
// same values as hash/fnv's New32a, so shard placement is unchanged.
func fnv1a32(key string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return h
}

func (c *lruCache) shard(key string) *lruShard {
	return &c.shards[fnv1a32(key)%lruShards]
}

// Get returns the cached response for key and refreshes its recency.
func (c *lruCache) Get(key string) ([]byte, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		return nil, false
	}
	s.order.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Put stores a response, evicting the shard's least-recently-used entry when
// full. Callers must not mutate val afterwards.
func (c *lruCache) Put(key string, val []byte) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		el.Value.(*lruEntry).val = val
		s.order.MoveToFront(el)
		return
	}
	for s.order.Len() >= s.capacity {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.entries, oldest.Value.(*lruEntry).key)
	}
	s.entries[key] = s.order.PushFront(&lruEntry{key: key, val: val})
}

// Len returns the total number of cached responses.
func (c *lruCache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}
