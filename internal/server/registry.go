package server

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/perfmodel"
	"repro/internal/store"
)

// loadedModel is one servable artifact: the ranking tuner around its weights
// plus the simulator for the machine it was trained against.
type loadedModel struct {
	info  store.Info
	art   *store.Artifact
	tuner *core.Tuner
	// sim is the deterministic evaluator for this model's machine
	// description (the training default when the artifact carries none).
	// *perfmodel.Model is read-only and safe for any concurrency.
	sim *perfmodel.Model
}

// regState is one immutable generation of the registry: the loaded models, a
// monotonically increasing version, and the store's promotion history at load
// time. Handlers snapshot the whole generation once per request, so an
// in-flight request keeps answering from the model set it started on even
// while a retrain promotes a new one underneath it.
type regState struct {
	models      map[string]*loadedModel
	names       []string
	defaultName string
	version     int64
	history     []store.Promotion
	loadedAt    time.Time
	// generation is a content-derived fingerprint of the loaded model set
	// (names, content hashes, default). Unlike version — a per-process
	// reload counter — it is identical across replicas serving the same
	// store state, so a load balancer can check a fleet is in lockstep.
	generation string
	// skipped lists artifacts present in the store that failed to load on
	// this generation (torn re-save, incompatible feature dim, ...); they are
	// reported, not served.
	skipped []string
}

// Registry is the set of models a server instance answers for. It is a
// hot-swap structure: an atomic pointer to an immutable regState, replaced
// wholesale by Reload (SIGHUP, retrain promotion) and never mutated in place.
// Lock-free on the read path — handlers call snapshot once and never lock.
type Registry struct {
	dir string
	cur atomic.Pointer[regState]
	// reloadMu serializes writers (Reload, Rollback) so versions stay
	// monotonic; readers never touch it.
	reloadMu sync.Mutex
}

// loadRegistry builds a registry over the store at dir and loads generation 1.
func loadRegistry(dir string) (*Registry, error) {
	r := &Registry{dir: dir}
	st, err := loadRegState(dir, 1)
	if err != nil {
		return nil, err
	}
	r.cur.Store(st)
	return r, nil
}

// loadRegState hash-verifies and loads every artifact in the store at dir.
// The default model is the store's current.json promotion pointer when it
// names a loadable artifact; otherwise the artifact named "default", the only
// artifact, or the first in name order. Artifacts that fail to load (a torn
// concurrent re-save, a hand-edited file) are skipped so one bad directory
// cannot take down a reload — but a store with no loadable artifact at all is
// an error, and the corrupt model is never served.
func loadRegState(dir string, version int64) (*regState, error) {
	st, err := store.Open(dir)
	if err != nil {
		return nil, err
	}
	infos, err := st.List()
	if err != nil {
		return nil, err
	}
	if len(infos) == 0 {
		return nil, fmt.Errorf("server: no model artifacts in %s (train one with stencil-train -save %s)", dir, dir)
	}
	rs := &regState{
		models:   make(map[string]*loadedModel, len(infos)),
		version:  version,
		loadedAt: time.Now(),
	}
	var firstErr error
	for _, in := range infos {
		art, err := st.Load(in.Name)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			rs.skipped = append(rs.skipped, in.Name)
			continue
		}
		mach := art.Machine
		if mach == nil {
			mach = machine.XeonE52680v3()
		}
		rs.models[in.Name] = &loadedModel{
			info:  in,
			art:   art,
			tuner: core.New(art.Model),
			sim:   perfmodel.New(mach),
		}
		rs.names = append(rs.names, in.Name)
	}
	if len(rs.names) == 0 {
		return nil, fmt.Errorf("server: no loadable artifact in %s: %w", dir, firstErr)
	}
	sort.Strings(rs.names)
	rs.defaultName = rs.names[0]
	if _, ok := rs.models["default"]; ok {
		rs.defaultName = "default"
	}
	// The store's promotion pointer overrides the naming conventions — but
	// only when it names a model that actually loaded; a corrupt pointer or a
	// pointer at a corrupt artifact falls back instead of failing the server.
	cur, hist, err := st.Current()
	if err == nil && cur != "" {
		if _, ok := rs.models[cur]; ok {
			rs.defaultName = cur
		}
	}
	rs.history = hist
	rs.generation = contentGeneration(rs)
	return rs, nil
}

// contentGeneration hashes what the generation serves — every loaded model's
// name and content hash plus the default — so replicas loading the same
// store state report the same value regardless of how many local reloads
// each has been through.
func contentGeneration(rs *regState) string {
	h := sha256.New()
	for _, name := range rs.names {
		io.WriteString(h, name)
		io.WriteString(h, "\x00")
		io.WriteString(h, rs.models[name].info.ContentHash)
		io.WriteString(h, "\x00")
	}
	io.WriteString(h, rs.defaultName)
	return hex.EncodeToString(h.Sum(nil)[:8])
}

// snapshot returns the current immutable generation. Handlers call it exactly
// once per request and use only the returned state, which pins their model
// version for the request's whole lifetime.
func (r *Registry) snapshot() *regState { return r.cur.Load() }

// Version returns the currently served registry generation.
func (r *Registry) Version() int64 { return r.snapshot().version }

// Generation returns the content-derived fingerprint of the served model
// set; replicas over the same store dir report the same value.
func (r *Registry) Generation() string { return r.snapshot().generation }

// Reload loads a fresh generation from the store directory and atomically
// swaps it in. On any load error the running generation stays in place
// untouched — a half-written store can delay a reload, never degrade serving.
// In-flight requests complete on the generation they snapshotted.
func (r *Registry) Reload() (int64, error) {
	r.reloadMu.Lock()
	defer r.reloadMu.Unlock()
	next := r.cur.Load().version + 1
	st, err := loadRegState(r.dir, next)
	if err != nil {
		return r.cur.Load().version, err
	}
	r.cur.Store(st)
	return st.version, nil
}

// Rollback repoints the store's promotion pointer at the model the last
// promotion displaced, records the rollback in the history, and reloads. It
// is the operator's one-call undo for a bad promotion.
func (r *Registry) Rollback() (string, int64, error) {
	r.reloadMu.Lock()
	prev := ""
	_, hist, err := func() (string, []store.Promotion, error) {
		st, err := store.Open(r.dir)
		if err != nil {
			return "", nil, err
		}
		return st.Current()
	}()
	if err == nil && len(hist) > 0 {
		prev = hist[len(hist)-1].Prev
	}
	if prev == "" {
		r.reloadMu.Unlock()
		return "", r.Version(), fmt.Errorf("server: no previous model to roll back to")
	}
	st, err := store.Open(r.dir)
	if err != nil {
		r.reloadMu.Unlock()
		return "", r.Version(), err
	}
	if err := st.SetCurrent(prev, store.Promotion{
		Reason:   "rollback",
		UnixNano: time.Now().UnixNano(),
	}); err != nil {
		r.reloadMu.Unlock()
		return "", r.Version(), err
	}
	r.reloadMu.Unlock()
	v, err := r.Reload()
	return prev, v, err
}

// resolve returns the named model from this generation, or the generation's
// default for an empty name.
func (rs *regState) resolve(name string) (*loadedModel, error) {
	if name == "" {
		name = rs.defaultName
	}
	m, ok := rs.models[name]
	if !ok {
		return nil, fmt.Errorf("unknown model %q (loaded: %v)", name, rs.names)
	}
	return m, nil
}
