package server

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/perfmodel"
	"repro/internal/store"
)

// loadedModel is one servable artifact: the ranking tuner around its weights
// plus the simulator for the machine it was trained against.
type loadedModel struct {
	info  store.Info
	art   *store.Artifact
	tuner *core.Tuner
	// sim is the deterministic evaluator for this model's machine
	// description (the training default when the artifact carries none).
	// *perfmodel.Model is read-only and safe for any concurrency.
	sim *perfmodel.Model
}

// Registry is the set of models a server instance answers for, loaded once
// at startup from a store directory. All fields are read-only after
// loadRegistry returns, so handlers never lock it.
type Registry struct {
	models      map[string]*loadedModel
	names       []string
	defaultName string
}

// loadRegistry hash-verifies and loads every artifact in the store at dir.
// The default model is the one named "default", or the only artifact, or —
// with several and no "default" — the first in name order.
func loadRegistry(dir string) (*Registry, error) {
	st, err := store.Open(dir)
	if err != nil {
		return nil, err
	}
	infos, err := st.List()
	if err != nil {
		return nil, err
	}
	if len(infos) == 0 {
		return nil, fmt.Errorf("server: no model artifacts in %s (train one with stencil-train -save %s)", dir, dir)
	}
	r := &Registry{models: make(map[string]*loadedModel, len(infos))}
	for _, in := range infos {
		art, err := st.Load(in.Name)
		if err != nil {
			return nil, err
		}
		mach := art.Machine
		if mach == nil {
			mach = machine.XeonE52680v3()
		}
		r.models[in.Name] = &loadedModel{
			info:  in,
			art:   art,
			tuner: core.New(art.Model),
			sim:   perfmodel.New(mach),
		}
		r.names = append(r.names, in.Name)
	}
	sort.Strings(r.names)
	r.defaultName = r.names[0]
	if _, ok := r.models["default"]; ok {
		r.defaultName = "default"
	}
	return r, nil
}

// resolve returns the named model, or the default for an empty name.
func (r *Registry) resolve(name string) (*loadedModel, error) {
	if name == "" {
		name = r.defaultName
	}
	m, ok := r.models[name]
	if !ok {
		return nil, fmt.Errorf("unknown model %q (loaded: %v)", name, r.names)
	}
	return m, nil
}
