package server

import (
	"context"
	"sync"
)

// flightGroup coalesces concurrent calls with the same key into one
// execution: the first caller runs fn, later callers block and share its
// result. This is the thundering-herd guard of the tuning server — a burst of
// identical /v1/tune requests costs one inference, after which the response
// cache answers. (A from-scratch, trimmed singleflight: no external
// dependency, plus a waiter counter the coalescing tests synchronize on.)
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall

	// waiting counts callers currently blocked on another caller's
	// in-flight execution; read through Waiting by tests and metrics.
	waiting int
}

type flightCall struct {
	done chan struct{}
	val  []byte
	err  error
}

// Do executes fn once per key at a time: concurrent duplicate callers wait
// for the executing one and receive its result with shared=true. A waiter
// whose own ctx dies while parked unblocks immediately with the ctx error
// (the leader keeps computing for everyone else). Once a call completes, the
// key is forgotten — subsequent calls execute again (the response cache, not
// the flight group, provides lasting reuse). The leader runs fn regardless
// of ctx; cancellation of the leader is fn's own business.
func (g *flightGroup) Do(ctx context.Context, key string, fn func() ([]byte, error)) (val []byte, err error, shared bool) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
	}
	if c, ok := g.calls[key]; ok {
		g.waiting++
		g.mu.Unlock()
		select {
		case <-c.done:
		case <-ctx.Done():
			g.mu.Lock()
			g.waiting--
			g.mu.Unlock()
			return nil, ctx.Err(), true
		}
		g.mu.Lock()
		g.waiting--
		g.mu.Unlock()
		return c.val, c.err, true
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, c.err, false
}

// Waiting returns how many callers are currently blocked on in-flight calls.
func (g *flightGroup) Waiting() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.waiting
}
