package server

import (
	"context"
	"fmt"
	"net/http"
	"sync"
)

// flightGroup coalesces concurrent calls with the same key into one
// execution: the first caller runs fn, later callers block and share its
// result. This is the thundering-herd guard of the tuning server — a burst of
// identical /v1/tune requests costs one inference, after which the response
// cache answers. (A from-scratch, trimmed singleflight: no external
// dependency, plus a waiter counter the coalescing tests synchronize on.)
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall

	// waiting counts callers currently blocked on another caller's
	// in-flight execution; read through Waiting by tests and metrics.
	waiting int
}

type flightCall struct {
	done chan struct{}
	val  []byte
	err  error
}

// errFlightAbandoned is what waiters see when their leader exited without
// producing a result (fn panicked, or bailed via runtime.Goexit): the key is
// clean again, so a retry executes fresh. It is a 503 on the wire — the
// condition is transient by construction, so retrying clients converge.
var errFlightAbandoned = &httpError{
	code:       http.StatusServiceUnavailable,
	msg:        "singleflight: in-flight call abandoned by its leader, retry",
	retryAfter: 1,
}

// Do executes fn once per key at a time: concurrent duplicate callers wait
// for the executing one and receive its result with shared=true. A waiter
// whose own ctx dies while parked unblocks immediately with the ctx error
// (the leader keeps computing for everyone else). Once a call completes, the
// key is forgotten — subsequent calls execute again (the response cache, not
// the flight group, provides lasting reuse). The leader runs fn regardless
// of ctx; cancellation of the leader is fn's own business.
//
// If fn panics, the key is still cleaned up and every waiter unblocks with
// an error describing the panic — the next call for the key executes fresh —
// and the panic then resumes in the leader, so the Recover middleware keeps
// its 500-and-keep-serving semantics. Without that, a panicking leader would
// strand all coalesced waiters on a poisoned key until their contexts died.
func (g *flightGroup) Do(ctx context.Context, key string, fn func() ([]byte, error)) (val []byte, err error, shared bool) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
	}
	if c, ok := g.calls[key]; ok {
		g.waiting++
		g.mu.Unlock()
		select {
		case <-c.done:
		case <-ctx.Done():
			g.mu.Lock()
			g.waiting--
			g.mu.Unlock()
			return nil, ctx.Err(), true
		}
		g.mu.Lock()
		g.waiting--
		g.mu.Unlock()
		return c.val, c.err, true
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	// Cleanup runs in a defer so a panicking (or Goexit-ing) fn can never
	// leave the key poisoned with waiters parked forever: the key is
	// forgotten and done is closed on every exit path.
	defer func() {
		if rec := recover(); rec != nil {
			c.err = &httpError{
				code:       http.StatusServiceUnavailable,
				msg:        fmt.Sprintf("singleflight: leader panicked: %v, retry", rec),
				retryAfter: 1,
			}
			c.val = nil
			g.forget(key, c)
			panic(rec)
		}
		g.forget(key, c)
	}()
	// Pre-poison the result: a leader that exits without ever returning from
	// fn (runtime.Goexit) hands waiters this error instead of a nil/nil.
	c.err = errFlightAbandoned

	c.val, c.err = fn()
	return c.val, c.err, false
}

// forget removes the call from the table and releases its waiters.
func (g *flightGroup) forget(key string, c *flightCall) {
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
}

// Waiting returns how many callers are currently blocked on in-flight calls.
func (g *flightGroup) Waiting() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.waiting
}
