package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	stenciltune "repro"
	"repro/internal/core"
	"repro/internal/stencil"
	"repro/internal/store"
	"repro/internal/tunespace"
)

// fixtureModelDir is the store root committed for the golden-format tests;
// it holds one artifact named "tiny".
const fixtureModelDir = "../store/testdata"

func newTestServer(t *testing.T) *Server {
	t.Helper()
	s, err := New(Config{ModelDir: fixtureModelDir, CacheSize: 256})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(s.Close)
	return s
}

func postJSON(t *testing.T, h http.Handler, path, body string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	var out map[string]any
	if w.Body.Len() > 0 {
		if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
			t.Fatalf("%s: undecodable response %q: %v", path, w.Body.String(), err)
		}
	}
	return w, out
}

func vectorFrom(t *testing.T, m map[string]any, field string) tunespace.Vector {
	t.Helper()
	b, ok := m[field].(map[string]any)
	if !ok {
		t.Fatalf("response has no %q object: %v", field, m)
	}
	iv := func(k string) int {
		f, _ := b[k].(float64)
		return int(f)
	}
	v := tunespace.Vector{Bx: iv("bx"), By: iv("by"), Bz: iv("bz"), U: iv("u"), C: iv("c"), K: iv("k")}
	if v.Bz == 0 {
		v.Bz = 1
	}
	if v.K == 0 {
		v.K = 1
	}
	return v
}

// TestTuneMatchesInProcessAndCaches is the train-once/serve-many acceptance
// path: the served /v1/tune answer for an unseen instance must equal what an
// in-process Tuner around the same stored model picks, the repeat request
// must be answered by the LRU with zero additional inference, and the
// counters must say so.
func TestTuneMatchesInProcessAndCaches(t *testing.T) {
	s := newTestServer(t)
	h := s.Handler()

	// 100³ is none of the training sizes (64/128/256) — an unseen instance.
	body := `{"model":"tiny","kernel":"laplacian","size":"100x100x100"}`
	w, resp := postJSON(t, h, "/v1/tune", body)
	if w.Code != http.StatusOK {
		t.Fatalf("tune: status %d: %v", w.Code, resp)
	}
	if got := w.Header().Get("X-Cache"); got != "miss" {
		t.Errorf("first request X-Cache = %q, want miss", got)
	}
	served := vectorFrom(t, resp, "best")

	art, err := store.LoadPath(fixtureModelDir + "/tiny")
	if err != nil {
		t.Fatal(err)
	}
	k, err := stencil.KernelByName("laplacian")
	if err != nil {
		t.Fatal(err)
	}
	q := stencil.Instance{Kernel: k, Size: stencil.Size3D(100, 100, 100)}
	want, _, err := core.New(art.Model).TunePredefined(q)
	if err != nil {
		t.Fatal(err)
	}
	if served != want {
		t.Errorf("served best %v differs from in-process tuner %v", served, want)
	}
	if n := s.MetricValue("inferences"); n != 1 {
		t.Errorf("inferences after first request = %d, want 1", n)
	}

	// Cached repeat: zero new inference.
	w2, resp2 := postJSON(t, h, "/v1/tune", body)
	if w2.Code != http.StatusOK {
		t.Fatalf("repeat tune: status %d", w2.Code)
	}
	if got := w2.Header().Get("X-Cache"); got != "hit" {
		t.Errorf("repeat request X-Cache = %q, want hit", got)
	}
	if v := vectorFrom(t, resp2, "best"); v != served {
		t.Errorf("cached answer %v differs from first %v", v, served)
	}
	if n := s.MetricValue("inferences"); n != 1 {
		t.Errorf("inferences after cached repeat = %d, want still 1", n)
	}
	if n := s.MetricValue("cache_hits"); n != 1 {
		t.Errorf("cache_hits = %d, want 1", n)
	}

	// Explicit "mode":"sim" normalizes to the same cache key as the default.
	w2b, _ := postJSON(t, h, "/v1/tune", `{"model":"tiny","kernel":"laplacian","size":"100x100x100","mode":"sim"}`)
	if got := w2b.Header().Get("X-Cache"); got != "hit" {
		t.Errorf("explicit mode=sim X-Cache = %q, want hit (mode normalization)", got)
	}

	// A different model name but identical kernel *structure* under another
	// name shares nothing across models; same model + renamed kernel does.
	renamed := `{"model":"tiny","kernel":{"name":"other","dtype":"double","offsets":[[0,0,0],[1,0,0],[-1,0,0],[0,1,0],[0,-1,0],[0,0,1],[0,0,-1]]},"size":"100x100x100"}`
	w3, _ := postJSON(t, h, "/v1/tune", renamed)
	if w3.Code != http.StatusOK {
		t.Fatalf("renamed kernel: status %d: %s", w3.Code, w3.Body.String())
	}
	if got := w3.Header().Get("X-Cache"); got != "hit" {
		t.Errorf("structurally identical kernel X-Cache = %q, want hit (structural cache key)", got)
	}
}

// TestCoalescing drives a thundering herd of identical uncached requests and
// asserts they collapse into exactly one inference, with every other request
// parked on the singleflight and answered with the shared bytes. Run under
// -race in CI.
func TestCoalescing(t *testing.T) {
	s := newTestServer(t)
	h := s.Handler()

	const herd = 20
	release := make(chan struct{})
	s.testHookInfer = func() { <-release }

	body := `{"model":"tiny","kernel":"gradient","size":"96x96x96"}`
	var wg sync.WaitGroup
	results := make([]string, herd)
	codes := make([]int, herd)
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := httptest.NewRequest(http.MethodPost, "/v1/tune", strings.NewReader(body))
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			codes[i] = w.Code
			results[i] = w.Body.String()
		}(i)
	}

	// Wait until every other request is parked behind the gated inference,
	// then release it.
	deadline := time.Now().Add(10 * time.Second)
	for s.FlightWaiting() < herd-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d requests coalesced before timeout", s.FlightWaiting(), herd-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	for i := 0; i < herd; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, codes[i], results[i])
		}
		if results[i] != results[0] {
			t.Errorf("request %d got different bytes than request 0", i)
		}
	}
	if n := s.MetricValue("inferences"); n != 1 {
		t.Errorf("herd of %d cost %d inferences, want exactly 1", herd, n)
	}
	if n := s.MetricValue("coalesced"); n != herd-1 {
		t.Errorf("coalesced = %d, want %d", n, herd-1)
	}
}

// TestCancelledLeaderDoesNotPoisonWaiters: when the flight leader's client
// vanishes mid-compute, a healthy coalesced waiter must retry under its own
// context and still get a 200, while the leader's request fails 503.
func TestCancelledLeaderDoesNotPoisonWaiters(t *testing.T) {
	s := newTestServer(t)
	h := s.Handler()

	started := make(chan struct{}, 2)
	release := make(chan struct{})
	var hookCalls atomic.Int64
	s.testHookInfer = func() {
		if hookCalls.Add(1) == 1 {
			started <- struct{}{}
			<-release // first (leader) inference held open until cancelled
		}
	}

	// topk makes the compute context-sensitive: a cancelled fan-out yields
	// +Inf sentinels and the handler refuses to serve the poisoned result.
	body := `{"model":"tiny","kernel":"divergence","size":"80x80x80","topk":4}`
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	defer cancelLeader()

	var wg sync.WaitGroup
	var leaderCode, waiterCode int
	wg.Add(1)
	go func() {
		defer wg.Done()
		req := httptest.NewRequest(http.MethodPost, "/v1/tune", strings.NewReader(body)).WithContext(leaderCtx)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		leaderCode = w.Code
	}()
	<-started // leader is inside its gated inference

	wg.Add(1)
	go func() {
		defer wg.Done()
		req := httptest.NewRequest(http.MethodPost, "/v1/tune", strings.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		waiterCode = w.Code
	}()
	deadline := time.Now().Add(10 * time.Second)
	for s.FlightWaiting() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never parked on the flight")
		}
		time.Sleep(time.Millisecond)
	}

	cancelLeader()
	close(release)
	wg.Wait()

	if leaderCode != http.StatusServiceUnavailable {
		t.Errorf("cancelled leader: status %d, want 503", leaderCode)
	}
	if waiterCode != http.StatusOK {
		t.Errorf("healthy waiter: status %d, want 200 via flight retry", waiterCode)
	}
	if n := s.MetricValue("flight_retries"); n != 1 {
		t.Errorf("flight_retries = %d, want 1", n)
	}
}

// TestTrainSaveServeEndToEnd exercises the full train-once/serve-many flow
// through the public API: train, SaveModel, serve the store, tune.
func TestTrainSaveServeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	dir := t.TempDir()
	model, _, err := stenciltune.Train(stenciltune.TrainOptions{TrainingPoints: 64, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := stenciltune.SaveModel(dir, "", model); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{ModelDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	names, def := s.Models()
	if def != "default" || len(names) != 1 {
		t.Fatalf("registry = %v default %q, want [default]", names, def)
	}

	w, resp := postJSON(t, s.Handler(), "/v1/tune", `{"kernel":"blur","size":"300x300"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("tune: status %d: %v", w.Code, resp)
	}
	served := vectorFrom(t, resp, "best")

	q := stenciltune.Instance{Kernel: mustKernel(t, "blur"), Size: stenciltune.Size2D(300, 300)}
	want, _, err := model.Tuner().TunePredefined(q)
	if err != nil {
		t.Fatal(err)
	}
	if served != want {
		t.Errorf("served %v, in-process tuner %v", served, want)
	}
}

func mustKernel(t *testing.T, name string) *stencil.Kernel {
	t.Helper()
	k, err := stencil.KernelByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestRankPredictConsistency(t *testing.T) {
	s := newTestServer(t)
	h := s.Handler()

	cands := `[{"bx":32,"by":32,"bz":4,"u":2,"c":2},{"bx":8,"by":512,"bz":2,"u":0,"c":1},{"bx":64,"by":16,"bz":8,"u":4,"c":4}]`
	w, rank := postJSON(t, h, "/v1/rank",
		`{"model":"tiny","kernel":"laplacian","size":"128x128x128","candidates":`+cands+`,"return_scores":true}`)
	if w.Code != http.StatusOK {
		t.Fatalf("rank: status %d: %v", w.Code, rank)
	}
	order, ok := rank["order"].([]any)
	if !ok || len(order) != 3 {
		t.Fatalf("rank order = %v, want 3 indices", rank["order"])
	}
	scores, ok := rank["scores"].([]any)
	if !ok || len(scores) != 3 {
		t.Fatalf("rank scores = %v, want 3 values", rank["scores"])
	}

	w2, pred := postJSON(t, h, "/v1/predict",
		`{"model":"tiny","kernel":"laplacian","size":"128x128x128","vectors":`+cands+`,"mode":"score"}`)
	if w2.Code != http.StatusOK {
		t.Fatalf("predict: status %d: %v", w2.Code, pred)
	}
	pvals := pred["values"].([]any)
	for i := range scores {
		if scores[i] != pvals[i] {
			t.Errorf("rank score[%d] = %v, predict score = %v", i, scores[i], pvals[i])
		}
	}
	// The best-ranked index must hold the highest score.
	bestIdx := int(order[0].(float64))
	for i := range pvals {
		if pvals[i].(float64) > pvals[bestIdx].(float64) {
			t.Errorf("order[0]=%d is not the argmax score", bestIdx)
		}
	}

	// Simulated runtime prediction: positive finite seconds, and repeat is
	// served from cache.
	w3, sim := postJSON(t, h, "/v1/predict",
		`{"model":"tiny","kernel":"laplacian","size":"128x128x128","vectors":`+cands+`,"mode":"sim"}`)
	if w3.Code != http.StatusOK {
		t.Fatalf("predict sim: status %d: %v", w3.Code, sim)
	}
	for i, v := range sim["values"].([]any) {
		if sec := v.(float64); sec <= 0 || sec > 1e6 {
			t.Errorf("simulated runtime[%d] = %v, want positive seconds", i, sec)
		}
	}
	w4, _ := postJSON(t, h, "/v1/predict",
		`{"model":"tiny","kernel":"laplacian","size":"128x128x128","vectors":`+cands+`,"mode":"sim"}`)
	if got := w4.Header().Get("X-Cache"); got != "hit" {
		t.Errorf("repeated predict X-Cache = %q, want hit", got)
	}
}

func TestModelsHealthzMetrics(t *testing.T) {
	s := newTestServer(t)
	h := s.Handler()

	get := func(path string) map[string]any {
		t.Helper()
		req := httptest.NewRequest(http.MethodGet, path, nil)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, w.Code)
		}
		var out map[string]any
		if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
			t.Fatalf("GET %s: bad JSON: %v", path, err)
		}
		return out
	}

	models := get("/v1/models")
	if models["default"] != "tiny" {
		t.Errorf("default model = %v, want tiny", models["default"])
	}
	list := models["models"].([]any)
	if len(list) != 1 {
		t.Fatalf("models list = %v, want 1 entry", list)
	}
	entry := list[0].(map[string]any)
	if entry["name"] != "tiny" || entry["dataset_fingerprint"] == "" || entry["content_hash"] == "" {
		t.Errorf("model entry lacks provenance: %v", entry)
	}

	health := get("/healthz")
	if health["status"] != "ok" {
		t.Errorf("healthz status = %v", health["status"])
	}
	if health["version"] == "" || health["go"] == "" {
		t.Errorf("healthz lacks build identity: %v", health)
	}

	postJSON(t, h, "/v1/tune", `{"model":"tiny","kernel":"edge","size":"256x256"}`)
	// The pre-observability flat JSON surface lives on at /debug/vars.
	vars := get("/debug/vars")
	mm := vars["stencilserve"].(map[string]any)
	if mm["requests"].(float64) < 1 || mm["inferences"].(float64) < 1 {
		t.Errorf("legacy metrics after a request = %v", mm)
	}
}

func TestRequestErrors(t *testing.T) {
	s := newTestServer(t)
	h := s.Handler()

	cases := []struct {
		path, body string
		code       int
	}{
		{"/v1/tune", `{"model":"nope","kernel":"laplacian","size":"64x64x64"}`, http.StatusNotFound},
		{"/v1/tune", `{"model":"tiny","kernel":"not-a-kernel","size":"64x64x64"}`, http.StatusBadRequest},
		{"/v1/tune", `{"model":"tiny","kernel":"laplacian","size":"banana"}`, http.StatusBadRequest},
		{"/v1/tune", `{"model":"tiny","kernel":"laplacian","size":"2x2x2"}`, http.StatusBadRequest}, // too small for halo
		{"/v1/predict", `{"model":"tiny","kernel":"laplacian","size":"64x64x64"}`, http.StatusBadRequest},
		{"/v1/predict", `{"model":"tiny","kernel":"laplacian","size":"64x64x64","vectors":[{"bx":9999,"by":2,"bz":2,"u":0,"c":1}]}`, http.StatusBadRequest},
		{"/v1/tune", `not json`, http.StatusBadRequest},
		{"/v1/tune", `{"model":"tiny","kernel":"laplacian","size":"64x64x64","mode":"banana"}`, http.StatusBadRequest},
		{"/v1/predict", `{"model":"tiny","kernel":"laplacian","size":"64x64x64","vectors":[{"bx":4,"by":4,"bz":4,"u":0,"c":1}],"mode":"banana"}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		w, _ := postJSON(t, h, c.path, c.body)
		if w.Code != c.code {
			t.Errorf("POST %s %q: status %d, want %d", c.path, c.body, w.Code, c.code)
		}
	}

	req := httptest.NewRequest(http.MethodGet, "/v1/tune", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/tune: status %d, want 405", w.Code)
	}

	// Errors are never cached: a failed request repeated still fails.
	w2, _ := postJSON(t, h, "/v1/tune", `{"model":"nope","kernel":"laplacian","size":"64x64x64"}`)
	if w2.Code != http.StatusNotFound {
		t.Errorf("repeated bad request: status %d, want 404", w2.Code)
	}
}

// TestMeasurePredict runs one real measured prediction through the shared
// executor (serialized MeasureBatch) — small grid, single vector.
func TestMeasurePredict(t *testing.T) {
	if testing.Short() {
		t.Skip("real execution")
	}
	s := newTestServer(t)
	h := s.Handler()
	w, resp := postJSON(t, h, "/v1/predict",
		`{"model":"tiny","kernel":"blur","size":"64x64","vectors":[{"bx":16,"by":16,"u":0,"c":1}],"mode":"measure"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("measure predict: status %d: %v", w.Code, resp)
	}
	vals := resp["values"].([]any)
	if sec := vals[0].(float64); sec <= 0 {
		t.Errorf("measured runtime = %v, want > 0", sec)
	}
	if n := s.MetricValue("measure_requests"); n != 1 {
		t.Errorf("measure_requests = %d, want 1", n)
	}
}

// ---------------------------------------------------------------------------
// Benchmarks (rendered into BENCH_serve.json by CI)

func benchServer(b *testing.B) *Server {
	b.Helper()
	s, err := New(Config{ModelDir: fixtureModelDir, CacheSize: 8192})
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	b.Cleanup(s.Close)
	return s
}

// BenchmarkServeTuneCached measures the steady-state hot path: an identical
// tune request answered from the sharded LRU.
func BenchmarkServeTuneCached(b *testing.B) {
	s := benchServer(b)
	h := s.Handler()
	body := `{"model":"tiny","kernel":"laplacian","size":"128x128x128"}`
	// Prime the cache.
	req := httptest.NewRequest(http.MethodPost, "/v1/tune", strings.NewReader(body))
	h.ServeHTTP(httptest.NewRecorder(), req)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/tune", strings.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("status %d", w.Code)
		}
	}
}

// BenchmarkServeTuneCold measures the miss path: every request is a new
// (kernel, size) and pays a full predefined-set ranking inference.
func BenchmarkServeTuneCold(b *testing.B) {
	s := benchServer(b)
	h := s.Handler()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Unique size per iteration => guaranteed cache miss.
		body := fmt.Sprintf(`{"model":"tiny","kernel":"laplacian","size":"%dx128x128"}`, 64+i)
		req := httptest.NewRequest(http.MethodPost, "/v1/tune", strings.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("status %d: %s", w.Code, w.Body.String())
		}
	}
}
