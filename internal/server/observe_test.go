package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"repro/internal/store"
	"repro/internal/svmrank"
	"repro/internal/wal"
)

// walServer builds a server whose observations land in a fresh WAL under a
// temp dir; the returned read function closes the server (flushing the sink)
// and reads every durable record back.
func walServer(t *testing.T, cfg Config) (*Server, func() []wal.Record) {
	t.Helper()
	dir := t.TempDir()
	l, rep, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("fresh WAL dirty: %+v", rep)
	}
	if cfg.ModelDir == "" {
		cfg.ModelDir = fixtureModelDir
	}
	cfg.WAL = l
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	closed := false
	read := func() []wal.Record {
		t.Helper()
		if !closed {
			closed = true
			s.Close()
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
		}
		recs, rrep, err := wal.ReadAll(dir)
		if err != nil {
			t.Fatal(err)
		}
		if !rrep.Clean() {
			t.Fatalf("WAL dirty after clean shutdown: %+v", rrep)
		}
		return recs
	}
	t.Cleanup(func() { read() })
	return s, read
}

func TestObserveRequiresWAL(t *testing.T) {
	s := newTestServer(t) // no WAL configured
	w, out := postJSON(t, s.Handler(), "/v1/observe",
		`{"kernel":"laplacian","size":"64x64x64","observations":[{"vector":{"bx":32,"by":8,"bz":4,"u":2,"c":1},"runtime_seconds":0.01}]}`)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("observe without WAL: %d %v, want 503", w.Code, out)
	}
}

func TestObserveAppendsToWAL(t *testing.T) {
	s, read := walServer(t, Config{Machine: "server-host"})
	body := `{"kernel":"laplacian","size":"64x64x64","machine":"client-a","observations":[
		{"vector":{"bx":32,"by":8,"bz":4,"u":2,"c":1},"runtime_seconds":0.010},
		{"vector":{"bx":16,"by":16,"bz":2,"u":1,"c":1},"runtime_seconds":0.014}]}`
	w, out := postJSON(t, s.Handler(), "/v1/observe", body)
	if w.Code != http.StatusAccepted {
		t.Fatalf("observe: %d %v, want 202", w.Code, out)
	}
	if acc, _ := out["accepted"].(float64); acc != 2 {
		t.Fatalf("accepted = %v, want 2", out["accepted"])
	}
	if drop, _ := out["dropped"].(float64); drop != 0 {
		t.Fatalf("dropped = %v, want 0", out["dropped"])
	}

	recs := read()
	if len(recs) != 2 {
		t.Fatalf("WAL holds %d records, want 2", len(recs))
	}
	for i, r := range recs {
		if r.Source != "observe" || r.Machine != "client-a" {
			t.Fatalf("record %d source/machine = %q/%q, want observe/client-a", i, r.Source, r.Machine)
		}
		if r.Fingerprint == "" || r.Kernel != "laplacian" {
			t.Fatalf("record %d lost kernel identity: %+v", i, r)
		}
		if err := r.Validate(); err != nil {
			t.Fatalf("record %d invalid after round-trip: %v", i, err)
		}
	}
	if recs[0].Tuning().Bx != 32 || recs[1].Tuning().Bx != 16 {
		t.Fatalf("tuning vectors did not round-trip: %v %v", recs[0].Vector, recs[1].Vector)
	}
}

func TestObserveRejectsPoisonWithoutIngesting(t *testing.T) {
	s, read := walServer(t, Config{})
	h := s.Handler()
	bad := []string{
		// Non-positive and absurd runtimes.
		`{"kernel":"laplacian","size":"64x64x64","observations":[{"vector":{"bx":32,"by":8,"bz":4,"u":2,"c":1},"runtime_seconds":0}]}`,
		`{"kernel":"laplacian","size":"64x64x64","observations":[{"vector":{"bx":32,"by":8,"bz":4,"u":2,"c":1},"runtime_seconds":-0.5}]}`,
		`{"kernel":"laplacian","size":"64x64x64","observations":[{"vector":{"bx":32,"by":8,"bz":4,"u":2,"c":1},"runtime_seconds":90000}]}`,
		// Invalid tuning vector.
		`{"kernel":"laplacian","size":"64x64x64","observations":[{"vector":{"bx":0,"by":0,"bz":0,"u":0,"c":0},"runtime_seconds":0.01}]}`,
		// A valid observation does not smuggle in an invalid sibling.
		`{"kernel":"laplacian","size":"64x64x64","observations":[
			{"vector":{"bx":32,"by":8,"bz":4,"u":2,"c":1},"runtime_seconds":0.01},
			{"vector":{"bx":32,"by":8,"bz":4,"u":2,"c":1},"runtime_seconds":-1}]}`,
		// No observations at all.
		`{"kernel":"laplacian","size":"64x64x64","observations":[]}`,
	}
	for i, body := range bad {
		if w, out := postJSON(t, h, "/v1/observe", body); w.Code != http.StatusBadRequest {
			t.Fatalf("bad observation %d: %d %v, want 400", i, w.Code, out)
		}
	}
	if recs := read(); len(recs) != 0 {
		t.Fatalf("rejected observations reached the WAL: %d records", len(recs))
	}
}

func TestMeasurePredictLogsToWAL(t *testing.T) {
	s, read := walServer(t, Config{Machine: "measurer-1"})
	body := `{"model":"tiny","kernel":"laplacian","size":"16x16x16","mode":"measure",
		"vectors":[{"bx":8,"by":4,"bz":2,"u":1,"c":1},{"bx":4,"by":4,"bz":4,"u":1,"c":1}]}`
	w, out := postJSON(t, s.Handler(), "/v1/predict", body)
	if w.Code != http.StatusOK {
		t.Fatalf("measure predict: %d %v", w.Code, out)
	}
	// A second identical request answers from cache and must not re-log.
	if w2, _ := postJSON(t, s.Handler(), "/v1/predict", body); w2.Header().Get("X-Cache") != "hit" {
		t.Fatalf("second measure predict X-Cache = %q, want hit", w2.Header().Get("X-Cache"))
	}

	recs := read()
	if len(recs) != 2 {
		t.Fatalf("WAL holds %d records, want 2 (one per measured vector, none from the cache hit)", len(recs))
	}
	for i, r := range recs {
		if r.Source != "measure" || r.Machine != "measurer-1" {
			t.Fatalf("record %d source/machine = %q/%q", i, r.Source, r.Machine)
		}
		if !(r.RuntimeSeconds > 0) {
			t.Fatalf("record %d runtime %v", i, r.RuntimeSeconds)
		}
	}
	if s.MetricValue("wal_appended") != 2 || s.MetricValue("wal_dropped") != 0 {
		t.Fatalf("wal metrics appended=%d dropped=%d, want 2/0",
			s.MetricValue("wal_appended"), s.MetricValue("wal_dropped"))
	}
}

// ---------------------------------------------------------------------------
// Hot swap

// swapStore seeds a temp store with the fixture model under the given names,
// each with slightly different weights so content hashes differ.
func swapStore(t *testing.T, names ...string) (string, *store.Store) {
	t.Helper()
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	base, err := store.LoadPath(fixtureModelDir + "/tiny")
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range names {
		saveVariant(t, st, base, name, float64(i))
	}
	return dir, st
}

func saveVariant(t *testing.T, st *store.Store, base *store.Artifact, name string, bump float64) {
	t.Helper()
	w := append([]float64(nil), base.Model.W...)
	w[0] += bump * 0.125
	a := *base
	a.Name = name
	a.Model = &svmrank.Model{W: w, C: base.Model.C}
	if err := st.Save(&a); err != nil {
		t.Fatal(err)
	}
}

func TestReloadSwapsRegistryAndCache(t *testing.T) {
	dir, st := swapStore(t, "default")
	s, err := New(Config{ModelDir: dir, CacheSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	h := s.Handler()
	if got := s.RegistryVersion(); got != 1 {
		t.Fatalf("fresh registry version %d, want 1", got)
	}
	body := `{"kernel":"laplacian","size":"64x64x64"}`
	if w, _ := postJSON(t, h, "/v1/tune", body); w.Header().Get("X-Cache") != "miss" {
		t.Fatalf("first tune X-Cache = %q", w.Header().Get("X-Cache"))
	}
	if w, _ := postJSON(t, h, "/v1/tune", body); w.Header().Get("X-Cache") != "hit" {
		t.Fatalf("second tune X-Cache = %q", w.Header().Get("X-Cache"))
	}

	// Re-save the model with different weights and hot-swap.
	base, err := st.Load("default")
	if err != nil {
		t.Fatal(err)
	}
	saveVariant(t, st, base, "default", 7)
	v, err := s.ReloadModels()
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 || s.RegistryVersion() != 2 {
		t.Fatalf("version after reload = %d/%d, want 2", v, s.RegistryVersion())
	}
	// The swapped model must not answer from its predecessor's cache: the
	// content hash in the key forces a fresh inference.
	if w, _ := postJSON(t, h, "/v1/tune", body); w.Header().Get("X-Cache") != "miss" {
		t.Fatalf("post-swap tune X-Cache = %q, want miss", w.Header().Get("X-Cache"))
	}

	wm, out := getJSON(t, h, "/v1/models")
	if wm.Code != http.StatusOK {
		t.Fatalf("/v1/models: %d", wm.Code)
	}
	if rv, _ := out["registry_version"].(float64); int64(rv) != 2 {
		t.Fatalf("/v1/models registry_version = %v, want 2", out["registry_version"])
	}
}

// TestInFlightRequestSurvivesSwap pins a request mid-inference, swaps the
// registry underneath it, and checks the request completes cleanly on the
// generation it started with.
func TestInFlightRequestSurvivesSwap(t *testing.T) {
	dir, st := swapStore(t, "default")
	s, err := New(Config{ModelDir: dir, CacheSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	h := s.Handler()

	entered := make(chan struct{})
	release := make(chan struct{})
	s.testHookInfer = func() {
		close(entered)
		<-release
	}
	done := make(chan int, 1)
	go func() {
		w, _ := postJSON(t, h, "/v1/tune", `{"kernel":"laplacian","size":"64x64x64"}`)
		done <- w.Code
	}()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("request never reached inference")
	}
	// Swap while the request is parked inside its inference.
	base, err := st.Load("default")
	if err != nil {
		t.Fatal(err)
	}
	saveVariant(t, st, base, "default", 3)
	if _, err := s.ReloadModels(); err != nil {
		t.Fatal(err)
	}
	close(release)
	select {
	case code := <-done:
		if code != http.StatusOK {
			t.Fatalf("in-flight request failed with %d after swap", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never completed")
	}
}

func TestRollbackRestoresPreviousModel(t *testing.T) {
	dir, st := swapStore(t, "alpha", "beta")
	if err := st.SetCurrent("alpha", store.Promotion{Reason: "manual"}); err != nil {
		t.Fatal(err)
	}
	if err := st.SetCurrent("beta", store.Promotion{Reason: "canary-pass"}); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{ModelDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	if _, def := s.Models(); def != "beta" {
		t.Fatalf("default = %q, want the promoted beta", def)
	}

	name, v, err := s.RollbackModel()
	if err != nil {
		t.Fatal(err)
	}
	if name != "alpha" || v != 2 {
		t.Fatalf("rollback -> %q v%d, want alpha v2", name, v)
	}
	if _, def := s.Models(); def != "alpha" {
		t.Fatalf("default after rollback = %q, want alpha", def)
	}
	// The rollback is itself a recorded promotion.
	_, out := getJSON(t, s.Handler(), "/v1/models")
	proms, _ := out["promotions"].([]any)
	if len(proms) != 3 {
		t.Fatalf("promotion history %v, want 3 entries", out["promotions"])
	}
	last, _ := proms[2].(map[string]any)
	if last["reason"] != "rollback" || last["name"] != "alpha" || last["prev"] != "beta" {
		t.Fatalf("last promotion %v, want rollback alpha<-beta", last)
	}
	// A second rollback returns to beta (the entry before says Prev=alpha...
	// the rollback entry's Prev is beta).
	name, _, err = s.RollbackModel()
	if err != nil || name != "beta" {
		t.Fatalf("second rollback -> %q %v, want beta", name, err)
	}
}

// TestReloadFailureKeepsServing wipes the store after startup: Reload must
// fail and the running generation must keep answering.
func TestReloadFailureKeepsServing(t *testing.T) {
	dir, st := swapStore(t, "default")
	s, err := New(Config{ModelDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	// Corrupt the only artifact on disk.
	mutateArtifactFile(t, st.Dir(), "default")
	if _, err := s.ReloadModels(); err == nil {
		t.Fatal("reload over a corrupt store reported success")
	}
	if v := s.RegistryVersion(); v != 1 {
		t.Fatalf("failed reload bumped version to %d", v)
	}
	w, out := postJSON(t, s.Handler(), "/v1/tune", `{"kernel":"laplacian","size":"64x64x64"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("serving broke after failed reload: %d %v", w.Code, out)
	}
}

func getJSON(t *testing.T, h http.Handler, path string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	var out map[string]any
	if w.Body.Len() > 0 {
		if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
			t.Fatalf("%s: undecodable response %q: %v", path, w.Body.String(), err)
		}
	}
	return w, out
}

func mutateArtifactFile(t *testing.T, dir, name string) {
	t.Helper()
	path := fmt.Sprintf("%s/%s/model.json", dir, name)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x20
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}
