package server

import (
	"net/http"
	"sync/atomic"
)

// Admission control: the two-queue gate of the tuning service.
//
// The server answers two very different kinds of traffic. Score/sim
// requests are pure inference — microseconds, fully parallel, usually a
// cache hit. Measure-mode requests run real stencil executions that
// serialize on the shared exec.Measurer (interleaved wall-clock timings
// would corrupt each other), so each one can hold the measurer for tens of
// milliseconds to seconds. Without a gate, a burst of measure requests
// piles unbounded goroutines onto the measurer's lock: memory grows with
// the backlog, every queued client eventually times out anyway, and the
// scheduler pressure bleeds into the cheap path's tail latency.
//
// The gate gives measure work its own bounded queue: at most
// MeasureQueueDepth requests may be queued-or-running at once, and
// arrivals beyond that are shed immediately with 503 + Retry-After —
// an honest "come back later" instead of a doomed wait. Cheap traffic
// never touches the gate, so a measure flood cannot starve it, and the
// gate sits inside the cache/coalescing layers, so cached or coalesced
// measure responses stay free.
//
// admitMeasure reserves a slot (release returns it); the depth and shed
// counts surface in /metrics and /readyz.

// errMeasureQueueFull is the shed response; Retry-After = 1s is honest for
// a queue whose occupants are sub-second measurements.
var errMeasureQueueFull = &httpError{
	code:       http.StatusServiceUnavailable,
	msg:        "measure queue full, try again later",
	retryAfter: 1,
}

// admitMeasure claims a slot in the measure queue, or fails fast with a
// shed error when the queue is at capacity. The returned release must be
// called exactly once when the measurement work is done.
func (s *Server) admitMeasure() (release func(), err error) {
	select {
	case s.measureSlots <- struct{}{}:
		s.m.measureAdmitted.Inc()
		var released atomic.Bool
		return func() {
			if released.CompareAndSwap(false, true) {
				<-s.measureSlots
			}
		}, nil
	default:
		s.m.measureShed.Inc()
		return nil, errMeasureQueueFull
	}
}

// MeasureQueueDepth reports how many measure-mode requests currently hold
// queue slots (queued or executing).
func (s *Server) MeasureQueueDepth() int { return len(s.measureSlots) }

// MeasureQueueCapacity reports the configured bound.
func (s *Server) MeasureQueueCapacity() int { return cap(s.measureSlots) }
