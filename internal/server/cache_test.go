package server

import (
	"fmt"
	"hash/fnv"
	"testing"
)

// TestShardHashMatchesStdlibFNV pins the inlined FNV-1a to hash/fnv's
// New32a, so the rewrite cannot silently re-shard existing keyspaces.
func TestShardHashMatchesStdlibFNV(t *testing.T) {
	keys := []string{
		"", "a", "tune|tiny@abc|deadbeef|100x100x100|0|sim",
		"rank|m@h|fp|64x64x64|vs|true",
		"predict|model@hash|fingerprint|128x128|sethash|measure",
	}
	for i := 0; i < 64; i++ {
		keys = append(keys, fmt.Sprintf("key-%d-%x", i, i*2654435761))
	}
	for _, k := range keys {
		h := fnv.New32a()
		h.Write([]byte(k))
		if got, want := fnv1a32(k), h.Sum32(); got != want {
			t.Fatalf("fnv1a32(%q) = %#x, want stdlib %#x", k, got, want)
		}
	}
}

// TestCacheGetPutAllocFree asserts the perf contract of the hot cached path:
// shard selection plus Get on a resident key allocates nothing. (Put of a
// new entry legitimately allocates the entry and list element.)
func TestCacheGetPutAllocFree(t *testing.T) {
	c := newLRU(256)
	key := "tune|tiny@contenthash|kernelfingerprint|100x100x100|0|sim"
	c.Put(key, []byte("cached response"))

	if n := testing.AllocsPerRun(1000, func() {
		if _, ok := c.Get(key); !ok {
			t.Fatal("resident key missed")
		}
	}); n != 0 {
		t.Fatalf("Get on a resident key allocates %.1f times per op, want 0", n)
	}
	val := []byte("cached response")
	if n := testing.AllocsPerRun(1000, func() {
		c.Put(key, val) // overwrite path: refresh recency, no new entry
	}); n != 0 {
		t.Fatalf("Put on a resident key allocates %.1f times per op, want 0", n)
	}
}

// BenchmarkCacheShardedGet is the microbenchmark behind the cached-tune hot
// path: one LRU hit, including shard selection. Run with -benchmem; the fix
// target is 0 allocs/op (it was 2 allocs/op — hasher + key copy — before).
func BenchmarkCacheShardedGet(b *testing.B) {
	c := newLRU(4096)
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("tune|tiny@%032x|%032x|100x100x100|0|sim", i, i*7)
		c.Put(keys[i], []byte("cached response body of a realistic size: ~200 bytes of JSON"))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get(keys[i%len(keys)]); !ok {
			b.Fatal("miss")
		}
	}
}
