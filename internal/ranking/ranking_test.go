package ranking

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestRanksSimple(t *testing.T) {
	// Runtimes: smaller is better (rank 1).
	scores := []float64{12, 13, 20}
	want := []int{1, 2, 3}
	got := Ranks(scores)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
}

func TestRanksUnsortedInput(t *testing.T) {
	scores := []float64{36, 10, 35}
	want := []int{3, 1, 2} // matches Table I instance q2 ordering
	got := Ranks(scores)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
}

func TestRanksTies(t *testing.T) {
	scores := []float64{5, 3, 3, 7}
	got := Ranks(scores)
	want := []int{3, 1, 1, 4} // competition ranking: tie at 1, next is 3
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
}

func TestRanksEmpty(t *testing.T) {
	if got := Ranks(nil); len(got) != 0 {
		t.Errorf("Ranks(nil) = %v", got)
	}
}

func TestKendallTauPerfectAgreement(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	if got := KendallTau(a, a); got != 1 {
		t.Errorf("τ(r,r) = %v, want 1", got)
	}
}

func TestKendallTauPerfectDisagreement(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{5, 4, 3, 2, 1}
	if got := KendallTau(a, b); got != -1 {
		t.Errorf("τ(r,rev r) = %v, want -1", got)
	}
}

func TestKendallTauKnownValue(t *testing.T) {
	// Classic example: one discordant pair among C(4,2)=6.
	a := []float64{1, 2, 3, 4}
	b := []float64{1, 2, 4, 3}
	want := (5.0 - 1.0) / 6.0
	if got := KendallTau(a, b); math.Abs(got-want) > 1e-12 {
		t.Errorf("τ = %v, want %v", got, want)
	}
}

func TestKendallTauMonotoneTransformInvariant(t *testing.T) {
	a := []float64{3, 1, 4, 1.5, 9, 2.6}
	b := make([]float64, len(a))
	for i, v := range a {
		b[i] = math.Exp(v) // strictly increasing transform
	}
	if got := KendallTau(a, b); got != 1 {
		t.Errorf("τ under monotone transform = %v, want 1", got)
	}
}

func TestKendallTauDegenerate(t *testing.T) {
	if got := KendallTau([]float64{1}, []float64{2}); got != 0 {
		t.Errorf("singleton τ = %v, want 0", got)
	}
	if got := KendallTau(nil, nil); got != 0 {
		t.Errorf("empty τ = %v, want 0", got)
	}
	// All ties in one slice: no orderable pairs.
	if got := KendallTau([]float64{1, 1, 1}, []float64{1, 2, 3}); got != 0 {
		t.Errorf("all-ties τ = %v, want 0", got)
	}
}

func TestKendallTauPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	KendallTau([]float64{1}, []float64{1, 2})
}

func TestKendallTauBAgreesWithoutTies(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(20)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		ta, tb := KendallTau(a, b), KendallTauB(a, b)
		if math.Abs(ta-tb) > 1e-12 {
			t.Fatalf("τ=%v τb=%v differ without ties", ta, tb)
		}
	}
}

func TestKendallTauBPenalizesTies(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{1, 1, 2, 3} // one tie in b
	plain := KendallTau(a, b)
	taub := KendallTauB(a, b)
	if plain != 1 {
		t.Errorf("plain τ ignoring ties = %v, want 1", plain)
	}
	if taub >= 1 {
		t.Errorf("τ-b with ties = %v, want < 1", taub)
	}
}

func TestPropertyTauSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = float64(rng.Intn(10))
			b[i] = float64(rng.Intn(10))
		}
		return math.Abs(KendallTau(a, b)-KendallTau(b, a)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyTauAntisymmetricUnderNegation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		a := make([]float64, n)
		b := make([]float64, n)
		neg := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
			neg[i] = -b[i]
		}
		return math.Abs(KendallTau(a, b)+KendallTau(a, neg)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyTauBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = float64(rng.Intn(5))
			b[i] = float64(rng.Intn(5))
		}
		tau := KendallTau(a, b)
		return tau >= -1 && tau <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantile(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p, want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {-0.5, 1}, {1.5, 5},
	}
	for _, c := range cases {
		if got := Quantile(s, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Quantile([]float64{7}, 0.5); got != 7 {
		t.Errorf("singleton quantile = %v", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
	// Interpolation between ranks.
	if got := Quantile([]float64{0, 10}, 0.25); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("interpolated quantile = %v, want 2.5", got)
	}
}

func TestSummarize(t *testing.T) {
	sample := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	s := Summarize(sample)
	if s.N != 8 || s.Min != 2 || s.Max != 9 {
		t.Errorf("N/Min/Max wrong: %+v", s)
	}
	if math.Abs(s.Mean-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", s.Mean)
	}
	if math.Abs(s.Median-4.5) > 1e-12 {
		t.Errorf("Median = %v, want 4.5", s.Median)
	}
	if s.Q1 > s.Median || s.Median > s.Q3 {
		t.Errorf("quartiles out of order: %+v", s)
	}
}

func TestSummarizeOutliers(t *testing.T) {
	sample := []float64{1, 1.1, 1.2, 1.05, 0.95, 1.15, 50} // 50 is a wild outlier
	s := Summarize(sample)
	if len(s.Outliers) != 1 || s.Outliers[0] != 50 {
		t.Errorf("Outliers = %v, want [50]", s.Outliers)
	}
	if s.WhiskerHi >= 50 {
		t.Errorf("whisker %v should exclude the outlier", s.WhiskerHi)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 {
		t.Errorf("empty summary N = %d", s.N)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	sample := []float64{3, 1, 2}
	Summarize(sample)
	if sample[0] != 3 || sample[1] != 1 || sample[2] != 2 {
		t.Error("Summarize mutated its input")
	}
}

func TestKDEIntegratesToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sample := make([]float64, 200)
	for i := range sample {
		sample[i] = rng.NormFloat64()
	}
	// Integrate over a wide grid with the trapezoid rule.
	const n = 2000
	at := make([]float64, n)
	for i := range at {
		at[i] = -8 + 16*float64(i)/float64(n-1)
	}
	dens := KDE(sample, at)
	var integral float64
	for i := 1; i < n; i++ {
		integral += 0.5 * (dens[i] + dens[i-1]) * (at[i] - at[i-1])
	}
	if math.Abs(integral-1) > 0.02 {
		t.Errorf("KDE integral = %v, want ~1", integral)
	}
}

func TestKDEPeaksNearMode(t *testing.T) {
	sample := []float64{0.5, 0.5, 0.5, 0.52, 0.48}
	at := []float64{-1, 0, 0.5, 1, 2}
	dens := KDE(sample, at)
	maxIdx := 0
	for i, d := range dens {
		if d > dens[maxIdx] {
			maxIdx = i
		}
	}
	if at[maxIdx] != 0.5 {
		t.Errorf("KDE mode at %v, want 0.5", at[maxIdx])
	}
}

func TestKDEEmptySample(t *testing.T) {
	dens := KDE(nil, []float64{0, 1})
	for _, d := range dens {
		if d != 0 {
			t.Errorf("empty-sample KDE = %v", dens)
		}
	}
}

func TestPropertyRanksArePermutationConsistent(t *testing.T) {
	// Ranks of distinct scores are a permutation of 1..n and order-consistent.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		scores := rng.Perm(n)
		fs := make([]float64, n)
		for i, v := range scores {
			fs[i] = float64(v)
		}
		ranks := Ranks(fs)
		seen := make([]bool, n+1)
		for _, r := range ranks {
			if r < 1 || r > n || seen[r] {
				return false
			}
			seen[r] = true
		}
		// Order consistency.
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return fs[idx[a]] < fs[idx[b]] })
		for pos, i := range idx {
			if ranks[i] != pos+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
