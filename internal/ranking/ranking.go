// Package ranking provides the ordinal machinery of the paper: rank
// assignment within partial rankings, the Kendall τ rank-correlation
// coefficient used throughout Section VI-B, and the distribution statistics
// (quartiles, medians, outliers, kernel density estimates) behind the box and
// violin plots of Figs. 6 and 7.
package ranking

import (
	"fmt"
	"math"
	"sort"
)

// Ranks assigns competition ranks (1 = best) to the given scores, where
// *smaller* scores rank first (scores are runtimes). Ties receive the same
// rank; the next distinct value skips the tied count ("1224" ranking).
func Ranks(scores []float64) []int {
	n := len(scores)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return scores[order[a]] < scores[order[b]] })
	ranks := make([]int, n)
	for pos := 0; pos < n; pos++ {
		i := order[pos]
		if pos > 0 && scores[i] == scores[order[pos-1]] {
			ranks[i] = ranks[order[pos-1]]
		} else {
			ranks[i] = pos + 1
		}
	}
	return ranks
}

// KendallTau computes the Kendall rank correlation coefficient between two
// score slices of equal length, following the paper's definition
// τ = (Con − Dis) / (Con + Dis): strictly concordant and discordant pairs
// only; pairs tied in either slice contribute to neither count. It returns 0
// for degenerate inputs (fewer than two items, or all pairs tied).
func KendallTau(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("ranking: length mismatch %d vs %d", len(a), len(b)))
	}
	n := len(a)
	if n < 2 {
		return 0
	}
	var con, dis int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			da := sign(a[i] - a[j])
			db := sign(b[i] - b[j])
			if da == 0 || db == 0 {
				continue
			}
			if da == db {
				con++
			} else {
				dis++
			}
		}
	}
	if con+dis == 0 {
		return 0
	}
	return float64(con-dis) / float64(con+dis)
}

// KendallTauB computes the τ-b variant with the standard tie correction
// τ_b = (Con − Dis) / sqrt((n0 − n1)(n0 − n2)), which penalizes ties instead
// of ignoring them. Used by tests as a cross-check.
func KendallTauB(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("ranking: length mismatch %d vs %d", len(a), len(b)))
	}
	n := len(a)
	if n < 2 {
		return 0
	}
	var con, dis, tieA, tieB int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			da := sign(a[i] - a[j])
			db := sign(b[i] - b[j])
			switch {
			case da == 0 && db == 0:
				// Joint tie: excluded from all counts.
			case da == 0:
				tieA++
			case db == 0:
				tieB++
			case da == db:
				con++
			default:
				dis++
			}
		}
	}
	denom := math.Sqrt(float64(con+dis+tieA) * float64(con+dis+tieB))
	if denom == 0 {
		return 0
	}
	return float64(con-dis) / denom
}

func sign(v float64) int {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}

// Summary holds the five-number summary plus outliers of a τ sample, the
// data behind one box of the Fig. 7 box plot.
type Summary struct {
	N                    int
	Min, Max             float64
	Q1, Median, Q3       float64
	Mean                 float64
	IQR                  float64
	WhiskerLo, WhiskerHi float64 // 1.5·IQR whiskers clamped to data
	Outliers             []float64
}

// Summarize computes the summary of a non-empty sample.
func Summarize(sample []float64) Summary {
	if len(sample) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), sample...)
	sort.Float64s(s)
	var sum float64
	for _, v := range s {
		sum += v
	}
	out := Summary{
		N:      len(s),
		Min:    s[0],
		Max:    s[len(s)-1],
		Q1:     Quantile(s, 0.25),
		Median: Quantile(s, 0.5),
		Q3:     Quantile(s, 0.75),
		Mean:   sum / float64(len(s)),
	}
	out.IQR = out.Q3 - out.Q1
	loFence := out.Q1 - 1.5*out.IQR
	hiFence := out.Q3 + 1.5*out.IQR
	out.WhiskerLo, out.WhiskerHi = out.Max, out.Min
	for _, v := range s {
		if v < loFence || v > hiFence {
			out.Outliers = append(out.Outliers, v)
			continue
		}
		if v < out.WhiskerLo {
			out.WhiskerLo = v
		}
		if v > out.WhiskerHi {
			out.WhiskerHi = v
		}
	}
	return out
}

// Quantile returns the p-quantile (0 ≤ p ≤ 1) of an ascending-sorted sample
// using linear interpolation between closest ranks.
func Quantile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	pos := p * float64(n-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// KDE evaluates a Gaussian kernel density estimate of the sample at the
// given evaluation points — the violin outline of Fig. 7. Bandwidth follows
// Silverman's rule of thumb, with a floor for degenerate samples.
func KDE(sample, at []float64) []float64 {
	out := make([]float64, len(at))
	n := len(sample)
	if n == 0 {
		return out
	}
	var mean, sq float64
	for _, v := range sample {
		mean += v
	}
	mean /= float64(n)
	for _, v := range sample {
		d := v - mean
		sq += d * d
	}
	std := math.Sqrt(sq / float64(n))
	h := 1.06 * std * math.Pow(float64(n), -0.2)
	if h < 1e-3 {
		h = 1e-3
	}
	norm := 1 / (float64(n) * h * math.Sqrt(2*math.Pi))
	for i, x := range at {
		var acc float64
		for _, v := range sample {
			z := (x - v) / h
			acc += math.Exp(-0.5 * z * z)
		}
		out[i] = acc * norm
	}
	return out
}
