// Package faultinject is the chaos layer of the resilience suite: an
// httptest-grade reverse proxy that injects the failure modes a tuning
// service meets in production — added latency, abrupt connection drops,
// 5xx bursts and slow-loris response bodies — deterministically from a
// seed, so a test that passes once passes always and a failure replays
// exactly.
//
// The proxy wraps any http.Handler (typically server.Handler() behind the
// middleware chain) and draws one fault decision per request from a seeded
// PRNG guarded by a mutex: with concurrent clients the *assignment* of
// faults to requests varies by arrival order, but the fault sequence
// itself — and therefore the aggregate fault mix — is fixed by the seed.
// Sequential tests (the retrying-client convergence test) are fully
// deterministic end to end.
//
// The resilience tests assert the system's contract under this chaos: the
// retrying client converges through a 30% fault rate in bounded attempts,
// panics never kill the process, and shed load recovers to 200s.
package faultinject

import (
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Config sets the injected fault mix. Rates are probabilities in [0, 1]
// and are evaluated in order drop → error → slow body, one draw each, so
// e.g. DropRate 0.1 and ErrorRate 0.3 yield ~10% drops and ~27% errors.
type Config struct {
	// Seed fixes the fault sequence (0 seeds from the clock, which is
	// only sensible for exploratory runs, never for tests).
	Seed int64
	// Latency is added to every proxied request before any other fault,
	// plus a uniform draw from [0, LatencyJitter).
	Latency       time.Duration
	LatencyJitter time.Duration
	// DropRate aborts the connection mid-request with no response — the
	// client sees a reset/EOF, the classic crashed-backend signature.
	DropRate float64
	// ErrorRate answers with ErrorCode (default 503) and a JSON error
	// body instead of proxying — the injected 5xx burst.
	ErrorRate float64
	ErrorCode int
	// SlowBodyRate dribbles the proxied response body out in single-byte
	// chunks separated by SlowBodyDelay (default 1ms) — the slow-loris
	// shape that ties up naive clients.
	SlowBodyRate  float64
	SlowBodyDelay time.Duration
}

// Proxy injects faults in front of next. Safe for concurrent use.
type Proxy struct {
	next http.Handler
	cfg  Config

	mu  sync.Mutex
	rng *rand.Rand

	requests   atomic.Int64
	drops      atomic.Int64
	errors     atomic.Int64
	slowBodies atomic.Int64
}

// New wraps next with a fault injector.
func New(next http.Handler, cfg Config) *Proxy {
	if cfg.Seed == 0 {
		cfg.Seed = time.Now().UnixNano()
	}
	if cfg.ErrorCode == 0 {
		cfg.ErrorCode = http.StatusServiceUnavailable
	}
	if cfg.SlowBodyDelay <= 0 {
		cfg.SlowBodyDelay = time.Millisecond
	}
	return &Proxy{next: next, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Requests reports how many requests reached the proxy; Drops, Errors and
// SlowBodies report how many suffered each injected fault. The resilience
// suite uses Requests to bound total client attempts.
func (p *Proxy) Requests() int64   { return p.requests.Load() }
func (p *Proxy) Drops() int64      { return p.drops.Load() }
func (p *Proxy) Errors() int64     { return p.errors.Load() }
func (p *Proxy) SlowBodies() int64 { return p.slowBodies.Load() }

// decision is one request's pre-drawn fate; all randomness happens in a
// single critical section so the sequence is seed-deterministic.
type decision struct {
	latency  time.Duration
	drop     bool
	err      bool
	slowBody bool
}

func (p *Proxy) draw() decision {
	p.mu.Lock()
	defer p.mu.Unlock()
	d := decision{latency: p.cfg.Latency}
	if p.cfg.LatencyJitter > 0 {
		d.latency += time.Duration(p.rng.Float64() * float64(p.cfg.LatencyJitter))
	}
	switch {
	case p.cfg.DropRate > 0 && p.rng.Float64() < p.cfg.DropRate:
		d.drop = true
	case p.cfg.ErrorRate > 0 && p.rng.Float64() < p.cfg.ErrorRate:
		d.err = true
	case p.cfg.SlowBodyRate > 0 && p.rng.Float64() < p.cfg.SlowBodyRate:
		d.slowBody = true
	}
	return d
}

func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	p.requests.Add(1)
	d := p.draw()
	if d.latency > 0 {
		select {
		case <-time.After(d.latency):
		case <-r.Context().Done():
			return
		}
	}
	switch {
	case d.drop:
		p.drops.Add(1)
		// net/http's sanctioned abort: the connection closes with no
		// response written, which clients observe as EOF/reset.
		panic(http.ErrAbortHandler)
	case d.err:
		p.errors.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(p.cfg.ErrorCode)
		fmt.Fprintf(w, "{\"error\":\"injected fault (%d)\"}\n", p.cfg.ErrorCode)
	case d.slowBody:
		p.slowBodies.Add(1)
		rec := &bufferedResponse{header: make(http.Header)}
		p.next.ServeHTTP(rec, r)
		copyHeader(w.Header(), rec.header)
		w.WriteHeader(rec.status())
		for _, b := range rec.body {
			if _, err := w.Write([]byte{b}); err != nil {
				return
			}
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
			select {
			case <-time.After(p.cfg.SlowBodyDelay):
			case <-r.Context().Done():
				return
			}
		}
	default:
		p.next.ServeHTTP(w, r)
	}
}

// bufferedResponse captures the inner handler's response so the proxy can
// replay it slowly.
type bufferedResponse struct {
	header http.Header
	code   int
	body   []byte
}

func (b *bufferedResponse) Header() http.Header { return b.header }

func (b *bufferedResponse) WriteHeader(code int) {
	if b.code == 0 {
		b.code = code
	}
}

func (b *bufferedResponse) Write(p []byte) (int, error) {
	if b.code == 0 {
		b.code = http.StatusOK
	}
	b.body = append(b.body, p...)
	return len(p), nil
}

func (b *bufferedResponse) status() int {
	if b.code == 0 {
		return http.StatusOK
	}
	return b.code
}

func copyHeader(dst, src http.Header) {
	for k, vs := range src {
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}
