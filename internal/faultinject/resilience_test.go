package faultinject_test

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/faultinject"
	"repro/internal/middleware"
	"repro/internal/obs"
	"repro/internal/server"
)

// This file is the integration half of the resilience suite: the real
// server behind the real middleware chain behind the chaos proxy, driven
// by the real retrying client — the whole stack that cmd/stencil-serve and
// stencil-tune -server deploy, under injected failure. Runs under -race.

const fixtureModelDir = "../store/testdata"

// newStack builds the production middleware order around a live server
// handler, exactly as cmd/stencil-serve wires it.
func newStack(t *testing.T, extraRoutes func(*http.ServeMux)) (*server.Server, http.Handler) {
	t.Helper()
	s, err := server.New(server.Config{ModelDir: fixtureModelDir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	mux := http.NewServeMux()
	mux.Handle("/", s.Handler())
	if extraRoutes != nil {
		extraRoutes(mux)
	}
	h := middleware.Chain(
		middleware.JSONContentType()(http.TimeoutHandler(mux, 10*time.Second, `{"error":"request timed out"}`)),
		middleware.RequestID(),
		middleware.Recover(obs.NewLogger(io.Discard, "text"), s.ObsRegistry()),
		middleware.MaxBytes(1<<20, s.ObsRegistry()),
	)
	return s, h
}

// TestClientConvergesThroughFaultyProxy is the acceptance criterion: a
// deterministic 30% error rate plus connection drops and injected latency
// between client and server, and every tune call still completes — in
// bounded attempts, because retries are capped per call.
func TestClientConvergesThroughFaultyProxy(t *testing.T) {
	_, stack := newStack(t, nil)
	proxy := faultinject.New(stack, faultinject.Config{
		Seed:          42,
		ErrorRate:     0.30,
		DropRate:      0.05,
		Latency:       200 * time.Microsecond,
		LatencyJitter: 300 * time.Microsecond,
	})
	ts := httptest.NewServer(proxy)
	defer ts.Close()

	c, err := client.New(client.Config{
		BaseURL:           ts.URL,
		ClientID:          "resilience-suite",
		MaxAttempts:       8,
		PerAttemptTimeout: 5 * time.Second,
		BaseBackoff:       time.Millisecond,
		MaxBackoff:        10 * time.Millisecond,
		Seed:              7,
	})
	if err != nil {
		t.Fatal(err)
	}

	const calls = 30
	ctx := context.Background()
	for i := 0; i < calls; i++ {
		resp, err := c.Tune(ctx, client.TuneRequest{
			Model:  "tiny",
			Kernel: client.NamedKernel("laplacian"),
			Size:   fmt.Sprintf("%dx96x96", 64+i), // distinct instances: real inferences, not one cached answer
		})
		if err != nil {
			t.Fatalf("tune %d failed through the fault proxy: %v", i, err)
		}
		if resp.Best.Bx <= 0 || resp.Best.By <= 0 {
			t.Fatalf("tune %d: implausible best vector %+v", i, resp.Best)
		}
	}

	attempts, requests := c.Attempts(), proxy.Requests()
	t.Logf("%d calls converged: %d client attempts, %d proxied requests, %d injected errors, %d drops",
		calls, attempts, requests, proxy.Errors(), proxy.Drops())
	if attempts < calls {
		t.Errorf("attempts %d < calls %d: impossible accounting", attempts, calls)
	}
	if max := int64(calls * 8); attempts > max {
		t.Errorf("attempts = %d, exceeds the MaxAttempts bound %d — retries are unbounded", attempts, max)
	}
	if proxy.Errors() == 0 && proxy.Drops() == 0 {
		t.Error("proxy injected no faults; the test proved nothing")
	}
}

// TestPanicLeavesServerServing mounts a panicking route on a real listener
// next to the tuning API, behind the production Recover middleware: the
// panicking request gets a JSON 500, the process-level metric increments,
// and the API keeps answering on the same server afterwards.
func TestPanicLeavesServerServing(t *testing.T) {
	s, stack := newStack(t, func(mux *http.ServeMux) {
		mux.HandleFunc("/boom", func(http.ResponseWriter, *http.Request) {
			panic("injected handler panic")
		})
	})
	ts := httptest.NewServer(stack)
	defer ts.Close()

	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/boom")
		if err != nil {
			t.Fatalf("panicking route %d: transport error %v — the panic killed the connection instead of yielding 500", i, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("panicking route: status %d, want 500", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("panic response Content-Type = %q, want application/json", ct)
		}
	}
	if got := s.MetricValue("panics_total"); got != 3 {
		t.Errorf("panics_total = %d, want 3", got)
	}

	// The same server instance still answers real tuning traffic.
	resp, err := http.Post(ts.URL+"/v1/tune", "application/json",
		jsonBody(`{"model":"tiny","kernel":"laplacian","size":"100x100x100"}`))
	if err != nil {
		t.Fatalf("tune after panics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("tune after panics: status %d: %s", resp.StatusCode, b)
	}
}

// TestRateLimitShedsAndRecoversOverHTTP drives the full chain with a tight
// limiter: a burst past the bucket sheds 429 with Retry-After, and waiting
// out the advertised interval restores 200s.
func TestRateLimitShedsAndRecoversOverHTTP(t *testing.T) {
	s, err := server.New(server.Config{ModelDir: fixtureModelDir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	limiter := middleware.NewRateLimiter(10, 3, s.ObsRegistry())
	stack := middleware.Chain(s.Handler(),
		middleware.RequestID(),
		middleware.Recover(obs.NewLogger(io.Discard, "text"), s.ObsRegistry()),
		limiter.Middleware(),
	)
	ts := httptest.NewServer(stack)
	defer ts.Close()

	tune := func() *http.Response {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/tune",
			jsonBody(`{"model":"tiny","kernel":"laplacian","size":"100x100x100"}`))
		req.Header.Set("X-Client-ID", "bursty")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}

	var shed *http.Response
	for i := 0; i < 10 && shed == nil; i++ {
		if resp := tune(); resp.StatusCode == http.StatusTooManyRequests {
			shed = resp
		}
	}
	if shed == nil {
		t.Fatal("a 10-request burst against burst=3 never produced a 429")
	}
	ra, err := time.ParseDuration(shed.Header.Get("Retry-After") + "s")
	if err != nil || ra <= 0 {
		t.Fatalf("429 Retry-After %q unusable", shed.Header.Get("Retry-After"))
	}
	time.Sleep(ra + 50*time.Millisecond)
	if resp := tune(); resp.StatusCode != http.StatusOK {
		t.Errorf("request after honoring Retry-After: status %d, want 200", resp.StatusCode)
	}
	if got := s.MetricValue("rate_limited_total"); got == 0 {
		t.Error("rate_limited_total never incremented")
	}
}

func jsonBody(s string) io.Reader { return strings.NewReader(s) }
