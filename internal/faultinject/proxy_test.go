package faultinject

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func echoHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"ok":true,"payload":"0123456789"}`))
	})
}

// drive sends n sequential requests through a real listener (drops need a
// real connection to be observable) and returns the status codes, with -1
// for transport-level failures.
func drive(t *testing.T, p *Proxy, n int) []int {
	t.Helper()
	ts := httptest.NewServer(p)
	defer ts.Close()
	codes := make([]int, n)
	for i := range codes {
		resp, err := http.Get(ts.URL)
		if err != nil {
			codes[i] = -1
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		codes[i] = resp.StatusCode
	}
	return codes
}

func TestDeterministicFaultSequence(t *testing.T) {
	cfg := Config{Seed: 99, ErrorRate: 0.3, DropRate: 0.1}
	a := drive(t, New(echoHandler(), cfg), 100)
	b := drive(t, New(echoHandler(), cfg), 100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d: run A saw %d, run B saw %d — same seed must replay identically", i, a[i], b[i])
		}
	}
	c := drive(t, New(echoHandler(), Config{Seed: 100, ErrorRate: 0.3, DropRate: 0.1}), 100)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical fault sequences")
	}
}

func TestErrorRateApproximatelyHolds(t *testing.T) {
	p := New(echoHandler(), Config{Seed: 7, ErrorRate: 0.3})
	codes := drive(t, p, 1000)
	errs := 0
	for _, c := range codes {
		switch c {
		case http.StatusServiceUnavailable:
			errs++
		case http.StatusOK:
		default:
			t.Fatalf("unexpected status %d", c)
		}
	}
	if errs < 240 || errs > 360 {
		t.Errorf("injected %d/1000 errors for rate 0.3, want ~300", errs)
	}
	if got := p.Errors(); got != int64(errs) {
		t.Errorf("Errors() = %d, observed %d", got, errs)
	}
}

func TestDropsAbortConnections(t *testing.T) {
	p := New(echoHandler(), Config{Seed: 3, DropRate: 1})
	codes := drive(t, p, 10)
	for i, c := range codes {
		if c != -1 {
			t.Errorf("request %d: status %d, want transport failure from dropped connection", i, c)
		}
	}
	if p.Drops() != 10 {
		t.Errorf("Drops() = %d, want 10", p.Drops())
	}
}

func TestInjectedErrorBodyIsJSON(t *testing.T) {
	p := New(echoHandler(), Config{Seed: 1, ErrorRate: 1, ErrorCode: http.StatusInternalServerError})
	w := httptest.NewRecorder()
	p.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/", nil))
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want configured 500", w.Code)
	}
	var body map[string]string
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil || body["error"] == "" {
		t.Errorf("injected error body %q is not a JSON error", w.Body.String())
	}
}

func TestSlowBodyDeliversCompleteResponse(t *testing.T) {
	p := New(echoHandler(), Config{Seed: 5, SlowBodyRate: 1, SlowBodyDelay: time.Millisecond})
	ts := httptest.NewServer(p)
	defer ts.Close()

	start := time.Now()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var body map[string]any
	if err := json.Unmarshal(b, &body); err != nil || body["ok"] != true {
		t.Errorf("slow body corrupted the response: %q", b)
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Errorf("slow body of %d bytes arrived in %v, want visibly dribbled", len(b), elapsed)
	}
	if p.SlowBodies() != 1 {
		t.Errorf("SlowBodies() = %d, want 1", p.SlowBodies())
	}
}

func TestLatencyInjection(t *testing.T) {
	p := New(echoHandler(), Config{Seed: 5, Latency: 30 * time.Millisecond})
	w := httptest.NewRecorder()
	start := time.Now()
	p.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/", nil))
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Errorf("request served in %v, want >= 30ms injected latency", elapsed)
	}
	if w.Code != http.StatusOK {
		t.Errorf("status %d after latency injection, want 200", w.Code)
	}
}
