package search

import (
	"math"
	"testing"

	"repro/internal/machine"
	"repro/internal/perfmodel"
	"repro/internal/stencil"
	"repro/internal/tunespace"
)

// quadObjective has a unique optimum at (bx=64, by=16, bz=4, u=4, c=2) with a
// smooth quadratic landscape in log space.
func quadObjective(v tunespace.Vector) float64 {
	d := func(x int, opt float64) float64 {
		l := math.Log2(float64(x)) - math.Log2(opt)
		return l * l
	}
	return 1 + d(v.Bx, 64) + d(v.By, 16) + d(v.Bz, 4) +
		0.2*float64(v.U-4)*float64(v.U-4) + 0.3*d(v.C, 2)
}

func simObjective(q stencil.Instance) Objective {
	m := perfmodel.New(machine.XeonE52680v3())
	return func(v tunespace.Vector) float64 { return m.Runtime(q, v) }
}

func allEngines() []Engine {
	return append(Engines(), NewRandomSearch())
}

func TestEnginesRespectBudget(t *testing.T) {
	space := tunespace.NewSpace(3)
	for _, e := range allEngines() {
		for _, budget := range []int{1, 7, 64} {
			r := e.Search(space, quadObjective, budget, 1)
			if r.Evaluations > budget {
				t.Errorf("%s: used %d evaluations, budget %d", e.Name(), r.Evaluations, budget)
			}
			if len(r.History) != r.Evaluations {
				t.Errorf("%s: history length %d != evaluations %d", e.Name(), len(r.History), r.Evaluations)
			}
		}
	}
}

func TestEnginesFindGoodQuadraticSolutions(t *testing.T) {
	space := tunespace.NewSpace(3)
	for _, e := range allEngines() {
		r := e.Search(space, quadObjective, 512, 7)
		// Evolutionary engines should approach the optimum (1.0); random
		// search only needs to land in the basin.
		limit := 2.0
		if e.Name() == "random" {
			limit = 6.0
		}
		if r.BestValue > limit {
			t.Errorf("%s: best %.3f after 512 evals, want ≤ %.1f (optimum 1.0)", e.Name(), r.BestValue, limit)
		}
		if err := r.Best.Validate(3); err != nil {
			t.Errorf("%s: best vector invalid: %v", e.Name(), err)
		}
	}
}

func TestEvolutionaryEnginesBeatRandomOnSimulator(t *testing.T) {
	q := stencil.Instance{Kernel: stencil.Laplacian(), Size: stencil.Size3D(128, 128, 128)}
	space := tunespace.NewSpace(3)
	// Average over seeds to avoid flakiness.
	avg := func(e Engine) float64 {
		var sum float64
		for seed := int64(0); seed < 5; seed++ {
			r := e.Search(space, simObjective(q), 256, seed)
			sum += r.BestValue
		}
		return sum / 5
	}
	randomBest := avg(NewRandomSearch())
	for _, e := range Engines() {
		if got := avg(e); got > randomBest*1.10 {
			t.Errorf("%s: avg best %.5f noticeably worse than random %.5f", e.Name(), got, randomBest)
		}
	}
}

func TestHistoryMonotoneNonIncreasing(t *testing.T) {
	space := tunespace.NewSpace(2)
	for _, e := range allEngines() {
		r := e.Search(space, quadObjective, 200, 3)
		for i := 1; i < len(r.History); i++ {
			if r.History[i].Value > r.History[i-1].Value {
				t.Fatalf("%s: best-so-far increased at %d: %v -> %v",
					e.Name(), i, r.History[i-1].Value, r.History[i].Value)
			}
		}
		last := r.History[len(r.History)-1]
		if last.Value != r.BestValue {
			t.Errorf("%s: final history %v != best %v", e.Name(), last.Value, r.BestValue)
		}
	}
}

func TestBestAfter(t *testing.T) {
	space := tunespace.NewSpace(3)
	r := NewRandomSearch().Search(space, quadObjective, 100, 5)
	if r.BestAfter(1) < r.BestAfter(100) {
		t.Error("BestAfter should be non-increasing")
	}
	if got := r.BestAfter(100); got != r.BestValue {
		t.Errorf("BestAfter(budget) = %v, want %v", got, r.BestValue)
	}
	if r.BestAfter(0) != r.BestAfter(1) {
		t.Error("BestAfter clamps below")
	}
	if r.BestAfter(10_000) != r.BestValue {
		t.Error("BestAfter clamps above")
	}
	empty := Result{BestValue: 3.5}
	if empty.BestAfter(10) != 3.5 {
		t.Error("empty history BestAfter should return BestValue")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	space := tunespace.NewSpace(3)
	for _, e := range allEngines() {
		a := e.Search(space, quadObjective, 128, 99)
		b := e.Search(space, quadObjective, 128, 99)
		if a.Best != b.Best || a.BestValue != b.BestValue {
			t.Errorf("%s: non-deterministic for fixed seed", e.Name())
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	space := tunespace.NewSpace(3)
	e := NewGenerationalGA()
	a := e.Search(space, quadObjective, 64, 1)
	b := e.Search(space, quadObjective, 64, 2)
	if a.Best == b.Best && a.BestValue == b.BestValue && a.History[10] == b.History[10] {
		t.Error("different seeds produced identical runs (suspicious)")
	}
}

func TestMemoAvoidsRecomputationButChargesBudget(t *testing.T) {
	// Re-proposing a seen configuration costs an iteration (the paper's
	// engines run a fixed number of iterations) but not a recomputation.
	calls := 0
	obj := func(v tunespace.Vector) float64 {
		calls++
		return 1
	}
	tr := newTracker(SequentialBatch(obj), 10)
	v := tunespace.Vector{Bx: 4, By: 4, Bz: 4, U: 0, C: 1}
	tr.eval(v)
	tr.eval(v)
	tr.eval(v)
	if calls != 1 {
		t.Errorf("objective called %d times for the same vector", calls)
	}
	if tr.used != 3 {
		t.Errorf("budget charged %d times, want 3", tr.used)
	}
}

func TestTrackerTerminatesOnConvergedEngine(t *testing.T) {
	// A degenerate engine proposing the same vector forever must exhaust
	// its budget rather than loop (the regression behind this test hung
	// Fig. 4 for minutes).
	obj := func(v tunespace.Vector) float64 { return 1 }
	tr := newTracker(SequentialBatch(obj), 5)
	v := tunespace.Vector{Bx: 4, By: 4, Bz: 4, U: 0, C: 1}
	for i := 0; i < 5; i++ {
		if _, ok := tr.eval(v); !ok {
			t.Fatalf("eval %d rejected before budget exhausted", i)
		}
	}
	if !tr.exhausted() {
		t.Fatal("tracker should be exhausted after budget duplicate proposals")
	}
}

func TestTrackerBudgetExhaustion(t *testing.T) {
	obj := func(v tunespace.Vector) float64 { return float64(v.Bx) }
	tr := newTracker(SequentialBatch(obj), 2)
	a := tunespace.Vector{Bx: 4, By: 4, Bz: 4, U: 0, C: 1}
	b := tunespace.Vector{Bx: 8, By: 4, Bz: 4, U: 0, C: 1}
	c := tunespace.Vector{Bx: 16, By: 4, Bz: 4, U: 0, C: 1}
	if _, ok := tr.eval(a); !ok {
		t.Fatal("first eval should succeed")
	}
	if _, ok := tr.eval(b); !ok {
		t.Fatal("second eval should succeed")
	}
	if _, ok := tr.eval(c); ok {
		t.Fatal("third eval should be rejected")
	}
	// Cached vectors still answer (for free) after exhaustion.
	if v, ok := tr.eval(a); !ok || v != 4 {
		t.Error("cached eval should not be budget-limited after exhaustion")
	}
}

func TestEngineByName(t *testing.T) {
	for _, name := range []string{"ga", "de", "es", "sga", "random", "genetic", "steady-state"} {
		e, err := EngineByName(name)
		if err != nil || e == nil {
			t.Errorf("EngineByName(%q): %v", name, err)
		}
	}
	if _, err := EngineByName("quantum-annealer"); err == nil {
		t.Error("unknown engine accepted")
	}
}

func TestEnginesList(t *testing.T) {
	es := Engines()
	if len(es) != 4 {
		t.Fatalf("Engines() = %d entries, want 4 (Fig. 4 legend)", len(es))
	}
	names := map[string]bool{}
	for _, e := range es {
		names[e.Name()] = true
	}
	for _, want := range []string{"genetic algorithm", "differential evolution", "evolutive strategy", "sGA"} {
		if !names[want] {
			t.Errorf("missing engine %q", want)
		}
	}
}

func TestTinyBudgets(t *testing.T) {
	space := tunespace.NewSpace(3)
	for _, e := range allEngines() {
		r := e.Search(space, quadObjective, 1, 1)
		if r.Evaluations != 1 {
			t.Errorf("%s: budget-1 run used %d evaluations", e.Name(), r.Evaluations)
		}
		if r.BestValue >= 1e308 {
			t.Errorf("%s: budget-1 run found nothing", e.Name())
		}
	}
}

func TestElapsedPopulated(t *testing.T) {
	space := tunespace.NewSpace(3)
	r := NewGenerationalGA().Search(space, quadObjective, 64, 1)
	if r.Elapsed <= 0 {
		t.Error("Elapsed not populated")
	}
	if r.Engine != "genetic algorithm" {
		t.Errorf("Engine = %q", r.Engine)
	}
}

func TestLocalSearchEngines(t *testing.T) {
	space := tunespace.NewSpace(3)
	for _, e := range []Engine{NewSimulatedAnnealing(), NewHillClimber()} {
		r := e.Search(space, quadObjective, 512, 11)
		if r.Evaluations > 512 {
			t.Errorf("%s: budget overrun %d", e.Name(), r.Evaluations)
		}
		if r.BestValue > 3.0 {
			t.Errorf("%s: best %.3f after 512 evals, want ≤ 3.0", e.Name(), r.BestValue)
		}
		if err := r.Best.Validate(3); err != nil {
			t.Errorf("%s: invalid best: %v", e.Name(), err)
		}
		// Determinism.
		r2 := e.Search(space, quadObjective, 512, 11)
		if r2.Best != r.Best {
			t.Errorf("%s: non-deterministic", e.Name())
		}
		// History monotone.
		for i := 1; i < len(r.History); i++ {
			if r.History[i].Value > r.History[i-1].Value {
				t.Fatalf("%s: best-so-far increased", e.Name())
			}
		}
	}
}

func TestLocalEnginesByName(t *testing.T) {
	for _, name := range []string{"sa", "hill"} {
		if _, err := EngineByName(name); err != nil {
			t.Errorf("EngineByName(%q): %v", name, err)
		}
	}
}

func TestSimulatedAnnealingTinyBudget(t *testing.T) {
	r := NewSimulatedAnnealing().Search(tunespace.NewSpace(2), quadObjective, 1, 1)
	if r.Evaluations != 1 {
		t.Errorf("evaluations = %d", r.Evaluations)
	}
}
