package search

import (
	"sync"
	"testing"

	"repro/internal/tunespace"
)

// concurrentBatch turns a deterministic Objective into a BatchObjective that
// really evaluates on `workers` goroutines — the shape dataset.Batched
// produces — so these tests exercise the concurrent path (and trip the race
// detector if ordering ever leaks into shared state).
func concurrentBatch(obj Objective, workers int) BatchObjective {
	return func(vs []tunespace.Vector) []float64 {
		out := make([]float64, len(vs))
		w := min(workers, len(vs))
		chunk := (len(vs) + w - 1) / w
		var wg sync.WaitGroup
		for s := 0; s < len(vs); s += chunk {
			e := min(s+chunk, len(vs))
			wg.Add(1)
			go func(s, e int) {
				defer wg.Done()
				for i := s; i < e; i++ {
					out[i] = obj(vs[i])
				}
			}(s, e)
		}
		wg.Wait()
		return out
	}
}

// batchTestEngines is every engine the package ships, including the
// inherently sequential ones (which must still work through SearchBatch).
func batchTestEngines() []Engine {
	return []Engine{
		NewGenerationalGA(),
		NewDifferentialEvolution(),
		NewEvolutionStrategy(),
		NewSteadyStateGA(),
		NewRandomSearch(),
		NewSimulatedAnnealing(),
		NewHillClimber(),
		NewBanditPortfolio(),
	}
}

// assertResultsIdentical compares two runs field by field, including the
// full history trajectory.
func assertResultsIdentical(t *testing.T, name string, a, b Result) {
	t.Helper()
	if a.Best != b.Best || a.BestValue != b.BestValue {
		t.Errorf("%s: best differs: %v (%v) vs %v (%v)", name, a.Best, a.BestValue, b.Best, b.BestValue)
	}
	if a.Evaluations != b.Evaluations {
		t.Errorf("%s: evaluations differ: %d vs %d", name, a.Evaluations, b.Evaluations)
	}
	if len(a.History) != len(b.History) {
		t.Fatalf("%s: history lengths differ: %d vs %d", name, len(a.History), len(b.History))
	}
	for i := range a.History {
		if a.History[i] != b.History[i] {
			t.Fatalf("%s: history diverges at %d: %+v vs %+v", name, i, a.History[i], b.History[i])
		}
	}
}

func TestAllEnginesDeterministicGivenSeed(t *testing.T) {
	space := tunespace.NewSpace(3)
	for _, e := range batchTestEngines() {
		a := e.Search(space, quadObjective, 200, 42)
		b := e.Search(space, quadObjective, 200, 42)
		assertResultsIdentical(t, e.Name(), a, b)
	}
}

func TestBatchedMatchesSequential(t *testing.T) {
	space := tunespace.NewSpace(3)
	for _, workers := range []int{2, 4, 8} {
		for _, e := range batchTestEngines() {
			seq := e.Search(space, quadObjective, 300, 7)
			bat := e.SearchBatch(space, concurrentBatch(quadObjective, workers), 300, 7)
			assertResultsIdentical(t, e.Name(), seq, bat)
		}
	}
}

func TestBatchedMatchesSequential2D(t *testing.T) {
	space := tunespace.NewSpace(2)
	for _, e := range batchTestEngines() {
		seq := e.Search(space, quadObjective, 150, 3)
		bat := e.SearchBatch(space, concurrentBatch(quadObjective, 4), 150, 3)
		assertResultsIdentical(t, e.Name(), seq, bat)
	}
}

func TestBatchedRespectsBudget(t *testing.T) {
	space := tunespace.NewSpace(3)
	for _, e := range batchTestEngines() {
		for _, budget := range []int{1, 7, 65} {
			r := e.SearchBatch(space, concurrentBatch(quadObjective, 4), budget, 1)
			if r.Evaluations > budget {
				t.Errorf("%s: used %d evaluations, budget %d", e.Name(), r.Evaluations, budget)
			}
			if len(r.History) != r.Evaluations {
				t.Errorf("%s: history length %d != evaluations %d", e.Name(), len(r.History), r.Evaluations)
			}
		}
	}
}

// TestBatchDedupSingleEvaluation asserts the tracker sends each distinct
// vector to the objective at most once per run, even when one batch proposes
// it several times.
func TestBatchDedupSingleEvaluation(t *testing.T) {
	var mu sync.Mutex
	calls := map[tunespace.Vector]int{}
	obj := func(v tunespace.Vector) float64 {
		mu.Lock()
		calls[v]++
		mu.Unlock()
		return quadObjective(v)
	}
	tr := newTracker(concurrentBatch(obj, 4), 10)
	v := tunespace.Vector{Bx: 4, By: 4, Bz: 4, U: 0, C: 1}
	w := tunespace.Vector{Bx: 8, By: 8, Bz: 8, U: 1, C: 2}
	vals := tr.evalBatch([]tunespace.Vector{v, w, v, w, v})
	if len(vals) != 5 {
		t.Fatalf("got %d values, want 5", len(vals))
	}
	if vals[0] != vals[2] || vals[0] != vals[4] || vals[1] != vals[3] {
		t.Error("duplicate proposals returned different values")
	}
	if calls[v] != 1 || calls[w] != 1 {
		t.Errorf("objective called %d/%d times, want 1/1", calls[v], calls[w])
	}
	if tr.used != 5 {
		t.Errorf("budget charged %d times, want 5 (duplicates still cost iterations)", tr.used)
	}
}

// TestBatchTruncatesToBudget asserts oversized batches charge only the
// remaining budget, in proposal order.
func TestBatchTruncatesToBudget(t *testing.T) {
	tr := newTracker(SequentialBatch(quadObjective), 3)
	vs := make([]tunespace.Vector, 5)
	for i := range vs {
		vs[i] = tunespace.Vector{Bx: 4 << i, By: 4, Bz: 4, U: 0, C: 1}
	}
	vals := tr.evalBatch(vs)
	if len(vals) != 3 {
		t.Fatalf("accepted %d proposals, want 3", len(vals))
	}
	if !tr.exhausted() {
		t.Error("tracker should be exhausted")
	}
	if got := tr.evalBatch(vs); got != nil {
		t.Errorf("exhausted tracker accepted %d more proposals", len(got))
	}
	for i, v := range vs[:3] {
		if vals[i] != quadObjective(v) {
			t.Errorf("value %d mismatch", i)
		}
	}
}
