package search

import (
	"math"
	"time"

	"repro/internal/tunespace"
)

// BanditPortfolio is an OpenTuner-style meta-search: it runs all base
// engines in rounds and uses a UCB1 multi-armed bandit (Auer et al., the
// technique OpenTuner adopts — Sec. II of the paper) to allocate the
// remaining evaluation budget to the engine that has recently produced the
// most improvement. The paper deliberately avoids this budget-dropping
// behaviour for its fixed-budget comparison; the portfolio is provided as
// the OpenTuner stand-in for ablations.
//
// Budget accounting: the portfolio charges its budget only for *distinct*
// configurations (compiled variants are cached), while each arm's inner run
// charges per proposal. Re-running an arm with a larger inner budget
// therefore replays its earlier trajectory through the shared cache for
// free and spends portfolio budget only on the fresh tail — poor arms get
// probed cheaply, good arms get extended.
type BanditPortfolio struct {
	Engines []Engine
	// RoundSize is how many inner evaluations one arm pull grants (default 16).
	RoundSize int
	// Exploration is the UCB1 exploration constant (default √2).
	Exploration float64
}

// NewBanditPortfolio returns a portfolio over the four paper baselines.
func NewBanditPortfolio() *BanditPortfolio {
	return &BanditPortfolio{Engines: Engines(), RoundSize: 16, Exploration: math.Sqrt2}
}

// Name implements Engine.
func (*BanditPortfolio) Name() string { return "bandit portfolio" }

// arm is one engine's resumable search state.
type arm struct {
	engine  Engine
	seed    int64 // fixed per arm so re-runs replay their prefix from cache
	granted int   // inner evaluations granted so far
	pulls   int
	reward  float64 // cumulative normalized improvement
	best    float64
}

// Search implements Engine.
func (bp *BanditPortfolio) Search(space tunespace.Space, obj Objective, budget int, seed int64) Result {
	return bp.SearchBatch(space, SequentialBatch(obj), budget, seed)
}

// SearchBatch implements Engine: arms run their inner engines in batch mode,
// and the shared portfolio accounting commits each batch in proposal order,
// so the portfolio inherits the engines' batched/sequential bit-equality.
func (bp *BanditPortfolio) SearchBatch(space tunespace.Space, obj BatchObjective, budget int, seed int64) Result {
	start := time.Now()
	roundSize := bp.RoundSize
	if roundSize <= 0 {
		roundSize = 16
	}
	expl := bp.Exploration
	if expl == 0 {
		expl = math.Sqrt2
	}

	// Portfolio-level accounting: distinct configurations only.
	memo := make(map[tunespace.Vector]float64, budget)
	used := 0
	best := tunespace.Vector{}
	bestVal := inf()
	history := make([]HistoryPoint, 0, budget)
	exhausted := func() bool { return used >= budget }
	sharedBatch := func(vs []tunespace.Vector) []float64 {
		// Plan pass: walk the proposals in order and decide which ones a
		// sequential run would have sent to the objective — first-seen
		// vectors while budget remains. Everything else answers from the
		// memo (free) or as +Inf (uncached after exhaustion).
		var fresh []tunespace.Vector
		planned := make(map[tunespace.Vector]int, len(vs))
		hypothetical := used
		for _, v := range vs {
			if _, ok := memo[v]; ok {
				continue
			}
			if _, ok := planned[v]; ok {
				continue
			}
			if hypothetical >= budget {
				continue
			}
			planned[v] = len(fresh)
			fresh = append(fresh, v)
			hypothetical++
		}
		var vals []float64
		if len(fresh) > 0 {
			vals = obj(fresh)
		}
		// Commit pass: charge budget and update best/history in proposal
		// order, exactly as the sequential shared objective did.
		out := make([]float64, len(vs))
		for i, v := range vs {
			if val, ok := memo[v]; ok {
				out[i] = val
				continue
			}
			if exhausted() {
				out[i] = inf()
				continue
			}
			val := vals[planned[v]]
			memo[v] = val
			used++
			if val < bestVal {
				bestVal = val
				best = v
			}
			history = append(history, HistoryPoint{Evaluation: used, Value: bestVal, Vector: best})
			out[i] = val
		}
		return out
	}

	arms := make([]*arm, len(bp.Engines))
	for i, e := range bp.Engines {
		arms[i] = &arm{engine: e, seed: seed + int64(i), best: inf()}
	}

	pull := func(a *arm) {
		a.granted += roundSize
		prev := a.best
		// Deterministic engines given (seed, objective) replay their
		// earlier trajectory through the shared cache for free; only the
		// freshly granted tail spends portfolio budget.
		r := a.engine.SearchBatch(space, sharedBatch, a.granted, a.seed)
		a.best = r.BestValue
		a.pulls++
		// Reward: relative improvement this pull produced.
		if prev < inf() && prev > 0 && a.best < prev {
			a.reward += (prev - a.best) / prev
		} else if prev >= inf() && a.best < inf() {
			a.reward += 1 // first result counts as a full reward
		}
	}

	// Initialization: one pull per arm.
	for _, a := range arms {
		if exhausted() {
			break
		}
		pull(a)
	}
	// UCB1 rounds.
	for !exhausted() {
		totalPulls := 0
		for _, a := range arms {
			totalPulls += a.pulls
		}
		bestArm := arms[0]
		bestScore := math.Inf(-1)
		for _, a := range arms {
			if a.pulls == 0 {
				bestArm = a
				break
			}
			score := a.reward/float64(a.pulls) +
				expl*math.Sqrt(math.Log(float64(totalPulls))/float64(a.pulls))
			if score > bestScore {
				bestScore = score
				bestArm = a
			}
		}
		before := used
		pull(bestArm)
		if used == before {
			// The pull produced only cached proposals. Stop once every arm
			// has been granted far more than the portfolio budget — nothing
			// new is coming.
			stuck := true
			for _, a := range arms {
				if a.granted < budget*2 {
					stuck = false
				}
			}
			if stuck {
				break
			}
		}
	}
	return Result{
		Engine:      bp.Name(),
		Best:        best,
		BestValue:   bestVal,
		Evaluations: used,
		History:     history,
		Elapsed:     time.Since(start),
	}
}
