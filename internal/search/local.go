package search

import (
	"math"
	"math/rand"
	"time"

	"repro/internal/tunespace"
)

// This file adds the stochastic local-search engines PATUS also ships
// besides its genetic algorithm (Sec. II: "PATUS also includes other
// stochastic and heuristic search techniques"): simulated annealing and a
// randomized hill climber with restarts.

// SimulatedAnnealing walks the tuning space accepting worsening moves with a
// temperature-controlled probability, geometric cooling.
type SimulatedAnnealing struct {
	// InitialTemp is the starting acceptance temperature relative to the
	// first evaluation's value (default 0.5).
	InitialTemp float64
	// Cooling is the geometric cooling factor applied per step (default
	// computed from the budget so the final temperature is ~1e-3 of the
	// initial).
	Cooling float64
	// MutationRate drives the neighbour proposal (default 0.4).
	MutationRate float64
}

// NewSimulatedAnnealing returns the engine with default settings.
func NewSimulatedAnnealing() *SimulatedAnnealing {
	return &SimulatedAnnealing{InitialTemp: 0.5, MutationRate: 0.4}
}

// Name implements Engine.
func (*SimulatedAnnealing) Name() string { return "simulated annealing" }

// Search implements Engine.
func (sa *SimulatedAnnealing) Search(space tunespace.Space, obj Objective, budget int, seed int64) Result {
	return sa.SearchBatch(space, SequentialBatch(obj), budget, seed)
}

// SearchBatch implements Engine. Annealing accepts or rejects each proposal
// before generating the next, so it is inherently sequential and submits
// single-candidate batches.
func (sa *SimulatedAnnealing) SearchBatch(space tunespace.Space, obj BatchObjective, budget int, seed int64) Result {
	start := time.Now()
	rng := rand.New(rand.NewSource(seed))
	t := newTracker(obj, budget)

	cur := space.Random(rng)
	curVal, ok := t.eval(cur)
	if !ok {
		return t.result(sa.Name(), start)
	}
	temp := sa.InitialTemp * curVal
	cooling := sa.Cooling
	if cooling == 0 {
		// Reach 1e-3 of the initial temperature by the end of the budget.
		cooling = math.Pow(1e-3, 1/math.Max(1, float64(budget)))
	}
	rate := sa.MutationRate
	if rate == 0 {
		rate = 0.4
	}

	for !t.exhausted() {
		cand := space.Mutate(rng, cur, rate)
		candVal, ok := t.eval(cand)
		if !ok {
			break
		}
		if candVal <= curVal || rng.Float64() < math.Exp((curVal-candVal)/math.Max(temp, 1e-300)) {
			cur, curVal = cand, candVal
		}
		temp *= cooling
	}
	return t.result(sa.Name(), start)
}

// HillClimber performs first-improvement stochastic hill climbing with
// random restarts when no neighbour improves for Patience proposals.
type HillClimber struct {
	// Patience is the number of non-improving proposals before a restart
	// (default 32).
	Patience int
	// MutationRate drives the neighbour proposal (default 0.3).
	MutationRate float64
}

// NewHillClimber returns the engine with default settings.
func NewHillClimber() *HillClimber { return &HillClimber{Patience: 32, MutationRate: 0.3} }

// Name implements Engine.
func (*HillClimber) Name() string { return "hill climbing" }

// Search implements Engine.
func (hc *HillClimber) Search(space tunespace.Space, obj Objective, budget int, seed int64) Result {
	return hc.SearchBatch(space, SequentialBatch(obj), budget, seed)
}

// SearchBatch implements Engine. Each proposal mutates the current incumbent,
// which the previous result may have replaced, so the climber is inherently
// sequential and submits single-candidate batches.
func (hc *HillClimber) SearchBatch(space tunespace.Space, obj BatchObjective, budget int, seed int64) Result {
	start := time.Now()
	rng := rand.New(rand.NewSource(seed))
	t := newTracker(obj, budget)

	patience := hc.Patience
	if patience <= 0 {
		patience = 32
	}
	rate := hc.MutationRate
	if rate == 0 {
		rate = 0.3
	}

	for !t.exhausted() {
		cur := space.Random(rng)
		curVal, ok := t.eval(cur)
		if !ok {
			break
		}
		stale := 0
		for stale < patience && !t.exhausted() {
			cand := space.Mutate(rng, cur, rate)
			candVal, ok := t.eval(cand)
			if !ok {
				break
			}
			if candVal < curVal {
				cur, curVal = cand, candVal
				stale = 0
			} else {
				stale++
			}
		}
	}
	return t.result(hc.Name(), start)
}
