package search

import (
	"math/rand"
	"sort"
	"time"

	"repro/internal/tunespace"
)

// ---------------------------------------------------------------------------
// Random search

// RandomSearch samples the space uniformly — the weakest baseline and a
// sanity floor for the others.
type RandomSearch struct {
	// Chunk is how many samples are submitted per BatchObjective call
	// (default RandomChunk). Sampling is RNG-only, so the chunk size never
	// changes the trajectory — only how much work a batch evaluator can
	// overlap.
	Chunk int
}

// RandomChunk is the default batch size of random search.
const RandomChunk = 64

// NewRandomSearch returns a random-search engine.
func NewRandomSearch() *RandomSearch { return &RandomSearch{Chunk: RandomChunk} }

// Name implements Engine.
func (*RandomSearch) Name() string { return "random" }

// Search implements Engine.
func (r *RandomSearch) Search(space tunespace.Space, obj Objective, budget int, seed int64) Result {
	return r.SearchBatch(space, SequentialBatch(obj), budget, seed)
}

// SearchBatch implements Engine: samples are drawn in fixed chunks and each
// chunk is evaluated as one batch.
func (r *RandomSearch) SearchBatch(space tunespace.Space, obj BatchObjective, budget int, seed int64) Result {
	start := time.Now()
	rng := rand.New(rand.NewSource(seed))
	t := newTracker(obj, budget)
	chunk := r.Chunk
	if chunk <= 0 {
		chunk = RandomChunk
	}
	for !t.exhausted() {
		n := min(chunk, t.remaining())
		vs := make([]tunespace.Vector, n)
		for i := range vs {
			vs[i] = space.Random(rng)
		}
		t.evalBatch(vs)
	}
	return t.result("random", start)
}

// ---------------------------------------------------------------------------
// Generational GA

// GenerationalGA evolves a full population each generation with tournament
// selection, uniform crossover, mutation and elitism. It is the paper's base
// configuration (Fig. 4 speedups are relative to its 1024-evaluation result).
type GenerationalGA struct {
	PopSize      int
	TournamentK  int
	CrossoverP   float64
	MutationRate float64
	Elites       int
}

// NewGenerationalGA returns the engine with the standard configuration.
func NewGenerationalGA() *GenerationalGA {
	return &GenerationalGA{PopSize: 32, TournamentK: 3, CrossoverP: 0.9, MutationRate: 0.25, Elites: 2}
}

// Name implements Engine.
func (*GenerationalGA) Name() string { return "genetic algorithm" }

// Search implements Engine.
func (g *GenerationalGA) Search(space tunespace.Space, obj Objective, budget int, seed int64) Result {
	return g.SearchBatch(space, SequentialBatch(obj), budget, seed)
}

// SearchBatch implements Engine. A generation's children are bred against
// the frozen parent population — no proposal depends on a sibling's fitness
// — so the whole brood is submitted as one batch.
func (g *GenerationalGA) SearchBatch(space tunespace.Space, obj BatchObjective, budget int, seed int64) Result {
	start := time.Now()
	rng := rand.New(rand.NewSource(seed))
	t := newTracker(obj, budget)

	pop := initPopulation(space, rng, t, g.PopSize)
	for !t.exhausted() && len(pop) > 0 {
		sortByFitness(pop)
		next := make([]individual, 0, g.PopSize)
		// Elitism: carry the best individuals unchanged (no re-evaluation).
		for i := 0; i < g.Elites && i < len(pop); i++ {
			next = append(next, pop[i])
		}
		n := min(g.PopSize-len(next), t.remaining())
		if n <= 0 {
			break // degenerate config (elites fill the population)
		}
		children := make([]tunespace.Vector, n)
		for i := range children {
			a := tournament(pop, rng, g.TournamentK)
			b := tournament(pop, rng, g.TournamentK)
			child := a.v
			if rng.Float64() < g.CrossoverP {
				child = space.Crossover(rng, a.v, b.v)
			}
			children[i] = space.Mutate(rng, child, g.MutationRate)
		}
		for i, fit := range t.evalBatch(children) {
			next = append(next, individual{children[i], fit})
		}
		pop = next
	}
	return t.result(g.Name(), start)
}

// ---------------------------------------------------------------------------
// Steady-state GA

// SteadyStateGA breeds one child at a time and replaces the current worst
// individual when the child improves on it — the "sGA" of Fig. 4. Each
// proposal depends on the previous replacement, so the engine is inherently
// sequential: under SearchBatch it submits single-candidate batches.
type SteadyStateGA struct {
	PopSize      int
	TournamentK  int
	MutationRate float64
}

// NewSteadyStateGA returns the engine with the standard configuration.
func NewSteadyStateGA() *SteadyStateGA {
	return &SteadyStateGA{PopSize: 32, TournamentK: 3, MutationRate: 0.25}
}

// Name implements Engine.
func (*SteadyStateGA) Name() string { return "sGA" }

// Search implements Engine.
func (g *SteadyStateGA) Search(space tunespace.Space, obj Objective, budget int, seed int64) Result {
	return g.SearchBatch(space, SequentialBatch(obj), budget, seed)
}

// SearchBatch implements Engine. Only the initial population evaluates as a
// real batch; see the type comment for why breeding cannot.
func (g *SteadyStateGA) SearchBatch(space tunespace.Space, obj BatchObjective, budget int, seed int64) Result {
	start := time.Now()
	rng := rand.New(rand.NewSource(seed))
	t := newTracker(obj, budget)

	pop := initPopulation(space, rng, t, g.PopSize)
	for !t.exhausted() && len(pop) >= 2 {
		a := tournament(pop, rng, g.TournamentK)
		b := tournament(pop, rng, g.TournamentK)
		child := space.Mutate(rng, space.Crossover(rng, a.v, b.v), g.MutationRate)
		fit, ok := t.eval(child)
		if !ok {
			break
		}
		// Replace the worst member if the child beats it.
		worst := 0
		for i := range pop {
			if pop[i].fit > pop[worst].fit {
				worst = i
			}
		}
		if fit < pop[worst].fit {
			pop[worst] = individual{child, fit}
		}
	}
	return t.result(g.Name(), start)
}

// ---------------------------------------------------------------------------
// Differential evolution

// DifferentialEvolution implements DE/rand/1/bin adapted to the integer
// tuning space via Space.Blend, in its textbook synchronous form: every
// trial of a generation is built against the same population snapshot, the
// generation is evaluated as one batch, and selection is applied afterwards.
// (Synchronous generations are both the canonical DE formulation and what
// makes the population batchable.)
type DifferentialEvolution struct {
	PopSize    int
	F          float64 // differential weight
	CrossoverP float64
}

// NewDifferentialEvolution returns the engine with the standard
// configuration (F retuned from 0.7 to 0.5 when the engine moved to
// synchronous generations; the lower differential weight recovers the
// faster convergence the asynchronous form got from immediate replacement).
func NewDifferentialEvolution() *DifferentialEvolution {
	return &DifferentialEvolution{PopSize: 32, F: 0.5, CrossoverP: 0.5}
}

// Name implements Engine.
func (*DifferentialEvolution) Name() string { return "differential evolution" }

// Search implements Engine.
func (de *DifferentialEvolution) Search(space tunespace.Space, obj Objective, budget int, seed int64) Result {
	return de.SearchBatch(space, SequentialBatch(obj), budget, seed)
}

// SearchBatch implements Engine.
func (de *DifferentialEvolution) SearchBatch(space tunespace.Space, obj BatchObjective, budget int, seed int64) Result {
	start := time.Now()
	rng := rand.New(rand.NewSource(seed))
	t := newTracker(obj, budget)

	pop := initPopulation(space, rng, t, de.PopSize)
	for !t.exhausted() && len(pop) >= 4 {
		n := min(len(pop), t.remaining())
		trials := make([]tunespace.Vector, n)
		for i := range trials {
			// Pick three distinct partners from the generation snapshot.
			a, b, c := distinctThree(rng, len(pop), i)
			mutant := space.Blend(pop[a].v, pop[b].v, pop[c].v, de.F)
			trials[i] = binCrossover(rng, space, mutant, pop[i].v, de.CrossoverP)
		}
		for i, fit := range t.evalBatch(trials) {
			if fit < pop[i].fit {
				pop[i] = individual{trials[i], fit}
			}
		}
	}
	return t.result(de.Name(), start)
}

// binCrossover is DE's binomial crossover: each gene comes from the mutant
// with probability cr, and one uniformly chosen gene always does (so the
// trial never degenerates to a copy of the current individual).
func binCrossover(rng *rand.Rand, space tunespace.Space, mutant, cur tunespace.Vector, cr float64) tunespace.Vector {
	genes := [6]int{cur.Bx, cur.By, cur.Bz, cur.U, cur.C, cur.EffFuse()}
	mut := [6]int{mutant.Bx, mutant.By, mutant.Bz, mutant.U, mutant.C, mutant.EffFuse()}
	forced := rng.Intn(len(genes))
	for g := range genes {
		if g == forced || rng.Float64() < cr {
			genes[g] = mut[g]
		}
	}
	return space.Clamp(tunespace.Vector{Bx: genes[0], By: genes[1], Bz: genes[2], U: genes[3], C: genes[4], K: genes[5]})
}

// ---------------------------------------------------------------------------
// Evolution strategy

// EvolutionStrategy is a (μ+λ) ES: the μ best parents generate λ mutated
// offspring; parents and offspring compete for survival.
type EvolutionStrategy struct {
	Mu, Lambda   int
	MutationRate float64
}

// NewEvolutionStrategy returns the engine with the standard configuration.
func NewEvolutionStrategy() *EvolutionStrategy {
	return &EvolutionStrategy{Mu: 8, Lambda: 24, MutationRate: 0.4}
}

// Name implements Engine.
func (*EvolutionStrategy) Name() string { return "evolutive strategy" }

// Search implements Engine.
func (es *EvolutionStrategy) Search(space tunespace.Space, obj Objective, budget int, seed int64) Result {
	return es.SearchBatch(space, SequentialBatch(obj), budget, seed)
}

// SearchBatch implements Engine. All λ offspring of a generation mutate the
// same frozen parent set, so they evaluate as one batch.
func (es *EvolutionStrategy) SearchBatch(space tunespace.Space, obj BatchObjective, budget int, seed int64) Result {
	start := time.Now()
	rng := rand.New(rand.NewSource(seed))
	t := newTracker(obj, budget)

	pop := initPopulation(space, rng, t, es.Mu+es.Lambda)
	for !t.exhausted() && len(pop) > 0 {
		sortByFitness(pop)
		mu := min(es.Mu, len(pop))
		parents := pop[:mu]
		n := min(es.Lambda, t.remaining())
		children := make([]tunespace.Vector, n)
		for k := range children {
			p := parents[rng.Intn(len(parents))]
			children[k] = space.Mutate(rng, p.v, es.MutationRate)
		}
		offspring := make([]individual, 0, n)
		for k, fit := range t.evalBatch(children) {
			offspring = append(offspring, individual{children[k], fit})
		}
		pop = append(append([]individual(nil), parents...), offspring...)
	}
	return t.result(es.Name(), start)
}

// ---------------------------------------------------------------------------
// Shared helpers

// initPopulation draws and evaluates the initial population as one batch;
// random draws never depend on results, so the trajectory matches the old
// draw-evaluate-draw loop exactly.
func initPopulation(space tunespace.Space, rng *rand.Rand, t *tracker, n int) []individual {
	n = min(n, t.remaining())
	if n <= 0 {
		return nil
	}
	vs := make([]tunespace.Vector, n)
	for i := range vs {
		vs[i] = space.Random(rng)
	}
	vals := t.evalBatch(vs)
	pop := make([]individual, n)
	for i := range pop {
		pop[i] = individual{vs[i], vals[i]}
	}
	return pop
}

func sortByFitness(pop []individual) {
	sort.SliceStable(pop, func(a, b int) bool { return pop[a].fit < pop[b].fit })
}

func tournament(pop []individual, rng *rand.Rand, k int) individual {
	best := pop[rng.Intn(len(pop))]
	for i := 1; i < k; i++ {
		c := pop[rng.Intn(len(pop))]
		if c.fit < best.fit {
			best = c
		}
	}
	return best
}

// distinctThree picks three distinct indices, all different from excluded.
func distinctThree(rng *rand.Rand, n, excluded int) (int, int, int) {
	pick := func(used ...int) int {
		for {
			v := rng.Intn(n)
			ok := v != excluded
			for _, u := range used {
				if v == u {
					ok = false
				}
			}
			if ok {
				return v
			}
		}
	}
	a := pick()
	b := pick(a)
	c := pick(a, b)
	return a, b, c
}
