package search

import (
	"math/rand"
	"sort"
	"time"

	"repro/internal/tunespace"
)

// ---------------------------------------------------------------------------
// Random search

// RandomSearch samples the space uniformly — the weakest baseline and a
// sanity floor for the others.
type RandomSearch struct{}

// NewRandomSearch returns a random-search engine.
func NewRandomSearch() *RandomSearch { return &RandomSearch{} }

// Name implements Engine.
func (*RandomSearch) Name() string { return "random" }

// Search implements Engine.
func (*RandomSearch) Search(space tunespace.Space, obj Objective, budget int, seed int64) Result {
	start := time.Now()
	rng := rand.New(rand.NewSource(seed))
	t := newTracker(obj, budget)
	for !t.exhausted() {
		if _, ok := t.eval(space.Random(rng)); !ok {
			break
		}
	}
	return t.result("random", start)
}

// ---------------------------------------------------------------------------
// Generational GA

// GenerationalGA evolves a full population each generation with tournament
// selection, uniform crossover, mutation and elitism. It is the paper's base
// configuration (Fig. 4 speedups are relative to its 1024-evaluation result).
type GenerationalGA struct {
	PopSize      int
	TournamentK  int
	CrossoverP   float64
	MutationRate float64
	Elites       int
}

// NewGenerationalGA returns the engine with the standard configuration.
func NewGenerationalGA() *GenerationalGA {
	return &GenerationalGA{PopSize: 32, TournamentK: 3, CrossoverP: 0.9, MutationRate: 0.25, Elites: 2}
}

// Name implements Engine.
func (*GenerationalGA) Name() string { return "genetic algorithm" }

// Search implements Engine.
func (g *GenerationalGA) Search(space tunespace.Space, obj Objective, budget int, seed int64) Result {
	start := time.Now()
	rng := rand.New(rand.NewSource(seed))
	t := newTracker(obj, budget)

	pop := initPopulation(space, rng, t, g.PopSize)
	for !t.exhausted() && len(pop) > 0 {
		sortByFitness(pop)
		next := make([]individual, 0, g.PopSize)
		// Elitism: carry the best individuals unchanged (no re-evaluation).
		for i := 0; i < g.Elites && i < len(pop); i++ {
			next = append(next, pop[i])
		}
		for len(next) < g.PopSize && !t.exhausted() {
			a := tournament(pop, rng, g.TournamentK)
			b := tournament(pop, rng, g.TournamentK)
			child := a.v
			if rng.Float64() < g.CrossoverP {
				child = space.Crossover(rng, a.v, b.v)
			}
			child = space.Mutate(rng, child, g.MutationRate)
			fit, ok := t.eval(child)
			if !ok {
				break
			}
			next = append(next, individual{child, fit})
		}
		pop = next
	}
	return t.result(g.Name(), start)
}

// ---------------------------------------------------------------------------
// Steady-state GA

// SteadyStateGA breeds one child at a time and replaces the current worst
// individual when the child improves on it — the "sGA" of Fig. 4.
type SteadyStateGA struct {
	PopSize      int
	TournamentK  int
	MutationRate float64
}

// NewSteadyStateGA returns the engine with the standard configuration.
func NewSteadyStateGA() *SteadyStateGA {
	return &SteadyStateGA{PopSize: 32, TournamentK: 3, MutationRate: 0.25}
}

// Name implements Engine.
func (*SteadyStateGA) Name() string { return "sGA" }

// Search implements Engine.
func (g *SteadyStateGA) Search(space tunespace.Space, obj Objective, budget int, seed int64) Result {
	start := time.Now()
	rng := rand.New(rand.NewSource(seed))
	t := newTracker(obj, budget)

	pop := initPopulation(space, rng, t, g.PopSize)
	for !t.exhausted() && len(pop) >= 2 {
		a := tournament(pop, rng, g.TournamentK)
		b := tournament(pop, rng, g.TournamentK)
		child := space.Mutate(rng, space.Crossover(rng, a.v, b.v), g.MutationRate)
		fit, ok := t.eval(child)
		if !ok {
			break
		}
		// Replace the worst member if the child beats it.
		worst := 0
		for i := range pop {
			if pop[i].fit > pop[worst].fit {
				worst = i
			}
		}
		if fit < pop[worst].fit {
			pop[worst] = individual{child, fit}
		}
	}
	return t.result(g.Name(), start)
}

// ---------------------------------------------------------------------------
// Differential evolution

// DifferentialEvolution implements DE/rand/1/bin adapted to the integer
// tuning space via Space.Blend.
type DifferentialEvolution struct {
	PopSize    int
	F          float64 // differential weight
	CrossoverP float64
}

// NewDifferentialEvolution returns the engine with the standard configuration.
func NewDifferentialEvolution() *DifferentialEvolution {
	return &DifferentialEvolution{PopSize: 32, F: 0.7, CrossoverP: 0.5}
}

// Name implements Engine.
func (*DifferentialEvolution) Name() string { return "differential evolution" }

// Search implements Engine.
func (de *DifferentialEvolution) Search(space tunespace.Space, obj Objective, budget int, seed int64) Result {
	start := time.Now()
	rng := rand.New(rand.NewSource(seed))
	t := newTracker(obj, budget)

	pop := initPopulation(space, rng, t, de.PopSize)
	for !t.exhausted() && len(pop) >= 4 {
		for i := range pop {
			if t.exhausted() {
				break
			}
			// Pick three distinct partners.
			a, b, c := distinctThree(rng, len(pop), i)
			mutant := space.Blend(pop[a].v, pop[b].v, pop[c].v, de.F)
			trial := pop[i].v
			if rng.Float64() < de.CrossoverP {
				trial = space.Crossover(rng, mutant, pop[i].v)
			} else {
				trial = mutant
			}
			fit, ok := t.eval(trial)
			if !ok {
				break
			}
			if fit < pop[i].fit {
				pop[i] = individual{trial, fit}
			}
		}
	}
	return t.result(de.Name(), start)
}

// ---------------------------------------------------------------------------
// Evolution strategy

// EvolutionStrategy is a (μ+λ) ES: the μ best parents generate λ mutated
// offspring; parents and offspring compete for survival.
type EvolutionStrategy struct {
	Mu, Lambda   int
	MutationRate float64
}

// NewEvolutionStrategy returns the engine with the standard configuration.
func NewEvolutionStrategy() *EvolutionStrategy {
	return &EvolutionStrategy{Mu: 8, Lambda: 24, MutationRate: 0.4}
}

// Name implements Engine.
func (*EvolutionStrategy) Name() string { return "evolutive strategy" }

// Search implements Engine.
func (es *EvolutionStrategy) Search(space tunespace.Space, obj Objective, budget int, seed int64) Result {
	start := time.Now()
	rng := rand.New(rand.NewSource(seed))
	t := newTracker(obj, budget)

	pop := initPopulation(space, rng, t, es.Mu+es.Lambda)
	for !t.exhausted() && len(pop) > 0 {
		sortByFitness(pop)
		mu := es.Mu
		if mu > len(pop) {
			mu = len(pop)
		}
		parents := pop[:mu]
		offspring := make([]individual, 0, es.Lambda)
		for k := 0; k < es.Lambda && !t.exhausted(); k++ {
			p := parents[rng.Intn(len(parents))]
			child := space.Mutate(rng, p.v, es.MutationRate)
			fit, ok := t.eval(child)
			if !ok {
				break
			}
			offspring = append(offspring, individual{child, fit})
		}
		pop = append(append([]individual(nil), parents...), offspring...)
	}
	return t.result(es.Name(), start)
}

// ---------------------------------------------------------------------------
// Shared helpers

func initPopulation(space tunespace.Space, rng *rand.Rand, t *tracker, n int) []individual {
	pop := make([]individual, 0, n)
	for i := 0; i < n && !t.exhausted(); i++ {
		v := space.Random(rng)
		fit, ok := t.eval(v)
		if !ok {
			break
		}
		pop = append(pop, individual{v, fit})
	}
	return pop
}

func sortByFitness(pop []individual) {
	sort.SliceStable(pop, func(a, b int) bool { return pop[a].fit < pop[b].fit })
}

func tournament(pop []individual, rng *rand.Rand, k int) individual {
	best := pop[rng.Intn(len(pop))]
	for i := 1; i < k; i++ {
		c := pop[rng.Intn(len(pop))]
		if c.fit < best.fit {
			best = c
		}
	}
	return best
}

// distinctThree picks three distinct indices, all different from excluded.
func distinctThree(rng *rand.Rand, n, excluded int) (int, int, int) {
	pick := func(used ...int) int {
		for {
			v := rng.Intn(n)
			ok := v != excluded
			for _, u := range used {
				if v == u {
					ok = false
				}
			}
			if ok {
				return v
			}
		}
	}
	a := pick()
	b := pick(a)
	c := pick(a, b)
	return a, b, c
}
