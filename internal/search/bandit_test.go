package search

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/perfmodel"
	"repro/internal/stencil"
	"repro/internal/tunespace"
)

func TestBanditRespectsBudget(t *testing.T) {
	space := tunespace.NewSpace(3)
	bp := NewBanditPortfolio()
	for _, budget := range []int{8, 100, 300} {
		r := bp.Search(space, quadObjective, budget, 1)
		if r.Evaluations > budget {
			t.Errorf("budget %d: used %d", budget, r.Evaluations)
		}
		if r.BestValue >= 1e308 {
			t.Errorf("budget %d: found nothing", budget)
		}
	}
}

func TestBanditFindsGoodSolutions(t *testing.T) {
	space := tunespace.NewSpace(3)
	// The portfolio pays exploration overhead over a single engine, so the
	// bound is looser than the fixed-engine test's 2.0.
	var sum float64
	for seed := int64(0); seed < 4; seed++ {
		sum += NewBanditPortfolio().Search(space, quadObjective, 512, seed).BestValue
	}
	if avg := sum / 4; avg > 2.5 {
		t.Errorf("bandit avg best %.3f after 512 evals, want ≤ 2.5", avg)
	}
}

func TestBanditCompetitiveWithBestEngine(t *testing.T) {
	// On the simulator, the portfolio should track the best fixed engine
	// within a modest factor (it pays exploration overhead).
	m := perfmodel.New(machine.XeonE52680v3())
	q := stencil.Instance{Kernel: stencil.Laplacian(), Size: stencil.Size3D(128, 128, 128)}
	obj := func(v tunespace.Vector) float64 { return m.Runtime(q, v) }
	space := tunespace.NewSpace(3)

	var bestFixed float64
	for i, e := range Engines() {
		r := e.Search(space, obj, 256, 5)
		if i == 0 || r.BestValue < bestFixed {
			bestFixed = r.BestValue
		}
	}
	br := NewBanditPortfolio().Search(space, obj, 256, 5)
	if br.BestValue > bestFixed*1.25 {
		t.Errorf("bandit %.5f more than 25%% behind best fixed engine %.5f", br.BestValue, bestFixed)
	}
}

func TestBanditDeterministic(t *testing.T) {
	space := tunespace.NewSpace(2)
	a := NewBanditPortfolio().Search(space, quadObjective, 200, 9)
	b := NewBanditPortfolio().Search(space, quadObjective, 200, 9)
	if a.Best != b.Best || a.BestValue != b.BestValue {
		t.Error("bandit not deterministic for fixed seed")
	}
}

func TestBanditHistoryMonotone(t *testing.T) {
	space := tunespace.NewSpace(3)
	r := NewBanditPortfolio().Search(space, quadObjective, 300, 2)
	for i := 1; i < len(r.History); i++ {
		if r.History[i].Value > r.History[i-1].Value {
			t.Fatalf("best-so-far increased at %d", i)
		}
	}
	if r.Engine != "bandit portfolio" {
		t.Errorf("engine name %q", r.Engine)
	}
}

func TestBanditTerminatesWhenArmsConverge(t *testing.T) {
	// A constant objective gives no improvement: every engine memoises
	// duplicates quickly. The portfolio must still terminate.
	space := tunespace.NewSpace(2)
	flat := func(v tunespace.Vector) float64 { return 1 }
	done := make(chan Result, 1)
	go func() { done <- NewBanditPortfolio().Search(space, flat, 10_000, 4) }()
	r := <-done
	if r.BestValue != 1 {
		t.Errorf("best %v on flat objective", r.BestValue)
	}
}
