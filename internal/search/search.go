// Package search implements the iterative-compilation search baselines of
// Section VI-A: a generational genetic algorithm, a steady-state genetic
// algorithm (sGA), differential evolution, a (μ+λ) evolution strategy, and
// random search. Every engine runs for a fixed evaluation budget (the paper
// uses 1024) regardless of intermediate quality — matching the paper's
// decision not to drop under-performing engines the way OpenTuner's bandit
// does — and records its best-so-far trajectory for the Fig. 5 convergence
// curves.
package search

import (
	"fmt"
	"math"
	"time"

	"repro/internal/tunespace"
)

// Objective evaluates one tuning vector and returns its runtime in seconds
// (lower is better). Each call counts against the engine's budget.
type Objective func(tunespace.Vector) float64

// BatchObjective evaluates a set of tuning vectors and returns their runtimes
// in input order (one value per vector). Implementations may evaluate the
// vectors concurrently; engines never submit a vector whose proposal depends
// on a sibling's result, so any schedule is legal. Each *vector* counts
// against the engine's budget exactly as with Objective.
type BatchObjective func([]tunespace.Vector) []float64

// SequentialBatch adapts a plain Objective into a BatchObjective that
// evaluates one vector at a time on the calling goroutine. It is the
// evaluation substrate behind every engine's Search method, which makes
// "sequential run" and "batched run with one worker" the same code path.
func SequentialBatch(obj Objective) BatchObjective {
	return func(vs []tunespace.Vector) []float64 {
		out := make([]float64, len(vs))
		for i, v := range vs {
			out[i] = obj(v)
		}
		return out
	}
}

// HistoryPoint records the best value known after a given number of
// evaluations.
type HistoryPoint struct {
	Evaluation int
	Value      float64
	Vector     tunespace.Vector
}

// Result is the outcome of one search run.
type Result struct {
	Engine      string
	Best        tunespace.Vector
	BestValue   float64
	Evaluations int
	// History holds the best-so-far after every evaluation (length equals
	// Evaluations); entry k is the state after k+1 evaluations.
	History []HistoryPoint
	Elapsed time.Duration
}

// BestAfter returns the best value known after n evaluations (the Fig. 5
// x-axis). It clamps n into [1, Evaluations].
func (r *Result) BestAfter(n int) float64 {
	if len(r.History) == 0 {
		return r.BestValue
	}
	if n < 1 {
		n = 1
	}
	if n > len(r.History) {
		n = len(r.History)
	}
	return r.History[n-1].Value
}

// Engine is an iterative search method over the tuning space.
type Engine interface {
	Name() string
	// Search minimizes obj over the space within the evaluation budget,
	// evaluating candidates one at a time on the calling goroutine.
	Search(space tunespace.Space, obj Objective, budget int, seed int64) Result
	// SearchBatch is Search with batched evaluation: the engine submits each
	// generation's (or chunk's) independent candidates as one BatchObjective
	// call, which may run them concurrently. Results are committed in
	// proposal order, so for a deterministic objective the returned Result
	// (Best, BestValue, History) is bit-identical to Search under the same
	// seed. Search is implemented as SearchBatch over SequentialBatch(obj).
	SearchBatch(space tunespace.Space, obj BatchObjective, budget int, seed int64) Result
}

// tracker wraps a batch objective with budget accounting and best-so-far
// history. Evaluations may be scheduled concurrently by the BatchObjective,
// but accounting is committed in proposal order — the deterministic-ordering
// layer that keeps batched and sequential runs bit-identical.
type tracker struct {
	batch   BatchObjective
	budget  int
	used    int
	best    tunespace.Vector
	bestVal float64
	history []HistoryPoint
	// memo avoids re-spending budget on duplicate vectors, the way
	// iterative compilers cache compiled variants.
	memo map[tunespace.Vector]float64
}

func newTracker(batch BatchObjective, budget int) *tracker {
	return &tracker{
		batch:   batch,
		budget:  budget,
		bestVal: inf(),
		history: make([]HistoryPoint, 0, budget),
		memo:    make(map[tunespace.Vector]float64, budget),
	}
}

func inf() float64 { return math.Inf(1) }

// exhausted reports whether the budget is spent.
func (t *tracker) exhausted() bool { return t.used >= t.budget }

// remaining returns how many evaluations the budget still allows. Engines
// use it to size a generation's batch — the same cut-off the sequential
// loops applied one proposal at a time.
func (t *tracker) remaining() int { return t.budget - t.used }

// evalBatch evaluates the proposals in vs, truncated to the remaining
// budget, and returns the runtime of each accepted proposal in order. Every
// accepted proposal charges one evaluation against the budget — the paper
// runs each engine for a fixed number of iterations, so proposing an
// already-seen configuration still costs an iteration (otherwise a converged
// engine that keeps re-proposing its optimum would loop forever). Only
// first-seen vectors reach the objective (the memo supplies the rest), and
// best/history bookkeeping is committed strictly in proposal order.
func (t *tracker) evalBatch(vs []tunespace.Vector) []float64 {
	n := min(len(vs), t.remaining())
	if n == 0 {
		return nil
	}
	vs = vs[:n]
	var fresh []tunespace.Vector
	for _, v := range vs {
		if _, seen := t.memo[v]; !seen {
			t.memo[v] = math.NaN() // placeholder: claims the slot for batch dedup
			fresh = append(fresh, v)
		}
	}
	if len(fresh) > 0 {
		vals := t.batch(fresh)
		for i, v := range fresh {
			t.memo[v] = vals[i]
		}
	}
	out := make([]float64, n)
	for i, v := range vs {
		val := t.memo[v]
		t.used++
		if val < t.bestVal {
			t.bestVal = val
			t.best = v
		}
		t.history = append(t.history, HistoryPoint{Evaluation: t.used, Value: t.bestVal, Vector: t.best})
		out[i] = val
	}
	return out
}

// eval evaluates a single vector — the path the inherently sequential
// engines (steady-state GA, simulated annealing, hill climbing) use, since
// each of their proposals depends on the previous result. It returns the
// runtime and false when the budget is exhausted.
func (t *tracker) eval(v tunespace.Vector) (float64, bool) {
	if t.exhausted() {
		if val, ok := t.memo[v]; ok {
			return val, true // answering from cache is free after exhaustion
		}
		return inf(), false
	}
	return t.evalBatch([]tunespace.Vector{v})[0], true
}

func (t *tracker) result(name string, start time.Time) Result {
	return Result{
		Engine:      name,
		Best:        t.best,
		BestValue:   t.bestVal,
		Evaluations: t.used,
		History:     t.history,
		Elapsed:     time.Since(start),
	}
}

// individual pairs a vector with its fitness.
type individual struct {
	v   tunespace.Vector
	fit float64
}

// Engines returns the four search baselines of Sec. VI-A in the order of
// Fig. 4's legend, ready to run.
func Engines() []Engine {
	return []Engine{
		NewGenerationalGA(),
		NewDifferentialEvolution(),
		NewEvolutionStrategy(),
		NewSteadyStateGA(),
	}
}

// EngineByName returns a named engine ("ga", "de", "es", "sga", "random").
func EngineByName(name string) (Engine, error) {
	switch name {
	case "ga", "genetic":
		return NewGenerationalGA(), nil
	case "de", "differential-evolution":
		return NewDifferentialEvolution(), nil
	case "es", "evolution-strategy":
		return NewEvolutionStrategy(), nil
	case "sga", "steady-state":
		return NewSteadyStateGA(), nil
	case "random":
		return NewRandomSearch(), nil
	case "sa", "simulated-annealing":
		return NewSimulatedAnnealing(), nil
	case "hill", "hill-climbing":
		return NewHillClimber(), nil
	case "bandit", "portfolio":
		return NewBanditPortfolio(), nil
	default:
		return nil, fmt.Errorf("search: unknown engine %q", name)
	}
}
