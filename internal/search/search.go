// Package search implements the iterative-compilation search baselines of
// Section VI-A: a generational genetic algorithm, a steady-state genetic
// algorithm (sGA), differential evolution, a (μ+λ) evolution strategy, and
// random search. Every engine runs for a fixed evaluation budget (the paper
// uses 1024) regardless of intermediate quality — matching the paper's
// decision not to drop under-performing engines the way OpenTuner's bandit
// does — and records its best-so-far trajectory for the Fig. 5 convergence
// curves.
package search

import (
	"fmt"
	"math"
	"time"

	"repro/internal/tunespace"
)

// Objective evaluates one tuning vector and returns its runtime in seconds
// (lower is better). Each call counts against the engine's budget.
type Objective func(tunespace.Vector) float64

// HistoryPoint records the best value known after a given number of
// evaluations.
type HistoryPoint struct {
	Evaluation int
	Value      float64
	Vector     tunespace.Vector
}

// Result is the outcome of one search run.
type Result struct {
	Engine      string
	Best        tunespace.Vector
	BestValue   float64
	Evaluations int
	// History holds the best-so-far after every evaluation (length equals
	// Evaluations); entry k is the state after k+1 evaluations.
	History []HistoryPoint
	Elapsed time.Duration
}

// BestAfter returns the best value known after n evaluations (the Fig. 5
// x-axis). It clamps n into [1, Evaluations].
func (r *Result) BestAfter(n int) float64 {
	if len(r.History) == 0 {
		return r.BestValue
	}
	if n < 1 {
		n = 1
	}
	if n > len(r.History) {
		n = len(r.History)
	}
	return r.History[n-1].Value
}

// Engine is an iterative search method over the tuning space.
type Engine interface {
	Name() string
	// Search minimizes obj over the space within the evaluation budget.
	Search(space tunespace.Space, obj Objective, budget int, seed int64) Result
}

// tracker wraps an objective with budget accounting and best-so-far history.
type tracker struct {
	obj     Objective
	budget  int
	used    int
	best    tunespace.Vector
	bestVal float64
	history []HistoryPoint
	// memo avoids re-spending budget on duplicate vectors, the way
	// iterative compilers cache compiled variants.
	memo map[tunespace.Vector]float64
}

func newTracker(obj Objective, budget int) *tracker {
	return &tracker{
		obj:     obj,
		budget:  budget,
		bestVal: inf(),
		history: make([]HistoryPoint, 0, budget),
		memo:    make(map[tunespace.Vector]float64, budget),
	}
}

func inf() float64 { return math.Inf(1) }

// exhausted reports whether the budget is spent.
func (t *tracker) exhausted() bool { return t.used >= t.budget }

// eval evaluates v. Every call charges one evaluation against the budget —
// the paper runs each engine for a fixed number of iterations, so proposing
// an already-seen configuration still costs an iteration (otherwise a
// converged engine that keeps re-proposing its optimum would loop forever).
// The memo only avoids recomputing the objective. It returns the runtime and
// false when the budget is exhausted.
func (t *tracker) eval(v tunespace.Vector) (float64, bool) {
	if t.exhausted() {
		if val, ok := t.memo[v]; ok {
			return val, true // answering from cache is free after exhaustion
		}
		return inf(), false
	}
	val, seen := t.memo[v]
	if !seen {
		val = t.obj(v)
		t.memo[v] = val
	}
	t.used++
	if val < t.bestVal {
		t.bestVal = val
		t.best = v
	}
	t.history = append(t.history, HistoryPoint{Evaluation: t.used, Value: t.bestVal, Vector: t.best})
	return val, true
}

func (t *tracker) result(name string, start time.Time) Result {
	return Result{
		Engine:      name,
		Best:        t.best,
		BestValue:   t.bestVal,
		Evaluations: t.used,
		History:     t.history,
		Elapsed:     time.Since(start),
	}
}

// individual pairs a vector with its fitness.
type individual struct {
	v   tunespace.Vector
	fit float64
}

// Engines returns the four search baselines of Sec. VI-A in the order of
// Fig. 4's legend, ready to run.
func Engines() []Engine {
	return []Engine{
		NewGenerationalGA(),
		NewDifferentialEvolution(),
		NewEvolutionStrategy(),
		NewSteadyStateGA(),
	}
}

// EngineByName returns a named engine ("ga", "de", "es", "sga", "random").
func EngineByName(name string) (Engine, error) {
	switch name {
	case "ga", "genetic":
		return NewGenerationalGA(), nil
	case "de", "differential-evolution":
		return NewDifferentialEvolution(), nil
	case "es", "evolution-strategy":
		return NewEvolutionStrategy(), nil
	case "sga", "steady-state":
		return NewSteadyStateGA(), nil
	case "random":
		return NewRandomSearch(), nil
	case "sa", "simulated-annealing":
		return NewSimulatedAnnealing(), nil
	case "hill", "hill-climbing":
		return NewHillClimber(), nil
	case "bandit", "portfolio":
		return NewBanditPortfolio(), nil
	default:
		return nil, fmt.Errorf("search: unknown engine %q", name)
	}
}
