// Package retrain closes the learning loop of the serving system: a
// background worker tails the durable observation WAL, merges real measured
// runtimes into the synthetic training base, refits the ranking SVM, and
// promotes the candidate only when a canary gate says it ranks at least as
// well as the incumbent on held-out data.
//
// # Canary semantics
//
// The held-out set is drawn deterministically from the *trusted* synthetic
// base set (a hash-based fraction of its queries), never from observations:
// client-reported runtimes are exactly the data a canary must not trust, so
// they go entirely into training and the gate compares candidate and
// incumbent on the same untouched queries. The candidate is promoted when its
// mean held-out Kendall τ is no worse than the incumbent's minus Epsilon;
// otherwise the candidate artifact stays on disk next to a rejection report
// and the incumbent keeps serving. Promotion is crash-consistent: the
// candidate is fully saved first, then the store's current.json pointer flips
// atomically — a crash anywhere in between leaves the incumbent serving.
package retrain

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/feature"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/perfmodel"
	"repro/internal/store"
	"repro/internal/svmrank"
	"repro/internal/trainer"
	"repro/internal/wal"
)

// Config wires a retrain worker.
type Config struct {
	// WALDir is the observation log directory the worker tails.
	WALDir string
	// Store holds the incumbent and receives candidate artifacts.
	Store *store.Store
	// Prefix names candidates "<Prefix>-v<N>" (default "retrained").
	Prefix string
	// Interval is the schedule trigger: retrain at most this often when new
	// observations exist. 0 disables the timer (count trigger still fires).
	Interval time.Duration
	// MinRecords is the record-count trigger: retrain as soon as this many
	// new observations accumulated since the last attempt (default 64).
	MinRecords int
	// PollInterval is how often the count trigger re-checks the WAL
	// (default 5s; tests shrink it).
	PollInterval time.Duration
	// HoldoutFraction of the synthetic base queries is held out for the
	// canary gate, excluded from candidate training (default 0.2).
	HoldoutFraction float64
	// Epsilon is the canary tolerance: promote when the candidate's mean
	// held-out τ >= incumbent's − Epsilon (default 0.02).
	Epsilon float64
	// BasePoints sizes the synthetic base training set (default 384).
	BasePoints int
	// Seed drives base-set generation and SVM fitting, making retrains
	// reproducible (default 1).
	Seed int64
	// Workers bounds base-set generation concurrency (0/1 sequential).
	Workers int
	// Machine is the simulated substrate for the base set (default the
	// paper's Xeon E5-2680 v3).
	Machine *machine.Machine
	// OnPromote, when set, runs after a successful promotion — the server
	// hooks its registry hot-swap here.
	OnPromote func(name string)
	// Logger receives worker progress lines (nil discards them).
	Logger *obs.Logger
	// Registry, when non-nil, receives the worker's lifecycle metrics:
	// stencilserve_retrain_{cycles,promotions,rejections,failures}_total and
	// the candidate/incumbent canary-τ gauges. nil disables instrumentation.
	Registry *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Prefix == "" {
		c.Prefix = "retrained"
	}
	if c.MinRecords <= 0 {
		c.MinRecords = 64
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 5 * time.Second
	}
	if c.HoldoutFraction <= 0 || c.HoldoutFraction >= 1 {
		c.HoldoutFraction = 0.2
	}
	if c.Epsilon < 0 {
		c.Epsilon = 0
	} else if c.Epsilon == 0 {
		c.Epsilon = 0.02
	}
	if c.BasePoints <= 0 {
		c.BasePoints = 384
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Machine == nil {
		c.Machine = machine.XeonE52680v3()
	}
	return c
}

// Outcome reports one retrain attempt.
type Outcome struct {
	// Candidate is the saved artifact name ("" when no attempt ran).
	Candidate string `json:"candidate,omitempty"`
	// Promoted says whether the canary gate passed and current.json flipped.
	Promoted bool `json:"promoted"`
	// CandidateTau and IncumbentTau are mean Kendall τ on the held-out set.
	CandidateTau float64 `json:"candidate_tau"`
	IncumbentTau float64 `json:"incumbent_tau"`
	// Incumbent is the model the candidate was gated against ("" if none).
	Incumbent string `json:"incumbent,omitempty"`
	// Records is how many valid WAL observations entered training.
	Records int `json:"records"`
	// SkippedRecords counts observations rejected by validation.
	SkippedRecords int `json:"skipped_records,omitempty"`
	// Reason explains the decision: "canary-pass", "canary-fail",
	// "first-promotion".
	Reason string `json:"reason"`
	// Epsilon echoes the gate tolerance the decision used.
	Epsilon float64 `json:"epsilon"`
	// UnixNano stamps the attempt.
	UnixNano int64 `json:"unix_nano,omitempty"`
}

// Worker is the background retrain loop. Create with New, start Run in a
// goroutine, Stop to shut down. RetrainOnce is the synchronous core, also
// used directly by tests and by one-shot CLI invocations.
type Worker struct {
	cfg Config
	enc *feature.Encoder

	baseOnce sync.Once
	baseErr  error
	train    *svmrank.Dataset // synthetic base minus holdout
	holdout  *svmrank.Dataset // canary set

	m workerMetrics

	mu        sync.Mutex
	lastCount int64

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}

	// testHookBeforePromote, when set, runs after the candidate artifact is
	// saved and before the current.json pointer flips — the crash-injection
	// test panics here.
	testHookBeforePromote func()
}

// New validates the configuration and returns a stopped worker.
func New(cfg Config) (*Worker, error) {
	if cfg.WALDir == "" {
		return nil, fmt.Errorf("retrain: no WAL directory")
	}
	if cfg.Store == nil {
		return nil, fmt.Errorf("retrain: no store")
	}
	w := &Worker{
		cfg:  cfg.withDefaults(),
		enc:  feature.NewEncoder(),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	if reg := cfg.Registry; reg != nil {
		w.m = workerMetrics{
			cycles: reg.Counter("stencilserve_retrain_cycles_total",
				"Retrain attempts started."),
			promotions: reg.Counter("stencilserve_retrain_promotions_total",
				"Retrain candidates promoted by the canary gate."),
			rejections: reg.Counter("stencilserve_retrain_rejections_total",
				"Retrain candidates rejected by the canary gate."),
			failures: reg.Counter("stencilserve_retrain_failures_total",
				"Retrain attempts that errored before a gate decision."),
			candidateTau: reg.Gauge("stencilserve_retrain_candidate_tau",
				"Held-out Kendall tau of the most recent retrain candidate."),
			incumbentTau: reg.Gauge("stencilserve_retrain_incumbent_tau",
				"Held-out Kendall tau of the incumbent at the most recent gate."),
		}
	}
	return w, nil
}

// workerMetrics are the worker's obs handles; all nil (no-op) without a
// configured Registry.
type workerMetrics struct {
	cycles, promotions, rejections, failures *obs.Counter
	candidateTau, incumbentTau               *obs.Gauge
}

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Logger != nil {
		w.cfg.Logger.Printf(format, args...)
	}
}

// Run drives the triggers until Stop: the count trigger fires as soon as
// MinRecords new observations accumulate; the schedule trigger retrains on
// Interval whenever at least one new observation exists.
func (w *Worker) Run() {
	defer close(w.done)
	var schedule <-chan time.Time
	if w.cfg.Interval > 0 {
		t := time.NewTicker(w.cfg.Interval)
		defer t.Stop()
		schedule = t.C
	}
	poll := time.NewTicker(w.cfg.PollInterval)
	defer poll.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-schedule:
			w.maybeRetrain(true)
		case <-poll.C:
			w.maybeRetrain(false)
		}
	}
}

// Stop shuts the loop down and waits for any in-flight retrain to finish.
func (w *Worker) Stop() {
	w.stopOnce.Do(func() { close(w.stop) })
	<-w.done
}

func (w *Worker) maybeRetrain(scheduled bool) {
	n, err := wal.CountRecords(w.cfg.WALDir)
	if err != nil {
		w.logf("retrain: counting WAL records: %v", err)
		return
	}
	w.mu.Lock()
	fresh := n - w.lastCount
	w.mu.Unlock()
	if fresh <= 0 || (!scheduled && fresh < int64(w.cfg.MinRecords)) {
		return
	}
	out, err := w.RetrainOnce()
	if err != nil {
		w.logf("retrain: attempt failed: %v", err)
		return
	}
	w.mu.Lock()
	w.lastCount = n
	w.mu.Unlock()
	w.logf("retrain: candidate %s τ=%.4f incumbent %s τ=%.4f records=%d promoted=%t (%s)",
		out.Candidate, out.CandidateTau, out.Incumbent, out.IncumbentTau,
		out.Records, out.Promoted, out.Reason)
}

// base lazily generates the synthetic base set on the simulator and splits it
// into training and canary-holdout halves by a deterministic query hash. The
// split depends only on query names, so every retrain gates on the same
// holdout and candidate/incumbent τ are comparable across attempts.
func (w *Worker) base() (*svmrank.Dataset, *svmrank.Dataset, error) {
	w.baseOnce.Do(func() {
		set, err := dataset.Generate(perfmodel.New(w.cfg.Machine), dataset.Options{
			TargetPoints: w.cfg.BasePoints,
			Seed:         w.cfg.Seed,
			Encoder:      w.enc,
			Workers:      w.cfg.Workers,
		})
		if err != nil {
			w.baseErr = fmt.Errorf("retrain: generating base set: %w", err)
			return
		}
		w.train, w.holdout = &svmrank.Dataset{}, &svmrank.Dataset{}
		for _, e := range set.Data.Examples {
			if holdoutQuery(e.Query, w.cfg.HoldoutFraction) {
				w.holdout.Add(e)
			} else {
				w.train.Add(e)
			}
		}
		if w.holdout.Len() < 2 || w.train.Len() < 2 {
			w.baseErr = fmt.Errorf("retrain: degenerate holdout split (%d train, %d holdout)",
				w.train.Len(), w.holdout.Len())
		}
	})
	return w.train, w.holdout, w.baseErr
}

func holdoutQuery(q string, frac float64) bool {
	h := fnv.New32a()
	h.Write([]byte(q))
	return float64(h.Sum32()%1000) < frac*1000
}

// RetrainOnce reads the WAL, fits a candidate on base-train + observations,
// gates it on the holdout against the incumbent, saves it either way, and
// promotes on a pass. It is safe to call concurrently with serving; only one
// RetrainOnce should run at a time (Run serializes its own calls).
func (w *Worker) RetrainOnce() (*Outcome, error) {
	w.m.cycles.Inc()
	out, err := w.retrainOnce()
	if err != nil {
		w.m.failures.Inc()
		return nil, err
	}
	w.m.candidateTau.Set(out.CandidateTau)
	w.m.incumbentTau.Set(out.IncumbentTau)
	if out.Promoted {
		w.m.promotions.Inc()
	} else {
		w.m.rejections.Inc()
	}
	return out, nil
}

func (w *Worker) retrainOnce() (*Outcome, error) {
	baseTrain, holdout, err := w.base()
	if err != nil {
		return nil, err
	}
	recs, rep, err := wal.ReadAll(w.cfg.WALDir)
	if err != nil {
		return nil, fmt.Errorf("retrain: reading WAL: %w", err)
	}
	if !rep.Clean() {
		w.logf("retrain: WAL recovery report %+v", rep)
	}

	out := &Outcome{Epsilon: w.cfg.Epsilon, UnixNano: time.Now().UnixNano()}
	data := &svmrank.Dataset{}
	for _, e := range baseTrain.Examples {
		data.Add(e)
	}
	for _, r := range recs {
		if err := r.Validate(); err != nil {
			out.SkippedRecords++
			continue
		}
		q, err := r.Instance()
		if err != nil {
			out.SkippedRecords++
			continue
		}
		data.Add(svmrank.Example{
			Query: obsQuery(r, q),
			X:     w.enc.Encode(q, r.Tuning()),
			Y:     r.RuntimeSeconds,
		})
		out.Records++
	}
	if out.Records == 0 {
		return nil, fmt.Errorf("retrain: no valid observations in %s", w.cfg.WALDir)
	}

	cfg := trainer.DefaultConfig(w.cfg.BasePoints, w.cfg.Seed)
	model, stats, err := svmrank.Train(data, cfg.SVM)
	if err != nil {
		return nil, fmt.Errorf("retrain: fitting candidate: %w", err)
	}
	out.CandidateTau = meanTau(trainer.EvaluateTauData(model, holdout))

	// Incumbent: the store's promotion pointer, falling back to "default".
	incumbent, incumbentModel := w.incumbent()
	out.Incumbent = incumbent
	gatePassed := true
	out.Reason = "first-promotion"
	if incumbentModel != nil {
		out.IncumbentTau = meanTau(trainer.EvaluateTauData(incumbentModel, holdout))
		gatePassed = out.CandidateTau >= out.IncumbentTau-w.cfg.Epsilon
		if gatePassed {
			out.Reason = "canary-pass"
		} else {
			out.Reason = "canary-fail"
		}
	}

	// Save the candidate either way: a rejected candidate plus its report is
	// the audit trail of why serving did not change.
	name := w.nextName()
	out.Candidate = name
	art := &store.Artifact{
		Name:  name,
		Model: model,
		Meta: store.Meta{
			FeatureDim:     len(model.W),
			FeatureNames:   feature.Names(),
			TrainingPoints: data.Len(),
			Seed:           w.cfg.Seed,
			Mode:           "retrain",
			C:              cfg.SVM.C,
			Epochs:         cfg.SVM.Epochs,
			PairStrategy:   cfg.SVM.Pairs.Strategy.String(),
			PairWindow:     cfg.SVM.Pairs.Window,
			Pairs:          stats.Pairs,
		},
		Machine: w.cfg.Machine,
	}
	if err := w.cfg.Store.Save(art); err != nil {
		return nil, fmt.Errorf("retrain: saving candidate: %w", err)
	}

	if !gatePassed {
		out.Promoted = false
		w.writeReport(name, out)
		return out, nil
	}
	if w.testHookBeforePromote != nil {
		w.testHookBeforePromote()
	}
	if err := w.cfg.Store.SetCurrent(name, store.Promotion{
		Prev:         incumbent,
		Tau:          out.CandidateTau,
		IncumbentTau: out.IncumbentTau,
		Records:      out.Records,
		Reason:       out.Reason,
		UnixNano:     out.UnixNano,
	}); err != nil {
		return nil, fmt.Errorf("retrain: promoting %s: %w", name, err)
	}
	out.Promoted = true
	if w.cfg.OnPromote != nil {
		w.cfg.OnPromote(name)
	}
	return out, nil
}

// incumbent resolves the model the canary gates against.
func (w *Worker) incumbent() (string, *svmrank.Model) {
	name, _, err := w.cfg.Store.Current()
	if err != nil || name == "" {
		name = "default"
	}
	art, err := w.cfg.Store.Load(name)
	if err != nil {
		return "", nil
	}
	return name, art.Model
}

// nextName picks "<prefix>-v<N>" with N one past the highest existing
// candidate, so rejected candidates never get overwritten.
func (w *Worker) nextName() string {
	maxN := 0
	if infos, err := w.cfg.Store.List(); err == nil {
		for _, in := range infos {
			rest, ok := strings.CutPrefix(in.Name, w.cfg.Prefix+"-v")
			if !ok {
				continue
			}
			if n, err := strconv.Atoi(rest); err == nil && n > maxN {
				maxN = n
			}
		}
	}
	return fmt.Sprintf("%s-v%d", w.cfg.Prefix, maxN+1)
}

// writeReport drops rejection.json next to the candidate's documents. The
// file is intentionally outside the manifest: Load ignores it, so the
// artifact stays loadable for post-mortem inspection.
func (w *Worker) writeReport(name string, out *Outcome) {
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return
	}
	path := filepath.Join(w.cfg.Store.Dir(), name, "rejection.json")
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		w.logf("retrain: writing %s: %v", path, err)
	}
}

func obsQuery(r wal.Record, q interface{ ID() string }) string {
	fp := r.Fingerprint
	if len(fp) > 12 {
		fp = fp[:12]
	}
	if fp == "" {
		fp = "anon"
	}
	mach := r.Machine
	if mach == "" {
		mach = "unknown"
	}
	return fmt.Sprintf("obs/%s/%s@%s", fp, q.ID(), mach)
}

func meanTau(qs []trainer.QueryTau) float64 {
	vals := trainer.TauValues(qs)
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}
