package retrain

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/machine"
	"repro/internal/perfmodel"
	"repro/internal/stencil"
	"repro/internal/store"
	"repro/internal/svmrank"
	"repro/internal/trainer"
	"repro/internal/tunespace"
	"repro/internal/wal"
)

const testBasePoints = 192

// fitBaseModel trains a reference model on the full synthetic base set (the
// same simulator and seed the worker uses).
func fitBaseModel(t *testing.T) *svmrank.Model {
	t.Helper()
	set, err := dataset.Generate(perfmodel.New(machine.XeonE52680v3()), dataset.Options{
		TargetPoints: testBasePoints,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	model, _, err := svmrank.Train(set.Data, trainer.DefaultConfig(testBasePoints, 1).SVM)
	if err != nil {
		t.Fatal(err)
	}
	return model
}

func saveIncumbent(t *testing.T, st *store.Store, m *svmrank.Model) {
	t.Helper()
	err := st.Save(&store.Artifact{
		Name:    "default",
		Model:   m,
		Meta:    store.Meta{FeatureDim: len(m.W), Mode: "sim"},
		Machine: machine.XeonE52680v3(),
	})
	if err != nil {
		t.Fatal(err)
	}
}

func negated(m *svmrank.Model) *svmrank.Model {
	w := make([]float64, len(m.W))
	for i, v := range m.W {
		w[i] = -v
	}
	return &svmrank.Model{W: w, C: m.C}
}

// obsInstances are the kernels clients "ran"; distinct from nothing special —
// observations may cover any instance.
func obsInstances(t *testing.T) []stencil.Instance {
	t.Helper()
	var out []stencil.Instance
	for _, name := range []string{"laplacian", "divergence"} {
		k, err := stencil.KernelByName(name)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, stencil.Instance{Kernel: k, Size: stencil.Size3D(64, 64, 64)})
	}
	return out
}

// writeObservations fills a WAL with per-instance measurements. poison
// reflects each instance's runtimes around their midpoint, inverting the
// within-query ordering while keeping every value individually plausible —
// the shape of a hostile or broken client that validation alone cannot catch.
func writeObservations(t *testing.T, dir string, perInstance int, poison bool) int {
	t.Helper()
	l, _, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sim := perfmodel.New(machine.XeonE52680v3())
	total := 0
	for _, q := range obsInstances(t) {
		cands := tunespace.NewSpace(q.Kernel.Dims()).Predefined()
		if perInstance < len(cands) {
			cands = cands[:perInstance]
		}
		runtimes := make([]float64, len(cands))
		lo, hi := 0.0, 0.0
		for i, v := range cands {
			runtimes[i] = sim.Runtime(q, v)
			if i == 0 || runtimes[i] < lo {
				lo = runtimes[i]
			}
			if runtimes[i] > hi {
				hi = runtimes[i]
			}
		}
		for i, v := range cands {
			rt := runtimes[i]
			if poison {
				rt = lo + hi - rt
			}
			rec := wal.NewRecord(q, v, rt)
			rec.Machine = "client-7"
			rec.Source = "observe"
			rec.Fingerprint = "fp-" + q.Kernel.Name
			if err := l.Append(rec); err != nil {
				t.Fatal(err)
			}
			total++
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return total
}

func newWorker(t *testing.T, walDir string, st *store.Store, mutate func(*Config)) *Worker {
	t.Helper()
	cfg := Config{
		WALDir:     walDir,
		Store:      st,
		BasePoints: testBasePoints,
		Seed:       1,
		MinRecords: 1,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	w, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestPromoteOverWeakIncumbent(t *testing.T) {
	walDir, storeDir := t.TempDir(), t.TempDir()
	st, err := store.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	// The incumbent ranks anti-correlated with truth: any honest retrain
	// beats it.
	saveIncumbent(t, st, negated(fitBaseModel(t)))
	n := writeObservations(t, walDir, 16, false)

	promoted := ""
	w := newWorker(t, walDir, st, func(c *Config) {
		c.OnPromote = func(name string) { promoted = name }
	})
	out, err := w.RetrainOnce()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Promoted || out.Reason != "canary-pass" {
		t.Fatalf("outcome %+v, want canary-pass promotion", out)
	}
	if out.Records != n || out.SkippedRecords != 0 {
		t.Fatalf("used %d/%d records, skipped %d", out.Records, n, out.SkippedRecords)
	}
	if out.CandidateTau <= out.IncumbentTau {
		t.Fatalf("candidate τ %.4f not above incumbent τ %.4f", out.CandidateTau, out.IncumbentTau)
	}
	if out.Candidate != "retrained-v1" || promoted != "retrained-v1" {
		t.Fatalf("candidate %q, OnPromote got %q, want retrained-v1", out.Candidate, promoted)
	}
	cur, hist, err := st.Current()
	if err != nil || cur != "retrained-v1" {
		t.Fatalf("store current = %q (%v), want retrained-v1", cur, err)
	}
	if len(hist) != 1 || hist[0].Prev != "default" || hist[0].Records != n {
		t.Fatalf("promotion history %+v", hist)
	}
	// The promoted artifact loads cleanly — never a corrupt served model.
	if _, err := st.Load("retrained-v1"); err != nil {
		t.Fatalf("promoted artifact unloadable: %v", err)
	}
}

func TestRejectPoisonedObservations(t *testing.T) {
	walDir, storeDir := t.TempDir(), t.TempDir()
	st, err := store.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	// A strong incumbent: fitted on the full base set, holdout included.
	saveIncumbent(t, st, fitBaseModel(t))
	writeObservations(t, walDir, 48, true)

	w := newWorker(t, walDir, st, func(c *Config) {
		c.OnPromote = func(string) { t.Error("OnPromote fired for a rejected candidate") }
	})
	out, err := w.RetrainOnce()
	if err != nil {
		t.Fatal(err)
	}
	if out.Promoted || out.Reason != "canary-fail" {
		t.Fatalf("outcome %+v, want canary-fail rejection", out)
	}
	if out.CandidateTau >= out.IncumbentTau-out.Epsilon {
		t.Fatalf("candidate τ %.4f did not actually fail the gate against %.4f-%.2f",
			out.CandidateTau, out.IncumbentTau, out.Epsilon)
	}
	// The incumbent keeps serving: no pointer flip.
	if cur, _, err := st.Current(); err != nil || cur != "" {
		t.Fatalf("current pointer = %q (%v), want unset", cur, err)
	}
	// The rejected candidate stays on disk with its report.
	if _, err := st.Load(out.Candidate); err != nil {
		t.Fatalf("rejected candidate not kept: %v", err)
	}
	b, err := os.ReadFile(filepath.Join(storeDir, out.Candidate, "rejection.json"))
	if err != nil {
		t.Fatalf("no rejection report: %v", err)
	}
	if len(b) == 0 {
		t.Fatal("empty rejection report")
	}
}

// TestCrashMidPromotion kills the worker between saving the candidate and
// flipping current.json: the incumbent must keep serving, the candidate must
// be intact on disk, and a retried attempt completes the promotion.
func TestCrashMidPromotion(t *testing.T) {
	walDir, storeDir := t.TempDir(), t.TempDir()
	st, err := store.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	saveIncumbent(t, st, negated(fitBaseModel(t)))
	writeObservations(t, walDir, 16, false)

	w := newWorker(t, walDir, st, nil)
	w.testHookBeforePromote = func() { panic("injected crash before pointer flip") }
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("injected crash did not fire")
			}
		}()
		w.RetrainOnce()
	}()

	// Pointer untouched: whoever reloads now still serves the incumbent.
	if cur, _, err := st.Current(); err != nil || cur != "" {
		t.Fatalf("current = %q (%v) after mid-promotion crash, want unset", cur, err)
	}
	// The saved-but-unpromoted candidate is a complete, loadable artifact.
	if _, err := st.Load("retrained-v1"); err != nil {
		t.Fatalf("candidate corrupt after crash: %v", err)
	}

	// A fresh worker (as after restart) retries and completes the promotion
	// under a new version number — the stranded candidate is never reused.
	w2 := newWorker(t, walDir, st, nil)
	out, err := w2.RetrainOnce()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Promoted || out.Candidate != "retrained-v2" {
		t.Fatalf("retry outcome %+v, want promoted retrained-v2", out)
	}
	if cur, _, _ := st.Current(); cur != "retrained-v2" {
		t.Fatalf("current = %q after retry, want retrained-v2", cur)
	}
}

// TestWorkerCountTrigger runs the background loop for real: once MinRecords
// observations exist, the poll trigger must retrain and promote without any
// schedule tick.
func TestWorkerCountTrigger(t *testing.T) {
	walDir, storeDir := t.TempDir(), t.TempDir()
	st, err := store.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	saveIncumbent(t, st, negated(fitBaseModel(t)))
	n := writeObservations(t, walDir, 8, false)

	promoted := make(chan string, 1)
	w := newWorker(t, walDir, st, func(c *Config) {
		c.MinRecords = n
		c.PollInterval = 20 * time.Millisecond
		c.OnPromote = func(name string) { promoted <- name }
	})
	go w.Run()
	defer w.Stop()
	select {
	case name := <-promoted:
		if name != "retrained-v1" {
			t.Fatalf("promoted %q, want retrained-v1", name)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("count trigger never promoted")
	}
	// No new records: the loop must not churn out endless candidates.
	time.Sleep(5 * w.cfg.PollInterval)
	infos, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 { // default + retrained-v1
		t.Fatalf("store grew to %d artifacts without new observations", len(infos))
	}
}
