package shape

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointChebyshevNorm(t *testing.T) {
	cases := []struct {
		p    Point
		want int
	}{
		{Point{0, 0, 0}, 0},
		{Point{1, 0, 0}, 1},
		{Point{-3, 2, 1}, 3},
		{Point{0, -5, 4}, 5},
		{Point{2, 2, -2}, 2},
	}
	for _, c := range cases {
		if got := c.p.ChebyshevNorm(); got != c.want {
			t.Errorf("ChebyshevNorm(%v) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestPointAddNeg(t *testing.T) {
	p := Point{1, -2, 3}
	q := Point{4, 5, -6}
	if got := p.Add(q); got != (Point{5, 3, -3}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Neg(); got != (Point{-1, 2, -3}) {
		t.Errorf("Neg = %v", got)
	}
	if got := p.Add(p.Neg()); got != (Point{0, 0, 0}) {
		t.Errorf("p + (-p) = %v, want origin", got)
	}
}

func TestNewAccumulatesMultiplicity(t *testing.T) {
	s := New(Point{1, 0, 0}, Point{1, 0, 0}, Point{0, 1, 0})
	if s.Size() != 2 {
		t.Fatalf("Size = %d, want 2", s.Size())
	}
	if s.TotalAccesses() != 3 {
		t.Fatalf("TotalAccesses = %d, want 3", s.TotalAccesses())
	}
	if m := s.Multiplicity(Point{1, 0, 0}); m != 2 {
		t.Fatalf("Multiplicity = %d, want 2", m)
	}
}

func TestAddPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for multiplicity 0")
		}
	}()
	New().Add(Point{}, 0)
}

func TestUnionSumsMultiplicities(t *testing.T) {
	a := Line(AxisX, 1)
	b := Line(AxisY, 1)
	u := a.Union(b)
	// Centre is in both lines: multiplicity 2.
	if m := u.Multiplicity(Point{0, 0, 0}); m != 2 {
		t.Errorf("centre multiplicity = %d, want 2", m)
	}
	if u.Size() != 5 { // cross of 5 distinct points
		t.Errorf("Size = %d, want 5", u.Size())
	}
	if u.TotalAccesses() != 6 {
		t.Errorf("TotalAccesses = %d, want 6", u.TotalAccesses())
	}
}

func TestLaplacian2DMatchesPaperExample(t *testing.T) {
	// The paper's five-point 2-D laplacian: (0,-1),(-1,0),(0,0),(1,0),(0,1).
	s := Laplacian2D(1)
	want := []Point{{0, -1, 0}, {-1, 0, 0}, {0, 0, 0}, {1, 0, 0}, {0, 1, 0}}
	if s.Size() != len(want) {
		t.Fatalf("Size = %d, want %d", s.Size(), len(want))
	}
	for _, p := range want {
		if !s.Contains(p) {
			t.Errorf("missing point %v", p)
		}
	}
	if !s.Is2D() {
		t.Error("Laplacian2D should be planar")
	}
}

func TestShapeSizes(t *testing.T) {
	cases := []struct {
		name string
		s    *Shape
		want int
	}{
		{"line r=1", Line(AxisX, 1), 3},
		{"line r=2", Line(AxisZ, 2), 5},
		{"hyperplane r=1", Hyperplane(AxisZ, 1), 9},
		{"hyperplane r=2", Hyperplane(AxisZ, 2), 25},
		{"hypercube r=1", Hypercube(1), 27},
		{"hypercube r=2", Hypercube(2), 125},
		{"square r=1", Square(1), 9},
		{"square r=2", Square(2), 25},
		{"laplacian3d r=1", Laplacian3D(1), 7},
		{"laplacian3d r=2", Laplacian3D(2), 13},
		{"laplacian3d r=3", Laplacian3D(3), 19}, // 6th-order laplacian of Table III
		{"laplacian2d r=1", Laplacian2D(1), 5},
		{"star-no-centre r=1", Star3DNoCentre(1), 6},
		{"star-no-centre r=2", Star3DNoCentre(2), 12},
	}
	for _, c := range cases {
		if got := c.s.Size(); got != c.want {
			t.Errorf("%s: Size = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestWaveShapeOfTable3(t *testing.T) {
	// Wave in Table III: "13 laplacian + 1" — a radius-2 3-D laplacian
	// (13 points) is the classic 4th-order wave stencil.
	s := Laplacian3D(2)
	if s.Size() != 13 {
		t.Fatalf("wave laplacian size = %d, want 13", s.Size())
	}
	if s.MaxOffset() != 2 {
		t.Fatalf("MaxOffset = %d, want 2", s.MaxOffset())
	}
}

func TestMaxOffset(t *testing.T) {
	if got := New().MaxOffset(); got != 0 {
		t.Errorf("empty MaxOffset = %d", got)
	}
	if got := Hypercube(3).MaxOffset(); got != 3 {
		t.Errorf("hypercube(3) MaxOffset = %d", got)
	}
	if got := New(Point{0, 0, -4}).MaxOffset(); got != 4 {
		t.Errorf("MaxOffset = %d, want 4", got)
	}
}

func TestIs2DAndDims(t *testing.T) {
	if !Square(2).Is2D() || Square(2).Dims() != 2 {
		t.Error("Square should be 2-D")
	}
	if Hypercube(1).Is2D() || Hypercube(1).Dims() != 3 {
		t.Error("Hypercube should be 3-D")
	}
	if !Line(AxisX, 3).Is2D() {
		t.Error("x line should be planar")
	}
	if Line(AxisZ, 1).Is2D() {
		t.Error("z line should not be planar")
	}
}

func TestDenseRoundTrip(t *testing.T) {
	s := Laplacian3D(2)
	off := s.MaxOffset()
	d := s.Dense(off)
	side := 2*off + 1
	if len(d) != side || len(d[0]) != side || len(d[0][0]) != side {
		t.Fatalf("dense dims = %dx%dx%d, want %d", len(d), len(d[0]), len(d[0][0]), side)
	}
	count := 0
	for z := 0; z < side; z++ {
		for y := 0; y < side; y++ {
			for x := 0; x < side; x++ {
				if d[z][y][x] > 0 {
					count += d[z][y][x]
					p := Point{x - off, y - off, z - off}
					if !s.Contains(p) {
						t.Errorf("dense has %v not in shape", p)
					}
				}
			}
		}
	}
	if count != s.TotalAccesses() {
		t.Errorf("dense total = %d, want %d", count, s.TotalAccesses())
	}
}

func TestDenseClipsOutOfRange(t *testing.T) {
	s := New(Point{3, 0, 0}, Point{1, 0, 0})
	d := s.Dense(1)
	if d[1][1][2] != 1 { // (1,0,0) at offset 1
		t.Error("in-range point missing from clipped dense matrix")
	}
	total := 0
	for _, plane := range d {
		for _, row := range plane {
			for _, v := range row {
				total += v
			}
		}
	}
	if total != 1 {
		t.Errorf("clipped dense total = %d, want 1", total)
	}
}

func TestEqualAndClone(t *testing.T) {
	a := Hypercube(1)
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	b.Add(Point{5, 5, 5}, 1)
	if a.Equal(b) {
		t.Fatal("mutating clone affected original equality")
	}
	if a.Contains(Point{5, 5, 5}) {
		t.Fatal("clone shares storage with original")
	}
	// Same points, different multiplicities: not equal.
	c := New(Point{1, 0, 0})
	d := New(Point{1, 0, 0}, Point{1, 0, 0})
	if c.Equal(d) {
		t.Fatal("different multiplicities reported equal")
	}
}

func TestPointsCanonicalOrder(t *testing.T) {
	s := Hypercube(1)
	pts := s.Points()
	if len(pts) != 27 {
		t.Fatalf("len = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		a, b := pts[i-1], pts[i]
		if a.Z > b.Z || (a.Z == b.Z && a.Y > b.Y) || (a.Z == b.Z && a.Y == b.Y && a.X >= b.X) {
			t.Fatalf("points out of order at %d: %v then %v", i, a, b)
		}
	}
}

func TestGenerateFamilies(t *testing.T) {
	for _, f := range Families() {
		for _, dims := range []int{2, 3} {
			for off := 1; off <= 3; off++ {
				s := Generate(f, dims, off)
				if s.Size() == 0 {
					t.Errorf("%v dims=%d off=%d: empty shape", f, dims, off)
				}
				if s.MaxOffset() > off {
					t.Errorf("%v dims=%d off=%d: MaxOffset %d exceeds requested", f, dims, off, s.MaxOffset())
				}
				if dims == 2 && !s.Is2D() {
					t.Errorf("%v dims=2 off=%d: not planar", f, off)
				}
				if dims == 3 && s.Is2D() {
					t.Errorf("%v dims=3 off=%d: planar shape cannot drive a 3-D computation", f, off)
				}
			}
		}
	}
}

func TestGenerateClampsOffset(t *testing.T) {
	s := Generate(FamilyLine, 3, 0)
	if s.Size() != 3 {
		t.Errorf("offset clamp failed: size=%d", s.Size())
	}
}

func TestAxisString(t *testing.T) {
	if AxisX.String() != "x" || AxisY.String() != "y" || AxisZ.String() != "z" {
		t.Error("axis names wrong")
	}
	if Axis(9).String() != "?" {
		t.Error("unknown axis should be ?")
	}
}

func TestFamilyString(t *testing.T) {
	names := map[Family]string{
		FamilyLine: "line", FamilyHyperplane: "hyperplane",
		FamilyHypercube: "hypercube", FamilyLaplacian: "laplacian",
	}
	for f, want := range names {
		if f.String() != want {
			t.Errorf("%d.String() = %q, want %q", f, f.String(), want)
		}
	}
	if Family(42).String() != "?" {
		t.Error("unknown family should be ?")
	}
}

func TestStringRendersPlane(t *testing.T) {
	got := Laplacian2D(1).String()
	want := "0 1 0\n1 1 1\n0 1 0\n"
	if got != want {
		t.Errorf("String() =\n%q\nwant\n%q", got, want)
	}
}

// randomShape builds a random shape for property tests.
func randomShape(r *rand.Rand) *Shape {
	s := New()
	n := 1 + r.Intn(20)
	for i := 0; i < n; i++ {
		p := Point{r.Intn(7) - 3, r.Intn(7) - 3, r.Intn(7) - 3}
		s.Add(p, 1+r.Intn(3))
	}
	return s
}

func TestPropertyDenseLossless(t *testing.T) {
	// Property: Dense(MaxOffset) preserves every multiplicity.
	f := func(seed int64) bool {
		s := randomShape(rand.New(rand.NewSource(seed)))
		off := s.MaxOffset()
		d := s.Dense(off)
		for _, p := range s.Points() {
			if d[p.Z+off][p.Y+off][p.X+off] != s.Multiplicity(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyUnionCommutative(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		a := randomShape(rand.New(rand.NewSource(seedA)))
		b := randomShape(rand.New(rand.NewSource(seedB)))
		return a.Union(b).Equal(b.Union(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyUnionTotalAccesses(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		a := randomShape(rand.New(rand.NewSource(seedA)))
		b := randomShape(rand.New(rand.NewSource(seedB)))
		return a.Union(b).TotalAccesses() == a.TotalAccesses()+b.TotalAccesses()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyCloneEqual(t *testing.T) {
	f := func(seed int64) bool {
		s := randomShape(rand.New(rand.NewSource(seed)))
		return s.Equal(s.Clone())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
