// Package shape models stencil access patterns ("shapes") as sparse sets of
// 3-D offsets relative to the point being updated, following Section III-A of
// Cosenza et al., "Autotuning Stencil Computations with Structural Ordinal
// Regression Learning" (IPDPS 2017).
//
// A two-dimensional stencil is treated as the special case of a 3-D stencil
// whose accesses all lie on the z = 0 plane, so every pattern in the system
// maps into the same feature space.
package shape

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Point is a relative grid offset accessed by a stencil, with the updated
// cell at the origin (0,0,0).
type Point struct {
	X, Y, Z int
}

// Add returns the componentwise sum of p and q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y, p.Z + q.Z} }

// Neg returns the componentwise negation of p.
func (p Point) Neg() Point { return Point{-p.X, -p.Y, -p.Z} }

// ChebyshevNorm returns the L∞ norm of p, i.e. the smallest maximum offset
// that encloses the point.
func (p Point) ChebyshevNorm() int {
	n := abs(p.X)
	if a := abs(p.Y); a > n {
		n = a
	}
	if a := abs(p.Z); a > n {
		n = a
	}
	return n
}

func (p Point) String() string { return fmt.Sprintf("(%d,%d,%d)", p.X, p.Y, p.Z) }

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Shape is a stencil access pattern: the set of neighbouring points read when
// updating one grid cell. The zero value is an empty shape.
//
// Multiplicity is tracked per point: when a stencil reads several buffers,
// Section III-A defines the overall pattern as the *sum* of the per-buffer
// access patterns, so a point may carry a weight larger than one
// (this matters only for the divergence benchmark).
type Shape struct {
	points map[Point]int
	// sorted memoizes Points(). Feature encoding calls Points() once per
	// training point on long-lived kernels, from concurrent dataset workers;
	// the atomic pointer makes the memo race-free (a lost duplicate build is
	// benign). Mutators clear it.
	sorted atomic.Pointer[[]Point]
}

// New returns a shape containing the given points, each with multiplicity 1.
// Duplicate points accumulate multiplicity.
func New(points ...Point) *Shape {
	s := &Shape{points: make(map[Point]int, len(points))}
	for _, p := range points {
		s.points[p]++
	}
	return s
}

// Add inserts p with the given multiplicity (which must be positive).
func (s *Shape) Add(p Point, multiplicity int) {
	if multiplicity <= 0 {
		panic("shape: non-positive multiplicity")
	}
	if s.points == nil {
		s.points = make(map[Point]int)
	}
	s.points[p] += multiplicity
	s.sorted.Store(nil)
}

// Remove deletes p from the shape entirely (all multiplicity); removing an
// absent point is a no-op.
func (s *Shape) Remove(p Point) {
	delete(s.points, p)
	s.sorted.Store(nil)
}

// Union returns a new shape whose multiplicities are the pointwise sums of
// s and t. This implements the multi-buffer pattern composition of Sec. III-A.
func (s *Shape) Union(t *Shape) *Shape {
	u := &Shape{points: make(map[Point]int, s.Size()+t.Size())}
	for p, m := range s.points {
		u.points[p] += m
	}
	for p, m := range t.points {
		u.points[p] += m
	}
	return u
}

// Size returns the number of distinct points in the shape.
func (s *Shape) Size() int { return len(s.points) }

// TotalAccesses returns the sum of multiplicities — the number of loads the
// stencil performs per updated cell.
func (s *Shape) TotalAccesses() int {
	total := 0
	for _, m := range s.points {
		total += m
	}
	return total
}

// Contains reports whether the shape accesses offset p.
func (s *Shape) Contains(p Point) bool { _, ok := s.points[p]; return ok }

// Multiplicity returns how many times offset p is read (0 if absent).
func (s *Shape) Multiplicity(p Point) int { return s.points[p] }

// Points returns the distinct points in canonical (z, y, x) order. The
// result is memoized until the shape is next mutated; callers must not
// modify the returned slice.
func (s *Shape) Points() []Point {
	if pts := s.sorted.Load(); pts != nil {
		return *pts
	}
	pts := make([]Point, 0, len(s.points))
	for p := range s.points {
		pts = append(pts, p)
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].Z != pts[j].Z {
			return pts[i].Z < pts[j].Z
		}
		if pts[i].Y != pts[j].Y {
			return pts[i].Y < pts[j].Y
		}
		return pts[i].X < pts[j].X
	})
	s.sorted.Store(&pts)
	return pts
}

// MaxOffset returns the smallest offset r such that every accessed point lies
// within the (2r+1)³ cube centred at the origin. An empty shape has offset 0.
func (s *Shape) MaxOffset() int {
	r := 0
	for p := range s.points {
		if n := p.ChebyshevNorm(); n > r {
			r = n
		}
	}
	return r
}

// Is2D reports whether every access lies on the z = 0 plane.
func (s *Shape) Is2D() bool {
	for p := range s.points {
		if p.Z != 0 {
			return false
		}
	}
	return true
}

// Dims returns 2 for planar shapes and 3 otherwise.
func (s *Shape) Dims() int {
	if s.Is2D() {
		return 2
	}
	return 3
}

// Equal reports whether two shapes access exactly the same points with the
// same multiplicities.
func (s *Shape) Equal(t *Shape) bool {
	if s.Size() != t.Size() {
		return false
	}
	for p, m := range s.points {
		if t.points[p] != m {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the shape.
func (s *Shape) Clone() *Shape {
	c := &Shape{points: make(map[Point]int, len(s.points))}
	for p, m := range s.points {
		c.points[p] = m
	}
	return c
}

// Dense returns the shape as the dense binary matrix representation of
// Sec. III-A: a cube of side 2*offset+1 where cell [z][y][x] holds the access
// multiplicity of offset (x-offset, y-offset, z-offset). If offset is smaller
// than MaxOffset the shape is clipped; pass MaxOffset() for a lossless form.
func (s *Shape) Dense(offset int) [][][]int {
	side := 2*offset + 1
	m := make([][][]int, side)
	for z := range m {
		m[z] = make([][]int, side)
		for y := range m[z] {
			m[z][y] = make([]int, side)
		}
	}
	for p, mult := range s.points {
		if p.ChebyshevNorm() > offset {
			continue
		}
		m[p.Z+offset][p.Y+offset][p.X+offset] = mult
	}
	return m
}

// String renders the z = 0 plane of the shape as a compact matrix, useful in
// tests and debug output.
func (s *Shape) String() string {
	off := s.MaxOffset()
	var b strings.Builder
	for y := -off; y <= off; y++ {
		for x := -off; x <= off; x++ {
			if x > -off {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d", s.points[Point{x, y, 0}])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
