package shape

// This file provides the four training-shape families of Fig. 1 in the paper
// (line, hyperplane, hypercube, laplacian), parameterized by offset, plus the
// specific shapes needed by the benchmark kernels of Table III.

// Axis selects the orientation of a Line shape.
type Axis int

// The three grid axes.
const (
	AxisX Axis = iota
	AxisY
	AxisZ
)

func (a Axis) String() string {
	switch a {
	case AxisX:
		return "x"
	case AxisY:
		return "y"
	case AxisZ:
		return "z"
	default:
		return "?"
	}
}

func axisPoint(a Axis, v int) Point {
	switch a {
	case AxisX:
		return Point{v, 0, 0}
	case AxisY:
		return Point{0, v, 0}
	default:
		return Point{0, 0, v}
	}
}

// Line returns the 1-D line shape of Fig. 1a along the given axis: the
// centre plus offsets -r..r on that axis.
func Line(axis Axis, r int) *Shape {
	s := New()
	for v := -r; v <= r; v++ {
		s.Add(axisPoint(axis, v), 1)
	}
	return s
}

// Hyperplane returns the 2-D plane shape of Fig. 1b: all points with offsets
// -r..r in the two axes orthogonal to normal, at the normal coordinate 0.
func Hyperplane(normal Axis, r int) *Shape {
	s := New()
	for a := -r; a <= r; a++ {
		for b := -r; b <= r; b++ {
			switch normal {
			case AxisZ:
				s.Add(Point{a, b, 0}, 1)
			case AxisY:
				s.Add(Point{a, 0, b}, 1)
			default:
				s.Add(Point{0, a, b}, 1)
			}
		}
	}
	return s
}

// Hypercube returns the dense cube shape of Fig. 1c with offsets -r..r in
// all three dimensions ((2r+1)³ points).
func Hypercube(r int) *Shape {
	s := New()
	for z := -r; z <= r; z++ {
		for y := -r; y <= r; y++ {
			for x := -r; x <= r; x++ {
				s.Add(Point{x, y, z}, 1)
			}
		}
	}
	return s
}

// Square returns the planar (z = 0) dense square with offsets -r..r, the 2-D
// analogue of Hypercube (e.g. the 3×3 and 5×5 "hypercube" patterns used by
// the blur, edge and game-of-life benchmarks in Table III).
func Square(r int) *Shape {
	s := New()
	for y := -r; y <= r; y++ {
		for x := -r; x <= r; x++ {
			s.Add(Point{x, y, 0}, 1)
		}
	}
	return s
}

// Laplacian returns the star shape of Fig. 1d: the centre plus offsets
// 1..r along both directions of every axis (6r+1 points in 3-D).
func Laplacian3D(r int) *Shape {
	s := New(Point{0, 0, 0})
	for v := 1; v <= r; v++ {
		s.Add(Point{v, 0, 0}, 1)
		s.Add(Point{-v, 0, 0}, 1)
		s.Add(Point{0, v, 0}, 1)
		s.Add(Point{0, -v, 0}, 1)
		s.Add(Point{0, 0, v}, 1)
		s.Add(Point{0, 0, -v}, 1)
	}
	return s
}

// Laplacian2D returns the planar star: centre plus offsets 1..r along ±x
// and ±y (4r+1 points).
func Laplacian2D(r int) *Shape {
	s := New(Point{0, 0, 0})
	for v := 1; v <= r; v++ {
		s.Add(Point{v, 0, 0}, 1)
		s.Add(Point{-v, 0, 0}, 1)
		s.Add(Point{0, v, 0}, 1)
		s.Add(Point{0, -v, 0}, 1)
	}
	return s
}

// Star3DNoCentre returns the 3-D laplacian star of radius r without the
// centre point (6r points) — the access pattern of the gradient and
// divergence benchmarks, whose kernels do not read the updated cell.
func Star3DNoCentre(r int) *Shape {
	s := Laplacian3D(r)
	s.Remove(Point{0, 0, 0})
	return s
}

// Family identifies one of the four training-shape families of Fig. 1.
type Family int

// The training families, in the order of Fig. 1.
const (
	FamilyLine Family = iota
	FamilyHyperplane
	FamilyHypercube
	FamilyLaplacian
)

func (f Family) String() string {
	switch f {
	case FamilyLine:
		return "line"
	case FamilyHyperplane:
		return "hyperplane"
	case FamilyHypercube:
		return "hypercube"
	case FamilyLaplacian:
		return "laplacian"
	default:
		return "?"
	}
}

// Families lists all four training families.
func Families() []Family {
	return []Family{FamilyLine, FamilyHyperplane, FamilyHypercube, FamilyLaplacian}
}

// Generate builds the training shape for a family at a given offset and
// dimensionality (2 or 3). Degenerate combinations fall back to the closest
// planar analogue (a 2-D "hypercube" is a square, a 2-D hyperplane is a line).
func Generate(f Family, dims, offset int) *Shape {
	if offset < 1 {
		offset = 1
	}
	switch f {
	case FamilyLine:
		if dims == 2 {
			return Line(AxisX, offset)
		}
		// Orient along z so the generated kernel is a genuinely 3-D
		// computation (its reuse pattern crosses planes).
		return Line(AxisZ, offset)
	case FamilyHyperplane:
		if dims == 2 {
			return Line(AxisY, offset)
		}
		// Normal along x: the plane spans y and z.
		return Hyperplane(AxisX, offset)
	case FamilyHypercube:
		if dims == 2 {
			return Square(offset)
		}
		return Hypercube(offset)
	case FamilyLaplacian:
		if dims == 2 {
			return Laplacian2D(offset)
		}
		return Laplacian3D(offset)
	default:
		panic("shape: unknown family")
	}
}
