// Package feature implements the stencil encoding framework of Section III:
// it captures the static stencil description k = (shape, buffers, dtype), the
// input size s and the tuning vector t into a single feature vector whose
// components are real values normalized to [0, 1].
//
// Representation note. Feature vectors are stored sparsely (index/value
// pairs): the dominant block is the dense 7×7×7 binary pattern matrix of
// Sec. III-A, of which a typical stencil touches only a handful of cells.
//
// Implementation refinement (documented in DESIGN.md): the ordinal-regression
// training of Sec. IV-D only compares executions of the *same* instance q, so
// any feature depending on q alone cancels out of every within-query pair
// difference. For the ranking function to specialize per stencil/size, the
// encoding must contain q×t interaction terms. We therefore append a block of
// hardware-independent interaction features (tile working set, boundary
// fractions, tile counts, unroll×density, …) computed from q and t together,
// plus quadratic terms that let the linear model express single-peak
// preferences over log-scaled parameters.
package feature

import (
	"fmt"
	"math"

	"repro/internal/stencil"
	"repro/internal/tunespace"
)

// PatternRadius is the maximum neighbour offset representable in the dense
// pattern block. Radius 3 covers every kernel in the paper (the 6th-order
// laplacian reaches offset 3).
const PatternRadius = 3

// patternSide and patternBlock size the dense pattern block: 7³ = 343 cells.
const (
	patternSide  = 2*PatternRadius + 1
	patternBlock = patternSide * patternSide * patternSide
)

// Feature indices of the named (non-pattern) components, offset past the
// pattern block. Kept together so tests and the ablation harness can address
// blocks symbolically.
const (
	idxPoints = patternBlock + iota
	idxAccesses
	idxMaxOffset
	idxDims
	idxBuffers
	idxDType
	idxSizeX
	idxSizeY
	idxSizeZ
	idxSizeTotal
	idxBx
	idxBy
	idxBz
	idxUnroll
	idxChunk
	idxBx2
	idxBy2
	idxBz2
	idxUnroll2
	idxChunk2
	idxTileWS
	idxTileWS2
	idxFracX
	idxFracY
	idxFracZ
	idxNumTiles
	idxTileGroups
	idxTileGroups2
	idxUnrollDensity
	idxInnerStream
	idxInnerStream2
	idxDTypeBx
	idxDensityWS
	// One-hot binned blocks: a linear ranker cannot express the
	// thresholded cache-fit behaviour of real machines from smooth inputs
	// alone, so each of these gives it a free-form piecewise shape.
	idxWSBin0                                   // 8 bins over log2(tile working set)
	idxBxBin0      = idxWSBin0 + wsBins         // 10 bins over log2(bx)
	idxByBin0      = idxBxBin0 + blockBins      // 10 bins over log2(by)
	idxBzBin0      = idxByBin0 + blockBins      // 10 bins over log2(bz)
	idxUnrollBin0  = idxBzBin0 + blockBins      // 9 bins: u = 0..8
	idxChunkBin0   = idxUnrollBin0 + unrollBins // 5 bins over log2(c)
	idxBalanceBin0 = idxChunkBin0 + chunkBins   // 6 bins over log2(groups/cores-ish)
	// Temporal-fusion block, appended after every older block so that models
	// trained before fusion existed keep scoring unchanged: an unfused vector
	// (effective depth 1) emits none of these, and Dot treats indices beyond
	// an older model's weight vector as zero-weight.
	idxFuse        = idxBalanceBin0 + balanceBins // linear fusion depth
	idxFuse2       = idxFuse + 1                  // its square
	idxFuseDensity = idxFuse + 2                  // depth × stencil density
	idxFuseWS      = idxFuse + 3                  // depth × tile working set
	idxFuseBin0    = idxFuse + 4                  // one-hot bins for K = 2..MaxFuse
	// Dim is the total feature-vector dimensionality.
	Dim = idxFuseBin0 + fuseBins
)

// Bin counts for the one-hot blocks.
const (
	wsBins      = 8
	blockBins   = 10
	unrollBins  = 9
	chunkBins   = 5
	balanceBins = 6
	fuseBins    = tunespace.MaxFuse - 1
)

// normalization caps, chosen so every encountered value lands in [0, 1].
const (
	maxMultiplicity = 3.0 // pattern cell multiplicities are clipped here
	maxPoints       = 343.0
	maxAccesses     = 512.0
	maxBuffers      = 4.0
	maxLogExtent    = 12.0 // grids up to 4096 per dimension
	maxLogTotal     = 36.0
	maxLogBlock     = 10.0 // blocks up to 1024
	maxLogChunk     = 4.0  // chunks up to 16
	maxLogWS        = 32.0 // tile working sets up to 4 GiB
	maxLogTiles     = 36.0
	maxLogInner     = 14.0 // bx*(u+1) up to 1024*9
)

// Vector is a sparse feature vector with the fixed dimensionality Dim.
// Indices are strictly increasing.
type Vector struct {
	Idx []int32
	Val []float64
}

// Get returns the value at feature index i (0 when absent).
func (v Vector) Get(i int) float64 {
	// Binary search over the ordered indices.
	lo, hi := 0, len(v.Idx)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case int(v.Idx[mid]) < i:
			lo = mid + 1
		case int(v.Idx[mid]) > i:
			hi = mid
		default:
			return v.Val[mid]
		}
	}
	return 0
}

// NNZ returns the number of stored (non-zero) components.
func (v Vector) NNZ() int { return len(v.Idx) }

// Dot returns the inner product with a dense weight vector of up to length
// Dim. Indices beyond len(w) contribute zero: a model trained under an older,
// narrower encoding scores vectors of the current encoding as if every added
// feature had zero weight, which keeps persisted models valid across encoding
// growth. Indices are sorted ascending, so the scan stops at the first
// out-of-range one.
func (v Vector) Dot(w []float64) float64 {
	var s float64
	for i, idx := range v.Idx {
		if int(idx) >= len(w) {
			break
		}
		s += v.Val[i] * w[idx]
	}
	return s
}

// AddInto accumulates scale*v into the dense vector w, ignoring indices
// beyond len(w) under the same older-encoding convention as Dot.
func (v Vector) AddInto(w []float64, scale float64) {
	for i, idx := range v.Idx {
		if int(idx) >= len(w) {
			break
		}
		w[idx] += scale * v.Val[i]
	}
}

// DiffDot returns (a - b)·w without materializing the difference.
func DiffDot(w []float64, a, b Vector) float64 { return a.Dot(w) - b.Dot(w) }

// DiffSquaredNorm returns ‖a − b‖² via an ordered merge of the two sparse
// vectors.
func DiffSquaredNorm(a, b Vector) float64 {
	var s float64
	i, j := 0, 0
	for i < len(a.Idx) && j < len(b.Idx) {
		switch {
		case a.Idx[i] < b.Idx[j]:
			s += a.Val[i] * a.Val[i]
			i++
		case a.Idx[i] > b.Idx[j]:
			s += b.Val[j] * b.Val[j]
			j++
		default:
			d := a.Val[i] - b.Val[j]
			s += d * d
			i++
			j++
		}
	}
	for ; i < len(a.Idx); i++ {
		s += a.Val[i] * a.Val[i]
	}
	for ; j < len(b.Idx); j++ {
		s += b.Val[j] * b.Val[j]
	}
	return s
}

// AddDiffInto accumulates scale*(a-b) into the dense vector w.
func AddDiffInto(w []float64, a, b Vector, scale float64) {
	a.AddInto(w, scale)
	b.AddInto(w, -scale)
}

// builder collects index/value pairs; indices must be appended in
// increasing order.
type builder struct {
	idx []int32
	val []float64
}

func (b *builder) put(i int, v float64) {
	if v == 0 {
		return
	}
	if n := len(b.idx); n > 0 && int(b.idx[n-1]) >= i {
		panic(fmt.Sprintf("feature: indices out of order: %d after %d", i, b.idx[n-1]))
	}
	b.idx = append(b.idx, int32(i))
	b.val = append(b.val, v)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func log2(v float64) float64 {
	if v <= 1 {
		return 0
	}
	return math.Log2(v)
}

// Blocks selects which feature blocks the encoder emits; used by the feature
// ablation experiment. The zero value emits nothing — use AllBlocks.
type Blocks struct {
	Pattern      bool // dense pattern matrix + kernel summary
	Size         bool // input extent features
	Tuning       bool // raw tuning parameters and squares
	Interactions bool // q×t interaction terms
}

// AllBlocks enables the full encoding.
func AllBlocks() Blocks {
	return Blocks{Pattern: true, Size: true, Tuning: true, Interactions: true}
}

// Encoder turns stencil executions into feature vectors.
type Encoder struct {
	blocks Blocks
}

// NewEncoder returns the default full encoder.
func NewEncoder() *Encoder { return &Encoder{blocks: AllBlocks()} }

// NewEncoderWithBlocks returns an encoder restricted to the given blocks
// (feature-ablation support).
func NewEncoderWithBlocks(b Blocks) *Encoder { return &Encoder{blocks: b} }

// Encode produces the feature vector for the execution (q.Kernel, q.Size, t).
// Every emitted component lies in [0, 1].
func (e *Encoder) Encode(q stencil.Instance, t tunespace.Vector) Vector {
	k := q.Kernel
	sz := q.Size

	// Size the builder exactly once: at most one pattern cell per shape
	// point plus the fixed named blocks. Dataset generation calls Encode
	// once per training point, so append-regrowth here is a dominant
	// allocation source.
	capHint := k.Shape.Size() + 64
	b := builder{idx: make([]int32, 0, capHint), val: make([]float64, 0, capHint)}

	if e.blocks.Pattern {
		// Dense pattern block: cell (x,y,z) at flat index
		// ((z+R)*side + (y+R))*side + (x+R). Points() is already in
		// ascending (z,y,x) order, matching increasing flat indices.
		for _, p := range k.Shape.Points() {
			if p.ChebyshevNorm() > PatternRadius {
				continue
			}
			flat := ((p.Z+PatternRadius)*patternSide+(p.Y+PatternRadius))*patternSide +
				(p.X + PatternRadius)
			m := float64(k.Shape.Multiplicity(p))
			b.put(flat, clamp01(m/maxMultiplicity))
		}
		b.put(idxPoints, clamp01(float64(k.Shape.Size())/maxPoints))
		b.put(idxAccesses, clamp01(float64(k.Shape.TotalAccesses())/maxAccesses))
		b.put(idxMaxOffset, clamp01(float64(k.Shape.MaxOffset())/PatternRadius))
		b.put(idxDims, float64(k.Dims()-2)) // 0 for 2-D, 1 for 3-D
		b.put(idxBuffers, clamp01(float64(k.Buffers)/maxBuffers))
		b.put(idxDType, k.Type.FeatureValue())
	}

	if e.blocks.Size {
		b.put(idxSizeX, clamp01(log2(float64(sz.X))/maxLogExtent))
		b.put(idxSizeY, clamp01(log2(float64(sz.Y))/maxLogExtent))
		b.put(idxSizeZ, clamp01(log2(float64(sz.Z))/maxLogExtent))
		b.put(idxSizeTotal, clamp01(log2(float64(sz.Points()))/maxLogTotal))
	}

	lbx := log2(float64(t.Bx)) / maxLogBlock
	lby := log2(float64(t.By)) / maxLogBlock
	lbz := log2(float64(t.Bz)) / maxLogBlock
	un := float64(t.U) / tunespace.MaxUnroll
	lch := log2(float64(t.C)) / maxLogChunk

	if e.blocks.Tuning {
		b.put(idxBx, clamp01(lbx))
		b.put(idxBy, clamp01(lby))
		b.put(idxBz, clamp01(lbz))
		b.put(idxUnroll, clamp01(un))
		b.put(idxChunk, clamp01(lch))
		b.put(idxBx2, clamp01(lbx*lbx))
		b.put(idxBy2, clamp01(lby*lby))
		b.put(idxBz2, clamp01(lbz*lbz))
		b.put(idxUnroll2, clamp01(un*un))
		b.put(idxChunk2, clamp01(lch*lch))
	}

	if e.blocks.Interactions {
		// Effective tile extents never exceed the grid.
		ebx := min(t.Bx, sz.X)
		eby := min(t.By, sz.Y)
		ebz := min(t.Bz, sz.Z)

		ws := float64(ebx) * float64(eby) * float64(ebz) *
			float64(k.Type.Bytes()) * float64(k.Buffers)
		lws := log2(ws) / maxLogWS
		b.put(idxTileWS, clamp01(lws))
		b.put(idxTileWS2, clamp01(lws*lws))

		b.put(idxFracX, clamp01(float64(ebx)/float64(sz.X)))
		b.put(idxFracY, clamp01(float64(eby)/float64(sz.Y)))
		b.put(idxFracZ, clamp01(float64(ebz)/float64(sz.Z)))

		tiles := float64(ceilDiv(sz.X, t.Bx)) * float64(ceilDiv(sz.Y, t.By)) *
			float64(ceilDiv(sz.Z, max(1, t.Bz)))
		ltiles := log2(tiles) / maxLogTiles
		b.put(idxNumTiles, clamp01(ltiles))

		groups := tiles / float64(t.C)
		lgroups := log2(math.Max(1, groups)) / maxLogTiles
		b.put(idxTileGroups, clamp01(lgroups))
		b.put(idxTileGroups2, clamp01(lgroups*lgroups))

		density := float64(k.Shape.TotalAccesses()) / maxAccesses
		b.put(idxUnrollDensity, clamp01(un*density))

		inner := log2(float64(ebx)*float64(t.U+1)) / maxLogInner
		b.put(idxInnerStream, clamp01(inner))
		b.put(idxInnerStream2, clamp01(inner*inner))

		b.put(idxDTypeBx, clamp01(k.Type.FeatureValue()*lbx))
		b.put(idxDensityWS, clamp01(density*lws))

		// Working-set bin: log2(WS bytes) mapped to 8 bins over [10, 26).
		wsBin := binIndex(log2(ws), 10, 26, wsBins)
		b.put(idxWSBin0+wsBin, 1)
	}

	if e.blocks.Tuning {
		// One-hot power-of-two block bins: log2(b) in [1, 10] → bins 0..9.
		b.put(idxBxBin0+binIndex(log2(float64(t.Bx)), 1, 11, blockBins), 1)
		b.put(idxByBin0+binIndex(log2(float64(t.By)), 1, 11, blockBins), 1)
		if t.Bz > 1 {
			b.put(idxBzBin0+binIndex(log2(float64(t.Bz)), 1, 11, blockBins), 1)
		}
		u := t.U
		if u < 0 {
			u = 0
		} else if u >= unrollBins {
			u = unrollBins - 1
		}
		b.put(idxUnrollBin0+u, 1)
		b.put(idxChunkBin0+binIndex(log2(float64(t.C)), 0, 5, chunkBins), 1)
	}

	if e.blocks.Interactions {
		// Parallel-balance bin: log2(dispatch groups) over [0, 18).
		ebx := min(t.Bx, sz.X)
		eby := min(t.By, sz.Y)
		_ = ebx
		_ = eby
		tiles := float64(ceilDiv(sz.X, t.Bx)) * float64(ceilDiv(sz.Y, t.By)) *
			float64(ceilDiv(sz.Z, max(1, t.Bz)))
		groups := math.Max(1, tiles/float64(t.C))
		b.put(idxBalanceBin0+binIndex(log2(groups), 0, 18, balanceBins), 1)
	}

	// Temporal-fusion block: emitted only for genuinely fused vectors, so an
	// unfused vector's encoding is byte-identical to the pre-fusion one.
	if kf := t.EffFuse(); kf > 1 {
		fu := float64(kf-1) / float64(tunespace.MaxFuse-1)
		if e.blocks.Tuning {
			b.put(idxFuse, clamp01(fu))
			b.put(idxFuse2, clamp01(fu*fu))
		}
		if e.blocks.Interactions {
			// Fusion pays off in proportion to how DRAM-bound the sweep is:
			// the interactions couple depth to stencil density and to the
			// spatial tile's working set.
			density := float64(k.Shape.TotalAccesses()) / maxAccesses
			b.put(idxFuseDensity, clamp01(fu*density))
			ws := float64(min(t.Bx, sz.X)) * float64(min(t.By, sz.Y)) *
				float64(min(t.Bz, sz.Z)) * float64(k.Type.Bytes()) * float64(k.Buffers)
			b.put(idxFuseWS, clamp01(fu*log2(ws)/maxLogWS))
		}
		if e.blocks.Tuning {
			b.put(idxFuseBin0+kf-2, 1)
		}
	}

	return Vector{Idx: b.idx, Val: b.val}
}

// binIndex maps v into n equal bins spanning [lo, hi), clamping outliers
// into the first/last bin.
func binIndex(v, lo, hi float64, n int) int {
	if v < lo {
		return 0
	}
	if v >= hi {
		return n - 1
	}
	idx := int(float64(n) * (v - lo) / (hi - lo))
	if idx >= n {
		idx = n - 1
	}
	return idx
}

func ceilDiv(a, b int) int {
	if b <= 0 {
		return a
	}
	return (a + b - 1) / b
}
