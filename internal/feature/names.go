package feature

import "fmt"

// Names returns the labels of every feature index in order. The slice is
// freshly allocated; the model store persists it alongside trained weights so
// a saved model records exactly which encoding it was fitted against.
func Names() []string {
	out := make([]string, Dim)
	for i := range out {
		out[i] = Name(i)
	}
	return out
}

// Name returns a human-readable label for a feature index, used by the
// model-inspection tooling to explain learned weights.
func Name(idx int) string {
	if idx < 0 || idx >= Dim {
		return fmt.Sprintf("invalid(%d)", idx)
	}
	if idx < patternBlock {
		z := idx / (patternSide * patternSide)
		rem := idx % (patternSide * patternSide)
		y := rem / patternSide
		x := rem % patternSide
		return fmt.Sprintf("pattern(%d,%d,%d)", x-PatternRadius, y-PatternRadius, z-PatternRadius)
	}
	switch {
	case idx == idxPoints:
		return "points"
	case idx == idxAccesses:
		return "accesses"
	case idx == idxMaxOffset:
		return "max-offset"
	case idx == idxDims:
		return "dims"
	case idx == idxBuffers:
		return "buffers"
	case idx == idxDType:
		return "dtype"
	case idx == idxSizeX:
		return "log-size-x"
	case idx == idxSizeY:
		return "log-size-y"
	case idx == idxSizeZ:
		return "log-size-z"
	case idx == idxSizeTotal:
		return "log-size-total"
	case idx == idxBx:
		return "log-bx"
	case idx == idxBy:
		return "log-by"
	case idx == idxBz:
		return "log-bz"
	case idx == idxUnroll:
		return "unroll"
	case idx == idxChunk:
		return "log-chunk"
	case idx == idxBx2:
		return "log-bx^2"
	case idx == idxBy2:
		return "log-by^2"
	case idx == idxBz2:
		return "log-bz^2"
	case idx == idxUnroll2:
		return "unroll^2"
	case idx == idxChunk2:
		return "log-chunk^2"
	case idx == idxTileWS:
		return "log-tile-ws"
	case idx == idxTileWS2:
		return "log-tile-ws^2"
	case idx == idxFracX:
		return "frac-x"
	case idx == idxFracY:
		return "frac-y"
	case idx == idxFracZ:
		return "frac-z"
	case idx == idxNumTiles:
		return "log-tiles"
	case idx == idxTileGroups:
		return "log-groups"
	case idx == idxTileGroups2:
		return "log-groups^2"
	case idx == idxUnrollDensity:
		return "unroll*density"
	case idx == idxInnerStream:
		return "log-inner-stream"
	case idx == idxInnerStream2:
		return "log-inner-stream^2"
	case idx == idxDTypeBx:
		return "dtype*log-bx"
	case idx == idxDensityWS:
		return "density*log-ws"
	case idx >= idxWSBin0 && idx < idxWSBin0+wsBins:
		return fmt.Sprintf("ws-bin[%d]", idx-idxWSBin0)
	case idx >= idxBxBin0 && idx < idxBxBin0+blockBins:
		return fmt.Sprintf("bx-bin[%d]", idx-idxBxBin0)
	case idx >= idxByBin0 && idx < idxByBin0+blockBins:
		return fmt.Sprintf("by-bin[%d]", idx-idxByBin0)
	case idx >= idxBzBin0 && idx < idxBzBin0+blockBins:
		return fmt.Sprintf("bz-bin[%d]", idx-idxBzBin0)
	case idx >= idxUnrollBin0 && idx < idxUnrollBin0+unrollBins:
		return fmt.Sprintf("unroll-bin[%d]", idx-idxUnrollBin0)
	case idx >= idxChunkBin0 && idx < idxChunkBin0+chunkBins:
		return fmt.Sprintf("chunk-bin[%d]", idx-idxChunkBin0)
	case idx >= idxBalanceBin0 && idx < idxBalanceBin0+balanceBins:
		return fmt.Sprintf("balance-bin[%d]", idx-idxBalanceBin0)
	case idx == idxFuse:
		return "fuse"
	case idx == idxFuse2:
		return "fuse^2"
	case idx == idxFuseDensity:
		return "fuse*density"
	case idx == idxFuseWS:
		return "fuse*log-ws"
	case idx >= idxFuseBin0 && idx < idxFuseBin0+fuseBins:
		return fmt.Sprintf("fuse-bin[k=%d]", idx-idxFuseBin0+2)
	default:
		return fmt.Sprintf("feature(%d)", idx)
	}
}
