package feature

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/stencil"
	"repro/internal/tunespace"
)

func laplacianInstance() stencil.Instance {
	return stencil.Instance{Kernel: stencil.Laplacian(), Size: stencil.Size3D(128, 128, 128)}
}

func blurInstance() stencil.Instance {
	return stencil.Instance{Kernel: stencil.Blur(), Size: stencil.Size2D(1024, 768)}
}

func someTuning() tunespace.Vector {
	return tunespace.Vector{Bx: 64, By: 32, Bz: 16, U: 4, C: 2}
}

func TestEncodeAllComponentsInUnitInterval(t *testing.T) {
	e := NewEncoder()
	rng := rand.New(rand.NewSource(1))
	for _, q := range stencil.Benchmarks() {
		space := tunespace.NewSpace(q.Kernel.Dims())
		for i := 0; i < 200; i++ {
			v := e.Encode(q, space.Random(rng))
			for j, val := range v.Val {
				if val < 0 || val > 1 || math.IsNaN(val) {
					t.Fatalf("%s: feature %d = %v outside [0,1]", q.ID(), v.Idx[j], val)
				}
			}
		}
	}
}

func TestEncodeIndicesStrictlyIncreasing(t *testing.T) {
	e := NewEncoder()
	v := e.Encode(laplacianInstance(), someTuning())
	for i := 1; i < len(v.Idx); i++ {
		if v.Idx[i] <= v.Idx[i-1] {
			t.Fatalf("indices not strictly increasing at %d: %d then %d", i, v.Idx[i-1], v.Idx[i])
		}
	}
	if int(v.Idx[len(v.Idx)-1]) >= Dim {
		t.Fatalf("index %d beyond Dim %d", v.Idx[len(v.Idx)-1], Dim)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	e := NewEncoder()
	a := e.Encode(laplacianInstance(), someTuning())
	b := e.Encode(laplacianInstance(), someTuning())
	if a.NNZ() != b.NNZ() {
		t.Fatal("non-deterministic NNZ")
	}
	for i := range a.Idx {
		if a.Idx[i] != b.Idx[i] || a.Val[i] != b.Val[i] {
			t.Fatal("non-deterministic encoding")
		}
	}
}

func TestPatternBlockMatchesShape(t *testing.T) {
	e := NewEncoder()
	q := laplacianInstance() // 7-point star
	v := e.Encode(q, someTuning())
	// Centre point at flat index ((0+3)*7+(0+3))*7+(0+3) = 171.
	if got := v.Get(171); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Errorf("centre pattern cell = %v, want 1/3", got)
	}
	// +x neighbour at 172.
	if got := v.Get(172); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Errorf("+x pattern cell = %v, want 1/3", got)
	}
	// A corner never accessed by the laplacian.
	if got := v.Get(0); got != 0 {
		t.Errorf("corner cell = %v, want 0", got)
	}
}

func TestWaveMultiplicityEncoded(t *testing.T) {
	e := NewEncoder()
	q := stencil.Instance{Kernel: stencil.Wave(), Size: stencil.Size3D(128, 128, 128)}
	v := e.Encode(q, someTuning())
	// Wave reads the centre twice -> multiplicity 2 -> 2/3.
	if got := v.Get(171); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("wave centre cell = %v, want 2/3", got)
	}
}

func TestDTypeFeature(t *testing.T) {
	e := NewEncoder()
	vf := e.Encode(blurInstance(), tunespace.Vector{Bx: 64, By: 32, Bz: 1, U: 4, C: 2})
	vd := e.Encode(laplacianInstance(), someTuning())
	if vf.Get(idxDType) != 0 {
		t.Errorf("float dtype feature = %v, want 0", vf.Get(idxDType))
	}
	if vd.Get(idxDType) != 1 {
		t.Errorf("double dtype feature = %v, want 1", vd.Get(idxDType))
	}
}

func TestDifferentTuningsDiffer(t *testing.T) {
	e := NewEncoder()
	q := laplacianInstance()
	a := e.Encode(q, tunespace.Vector{Bx: 4, By: 4, Bz: 4, U: 0, C: 1})
	b := e.Encode(q, tunespace.Vector{Bx: 512, By: 512, Bz: 64, U: 8, C: 8})
	if DiffSquaredNorm(a, b) == 0 {
		t.Fatal("different tunings encode identically")
	}
}

func TestDifferentKernelsDiffer(t *testing.T) {
	e := NewEncoder()
	tun := someTuning()
	a := e.Encode(stencil.Instance{Kernel: stencil.Laplacian(), Size: stencil.Size3D(128, 128, 128)}, tun)
	b := e.Encode(stencil.Instance{Kernel: stencil.Gradient(), Size: stencil.Size3D(128, 128, 128)}, tun)
	if DiffSquaredNorm(a, b) == 0 {
		t.Fatal("laplacian and gradient encode identically")
	}
}

func TestInteractionFeaturesBreakQCancellation(t *testing.T) {
	// For fixed t, two different instances must differ in at least one
	// *interaction* feature, so within-query pair differences retain
	// instance-specific signal.
	e := NewEncoderWithBlocks(Blocks{Interactions: true})
	tun := someTuning()
	a := e.Encode(stencil.Instance{Kernel: stencil.Laplacian(), Size: stencil.Size3D(128, 128, 128)}, tun)
	b := e.Encode(stencil.Instance{Kernel: stencil.Laplacian(), Size: stencil.Size3D(256, 256, 256)}, tun)
	if DiffSquaredNorm(a, b) == 0 {
		t.Fatal("interaction features identical across sizes")
	}
}

func TestBlockAblation(t *testing.T) {
	q := laplacianInstance()
	tun := someTuning()
	onlyPattern := NewEncoderWithBlocks(Blocks{Pattern: true}).Encode(q, tun)
	if onlyPattern.Get(idxBx) != 0 {
		t.Error("pattern-only encoding leaked tuning features")
	}
	if onlyPattern.Get(idxPoints) == 0 {
		t.Error("pattern-only encoding missing kernel summary")
	}
	onlyTuning := NewEncoderWithBlocks(Blocks{Tuning: true}).Encode(q, tun)
	if onlyTuning.Get(idxPoints) != 0 {
		t.Error("tuning-only encoding leaked kernel features")
	}
	if onlyTuning.Get(idxBx) == 0 {
		t.Error("tuning-only encoding missing bx")
	}
	none := NewEncoderWithBlocks(Blocks{}).Encode(q, tun)
	if none.NNZ() != 0 {
		t.Errorf("empty-blocks encoding has %d features", none.NNZ())
	}
}

func TestVectorGet(t *testing.T) {
	v := Vector{Idx: []int32{2, 5, 9}, Val: []float64{0.5, 0.25, 1}}
	cases := map[int]float64{0: 0, 2: 0.5, 3: 0, 5: 0.25, 9: 1, 100: 0}
	for i, want := range cases {
		if got := v.Get(i); got != want {
			t.Errorf("Get(%d) = %v, want %v", i, got, want)
		}
	}
}

func TestDotAndAddInto(t *testing.T) {
	v := Vector{Idx: []int32{0, 3}, Val: []float64{2, 4}}
	w := make([]float64, 5)
	w[0], w[3] = 0.5, 0.25
	if got := v.Dot(w); got != 2 {
		t.Errorf("Dot = %v, want 2", got)
	}
	v.AddInto(w, 2)
	if w[0] != 4.5 || w[3] != 8.25 {
		t.Errorf("AddInto wrong: %v", w)
	}
}

func TestDiffOperations(t *testing.T) {
	a := Vector{Idx: []int32{0, 2, 4}, Val: []float64{1, 2, 3}}
	b := Vector{Idx: []int32{1, 2, 5}, Val: []float64{4, 1, 2}}
	// a-b = (1, -4, 1, 0, 3, -2): squared norm = 1+16+1+9+4 = 31.
	if got := DiffSquaredNorm(a, b); got != 31 {
		t.Errorf("DiffSquaredNorm = %v, want 31", got)
	}
	w := []float64{1, 1, 1, 1, 1, 1}
	if got := DiffDot(w, a, b); math.Abs(got-(-1)) > 1e-12 {
		t.Errorf("DiffDot = %v, want -1", got)
	}
	acc := make([]float64, 6)
	AddDiffInto(acc, a, b, 2)
	want := []float64{2, -8, 2, 0, 6, -4}
	for i := range want {
		if math.Abs(acc[i]-want[i]) > 1e-12 {
			t.Errorf("AddDiffInto[%d] = %v, want %v", i, acc[i], want[i])
		}
	}
}

func TestPropertyDiffNormZeroIffSameEncoding(t *testing.T) {
	e := NewEncoder()
	q := laplacianInstance()
	space := tunespace.NewSpace(3)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		t1 := space.Random(rng)
		v1 := e.Encode(q, t1)
		v2 := e.Encode(q, t1)
		return DiffSquaredNorm(v1, v2) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyDiffNormSymmetric(t *testing.T) {
	e := NewEncoder()
	q := blurInstance()
	space := tunespace.NewSpace(2)
	f := func(seedA, seedB int64) bool {
		ra := rand.New(rand.NewSource(seedA))
		rb := rand.New(rand.NewSource(seedB))
		a := e.Encode(q, space.Random(ra))
		b := e.Encode(q, space.Random(rb))
		return math.Abs(DiffSquaredNorm(a, b)-DiffSquaredNorm(b, a)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyDotLinearity(t *testing.T) {
	// (a-b)·w computed via DiffDot equals AddDiffInto into zero then dot.
	e := NewEncoder()
	q := laplacianInstance()
	space := tunespace.NewSpace(3)
	f := func(seedA, seedB int64) bool {
		ra := rand.New(rand.NewSource(seedA))
		rb := rand.New(rand.NewSource(seedB))
		a := e.Encode(q, space.Random(ra))
		b := e.Encode(q, space.Random(rb))
		w := make([]float64, Dim)
		wr := rand.New(rand.NewSource(seedA ^ seedB))
		for i := range w {
			w[i] = wr.NormFloat64()
		}
		direct := DiffDot(w, a, b)
		diff := make([]float64, Dim)
		AddDiffInto(diff, a, b, 1)
		var indirect float64
		for i := range w {
			indirect += w[i] * diff[i]
		}
		return math.Abs(direct-indirect) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestBuilderPanicsOnOutOfOrder(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-order put")
		}
	}()
	var b builder
	b.put(5, 1)
	b.put(3, 1)
}

func TestDimConstant(t *testing.T) {
	if Dim <= patternBlock {
		t.Fatalf("Dim = %d should exceed pattern block %d", Dim, patternBlock)
	}
	if patternBlock != 343 {
		t.Fatalf("pattern block = %d, want 343 (7^3)", patternBlock)
	}
}

func TestFeatureNamesUniqueAndTotal(t *testing.T) {
	seen := map[string]int{}
	for i := 0; i < Dim; i++ {
		n := Name(i)
		if n == "" {
			t.Fatalf("feature %d has empty name", i)
		}
		if strings.HasPrefix(n, "feature(") || strings.HasPrefix(n, "invalid(") {
			t.Fatalf("feature %d has fallback name %q", i, n)
		}
		if prev, dup := seen[n]; dup {
			t.Fatalf("features %d and %d share name %q", prev, i, n)
		}
		seen[n] = i
	}
	if Name(-1) != "invalid(-1)" || Name(Dim) != fmt.Sprintf("invalid(%d)", Dim) {
		t.Error("out-of-range names wrong")
	}
}

func TestFeatureNamesKnownValues(t *testing.T) {
	if got := Name(171); got != "pattern(0,0,0)" {
		t.Errorf("centre pattern name = %q", got)
	}
	if got := Name(idxBx); got != "log-bx" {
		t.Errorf("bx name = %q", got)
	}
	if got := Name(idxWSBin0); got != "ws-bin[0]" {
		t.Errorf("ws bin name = %q", got)
	}
}

// TestFusionFeaturesGatedOnDepth pins the forward-compatibility contract of
// the fusion block: unfused vectors (K = 0 or 1) encode exactly as before the
// block existed, fused vectors append it at the tail, and deeper fusion
// changes the encoding.
func TestFusionFeaturesGatedOnDepth(t *testing.T) {
	e := NewEncoder()
	q := laplacianInstance()
	base := someTuning()

	k0, k1 := base, base
	k0.K = 0
	k1.K = 1
	v0, v1 := e.Encode(q, k0), e.Encode(q, k1)
	if DiffSquaredNorm(v0, v1) != 0 {
		t.Fatal("K=0 and K=1 must encode identically")
	}
	for _, idx := range v1.Idx {
		if int(idx) >= idxFuse {
			t.Fatalf("unfused vector emits fusion feature %s", Name(int(idx)))
		}
	}

	prev := v1
	for kf := 2; kf <= tunespace.MaxFuse; kf++ {
		tv := base
		tv.K = kf
		v := e.Encode(q, tv)
		if v.Get(idxFuse) == 0 {
			t.Fatalf("K=%d vector missing linear fuse feature", kf)
		}
		if v.Get(idxFuseBin0+kf-2) != 1 {
			t.Fatalf("K=%d vector missing one-hot fuse bin", kf)
		}
		if DiffSquaredNorm(prev, v) == 0 {
			t.Fatalf("K=%d encodes identically to K=%d", kf, kf-1)
		}
		// The fused encoding is the unfused one plus a pure tail extension:
		// every pre-fusion component is unchanged.
		for i, idx := range v.Idx {
			if int(idx) >= idxFuse {
				continue
			}
			if v1.Get(int(idx)) != v.Val[i] {
				t.Fatalf("K=%d changed pre-fusion feature %s", kf, Name(int(idx)))
			}
		}
		prev = v
	}
}

// TestOlderModelIgnoresFusionTail pins that a weight vector of the
// pre-fusion dimensionality scores fused vectors as if the fusion features
// had zero weight.
func TestOlderModelIgnoresFusionTail(t *testing.T) {
	e := NewEncoder()
	q := laplacianInstance()
	unfused := someTuning()
	fused := unfused
	fused.K = 4

	oldW := make([]float64, idxFuse) // pre-fusion encoding width
	for i := range oldW {
		oldW[i] = 0.01 * float64(i%7)
	}
	vu, vf := e.Encode(q, unfused), e.Encode(q, fused)
	if vu.Dot(oldW) != vf.Dot(oldW) {
		t.Fatal("older model must score fused and unfused vectors identically")
	}
	got := make([]float64, idxFuse)
	vf.AddInto(got, 1)
	want := make([]float64, idxFuse)
	vu.AddInto(want, 1)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("AddInto leaked fusion features into index %d", i)
		}
	}
}

func TestFusionFeatureNames(t *testing.T) {
	if got := Name(idxFuse); got != "fuse" {
		t.Errorf("Name(idxFuse) = %q", got)
	}
	if got := Name(idxFuseBin0 + 1); got != "fuse-bin[k=3]" {
		t.Errorf("Name(idxFuseBin0+1) = %q", got)
	}
}
