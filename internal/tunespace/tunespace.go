// Package tunespace models the stencil tuning parameters of Section V of the
// paper: the tuning vector t = (bx, by, bz, u, c, k) of loop-blocking sizes,
// innermost-loop unroll factor, multithreading chunk size and temporal fusion
// depth, together with the search space they span, random sampling, and the
// hierarchically-sampled power-of-two predefined configuration sets used by
// the standalone tuner (1600 configurations for 2-D stencils, 8640 for 3-D —
// Sec. VI-A; the fused variants of the predefined set are generated on top
// of those via PredefinedFused).
package tunespace

import (
	"encoding/binary"
	"fmt"
	"math/rand"
)

// Parameter ranges from Sec. V: each blocking size ranges over 2..1024, the
// unroll factor over 0..8 (0 = no unrolling), and the chunk size (number of
// consecutive tiles assigned to one thread) over 1..16.
const (
	MinBlock  = 2
	MaxBlock  = 1024
	MinUnroll = 0
	MaxUnroll = 8
	MinChunk  = 1
	MaxChunk  = 16
	// Temporal fusion depth (timesteps advanced per grid sweep). 0 and 1
	// both mean "no fusion"; deeper fusion trades redundant halo
	// recomputation for DRAM-traffic reuse and stops paying off quickly,
	// so the space caps at 4 fused steps.
	MinFuse = 0
	MaxFuse = 4
)

// Vector is the tuning vector t = (bx, by, bz, u, c, k). For 2-D stencils Bz
// is fixed to 1 and ignored by the generated code. K is the temporal fusion
// depth: how many timesteps a single fused sweep advances; 0 and 1 are
// equivalent (plain single-step execution), mirroring how Bz=1 marks the
// degenerate axis in 2-D.
type Vector struct {
	Bx, By, Bz int // loop blocking (tile) sizes per dimension
	U          int // innermost-loop unroll factor, 0 = none
	C          int // chunk size: consecutive tiles per thread assignment
	K          int // temporal fusion depth, 0 or 1 = unfused
}

// EffFuse returns the effective fusion depth: K normalized so that the legacy
// zero value and an explicit 1 both mean "one timestep per sweep".
func (v Vector) EffFuse() int {
	if v.K < 1 {
		return 1
	}
	return v.K
}

func (v Vector) String() string {
	return fmt.Sprintf("(bx=%d,by=%d,bz=%d,u=%d,c=%d,k=%d)", v.Bx, v.By, v.Bz, v.U, v.C, v.EffFuse())
}

// AppendFields appends the vector's components to dst as canonical
// little-endian int64s. It is the single definition of a tuning vector's
// hashable identity — dataset fingerprints and serving cache keys both build
// on it, so a future field extends every fingerprint in one place. The fusion
// depth is appended in its normalized EffFuse form: K=0 and K=1 are the same
// configuration and must hash identically, while vectors differing only in
// effective fusion depth must never alias.
func (v Vector) AppendFields(dst []byte) []byte {
	for _, f := range [...]int{v.Bx, v.By, v.Bz, v.U, v.C, v.EffFuse()} {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(f)))
	}
	return dst
}

// Validate checks the vector against the parameter ranges for a stencil of
// the given dimensionality (2 or 3).
func (v Vector) Validate(dims int) error {
	checkBlock := func(name string, b int) error {
		if b < MinBlock || b > MaxBlock {
			return fmt.Errorf("tunespace: %s=%d outside [%d,%d]", name, b, MinBlock, MaxBlock)
		}
		return nil
	}
	if err := checkBlock("bx", v.Bx); err != nil {
		return err
	}
	if err := checkBlock("by", v.By); err != nil {
		return err
	}
	if dims == 3 {
		if err := checkBlock("bz", v.Bz); err != nil {
			return err
		}
	} else if v.Bz != 1 {
		return fmt.Errorf("tunespace: 2-D vector must have bz=1, got %d", v.Bz)
	}
	if v.U < MinUnroll || v.U > MaxUnroll {
		return fmt.Errorf("tunespace: u=%d outside [%d,%d]", v.U, MinUnroll, MaxUnroll)
	}
	if v.C < MinChunk || v.C > MaxChunk {
		return fmt.Errorf("tunespace: c=%d outside [%d,%d]", v.C, MinChunk, MaxChunk)
	}
	if v.K < MinFuse || v.K > MaxFuse {
		return fmt.Errorf("tunespace: k=%d outside [%d,%d]", v.K, MinFuse, MaxFuse)
	}
	return nil
}

// Space describes the tuning search space for stencils of a given
// dimensionality. It is the T of Sec. IV: the set of legal tuning vectors.
type Space struct {
	Dims int // 2 or 3
}

// NewSpace returns the space for 2- or 3-dimensional stencils.
func NewSpace(dims int) Space {
	if dims != 2 && dims != 3 {
		panic(fmt.Sprintf("tunespace: dims must be 2 or 3, got %d", dims))
	}
	return Space{Dims: dims}
}

// Clamp forces v into the legal range for the space, fixing Bz for 2-D.
func (s Space) Clamp(v Vector) Vector {
	v.Bx = clampInt(v.Bx, MinBlock, MaxBlock)
	v.By = clampInt(v.By, MinBlock, MaxBlock)
	if s.Dims == 3 {
		v.Bz = clampInt(v.Bz, MinBlock, MaxBlock)
	} else {
		v.Bz = 1
	}
	v.U = clampInt(v.U, MinUnroll, MaxUnroll)
	v.C = clampInt(v.C, MinChunk, MaxChunk)
	v.K = clampInt(v.EffFuse(), 1, MaxFuse)
	return v
}

// Contains reports whether v is a legal point of the space.
func (s Space) Contains(v Vector) bool { return v.Validate(s.Dims) == nil }

// Random draws a uniformly random legal tuning vector. Blocking sizes are
// drawn log-uniformly (uniform over the exponent range with jitter), which
// mirrors how stencil tuners explore multiplicative block-size spaces.
func (s Space) Random(rng *rand.Rand) Vector {
	v := Vector{
		Bx: randomBlock(rng),
		By: randomBlock(rng),
		Bz: 1,
		U:  MinUnroll + rng.Intn(MaxUnroll-MinUnroll+1),
		C:  MinChunk + rng.Intn(MaxChunk-MinChunk+1),
		K:  1 + rng.Intn(MaxFuse),
	}
	if s.Dims == 3 {
		v.Bz = randomBlock(rng)
	}
	return v
}

// randomBlock draws a block size log-uniformly in [MinBlock, MaxBlock]:
// pick a power-of-two scale, then jitter within the octave.
func randomBlock(rng *rand.Rand) int {
	exp := 1 + rng.Intn(10) // 2^1 .. 2^10
	base := 1 << exp
	if base >= MaxBlock {
		return MaxBlock
	}
	// Jitter uniformly within [base, 2*base).
	b := base + rng.Intn(base)
	return clampInt(b, MinBlock, MaxBlock)
}

// Mutate returns a mutated copy of v used by the evolutionary engines: each
// gene independently perturbs with the given probability. Block sizes move
// by a random factor in {1/4,1/2,2,4}; u and c take small random steps.
func (s Space) Mutate(rng *rand.Rand, v Vector, rate float64) Vector {
	mutBlock := func(b int) int {
		shift := 1 + rng.Intn(2)
		if rng.Intn(2) == 0 {
			return b >> shift
		}
		return b << shift
	}
	if rng.Float64() < rate {
		v.Bx = mutBlock(v.Bx)
	}
	if rng.Float64() < rate {
		v.By = mutBlock(v.By)
	}
	if s.Dims == 3 && rng.Float64() < rate {
		v.Bz = mutBlock(v.Bz)
	}
	if rng.Float64() < rate {
		v.U += rng.Intn(5) - 2
	}
	if rng.Float64() < rate {
		v.C += rng.Intn(5) - 2
	}
	if rng.Float64() < rate {
		v.K = v.EffFuse() + rng.Intn(3) - 1
	}
	return s.Clamp(v)
}

// Crossover returns a uniform crossover of two parents.
func (s Space) Crossover(rng *rand.Rand, a, b Vector) Vector {
	pick := func(x, y int) int {
		if rng.Intn(2) == 0 {
			return x
		}
		return y
	}
	return s.Clamp(Vector{
		Bx: pick(a.Bx, b.Bx),
		By: pick(a.By, b.By),
		Bz: pick(a.Bz, b.Bz),
		U:  pick(a.U, b.U),
		C:  pick(a.C, b.C),
		K:  pick(a.EffFuse(), b.EffFuse()),
	})
}

// Blend returns the differential-evolution style combination
// clamp(a + f*(b - c)) used by the DE engine, gene-wise on the integer
// parameters.
func (s Space) Blend(a, b, c Vector, f float64) Vector {
	mix := func(x, y, z int) int { return x + int(f*float64(y-z)) }
	return s.Clamp(Vector{
		Bx: mix(a.Bx, b.Bx, c.Bx),
		By: mix(a.By, b.By, c.By),
		Bz: mix(a.Bz, b.Bz, c.Bz),
		U:  mix(a.U, b.U, c.U),
		C:  mix(a.C, b.C, c.C),
		K:  mix(a.EffFuse(), b.EffFuse(), c.EffFuse()),
	})
}

func clampInt(v, lo, hi int) int { return min(max(v, lo), hi) }

// powersOfTwo returns {2^lo, ..., 2^hi}.
func powersOfTwo(lo, hi int) []int {
	var out []int
	for e := lo; e <= hi; e++ {
		out = append(out, 1<<e)
	}
	return out
}

// Predefined returns the hierarchically-sampled power-of-two configuration
// set of Sec. VI-A: every combination of power-of-two parameter values,
// sized to match the paper's predefined sets — 1600 configurations for 2-D
// stencils and 8640 for 3-D ones.
//
// 2-D: bx,by ∈ {2..1024} (10 values each), u ∈ {0,2,4,8}, c ∈ {1,2,4,8}
//
//	→ 10·10·4·4 = 1600.
//
// 3-D: bx ∈ {2..1024} (10), by ∈ {4..1024} (9), bz ∈ {2..64} (6, deep
//
//	z-blocks are never profitable on this class of machine),
//	u ∈ {0,2,4,8}, c ∈ {1,2,4,8} → 10·9·6·4·4 = 8640.
func (s Space) Predefined() []Vector {
	unrolls := []int{0, 2, 4, 8}
	chunks := []int{1, 2, 4, 8}
	var out []Vector
	if s.Dims == 2 {
		for _, bx := range powersOfTwo(1, 10) {
			for _, by := range powersOfTwo(1, 10) {
				for _, u := range unrolls {
					for _, c := range chunks {
						out = append(out, Vector{Bx: bx, By: by, Bz: 1, U: u, C: c, K: 1})
					}
				}
			}
		}
		return out
	}
	for _, bx := range powersOfTwo(1, 10) {
		for _, by := range powersOfTwo(2, 10) {
			for _, bz := range powersOfTwo(1, 6) {
				for _, u := range unrolls {
					for _, c := range chunks {
						out = append(out, Vector{Bx: bx, By: by, Bz: bz, U: u, C: c, K: 1})
					}
				}
			}
		}
	}
	return out
}

// PredefinedFused expands the predefined configuration set across the given
// fusion depths (each depth duplicates the spatial set with K set). Depths
// outside [1, MaxFuse] are ignored; with no depths it defaults to {1, 2, 4},
// keeping the fused predefined set a small constant factor over the paper's
// spatial-only sets.
func (s Space) PredefinedFused(depths ...int) []Vector {
	if len(depths) == 0 {
		depths = []int{1, 2, 4}
	}
	base := s.Predefined()
	out := make([]Vector, 0, len(base)*len(depths))
	for _, k := range depths {
		if k < 1 || k > MaxFuse {
			continue
		}
		for _, v := range base {
			v.K = k
			out = append(out, v)
		}
	}
	return out
}

// RandomSet draws n distinct random vectors (distinct as far as possible;
// after 10n attempts duplicates are allowed so the call always terminates).
func (s Space) RandomSet(rng *rand.Rand, n int) []Vector {
	seen := make(map[Vector]bool, n)
	out := make([]Vector, 0, n)
	for attempts := 0; len(out) < n && attempts < 10*n; attempts++ {
		v := s.Random(rng)
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	for len(out) < n {
		out = append(out, s.Random(rng))
	}
	return out
}
