package tunespace

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	ok3 := Vector{64, 32, 16, 4, 2, 2}
	if err := ok3.Validate(3); err != nil {
		t.Errorf("valid 3-D vector rejected: %v", err)
	}
	ok2 := Vector{64, 32, 1, 0, 1, 0}
	if err := ok2.Validate(2); err != nil {
		t.Errorf("valid 2-D vector rejected: %v", err)
	}
	bad := []struct {
		v    Vector
		dims int
	}{
		{Vector{1, 32, 16, 4, 2, 1}, 3},    // bx too small
		{Vector{2048, 32, 16, 4, 2, 1}, 3}, // bx too large
		{Vector{64, 0, 16, 4, 2, 1}, 3},    // by too small
		{Vector{64, 32, 1, 4, 2, 1}, 3},    // bz too small for 3-D
		{Vector{64, 32, 16, -1, 2, 1}, 3},  // u negative
		{Vector{64, 32, 16, 9, 2, 1}, 3},   // u too large
		{Vector{64, 32, 16, 4, 0, 1}, 3},   // c too small
		{Vector{64, 32, 16, 4, 17, 1}, 3},  // c too large
		{Vector{64, 32, 16, 4, 2, 1}, 2},   // 2-D must have bz=1
		{Vector{64, 32, 16, 4, 2, -1}, 3},  // k negative
		{Vector{64, 32, 16, 4, 2, 5}, 3},   // k above MaxFuse
	}
	for _, c := range bad {
		if err := c.v.Validate(c.dims); err == nil {
			t.Errorf("vector %v dims=%d should be invalid", c.v, c.dims)
		}
	}
}

func TestNewSpacePanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for dims=4")
		}
	}()
	NewSpace(4)
}

func TestClamp(t *testing.T) {
	s3 := NewSpace(3)
	v := s3.Clamp(Vector{0, 99999, -5, 100, -3, 99})
	if err := v.Validate(3); err != nil {
		t.Errorf("clamped vector invalid: %v (%v)", err, v)
	}
	if v.Bx != MinBlock || v.By != MaxBlock || v.Bz != MinBlock || v.U != MaxUnroll || v.C != MinChunk || v.K != MaxFuse {
		t.Errorf("clamp wrong: %v", v)
	}
	s2 := NewSpace(2)
	if got := s2.Clamp(Vector{4, 4, 64, 2, 2, 0}); got.Bz != 1 {
		t.Errorf("2-D clamp should force bz=1, got %d", got.Bz)
	}
}

func TestRandomAlwaysLegal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range []int{2, 3} {
		s := NewSpace(dims)
		for i := 0; i < 2000; i++ {
			v := s.Random(rng)
			if err := v.Validate(dims); err != nil {
				t.Fatalf("dims=%d: random vector invalid: %v (%v)", dims, err, v)
			}
		}
	}
}

func TestRandomCoversRange(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := NewSpace(3)
	sawSmall, sawLarge, sawNoUnroll, sawMaxUnroll := false, false, false, false
	for i := 0; i < 5000; i++ {
		v := s.Random(rng)
		if v.Bx <= 4 {
			sawSmall = true
		}
		if v.Bx >= 512 {
			sawLarge = true
		}
		if v.U == 0 {
			sawNoUnroll = true
		}
		if v.U == 8 {
			sawMaxUnroll = true
		}
	}
	if !sawSmall || !sawLarge || !sawNoUnroll || !sawMaxUnroll {
		t.Errorf("random sampling does not cover range: small=%v large=%v u0=%v u8=%v",
			sawSmall, sawLarge, sawNoUnroll, sawMaxUnroll)
	}
}

func TestPredefinedSetSizes(t *testing.T) {
	// The paper's predefined sets: 1600 configs for 2-D, 8640 for 3-D.
	if got := len(NewSpace(2).Predefined()); got != 1600 {
		t.Errorf("2-D predefined size = %d, want 1600", got)
	}
	if got := len(NewSpace(3).Predefined()); got != 8640 {
		t.Errorf("3-D predefined size = %d, want 8640", got)
	}
}

func TestPredefinedAllLegalAndDistinct(t *testing.T) {
	for _, dims := range []int{2, 3} {
		s := NewSpace(dims)
		set := s.Predefined()
		seen := make(map[Vector]bool, len(set))
		for _, v := range set {
			if err := v.Validate(dims); err != nil {
				t.Fatalf("dims=%d: predefined %v invalid: %v", dims, v, err)
			}
			if seen[v] {
				t.Fatalf("dims=%d: duplicate predefined %v", dims, v)
			}
			seen[v] = true
		}
	}
}

func TestPredefinedIsPowerOfTwoSampled(t *testing.T) {
	isPow2 := func(n int) bool { return n > 0 && n&(n-1) == 0 }
	for _, v := range NewSpace(3).Predefined() {
		if !isPow2(v.Bx) || !isPow2(v.By) || !isPow2(v.Bz) || !isPow2(v.C) {
			t.Fatalf("non power-of-two predefined vector %v", v)
		}
		if v.U != 0 && !isPow2(v.U) {
			t.Fatalf("unroll %d not 0 or power of two", v.U)
		}
	}
}

func TestMutateStaysLegal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, dims := range []int{2, 3} {
		s := NewSpace(dims)
		v := s.Random(rng)
		for i := 0; i < 2000; i++ {
			v = s.Mutate(rng, v, 0.5)
			if err := v.Validate(dims); err != nil {
				t.Fatalf("dims=%d: mutated vector invalid: %v (%v)", dims, err, v)
			}
		}
	}
}

func TestMutateRateZeroIsIdentityModuloClamp(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := NewSpace(3)
	v := Vector{64, 64, 64, 4, 4, 2}
	for i := 0; i < 100; i++ {
		if got := s.Mutate(rng, v, 0); got != v {
			t.Fatalf("rate-0 mutation changed vector: %v -> %v", v, got)
		}
	}
}

func TestCrossoverGenesComeFromParents(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := NewSpace(3)
	a := Vector{4, 8, 16, 2, 1, 1}
	b := Vector{256, 512, 64, 8, 8, 4}
	for i := 0; i < 200; i++ {
		c := s.Crossover(rng, a, b)
		if (c.Bx != a.Bx && c.Bx != b.Bx) || (c.By != a.By && c.By != b.By) ||
			(c.Bz != a.Bz && c.Bz != b.Bz) || (c.U != a.U && c.U != b.U) ||
			(c.C != a.C && c.C != b.C) || (c.K != a.K && c.K != b.K) {
			t.Fatalf("crossover introduced foreign gene: %v", c)
		}
	}
}

func TestBlendClamps(t *testing.T) {
	s := NewSpace(3)
	a := Vector{2, 2, 2, 0, 1, 1}
	b := Vector{1024, 1024, 1024, 8, 16, 4}
	c := Vector{2, 2, 2, 0, 1, 1}
	out := s.Blend(a, b, c, 2.0) // strongly amplified difference
	if err := out.Validate(3); err != nil {
		t.Errorf("blend result invalid: %v (%v)", err, out)
	}
	out2 := s.Blend(a, c, b, 2.0) // negative direction
	if err := out2.Validate(3); err != nil {
		t.Errorf("blend result invalid: %v (%v)", err, out2)
	}
}

func TestRandomSetDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s := NewSpace(3)
	set := s.RandomSet(rng, 500)
	if len(set) != 500 {
		t.Fatalf("got %d vectors, want 500", len(set))
	}
	seen := map[Vector]bool{}
	dups := 0
	for _, v := range set {
		if seen[v] {
			dups++
		}
		seen[v] = true
	}
	if dups > 5 {
		t.Errorf("too many duplicates in random set: %d", dups)
	}
}

func TestPropertyClampIdempotent(t *testing.T) {
	s := NewSpace(3)
	f := func(bx, by, bz, u, c, k int) bool {
		v := s.Clamp(Vector{bx % 4096, by % 4096, bz % 4096, u % 32, c % 64, k % 16})
		return s.Clamp(v) == v && v.Validate(3) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyContainsAfterClamp(t *testing.T) {
	for _, dims := range []int{2, 3} {
		s := NewSpace(dims)
		f := func(bx, by, bz, u, c, k int16) bool {
			return s.Contains(s.Clamp(Vector{int(bx), int(by), int(bz), int(u), int(c), int(k)}))
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("dims=%d: %v", dims, err)
		}
	}
}

func TestVectorString(t *testing.T) {
	got := Vector{64, 32, 16, 4, 2, 3}.String()
	want := "(bx=64,by=32,bz=16,u=4,c=2,k=3)"
	if got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	// The legacy zero value and an explicit k=1 print identically.
	got = Vector{64, 32, 16, 4, 2, 0}.String()
	want = "(bx=64,by=32,bz=16,u=4,c=2,k=1)"
	if got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestEffFuseNormalizesZero(t *testing.T) {
	if got := (Vector{K: 0}).EffFuse(); got != 1 {
		t.Errorf("EffFuse(0) = %d, want 1", got)
	}
	if got := (Vector{K: 1}).EffFuse(); got != 1 {
		t.Errorf("EffFuse(1) = %d, want 1", got)
	}
	if got := (Vector{K: 3}).EffFuse(); got != 3 {
		t.Errorf("EffFuse(3) = %d, want 3", got)
	}
}

func TestAppendFieldsFuseIdentity(t *testing.T) {
	base := Vector{Bx: 32, By: 16, Bz: 8, U: 4, C: 2}
	k0 := base
	k1, k2 := base, base
	k1.K, k2.K = 1, 2
	b0 := string(k0.AppendFields(nil))
	b1 := string(k1.AppendFields(nil))
	b2 := string(k2.AppendFields(nil))
	// k=0 and k=1 are the same configuration and must hash identically so
	// compiled-program caches and serving caches keep hitting.
	if b0 != b1 {
		t.Error("AppendFields distinguishes k=0 from k=1; they are the same configuration")
	}
	// A genuinely different fusion depth must never alias.
	if b1 == b2 {
		t.Error("AppendFields does not distinguish fusion depths k=1 and k=2")
	}
}

func TestRandomCoversFuseRange(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := NewSpace(3)
	saw := map[int]bool{}
	for i := 0; i < 2000; i++ {
		saw[s.Random(rng).K] = true
	}
	for k := 1; k <= MaxFuse; k++ {
		if !saw[k] {
			t.Errorf("random sampling never drew fusion depth %d", k)
		}
	}
	if saw[0] || saw[MaxFuse+1] {
		t.Errorf("random sampling drew out-of-range fusion depth: %v", saw)
	}
}

func TestPredefinedFused(t *testing.T) {
	s := NewSpace(2)
	base := len(s.Predefined())
	fused := s.PredefinedFused()
	if len(fused) != 3*base {
		t.Fatalf("default PredefinedFused size = %d, want %d", len(fused), 3*base)
	}
	seen := map[Vector]bool{}
	depths := map[int]bool{}
	for _, v := range fused {
		if err := v.Validate(2); err != nil {
			t.Fatalf("fused predefined %v invalid: %v", v, err)
		}
		if seen[v] {
			t.Fatalf("duplicate fused predefined %v", v)
		}
		seen[v] = true
		depths[v.K] = true
	}
	if !depths[1] || !depths[2] || !depths[4] {
		t.Errorf("default fused depths = %v, want {1,2,4}", depths)
	}
	if got := s.PredefinedFused(1); len(got) != base {
		t.Errorf("PredefinedFused(1) size = %d, want %d", len(got), base)
	}
	if got := s.PredefinedFused(0, 9); len(got) != 0 {
		t.Errorf("out-of-range depths should be ignored, got %d vectors", len(got))
	}
}
