// Package trainer wires the full training pipeline of Fig. 3: generate the
// training stencil codes and instances, evaluate them, assemble the partial
// rankings, encode feature vectors, and fit the ordinal-regression model.
// It also measures the per-phase costs reported in Table II and the
// per-instance Kendall τ analysis of Figs. 6 and 7.
package trainer

import (
	"fmt"
	"time"

	"repro/internal/dataset"
	"repro/internal/feature"
	"repro/internal/ranking"
	"repro/internal/stencil"
	"repro/internal/svmrank"
	"repro/internal/tunespace"
)

// Config bundles the pipeline knobs.
type Config struct {
	Dataset dataset.Options
	SVM     svmrank.Options
}

// DefaultConfig reproduces the paper's setup: a linear kernel trained on
// within-query pairs. The paper fixes SVM-Rank's -c to 0.01 (whose objective
// scales C by the query count); with our from-scratch solver, feature
// encoding and simulated substrate, the equivalent operating point of the
// regularization plateau sits at a per-pair C of 3 — see the C-sensitivity
// ablation in bench_test.go and the calibration note in EXPERIMENTS.md.
//
// Generation runs sequentially by default; set Dataset.Workers (the
// generated Set is identical for every worker count).
func DefaultConfig(targetPoints int, seed int64) Config {
	noNorm := false
	return Config{
		Dataset: dataset.Options{TargetPoints: targetPoints, Seed: seed},
		SVM: svmrank.Options{
			C:          3,
			NormalizeC: &noNorm,
			Epochs:     60,
			Seed:       seed,
			Pairs:      svmrank.PairOptions{Strategy: svmrank.AdjacentPairs, Window: 8, Seed: seed},
		},
	}
}

// Result is a trained model with its provenance.
type Result struct {
	Set      *dataset.Set
	Model    *svmrank.Model
	SVMStats svmrank.Stats
}

// Train runs the full pipeline against the evaluator.
func Train(eval dataset.Evaluator, cfg Config) (*Result, error) {
	set, err := dataset.Generate(eval, cfg.Dataset)
	if err != nil {
		return nil, fmt.Errorf("trainer: generating training set: %w", err)
	}
	model, stats, err := svmrank.Train(set.Data, cfg.SVM)
	if err != nil {
		return nil, fmt.Errorf("trainer: fitting model: %w", err)
	}
	return &Result{Set: set, Model: model, SVMStats: stats}, nil
}

// QueryTau is the Kendall τ of one training instance (one point of Fig. 6).
type QueryTau struct {
	Query string
	Tau   float64
	Size  int // executions in the group
}

// EvaluateTau compares, per instance, the training-set runtime ordering with
// the model's predicted ordering, exactly as Sec. VI-B does: predicted scores
// are negated so that both sequences order "smaller is better".
func EvaluateTau(model *svmrank.Model, set *dataset.Set) []QueryTau {
	return EvaluateTauData(model, set.Data)
}

// EvaluateTauData computes per-query τ directly on an svmrank dataset,
// allowing evaluation on arbitrary subsets (cross-validation). All examples
// are scored in one ScoreBatch call (the model is read-only and batch
// scoring parallelizes internally) before the per-query τ loop.
func EvaluateTauData(model *svmrank.Model, data *svmrank.Dataset) []QueryTau {
	xs := make([]feature.Vector, data.Len())
	for i, e := range data.Examples {
		xs[i] = e.X
	}
	scores := model.ScoreBatch(xs)

	groups := data.Groups()
	out := make([]QueryTau, 0, len(groups))
	for _, q := range data.Queries() {
		idx := groups[q]
		if len(idx) < 2 {
			continue
		}
		runtimes := make([]float64, len(idx))
		predicted := make([]float64, len(idx))
		for i, e := range idx {
			runtimes[i] = data.Examples[e].Y
			predicted[i] = -scores[e]
		}
		out = append(out, QueryTau{
			Query: q,
			Tau:   ranking.KendallTau(runtimes, predicted),
			Size:  len(idx),
		})
	}
	return out
}

// TauValues extracts the raw τ sample from EvaluateTau output.
func TauValues(qs []QueryTau) []float64 {
	vals := make([]float64, len(qs))
	for i, q := range qs {
		vals[i] = q.Tau
	}
	return vals
}

// Phases is one row of Table II.
type Phases struct {
	TSSize int
	// TSCompile is the simulated PATUS+gcc double-compilation cost. The
	// paper reports one aggregate 32 h figure for all training codes.
	TSCompile time.Duration
	// TSGeneration is the simulated execution time of the training runs.
	TSGeneration time.Duration
	// Training is the measured SVM fitting time in this process.
	Training time.Duration
	// Regression is the measured time to rank RegressionCandidates tuning
	// settings with the fitted model.
	Regression time.Duration
}

// MeasurePhases reproduces Table II: for each training-set size it runs the
// pipeline and measures each phase. regressionCandidates controls how many
// settings the regression-time measurement ranks (the paper ranks the
// predefined sets; it reports <1 ms throughout). workers bounds concurrent
// training-set generation (0/1 sequential, negative = GOMAXPROCS); the
// generated sets — and therefore the fitted models — are identical for
// every worker count.
func MeasurePhases(eval dataset.Evaluator, sizes []int, regressionCandidates int, seed int64, workers int) ([]Phases, error) {
	enc := feature.NewEncoder()
	// A fixed candidate-ranking workload: predefined 3-D vectors on a
	// representative instance.
	q := stencil.Instance{Kernel: stencil.Laplacian(), Size: stencil.Size3D(128, 128, 128)}
	cands := tunespace.NewSpace(3).Predefined()
	if regressionCandidates > 0 && regressionCandidates < len(cands) {
		cands = cands[:regressionCandidates]
	}
	encoded := make([]feature.Vector, len(cands))
	for i, tv := range cands {
		encoded[i] = enc.Encode(q, tv)
	}

	var rows []Phases
	for _, size := range sizes {
		cfg := DefaultConfig(size, seed)
		cfg.Dataset.Workers = workers
		res, err := Train(eval, cfg)
		if err != nil {
			return nil, fmt.Errorf("trainer: size %d: %w", size, err)
		}
		start := time.Now()
		res.Model.Rank(encoded)
		regression := time.Since(start)
		rows = append(rows, Phases{
			TSSize:       size,
			TSCompile:    res.Set.SimulatedCompileTime,
			TSGeneration: res.Set.SimulatedExecTime,
			Training:     res.SVMStats.TrainTime,
			Regression:   regression,
		})
	}
	return rows, nil
}

// Table2Sizes returns the twelve training-set sizes of Table II.
func Table2Sizes() []int {
	return []int{960, 1920, 2880, 3840, 4800, 5760, 6720, 7680, 8640, 9600, 16000, 32000}
}
