package trainer

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/machine"
	"repro/internal/perfmodel"
	"repro/internal/ranking"
	"repro/internal/svmrank"
)

func evaluator() dataset.Evaluator { return perfmodel.New(machine.XeonE52680v3()) }

func TestTrainPipelineEndToEnd(t *testing.T) {
	res, err := Train(evaluator(), DefaultConfig(960, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Set.Len() != 960 {
		t.Errorf("set size = %d", res.Set.Len())
	}
	if res.Model == nil || len(res.Model.W) == 0 {
		t.Fatal("no model")
	}
	if res.SVMStats.Pairs == 0 {
		t.Error("no pairs trained")
	}
}

func TestTrainPropagatesErrors(t *testing.T) {
	if _, err := Train(evaluator(), Config{}); err == nil {
		t.Error("zero config accepted")
	}
	cfg := DefaultConfig(960, 1)
	cfg.SVM.C = -1
	if _, err := Train(evaluator(), cfg); err == nil {
		t.Error("negative C accepted")
	}
}

func TestEvaluateTauPositiveOnTrainingSet(t *testing.T) {
	// The core scientific check: the fitted model must rank the training
	// set far better than chance.
	res, err := Train(evaluator(), DefaultConfig(1920, 2))
	if err != nil {
		t.Fatal(err)
	}
	taus := EvaluateTau(res.Model, res.Set)
	if len(taus) == 0 {
		t.Fatal("no tau values")
	}
	s := ranking.Summarize(TauValues(taus))
	t.Logf("tau: median=%.3f mean=%.3f q1=%.3f q3=%.3f n=%d", s.Median, s.Mean, s.Q1, s.Q3, s.N)
	if s.Median < 0.3 {
		t.Errorf("median training τ = %.3f, want ≥ 0.3 (model failed to learn)", s.Median)
	}
	for _, q := range taus {
		if q.Tau < -1 || q.Tau > 1 {
			t.Fatalf("%s: τ = %v out of range", q.Query, q.Tau)
		}
		if q.Size < 2 {
			t.Fatalf("%s: degenerate group of size %d survived", q.Query, q.Size)
		}
	}
}

func TestTauImprovesWithTrainingSize(t *testing.T) {
	// Fig. 7's headline: larger training sets stabilize and improve τ.
	// Comparing τ on each model's own training set is misleading (small
	// sets have tiny groups with upward-noisy τ), so both models are
	// evaluated on the same fixed held-out set.
	holdout, err := dataset.Generate(evaluator(), dataset.Options{TargetPoints: 6720, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	small, err := Train(evaluator(), DefaultConfig(960, 3))
	if err != nil {
		t.Fatal(err)
	}
	large, err := Train(evaluator(), DefaultConfig(6720, 3))
	if err != nil {
		t.Fatal(err)
	}
	ts := ranking.Summarize(TauValues(EvaluateTau(small.Model, holdout)))
	tl := ranking.Summarize(TauValues(EvaluateTau(large.Model, holdout)))
	t.Logf("960: median=%.3f IQR=%.3f | 6720: median=%.3f IQR=%.3f",
		ts.Median, ts.IQR, tl.Median, tl.IQR)
	// The paper's claim (Sec. VI-B): the distribution "slightly improves
	// on average, but consistently improves in variance".
	if tl.Median < ts.Median {
		t.Errorf("held-out median τ degraded with more data: %.3f -> %.3f", ts.Median, tl.Median)
	}
	if tl.IQR > ts.IQR+0.05 {
		t.Errorf("held-out τ IQR grew with more data: %.3f -> %.3f", ts.IQR, tl.IQR)
	}
}

func TestMeasurePhases(t *testing.T) {
	rows, err := MeasurePhases(evaluator(), []int{960, 1920}, 1000, 1, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].TSSize != 960 || rows[1].TSSize != 1920 {
		t.Errorf("sizes wrong: %+v", rows)
	}
	for _, r := range rows {
		if r.TSCompile <= 0 || r.TSGeneration <= 0 || r.Training <= 0 || r.Regression <= 0 {
			t.Errorf("unpopulated phase row: %+v", r)
		}
	}
	// Bigger set costs more simulated generation time.
	if rows[1].TSGeneration <= rows[0].TSGeneration {
		t.Errorf("generation time should grow with TS size: %v vs %v",
			rows[0].TSGeneration, rows[1].TSGeneration)
	}
}

func TestMeasurePhasesPropagatesError(t *testing.T) {
	if _, err := MeasurePhases(evaluator(), []int{-1}, 100, 1, 0); err == nil {
		t.Error("invalid size accepted")
	}
}

func TestTable2Sizes(t *testing.T) {
	sizes := Table2Sizes()
	if len(sizes) != 12 {
		t.Fatalf("got %d sizes, want 12 (Table II rows)", len(sizes))
	}
	if sizes[0] != 960 || sizes[len(sizes)-1] != 32000 {
		t.Errorf("endpoints wrong: %v", sizes)
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] <= sizes[i-1] {
			t.Errorf("sizes not increasing at %d", i)
		}
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig(960, 1)
	if cfg.SVM.C != 3 {
		t.Errorf("C = %v, want 3 (calibrated equivalent of the paper's 0.01)", cfg.SVM.C)
	}
	if cfg.Dataset.TargetPoints != 960 {
		t.Errorf("target = %d", cfg.Dataset.TargetPoints)
	}
}

func TestSGDSolverAlsoLearns(t *testing.T) {
	cfg := DefaultConfig(960, 4)
	cfg.SVM.Solver = svmrank.SGD
	cfg.SVM.Epochs = 10
	res, err := Train(evaluator(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := ranking.Summarize(TauValues(EvaluateTau(res.Model, res.Set)))
	t.Logf("SGD tau median=%.3f", s.Median)
	if s.Median < 0.15 {
		t.Errorf("SGD median τ = %.3f, want ≥ 0.15", s.Median)
	}
}

func TestCrossValidateLeaveOneFamilyOut(t *testing.T) {
	folds, err := CrossValidate(evaluator(), 3840, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 4 {
		t.Fatalf("folds = %d, want 4 (Fig. 1 families)", len(folds))
	}
	names := map[string]bool{}
	for _, f := range folds {
		names[f.HeldOut] = true
		t.Logf("held-out %-11s train median τ=%.3f  test median τ=%.3f (n=%d)",
			f.HeldOut, f.Train.Median, f.Test.Median, f.Test.N)
		if f.Test.N == 0 || f.Train.N == 0 {
			t.Errorf("%s: empty fold", f.HeldOut)
		}
		// The generalization claim: ranking unseen shape families still
		// works clearly better than chance.
		if f.Test.Median < 0.15 {
			t.Errorf("%s: held-out median τ = %.3f, want ≥ 0.15", f.HeldOut, f.Test.Median)
		}
	}
	for _, want := range []string{"line", "hyperplane", "hypercube", "laplacian"} {
		if !names[want] {
			t.Errorf("missing fold %q", want)
		}
	}
}

func TestFamilyOf(t *testing.T) {
	cases := map[string]string{
		"train-3d-laplacian-o2-b1-double/128x128x128": "laplacian",
		"train-2d-line-o1-b1-float/256x256":           "line",
		"weird":                                       "",
	}
	for q, want := range cases {
		if got := familyOf(q); got != want {
			t.Errorf("familyOf(%q) = %q, want %q", q, got, want)
		}
	}
}
