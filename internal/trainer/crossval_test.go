package trainer

import (
	"reflect"
	"testing"

	"repro/internal/stencil"
)

// TestCrossValidateDeterministicOnFixedSeed pins the reproducibility
// contract: the same evaluator, target size and seed must produce the exact
// same folds — same held-out families in the same order and bit-identical
// Kendall-τ summaries — across repeated runs.
func TestCrossValidateDeterministicOnFixedSeed(t *testing.T) {
	a, err := CrossValidate(evaluator(), 960, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CrossValidate(evaluator(), 960, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("cross-validation not deterministic:\nfirst  %+v\nsecond %+v", a, b)
	}
	// A different seed draws different tuning vectors, so at least one τ
	// summary should move — otherwise the seed is being ignored.
	c, err := CrossValidate(evaluator(), 960, 8)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Error("cross-validation ignored the seed (identical folds for seeds 7 and 8)")
	}
}

// TestCrossValidateDataTypesBothPrecisions exercises the per-dtype study for
// both element types on one generated dataset: each produces the four family
// folds with non-empty train/test splits, in-range deterministic τ, and the
// two precisions fold genuinely different example sets (their τ values
// differ).
func TestCrossValidateDataTypesBothPrecisions(t *testing.T) {
	byType, err := CrossValidateDataTypes(evaluator(), 960, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(byType) != 2 {
		t.Fatalf("dtype studies = %d, want 2 (defaulted to both precisions)", len(byType))
	}
	for _, dt := range []stencil.DataType{stencil.Float32, stencil.Float64} {
		folds := byType[dt]
		if len(folds) != 4 {
			t.Fatalf("%s: folds = %d, want 4", dt, len(folds))
		}
		for _, f := range folds {
			if f.Train.N == 0 || f.Test.N == 0 {
				t.Errorf("%s/%s: empty fold (train n=%d, test n=%d)", dt, f.HeldOut, f.Train.N, f.Test.N)
			}
			for _, v := range []float64{f.Train.Median, f.Test.Median} {
				if v < -1 || v > 1 {
					t.Errorf("%s/%s: τ median %v out of range", dt, f.HeldOut, v)
				}
			}
			t.Logf("%-6s held-out %-11s train τ=%.3f test τ=%.3f (n=%d)",
				dt, f.HeldOut, f.Train.Median, f.Test.Median, f.Test.N)
		}
	}
	// Deterministic on a fixed seed; single-dtype requests match the slice
	// the both-types call produced.
	again, err := CrossValidateDataTypes(evaluator(), 960, 7, stencil.Float32)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(byType[stencil.Float32], again[stencil.Float32]) {
		t.Error("per-dtype cross-validation not deterministic across calls")
	}
	if reflect.DeepEqual(byType[stencil.Float32], byType[stencil.Float64]) {
		t.Error("Float32 and Float64 folds identical — dtype filter selected the same examples")
	}
}

// TestQueryHasType pins the query-id dtype tagging the filter relies on.
func TestQueryHasType(t *testing.T) {
	cases := []struct {
		query string
		dt    stencil.DataType
		want  bool
	}{
		{"train-3d-laplacian-o2-b1-double/128x128x128", stencil.Float64, true},
		{"train-3d-laplacian-o2-b1-double/128x128x128", stencil.Float32, false},
		{"train-2d-line-o1-b1-float/256x256", stencil.Float32, true},
		{"train-2d-line-o1-b1-float/256x256", stencil.Float64, false},
		{"train-2d-hypercube-o1-b3-float/512x512", stencil.Float32, true},
	}
	for _, tc := range cases {
		if got := queryHasType(tc.query, tc.dt); got != tc.want {
			t.Errorf("queryHasType(%q, %s) = %v, want %v", tc.query, tc.dt, got, tc.want)
		}
	}
}
