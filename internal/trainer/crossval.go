package trainer

import (
	"fmt"
	"strings"

	"repro/internal/dataset"
	"repro/internal/ranking"
	"repro/internal/shape"
	"repro/internal/stencil"
	"repro/internal/svmrank"
)

// This file implements the generalization study behind the paper's central
// claim: the model ranks tuning vectors for *unseen* stencils. The strongest
// version is leave-one-shape-family-out cross-validation — the model never
// sees any kernel of the held-out Fig. 1 family during training, then is
// asked to rank the held-out family's executions.

// FoldResult is one fold of the cross-validation.
type FoldResult struct {
	// HeldOut names the shape family excluded from training.
	HeldOut string
	// Train summarizes τ on the fold's own training queries.
	Train ranking.Summary
	// Test summarizes τ on the held-out family's queries.
	Test ranking.Summary
}

// familyOf extracts the shape-family tag from a training-kernel query id
// ("train-3d-laplacian-o2-b1-double/128x128x128" → "laplacian").
func familyOf(query string) string {
	parts := strings.Split(query, "-")
	if len(parts) < 3 {
		return ""
	}
	return parts[2]
}

// queryHasType reports whether a training-kernel query id declares the given
// element type (kernel names end in the dtype tag: "…-b1-double/128³").
func queryHasType(query string, dt stencil.DataType) bool {
	name, _, _ := strings.Cut(query, "/")
	return strings.HasSuffix(name, "-"+dt.String())
}

// CrossValidate runs leave-one-family-out cross-validation: for each of the
// four Fig. 1 families it trains on the other three and evaluates per-query
// Kendall τ on the held-out family.
func CrossValidate(eval dataset.Evaluator, targetPoints int, seed int64) ([]FoldResult, error) {
	cfg := DefaultConfig(targetPoints, seed)
	set, err := dataset.Generate(eval, cfg.Dataset)
	if err != nil {
		return nil, fmt.Errorf("trainer: crossval set: %w", err)
	}
	return foldByFamily(cfg, set, nil)
}

// CrossValidateDataTypes runs the same study restricted to training
// examples of one element type, once per requested type (both when none are
// given), all on a single generated dataset — with a Measure-mode evaluator
// the dataset is the expensive part, and generating it once also means each
// per-type study folds exactly the examples the pooled CrossValidate sees.
// With precision-true Measure-mode execution the two element types produce
// genuinely different runtimes, so per-type folds answer whether ranking
// generalizes within each precision regime, not just pooled across both.
func CrossValidateDataTypes(eval dataset.Evaluator, targetPoints int, seed int64, dts ...stencil.DataType) (map[stencil.DataType][]FoldResult, error) {
	if len(dts) == 0 {
		dts = []stencil.DataType{stencil.Float32, stencil.Float64}
	}
	cfg := DefaultConfig(targetPoints, seed)
	set, err := dataset.Generate(eval, cfg.Dataset)
	if err != nil {
		return nil, fmt.Errorf("trainer: crossval set: %w", err)
	}
	out := make(map[stencil.DataType][]FoldResult, len(dts))
	for _, dt := range dts {
		folds, err := foldByFamily(cfg, set, func(query string) bool {
			return queryHasType(query, dt)
		})
		if err != nil {
			return nil, fmt.Errorf("trainer: dtype %s: %w", dt, err)
		}
		out[dt] = folds
	}
	return out, nil
}

// foldByFamily folds one generated dataset per family, keeping only examples
// accepted by keep (nil keeps everything).
func foldByFamily(cfg Config, set *dataset.Set, keep func(query string) bool) ([]FoldResult, error) {
	var folds []FoldResult
	for _, fam := range shape.Families() {
		name := fam.String()
		trainData := &svmrank.Dataset{}
		testData := &svmrank.Dataset{}
		for _, e := range set.Data.Examples {
			if keep != nil && !keep(e.Query) {
				continue
			}
			if familyOf(e.Query) == name {
				testData.Add(e)
			} else {
				trainData.Add(e)
			}
		}
		if trainData.Len() == 0 || testData.Len() == 0 {
			return nil, fmt.Errorf("trainer: family %q has an empty fold (train %d / test %d)",
				name, trainData.Len(), testData.Len())
		}
		model, _, err := svmrank.Train(trainData, cfg.SVM)
		if err != nil {
			return nil, fmt.Errorf("trainer: fold %q: %w", name, err)
		}
		folds = append(folds, FoldResult{
			HeldOut: name,
			Train:   ranking.Summarize(TauValues(EvaluateTauData(model, trainData))),
			Test:    ranking.Summarize(TauValues(EvaluateTauData(model, testData))),
		})
	}
	return folds, nil
}
