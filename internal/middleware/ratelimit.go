package middleware

import (
	"math"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
)

// ClientIDHeader lets well-behaved clients identify themselves for rate
// limiting independent of their source address (NAT'd fleets, proxies).
const ClientIDHeader = "X-Client-ID"

// RateLimiter is a per-client token-bucket limiter. Each client (keyed by
// X-Client-ID, falling back to the remote address's host) owns a bucket
// holding up to burst tokens refilled at rate tokens/second; a request
// costs one token and a dry bucket answers 429 with a truthful Retry-After.
//
// Buckets for idle clients are pruned once they are full again (a full
// bucket is indistinguishable from a fresh one), so the table stays
// proportional to the set of recently active clients rather than every
// client ever seen.
type RateLimiter struct {
	rate  float64 // tokens per second
	burst float64 // bucket capacity

	now func() time.Time // injectable clock for deterministic tests

	mu        sync.Mutex
	buckets   map[string]*bucket
	lastPrune time.Time

	limited *obs.Counter
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewRateLimiter builds a limiter allowing rate requests/second with bursts
// of burst. rate <= 0 disables limiting (Middleware returns the handler
// unchanged); burst < 1 is raised to 1 so a conforming client can always
// make progress.
func NewRateLimiter(rate float64, burst int, reg *obs.Registry) *RateLimiter {
	l := &RateLimiter{
		rate:    rate,
		burst:   math.Max(float64(burst), 1),
		now:     time.Now,
		buckets: make(map[string]*bucket),
	}
	if reg != nil {
		l.limited = reg.Counter("stencilserve_rate_limited_total",
			"Requests answered 429 by the per-client rate limiter.")
	}
	return l
}

// ClientKey returns the identity a request is limited under.
func ClientKey(r *http.Request) string {
	if id := r.Header.Get(ClientIDHeader); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// allow spends one token for key if available; otherwise it reports the
// wait until one token will exist.
func (l *RateLimiter) allow(key string) (ok bool, retryAfter time.Duration) {
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()

	b, exists := l.buckets[key]
	if !exists {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	} else {
		elapsed := now.Sub(b.last).Seconds()
		if elapsed > 0 {
			b.tokens = math.Min(l.burst, b.tokens+elapsed*l.rate)
			b.last = now
		}
	}
	ok = b.tokens >= 1
	if ok {
		b.tokens--
	} else {
		retryAfter = time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
	}
	// Prune after spending, so the bucket serving this request is never
	// full and never sweeps itself away.
	l.maybePrune(now)
	return ok, retryAfter
}

// maybePrune drops full (= effectively fresh) buckets at most once per
// minute; callers hold l.mu.
func (l *RateLimiter) maybePrune(now time.Time) {
	if now.Sub(l.lastPrune) < time.Minute {
		return
	}
	l.lastPrune = now
	for key, b := range l.buckets {
		tokens := math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate)
		if tokens >= l.burst {
			delete(l.buckets, key)
		}
	}
}

// Clients reports how many client buckets are currently tracked.
func (l *RateLimiter) Clients() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}

// Middleware enforces the limiter: over-limit requests are answered 429
// with a Retry-After (whole seconds, rounded up so a client that honors it
// never arrives early) and a stencilserve_rate_limited_total increment.
func (l *RateLimiter) Middleware() func(http.Handler) http.Handler {
	return func(next http.Handler) http.Handler {
		if l == nil || l.rate <= 0 {
			return next
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			ok, retryAfter := l.allow(ClientKey(r))
			if !ok {
				l.limited.Inc()
				secs := int64(math.Ceil(retryAfter.Seconds()))
				if secs < 1 {
					secs = 1
				}
				w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
				writeJSONError(w, http.StatusTooManyRequests, "rate limit exceeded")
				return
			}
			next.ServeHTTP(w, r)
		})
	}
}
