package middleware

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			if _, err := io.ReadAll(r.Body); err != nil {
				// The server package maps this to 413; here a plain 400
				// suffices to observe MaxBytesReader truncation.
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"ok":true}`))
	})
}

func TestChainOrder(t *testing.T) {
	var order []string
	tag := func(name string) func(http.Handler) http.Handler {
		return func(next http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				order = append(order, name)
				next.ServeHTTP(w, r)
			})
		}
	}
	h := Chain(okHandler(), tag("outer"), tag("inner"))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/", nil))
	if len(order) != 2 || order[0] != "outer" || order[1] != "inner" {
		t.Fatalf("middleware ran in order %v, want [outer inner]", order)
	}
}

func TestRequestIDGeneratedAndPropagated(t *testing.T) {
	var seen string
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = RequestIDFrom(r.Context())
	}), RequestID())

	// Generated when absent.
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/", nil))
	if seen == "" {
		t.Fatal("no request ID injected into context")
	}
	if got := w.Header().Get(RequestIDHeader); got != seen {
		t.Errorf("response header %q, context %q — want identical", got, seen)
	}

	// Propagated when the client supplies one.
	req := httptest.NewRequest(http.MethodGet, "/", nil)
	req.Header.Set(RequestIDHeader, "client-chosen-7")
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if seen != "client-chosen-7" || w.Header().Get(RequestIDHeader) != "client-chosen-7" {
		t.Errorf("client-supplied ID not propagated: context %q header %q", seen, w.Header().Get(RequestIDHeader))
	}

	// Oversized IDs are replaced, not echoed (header-stuffing guard).
	req = httptest.NewRequest(http.MethodGet, "/", nil)
	req.Header.Set(RequestIDHeader, strings.Repeat("x", 500))
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if len(w.Header().Get(RequestIDHeader)) > 128 {
		t.Error("oversized client request ID echoed back")
	}
}

func TestRecoverIsolatesPanic(t *testing.T) {
	reg := obs.NewRegistry()
	var logBuf bytes.Buffer
	logger := obs.NewLogger(&logBuf, "json")
	mux := http.NewServeMux()
	mux.Handle("/boom", http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	}))
	mux.Handle("/ok", okHandler())
	h := Chain(mux, RequestID(), Recover(logger, reg))

	w := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/boom", nil)
	req.Header.Set(RequestIDHeader, "trace-me-42")
	h.ServeHTTP(w, req)
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler: status %d, want 500", w.Code)
	}
	var body map[string]string
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil || body["error"] == "" {
		t.Fatalf("panic response is not a JSON error: %q", w.Body.String())
	}
	if got := reg.Value("stencilserve_panics_total"); got != 1 {
		t.Errorf("stencilserve_panics_total = %v, want 1", got)
	}

	// The panic log line must identify the request that caused it.
	var line map[string]any
	if err := json.Unmarshal(logBuf.Bytes(), &line); err != nil {
		t.Fatalf("panic log is not structured JSON: %v\n%s", err, logBuf.String())
	}
	if line["request_id"] != "trace-me-42" || line["path"] != "/boom" || line["method"] != http.MethodGet {
		t.Errorf("panic log missing correlation fields: %v", line)
	}
	if s, _ := line["panic"].(string); s != "kaboom" {
		t.Errorf("panic log payload = %v, want kaboom", line["panic"])
	}

	// The chain (standing in for the server process) still serves.
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/ok", nil))
	if w.Code != http.StatusOK {
		t.Errorf("request after panic: status %d, want 200", w.Code)
	}
}

func TestRecoverPassesAbortHandler(t *testing.T) {
	h := Chain(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic(http.ErrAbortHandler)
	}), Recover(obs.NewLogger(io.Discard, "text"), nil))
	defer func() {
		if recover() != http.ErrAbortHandler {
			t.Error("http.ErrAbortHandler was swallowed; it must propagate to net/http")
		}
	}()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/", nil))
	t.Error("unreachable: abort panic did not propagate")
}

func TestMaxBytes(t *testing.T) {
	reg := obs.NewRegistry()
	h := Chain(okHandler(), MaxBytes(64, reg))

	// Under the cap: fine.
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/", strings.NewReader(`{"small":true}`)))
	if w.Code != http.StatusOK {
		t.Fatalf("small body: status %d", w.Code)
	}

	// Declared oversize: immediate 413 before any read.
	big := strings.Repeat("x", 200)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/", strings.NewReader(big)))
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", w.Code)
	}
	if got := reg.Value("stencilserve_body_too_large_total"); got != 1 {
		t.Errorf("stencilserve_body_too_large_total = %v, want 1", got)
	}

	// Lying client (no Content-Length): MaxBytesReader truncates the read.
	req := httptest.NewRequest(http.MethodPost, "/", strings.NewReader(big))
	req.ContentLength = -1
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code == http.StatusOK {
		t.Error("chunked oversized body slipped past the cap")
	}
}

func TestRateLimiterBucketsAndRetryAfter(t *testing.T) {
	reg := obs.NewRegistry()
	l := NewRateLimiter(1, 2, reg) // 1 req/s, burst 2
	clock := time.Unix(1000, 0)
	l.now = func() time.Time { return clock }
	h := Chain(okHandler(), l.Middleware())

	do := func(client string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodGet, "/", nil)
		req.Header.Set(ClientIDHeader, client)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		return w
	}

	// Burst of 2 passes, the third is shed with an honest Retry-After.
	if do("a").Code != http.StatusOK || do("a").Code != http.StatusOK {
		t.Fatal("burst within capacity was limited")
	}
	w := do("a")
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("over-burst request: status %d, want 429", w.Code)
	}
	ra, err := strconv.Atoi(w.Header().Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After %q, want a positive integer", w.Header().Get("Retry-After"))
	}
	var body map[string]string
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil || body["error"] == "" {
		t.Fatalf("429 body is not a JSON error: %q", w.Body.String())
	}

	// A different client has its own bucket.
	if do("b").Code != http.StatusOK {
		t.Error("client b was limited by client a's bucket")
	}

	// After the advertised wait, client a is admitted again.
	clock = clock.Add(time.Duration(ra) * time.Second)
	if w := do("a"); w.Code != http.StatusOK {
		t.Errorf("request after Retry-After: status %d, want 200", w.Code)
	}
	if got := reg.Value("stencilserve_rate_limited_total"); got != 1 {
		t.Errorf("stencilserve_rate_limited_total = %v, want 1", got)
	}
}

func TestRateLimiterKeysOnRemoteAddrWithoutClientID(t *testing.T) {
	l := NewRateLimiter(100, 1, nil)
	h := Chain(okHandler(), l.Middleware())
	req := httptest.NewRequest(http.MethodGet, "/", nil)
	req.RemoteAddr = "10.1.2.3:5555"
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	req2 := httptest.NewRequest(http.MethodGet, "/", nil)
	req2.RemoteAddr = "10.1.2.3:6666" // same host, different port = same client
	w2 := httptest.NewRecorder()
	h.ServeHTTP(w2, req2)
	if w.Code != http.StatusOK || w2.Code != http.StatusTooManyRequests {
		t.Errorf("per-host keying: first %d second %d, want 200 then 429", w.Code, w2.Code)
	}
}

func TestRateLimiterPrunesIdleClients(t *testing.T) {
	l := NewRateLimiter(10, 5, nil)
	clock := time.Unix(2000, 0)
	l.now = func() time.Time { return clock }
	for i := 0; i < 50; i++ {
		l.allow("client-" + strconv.Itoa(i))
	}
	if l.Clients() != 50 {
		t.Fatalf("tracked clients = %d, want 50", l.Clients())
	}
	// All buckets refill within a second; the next allow past the prune
	// interval sweeps them.
	clock = clock.Add(2 * time.Minute)
	l.allow("fresh")
	if got := l.Clients(); got > 2 {
		t.Errorf("after prune window, tracked clients = %d, want <= 2", got)
	}
}

func TestRateLimitDisabledPassesThrough(t *testing.T) {
	l := NewRateLimiter(0, 0, nil)
	h := Chain(okHandler(), l.Middleware())
	for i := 0; i < 100; i++ {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/", nil))
		if w.Code != http.StatusOK {
			t.Fatalf("disabled limiter shed request %d", i)
		}
	}
}

func TestJSONContentTypeDefaultsTimeoutBody(t *testing.T) {
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-time.After(5 * time.Second):
		}
	})
	h := Chain(http.TimeoutHandler(slow, 10*time.Millisecond, `{"error":"request timed out"}`),
		JSONContentType())
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/", nil))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("timed-out request: status %d, want 503", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("timeout body Content-Type = %q, want application/json", ct)
	}
	var body map[string]string
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil || body["error"] == "" {
		t.Errorf("timeout body is not well-formed JSON: %q", w.Body.String())
	}

	// A handler that sets its own Content-Type is left alone.
	h2 := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		w.Write([]byte("hi"))
	}), JSONContentType())
	w2 := httptest.NewRecorder()
	h2.ServeHTTP(w2, httptest.NewRequest(http.MethodGet, "/", nil))
	if ct := w2.Header().Get("Content-Type"); ct != "text/plain" {
		t.Errorf("explicit Content-Type overridden to %q", ct)
	}
}
