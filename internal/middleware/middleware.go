// Package middleware is the operational hardening layer of the tuning
// service: composable http.Handler wrappers that keep a stencil-serve
// process answering under hostile conditions. A served tuning decision is
// only cheap if the server stays up and fast when clients misbehave, so the
// chain provides the classic production guards — panic isolation (one bad
// request must never kill the process), per-client token-bucket rate
// limiting with honest Retry-After hints, request-ID injection for log
// correlation, and request body size caps — each as an independent wrapper
// so commands compose exactly the order they need.
//
// Conventional order (outermost first):
//
//	RequestID → Recover → RateLimit → MaxBytes → JSONContentType(TimeoutHandler(mux))
//
// RequestID outermost so every log line (including panic reports) carries
// the correlation ID; Recover above everything that runs request logic;
// RateLimit before body handling so a shed request costs no read; the
// content-type defaulter innermost around http.TimeoutHandler, whose
// timeout body is written without a Content-Type.
//
// Counters land in an expvar.Map shared with the server's /metrics surface
// (panics_total, rate_limited_total, body_too_large_total), so overload and
// fault behavior is observable where operators already look.
package middleware

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"expvar"
	"fmt"
	"log"
	"net/http"
	"runtime/debug"
)

// Chain wraps h with the given middleware, outermost first: the first
// element of mws sees the request before all others.
func Chain(h http.Handler, mws ...func(http.Handler) http.Handler) http.Handler {
	for i := len(mws) - 1; i >= 0; i-- {
		h = mws[i](h)
	}
	return h
}

// counters is the subset of expvar.Map the middleware records into; a nil
// map disables counting (every constructor accepts nil).
func add(m *expvar.Map, name string, delta int64) {
	if m != nil {
		m.Add(name, delta)
	}
}

// writeJSONError emits the middleware's uniform error shape — the same
// {"error": ...} object the server's handlers produce — so clients parse
// one format regardless of which layer rejected them.
func writeJSONError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	fmt.Fprintf(w, "{\"error\":%q}\n", msg)
}

// ---------------------------------------------------------------------------
// Request IDs

// requestIDKey is the context key carrying the request's correlation ID.
type requestIDKey struct{}

// RequestIDHeader is the wire header for request correlation IDs.
const RequestIDHeader = "X-Request-ID"

// RequestIDFrom returns the correlation ID injected by RequestID, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// RequestID propagates the client's X-Request-ID (or generates a fresh
// 16-hex-digit one) into the request context and echoes it on the response,
// so one ID correlates client logs, server logs and panic reports.
func RequestID() func(http.Handler) http.Handler {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			id := r.Header.Get(RequestIDHeader)
			if id == "" || len(id) > 128 {
				id = newRequestID()
			}
			w.Header().Set(RequestIDHeader, id)
			r = r.WithContext(context.WithValue(r.Context(), requestIDKey{}, id))
			r.Header.Set(RequestIDHeader, id)
			next.ServeHTTP(w, r)
		})
	}
}

func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; a constant ID still
		// yields a working (if uncorrelatable) server.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// ---------------------------------------------------------------------------
// Panic recovery

// Recover converts a handler panic into a 500 JSON error plus a logged
// stack trace and a panics_total increment — the request dies, the server
// does not. http.ErrAbortHandler passes through untouched: it is net/http's
// sanctioned way to abort a response, not a defect.
func Recover(logger *log.Logger, metrics *expvar.Map) func(http.Handler) http.Handler {
	if logger == nil {
		logger = log.Default()
	}
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			defer func() {
				rec := recover()
				if rec == nil {
					return
				}
				if rec == http.ErrAbortHandler {
					panic(rec)
				}
				add(metrics, "panics_total", 1)
				logger.Printf("panic serving %s %s (request %s): %v\n%s",
					r.Method, r.URL.Path, RequestIDFrom(r.Context()), rec, debug.Stack())
				// Best effort: if the handler already wrote a status line
				// this write fails silently, which is all that can be done.
				writeJSONError(w, http.StatusInternalServerError, "internal server error")
			}()
			next.ServeHTTP(w, r)
		})
	}
}

// ---------------------------------------------------------------------------
// Request size caps

// MaxBytes rejects requests whose declared Content-Length exceeds limit
// with an immediate 413, and wraps the body with http.MaxBytesReader so
// chunked or lying clients are cut off at the same bound (the handler's
// read error then carries *http.MaxBytesError, which the server maps to
// 413 as well). limit <= 0 disables the cap.
func MaxBytes(limit int64, metrics *expvar.Map) func(http.Handler) http.Handler {
	return func(next http.Handler) http.Handler {
		if limit <= 0 {
			return next
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.ContentLength > limit {
				add(metrics, "body_too_large_total", 1)
				writeJSONError(w, http.StatusRequestEntityTooLarge,
					fmt.Sprintf("request body %d bytes exceeds limit %d", r.ContentLength, limit))
				return
			}
			if r.Body != nil {
				r.Body = http.MaxBytesReader(w, r.Body, limit)
			}
			next.ServeHTTP(w, r)
		})
	}
}

// ---------------------------------------------------------------------------
// Content-type defaulting

// JSONContentType guarantees every response carries a Content-Type,
// defaulting to application/json when the inner handler writes a body
// without declaring one. Its purpose in this chain is http.TimeoutHandler,
// whose timeout error body is written bare and would otherwise be sniffed
// to text/plain — with this wrapper a timed-out request still yields a
// well-formed JSON error with the right media type.
func JSONContentType() func(http.Handler) http.Handler {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			next.ServeHTTP(&jsonCTWriter{ResponseWriter: w}, r)
		})
	}
}

type jsonCTWriter struct {
	http.ResponseWriter
	wroteHeader bool
}

func (w *jsonCTWriter) WriteHeader(code int) {
	if !w.wroteHeader {
		w.wroteHeader = true
		if w.Header().Get("Content-Type") == "" {
			w.Header().Set("Content-Type", "application/json")
		}
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *jsonCTWriter) Write(b []byte) (int, error) {
	if !w.wroteHeader {
		w.WriteHeader(http.StatusOK)
	}
	return w.ResponseWriter.Write(b)
}

// Flush forwards http.Flusher so streaming through the wrapper still works.
func (w *jsonCTWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
