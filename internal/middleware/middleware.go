// Package middleware is the operational hardening layer of the tuning
// service: composable http.Handler wrappers that keep a stencil-serve
// process answering under hostile conditions. A served tuning decision is
// only cheap if the server stays up and fast when clients misbehave, so the
// chain provides the classic production guards — panic isolation (one bad
// request must never kill the process), per-client token-bucket rate
// limiting with honest Retry-After hints, request-ID injection for log
// correlation, and request body size caps — each as an independent wrapper
// so commands compose exactly the order they need.
//
// Conventional order (outermost first):
//
//	RequestID → Recover → RateLimit → MaxBytes → JSONContentType(TimeoutHandler(mux))
//
// RequestID outermost so every log line (including panic reports) carries
// the correlation ID; Recover above everything that runs request logic;
// RateLimit before body handling so a shed request costs no read; the
// content-type defaulter innermost around http.TimeoutHandler, whose
// timeout body is written without a Content-Type.
//
// Counters land in an obs.Registry shared with the server's /metrics
// surface (stencilserve_panics_total, stencilserve_rate_limited_total,
// stencilserve_body_too_large_total), so overload and fault behavior is
// observable where operators already look. Every constructor accepts a nil
// registry and/or logger; instrumentation simply switches off.
package middleware

import (
	"context"
	"fmt"
	"net/http"
	"runtime/debug"

	"repro/internal/obs"
)

// Chain wraps h with the given middleware, outermost first: the first
// element of mws sees the request before all others.
func Chain(h http.Handler, mws ...func(http.Handler) http.Handler) http.Handler {
	for i := len(mws) - 1; i >= 0; i-- {
		h = mws[i](h)
	}
	return h
}

// writeJSONError emits the middleware's uniform error shape — the same
// {"error": ...} object the server's handlers produce — so clients parse
// one format regardless of which layer rejected them.
func writeJSONError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	fmt.Fprintf(w, "{\"error\":%q}\n", msg)
}

// ---------------------------------------------------------------------------
// Request IDs

// RequestIDHeader is the wire header for request correlation IDs.
const RequestIDHeader = "X-Request-ID"

// RequestIDFrom returns the correlation ID injected by RequestID, or "".
// The ID lives in the context under obs's key, so the server, the logger
// and the client library all read the same value.
func RequestIDFrom(ctx context.Context) string {
	return obs.RequestIDFrom(ctx)
}

// RequestID propagates the client's X-Request-ID (or generates a fresh
// 16-hex-digit one) into the request context and echoes it on the response,
// so one ID correlates client logs, server logs and panic reports.
func RequestID() func(http.Handler) http.Handler {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			id := r.Header.Get(RequestIDHeader)
			if id == "" || len(id) > 128 {
				id = obs.NewRequestID()
			}
			w.Header().Set(RequestIDHeader, id)
			r = r.WithContext(obs.WithRequestID(r.Context(), id))
			r.Header.Set(RequestIDHeader, id)
			next.ServeHTTP(w, r)
		})
	}
}

// ---------------------------------------------------------------------------
// Panic recovery

// Recover converts a handler panic into a 500 JSON error plus a logged
// stack trace and a stencilserve_panics_total increment — the request dies,
// the server does not. The log line carries the request ID, method and route
// so a panic is attributable to the request that caused it.
// http.ErrAbortHandler passes through untouched: it is net/http's sanctioned
// way to abort a response, not a defect.
func Recover(logger *obs.Logger, reg *obs.Registry) func(http.Handler) http.Handler {
	var panics *obs.Counter
	if reg != nil {
		panics = reg.Counter("stencilserve_panics_total",
			"Handler panics recovered by the middleware chain.")
	}
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			defer func() {
				rec := recover()
				if rec == nil {
					return
				}
				if rec == http.ErrAbortHandler {
					panic(rec)
				}
				panics.Inc()
				logger.Error("panic recovered",
					obs.F("request_id", RequestIDFrom(r.Context())),
					obs.F("method", r.Method),
					obs.F("path", r.URL.Path),
					obs.F("panic", fmt.Sprint(rec)),
					obs.F("stack", string(debug.Stack())))
				// Best effort: if the handler already wrote a status line
				// this write fails silently, which is all that can be done.
				writeJSONError(w, http.StatusInternalServerError, "internal server error")
			}()
			next.ServeHTTP(w, r)
		})
	}
}

// ---------------------------------------------------------------------------
// Request size caps

// MaxBytes rejects requests whose declared Content-Length exceeds limit
// with an immediate 413, and wraps the body with http.MaxBytesReader so
// chunked or lying clients are cut off at the same bound (the handler's
// read error then carries *http.MaxBytesError, which the server maps to
// 413 as well). limit <= 0 disables the cap.
func MaxBytes(limit int64, reg *obs.Registry) func(http.Handler) http.Handler {
	var tooLarge *obs.Counter
	if reg != nil && limit > 0 {
		tooLarge = reg.Counter("stencilserve_body_too_large_total",
			"Requests rejected for exceeding the body size cap.")
	}
	return func(next http.Handler) http.Handler {
		if limit <= 0 {
			return next
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.ContentLength > limit {
				tooLarge.Inc()
				writeJSONError(w, http.StatusRequestEntityTooLarge,
					fmt.Sprintf("request body %d bytes exceeds limit %d", r.ContentLength, limit))
				return
			}
			if r.Body != nil {
				r.Body = http.MaxBytesReader(w, r.Body, limit)
			}
			next.ServeHTTP(w, r)
		})
	}
}

// ---------------------------------------------------------------------------
// Content-type defaulting

// JSONContentType guarantees every response carries a Content-Type,
// defaulting to application/json when the inner handler writes a body
// without declaring one. Its purpose in this chain is http.TimeoutHandler,
// whose timeout error body is written bare and would otherwise be sniffed
// to text/plain — with this wrapper a timed-out request still yields a
// well-formed JSON error with the right media type.
func JSONContentType() func(http.Handler) http.Handler {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			next.ServeHTTP(&jsonCTWriter{ResponseWriter: w}, r)
		})
	}
}

type jsonCTWriter struct {
	http.ResponseWriter
	wroteHeader bool
}

func (w *jsonCTWriter) WriteHeader(code int) {
	if !w.wroteHeader {
		w.wroteHeader = true
		if w.Header().Get("Content-Type") == "" {
			w.Header().Set("Content-Type", "application/json")
		}
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *jsonCTWriter) Write(b []byte) (int, error) {
	if !w.wroteHeader {
		w.WriteHeader(http.StatusOK)
	}
	return w.ResponseWriter.Write(b)
}

// Flush forwards http.Flusher so streaming through the wrapper still works.
func (w *jsonCTWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
