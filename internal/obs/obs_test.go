package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestExpositionGolden pins the full Prometheus text output — family
// ordering, HELP/TYPE lines, label rendering, cumulative buckets, escaping —
// against a golden file. Regenerate with: go test ./internal/obs -run Golden -update
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("demo_requests_total", "Total requests.").Add(3)
	cv := r.CounterVec("demo_hits_total", "Hits by kind.", "kind")
	cv.With("cache").Add(7)
	cv.With("origin").Inc()
	r.Gauge("demo_queue_depth", "Items queued.").Set(2)
	gv := r.GaugeVec("demo_tau", "Kendall tau by model.", "model")
	gv.With("candidate").Set(0.62)
	gv.With("incumbent").Set(0.57)
	h := r.Histogram("demo_latency_seconds", "Latency.", []float64{0.001, 0.01, 0.1, 1})
	for _, v := range []float64{0.0004, 0.002, 0.002, 0.05, 3} {
		h.Observe(v)
	}
	hv := r.HistogramVec("demo_stage_seconds", "Stage latency.", []float64{0.01, 0.1}, "stage")
	hv.With("lookup").Observe(0.004)
	hv.With("infer").Observe(0.2)
	r.GaugeFunc("demo_func_gauge", "Computed at scrape.", func() float64 { return 42 })
	r.Counter("demo_escape_total", "Help with \\ backslash\nand newline.")
	cv2 := r.CounterVec("demo_labels_total", "Label escaping.", "path")
	cv2.With(`a"b\c`).Inc()

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}

	golden := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition differs from golden.\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestCounterGaugeValues(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Errorf("counter = %v, want 3.5", got)
	}
	g := r.Gauge("g", "")
	g.Set(10)
	g.Add(-4)
	if got := g.Value(); got != 6 {
		t.Errorf("gauge = %v, want 6", got)
	}
	if got := r.Value("c_total"); got != 3.5 {
		t.Errorf("Value(c_total) = %v, want 3.5", got)
	}
	if got := r.Value("missing"); got != 0 {
		t.Errorf("Value(missing) = %v, want 0", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "", []float64{1, 2})
	for _, v := range []float64{0.5, 1, 1.5, 5} {
		h.Observe(v) // le="1" gets 0.5 and 1 (le is inclusive); le="2" adds 1.5; +Inf adds 5
	}
	if got := h.Count(); got != 4 {
		t.Errorf("count = %d, want 4", got)
	}
	if got := h.Sum(); got != 8 {
		t.Errorf("sum = %v, want 8", got)
	}
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		`h_seconds_bucket{le="1"} 2`,
		`h_seconds_bucket{le="2"} 3`,
		`h_seconds_bucket{le="+Inf"} 4`,
		`h_seconds_sum 8`,
		`h_seconds_count 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("same_total", "")
	b := r.Counter("same_total", "")
	a.Inc()
	b.Inc()
	if got := a.Value(); got != 2 {
		t.Errorf("re-registered counter split state: %v, want 2", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("re-registering with different type did not panic")
		}
	}()
	r.Gauge("same_total", "")
}

func TestVecLabelMismatchPanics(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("lv_total", "", "a", "b")
	defer func() {
		if recover() == nil {
			t.Error("wrong label-value count did not panic")
		}
	}()
	cv.With("only-one")
}

func TestSumAcrossSeries(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("s_total", "", "k")
	cv.With("a").Add(2)
	cv.With("b").Add(3)
	if got := r.Sum("s_total"); got != 5 {
		t.Errorf("Sum = %v, want 5", got)
	}
}

func TestNilHandlesAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(1)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil handles must read as zero")
	}
}

// TestConcurrentScrapeWhileRecording exercises the race detector: many
// writers recording into counters, gauges and histograms while scrapes and
// new-series registrations run concurrently.
func TestConcurrentScrapeWhileRecording(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("race_total", "", "w")
	hv := r.HistogramVec("race_seconds", "", LatencyBuckets, "w")
	g := r.Gauge("race_gauge", "")
	r.GaugeFunc("race_fn", "", func() float64 { return 1 })

	const writers = 8
	const iters = 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			label := string(rune('a' + w))
			c := cv.With(label)
			h := hv.With(label)
			for i := 0; i < iters; i++ {
				c.Inc()
				h.Observe(float64(i) * 1e-6)
				g.Set(float64(i))
				if i%50 == 0 {
					// late registration while scraping
					cv.With(label + "x").Inc()
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			var buf bytes.Buffer
			if err := r.WritePrometheus(&buf); err != nil {
				t.Errorf("scrape: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	total := 0.0
	for w := 0; w < writers; w++ {
		total += r.Value("race_total", string(rune('a'+w)))
	}
	if total != writers*iters {
		t.Errorf("lost counter increments: %v, want %d", total, writers*iters)
	}
	for w := 0; w < writers; w++ {
		if got := r.HistogramCount("race_seconds", string(rune('a'+w))); got != iters {
			t.Errorf("histogram %c count = %d, want %d", 'a'+w, got, iters)
		}
	}
}
