// Package obs is the observability layer of the serving stack: a
// dependency-free metrics registry (counters, gauges, histograms with label
// support and Prometheus text exposition), a structured JSON/text logger, and
// lightweight trace spans carried through context.Context.
//
// The paper's whole premise is that tuning decisions must be driven by
// measured behavior; this package applies the same discipline to the serving
// system itself. Every component of the stack — HTTP handlers, the response
// cache, singleflight coalescing, the measure-mode admission queue, the WAL
// sink, the background retrainer — records into one Registry, and a scrape of
// /metrics answers the operational questions a flat counter map cannot:
// latency *distributions* per endpoint, cache hit *ratios*, and which
// pipeline stage a slow p99 actually spent its time in.
//
// Design constraints, in order:
//
//   - Hot-path cost. A cached tune answer is ~33µs end to end; instrumenting
//     it must stay in the noise. Handles (Counter, Gauge, Histogram) are
//     resolved once at wiring time and recording is one or two atomic
//     operations — no map lookups, no locks, no allocation.
//   - Race safety. Values are atomics; the registry's maps are guarded for
//     the registration and scrape paths only. Scraping while serving is safe
//     and lock-free for recorders.
//   - No dependencies. The exposition format is the stable Prometheus text
//     format (version 0.0.4), hand-rendered; nothing outside the standard
//     library is imported.
//
// Registration is idempotent: registering the same name with the same type
// and label set returns the existing family, so independently wired
// components (server, middleware, retrainer) can share one Registry without
// coordinating. Re-registering a name with a different type or label set
// panics — that is a programming error, not a runtime condition.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// MetricType says how a family is recorded and exposed.
type MetricType int

const (
	TypeCounter MetricType = iota
	TypeGauge
	TypeHistogram
)

func (t MetricType) String() string {
	switch t {
	case TypeCounter:
		return "counter"
	case TypeGauge:
		return "gauge"
	case TypeHistogram:
		return "histogram"
	}
	return "untyped"
}

// LatencyBuckets are the fixed duration buckets (seconds) every latency
// histogram in the serving stack shares, spanning the ~10µs cached-tune hot
// path through multi-second measure-mode requests. Fixed, shared boundaries
// keep every stage and endpoint histogram directly comparable and make the
// exposition format stable enough to pin with a golden file.
var LatencyBuckets = []float64{
	5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Registry holds metric families keyed by name. The zero value is not usable;
// create with NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu   sync.RWMutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// family is one named metric with a fixed type and label schema, holding one
// series per distinct label-value combination.
type family struct {
	name    string
	help    string
	typ     MetricType
	labels  []string
	buckets []float64 // histograms only

	// fn, when set, backs a single-series metric whose value is computed at
	// scrape time (cache sizes, queue depths, runtime stats). Func metrics
	// have no series map; the latest registration's fn wins.
	fn func() float64

	mu     sync.RWMutex
	series map[string]*series
}

// series is one label-value combination's data. Exactly one of (val) or
// (hist) is live depending on the family type.
type series struct {
	labelVals []string
	val       atomicFloat
	hist      *histogramData
}

// histogramData is the storage behind a Histogram: per-bucket counts (not
// cumulative — cumulated at expose time so Observe is one atomic add), a
// total count and a float sum.
type histogramData struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Uint64
	sum    atomicFloat
}

// atomicFloat is a float64 with atomic Add/Set/Load via bit-casting.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }
func (f *atomicFloat) Store(v float64) {
	f.bits.Store(math.Float64bits(v))
}
func (f *atomicFloat) Add(delta float64) {
	for {
		old := f.bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + delta)
		if f.bits.CompareAndSwap(old, new) {
			return
		}
	}
}

// labelSep joins label values into a series key; 0x1f (unit separator) never
// appears in sane label values, and a collision would only merge two series,
// never corrupt memory.
const labelSep = "\x1f"

// register returns the family for name, creating it on first use. The type,
// label names and bucket boundaries must match any previous registration.
func (r *Registry) register(name, help string, typ MetricType, labels []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.typ != typ || !equalStrings(f.labels, labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %v%v, was %v%v",
				name, typ, labels, f.typ, f.labels))
		}
		return f
	}
	f := &family{
		name:    name,
		help:    help,
		typ:     typ,
		labels:  labels,
		buckets: buckets,
		series:  make(map[string]*series),
	}
	r.fams[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// get returns the series for the label values, creating it on first use.
func (f *family) get(labelVals []string) *series {
	if len(labelVals) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label value(s), got %d",
			f.name, len(f.labels), len(labelVals)))
	}
	key := strings.Join(labelVals, labelSep)
	f.mu.RLock()
	s, ok := f.series[key]
	f.mu.RUnlock()
	if ok {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s = &series{labelVals: append([]string(nil), labelVals...)}
	if f.typ == TypeHistogram {
		s.hist = &histogramData{
			bounds: f.buckets,
			counts: make([]atomic.Uint64, len(f.buckets)+1),
		}
	}
	f.series[key] = s
	return s
}

// ---------------------------------------------------------------------------
// Handles

// Counter is a monotonically increasing value. The handle is resolved once;
// Inc/Add are single atomic operations. A nil *Counter is a safe no-op, so
// optional instrumentation needs no branches at the call site.
type Counter struct{ s *series }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta (must be >= 0 for the value to stay meaningful).
func (c *Counter) Add(delta float64) {
	if c == nil {
		return
	}
	c.s.val.Add(delta)
}

// Value returns the current total.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return c.s.val.Load()
}

// Gauge is a value that goes up and down. A nil *Gauge is a safe no-op.
type Gauge struct{ s *series }

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.s.val.Store(v)
}

// Add adjusts the value by delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	g.s.val.Add(delta)
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.s.val.Load()
}

// Histogram accumulates observations into fixed buckets. A nil *Histogram is
// a safe no-op.
type Histogram struct{ h *histogramData }

// Observe records one value: one atomic add into its bucket, one into the
// count, one CAS into the sum.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	d := h.h
	i := sort.SearchFloat64s(d.bounds, v) // first bound >= v (le semantics)
	d.counts[i].Add(1)
	d.count.Add(1)
	d.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.h.sum.Load()
}

// ---------------------------------------------------------------------------
// Vectors (labeled families)

// CounterVec is a counter family with labels; With resolves one series.
type CounterVec struct{ f *family }

// With returns the counter for the given label values (created on first use).
func (v *CounterVec) With(labelVals ...string) *Counter {
	return &Counter{s: v.f.get(labelVals)}
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(labelVals ...string) *Gauge {
	return &Gauge{s: v.f.get(labelVals)}
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(labelVals ...string) *Histogram {
	return &Histogram{h: v.f.get(labelVals).hist}
}

// ---------------------------------------------------------------------------
// Registration

// Counter registers (or finds) an unlabeled counter and returns its handle.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, TypeCounter, nil, nil)
	return &Counter{s: f.get(nil)}
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, TypeCounter, labels, nil)}
}

// Gauge registers an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, TypeGauge, nil, nil)
	return &Gauge{s: f.get(nil)}
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, TypeGauge, labels, nil)}
}

// Histogram registers an unlabeled histogram with the given bucket upper
// bounds (must be sorted ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, TypeHistogram, nil, buckets)
	return &Histogram{h: f.get(nil).hist}
}

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.register(name, help, TypeHistogram, labels, buckets)}
}

// GaugeFunc registers a gauge whose value is computed at scrape time — cache
// sizes, queue depths, goroutine counts. The latest registration's fn wins,
// so a reloaded component can re-point its gauge.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, TypeGauge, nil, nil)
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

// CounterFunc registers a counter whose value is computed at scrape time
// (e.g. cumulative GC pause seconds read from runtime stats).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.register(name, help, TypeCounter, nil, nil)
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

// ---------------------------------------------------------------------------
// Lookup (tests, legacy surfaces)

// Value returns the current value of one series (counter or gauge; for
// histograms it returns the sum). Unknown names or label sets return 0 —
// lookups are a read-only convenience for tests and legacy bridges, never a
// failure path.
func (r *Registry) Value(name string, labelVals ...string) float64 {
	r.mu.RLock()
	f, ok := r.fams[name]
	r.mu.RUnlock()
	if !ok {
		return 0
	}
	f.mu.RLock()
	if f.fn != nil {
		fn := f.fn
		f.mu.RUnlock()
		return fn()
	}
	s, ok := f.series[strings.Join(labelVals, labelSep)]
	f.mu.RUnlock()
	if !ok {
		return 0
	}
	if f.typ == TypeHistogram {
		return s.hist.sum.Load()
	}
	return s.val.Load()
}

// Sum returns the sum of one family's value across all its series (histogram
// families sum their _sum fields). Unknown names return 0.
func (r *Registry) Sum(name string) float64 {
	r.mu.RLock()
	f, ok := r.fams[name]
	r.mu.RUnlock()
	if !ok {
		return 0
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.fn != nil {
		return f.fn()
	}
	total := 0.0
	for _, s := range f.series {
		if f.typ == TypeHistogram {
			total += s.hist.sum.Load()
		} else {
			total += s.val.Load()
		}
	}
	return total
}

// HistogramCount returns the observation count of one histogram series.
func (r *Registry) HistogramCount(name string, labelVals ...string) uint64 {
	r.mu.RLock()
	f, ok := r.fams[name]
	r.mu.RUnlock()
	if !ok || f.typ != TypeHistogram {
		return 0
	}
	f.mu.RLock()
	s, ok := f.series[strings.Join(labelVals, labelSep)]
	f.mu.RUnlock()
	if !ok {
		return 0
	}
	return s.hist.count.Load()
}
