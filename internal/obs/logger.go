package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Field is one key/value pair on a log line.
type Field struct {
	Key   string
	Value any
}

// F builds a Field; it exists so call sites read as obs.F("status", 200).
func F(key string, value any) Field { return Field{Key: key, Value: value} }

// Logger writes structured log lines in either JSON (one object per line) or
// a human-oriented text format. A Logger is safe for concurrent use; children
// created by With share the parent's output mutex.
type Logger struct {
	mu     *sync.Mutex
	w      io.Writer
	json   bool
	fields []Field
	now    func() time.Time // injectable for tests
}

// NewLogger returns a Logger writing to w. format is "json" or "text";
// anything else defaults to text.
func NewLogger(w io.Writer, format string) *Logger {
	return &Logger{
		mu:   new(sync.Mutex),
		w:    w,
		json: format == "json",
		now:  time.Now,
	}
}

// With returns a child logger that includes the given fields on every line.
func (l *Logger) With(fields ...Field) *Logger {
	child := *l
	child.fields = append(append([]Field(nil), l.fields...), fields...)
	return &child
}

// Info logs at level info.
func (l *Logger) Info(msg string, fields ...Field) { l.log("info", msg, fields) }

// Warn logs at level warn.
func (l *Logger) Warn(msg string, fields ...Field) { l.log("warn", msg, fields) }

// Error logs at level error.
func (l *Logger) Error(msg string, fields ...Field) { l.log("error", msg, fields) }

// Printf logs a formatted message at level info. It keeps plain-text call
// sites (startup banners, shutdown notices) working against the structured
// logger without reformatting every message into fields.
func (l *Logger) Printf(format string, args ...any) {
	l.log("info", fmt.Sprintf(format, args...), nil)
}

// linePool recycles line buffers so steady-state logging allocates nothing
// for the line itself.
var linePool = sync.Pool{
	New: func() any { b := make([]byte, 0, 512); return &b },
}

func (l *Logger) log(level, msg string, fields []Field) {
	if l == nil || l.w == nil {
		return
	}
	ts := l.now().UTC()
	bp := linePool.Get().(*[]byte)
	var line []byte
	if l.json {
		line = l.jsonLine((*bp)[:0], ts, level, msg, fields)
	} else {
		line = l.textLine((*bp)[:0], ts, level, msg, fields)
	}
	l.mu.Lock()
	l.w.Write(line)
	l.mu.Unlock()
	*bp = line[:0]
	linePool.Put(bp)
}

func (l *Logger) jsonLine(b []byte, ts time.Time, level, msg string, fields []Field) []byte {
	b = append(b, `{"ts":"`...)
	b = ts.AppendFormat(b, time.RFC3339Nano)
	b = append(b, `","level":`...)
	b = appendJSONString(b, level)
	b = append(b, `,"msg":`...)
	b = appendJSONString(b, msg)
	for _, set := range [2][]Field{l.fields, fields} {
		for _, f := range set {
			b = append(b, ',')
			b = appendJSONString(b, f.Key)
			b = append(b, ':')
			b = appendJSONValue(b, f.Value)
		}
	}
	b = append(b, '}', '\n')
	return b
}

func (l *Logger) textLine(b []byte, ts time.Time, level, msg string, fields []Field) []byte {
	b = ts.AppendFormat(b, time.RFC3339Nano)
	b = append(b, ' ')
	b = append(b, strings.ToUpper(level)...)
	b = append(b, ' ')
	b = append(b, msg...)
	for _, set := range [2][]Field{l.fields, fields} {
		for _, f := range set {
			b = append(b, ' ')
			b = append(b, f.Key...)
			b = append(b, '=')
			b = appendTextValue(b, f.Value)
		}
	}
	b = append(b, '\n')
	return b
}

// appendJSONString appends s as a JSON string. The common case — no
// characters needing escapes — is appended directly; anything else goes
// through encoding/json.
func appendJSONString(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < 0x20 || c == '"' || c == '\\' || c >= 0x80 {
			if buf, err := json.Marshal(s); err == nil {
				return append(b, buf...)
			}
			return append(b, `""`...)
		}
	}
	b = append(b, '"')
	b = append(b, s...)
	return append(b, '"')
}

// appendJSONValue appends v as a JSON value, fast-pathing the field types
// every request log line carries so the hot path never enters reflection.
func appendJSONValue(b []byte, v any) []byte {
	switch x := v.(type) {
	case string:
		return appendJSONString(b, x)
	case int:
		return strconv.AppendInt(b, int64(x), 10)
	case int64:
		return strconv.AppendInt(b, x, 10)
	case bool:
		return strconv.AppendBool(b, x)
	case float64:
		return strconv.AppendFloat(b, x, 'g', -1, 64)
	case []SpanSummary:
		b = append(b, '[')
		for i, s := range x {
			if i > 0 {
				b = append(b, ',')
			}
			b = append(b, `{"stage":`...)
			b = appendJSONString(b, s.Stage)
			b = append(b, `,"us":`...)
			b = strconv.AppendInt(b, s.Micros, 10)
			b = append(b, '}')
		}
		return append(b, ']')
	case *Trace:
		return x.AppendJSON(b)
	}
	buf, err := json.Marshal(v)
	if err != nil {
		return appendJSONString(b, fmt.Sprint(v))
	}
	return append(b, buf...)
}

func appendTextValue(b []byte, v any) []byte {
	switch x := v.(type) {
	case string:
		if strings.ContainsAny(x, " \t\n\"=") {
			return appendJSONString(b, x)
		}
		return append(b, x...)
	case int:
		return strconv.AppendInt(b, int64(x), 10)
	case int64:
		return strconv.AppendInt(b, x, 10)
	case *Trace:
		return x.AppendJSON(b)
	}
	s := fmt.Sprint(v)
	if strings.ContainsAny(s, " \t\n\"=") {
		return appendJSONString(b, s)
	}
	return append(b, s...)
}

// Std returns a standard-library *log.Logger that forwards each written line
// to l at level info with a component field. It bridges APIs that demand a
// *log.Logger (http.Server.ErrorLog, legacy constructors) into the
// structured stream.
func (l *Logger) Std(component string) *log.Logger {
	return log.New(&stdBridge{l: l.With(F("component", component))}, "", 0)
}

type stdBridge struct{ l *Logger }

func (b *stdBridge) Write(p []byte) (int, error) {
	b.l.Info(strings.TrimRight(string(p), "\n"))
	return len(p), nil
}

// ---------------------------------------------------------------------------
// Request IDs

// requestIDKey carries the per-request correlation ID through a context.
type requestIDKey struct{}

// WithRequestID returns a context carrying the correlation ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFrom returns the correlation ID carried by ctx, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// NewRequestID returns a fresh 16-hex-character correlation ID.
func NewRequestID() string {
	var buf [8]byte
	if _, err := rand.Read(buf[:]); err != nil {
		return "0000000000000000"
	}
	return hex.EncodeToString(buf[:])
}
