package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func fixedClock() time.Time {
	return time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
}

func TestLoggerJSON(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, "json")
	l.now = fixedClock
	l.With(F("component", "server")).Info("request done",
		F("status", 200), F("duration_us", int64(33)), F("path", "/v1/tune"))

	var got map[string]any
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not one JSON object per line: %v\n%s", err, buf.String())
	}
	want := map[string]any{
		"ts": "2026-08-08T12:00:00Z", "level": "info", "msg": "request done",
		"component": "server", "status": float64(200),
		"duration_us": float64(33), "path": "/v1/tune",
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("field %q = %v, want %v", k, got[k], v)
		}
	}
}

func TestLoggerText(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, "text")
	l.now = fixedClock
	l.Warn("slow request", F("endpoint", "tune"), F("note", "has space"))
	line := buf.String()
	for _, want := range []string{"WARN", "slow request", "endpoint=tune", `note="has space"`} {
		if !strings.Contains(line, want) {
			t.Errorf("text line missing %q: %s", want, line)
		}
	}
}

func TestLoggerPrintfBridge(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, "json")
	l.now = fixedClock
	l.Printf("listening on %s", "127.0.0.1:8080")
	var got map[string]any
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if got["msg"] != "listening on 127.0.0.1:8080" || got["level"] != "info" {
		t.Errorf("Printf line = %v", got)
	}
}

func TestLoggerStdBridge(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, "json")
	l.now = fixedClock
	std := l.Std("retrain")
	std.Println("cycle complete")
	var got map[string]any
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if got["component"] != "retrain" || got["msg"] != "cycle complete" {
		t.Errorf("std bridge line = %v", got)
	}
}

func TestNilLoggerIsNoOp(t *testing.T) {
	var l *Logger
	l.Info("dropped") // must not panic
}

func TestRequestIDContext(t *testing.T) {
	ctx := context.Background()
	if got := RequestIDFrom(ctx); got != "" {
		t.Errorf("empty ctx id = %q", got)
	}
	ctx = WithRequestID(ctx, "abc123")
	if got := RequestIDFrom(ctx); got != "abc123" {
		t.Errorf("id = %q, want abc123", got)
	}
	id := NewRequestID()
	if len(id) != 16 {
		t.Errorf("NewRequestID length = %d, want 16", len(id))
	}
	if id == NewRequestID() {
		t.Error("two request IDs collided")
	}
}
