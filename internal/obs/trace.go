package obs

import (
	"context"
	"strconv"
	"sync"
	"time"
)

// Span is one timed stage of a request's pipeline.
type Span struct {
	Stage string
	Start time.Time
	Dur   time.Duration
}

// SpanSummary is the wire/log form of a span: stage name and microseconds.
type SpanSummary struct {
	Stage  string `json:"stage"`
	Micros int64  `json:"us"`
}

// Trace collects the spans of one request. It is created by WithTrace,
// carried through the request's context, and read back at the end of the
// request to emit the spans into the access log line. Spans may be recorded
// from the handler goroutine and (via singleflight) a leader goroutine, so
// appends are mutex-guarded.
type Trace struct {
	mu    sync.Mutex
	spans []Span
	sink  func(stage string, seconds float64)
	// buf inlines storage for the common case (a handful of spans per
	// request) so recording the first spans costs no heap allocation beyond
	// the Trace itself.
	buf [4]Span
}

// traceKey carries the *Trace through a context.
type traceKey struct{}

// WithTrace attaches a new Trace to ctx. sink, if non-nil, is called once per
// finished span — the server points it at the stage-latency histogram vector
// so per-stage distributions aggregate across requests.
func WithTrace(ctx context.Context, sink func(stage string, seconds float64)) (context.Context, *Trace) {
	t := new(Trace)
	t.Init(sink)
	return ContextWithTrace(ctx, t), t
}

// Init prepares a zero Trace for use with the given sink. It exists so
// callers on a hot path can embed a Trace inside a larger per-request struct
// and pay one allocation instead of two.
func (t *Trace) Init(sink func(stage string, seconds float64)) {
	t.sink = sink
	t.spans = t.buf[:0]
}

// ContextWithTrace attaches an already-initialised Trace to ctx.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the Trace carried by ctx, or nil.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// StartSpan begins timing a stage; the returned func ends it. Without a
// Trace in ctx it returns a no-op, so library code can instrument
// unconditionally.
func StartSpan(ctx context.Context, stage string) func() {
	t := TraceFrom(ctx)
	if t == nil {
		return func() {}
	}
	start := time.Now()
	return func() { t.Add(stage, start, time.Since(start)) }
}

// AddSpan records an already-measured span — used for stages whose existence
// is only known after the fact (e.g. time spent waiting on a coalesced
// singleflight leader is only a "flight_wait" span for the waiters, not the
// leader).
func AddSpan(ctx context.Context, stage string, start time.Time, dur time.Duration) {
	if t := TraceFrom(ctx); t != nil {
		t.Add(stage, start, dur)
	}
}

// Add records an already-measured span directly on the trace. Callers that
// already hold the *Trace (or need to fall back to a global sink when no
// trace is present) use this instead of the context-based AddSpan.
func (t *Trace) Add(stage string, start time.Time, dur time.Duration) {
	t.mu.Lock()
	t.spans = append(t.spans, Span{Stage: stage, Start: start, Dur: dur})
	t.mu.Unlock()
	if t.sink != nil {
		t.sink(stage, dur.Seconds())
	}
}

// Len returns the number of spans recorded so far.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Spans returns a copy of the recorded spans in recording order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// AppendJSON appends the spans as a JSON array of {"stage","us"} objects —
// the same shape Compact produces — without materialising the intermediate
// slice. Loggers use it to serialise a *Trace field straight off the request.
func (t *Trace) AppendJSON(b []byte) []byte {
	if t == nil {
		return append(b, '[', ']')
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	b = append(b, '[')
	for i, s := range t.spans {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, `{"stage":`...)
		b = appendJSONString(b, s.Stage)
		b = append(b, `,"us":`...)
		b = strconv.AppendInt(b, s.Dur.Microseconds(), 10)
		b = append(b, '}')
	}
	return append(b, ']')
}

// Compact returns the spans in log-line form (stage + microseconds).
func (t *Trace) Compact() []SpanSummary {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanSummary, len(t.spans))
	for i, s := range t.spans {
		out[i] = SpanSummary{Stage: s.Stage, Micros: s.Dur.Microseconds()}
	}
	return out
}
