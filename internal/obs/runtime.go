package obs

import (
	"runtime"
	"sync"
	"time"
)

// memStatsCache throttles runtime.ReadMemStats, which stops the world
// briefly: one read serves every runtime gauge on a scrape, and repeated
// scrapes within a second reuse the previous snapshot.
type memStatsCache struct {
	mu   sync.Mutex
	at   time.Time
	stat runtime.MemStats
}

func (c *memStatsCache) get() *runtime.MemStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	if time.Since(c.at) > time.Second {
		runtime.ReadMemStats(&c.stat)
		c.at = time.Now()
	}
	return &c.stat
}

// RegisterRuntimeMetrics adds process-level Go runtime gauges to r:
// goroutine count, heap allocation, cumulative GC pause time and GC cycles.
// Values are computed at scrape time.
func RegisterRuntimeMetrics(r *Registry) {
	cache := &memStatsCache{}
	r.GaugeFunc("go_goroutines",
		"Number of goroutines that currently exist.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("go_heap_alloc_bytes",
		"Bytes of allocated heap objects.",
		func() float64 { return float64(cache.get().HeapAlloc) })
	r.CounterFunc("go_gc_pause_seconds_total",
		"Cumulative seconds the program has spent in GC stop-the-world pauses.",
		func() float64 { return float64(cache.get().PauseTotalNs) / 1e9 })
	r.CounterFunc("go_gc_cycles_total",
		"Number of completed GC cycles.",
		func() float64 { return float64(cache.get().NumGC) })
}
