package obs

import (
	"context"
	"testing"
	"time"
)

func TestTraceSpans(t *testing.T) {
	var sunk []string
	ctx, tr := WithTrace(context.Background(), func(stage string, _ float64) {
		sunk = append(sunk, stage)
	})

	end := StartSpan(ctx, "cache_lookup")
	end()
	AddSpan(ctx, "flight_wait", time.Now(), 250*time.Microsecond)

	spans := tr.Spans()
	if len(spans) != 2 || spans[0].Stage != "cache_lookup" || spans[1].Stage != "flight_wait" {
		t.Fatalf("spans = %+v", spans)
	}
	if spans[1].Dur != 250*time.Microsecond {
		t.Errorf("flight_wait dur = %v", spans[1].Dur)
	}
	if len(sunk) != 2 || sunk[0] != "cache_lookup" || sunk[1] != "flight_wait" {
		t.Errorf("sink calls = %v", sunk)
	}

	c := tr.Compact()
	if len(c) != 2 || c[1].Stage != "flight_wait" || c[1].Micros != 250 {
		t.Errorf("compact = %+v", c)
	}
}

func TestSpanWithoutTraceIsNoOp(t *testing.T) {
	ctx := context.Background()
	end := StartSpan(ctx, "anything")
	end() // must not panic
	AddSpan(ctx, "anything", time.Now(), time.Millisecond)
	if TraceFrom(ctx) != nil {
		t.Error("TraceFrom on bare ctx should be nil")
	}
	var nilTrace *Trace
	if nilTrace.Spans() != nil || nilTrace.Compact() != nil {
		t.Error("nil trace accessors should return nil")
	}
}

func TestTraceConcurrentAdd(t *testing.T) {
	ctx, tr := WithTrace(context.Background(), nil)
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 100; j++ {
				StartSpan(ctx, "s")()
			}
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	if got := len(tr.Spans()); got != 400 {
		t.Errorf("spans = %d, want 400", got)
	}
}
