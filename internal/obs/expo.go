package obs

import (
	"bufio"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// TextContentType is the Content-Type for the Prometheus text exposition
// format served by Handler.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every family in the Prometheus text exposition
// format (version 0.0.4). Families are sorted by name and series by label
// values, so the output is deterministic and can be pinned by a golden test.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)

	r.mu.RLock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.fams[name]
	}
	r.mu.RUnlock()

	for _, f := range fams {
		writeFamily(bw, f)
	}
	return bw.Flush()
}

// Handler returns an http.Handler serving the registry in Prometheus text
// format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", TextContentType)
		r.WritePrometheus(w)
	})
}

func writeFamily(w *bufio.Writer, f *family) {
	if f.help != "" {
		w.WriteString("# HELP ")
		w.WriteString(f.name)
		w.WriteByte(' ')
		w.WriteString(escapeHelp(f.help))
		w.WriteByte('\n')
	}
	w.WriteString("# TYPE ")
	w.WriteString(f.name)
	w.WriteByte(' ')
	w.WriteString(f.typ.String())
	w.WriteByte('\n')

	f.mu.RLock()
	if f.fn != nil {
		fn := f.fn
		f.mu.RUnlock()
		writeSample(w, f.name, nil, nil, fn())
		return
	}
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	sers := make([]*series, len(keys))
	for i, k := range keys {
		sers[i] = f.series[k]
	}
	f.mu.RUnlock()

	for _, s := range sers {
		switch f.typ {
		case TypeHistogram:
			writeHistogram(w, f, s)
		default:
			writeSample(w, f.name, f.labels, s.labelVals, s.val.Load())
		}
	}
}

// writeHistogram emits cumulative le buckets, the implicit +Inf bucket, and
// the _sum/_count samples for one series.
func writeHistogram(w *bufio.Writer, f *family, s *series) {
	d := s.hist
	names := append(append([]string(nil), f.labels...), "le")
	var cum uint64
	for i, bound := range d.bounds {
		cum += d.counts[i].Load()
		vals := append(append([]string(nil), s.labelVals...), formatFloat(bound))
		writeSampleU(w, f.name+"_bucket", names, vals, cum)
	}
	cum += d.counts[len(d.bounds)].Load()
	vals := append(append([]string(nil), s.labelVals...), "+Inf")
	writeSampleU(w, f.name+"_bucket", names, vals, cum)
	writeSample(w, f.name+"_sum", f.labels, s.labelVals, d.sum.Load())
	writeSampleU(w, f.name+"_count", f.labels, s.labelVals, d.count.Load())
}

func writeSample(w *bufio.Writer, name string, labelNames, labelVals []string, v float64) {
	w.WriteString(name)
	writeLabels(w, labelNames, labelVals)
	w.WriteByte(' ')
	w.WriteString(formatFloat(v))
	w.WriteByte('\n')
}

func writeSampleU(w *bufio.Writer, name string, labelNames, labelVals []string, v uint64) {
	w.WriteString(name)
	writeLabels(w, labelNames, labelVals)
	w.WriteByte(' ')
	w.WriteString(strconv.FormatUint(v, 10))
	w.WriteByte('\n')
}

func writeLabels(w *bufio.Writer, names, vals []string) {
	if len(names) == 0 {
		return
	}
	w.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			w.WriteByte(',')
		}
		w.WriteString(n)
		w.WriteString(`="`)
		w.WriteString(escapeLabel(vals[i]))
		w.WriteByte('"')
	}
	w.WriteByte('}')
}

// formatFloat renders a float the way Prometheus expects: shortest exact
// representation, +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	return strings.NewReplacer(`\`, `\\`, "\n", `\n`).Replace(s)
}

func escapeLabel(s string) string {
	return strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`).Replace(s)
}
