package report

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/machine"
	"repro/internal/perfmodel"
	"repro/internal/ranking"
	"repro/internal/stencil"
	"repro/internal/trainer"
)

// sampleData runs a tiny harness to get real structures for rendering.
func sampleData(t *testing.T) Data {
	t.Helper()
	h := bench.New(perfmodel.New(machine.XeonE52680v3()), 1)
	h.Budget = 32
	h.Fig4Sizes = []int{480}
	table2, err := h.Table2([]int{480})
	if err != nil {
		t.Fatal(err)
	}
	fig4, err := h.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	fig5, err := h.Fig5([]stencil.Instance{
		{Kernel: stencil.Gradient(), Size: stencil.Size3D(128, 128, 128)},
	})
	if err != nil {
		t.Fatal(err)
	}
	fig6, err := h.Fig6([]int{480})
	if err != nil {
		t.Fatal(err)
	}
	fig7, err := h.Fig7([]int{480})
	if err != nil {
		t.Fatal(err)
	}
	return Data{
		Table2:     table2,
		Fig4:       fig4,
		Fig4Sizes:  h.Fig4Sizes,
		Fig5:       fig5,
		Fig6:       &fig6,
		Fig7:       fig7,
		Generated:  time.Date(2026, 6, 12, 12, 0, 0, 0, time.UTC),
		MachineTag: "test <machine>",
	}
}

func TestWriteFullReport(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleData(t)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<!DOCTYPE html>", "Table II", "Fig. 4", "Fig. 5", "Fig. 6", "Fig. 7",
		"<svg", "</svg>", "gradient/128x128x128", "480",
		"test &lt;machine&gt;", // escaping
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// Every opened SVG closes.
	if strings.Count(out, "<svg") != strings.Count(out, "</svg>") {
		t.Error("unbalanced svg tags")
	}
	if strings.Count(out, "<html>") != 1 || !strings.Contains(out, "</html>") {
		t.Error("html structure broken")
	}
}

func TestWriteEmptyReportSkipsSections(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, Data{Generated: time.Now(), MachineTag: "m"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, absent := range []string{"Table II", "Fig. 4", "Fig. 5", "Fig. 6", "Fig. 7"} {
		if strings.Contains(out, absent) {
			t.Errorf("empty report contains %q", absent)
		}
	}
}

func TestFig4ChartStructure(t *testing.T) {
	d := sampleData(t)
	svg := Fig4Chart(d.Fig4, d.Fig4Sizes)
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Fatal("not a standalone svg")
	}
	// 17 benchmarks × (4 engines + 1 size) bars = 85 rect bars + legend swatches.
	if got := strings.Count(svg, "<rect"); got < 85 {
		t.Errorf("only %d rects in Fig. 4 chart", got)
	}
	if !strings.Contains(svg, "blur/1024x1024") {
		t.Error("benchmark labels missing")
	}
}

func TestFig5ChartStructure(t *testing.T) {
	d := sampleData(t)
	svg := Fig5Chart(d.Fig5[0], d.Fig4Sizes)
	if got := strings.Count(svg, "<polyline"); got != 4 {
		t.Errorf("polylines = %d, want 4 (engines)", got)
	}
	if !strings.Contains(svg, "stroke-dasharray") {
		t.Error("regression dashed lines missing")
	}
	if !strings.Contains(svg, "GFlop/s") {
		t.Error("axis label missing")
	}
}

func TestFig6ChartStructure(t *testing.T) {
	d := sampleData(t)
	svg := Fig6Chart(*d.Fig6)
	if got := strings.Count(svg, "<circle"); got < len(d.Fig6.Taus[480]) {
		t.Errorf("circles = %d, want ≥ %d", got, len(d.Fig6.Taus[480]))
	}
}

func TestFig6ChartEmpty(t *testing.T) {
	svg := Fig6Chart(bench.Fig6Result{Taus: map[int][]trainer.QueryTau{}})
	if !strings.Contains(svg, "</svg>") {
		t.Error("empty Fig. 6 chart should still be valid svg")
	}
}

func TestFig7ChartStructure(t *testing.T) {
	d := sampleData(t)
	svg := Fig7Chart(d.Fig7)
	if got := strings.Count(svg, "<polygon"); got != len(d.Fig7) {
		t.Errorf("violin polygons = %d, want %d", got, len(d.Fig7))
	}
	if !strings.Contains(svg, "training-set size") {
		t.Error("axis label missing")
	}
}

func TestNiceCeil(t *testing.T) {
	cases := map[float64]float64{
		0:    1,
		0.7:  0.8,
		1.0:  1.0,
		1.3:  1.5,
		7:    8,
		11:   12,
		95:   100,
		1000: 1000,
	}
	for in, want := range cases {
		if got := niceCeil(in); got != want {
			t.Errorf("niceCeil(%v) = %v, want %v", in, got, want)
		}
	}
}

func TestEscape(t *testing.T) {
	if got := escape(`a<b>&c`); got != "a&lt;b&gt;&amp;c" {
		t.Errorf("escape = %q", got)
	}
}

func TestSummaryOK(t *testing.T) {
	if summaryOK(ranking.Summary{}) {
		t.Error("empty summary reported OK")
	}
	if !summaryOK(ranking.Summary{N: 3}) {
		t.Error("non-empty summary reported not OK")
	}
}

func TestFmtDur(t *testing.T) {
	cases := map[time.Duration]string{
		2 * time.Hour:           "2.0 h",
		90 * time.Second:        "1.5 m",
		1500 * time.Millisecond: "1.50 s",
		250 * time.Microsecond:  "0.25 ms",
	}
	for in, want := range cases {
		if got := fmtDur(in); got != want {
			t.Errorf("fmtDur(%v) = %q, want %q", in, got, want)
		}
	}
}
